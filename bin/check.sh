#!/bin/sh
# CI gate: full build and test suite with warnings as errors (dune's dev
# profile default), plus formatting when an .ocamlformat file is present.
# Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @default =="
dune build @default

echo "== dune build @runtest =="
dune build @runtest

if [ -f .ocamlformat ]; then
  echo "== dune build @fmt =="
  dune build @fmt
fi

# Perf-regression gate: the software-TLB fast path must stay measurably
# cheaper than the legacy per-byte translation path, measured in the same
# run (bench_tlb exits nonzero otherwise in smoke mode).
echo "== bench tlb (smoke) =="
WEDGE_TLB_SMOKE=1 dune exec bench/main.exe -- tlb

echo "check.sh: all green"
