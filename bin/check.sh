#!/bin/sh
# CI gate: full build and test suite with warnings as errors (dune's dev
# profile default), plus formatting when an .ocamlformat file is present.
# Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @default =="
dune build @default

echo "== dune build @runtest =="
dune build @runtest

if [ -f .ocamlformat ]; then
  echo "== dune build @fmt =="
  dune build @fmt
fi

echo "check.sh: all green"
