#!/bin/sh
# CI gate: full build and test suite with warnings as errors (dune's dev
# profile default), plus formatting when an .ocamlformat file is present.
# Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

# Registration guard: a test file that exists but is not named in
# test/dune silently never runs — fail loudly instead.
echo "== test registration guard =="
for f in test/test_*.ml; do
  name="$(basename "$f" .ml)"
  if ! grep -qw "$name" test/dune; then
    echo "check.sh: $f is not registered in test/dune" >&2
    exit 1
  fi
done

echo "== dune build @default =="
dune build @default

echo "== dune build @runtest =="
dune build @runtest

if [ -f .ocamlformat ]; then
  echo "== dune build @fmt =="
  dune build @fmt
fi

# Perf-regression gate: the software-TLB fast path must stay measurably
# cheaper than the legacy per-byte translation path, measured in the same
# run (bench_tlb exits nonzero otherwise in smoke mode).
echo "== bench tlb (smoke) =="
WEDGE_TLB_SMOKE=1 dune exec bench/main.exe -- tlb

# Observability gate: export a demo trace through the CLI and
# schema-validate it (the trace subcommand exits nonzero when the export
# fails Chrome-trace validation).  Byte-identical determinism across two
# seeded runs is asserted separately by examples/trace_demo.exe in
# @runtest above.
echo "== trace export (smoke) =="
trace_out="$(mktemp /tmp/wedge-smoke-XXXXXX.trace.json)"
WEDGE_TRACE_SMOKE=1 dune exec bin/wedge_cli.exe -- trace httpd -n 25 -o "$trace_out"
test -s "$trace_out"
rm -f "$trace_out"

# Correctness-harness gate: explore seeded schedules of the httpd chaos
# scenario (Byzantine clients + armed fault plan) under the invariant
# oracles; wedge_cli check exits nonzero — printing a shrunk repro
# command — if any schedule violates an invariant.
echo "== schedule exploration (smoke) =="
WEDGE_CHECK_SMOKE=1 dune exec bin/wedge_cli.exe -- check --scenario httpd --schedules 25 --seed 1

# Self-healing gate: a seeded fault storm with induced hangs against the
# supervised httpd (watchdog cuts, breaker trips, quarantine) must pass
# the oracles on every schedule and end with the breaker closed and zero
# leaked frames or descriptors; then the MTTR benchmark must produce its
# artifact (shrunk incident count under the smoke flag).
echo "== self-healing recovery (smoke) =="
WEDGE_RECOVERY_SMOKE=1 dune exec bin/wedge_cli.exe -- check --scenario httpd_storm --schedules 25 --seed 1
WEDGE_RECOVERY_SMOKE=1 dune exec bench/main.exe -- recovery
test -s BENCH_recovery.json

# Snapshot-pool gate: spawn cost must stay flat for pooled stamps while
# fresh boot scales with the image (bench_spawn exits nonzero on either
# violation, or if a stamp ever loses to a fresh boot), and the artifact
# must be byte-stable across two runs — everything is simulated time, so
# any drift is nondeterminism.
echo "== spawn pool (smoke) =="
WEDGE_SPAWN_SMOKE=1 dune exec bench/main.exe -- spawn
test -s BENCH_spawn.json
spawn_first="$(mktemp /tmp/wedge-spawn-XXXXXX.json)"
cp BENCH_spawn.json "$spawn_first"
WEDGE_SPAWN_SMOKE=1 dune exec bench/main.exe -- spawn
cmp BENCH_spawn.json "$spawn_first"
rm -f "$spawn_first"

# Reactor gate: the evented serve path must beat spin-yield blocking by
# at least 2x on the simulated clock at 1k connections (bench_reactor
# exits nonzero below 2x, or if an idle connection leaks any simulated
# cost), and BENCH_reactor.json — simulated integers only — must be
# byte-stable across two runs.
echo "== reactor (smoke) =="
WEDGE_REACTOR_SMOKE=1 dune exec bench/main.exe -- reactor
test -s BENCH_reactor.json
grep -q '"read_ratio_x100"' BENCH_reactor.json
reactor_first="$(mktemp /tmp/wedge-reactor-XXXXXX.json)"
cp BENCH_reactor.json "$reactor_first"
WEDGE_REACTOR_SMOKE=1 dune exec bench/main.exe -- reactor
cmp BENCH_reactor.json "$reactor_first"
rm -f "$reactor_first"

# Scale-out gate: the sharded multikernel bench (CI-sized population:
# 2k pop3 + httpd + sshd connections over 1 vs 2 shards) must show >=
# 1.3x makespan speedup per service, a non-degenerate latency tail
# (p99 > p50), and the exact cross-shard shootdown count for the gtag
# rotation (bench_scale exits nonzero on any of these); and
# BENCH_scale.json — simulated integers only — must be byte-stable
# across two runs.
echo "== scale (smoke) =="
WEDGE_SCALE_SMOKE=1 dune exec bench/main.exe -- scale
test -s BENCH_scale.json
grep -q '"speedup_x100"' BENCH_scale.json
scale_first="$(mktemp /tmp/wedge-scale-XXXXXX.json)"
cp BENCH_scale.json "$scale_first"
WEDGE_SCALE_SMOKE=1 dune exec bench/main.exe -- scale
cmp BENCH_scale.json "$scale_first"
rm -f "$scale_first"

# Policy-synthesis gate: close the Crowbar loop.  Synthesize the httpd
# least-privilege profile from a recorded run and re-run the same
# workload enforced (wedge_cli synth exits nonzero on any denial, a
# failed workload, or observed accesses beyond the installed profile);
# the profile file must be byte-stable across two record runs, and 25
# explored schedules of the record->enforce scenario must stay clean.
echo "== policy synthesis (smoke) =="
synth_first="$(mktemp /tmp/wedge-synth-XXXXXX.prof)"
synth_second="$(mktemp /tmp/wedge-synth-XXXXXX.prof)"
WEDGE_SYNTH_SMOKE=1 dune exec bin/wedge_cli.exe -- synth httpd -o "$synth_first"
test -s "$synth_first"
WEDGE_SYNTH_SMOKE=1 dune exec bin/wedge_cli.exe -- synth httpd -o "$synth_second" --mode record
cmp "$synth_first" "$synth_second"
rm -f "$synth_first" "$synth_second"
WEDGE_SYNTH_SMOKE=1 dune exec bin/wedge_cli.exe -- check --scenario httpd_synth --schedules 25 --seed 1

echo "check.sh: all green"
