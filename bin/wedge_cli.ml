(* wedge-cli: drive the partitioned applications and their attack
   experiments from the command line.

     wedge_cli pop3  --partition mono|wedge [--attack]
     wedge_cli https --partition mono|simple|mitm [--attack] [--recycled]
     wedge_cli ssh   --partition mono|privsep|wedge [--auth password|pubkey|skey] [--attack]
     wedge_cli stats --partition mitm     # kernel op counters for one request *)

open Cmdliner
module Kernel = Wedge_kernel.Kernel
module Stats = Wedge_sim.Stats
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Attacker = Wedge_net.Attacker
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module W = Wedge_core.Wedge

let ok b = if b then "ok" else "FAILED"

(* ---------------- pop3 ---------------- *)

let run_pop3 partition attack =
  let k = Kernel.create () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let loot = Attacker.loot_create () in
  let payload ctx =
    (match W.vfs_read ctx Wedge_pop3.Pop3_env.passwd_path with
    | Ok d -> Attacker.grab loot ~label:"passwd" d
    | Error _ -> ());
    match W.vfs_read ctx (Wedge_pop3.Pop3_env.maildir "bob" ^ "/1.eml") with
    | Ok d -> Attacker.grab loot ~label:"bob-mail" d
    | Error _ -> ()
  in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () ->
          match partition with
          | "mono" -> Wedge_pop3.Pop3_mono.serve_connection ~exploit:payload main server_ep
          | _ -> ignore (Wedge_pop3.Pop3_wedge.serve_connection ~exploit:payload main server_ep));
      let c = Wedge_pop3.Pop3_client.connect client_ep in
      Printf.printf "login alice: %s\n"
        (ok (Wedge_pop3.Pop3_client.login c ~user:"alice" ~password:"wonderland"));
      (match Wedge_pop3.Pop3_client.stat c with
      | Some (n, bytes) -> Printf.printf "STAT: %d messages, %d bytes\n" n bytes
      | None -> print_endline "STAT failed");
      if attack then begin
        print_endline "sending exploit trigger...";
        Wedge_pop3.Pop3_client.xploit c
      end;
      Wedge_pop3.Pop3_client.quit c;
      Chan.close client_ep);
  if attack then
    Printf.printf "attacker stole: %s\n"
      (match Attacker.labels loot with [] -> "nothing" | l -> String.concat ", " l);
  0

(* ---------------- https ---------------- *)

let run_https partition attack recycled =
  let k = Kernel.create () in
  let env = Wedge_httpd.Httpd_env.install k in
  let loot = Attacker.loot_create () in
  let payload ctx =
    List.iter
      (fun (tag : Wedge_mem.Tag.t) ->
        ignore (Attacker.steal_tag ctx loot ~label:tag.Wedge_mem.Tag.name tag))
      (W.live_tags (W.app_of ctx))
  in
  let exploit = if attack then Some payload else None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () ->
          match partition with
          | "mono" -> Wedge_httpd.Httpd_mono.serve_connection ?exploit env server_ep
          | "simple" ->
              ignore
                (Wedge_httpd.Httpd_simple.serve_connection ~recycled ?exploit_handshake:exploit
                   env server_ep)
          | _ ->
              ignore
                (Wedge_httpd.Httpd_mitm.serve_connection ~recycled ?exploit_handshake:exploit env
                   server_ep));
      let r =
        Wedge_httpd.Https_client.get ~rng:(Drbg.create ~seed:1)
          ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" client_ep
      in
      match r.Wedge_httpd.Https_client.response with
      | Some { Wedge_httpd.Http.status; body } ->
          Printf.printf "GET /index.html over SSL: HTTP %d (%d bytes)\n" status
            (String.length body)
      | None ->
          Printf.printf "request failed: %s\n"
            (Option.value ~default:"?" r.Wedge_httpd.Https_client.error));
  if attack then
    Printf.printf "exploited compartment could read: %s\n"
      (match Attacker.labels loot with [] -> "nothing" | l -> String.concat ", " l);
  0

(* ---------------- ssh ---------------- *)

let run_ssh partition auth attack =
  let k = Kernel.create () in
  let env = Wedge_sshd.Sshd_env.install k in
  let loot = Attacker.loot_create () in
  let payload ctx =
    (match W.vfs_read ctx Wedge_sshd.Sshd_env.shadow_path with
    | Ok d -> Attacker.grab loot ~label:"shadow" d
    | Error _ -> ());
    match Attacker.try_read ctx ~addr:env.Wedge_sshd.Sshd_env.rsa_addr ~len:32 with
    | Ok d -> Attacker.grab loot ~label:"host-key" d
    | Error _ -> ()
  in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () ->
          match partition with
          | "mono" ->
              Wedge_sshd.Sshd_mono.serve_connection
                ?exploit:(if attack then Some payload else None)
                env server_ep
          | "privsep" ->
              Wedge_sshd.Sshd_privsep.serve_connection
                ?exploit:(if attack then Some (fun ctx _m -> payload ctx) else None)
                env server_ep
          | _ ->
              ignore
                (Wedge_sshd.Sshd_wedge.serve_connection
                   ?exploit:(if attack then Some payload else None)
                   env server_ep));
      let alice = List.hd env.Wedge_sshd.Sshd_env.users in
      let method_ =
        match auth with
        | "pubkey" -> Wedge_sshd.Ssh_client.Pubkey (Wedge_sshd.Sshd_env.user_key alice)
        | "skey" -> Wedge_sshd.Ssh_client.Skey "rabbit hole"
        | _ -> Wedge_sshd.Ssh_client.Password "wonderland"
      in
      match
        Wedge_sshd.Ssh_client.login ~rng:(Drbg.create ~seed:1)
          ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
          ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Dsa.pub ~user:"alice" method_ client_ep
      with
      | Error e -> Printf.printf "login failed: %s\n" e
      | Ok conn ->
          Printf.printf "login alice (%s): ok\n" auth;
          (match Wedge_sshd.Ssh_client.exec conn "shell" with
          | Some reply -> Printf.printf "shell: %s\n" reply
          | None -> ());
          if attack then ignore (Wedge_sshd.Ssh_client.exec conn "xploit");
          Wedge_sshd.Ssh_client.close conn);
  if attack then
    Printf.printf "exploited compartment could read: %s\n"
      (match Attacker.labels loot with [] -> "nothing" | l -> String.concat ", " l);
  0

(* ---------------- stats ---------------- *)

let run_stats partition =
  let k = Kernel.create () in
  let env = Wedge_httpd.Httpd_env.install k in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () ->
          match partition with
          | "mono" -> Wedge_httpd.Httpd_mono.serve_connection env server_ep
          | "simple" -> ignore (Wedge_httpd.Httpd_simple.serve_connection env server_ep)
          | _ -> ignore (Wedge_httpd.Httpd_mitm.serve_connection env server_ep));
      ignore
        (Wedge_httpd.Https_client.get ~rng:(Drbg.create ~seed:1)
           ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" client_ep));
  Printf.printf "kernel operation counts for one %s request:\n" partition;
  Format.printf "%a@." Stats.pp k.Kernel.stats;
  0

(* ---------------- trace: Chrome-JSON export of a demo run ------------- *)

let run_chrome_trace demo out connections =
  let module Trace = Wedge_sim.Trace in
  let module Metrics = Wedge_sim.Metrics in
  let module Guard = Wedge_net.Guard in
  let module Cost_model = Wedge_sim.Cost_model in
  let k = Kernel.create ~costs:Cost_model.default () in
  Trace.arm ~capacity:(1 lsl 18) k.Kernel.trace;
  let m = Metrics.create () in
  let serve_httpd () =
    let env = Wedge_httpd.Httpd_env.install ~image_pages:80 k in
    W.register_metrics m env.Wedge_httpd.Httpd_env.app;
    let guard = Guard.create ~clock:k.Kernel.clock ~max_conns:16 ~trace:k.Kernel.trace () in
    Guard.register_metrics m guard;
    Fiber.run (fun () ->
        let l =
          Chan.listener ~clock:k.Kernel.clock ~costs:Cost_model.default
            ~trace:k.Kernel.trace ()
        in
        Chan.register_metrics m l;
        Fiber.spawn (fun () ->
            Guard.accept_loop guard l
              ~reject:(fun _ ep -> Chan.close ep)
              ~serve:(fun conn ->
                ignore (Wedge_httpd.Httpd_simple.serve_connection env (Guard.ep conn))));
        let resolved = ref 0 in
        for i = 1 to connections do
          Fiber.spawn (fun () ->
              Fiber.wait_until ~what:"window" (fun () -> !resolved >= i - 12);
              (match Chan.connect l with
              | exception Chan.Refused _ -> ()
              | ep ->
                  ignore
                    (Wedge_httpd.Https_client.get ~rng:(Drbg.create ~seed:(1000 + i))
                       ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html"
                       ep));
              incr resolved)
        done;
        Fiber.wait_until ~what:"clients resolved" (fun () -> !resolved = connections);
        Guard.drain guard l)
  in
  let serve_pop3 () =
    Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
    let app = W.create_app k in
    W.boot app;
    let main = W.main_ctx app in
    W.register_metrics m app;
    let guard = Guard.create ~clock:k.Kernel.clock ~max_conns:8 ~trace:k.Kernel.trace () in
    Guard.register_metrics m guard;
    Fiber.run (fun () ->
        let l =
          Chan.listener ~clock:k.Kernel.clock ~costs:Cost_model.default
            ~trace:k.Kernel.trace ()
        in
        Chan.register_metrics m l;
        Fiber.spawn (fun () -> Wedge_pop3.Pop3_wedge.serve_loop main guard l);
        let resolved = ref 0 in
        for i = 1 to connections do
          Fiber.spawn (fun () ->
              Fiber.wait_until ~what:"window" (fun () -> !resolved >= i - 6);
              (match Chan.connect l with
              | exception Chan.Refused _ -> ()
              | ep ->
                  let c = Wedge_pop3.Pop3_client.connect ep in
                  ignore
                    (Wedge_pop3.Pop3_client.login c ~user:"alice" ~password:"wonderland");
                  ignore (Wedge_pop3.Pop3_client.stat c);
                  Wedge_pop3.Pop3_client.quit c;
                  Chan.close ep);
              incr resolved)
        done;
        Fiber.wait_until ~what:"clients resolved" (fun () -> !resolved = connections);
        Guard.drain guard l)
  in
  (match demo with "pop3" -> serve_pop3 () | _ -> serve_httpd ());
  let json = Trace.to_chrome_json k.Kernel.trace in
  match Trace.validate_chrome_json json with
  | Error e ->
      Printf.eprintf "trace: export failed schema validation: %s\n" e;
      1
  | Ok () ->
      let oc = open_out out in
      output_string oc json;
      close_out oc;
      Printf.printf
        "trace: %d %s connections -> %s (%d events, %d dropped, %d bytes)\n"
        connections demo out (Trace.recorded k.Kernel.trace)
        (Trace.dropped k.Kernel.trace) (String.length json);
      print_endline "load it in chrome://tracing or https://ui.perfetto.dev";
      Printf.printf "metrics: %s\n" (Metrics.to_json m);
      0

(* ---------------- cblog: cb-log + cb-analyze over a saved file -------- *)

let run_cblog out query fn =
  let module Cb_log = Wedge_crowbar.Cb_log in
  let module Cb_analyze = Wedge_crowbar.Cb_analyze in
  let module Trace = Wedge_crowbar.Trace in
  (* cb-log phase: trace one partitioned HTTPS request. *)
  let k = Kernel.create () in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:300 k in
  let log = Cb_log.create () in
  W.set_instr env.Wedge_httpd.Httpd_env.main (Cb_log.instr log);
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () -> ignore (Wedge_httpd.Httpd_mitm.serve_connection env server_ep));
      ignore
        (Wedge_httpd.Https_client.get ~rng:(Drbg.create ~seed:2)
           ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" client_ep));
  Trace.save (Cb_log.trace log) out;
  Printf.printf "cb-log: traced one request to %s (%d accesses, %d segments)\n" out
    (Trace.access_count (Cb_log.trace log))
    (List.length (Trace.segments (Cb_log.trace log)));
  (* cb-analyze phase: reload and query. *)
  match Trace.load out with
  | Error e ->
      Printf.eprintf "cb-analyze: %s\n" e;
      1
  | Ok tr -> (
      let fmt = Format.std_formatter in
      match query with
      | "items" ->
          Printf.printf "memory items used by %s and its descendants:\n" fn;
          Cb_analyze.pp_items fmt (Cb_analyze.items_used_by tr ~fn);
          0
      | "writes" ->
          Printf.printf "write sites of %s and its descendants:\n" fn;
          Cb_analyze.pp_items fmt (Cb_analyze.writes_of tr ~fn);
          0
      | "policy" ->
          Printf.printf "suggested policy for an sthread running %s:\n" fn;
          Cb_analyze.pp_suggestions fmt (Cb_analyze.suggest_policy tr ~fn);
          0
      | "static" ->
          print_endline "static over-approximation (every item the program touches):";
          Cb_analyze.pp_suggestions fmt (Cb_analyze.overapproximate tr);
          0
      | "segments" ->
          List.iter
            (fun s ->
              Printf.printf "  %-26s base 0x%x len %d %s\n"
                (Trace.seg_kind_to_string s.Trace.kind) s.Trace.base s.Trace.len
                (if s.Trace.live then "" else "(freed)"))
            (Trace.segments tr);
          0
      | q ->
          Printf.eprintf "unknown query %S (items|writes|policy|static|segments)\n" q;
          1)

(* ---------------- synth: record -> profile -> enforce ----------------- *)

let run_synth app seed out mode =
  let module Synth = Wedge_crowbar.Synth in
  let module Scenarios = Wedge_check.Scenarios in
  if not (List.mem app Scenarios.synth_apps) then begin
    Printf.eprintf "synth: unknown app %S (%s)\n" app
      (String.concat " | " Scenarios.synth_apps);
    1
  end
  else begin
    (* Record phase: deterministic workload under cb-log, least-privilege
       profile synthesized from the observed accesses. *)
    let profile = Scenarios.synth_record ~app ~seed in
    let ptext = Synth.Profile.print profile in
    (match Synth.Profile.parse ptext with
    | Ok p when Synth.Profile.equal p profile -> ()
    | _ -> failwith "synth: synthesized profile does not round-trip");
    let n_entries = List.length profile.Synth.Profile.p_entries in
    let n_grants = List.length (Synth.grants profile) in
    Printf.printf "synth: recorded %s workload (seed %d): %d entries, %d grants\n"
      app seed n_entries n_grants;
    (match out with
    | "" -> print_string ptext
    | path ->
        let oc = open_out path in
        output_string oc ptext;
        close_out oc;
        Printf.printf "synth: profile written to %s\n" path);
    match mode with
    | `Record -> 0
    | (`Complain | `Enforce) as m ->
        let mode_v, label =
          match m with
          | `Complain -> (Synth.Complain profile, "complain")
          | `Enforce -> (Synth.Enforce profile, "enforce")
        in
        let ok, summary, synth = Scenarios.synth_rerun ~app ~seed mode_v in
        let counts what = function
          | [] -> Printf.sprintf "no %s" what
          | l ->
              Printf.sprintf "%d %s:\n%s"
                (List.fold_left (fun a (_, n) -> a + n) 0 l)
                what
                (String.concat "\n"
                   (List.map (fun (m, n) -> Printf.sprintf "  %4d  %s" n m) l))
        in
        (match m with
        | `Complain ->
            Printf.printf "%s re-run: workload %s (%s); %s\n" label
              (if ok then "ok" else "FAILED")
              summary
              (counts "complaints" (Synth.complaints synth))
        | `Enforce ->
            Printf.printf "%s re-run: workload %s (%s); %s\n" label
              (if ok then "ok" else "FAILED")
              summary
              (counts "denials" (Synth.denials synth)));
        let excess = Synth.diff ~installed:profile ~observed:(Synth.synthesize synth) in
        List.iter (fun d -> Printf.printf "  observed beyond profile: %s\n" d) excess;
        if ok && Synth.denials synth = [] && excess = [] then 0 else 1
  end

(* ---------------- cmdliner plumbing ---------------- *)

let partition_arg choices =
  Arg.(value & opt (enum (List.map (fun c -> (c, c)) choices)) (List.hd choices)
       & info [ "partition"; "p" ] ~doc:(Printf.sprintf "Partitioning: %s" (String.concat ", " choices)))

let attack_arg = Arg.(value & flag & info [ "attack" ] ~doc:"Run the exploit payload")
let recycled_arg = Arg.(value & flag & info [ "recycled" ] ~doc:"Use recycled callgates")

let auth_arg =
  Arg.(value & opt (enum [ ("password", "password"); ("pubkey", "pubkey"); ("skey", "skey") ])
         "password"
       & info [ "auth" ] ~doc:"Authentication method")

let pop3_cmd =
  Cmd.v (Cmd.info "pop3" ~doc:"POP3 server demo (paper §2)")
    Term.(const run_pop3 $ partition_arg [ "wedge"; "mono" ] $ attack_arg)

let https_cmd =
  Cmd.v
    (Cmd.info "https" ~doc:"Apache/OpenSSL demo (paper §5.1)")
    Term.(const run_https $ partition_arg [ "mitm"; "simple"; "mono" ] $ attack_arg $ recycled_arg)

let ssh_cmd =
  Cmd.v (Cmd.info "ssh" ~doc:"OpenSSH demo (paper §5.2)")
    Term.(const run_ssh $ partition_arg [ "wedge"; "privsep"; "mono" ] $ auth_arg $ attack_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Kernel operation counters for one HTTPS request")
    Term.(const run_stats $ partition_arg [ "mitm"; "simple"; "mono" ])

let trace_cmd =
  let demo =
    Arg.(value & pos 0 (enum [ ("httpd", "httpd"); ("pop3", "pop3") ]) "httpd"
         & info [] ~docv:"DEMO" ~doc:"Workload to trace: httpd | pop3")
  in
  let out =
    Arg.(value & opt string "" & info [ "out"; "o" ] ~doc:"Output path (default DEMO.trace.json)")
  in
  let connections =
    Arg.(value & opt int 100 & info [ "connections"; "n" ] ~doc:"Client connections to drive")
  in
  let run demo out connections =
    let out = if out = "" then demo ^ ".trace.json" else out in
    run_chrome_trace demo out connections
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a demo workload with tracing armed and export Chrome trace JSON")
    Term.(const run $ demo $ out $ connections)

let check_cmd =
  let open Wedge_check in
  let scenario =
    Arg.(value & opt string "httpd"
         & info [ "scenario" ]
             ~doc:
               (Printf.sprintf "Scenario to explore: %s, or 'all'"
                  (String.concat " | " (Scenarios.names ()))))
  in
  let schedules =
    Arg.(value & opt int 100 & info [ "schedules"; "n" ] ~doc:"Seeded schedules to explore")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Exploration seed") in
  let policy =
    Arg.(value & opt (enum [ ("random", `Random); ("pct", `Pct) ]) `Random
         & info [ "policy" ] ~doc:"Scheduling policy: random | pct")
  in
  let diff =
    Arg.(value & flag
         & info [ "diff" ] ~doc:"Also run the differential flat-memory reference model")
  in
  let no_faults =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"Disable the scenario's fault plan")
  in
  let replay =
    Arg.(value & opt string ""
         & info [ "replay" ]
             ~doc:"Comma-separated decision trace: run one schedule under Replay")
  in
  let run scenario schedules seed policy diff no_faults replay =
    let faults = not no_faults in
    if replay <> "" then begin
      let trace =
        String.split_on_char ',' replay
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map (fun s -> int_of_string (String.trim s))
        |> Array.of_list
      in
      match Explore.replay ~diff ~faults ~scenario ~seed ~trace () with
      | summary ->
          Printf.printf "replay ok: %s\n" summary;
          0
      | exception e ->
          Printf.printf "replay FAILED: %s\n" (Printexc.to_string e);
          1
    end
    else begin
      let scenarios =
        (* "all" means every server scenario; "racy" is the deliberately
           failing control and only runs when named explicitly. *)
        if scenario = "all" then
          List.filter (fun n -> n <> "racy") (Scenarios.names ())
        else [ scenario ]
      in
      let failed = ref false in
      List.iter
        (fun sc ->
          let v =
            Explore.explore ~schedules ~policy ~diff ~faults ~log:print_endline
              ~scenario:sc ~seed ()
          in
          Printf.printf "%s: %s\n%!" sc (Explore.verdict_to_string v);
          match v with Explore.Failed _ -> failed := true | Explore.Passed _ -> ())
        scenarios;
      if !failed then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Explore seeded schedules of a chaos scenario under invariant oracles; \
          shrink and print a repro on failure")
    Term.(const run $ scenario $ schedules $ seed $ policy $ diff $ no_faults $ replay)

let synth_cmd =
  let app_arg =
    Arg.(value & pos 0 (enum [ ("httpd", "httpd"); ("pop3", "pop3"); ("sshd", "sshd") ])
           "httpd"
         & info [] ~docv:"APP" ~doc:"Workload to profile: httpd | pop3 | sshd")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Workload seed") in
  let out =
    Arg.(value & opt string ""
         & info [ "out"; "o" ] ~doc:"Write the profile to this file instead of stdout")
  in
  let mode =
    Arg.(value
         & opt (enum [ ("enforce", `Enforce); ("complain", `Complain); ("record", `Record) ])
             `Enforce
         & info [ "mode" ]
             ~doc:
               "After synthesis: re-run enforced (default), re-run logging would-be \
                violations (complain), or stop after printing (record)")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Synthesize a least-privilege profile from a recorded run and re-run the \
          workload under it")
    Term.(const run_synth $ app_arg $ seed $ out $ mode)

let cblog_cmd =
  let out =
    Arg.(value & opt string "/tmp/wedge.cblog" & info [ "out"; "o" ] ~doc:"Trace file path")
  in
  let query =
    Arg.(value & opt string "items"
         & info [ "query"; "q" ] ~doc:"items | writes | policy | static | segments")
  in
  let fn =
    Arg.(value & opt string "handle_request" & info [ "fn" ] ~doc:"Procedure to query")
  in
  Cmd.v
    (Cmd.info "cblog" ~doc:"cb-log one HTTPS request to a file and run a cb-analyze query on it")
    Term.(const run_cblog $ out $ query $ fn)

let () =
  let doc = "Wedge (NSDI 2008) reproduction - partitioned-application demos" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "wedge_cli" ~doc)
          [ pop3_cmd; https_cmd; ssh_cmd; stats_cmd; trace_cmd; cblog_cmd; synth_cmd; check_cmd ]))
