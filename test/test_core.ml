(* Tests for the core Wedge primitives: sthread default-deny semantics, the
   pristine snapshot, privilege-subset enforcement, callgates (trusted
   arguments, permission validation, recycled reuse), fork as the leaky
   baseline, smalloc_on/off and boundary variables. *)

module Kernel = Wedge_kernel.Kernel
module Prot = Wedge_kernel.Prot
module Process = Wedge_kernel.Process
module Fd_table = Wedge_kernel.Fd_table
module Selinux = Wedge_kernel.Selinux
module Vfs = Wedge_kernel.Vfs
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Tag = Wedge_mem.Tag
module W = Wedge_core.Wedge

let check = Alcotest.check

let mk_app ?(costs = Cost_model.free) ?image_pages () =
  let k = Kernel.create ~costs () in
  let app = W.create_app ?image_pages k in
  (k, app, W.main_ctx app)

let faulted h =
  match W.handle_status h with Process.Faulted _ -> true | _ -> false

(* ---------- default deny ---------- *)

let test_sthread_cannot_read_untagged_parent_memory () =
  let _, app, main = mk_app () in
  let secret_tag = W.tag_new ~name:"secret" main in
  let addr = W.smalloc main 32 secret_tag in
  W.write_string main addr "private key material 0123456789";
  W.boot app;
  (* Empty policy: the child must not even be able to name the memory. *)
  let h = W.sthread_create main (W.sc_create ()) (fun ctx _ -> W.read_u8 ctx addr) 0 in
  check Alcotest.bool "child faulted" true (faulted h);
  check Alcotest.int "join reports failure" (-1) (W.sthread_join main h)

let test_sthread_granted_tag_reads () =
  let _, app, main = mk_app () in
  let tag = W.tag_new ~name:"shared" main in
  let addr = W.smalloc main 16 tag in
  W.write_string main addr "hello sthread";
  W.boot app;
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.R;
  let h =
    W.sthread_create main sc
      (fun ctx _ -> if W.read_string ctx addr 13 = "hello sthread" then 7 else 0)
      0
  in
  check Alcotest.int "read through grant" 7 (W.sthread_join main h)

let test_sthread_read_grant_rejects_write () =
  let _, app, main = mk_app () in
  let tag = W.tag_new main in
  let addr = W.smalloc main 16 tag in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.R;
  let h = W.sthread_create main sc (fun ctx _ -> W.write_u8 ctx addr 1; 0) 0 in
  check Alcotest.bool "write faulted" true (faulted h)

let test_sthread_rw_grant_shares_writes () =
  let _, app, main = mk_app () in
  let tag = W.tag_new main in
  let addr = W.smalloc main 16 tag in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.RW;
  let h = W.sthread_create main sc (fun ctx _ -> W.write_string ctx addr "from child"; 0) 0 in
  check Alcotest.int "exit ok" 0 (W.sthread_join main h);
  check Alcotest.string "parent sees write" "from child" (W.read_string main addr 10)

let test_sthread_cow_grant_isolates_writes () =
  let _, app, main = mk_app () in
  let tag = W.tag_new main in
  let addr = W.smalloc main 16 tag in
  W.write_string main addr "original--";
  W.boot app;
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.COW;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        W.write_string ctx addr "childwrite";
        if W.read_string ctx addr 10 = "childwrite" then 1 else 0)
      0
  in
  check Alcotest.int "child saw its write" 1 (W.sthread_join main h);
  check Alcotest.string "parent unaffected" "original--" (W.read_string main addr 10)

let test_sthread_pristine_snapshot_is_pre_main () =
  (* Globals written after boot ("main() has run") must not leak to
     sthreads: they see the pristine snapshot. *)
  let _, app, main = mk_app () in
  let global = Wedge_kernel.Layout.data_base + 0x100 in
  W.write_string main global "init";
  W.boot app;
  W.write_string main global "SECRET-AFTER-MAIN";
  let h =
    W.sthread_create main (W.sc_create ())
      (fun ctx _ -> if W.read_string ctx global 4 = "init" then 1 else 0)
      0
  in
  check Alcotest.int "sthread sees pristine globals" 1 (W.sthread_join main h)

let test_sthread_private_writes_dont_leak_back () =
  let _, app, main = mk_app () in
  let global = Wedge_kernel.Layout.data_base + 0x200 in
  W.write_string main global "base";
  W.boot app;
  let h = W.sthread_create main (W.sc_create ()) (fun ctx _ -> W.write_string ctx global "evil"; 0) 0 in
  ignore (W.sthread_join main h);
  check Alcotest.string "parent globals intact" "base" (W.read_string main global 4)

let test_sthreads_isolated_from_each_other () =
  let _, app, main = mk_app () in
  let t1 = W.tag_new ~name:"one" main in
  let a1 = W.smalloc main 8 t1 in
  W.write_string main a1 "mine";
  W.boot app;
  let sc1 = W.sc_create () in
  W.sc_mem_add sc1 t1 Prot.RW;
  (* Second sthread with no grants must not see tag 1 even though another
     sthread has it mapped. *)
  ignore (W.sthread_create main sc1 (fun ctx _ -> W.read_u8 ctx a1) 0);
  let h2 = W.sthread_create main (W.sc_create ()) (fun ctx _ -> W.read_u8 ctx a1) 0 in
  check Alcotest.bool "peer denied" true (faulted h2)

let test_sthread_heap_is_private () =
  let _, app, main = mk_app () in
  W.boot app;
  (* Child mallocs and records the address; a sibling cannot read it. *)
  let addr = ref 0 in
  let h1 =
    W.sthread_create main (W.sc_create ())
      (fun ctx _ ->
        let p = W.malloc ctx 64 in
        W.write_string ctx p "heap secret";
        addr := p;
        0)
      0
  in
  ignore (W.sthread_join main h1);
  let a = !addr in
  let h2 = W.sthread_create main (W.sc_create ()) (fun ctx _ -> W.read_u8 ctx a) 0 in
  check Alcotest.bool "sibling heap unreadable" true (faulted h2)

(* ---------- privilege subset rule ---------- *)

let test_child_cannot_be_granted_what_parent_lacks () =
  let _, app, main = mk_app () in
  let tag = W.tag_new ~name:"t" main in
  W.boot app;
  let sc_r = W.sc_create () in
  W.sc_mem_add sc_r tag Prot.R;
  let inner_result = ref `Not_run in
  let h =
    W.sthread_create main sc_r
      (fun ctx _ ->
        (* This sthread holds R; it must not be able to spawn an RW child. *)
        let sc_rw = W.sc_create () in
        W.sc_mem_add sc_rw tag Prot.RW;
        (match W.sthread_create ctx sc_rw (fun _ _ -> 0) 0 with
        | _ -> inner_result := `Created
        | exception W.Privilege_violation _ -> inner_result := `Denied);
        0)
      0
  in
  ignore (W.sthread_join main h);
  check Alcotest.bool "escalation denied" true (!inner_result = `Denied)

let test_grant_of_unheld_tag_rejected () =
  let _, app, main = mk_app () in
  let tag = W.tag_new main in
  W.boot app;
  let sc_none = W.sc_create () in
  let outcome = ref `Not_run in
  let h =
    W.sthread_create main sc_none
      (fun ctx _ ->
        let sc = W.sc_create () in
        W.sc_mem_add sc tag Prot.R;
        (match W.sthread_create ctx sc (fun _ _ -> 0) 0 with
        | _ -> outcome := `Created
        | exception W.Privilege_violation _ -> outcome := `Denied);
        0)
      0
  in
  ignore (W.sthread_join main h);
  check Alcotest.bool "unheld tag denied" true (!outcome = `Denied)

let test_uid_change_requires_root () =
  let _, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_set_uid sc 1000;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* Non-root sthread tries to create a root child. *)
        let sc_root = W.sc_create () in
        W.sc_set_uid sc_root 0;
        (match W.sthread_create ctx sc_root (fun _ _ -> 0) 0 with
        | _ -> 1
        | exception W.Privilege_violation _ -> 2))
      0
  in
  check Alcotest.int "setuid 0 denied to non-root" 2 (W.sthread_join main h)

let test_fd_grant_subset () =
  let k, app, main = mk_app () in
  Vfs.install k.Kernel.vfs "/data" "hello";
  W.boot app;
  let fd =
    match W.open_file main "/data" with Ok fd -> fd | Error _ -> Alcotest.fail "open"
  in
  let sc = W.sc_create () in
  W.sc_fd_add sc fd Fd_table.perm_rw;
  (* file opened read-only: rw grant must be rejected *)
  (match W.sthread_create main sc (fun _ _ -> 0) 0 with
  | _ -> Alcotest.fail "expected Privilege_violation"
  | exception W.Privilege_violation _ -> ());
  let sc2 = W.sc_create () in
  W.sc_fd_add sc2 fd Fd_table.perm_r;
  let h =
    W.sthread_create main sc2
      (fun ctx _ -> if Bytes.to_string (W.fd_read ctx fd 5) = "hello" then 3 else 0)
      0
  in
  check Alcotest.int "fd read through grant" 3 (W.sthread_join main h)

let test_ungranted_fd_invisible () =
  let k, app, main = mk_app () in
  Vfs.install k.Kernel.vfs "/data" "hello";
  W.boot app;
  let fd = match W.open_file main "/data" with Ok fd -> fd | Error _ -> assert false in
  let h =
    W.sthread_create main (W.sc_create ())
      (fun ctx _ -> match W.fd_read ctx fd 5 with _ -> 1 | exception W.Fd_error _ -> 2)
      0
  in
  check Alcotest.int "fd invisible" 2 (W.sthread_join main h)

let test_selinux_policy_on_sthread () =
  let k, app, main = mk_app () in
  let se = k.Kernel.selinux in
  Selinux.allow_transition se ~from_:"init_t" ~to_:"locked_t";
  Selinux.allow se ~domain:"locked_t" ~syscall:"sthread_join";
  W.boot app;
  let tag = ref None in
  let sc = W.sc_create () in
  W.sc_sel_context sc "system_u:system_r:locked_t";
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* tag_new is not in locked_t's policy: denied. *)
        (match W.tag_new ctx with t -> tag := Some t | exception Kernel.Eperm _ -> ());
        99)
      0
  in
  (* The Eperm was raised after the compartment caught it? No: uncaught
     Eperm faults the sthread. Here we catch it inside, so exit is clean. *)
  check Alcotest.int "body ran" 99 (W.sthread_join main h);
  check Alcotest.bool "tag_new denied" true (!tag = None)

let test_selinux_transition_must_be_allowed () =
  let _, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_sel_context sc "system_u:system_r:random_t";
  match W.sthread_create main sc (fun _ _ -> 0) 0 with
  | _ -> Alcotest.fail "expected transition denial"
  | exception W.Privilege_violation _ -> ()

(* ---------- callgates ---------- *)

let test_callgate_accesses_secret_for_unprivileged_caller () =
  let _, app, main = mk_app () in
  let secret = W.tag_new ~name:"secret" main in
  let key = W.smalloc main 16 secret in
  W.write_string main key "0123456789abcdef";
  W.boot app;
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc secret Prot.R;
  let worker_sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main worker_sc ~name:"sum_key"
      ~entry:(fun gctx ~trusted ~arg:_ ->
        let b = W.read_bytes gctx trusted 16 in
        Bytes.fold_left (fun acc c -> acc + Char.code c) 0 b)
      ~cgsc ~trusted:key
  in
  let expected = String.fold_left (fun acc c -> acc + Char.code c) 0 "0123456789abcdef" in
  let h =
    W.sthread_create main worker_sc
      (fun ctx _ ->
        (* Direct read is denied... *)
        let direct = match W.read_u8 ctx key with _ -> `Read | exception _ -> `Denied in
        assert (direct = `Denied);
        (* ...but the callgate computes over the secret on our behalf. *)
        W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0)
      0
  in
  check Alcotest.int "callgate result" expected (W.sthread_join main h)

let test_callgate_requires_capability () =
  let _, app, main = mk_app () in
  W.boot app;
  let sc_with = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc_with ~name:"noop"
      ~entry:(fun _ ~trusted:_ ~arg -> arg + 1)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  (* An sthread whose policy does NOT include the gate cannot invoke it. *)
  let h =
    W.sthread_create main (W.sc_create ())
      (fun ctx _ ->
        match W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:1 with
        | _ -> 1
        | exception W.Privilege_violation _ -> 2)
      0
  in
  check Alcotest.int "uninvocable without grant" 2 (W.sthread_join main h);
  let h2 = W.sthread_create main sc_with (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:1) 0 in
  check Alcotest.int "invocable with grant" 2 (W.sthread_join main h2)

let test_callgate_trusted_arg_tamperproof () =
  (* The trusted argument is kernel-held: the caller passes only its own
     untrusted argument and cannot redirect the gate to other memory. *)
  let _, app, main = mk_app () in
  let secret = W.tag_new ~name:"secret" main in
  let real = W.smalloc main 8 secret in
  W.write_string main real "realdata";
  let decoy = W.smalloc main 8 secret in
  W.write_string main decoy "decoy!!!";
  W.boot app;
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc secret Prot.R;
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc ~name:"read_trusted"
      ~entry:(fun gctx ~trusted ~arg:_ ->
        if W.read_string gctx trusted 8 = "realdata" then 1 else 0)
      ~cgsc ~trusted:real
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:decoy)
      0
  in
  check Alcotest.int "gate read the kernel-held trusted arg" 1 (W.sthread_join main h)

let test_callgate_creation_requires_creator_privilege () =
  let _, app, main = mk_app () in
  let secret = W.tag_new ~name:"secret" main in
  W.boot app;
  (* An unprivileged sthread cannot mint a callgate with access to the
     secret tag. *)
  let h =
    W.sthread_create main (W.sc_create ())
      (fun ctx _ ->
        let cgsc = W.sc_create () in
        W.sc_mem_add cgsc secret Prot.R;
        match
          W.sc_cgate_add ctx (W.sc_create ()) ~name:"evil"
            ~entry:(fun _ ~trusted:_ ~arg -> arg)
            ~cgsc ~trusted:0
        with
        | _ -> 1
        | exception W.Privilege_violation _ -> 2)
      0
  in
  check Alcotest.int "gate minting denied" 2 (W.sthread_join main h)

let test_callgate_extra_perms_validated_against_caller () =
  let _, app, main = mk_app () in
  let secret = W.tag_new ~name:"secret" main in
  let addr = W.smalloc main 8 secret in
  W.write_string main addr "Sesame42";
  W.boot app;
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc ~name:"echo"
      ~entry:(fun gctx ~trusted:_ ~arg ->
        match W.read_u8 gctx arg with v -> v | exception _ -> -7)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* The caller does not hold [secret], so it cannot slip the gate a
           read grant on it ("confused deputy"). *)
        let perms = W.sc_create () in
        W.sc_mem_add perms secret Prot.R;
        match W.cgate ctx gate ~perms ~arg:addr with
        | _ -> 1
        | exception W.Privilege_violation _ -> 2)
      0
  in
  check Alcotest.int "perm smuggling denied" 2 (W.sthread_join main h)

let test_callgate_arg_passing_via_tag () =
  (* The idiomatic pattern (§4.1): the caller smallocs its argument in a
     tag and passes read permission for that tag along with the call. *)
  let _, app, main = mk_app () in
  W.boot app;
  let argtag = W.tag_new ~name:"args" main in
  let sc = W.sc_create () in
  W.sc_mem_add sc argtag Prot.RW;
  let gate =
    W.sc_cgate_add main sc ~name:"strlen"
      ~entry:(fun gctx ~trusted:_ ~arg ->
        let len = W.read_u8 gctx arg in
        String.length (W.read_string gctx (arg + 1) len))
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let buf = W.smalloc ctx 32 argtag in
        W.write_u8 ctx buf 5;
        W.write_string ctx (buf + 1) "hello";
        let perms = W.sc_create () in
        W.sc_mem_add perms argtag Prot.R;
        W.cgate ctx gate ~perms ~arg:buf)
      0
  in
  check Alcotest.int "gate read caller's tagged arg" 5 (W.sthread_join main h)

let test_callgate_fault_contained () =
  let _, app, main = mk_app () in
  let secret = W.tag_new main in
  let addr = W.smalloc main 8 secret in
  W.boot app;
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc ~name:"crasher"
      ~entry:(fun gctx ~trusted:_ ~arg:_ -> W.read_u8 gctx addr)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0) 0
  in
  check Alcotest.int "faulting gate returns -1, caller survives" (-1) (W.sthread_join main h)

let test_callgate_runs_with_creator_identity () =
  let k, app, main = mk_app () in
  Vfs.install k.Kernel.vfs ~uid:0 ~mode:0o600 "/etc/shadow" "top-secret";
  W.boot app;
  let sc = W.sc_create () in
  W.sc_set_uid sc 1000;
  let gate =
    (* Created by root main: the gate runs as root even when invoked by the
       uid-1000 worker (it "inherits the filesystem root and user id of its
       creator", §3.3). *)
    W.sc_cgate_add main sc ~name:"read_shadow"
      ~entry:(fun gctx ~trusted:_ ~arg:_ ->
        match W.vfs_read gctx "/etc/shadow" with Ok _ -> 1 | Error _ -> 0)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let direct = match W.vfs_read ctx "/etc/shadow" with Ok _ -> 1 | Error _ -> 0 in
        let via_gate = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0 in
        (direct * 10) + via_gate)
      0
  in
  check Alcotest.int "direct denied, gate allowed" 1 (W.sthread_join main h)

let test_recycled_callgate_state_persists () =
  let _, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add ~recycled:true main sc ~name:"counter"
      ~entry:(fun gctx ~trusted:_ ~arg:_ ->
        (* Recycled gates keep their private heap across invocations: a
           counter stored there increments per call. *)
        let cell = 0x02000000 + 40 in
        if not (W.can_read gctx ~addr:cell ~len:8) then ignore (W.malloc gctx 8);
        let v = W.read_u64 gctx cell + 1 in
        W.write_u64 gctx cell v;
        v)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let a = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0 in
        let b = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0 in
        let c = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0 in
        (a * 100) + (b * 10) + c)
      0
  in
  check Alcotest.int "recycled state persisted" 123 (W.sthread_join main h)

let test_fresh_callgate_state_does_not_persist () =
  let _, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc ~name:"counter"
      ~entry:(fun gctx ~trusted:_ ~arg:_ ->
        let cell = 0x02000000 + 40 in
        if not (W.can_read gctx ~addr:cell ~len:8) then ignore (W.malloc gctx 8);
        let v = W.read_u64 gctx cell + 1 in
        W.write_u64 gctx cell v;
        v)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let a = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0 in
        let b = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0 in
        (a * 10) + b)
      0
  in
  check Alcotest.int "fresh gates do not accumulate" 11 (W.sthread_join main h)

let test_recycled_callgate_cheaper () =
  let _, app, main = mk_app ~costs:Cost_model.default () in
  W.boot app;
  let k = W.kernel app in
  let sc = W.sc_create () in
  let mk recycled name =
    W.sc_cgate_add ~recycled main sc ~name ~entry:(fun _ ~trusted:_ ~arg -> arg)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let fresh = mk false "fresh" and recy = mk true "recycled" in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* Warm up the recycled gate, then time one call of each. *)
        ignore (W.cgate ctx recy ~perms:(W.sc_create ()) ~arg:0);
        let t0 = Clock.now k.Kernel.clock in
        ignore (W.cgate ctx fresh ~perms:(W.sc_create ()) ~arg:0);
        let t1 = Clock.now k.Kernel.clock in
        ignore (W.cgate ctx recy ~perms:(W.sc_create ()) ~arg:0);
        let t2 = Clock.now k.Kernel.clock in
        let fresh_cost = t1 - t0 and recy_cost = t2 - t1 in
        if fresh_cost > 4 * recy_cost then 1 else 0)
      0
  in
  check Alcotest.int "recycled much cheaper than fresh" 1 (W.sthread_join main h)

let test_tag_delete_revokes_from_pooled_sthreads () =
  (* tag_delete is a global revocation: the pooled sthread behind a
     recycled callgate keeps its address space across invocations, so if
     deletion only unmapped the deleter's pages the pool would retain a
     live window onto frames the tag cache is about to scrub and hand to
     the next connection. *)
  let k, app, main = mk_app () in
  W.boot app;
  let tag = W.tag_new ~name:"conn" ~pages:1 main in
  let addr = W.smalloc main 16 tag in
  W.write_string main addr "per-conn secret!";
  let sc = W.sc_create () in
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc tag Prot.R;
  let gate =
    W.sc_cgate_add ~recycled:true main sc ~name:"peek"
      ~entry:(fun gctx ~trusted:_ ~arg:_ -> W.read_u8 gctx addr)
      ~cgsc ~trusted:0
  in
  let invoke () =
    W.sthread_join main
      (W.sthread_create main sc (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0) 0)
  in
  check Alcotest.int "pooled gate reads the tag" (Char.code 'p') (invoke ());
  W.tag_delete main tag;
  check Alcotest.bool "remote revocation recorded" true
    (Stats.get k.Kernel.stats "tlb.remote_shootdown" >= 1);
  (* The pooled sthread survived the delete but its mapping did not: the
     next invocation faults instead of reading stale memory. *)
  check Alcotest.int "pooled gate lost access" (-1) (invoke ())

(* ---------- fork baseline ---------- *)

let test_fork_inherits_secrets () =
  (* The behaviour Wedge exists to avoid: a forked child reads everything
     the parent had, without any grant. *)
  let _, app, main = mk_app () in
  let secret = W.tag_new ~name:"secret" main in
  let addr = W.smalloc main 16 secret in
  W.write_string main addr "inherited-secret";
  W.boot app;
  let h = W.fork main (fun child -> if W.read_string child addr 16 = "inherited-secret" then 1 else 0) in
  check Alcotest.int "fork child read the secret" 1 (W.sthread_join main h)

let test_fork_cow_isolation () =
  let _, app, main = mk_app () in
  let tag = W.tag_new main in
  let addr = W.smalloc main 16 tag in
  W.write_string main addr "parent-data-----";
  W.boot app;
  let h = W.fork main (fun child -> W.write_string child addr "child-data------"; 0) in
  ignore (W.sthread_join main h);
  check Alcotest.string "parent unaffected by child writes" "parent-data-----"
    (W.read_string main addr 16)

(* ---------- smalloc_on / smalloc_off / boundary ---------- *)

let test_smalloc_on_redirects_malloc () =
  let _, app, main = mk_app () in
  let tag = W.tag_new ~name:"legacy" main in
  W.boot app;
  W.smalloc_on main tag;
  let p = W.malloc main 32 in
  W.smalloc_off main;
  let q = W.malloc main 32 in
  check Alcotest.bool "redirected into tag segment" true
    (p >= tag.Tag.base && p < tag.Tag.base + (tag.Tag.pages * 4096));
  check Alcotest.bool "back to private heap" true (q >= 0x02000000 && q < 0x02000000 + (256 * 4096));
  (* Data written via the redirected pointer is shareable via the tag. *)
  W.write_string main p "legacy";
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.R;
  let h = W.sthread_create main sc (fun ctx _ -> if W.read_string ctx p 6 = "legacy" then 1 else 0) 0 in
  check Alcotest.int "shared" 1 (W.sthread_join main h)

let test_smalloc_on_save_restore () =
  let _, app, main = mk_app () in
  let t1 = W.tag_new ~name:"t1" main in
  let t2 = W.tag_new ~name:"t2" main in
  W.boot app;
  W.smalloc_on main t1;
  let saved = W.smalloc_state main in
  W.smalloc_on main t2;
  let p2 = W.malloc main 16 in
  (match saved with Some t -> W.smalloc_on main t | None -> W.smalloc_off main);
  let p1 = W.malloc main 16 in
  W.smalloc_off main;
  check Alcotest.bool "inner in t2" true (p2 >= t2.Tag.base && p2 < t2.Tag.base + (16 * 4096));
  check Alcotest.bool "restored to t1" true (p1 >= t1.Tag.base && p1 < t1.Tag.base + (16 * 4096))

let test_boundary_var_excluded_from_snapshot () =
  let _, app, main = mk_app () in
  let addr = W.boundary_var app ~id:1 ~name:"static_key" ~size:64 in
  W.write_string main addr "statically-initialized-secret";
  W.boot app;
  (* Default sthread: boundary section is NOT part of the pristine map. *)
  let h = W.sthread_create main (W.sc_create ()) (fun ctx _ -> W.read_u8 ctx addr) 0 in
  check Alcotest.bool "boundary var invisible by default" true (faulted h);
  (* But grantable through its BOUNDARY_TAG. *)
  let btag = W.boundary_tag main ~id:1 in
  let sc = W.sc_create () in
  W.sc_mem_add sc btag Prot.R;
  let h2 =
    W.sthread_create main sc
      (fun ctx _ -> if W.read_string ctx addr 29 = "statically-initialized-secret" then 1 else 0)
      0
  in
  check Alcotest.int "grantable via boundary tag" 1 (W.sthread_join main h2)

let test_boundary_var_requires_preboot () =
  let _, app, _ = mk_app () in
  W.boot app;
  match W.boundary_var app ~id:9 ~name:"late" ~size:8 with
  | _ -> Alcotest.fail "expected rejection after boot"
  | exception Invalid_argument _ -> ()

(* ---------- tag lifecycle through the engine ---------- *)

let test_tag_delete_and_reuse () =
  let k, app, main = mk_app () in
  W.boot app;
  let t1 = W.tag_new ~name:"a" ~pages:4 main in
  let base1 = t1.Tag.base in
  let p = W.smalloc main 64 t1 in
  W.write_string main p "sensitive" ;
  W.tag_delete main t1;
  let t2 = W.tag_new ~name:"b" ~pages:4 main in
  check Alcotest.int "range reused from cache" base1 t2.Tag.base;
  check Alcotest.int "one cache hit" 1 (Stats.get k.Kernel.stats "tag_new.reuse");
  (* Reused memory was scrubbed: allocate and look for remnants. *)
  let q = W.smalloc main 64 t2 in
  let b = W.read_bytes main q 64 in
  check Alcotest.bool "no remnant data" false
    (String.length (Bytes.to_string b) >= 9 && Bytes.to_string b = "sensitive")

let test_tag_delete_requires_rw () =
  let _, app, main = mk_app () in
  let tag = W.tag_new main in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.R;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        match W.tag_delete ctx tag with
        | _ -> 1
        | exception W.Privilege_violation _ -> 2)
      0
  in
  check Alcotest.int "delete denied to reader" 2 (W.sthread_join main h)

let test_untagged_memory_cannot_be_named () =
  (* Memory allocated without a tag cannot appear in any policy (§3.2): the
     API makes it impossible — mem grants require a Tag.t. This test pins
     the closest observable: a child granted every live tag still cannot
     reach the parent's heap allocation. *)
  let _, app, main = mk_app () in
  W.boot app;
  let p = W.malloc main 32 in
  W.write_string main p "untagged secret";
  let sc = W.sc_create () in
  let h = W.sthread_create main sc (fun ctx _ -> W.read_u8 ctx p) 0 in
  check Alcotest.bool "parent heap unreachable" true (faulted h)

(* ---------- costs (Figure 7 shape, sanity level) ---------- *)

let test_sthread_cost_similar_to_fork () =
  let k, app, main = mk_app ~costs:Cost_model.default () in
  W.boot app;
  let clock = k.Kernel.clock in
  let time f = let t0 = Clock.now clock in f (); Clock.now clock - t0 in
  let sthread_t =
    time (fun () -> ignore (W.sthread_create main (W.sc_create ()) (fun _ _ -> 0) 0))
  in
  let fork_t = time (fun () -> ignore (W.fork main (fun _ -> 0))) in
  let pthread_t = time (fun () -> ignore (W.pthread main (fun _ -> 0))) in
  check Alcotest.bool "sthread within 2x of fork" true
    (sthread_t < fork_t * 2 && fork_t < sthread_t * 2);
  check Alcotest.bool "sthread much dearer than pthread" true (sthread_t > 4 * pthread_t)

let () =
  Alcotest.run "wedge_core"
    [
      ( "default-deny",
        [
          Alcotest.test_case "untagged parent memory invisible" `Quick
            test_sthread_cannot_read_untagged_parent_memory;
          Alcotest.test_case "granted tag readable" `Quick test_sthread_granted_tag_reads;
          Alcotest.test_case "read grant rejects write" `Quick test_sthread_read_grant_rejects_write;
          Alcotest.test_case "rw grant shares writes" `Quick test_sthread_rw_grant_shares_writes;
          Alcotest.test_case "cow grant isolates writes" `Quick test_sthread_cow_grant_isolates_writes;
          Alcotest.test_case "pristine snapshot pre-main" `Quick test_sthread_pristine_snapshot_is_pre_main;
          Alcotest.test_case "private writes stay private" `Quick
            test_sthread_private_writes_dont_leak_back;
          Alcotest.test_case "sthreads isolated from each other" `Quick
            test_sthreads_isolated_from_each_other;
          Alcotest.test_case "heap is private" `Quick test_sthread_heap_is_private;
        ] );
      ( "subset-rule",
        [
          Alcotest.test_case "no escalation beyond parent" `Quick
            test_child_cannot_be_granted_what_parent_lacks;
          Alcotest.test_case "unheld tag rejected" `Quick test_grant_of_unheld_tag_rejected;
          Alcotest.test_case "uid change requires root" `Quick test_uid_change_requires_root;
          Alcotest.test_case "fd grant subset" `Quick test_fd_grant_subset;
          Alcotest.test_case "ungranted fd invisible" `Quick test_ungranted_fd_invisible;
          Alcotest.test_case "selinux syscall policy" `Quick test_selinux_policy_on_sthread;
          Alcotest.test_case "selinux transition check" `Quick test_selinux_transition_must_be_allowed;
        ] );
      ( "callgates",
        [
          Alcotest.test_case "secret behind gate" `Quick
            test_callgate_accesses_secret_for_unprivileged_caller;
          Alcotest.test_case "capability required" `Quick test_callgate_requires_capability;
          Alcotest.test_case "trusted arg tamperproof" `Quick test_callgate_trusted_arg_tamperproof;
          Alcotest.test_case "creation needs creator privilege" `Quick
            test_callgate_creation_requires_creator_privilege;
          Alcotest.test_case "extra perms subset of caller" `Quick
            test_callgate_extra_perms_validated_against_caller;
          Alcotest.test_case "arg passing via tag" `Quick test_callgate_arg_passing_via_tag;
          Alcotest.test_case "fault contained" `Quick test_callgate_fault_contained;
          Alcotest.test_case "creator identity" `Quick test_callgate_runs_with_creator_identity;
          Alcotest.test_case "recycled state persists" `Quick test_recycled_callgate_state_persists;
          Alcotest.test_case "fresh state does not persist" `Quick
            test_fresh_callgate_state_does_not_persist;
          Alcotest.test_case "recycled cheaper" `Quick test_recycled_callgate_cheaper;
          Alcotest.test_case "tag delete revokes from pool" `Quick
            test_tag_delete_revokes_from_pooled_sthreads;
        ] );
      ( "fork-baseline",
        [
          Alcotest.test_case "fork inherits secrets" `Quick test_fork_inherits_secrets;
          Alcotest.test_case "fork COW isolation" `Quick test_fork_cow_isolation;
        ] );
      ( "legacy-aids",
        [
          Alcotest.test_case "smalloc_on redirects" `Quick test_smalloc_on_redirects_malloc;
          Alcotest.test_case "smalloc_on save/restore" `Quick test_smalloc_on_save_restore;
          Alcotest.test_case "boundary var excluded" `Quick test_boundary_var_excluded_from_snapshot;
          Alcotest.test_case "boundary var pre-boot only" `Quick test_boundary_var_requires_preboot;
        ] );
      ( "tags",
        [
          Alcotest.test_case "delete and cached reuse" `Quick test_tag_delete_and_reuse;
          Alcotest.test_case "delete requires rw" `Quick test_tag_delete_requires_rw;
          Alcotest.test_case "untagged memory unnameable" `Quick test_untagged_memory_cannot_be_named;
        ] );
      ( "costs",
        [ Alcotest.test_case "sthread ~ fork >> pthread" `Quick test_sthread_cost_similar_to_fork ] );
    ]
