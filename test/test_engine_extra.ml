(* Deeper engine coverage: capability delegation, deep nesting, COW
   sharing semantics, instrumentation inheritance, stack frames, the
   recycled-callgate cross-principal residue the paper warns about (§3.3),
   fork vs boundary variables, and property tests of the subset rule. *)

module Kernel = Wedge_kernel.Kernel
module Prot = Wedge_kernel.Prot
module Process = Wedge_kernel.Process
module Fd_table = Wedge_kernel.Fd_table
module Layout = Wedge_kernel.Layout
module Vm = Wedge_kernel.Vm
module Cost_model = Wedge_sim.Cost_model
module Instr = Wedge_sim.Instr
module Stats = Wedge_sim.Stats
module Tag = Wedge_mem.Tag
module Smalloc = Wedge_mem.Smalloc
module W = Wedge_core.Wedge

let check = Alcotest.check

let mk_app () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  W.boot app;
  (k, app, W.main_ctx app)

(* ---------- capability delegation ---------- *)

let test_gate_cap_passing () =
  let _, _, main = mk_app () in
  let mid_sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main mid_sc ~name:"g" ~entry:(fun _ ~trusted:_ ~arg -> arg * 2)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main mid_sc
      (fun mid _ ->
        (* The middle sthread holds the capability and passes it on. *)
        let inner_sc = W.sc_create () in
        W.sc_gate_grant inner_sc gate;
        let h2 =
          W.sthread_create mid inner_sc
            (fun inner _ -> W.cgate inner gate ~perms:(W.sc_create ()) ~arg:21)
            0
        in
        W.sthread_join mid h2)
      0
  in
  check Alcotest.int "capability flowed two levels" 42 (W.sthread_join main h)

let test_gate_cap_not_forgeable () =
  let _, _, main = mk_app () in
  let holder_sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main holder_sc ~name:"g" ~entry:(fun _ ~trusted:_ ~arg -> arg)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  (* An unrelated sthread (no capability) cannot grant it to a child. *)
  let h =
    W.sthread_create main (W.sc_create ())
      (fun ctx _ ->
        let sc = W.sc_create () in
        W.sc_gate_grant sc gate;
        match W.sthread_create ctx sc (fun _ _ -> 0) 0 with
        | _ -> 1
        | exception W.Privilege_violation _ -> 2)
      0
  in
  check Alcotest.int "unheld capability ungrantable" 2 (W.sthread_join main h)

(* ---------- deep nesting with narrowing ---------- *)

let test_three_level_narrowing () =
  let _, _, main = mk_app () in
  let t = W.tag_new ~name:"t" main in
  let addr = W.smalloc main 16 t in
  W.write_string main addr "deep";
  let l1 = W.sc_create () in
  W.sc_mem_add l1 t Prot.RW;
  let h =
    W.sthread_create main l1
      (fun c1 _ ->
        let l2 = W.sc_create () in
        W.sc_mem_add l2 t Prot.R;
        let h2 =
          W.sthread_create c1 l2
            (fun c2 _ ->
              (* level 2: read-only works, write faults in a child *)
              let l3 = W.sc_create () in
              W.sc_mem_add l3 t Prot.R;
              let h3 =
                W.sthread_create c2 l3
                  (fun c3 _ -> if W.read_string c3 addr 4 = "deep" then 1 else 0)
                  0
              in
              W.sthread_join c2 h3)
            0
        in
        W.sthread_join c1 h2)
      0
  in
  check Alcotest.int "read at depth 3" 1 (W.sthread_join main h)

(* ---------- COW sharing timeline ---------- *)

let test_cow_child_sees_pre_creation_state_only () =
  let _, _, main = mk_app () in
  let t = W.tag_new main in
  let addr = W.smalloc main 16 t in
  W.write_string main addr "v1";
  let sc = W.sc_create () in
  W.sc_mem_add sc t Prot.COW;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* COW means shared frames: the child reads the data as of access
           time (no write has happened on either side). *)
        let first = W.read_string ctx addr 2 in
        W.write_string ctx addr "cw";
        if first = "v1" && W.read_string ctx addr 2 = "cw" then 1 else 0)
      0
  in
  check Alcotest.int "cow timeline" 1 (W.sthread_join main h);
  check Alcotest.string "parent untouched" "v1" (W.read_string main addr 2)

(* ---------- instr inheritance ---------- *)

let test_instr_inherited_by_sthreads_and_gates () =
  let _, _, main = mk_app () in
  let t = W.tag_new main in
  let addr = W.smalloc main 8 t in
  let accesses = ref 0 in
  let instr = { Instr.null with Instr.on_access = (fun _ _ _ -> incr accesses) } in
  W.set_instr main instr;
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc t Prot.RW;
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc ~name:"g"
      ~entry:(fun g ~trusted ~arg:_ -> W.read_u8 g trusted)
      ~cgsc ~trusted:addr
  in
  let before = !accesses in
  let h =
    W.sthread_create main sc (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0) 0
  in
  ignore (W.sthread_join main h);
  W.set_instr main Instr.null;
  check Alcotest.bool "gate access instrumented through inheritance" true (!accesses > before)

(* ---------- stack frames ---------- *)

let test_stack_frames_nest_and_reuse () =
  let _, _, main = mk_app () in
  let outer = ref 0 and inner = ref 0 in
  W.stack_frame main ~name:"outer" ~locals:64 (fun base ->
      outer := base;
      W.write_u64 main base 7;
      W.stack_frame main ~name:"inner" ~locals:32 (fun base2 ->
          inner := base2;
          check Alcotest.bool "grows down" true (base2 < base));
      check Alcotest.int "outer intact after inner pops" 7 (W.read_u64 main base));
  (* After popping, the space is reused. *)
  W.stack_frame main ~name:"again" ~locals:64 (fun base -> check Alcotest.int "reused" !outer base)

let test_stack_overflow_detected () =
  let _, _, main = mk_app () in
  let rec recurse depth k =
    W.stack_frame main ~name:"deep" ~locals:4096 (fun _ ->
        if depth > 0 then recurse (depth - 1) k else k ())
  in
  match recurse (Layout.stack_pages + 4) (fun () -> ()) with
  | () -> Alcotest.fail "expected overflow"
  | exception Invalid_argument _ -> ()

(* ---------- recycled gates: the §3.3 residue warning ---------- *)

let test_recycled_gate_leaks_across_principals () =
  (* "Should a recycled callgate be exploited, and called by sthreads
     acting on behalf of different principals, sensitive arguments from
     one caller may become visible to another."  We model the exploited
     gate as one with an over-read bug. *)
  let _, _, main = mk_app () in
  let argt = W.tag_new ~name:"args" main in
  let arg_block = W.smalloc main 64 argt in
  let run_gate recycled =
    let sc = W.sc_create () in
    W.sc_mem_add sc argt Prot.RW;
    let gate =
      W.sc_cgate_add ~recycled main sc ~name:(if recycled then "buggy-r" else "buggy-f")
        ~entry:(fun g ~trusted:_ ~arg ->
          (* copies the argument into private heap scratch... *)
          let scratch =
            if W.can_read g ~addr:(Layout.heap_base + 40) ~len:1 then Layout.heap_base + 40
            else W.malloc g 32
          in
          let v = W.read_string g arg 16 in
          (* ...then (buggy) echoes 16 bytes from the scratch BEFORE
             copying the new argument: stale data from the last caller. *)
          let stale = W.read_string g scratch 16 in
          W.write_string g scratch v;
          W.write_string g arg stale;
          1)
        ~cgsc:(W.sc_create ()) ~trusted:0
    in
    let arg_perms () =
      let p = W.sc_create () in
      W.sc_mem_add p argt Prot.RW;
      p
    in
    (* Principal A passes a secret... *)
    let ha =
      W.sthread_create main sc
        (fun ctx _ ->
          W.write_string ctx arg_block "SECRET-OF-ALICE!";
          W.cgate ctx gate ~perms:(arg_perms ()) ~arg:arg_block)
        0
    in
    ignore (W.sthread_join main ha);
    (* ...principal B calls the same gate and reads the echo. *)
    let leaked = ref "" in
    let hb =
      W.sthread_create main sc
        (fun ctx _ ->
          W.write_string ctx arg_block "bbbbbbbbbbbbbbbb";
          ignore (W.cgate ctx gate ~perms:(arg_perms ()) ~arg:arg_block);
          leaked := W.read_string ctx arg_block 16;
          0)
        0
    in
    ignore (W.sthread_join main hb);
    !leaked
  in
  check Alcotest.string "recycled gate leaks A's argument to B" "SECRET-OF-ALICE!"
    (run_gate true);
  check Alcotest.bool "fresh gate has no residue" true (run_gate false <> "SECRET-OF-ALICE!")

(* ---------- fork vs boundary variables ---------- *)

let test_fork_inherits_boundary_vars_sthreads_dont () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  let addr = W.boundary_var app ~id:1 ~name:"static_secret" ~size:32 in
  W.write_string main addr "statically-init";
  W.boot app;
  let hf = W.fork main (fun child -> if W.read_string child addr 15 = "statically-init" then 1 else 0) in
  check Alcotest.int "fork sees boundary var" 1 (W.sthread_join main hf);
  let hs = W.sthread_create main (W.sc_create ()) (fun ctx _ -> W.read_u8 ctx addr) 0 in
  check Alcotest.bool "sthread does not" true
    (match W.handle_status hs with Process.Faulted _ -> true | _ -> false)

(* ---------- allocation failure is catchable, not fatal ---------- *)

let test_smalloc_oom_catchable_in_compartment () =
  let _, _, main = mk_app () in
  let t = W.tag_new ~pages:1 main in
  let sc = W.sc_create () in
  W.sc_mem_add sc t Prot.RW;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        match W.smalloc ctx 100_000 t with
        | _ -> 1
        | exception Smalloc.Out_of_tag_memory _ -> 2)
      0
  in
  check Alcotest.int "OOM catchable" 2 (W.sthread_join main h)

(* ---------- file descriptors on VFS files ---------- *)

let test_file_fd_read_write () =
  let k, _, main = mk_app () in
  Wedge_kernel.Vfs.install k.Kernel.vfs ~mode:0o644 "/data/log" "start:";
  (match W.open_file main ~write:true "/data/log" with
  | Error e -> Alcotest.failf "open: %s" (Wedge_kernel.Vfs.error_to_string e)
  | Ok fd ->
      (* sequential reads advance the offset *)
      check Alcotest.string "read 1" "sta" (Bytes.to_string (W.fd_read main fd 3));
      check Alcotest.string "read 2" "rt:" (Bytes.to_string (W.fd_read main fd 3));
      check Alcotest.string "eof" "" (Bytes.to_string (W.fd_read main fd 3));
      (* writes at the current offset append *)
      W.fd_write main fd (Bytes.of_string "more");
      W.fd_close main fd);
  match Wedge_kernel.Vfs.read_file k.Kernel.vfs ~root:"/" ~uid:0 "/data/log" with
  | Ok data -> check Alcotest.string "appended" "start:more" data
  | Error _ -> Alcotest.fail "file gone"

let test_file_fd_overwrite_mid_file () =
  let k, _, main = mk_app () in
  Wedge_kernel.Vfs.install k.Kernel.vfs ~mode:0o644 "/data/f" "AAAAAA";
  (match W.open_file main ~write:true "/data/f" with
  | Error _ -> Alcotest.fail "open"
  | Ok fd ->
      ignore (W.fd_read main fd 2);
      W.fd_write main fd (Bytes.of_string "bb");
      W.fd_close main fd);
  match Wedge_kernel.Vfs.read_file k.Kernel.vfs ~root:"/" ~uid:0 "/data/f" with
  | Ok data -> check Alcotest.string "patched in place" "AAbbAA" data
  | Error _ -> Alcotest.fail "file gone"

let test_open_file_respects_vfs_perms () =
  let k, _, main = mk_app () in
  Wedge_kernel.Vfs.install k.Kernel.vfs ~uid:0 ~mode:0o600 "/data/secret" "s";
  let sc = W.sc_create () in
  W.sc_set_uid sc 1000;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        match W.open_file ctx "/data/secret" with
        | Ok _ -> 1
        | Error Wedge_kernel.Vfs.Eacces -> 2
        | Error _ -> 3)
      0
  in
  check Alcotest.int "open denied by mode bits" 2 (W.sthread_join main h)

let test_readonly_fd_write_rejected () =
  let k, _, main = mk_app () in
  Wedge_kernel.Vfs.install k.Kernel.vfs ~mode:0o644 "/data/ro" "x";
  match W.open_file main "/data/ro" with
  | Error _ -> Alcotest.fail "open"
  | Ok fd -> (
      match W.fd_write main fd (Bytes.of_string "y") with
      | () -> Alcotest.fail "expected Fd_error"
      | exception W.Fd_error _ -> ())

(* ---------- pthread sharing semantics ---------- *)

let test_pthread_shares_everything () =
  (* The comparison baseline: a pthread body runs in the SAME address
     space — it sees and mutates the parent's memory directly. *)
  let _, _, main = mk_app () in
  let t = W.tag_new main in
  let addr = W.smalloc main 8 t in
  W.write_string main addr "before";
  let v = W.pthread main (fun ctx ->
      W.write_string ctx addr "after!";
      W.read_u8 ctx addr)
  in
  check Alcotest.int "ran inline" (Char.code 'a') v;
  check Alcotest.string "writes shared with parent" "after!" (W.read_string main addr 6)

(* ---------- exit codes ---------- *)

let test_exit_sthread_code () =
  let _, _, main = mk_app () in
  let h = W.sthread_create main (W.sc_create ()) (fun _ _ -> W.exit_sthread 42) 0 in
  check Alcotest.int "explicit exit code" 42 (W.sthread_join main h);
  check Alcotest.bool "status records it" true (W.handle_status h = Process.Exited 42)

(* ---------- per-request compartment structure (paper §6) ---------- *)

let test_mitm_request_structure () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:80 k in
  Wedge_sim.Fiber.run (fun () ->
      let client_ep, server_ep = Wedge_net.Chan.pair ~costs:Cost_model.free () in
      Wedge_sim.Fiber.spawn (fun () ->
          ignore (Wedge_httpd.Httpd_mitm.serve_connection env server_ep));
      ignore
        (Wedge_httpd.Https_client.get ~rng:(Wedge_crypto.Drbg.create ~seed:1)
           ~pinned:env.Wedge_httpd.Httpd_env.priv.Wedge_crypto.Rsa.pub ~path:"/index.html"
           client_ep));
  let stats = k.Kernel.stats in
  check Alcotest.int "two sthreads per request (paper: two)" 2 (Stats.get stats "sthread_create");
  check Alcotest.int "seven callgates instantiated" 7 (Stats.get stats "cgate_add");
  check Alcotest.bool "six+ invocations (paper: eight/nine incl. repeats)" true
    (Stats.get stats "cgate" >= 6)

(* ---------- property tests: the subset rule never escalates ---------- *)

let grant_gen = QCheck.oneofl [ Prot.R; Prot.RW; Prot.COW ]

let prop_subset_rule_sound =
  QCheck.Test.make ~name:"children cannot exceed parent grants" ~count:100
    QCheck.(pair grant_gen grant_gen)
    (fun (parent_grant, child_grant) ->
      let _, _, main = mk_app () in
      let t = W.tag_new main in
      let sc_p = W.sc_create () in
      W.sc_mem_add sc_p t parent_grant;
      let outcome = ref `None in
      let h =
        W.sthread_create main sc_p
          (fun ctx _ ->
            let sc_c = W.sc_create () in
            W.sc_mem_add sc_c t child_grant;
            (match W.sthread_create ctx sc_c (fun _ _ -> 0) 0 with
            | _ -> outcome := `Allowed
            | exception W.Privilege_violation _ -> outcome := `Denied);
            0)
          0
      in
      ignore (W.sthread_join main h);
      let expected =
        if Prot.grant_subsumes ~parent:parent_grant ~child:child_grant then `Allowed else `Denied
      in
      !outcome = expected)

let prop_default_deny_total =
  QCheck.Test.make ~name:"an empty policy can read no tag, ever" ~count:40
    QCheck.(int_range 1 6)
    (fun ntags ->
      let _, _, main = mk_app () in
      let tags = List.init ntags (fun i -> W.tag_new ~name:(string_of_int i) main) in
      let addrs = List.map (fun t -> W.smalloc main 8 t) tags in
      let h =
        W.sthread_create main (W.sc_create ())
          (fun ctx _ ->
            List.for_all
              (fun a -> match W.read_u8 ctx a with _ -> false | exception Vm.Fault _ -> true)
              addrs
            |> fun all_denied -> if all_denied then 1 else 0)
          0
      in
      W.sthread_join main h = 1)

let qcheck tests = List.map Test_rng.to_alcotest tests

let () =
  Alcotest.run "wedge_engine_extra"
    [
      ( "capabilities",
        [
          Alcotest.test_case "gate cap passing" `Quick test_gate_cap_passing;
          Alcotest.test_case "gate cap not forgeable" `Quick test_gate_cap_not_forgeable;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "three-level narrowing" `Quick test_three_level_narrowing;
          Alcotest.test_case "cow timeline" `Quick test_cow_child_sees_pre_creation_state_only;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "inherited by gates" `Quick test_instr_inherited_by_sthreads_and_gates;
          Alcotest.test_case "stack frames" `Quick test_stack_frames_nest_and_reuse;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow_detected;
        ] );
      ( "recycled-residue",
        [
          Alcotest.test_case "cross-principal leak (the §3.3 warning)" `Quick
            test_recycled_gate_leaks_across_principals;
        ] );
      ( "misc",
        [
          Alcotest.test_case "fork vs boundary vars" `Quick
            test_fork_inherits_boundary_vars_sthreads_dont;
          Alcotest.test_case "OOM catchable" `Quick test_smalloc_oom_catchable_in_compartment;
          Alcotest.test_case "file fd read/write" `Quick test_file_fd_read_write;
          Alcotest.test_case "file fd overwrite" `Quick test_file_fd_overwrite_mid_file;
          Alcotest.test_case "open respects perms" `Quick test_open_file_respects_vfs_perms;
          Alcotest.test_case "read-only fd write rejected" `Quick test_readonly_fd_write_rejected;
          Alcotest.test_case "pthread shares everything" `Quick test_pthread_shares_everything;
          Alcotest.test_case "exit codes" `Quick test_exit_sthread_code;
          Alcotest.test_case "per-request structure" `Quick test_mitm_request_structure;
        ] );
      ("properties", qcheck [ prop_subset_rule_sound; prop_default_deny_total ]);
    ]
