(* Policy synthesis: the profile printer/parser (round-trip property,
   positioned rejection of malformed input), the record -> synthesize ->
   enforce pipeline on a hand-rolled compartment, complain-mode counted
   instants, byte-identical determinism across record runs, and the
   grant-tightening matrix — dropping any single grant of any class must
   produce a deterministic contained Privilege_violation at a pinned
   site with a pinned message. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Fiber = Wedge_sim.Fiber
module SimTrace = Wedge_sim.Trace
module Fd_table = Wedge_kernel.Fd_table
module Process = Wedge_kernel.Process
module Prot = Wedge_kernel.Prot
module Chan = Wedge_net.Chan
module W = Wedge_core.Wedge
module Synth = Wedge_crowbar.Synth
module Profile = Wedge_crowbar.Synth.Profile
module Scenarios = Wedge_check.Scenarios

let check = Alcotest.check

(* ---------- profile printer/parser: property tests ---------- *)

(* Names may contain anything but '"' and newline; exercise spaces,
   braces, hashes and slashes on purpose. *)
let gen_name =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let alphabet = "abcz019._/-{}# " in
    let* cs = list_repeat n (int_range 0 (String.length alphabet - 1)) in
    return (String.concat "" (List.map (fun i -> String.make 1 alphabet.[i]) cs)))

let gen_uniq_names n_gen =
  QCheck.Gen.(
    let* names = list_size n_gen gen_name in
    return (List.sort_uniq compare names))

let gen_entry kind name =
  QCheck.Gen.(
    let* tag_names = gen_uniq_names (int_range 0 4) in
    let* tags =
      flatten_l
        (List.map
           (fun t ->
             let* g = oneofl [ Prot.R; Prot.RW; Prot.COW ] in
             return (t, g))
           tag_names)
    in
    let* fd_roles = gen_uniq_names (int_range 0 3) in
    let* fds =
      flatten_l
        (List.map
           (fun r ->
             let* m = oneofl [ Profile.Fd_r; Profile.Fd_w; Profile.Fd_rw ] in
             return (r, m))
           fd_roles)
    in
    let* gates = gen_uniq_names (int_range 0 3) in
    let* uid = opt (int_range 0 999) in
    let* root = opt gen_name in
    let* context = opt gen_name in
    return
      {
        Profile.e_kind = kind;
        e_name = name;
        e_tags = tags;
        e_fds = fds;
        e_gates = gates;
        e_uid = uid;
        e_root = root;
        e_context = context;
      })

let gen_profile =
  QCheck.Gen.(
    let* app = gen_name in
    let* sthread_names = gen_uniq_names (int_range 0 3) in
    let* gate_names = gen_uniq_names (int_range 0 3) in
    let* sthreads =
      flatten_l (List.map (fun n -> gen_entry Profile.Sthread n) sthread_names)
    in
    let* gates = flatten_l (List.map (fun n -> gen_entry Profile.Gate n) gate_names) in
    return { Profile.p_app = app; p_entries = sthreads @ gates })

let arb_profile =
  QCheck.make gen_profile ~print:(fun p -> Profile.print p)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"profile: parse (print p) = normalize p" ~count:200
    arb_profile (fun p ->
      match Profile.parse (Profile.print p) with
      | Ok p' -> Profile.equal p p'
      | Error e ->
          QCheck.Test.fail_reportf "parse failed at line %d: %s" e.Profile.pe_line
            e.Profile.pe_msg)

let prop_print_deterministic =
  QCheck.Test.make ~name:"profile: print is canonical (print . parse . print = print)"
    ~count:200 arb_profile (fun p ->
      let once = Profile.print p in
      match Profile.parse once with
      | Ok p' -> Profile.print p' = once
      | Error _ -> false)

(* ---------- parser rejection with positioned errors ---------- *)

let parse_err text =
  match Profile.parse text with
  | Ok _ -> Alcotest.failf "expected parse error for:\n%s" text
  | Error e -> e

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_parse_rejects_duplicates () =
  let e =
    parse_err "app \"x\"\nsthread \"w\" {\n  tag \"t\" r\n  tag \"t\" rw\n}\n"
  in
  check Alcotest.int "duplicate tag line" 4 e.Profile.pe_line;
  check Alcotest.bool "message names the tag" true (contains e.Profile.pe_msg "duplicate tag");
  let e = parse_err "app \"x\"\nsthread \"w\" {\n}\nsthread \"w\" {\n}\n" in
  check Alcotest.int "duplicate entry line" 4 e.Profile.pe_line;
  let e = parse_err "app \"x\"\nsthread \"w\" {\n  gate \"g\"\n  gate \"g\"\n}\n" in
  check Alcotest.int "duplicate gate line" 4 e.Profile.pe_line

let test_parse_rejects_malformed () =
  let e = parse_err "app \"x\"\nsthread \"w\" {\n  tag \"t\" w\n}\n" in
  check Alcotest.int "write-only tag line" 3 e.Profile.pe_line;
  check Alcotest.bool "write-only forbidden" true
    (contains e.Profile.pe_msg "write-only");
  let e = parse_err "app \"x\"\nsthread \"w\" {\n  uid -3\n}\n" in
  check Alcotest.int "bad uid line" 3 e.Profile.pe_line;
  let e = parse_err "app \"x\"\nsthread \"w\" {\n  tag \"unterminated\n}\n" in
  check Alcotest.int "unterminated string line" 3 e.Profile.pe_line;
  check Alcotest.bool "unterminated string" true
    (contains e.Profile.pe_msg "unterminated string");
  let e = parse_err "sthread \"w\" {\n}\n" in
  check Alcotest.bool "missing app" true (contains e.Profile.pe_msg "missing app");
  let e = parse_err "app \"x\"\nsthread \"w\" {\n  tag \"t\" r\n" in
  check Alcotest.bool "unterminated entry names its start" true
    (contains e.Profile.pe_msg "started at line 2");
  let e = parse_err "app \"x\"\nfrobnicate\n" in
  check Alcotest.int "unknown directive line" 2 e.Profile.pe_line

(* ---------- the pipeline on a hand-rolled compartment ---------- *)

(* One worker sthread + one callgate over two tags and a descriptor:
     worker: reads+writes tag unit.a, reads tag unit.b, writes the
             "conn" descriptor, invokes unit.gate;
     gate:   writes tag unit.b (its argument buffer).
   The synthesized profile has exactly five grants covering all four
   grant classes, so the tightening matrix below is exhaustive. *)
type unit_run = {
  u_status : Process.status;
  u_gate_result : int;
}

let run_unit synth =
  let k = Kernel.create ~costs:Cost_model.free () in
  SimTrace.arm ~capacity:(1 lsl 12) k.Kernel.trace;
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let tag_a = W.tag_new ~name:"unit.a" main in
  let tag_b = W.tag_new ~name:"unit.b" main in
  let a = W.smalloc main 16 tag_a in
  let b = W.smalloc main 16 tag_b in
  W.write_string main a "A";
  W.write_string main b "B";
  let out = ref None in
  Fiber.run ~policy:Fiber.Round_robin (fun () ->
      let peer, ours = Chan.pair ~costs:Cost_model.free () in
      let fd = W.add_endpoint main (Chan.to_endpoint ours) Fd_table.perm_rw in
      let conn_tags = [ tag_a; tag_b ] in
      let conn_fds = [ ("conn", fd) ] in
      let worker_sc =
        match
          Synth.sthread_sc synth ~name:"unit.worker" ~tags:conn_tags ~fds:conn_fds
            main
        with
        | Some sc -> sc
        | None ->
            (* Deliberately loose hand-written policy: RW on both tags. *)
            let sc = W.sc_create () in
            W.sc_mem_add sc tag_a Prot.RW;
            W.sc_mem_add sc tag_b Prot.RW;
            W.sc_fd_add sc fd Fd_table.perm_rw;
            sc
      in
      let cgsc =
        match Synth.gate_sc synth ~name:"unit.gate" ~tags:conn_tags main with
        | Some sc -> sc
        | None ->
            let sc = W.sc_create () in
            W.sc_mem_add sc tag_b Prot.RW;
            sc
      in
      let gate =
        W.sc_cgate_add main worker_sc ~name:"unit.gate"
          ~entry:
            (Synth.wrap_gate synth ~name:"unit.gate" (fun gctx ~trusted:_ ~arg ->
                 W.write_u8 gctx arg 1;
                 arg))
          ~cgsc ~trusted:0
      in
      let gate_result = ref 0 in
      let body ctx _ =
        ignore (W.read_u8 ctx a);
        W.write_u8 ctx a 7;
        ignore (W.read_u8 ctx b);
        W.fd_write ctx fd (Bytes.of_string "x");
        gate_result := W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:b;
        0
      in
      let h =
        W.sthread_create main worker_sc
          (Synth.wrap_sthread synth ~name:"unit.worker" ~fds:conn_fds body)
          0
      in
      ignore (W.sthread_join main h);
      Chan.close peer;
      out := Some { u_status = W.handle_status h; u_gate_result = !gate_result });
  (Option.get !out, k)

let unit_profile () =
  let synth = Synth.create ~name:"unit" Synth.Record in
  let r, _ = run_unit (Some synth) in
  check Alcotest.bool "record run clean" true (r.u_status = Process.Exited 0);
  Synth.synthesize synth

let expected_unit_profile =
  "# wedge-synth profile v1\n\
   app \"unit\"\n\n\
   sthread \"unit.worker\" {\n\
   \  tag \"unit.a\" rw\n\
   \  tag \"unit.b\" r\n\
   \  fd \"conn\" w\n\
   \  gate \"unit.gate\"\n\
   }\n\n\
   gate \"unit.gate\" {\n\
   \  tag \"unit.b\" rw\n\
   }\n"

let test_unit_synthesis () =
  let p = unit_profile () in
  check Alcotest.string "synthesized profile text" expected_unit_profile
    (Profile.print p);
  match Profile.parse (Profile.print p) with
  | Ok p' -> check Alcotest.bool "round-trips" true (Profile.equal p p')
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e.Profile.pe_msg

let test_unit_record_deterministic () =
  let p1 = unit_profile () in
  let p2 = unit_profile () in
  check Alcotest.string "two record runs, identical bytes" (Profile.print p1)
    (Profile.print p2)

let test_unit_enforce_clean () =
  let p = unit_profile () in
  let synth = Synth.create ~name:"unit" (Synth.Enforce p) in
  let r, _ = run_unit (Some synth) in
  check Alcotest.bool "enforced run clean" true (r.u_status = Process.Exited 0);
  check Alcotest.int "no denials" 0 (List.length (Synth.denials synth));
  check Alcotest.(list string) "observed within installed" []
    (Synth.diff ~installed:p ~observed:(Synth.synthesize synth));
  check Alcotest.(option string) "oracle invariant holds" None
    (Synth.self_check synth ())

(* The tightening matrix: one case per grant class, each pinning the
   violation site (which compartment dies, what the gate returns) and the
   exact deterministic denial message. *)
let tighten_exn p gref =
  match Synth.tighten p gref with
  | Some p' -> p'
  | None -> Alcotest.failf "grant not found: %s" (Synth.grant_ref_to_string gref)

let test_unit_tightening_matrix () =
  let p = unit_profile () in
  let grefs = Synth.grants p in
  check Alcotest.int "five grants" 5 (List.length grefs);
  let run_tightened gref =
    let synth = Synth.create ~name:"unit" (Synth.Enforce (tighten_exn p gref)) in
    let r, _ = run_unit (Some synth) in
    (r, Synth.denials synth)
  in
  let cases =
    [
      ( { Synth.gr_kind = Profile.Sthread; gr_entry = "unit.worker";
          gr_class = Synth.Tag_write; gr_name = "unit.a" },
        "profile unit.worker: write to tag unit.a denied (granted r)",
        `Worker_faults );
      ( { Synth.gr_kind = Profile.Sthread; gr_entry = "unit.worker";
          gr_class = Synth.Tag_read; gr_name = "unit.b" },
        "profile unit.worker: read of tag unit.b denied (not granted)",
        `Worker_faults );
      ( { Synth.gr_kind = Profile.Sthread; gr_entry = "unit.worker";
          gr_class = Synth.Fd_use; gr_name = "conn" },
        "profile unit.worker: fd conn denied (not granted)",
        `Worker_faults );
      ( { Synth.gr_kind = Profile.Sthread; gr_entry = "unit.worker";
          gr_class = Synth.Gate_call; gr_name = "unit.gate" },
        "profile unit.worker: callgate unit.gate denied (not granted)",
        `Worker_faults );
      ( { Synth.gr_kind = Profile.Gate; gr_entry = "unit.gate";
          gr_class = Synth.Tag_write; gr_name = "unit.b" },
        "profile unit.gate: write to tag unit.b denied (granted r)",
        `Gate_faults );
    ]
  in
  List.iter
    (fun (gref, expect_msg, site) ->
      let what = Synth.grant_ref_to_string gref in
      let r, denials = run_tightened gref in
      (match denials with
      | [ (msg, n) ] ->
          check Alcotest.string (what ^ ": denial message") expect_msg msg;
          check Alcotest.bool (what ^ ": counted") true (n >= 1)
      | l -> Alcotest.failf "%s: expected one denial, got %d" what (List.length l));
      match site with
      | `Worker_faults ->
          check Alcotest.bool (what ^ ": worker dies contained") true
            (r.u_status = Process.Faulted ("policy: " ^ expect_msg))
      | `Gate_faults ->
          (* A faulting gate yields -1 to its caller; the worker itself
             survives (the violation is contained inside the gate). *)
          check Alcotest.int (what ^ ": gate returns -1") (-1) r.u_gate_result;
          check Alcotest.bool (what ^ ": worker survives") true
            (r.u_status = Process.Exited 0))
    cases

let test_unit_complain_counts_instants () =
  (* Complain mode: the loose hand-written policy stays in force, the
     workload completes, and every would-be violation of the tightened
     profile is tallied and counted as a "policy.complain" trace instant. *)
  let p = unit_profile () in
  let gref =
    { Synth.gr_kind = Profile.Sthread; gr_entry = "unit.worker";
      gr_class = Synth.Tag_read; gr_name = "unit.b" }
  in
  let synth = Synth.create ~name:"unit" (Synth.Complain (tighten_exn p gref)) in
  let r, _ = run_unit (Some synth) in
  check Alcotest.bool "complain run still completes" true
    (r.u_status = Process.Exited 0);
  (match Synth.complaints synth with
  | [ (msg, n) ] ->
      check Alcotest.string "complaint message"
        "profile unit.worker: read of tag unit.b denied (not granted)" msg;
      check Alcotest.bool "at least one complaint" true (n >= 1)
  | l -> Alcotest.failf "expected one complaint kind, got %d" (List.length l));
  check Alcotest.int "no denials in complain mode" 0
    (List.length (Synth.denials synth))

let test_unit_complain_trace_instants () =
  (* Same run with the kernel trace armed: the complain count and the
     "policy.complain" instant count in the trace ring must agree. *)
  let p = unit_profile () in
  let gref =
    { Synth.gr_kind = Profile.Sthread; gr_entry = "unit.worker";
      gr_class = Synth.Tag_read; gr_name = "unit.b" }
  in
  let synth = Synth.create ~name:"unit" (Synth.Complain (tighten_exn p gref)) in
  let r, k = run_unit (Some synth) in
  check Alcotest.bool "complain run completes" true (r.u_status = Process.Exited 0);
  let total = List.fold_left (fun a (_, n) -> a + n) 0 (Synth.complaints synth) in
  check Alcotest.bool "complaints happened" true (total > 0);
  check Alcotest.int "counted as policy.complain instants" total
    (SimTrace.instants_named k.Kernel.trace ~name:"policy.complain")

(* ---------- the real servers ---------- *)

let test_httpd_profile_minimal_and_deterministic () =
  let p1 = Scenarios.synth_record ~app:"httpd" ~seed:1 in
  let p2 = Scenarios.synth_record ~app:"httpd" ~seed:1 in
  check Alcotest.string "byte-identical across record runs" (Profile.print p1)
    (Profile.print p2);
  (match Profile.parse (Profile.print p1) with
  | Ok p' -> check Alcotest.bool "round-trips" true (Profile.equal p1 p')
  | Error e -> Alcotest.failf "parse failed: %s" e.Profile.pe_msg);
  (* The profile grants the worker neither the private key nor the
     session cache: those live only behind the callgate. *)
  match Profile.find p1 Profile.Sthread "httpd.worker" with
  | None -> Alcotest.fail "no httpd.worker entry"
  | Some e ->
      check Alcotest.bool "worker has no privkey grant" false
        (List.mem_assoc "httpd.privkey" e.Profile.e_tags);
      check Alcotest.bool "worker has no session-cache grant" false
        (List.mem_assoc "ssl.session_cache" e.Profile.e_tags);
      check Alcotest.(option int) "worker drops to uid 33" (Some 33)
        e.Profile.e_uid

let test_httpd_enforce_clean () =
  let p = Scenarios.synth_record ~app:"httpd" ~seed:1 in
  let ok, summary, synth = Scenarios.synth_rerun ~app:"httpd" ~seed:1 (Synth.Enforce p) in
  check Alcotest.bool ("enforced workload ok: " ^ summary) true ok;
  check Alcotest.int "no denials" 0 (List.length (Synth.denials synth));
  check Alcotest.(option string) "superset invariant" None (Synth.self_check synth ())

let test_httpd_tightening_matrix () =
  (* Adversarial minimality on the real server: dropping ANY single grant
     from the synthesized profile must deny at least one access of the
     same workload, deterministically, and the denial must name the
     tightened grant. *)
  let p = Scenarios.synth_record ~app:"httpd" ~seed:1 in
  let grefs = Synth.grants p in
  check Alcotest.bool "profile has grants" true (grefs <> []);
  List.iter
    (fun gref ->
      let what = Synth.grant_ref_to_string gref in
      let p' = tighten_exn p gref in
      let ok, _summary, synth = Scenarios.synth_rerun ~app:"httpd" ~seed:1 (Synth.Enforce p') in
      let denials = Synth.denials synth in
      check Alcotest.bool (what ^ ": denied") true (denials <> []);
      check Alcotest.bool (what ^ ": denial names the grant") true
        (List.exists (fun (m, _) -> contains m gref.Synth.gr_name) denials);
      (* Every denial is a real behavior change: either the workload
         degrades or the violation was contained inside a compartment. *)
      ignore ok)
    grefs

let test_pop3_sshd_deterministic () =
  let p1 = Scenarios.synth_record ~app:"pop3" ~seed:0 in
  let p2 = Scenarios.synth_record ~app:"pop3" ~seed:0 in
  check Alcotest.string "pop3 byte-identical" (Profile.print p1) (Profile.print p2);
  let s1 = Scenarios.synth_record ~app:"sshd" ~seed:1 in
  let s2 = Scenarios.synth_record ~app:"sshd" ~seed:1 in
  check Alcotest.string "sshd byte-identical" (Profile.print s1) (Profile.print s2);
  (* pop3: only the login gate may write the uid tag, and the worker
     cannot even read it — the paper's Figure 1 property, synthesized. *)
  (match Profile.find p1 Profile.Sthread "pop3.worker" with
  | Some e ->
      check Alcotest.bool "worker blind to uid tag" false
        (List.mem_assoc "pop3.uid" e.Profile.e_tags)
  | None -> Alcotest.fail "no pop3.worker entry");
  match Profile.find p1 Profile.Gate "pop3.login" with
  | Some e ->
      check Alcotest.bool "login gate writes uid tag" true
        (List.assoc_opt "pop3.uid" e.Profile.e_tags = Some Prot.RW)
  | None -> Alcotest.fail "no pop3.login entry"

let () =
  Alcotest.run "wedge_synth"
    [
      ( "printer-parser",
        [
          Test_rng.to_alcotest prop_print_parse_roundtrip;
          Test_rng.to_alcotest prop_print_deterministic;
          Alcotest.test_case "rejects duplicates (positioned)" `Quick
            test_parse_rejects_duplicates;
          Alcotest.test_case "rejects malformed (positioned)" `Quick
            test_parse_rejects_malformed;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "record -> synthesize (exact profile)" `Quick
            test_unit_synthesis;
          Alcotest.test_case "record is deterministic" `Quick
            test_unit_record_deterministic;
          Alcotest.test_case "enforce: clean workload stays clean" `Quick
            test_unit_enforce_clean;
          Alcotest.test_case "tightening matrix (all grant classes)" `Quick
            test_unit_tightening_matrix;
          Alcotest.test_case "complain mode tallies, never kills" `Quick
            test_unit_complain_counts_instants;
          Alcotest.test_case "complain instants land in the trace" `Quick
            test_unit_complain_trace_instants;
        ] );
      ( "servers",
        [
          Alcotest.test_case "httpd: minimal + deterministic" `Quick
            test_httpd_profile_minimal_and_deterministic;
          Alcotest.test_case "httpd: enforce clean" `Quick test_httpd_enforce_clean;
          Alcotest.test_case "httpd: tightening matrix" `Quick
            test_httpd_tightening_matrix;
          Alcotest.test_case "pop3/sshd: deterministic + Figure 1 property" `Quick
            test_pop3_sshd_deterministic;
        ] );
    ]
