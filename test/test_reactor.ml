(* The readiness reactor: park/unpark scheduler primitives, interest
   sets with level-triggered wakes, the timer wheel on the simulated
   clock, and the self-check the invariant oracle runs against the
   parked table. *)

module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Reactor = Wedge_sim.Reactor
module Metrics = Wedge_sim.Metrics

let check = Alcotest.check

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mk () =
  let clock = Clock.create () in
  (clock, Reactor.create ~clock ())

(* ---------- park / unpark (the primitive the reactor rides on) ---------- *)

let test_park_unpark () =
  let log = Buffer.create 16 in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          Buffer.add_string log "a";
          Fiber.park ~what:"test wake";
          Buffer.add_string log "c");
      Fiber.yield ();
      check Alcotest.int "one fiber parked" 1 (Fiber.parked_count ());
      check Alcotest.bool "is_parked sees it" true
        (Fiber.is_parked (List.hd (Fiber.parked_ids ())));
      Buffer.add_string log "b";
      Fiber.unpark (List.hd (Fiber.parked_ids ())));
  check Alcotest.string "parked fiber resumed after unpark" "abc"
    (Buffer.contents log);
  check Alcotest.int "parked table drained" 0 (Fiber.parked_count ())

let test_parked_fiber_deadlock_names_it () =
  match
    Fiber.run (fun () -> Fiber.spawn (fun () -> Fiber.park ~what:"never woken"))
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock msg ->
      check Alcotest.bool "message names the parked wait" true
        (contains msg "never woken")

let test_cancel_unparks_victim () =
  let outcome = ref "" in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          try
            Fiber.park ~what:"cancel target";
            outcome := "resumed"
          with Fiber.Cancelled r -> outcome := "cancelled:" ^ r);
      Fiber.yield ();
      Fiber.cancel ~reason:"test cut" (List.hd (Fiber.parked_ids ())));
  check Alcotest.string "parked victim died of the cancellation"
    "cancelled:test cut" !outcome

(* ---------- interest sets ---------- *)

let test_wait_returns_when_already_ready () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  Fiber.run (fun () -> Reactor.wait h ~what:"ready now" ~ready:(fun () -> true));
  check Alcotest.int "no park for an already-ready wait" 0
    (Reactor.stats r).Reactor.parks

let test_signal_wakes_waiter () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let flag = ref false in
  let woke = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          Reactor.wait h ~what:"flag" ~ready:(fun () -> !flag);
          woke := true);
      Fiber.yield ();
      check Alcotest.bool "waiter parked" false !woke;
      flag := true;
      Reactor.signal h);
  check Alcotest.bool "signal delivered the wake" true !woke

let test_spurious_signal_reparks () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let flag = ref false in
  let woke = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          Reactor.wait h ~what:"flag" ~ready:(fun () -> !flag);
          woke := true);
      Fiber.yield ();
      (* Not ready: the wake is spurious and the waiter must re-park. *)
      Reactor.signal h;
      Fiber.yield ();
      check Alcotest.bool "level-triggered: re-parked on spurious wake" false !woke;
      check Alcotest.int "still registered" 1 (Reactor.stats r).Reactor.parked;
      flag := true;
      Reactor.signal h);
  check Alcotest.bool "real signal got through" true !woke;
  check Alcotest.int "two parks: initial + re-park" 2 (Reactor.stats r).Reactor.parks

let test_signal_wakes_batch_in_fiber_order () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let flag = ref false in
  let order = ref [] in
  Fiber.run (fun () ->
      for i = 1 to 3 do
        Fiber.spawn (fun () ->
            Reactor.wait h ~what:"flag" ~ready:(fun () -> !flag);
            order := i :: !order)
      done;
      Fiber.yield ();
      flag := true;
      Reactor.signal h);
  check (Alcotest.list Alcotest.int) "one batch, fiber-id order" [ 1; 2; 3 ]
    (List.rev !order);
  let s = Reactor.stats r in
  check Alcotest.int "one signal batch" 1 s.Reactor.signals;
  check Alcotest.int "three wakeups" 3 s.Reactor.wakeups

let test_kill_wakes_and_poisons () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let woke = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          Reactor.wait h ~what:"doomed" ~ready:(fun () -> false);
          woke := true);
      Fiber.yield ();
      Reactor.kill h;
      Fiber.yield ();
      (* Dead handle: wait returns immediately, registering nothing. *)
      Reactor.wait h ~what:"post-mortem" ~ready:(fun () -> false));
  check Alcotest.bool "killed handle released its waiter" true !woke;
  check Alcotest.bool "handle marked dead" true (Reactor.is_dead h);
  check Alcotest.int "no ghost registrations" 0 (Reactor.stats r).Reactor.parked

let test_cancel_removes_registration () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let outcome = ref "" in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          try Reactor.wait h ~what:"cut target" ~ready:(fun () -> false)
          with Fiber.Cancelled _ -> outcome := "cancelled");
      Fiber.yield ();
      Fiber.cancel (List.hd (Fiber.parked_ids ()));
      Fiber.yield ();
      check (Alcotest.option Alcotest.string) "no ghost waiter left behind" None
        (Reactor.self_check r));
  check Alcotest.string "cancellation propagated" "cancelled" !outcome

(* ---------- timers ---------- *)

let test_timers_fire_in_deadline_order () =
  let clock, r = mk () in
  let log = ref [] in
  ignore (Reactor.at r ~ns:200 (fun () -> log := "b" :: !log));
  ignore (Reactor.at r ~ns:100 (fun () -> log := "a" :: !log));
  ignore (Reactor.at r ~ns:300 (fun () -> log := "c" :: !log));
  check Alcotest.int "armed" 3 (Reactor.pending_timers r);
  Clock.charge clock 150;
  Reactor.tick r;
  check (Alcotest.list Alcotest.string) "only the due timer fired" [ "a" ]
    (List.rev !log);
  Clock.charge clock 200;
  Reactor.tick r;
  check (Alcotest.list Alcotest.string) "rest fired in deadline order"
    [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "wheel empty" 0 (Reactor.pending_timers r)

let test_cancel_timer () =
  let clock, r = mk () in
  let fired = ref false in
  let id = Reactor.after r ~ns:100 (fun () -> fired := true) in
  Reactor.cancel_timer r id;
  Clock.charge clock 500;
  Reactor.tick r;
  check Alcotest.bool "cancelled timer never fires" false !fired;
  check Alcotest.int "wheel empty after sweep" 0 (Reactor.pending_timers r)

let test_idle_advances_clock_to_next_timer () =
  let clock, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let flag = ref false in
  let woke_at = ref (-1) in
  ignore
    (Reactor.after r ~ns:1_000 (fun () ->
         flag := true;
         Reactor.signal h));
  Fiber.run
    ~on_switch:(Reactor.hook r)
    ~on_idle:(Reactor.idle r)
    (fun () ->
      Reactor.wait h ~what:"timer" ~ready:(fun () -> !flag);
      woke_at := Clock.now clock);
  check Alcotest.int "clock jumped straight to the deadline" 1_000 !woke_at;
  let s = Reactor.stats r in
  check Alcotest.bool "idle advance recorded" true (s.Reactor.idle_advances >= 1);
  check Alcotest.int "timer fired once" 1 s.Reactor.timer_fires

let test_idle_without_timers_concedes_deadlock () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  match
    Fiber.run ~on_idle:(Reactor.idle r) (fun () ->
        Fiber.spawn (fun () ->
            Reactor.wait h ~what:"nothing will signal" ~ready:(fun () -> false)))
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock msg ->
      check Alcotest.bool "deadlock names the reactor wait" true
        (contains msg "nothing will signal")

let test_timer_rearm_from_callback () =
  let clock, r = mk () in
  let fires = ref 0 in
  let rec arm () =
    ignore
      (Reactor.after r ~ns:100 (fun () ->
           incr fires;
           if !fires < 3 then arm ()))
  in
  arm ();
  for _ = 1 to 5 do
    Clock.charge clock 100;
    Reactor.tick r
  done;
  check Alcotest.int "fire-and-re-arm chain ran three times" 3 !fires

(* ---------- audit ---------- *)

let test_self_check_clean_while_parked () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let flag = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Reactor.wait h ~what:"flag" ~ready:(fun () -> !flag));
      Fiber.yield ();
      check (Alcotest.option Alcotest.string) "waiter-not-ready is consistent" None
        (Reactor.self_check r);
      flag := true;
      (* Readiness now holds but no signal was sent: that is precisely a
         lost wakeup, and the audit must say so. *)
      (match Reactor.self_check r with
      | Some msg ->
          check Alcotest.bool "audit names a lost wakeup" true
            (contains msg "lost wakeup")
      | None -> Alcotest.fail "self_check missed a lost wakeup");
      Reactor.signal h)

let test_register_metrics () =
  let _, r = mk () in
  let h = Reactor.handle r ~name:"t" in
  let flag = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Reactor.wait h ~what:"flag" ~ready:(fun () -> !flag));
      Fiber.yield ();
      flag := true;
      Reactor.signal h);
  let m = Metrics.create () in
  Reactor.register_metrics m r;
  check Alcotest.int "parks exported" 1 (Metrics.get m "reactor.parks");
  check Alcotest.int "wakeups exported" 1 (Metrics.get m "reactor.wakeups");
  check Alcotest.int "nothing left parked" 0 (Metrics.get m "reactor.parked")

(* ---------- multi-reactor (sharded) scheduling ---------- *)

(* Each shard's reactor runs on its own clock, so the multi-idle must
   pick the reactor whose earliest timer is the smallest RELATIVE delay
   from its own now — absolute instants are not comparable across
   clocks — and advance only that clock. *)
let test_idle_multi_picks_smallest_relative_delay () =
  let c1, r1 = mk () in
  let c2, r2 = mk () in
  Clock.charge c1 1_000;
  let f1 = ref false and f2 = ref false in
  ignore (Reactor.after r1 ~ns:500 (fun () -> f1 := true));
  ignore (Reactor.after r2 ~ns:200 (fun () -> f2 := true));
  check (Alcotest.option Alcotest.int) "r1 deadline absolute on its clock"
    (Some 1_500) (Reactor.next_deadline r1);
  check (Alcotest.option Alcotest.int) "r2 deadline absolute on its clock"
    (Some 200) (Reactor.next_deadline r2);
  let idle = Reactor.idle_multi [ r1; r2 ] in
  check Alcotest.bool "first idle makes progress" true (idle ());
  check Alcotest.bool "nearer (relative) timer fired" true !f2;
  check Alcotest.bool "farther timer untouched" false !f1;
  check Alcotest.int "only r2's clock advanced" 200 (Clock.now c2);
  check Alcotest.int "r1's clock unmoved" 1_000 (Clock.now c1);
  check Alcotest.bool "second idle makes progress" true (idle ());
  check Alcotest.bool "r1's timer fired" true !f1;
  check Alcotest.int "r1's clock at its deadline" 1_500 (Clock.now c1);
  check Alcotest.bool "no timers left: concede" false (idle ())

let test_self_check_multi_spans_reactors () =
  let _, r1 = mk () in
  let _, r2 = mk () in
  let h = Reactor.handle r1 ~name:"t" in
  let flag = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Reactor.wait h ~what:"flag" ~ready:(fun () -> !flag));
      Fiber.yield ();
      (* The fiber is parked on r1; the union audit must account for it
         even though r2 has never seen it. *)
      check (Alcotest.option Alcotest.string) "clean across both reactors" None
        (Reactor.self_check_multi [ r1; r2 ]);
      flag := true;
      (match Reactor.self_check_multi [ r1; r2 ] with
      | Some msg ->
          check Alcotest.bool "union audit still catches lost wakeups" true
            (contains msg "lost wakeup")
      | None -> Alcotest.fail "self_check_multi missed a lost wakeup");
      Reactor.signal h)

let () =
  Alcotest.run "reactor"
    [
      ( "park",
        [
          Alcotest.test_case "park/unpark round trip" `Quick test_park_unpark;
          Alcotest.test_case "deadlock names parked fiber" `Quick
            test_parked_fiber_deadlock_names_it;
          Alcotest.test_case "cancel unparks victim" `Quick test_cancel_unparks_victim;
        ] );
      ( "interest sets",
        [
          Alcotest.test_case "already-ready skips parking" `Quick
            test_wait_returns_when_already_ready;
          Alcotest.test_case "signal wakes waiter" `Quick test_signal_wakes_waiter;
          Alcotest.test_case "spurious signal re-parks" `Quick
            test_spurious_signal_reparks;
          Alcotest.test_case "batch wake in fiber order" `Quick
            test_signal_wakes_batch_in_fiber_order;
          Alcotest.test_case "kill wakes and poisons" `Quick test_kill_wakes_and_poisons;
          Alcotest.test_case "cancel removes registration" `Quick
            test_cancel_removes_registration;
        ] );
      ( "timers",
        [
          Alcotest.test_case "deadline order" `Quick test_timers_fire_in_deadline_order;
          Alcotest.test_case "cancel_timer" `Quick test_cancel_timer;
          Alcotest.test_case "idle advances clock" `Quick
            test_idle_advances_clock_to_next_timer;
          Alcotest.test_case "idle concedes without timers" `Quick
            test_idle_without_timers_concedes_deadlock;
          Alcotest.test_case "re-arm from callback" `Quick test_timer_rearm_from_callback;
        ] );
      ( "audit",
        [
          Alcotest.test_case "self_check" `Quick test_self_check_clean_while_parked;
          Alcotest.test_case "metrics registry" `Quick test_register_metrics;
        ] );
      ( "multi",
        [
          Alcotest.test_case "idle_multi relative deadlines" `Quick
            test_idle_multi_picks_smallest_relative_delay;
          Alcotest.test_case "self_check_multi union" `Quick
            test_self_check_multi_spans_reactors;
        ] );
    ]
