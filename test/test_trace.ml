(* Observability-layer tests: the clock-stamped trace ring (determinism,
   overflow, the single-branch disabled path allocating nothing), the
   Chrome-JSON exporter + schema validator, and the metrics registry
   subsuming every scattered counter without changing its value. *)

module Clock = Wedge_sim.Clock
module Fiber = Wedge_sim.Fiber
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics
module Stats = Wedge_sim.Stats
module Cost_model = Wedge_sim.Cost_model
module Kernel = Wedge_kernel.Kernel
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module W = Wedge_core.Wedge

let check = Alcotest.check

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------- recording + export ---------- *)

let test_export_shape () =
  let clock = Clock.create () in
  let t = Trace.create ~clock () in
  Trace.arm t;
  Trace.span_begin t ~name:"work" ~pid:3;
  Clock.charge clock 1_500;
  Trace.instant t ~name:"tick" ~pid:3;
  Clock.charge clock 500;
  Trace.count t ~name:"bytes" ~pid:3 ~value:42;
  Trace.span_end t ~name:"work" ~pid:3;
  check Alcotest.int "four events" 4 (Trace.recorded t);
  let json = Trace.to_chrome_json t in
  (match Trace.validate_chrome_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "export rejected by validator: %s" e);
  check Alcotest.bool "span begin" true (contains json {|"name":"work","cat":"wedge","ph":"B"|});
  check Alcotest.bool "instant at 1.5us" true (contains json {|"ph":"i","ts":1.500|});
  check Alcotest.bool "counter value" true (contains json {|"args":{"value":42}|});
  check Alcotest.bool "pid attributed" true (contains json {|"pid":3|})

let test_ring_overflow_keeps_newest () =
  let clock = Clock.create () in
  let t = Trace.create ~capacity:8 ~clock () in
  Trace.arm t;
  let names = Array.init 20 (fun i -> Printf.sprintf "e%02d" i) in
  Array.iter
    (fun n ->
      Trace.instant t ~name:n ~pid:1;
      Clock.charge clock 100)
    names;
  check Alcotest.int "ring holds capacity" 8 (Trace.recorded t);
  check Alcotest.int "older events dropped" 12 (Trace.dropped t);
  let json = Trace.to_chrome_json t in
  (match Trace.validate_chrome_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "overflowed export invalid: %s" e);
  check Alcotest.bool "oldest surviving event present" true (contains json "e12");
  check Alcotest.bool "newest event present" true (contains json "e19");
  check Alcotest.bool "overwritten event gone" false (contains json "e11");
  check Alcotest.bool "drop count exported" true (contains json {|"droppedEvents":12|});
  (* Chronological order across the wrap point. *)
  let p12 = ref 0 and p19 = ref 0 in
  String.iteri
    (fun i c ->
      if c = 'e' && i + 2 < String.length json then begin
        if String.sub json i 3 = "e12" then p12 := i;
        if String.sub json i 3 = "e19" then p19 := i
      end)
    json;
  check Alcotest.bool "wrapped export stays chronological" true (!p12 < !p19)

let test_disabled_is_free () =
  let clock = Clock.create () in
  let t = Trace.create ~clock () in
  check Alcotest.bool "created disabled" false (Trace.enabled t);
  let before = Gc.minor_words () in
  for i = 1 to 1_000 do
    Trace.instant t ~name:"x" ~pid:1;
    Trace.count t ~name:"y" ~pid:1 ~value:i;
    Trace.span_begin t ~name:"z" ~pid:1;
    Trace.span_end t ~name:"z" ~pid:1
  done;
  let words = Gc.minor_words () -. before in
  (* 4000 disabled recording calls: anything per-call would show up as
     thousands of words; allow a little slack for the Gc probe itself. *)
  check Alcotest.bool "disabled path allocates nothing" true (words < 100.0);
  check Alcotest.int "nothing recorded" 0 (Trace.recorded t);
  (* The null trace behaves the same and refuses to arm. *)
  Trace.instant Trace.null ~name:"x" ~pid:1;
  check Alcotest.int "null records nothing" 0 (Trace.recorded Trace.null);
  match Trace.arm Trace.null with
  | () -> Alcotest.fail "armed the shared null trace"
  | exception Invalid_argument _ -> ()

let test_arm_disarm_clear () =
  let clock = Clock.create () in
  let t = Trace.create ~clock () in
  Trace.arm t;
  Trace.instant t ~name:"a" ~pid:1;
  Trace.disarm t;
  Trace.instant t ~name:"b" ~pid:1;
  check Alcotest.int "disarmed stops recording" 1 (Trace.recorded t);
  check Alcotest.bool "events kept for export" true
    (contains (Trace.to_chrome_json t) {|"name":"a"|});
  Trace.arm t;
  check Alcotest.int "re-arm clears" 0 (Trace.recorded t);
  Trace.instant t ~name:"c" ~pid:1;
  Trace.clear t;
  check Alcotest.int "clear drops events" 0 (Trace.recorded t)

(* ---------- validator ---------- *)

let test_validator_rejects_garbage () =
  let bad s =
    match Trace.validate_chrome_json s with
    | Ok () -> Alcotest.failf "validator accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "not json";
  bad "{";
  bad "[]";
  bad "{}";
  bad {|{"traceEvents":3}|};
  bad {|{"traceEvents":[3]}|};
  bad {|{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":1}]}|};
  bad {|{"traceEvents":[{"name":7,"ph":"i","ts":0,"pid":1,"tid":1}]}|};
  bad {|{"traceEvents":[{"name":"x","ph":"i","ts":"0","pid":1,"tid":1}]}|};
  bad {|{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":1,"tid":1}]} trailing|};
  match Trace.validate_chrome_json {|{"traceEvents":[]}|} with
  | Ok () -> ()
  | Error e -> Alcotest.failf "minimal document rejected: %s" e

(* ---------- engine instrumentation + determinism ---------- *)

(* A small partitioned workload: tag + sthread + syscalls, with realistic
   clock costs so timestamps are nonzero and ordering matters. *)
let run_workload () =
  let k = Kernel.create ~costs:Cost_model.default () in
  Trace.arm k.Kernel.trace;
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  Fiber.run (fun () ->
      let tag = W.tag_new ~name:"data" main in
      let p = W.smalloc main 64 tag in
      W.write_string main p "payload";
      let sc = W.sc_create () in
      W.sc_mem_add sc tag Wedge_kernel.Prot.R;
      let h =
        W.sthread_create main sc
          (fun ctx _ -> String.length (W.read_string ctx p 7))
          0
      in
      ignore (W.sthread_join main h));
  (k, Trace.to_chrome_json k.Kernel.trace)

let test_engine_spans_attributed () =
  let _k, json = run_workload () in
  (match Trace.validate_chrome_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "engine trace invalid: %s" e);
  check Alcotest.bool "sthread compartment span" true
    (contains json {|"name":"sthread","cat":"wedge","ph":"B"|});
  check Alcotest.bool "sthread create instant" true (contains json {|"name":"sthread.create"|});
  check Alcotest.bool "join instant" true (contains json {|"name":"sthread.join"|});
  check Alcotest.bool "syscall instants" true (contains json {|"name":"sys.|})

let test_export_deterministic_across_runs () =
  let _, a = run_workload () in
  let _, b = run_workload () in
  check Alcotest.bool "trace nonempty" true (String.length a > 200);
  check Alcotest.string "byte-identical across seeded runs" a b

(* ---------- metrics registry ---------- *)

let test_metrics_merges_and_sorts () =
  let m = Metrics.create () in
  Metrics.bump m "a.count";
  Metrics.add m "a.count" 2;
  Metrics.register m ~name:"src1" ~kind:Metrics.Counter (fun () ->
      [ ("b.count", 5); ("a.count", 10) ]);
  Metrics.register m ~name:"src2" (fun () -> [ ("depth", 7) ]);
  check
    Alcotest.(list (pair string int))
    "sorted, duplicates summed"
    [ ("a.count", 13); ("b.count", 5); ("depth", 7) ]
    (Metrics.snapshot m);
  check Alcotest.int "get" 13 (Metrics.get m "a.count");
  check Alcotest.int "get absent" 0 (Metrics.get m "nope");
  check Alcotest.string "deterministic json"
    {|{"counters":{"a.count":13,"b.count":5},"gauges":{"depth":7}}|}
    (Metrics.to_json m);
  (* Re-registering a name replaces; unregistering removes. *)
  Metrics.register m ~name:"src2" (fun () -> [ ("depth", 9) ]);
  check Alcotest.int "replaced source" 9 (Metrics.get m "depth");
  Metrics.unregister m ~name:"src2";
  check Alcotest.int "unregistered" 0 (Metrics.get m "depth")

let test_metrics_subsume_scattered_counters () =
  (* One registry reads the kernel stats, live TLB counters, engine tag
     cache, a listener and a guard — each value identical to what the
     scattered per-component accessor reports. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let m = Metrics.create () in
  W.register_metrics m app;
  let guard = Guard.create ~max_conns:2 () in
  Guard.register_metrics m guard;
  Fiber.run (fun () ->
      W.stat main "demo.requests";
      W.stat main "demo.requests";
      let h = W.sthread_create main (W.sc_create ()) (fun _ _ -> 1) 0 in
      ignore (W.sthread_join main h);
      let l = Chan.listener () in
      Chan.register_metrics m l;
      Chan.shutdown l;
      (try ignore (Chan.connect l) with Chan.Refused _ -> ());
      let a, _b = Chan.pair () in
      (match Guard.admit guard a with
      | Guard.Admitted c -> Guard.release c
      | _ -> Alcotest.fail "admission refused under capacity");
      check Alcotest.int "chan.refused subsumed" (Chan.refused l)
        (Metrics.get m "chan.refused"));
  check Alcotest.int "stat counters subsumed"
    (Stats.get k.Kernel.stats "demo.requests")
    (Metrics.get m "demo.requests");
  check Alcotest.int "guard.admitted subsumed" (Guard.stats guard).Guard.s_admitted
    (Metrics.get m "guard.admitted");
  check Alcotest.int "guard.active gauge" (Guard.active guard)
    (Metrics.get m "guard.active");
  (* tlb.hit = totals reaped into kernel stats + the live main process. *)
  let live = W.tlb_stats main in
  check Alcotest.int "tlb hits: reaped + live"
    (Stats.get k.Kernel.stats "tlb.hit" + live.W.tlb_hits)
    (Metrics.get m "tlb.hit");
  check Alcotest.bool "snapshot is one coherent read" true
    (List.mem_assoc "kernel.live_processes" (Metrics.snapshot m))

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "export shape" `Quick test_export_shape;
          Alcotest.test_case "overflow keeps newest" `Quick test_ring_overflow_keeps_newest;
          Alcotest.test_case "disabled is free" `Quick test_disabled_is_free;
          Alcotest.test_case "arm/disarm/clear" `Quick test_arm_disarm_clear;
        ] );
      ( "validator",
        [ Alcotest.test_case "rejects garbage" `Quick test_validator_rejects_garbage ] );
      ( "engine",
        [
          Alcotest.test_case "spans attributed" `Quick test_engine_spans_attributed;
          Alcotest.test_case "deterministic export" `Quick
            test_export_deterministic_across_runs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "merge + sort + json" `Quick test_metrics_merges_and_sorts;
          Alcotest.test_case "subsumes scattered counters" `Quick
            test_metrics_subsume_scattered_counters;
        ] );
    ]
