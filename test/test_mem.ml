(* Tests for tagged memory: the smalloc allocator (including qcheck
   property tests over random alloc/free traces) and the tag cache. *)

module Physmem = Wedge_kernel.Physmem
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Tag = Wedge_mem.Tag
module Smalloc = Wedge_mem.Smalloc
module Tag_cache = Wedge_mem.Tag_cache

let check = Alcotest.check
let ps = Physmem.page_size
let seg_base = 0x10000
let seg_pages = 8
let seg_size = seg_pages * ps

let mk_seg () =
  let pm = Physmem.create () in
  let vm = Vm.create ~pid:1 pm (Clock.create ()) Cost_model.free in
  Vm.map_fresh vm ~addr:seg_base ~pages:seg_pages ~prot:Prot.page_rw ~tag:None;
  Smalloc.init vm ~base:seg_base ~size:seg_size;
  (pm, vm)

(* ---------- Smalloc basics ---------- *)

let test_alloc_returns_usable_memory () =
  let _, vm = mk_seg () in
  let p = Smalloc.alloc vm ~base:seg_base 100 in
  Vm.write_bytes vm p (Bytes.make 100 'x');
  check Alcotest.bool "usable >= requested" true
    (Smalloc.usable_size vm ~base:seg_base ~ptr:p >= 100);
  Smalloc.check vm ~base:seg_base

let test_allocations_disjoint () =
  let _, vm = mk_seg () in
  let ptrs = List.init 20 (fun i -> (Smalloc.alloc vm ~base:seg_base (16 + (i * 8)), 16 + (i * 8))) in
  (* Fill each with a distinct byte, then verify nothing was clobbered. *)
  List.iteri (fun i (p, n) -> Vm.write_bytes vm p (Bytes.make n (Char.chr (65 + i)))) ptrs;
  List.iteri
    (fun i (p, n) ->
      let b = Vm.read_bytes vm p n in
      check Alcotest.bool (Printf.sprintf "block %d intact" i) true
        (Bytes.for_all (fun c -> c = Char.chr (65 + i)) b))
    ptrs;
  Smalloc.check vm ~base:seg_base

let test_free_then_realloc_reuses () =
  let _, vm = mk_seg () in
  let p = Smalloc.alloc vm ~base:seg_base 256 in
  Smalloc.free vm ~base:seg_base p;
  let q = Smalloc.alloc vm ~base:seg_base 256 in
  check Alcotest.int "address reused" p q

let test_coalescing_recovers_space () =
  let _, vm = mk_seg () in
  let big = seg_size - Smalloc.overhead - 64 in
  let p = Smalloc.alloc vm ~base:seg_base big in
  Smalloc.free vm ~base:seg_base p;
  (* Fragment into many small blocks, free all, then the big one must fit
     again (requires coalescing). *)
  let small = List.init 32 (fun _ -> Smalloc.alloc vm ~base:seg_base 200) in
  List.iter (fun p -> Smalloc.free vm ~base:seg_base p) small;
  let q = Smalloc.alloc vm ~base:seg_base big in
  check Alcotest.bool "big allocation fits after coalescing" true (q > 0);
  Smalloc.check vm ~base:seg_base

let test_out_of_memory () =
  let _, vm = mk_seg () in
  (match Smalloc.alloc vm ~base:seg_base (seg_size * 2) with
  | _ -> Alcotest.fail "expected Out_of_tag_memory"
  | exception Smalloc.Out_of_tag_memory _ -> ());
  (* The segment remains usable. *)
  let p = Smalloc.alloc vm ~base:seg_base 64 in
  check Alcotest.bool "still works" true (p > 0)

let test_double_free_detected () =
  let _, vm = mk_seg () in
  let p = Smalloc.alloc vm ~base:seg_base 64 in
  Smalloc.free vm ~base:seg_base p;
  match Smalloc.free vm ~base:seg_base p with
  | _ -> Alcotest.fail "expected double-free detection"
  | exception Invalid_argument _ -> ()

let test_wild_free_rejected () =
  (* Regression: free/usable_size validate the pointer before touching
     the free list — a wild pointer raises instead of corrupting the
     segment. *)
  let _, vm = mk_seg () in
  let p = Smalloc.alloc vm ~base:seg_base 64 in
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "misaligned" (fun () -> Smalloc.free vm ~base:seg_base (p + 1));
  expect_invalid "before segment" (fun () ->
      Smalloc.free vm ~base:seg_base (seg_base + 8));
  expect_invalid "past segment" (fun () ->
      Smalloc.free vm ~base:seg_base (seg_base + seg_size + 128));
  expect_invalid "interior pointer" (fun () ->
      Smalloc.free vm ~base:seg_base (p + 16));
  expect_invalid "usable_size misaligned" (fun () ->
      ignore (Smalloc.usable_size vm ~base:seg_base ~ptr:(p + 4)));
  expect_invalid "usable_size wild" (fun () ->
      ignore (Smalloc.usable_size vm ~base:seg_base ~ptr:(p + 16)));
  (* The segment survives every rejected operation. *)
  Smalloc.check vm ~base:seg_base;
  Smalloc.free vm ~base:seg_base p;
  Smalloc.check vm ~base:seg_base

let test_corrupted_footer_rejected () =
  (* A peer that scribbles over a chunk footer (hostile writer sharing
     the tag) is caught by the header/footer cross-check on free. *)
  let _, vm = mk_seg () in
  let p = Smalloc.alloc vm ~base:seg_base 64 in
  let usable = Smalloc.usable_size vm ~base:seg_base ~ptr:p in
  (* The footer is the last word of the chunk: overwrite it via the
     user's own (in-bounds-ish) buffer overflow. *)
  Vm.write_u64 vm (p + usable) 0xdeadbeef;
  match Smalloc.free vm ~base:seg_base p with
  | _ -> Alcotest.fail "expected footer-mismatch detection"
  | exception Invalid_argument _ -> ()

let test_bad_magic_rejected () =
  let pm = Physmem.create () in
  let vm = Vm.create ~pid:1 pm (Clock.create ()) Cost_model.free in
  Vm.map_fresh vm ~addr:seg_base ~pages:1 ~prot:Prot.page_rw ~tag:None;
  match Smalloc.alloc vm ~base:seg_base 8 with
  | _ -> Alcotest.fail "expected bad-magic rejection"
  | exception Invalid_argument _ -> ()

let test_alloc_respects_vm_protection () =
  (* An sthread without write permission on a tag cannot even run the
     allocator over it: the bookkeeping write faults. *)
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm1 = Vm.create ~pid:1 pm clock Cost_model.free in
  let vm2 = Vm.create ~pid:2 pm clock Cost_model.free in
  Vm.map_fresh vm1 ~addr:seg_base ~pages:seg_pages ~prot:Prot.page_rw ~tag:None;
  Smalloc.init vm1 ~base:seg_base ~size:seg_size;
  Vm.share_range ~src:vm1 ~dst:vm2 ~addr:seg_base ~pages:seg_pages ~prot:Prot.page_r;
  match Smalloc.alloc vm2 ~base:seg_base 32 with
  | _ -> Alcotest.fail "expected fault"
  | exception Vm.Fault _ -> ()

let test_prefill_image_matches_init () =
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm1 = Vm.create ~pid:1 pm clock Cost_model.free in
  let vm2 = Vm.create ~pid:2 pm clock Cost_model.free in
  Vm.map_fresh vm1 ~addr:seg_base ~pages:2 ~prot:Prot.page_rw ~tag:None;
  Vm.map_fresh vm2 ~addr:seg_base ~pages:2 ~prot:Prot.page_rw ~tag:None;
  Smalloc.init vm1 ~base:seg_base ~size:(2 * ps);
  List.iter
    (fun (addr, w) -> Vm.write_u64 vm2 addr w)
    (Smalloc.prefill_image ~base:seg_base ~size:(2 * ps));
  let a1 = Smalloc.alloc vm1 ~base:seg_base 40 in
  let a2 = Smalloc.alloc vm2 ~base:seg_base 40 in
  check Alcotest.int "prefilled segment allocates identically" a1 a2

(* ---------- Smalloc property tests ---------- *)

(* Random traces of alloc/free with integrity checking: every live block
   keeps its fill pattern; the segment structure stays valid. *)
let prop_random_trace =
  QCheck.Test.make ~name:"smalloc random alloc/free trace keeps integrity" ~count:60
    QCheck.(list (pair (int_range 1 600) bool))
    (fun ops ->
      let _, vm = mk_seg () in
      let live = Hashtbl.create 16 in
      let next_fill = ref 0 in
      List.iter
        (fun (size, do_free) ->
          if do_free && Hashtbl.length live > 0 then begin
            let p = Hashtbl.fold (fun p _ acc -> min p acc) live max_int in
            let fill, n = Hashtbl.find live p in
            let b = Vm.read_bytes vm p n in
            if not (Bytes.for_all (fun c -> Char.code c = fill) b) then
              QCheck.Test.fail_report "block corrupted before free";
            Smalloc.free vm ~base:seg_base p;
            Hashtbl.remove live p
          end
          else
            match Smalloc.alloc vm ~base:seg_base size with
            | p ->
                let fill = 1 + (!next_fill mod 250) in
                incr next_fill;
                Vm.write_bytes vm p (Bytes.make size (Char.chr fill));
                Hashtbl.replace live p (fill, size)
            | exception Smalloc.Out_of_tag_memory _ -> ())
        ops;
      (* Final integrity sweep + structural check. *)
      Hashtbl.iter
        (fun p (fill, n) ->
          let b = Vm.read_bytes vm p n in
          if not (Bytes.for_all (fun c -> Char.code c = fill) b) then
            QCheck.Test.fail_report "live block corrupted at end")
        live;
      Smalloc.check vm ~base:seg_base;
      true)

let prop_free_all_recovers_everything =
  QCheck.Test.make ~name:"freeing everything recovers the whole segment" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 500))
    (fun sizes ->
      let _, vm = mk_seg () in
      let initial = Smalloc.free_bytes vm ~base:seg_base in
      let ptrs =
        List.filter_map
          (fun n ->
            match Smalloc.alloc vm ~base:seg_base n with
            | p -> Some p
            | exception Smalloc.Out_of_tag_memory _ -> None)
          sizes
      in
      List.iter (fun p -> Smalloc.free vm ~base:seg_base p) ptrs;
      Smalloc.check vm ~base:seg_base;
      Smalloc.free_bytes vm ~base:seg_base = initial)

(* Regression for the pointer-validation sweep: the segment must be
   structurally valid after {e every single} operation, not just at the
   end of a trace — a validation bug that corrupts the free list shows
   up immediately instead of being masked by later coalescing. *)
let prop_checked_after_every_op =
  QCheck.Test.make ~name:"segment valid after every alloc/free" ~count:40
    QCheck.(list (pair (int_range 1 600) bool))
    (fun ops ->
      let _, vm = mk_seg () in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          (match (do_free, !live) with
          | true, p :: rest ->
              Smalloc.free vm ~base:seg_base p;
              live := rest
          | _ -> (
              match Smalloc.alloc vm ~base:seg_base size with
              | p ->
                  (* Every live pointer must still validate. *)
                  live := p :: !live
              | exception Smalloc.Out_of_tag_memory _ -> ()));
          Smalloc.check vm ~base:seg_base;
          List.iter
            (fun p ->
              if Smalloc.usable_size vm ~base:seg_base ~ptr:p < 1 then
                QCheck.Test.fail_report "live pointer stopped validating")
            !live)
        ops;
      true)

let prop_alloc_8byte_aligned =
  QCheck.Test.make ~name:"allocations are 8-byte aligned" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 200))
    (fun sizes ->
      let _, vm = mk_seg () in
      List.for_all
        (fun n ->
          match Smalloc.alloc vm ~base:seg_base n with
          | p -> p land 7 = 0
          | exception Smalloc.Out_of_tag_memory _ -> true)
        sizes)

(* ---------- Tag registry ---------- *)

let test_tag_registry_lookup () =
  let reg = Tag.registry_create () in
  let t1 = Tag.register reg ~name:"a" ~base:0x10000 ~pages:2 in
  let t2 = Tag.register reg ~name:"b" ~base:0x20000 ~pages:1 in
  check Alcotest.bool "find t1" true (Tag.find reg t1.Tag.id = Some t1);
  check Alcotest.bool "by addr middle" true (Tag.find_by_addr reg 0x11fff = Some t1);
  check Alcotest.bool "by addr other" true (Tag.find_by_addr reg 0x20000 = Some t2);
  check Alcotest.bool "miss" true (Tag.find_by_addr reg 0x30000 = None);
  Tag.delete reg t1;
  check Alcotest.bool "deleted invisible" true (Tag.find reg t1.Tag.id = None);
  check Alcotest.bool "deleted addr miss" true (Tag.find_by_addr reg 0x10000 = None);
  check Alcotest.int "live tags" 1 (List.length (Tag.live_tags reg))

(* ---------- Tag cache ---------- *)

let test_tag_cache_hit_and_scrub () =
  let pm = Physmem.create () in
  let cache = Tag_cache.create pm in
  let f = Physmem.alloc pm in
  Bytes.blit_string "SECRET" 0 (Physmem.get pm f) 0 6;
  Tag_cache.put cache { Tag_cache.base = 0x5000; pages = 1; frames = [ f ] };
  Physmem.decref pm f;
  (* the cache keeps it alive *)
  check Alcotest.int "cached frame alive" 1 (Physmem.refcount pm f);
  (match Tag_cache.take cache ~pages:1 with
  | Some e ->
      check Alcotest.int "same base" 0x5000 e.Tag_cache.base;
      check Alcotest.bool "scrubbed" true
        (Bytes.for_all (fun c -> c = '\000') (Physmem.get pm f))
  | None -> Alcotest.fail "expected hit");
  check Alcotest.int "hits" 1 (Tag_cache.hits cache);
  check Alcotest.bool "second take misses" true (Tag_cache.take cache ~pages:1 = None)

let test_tag_cache_no_scrub_leaks () =
  (* Negative demonstration: without scrubbing, a reused tag exposes the
     previous owner's data — exactly the secrecy hazard §4.1 scrubs away. *)
  let pm = Physmem.create () in
  let cache = Tag_cache.create ~scrub:false pm in
  let f = Physmem.alloc pm in
  Bytes.blit_string "SECRET" 0 (Physmem.get pm f) 0 6;
  Tag_cache.put cache { Tag_cache.base = 0x5000; pages = 1; frames = [ f ] };
  Physmem.decref pm f;
  match Tag_cache.take cache ~pages:1 with
  | Some e ->
      let leaked = Bytes.sub_string (Physmem.get pm (List.hd e.Tag_cache.frames)) 0 6 in
      check Alcotest.string "old data visible without scrub" "SECRET" leaked
  | None -> Alcotest.fail "expected hit"

let test_tag_cache_size_class_exact () =
  let pm = Physmem.create () in
  let cache = Tag_cache.create pm in
  let f = Physmem.alloc pm in
  Tag_cache.put cache { Tag_cache.base = 0x5000; pages = 2; frames = [ f; Physmem.alloc pm ] };
  check Alcotest.bool "wrong size misses" true (Tag_cache.take cache ~pages:1 = None);
  check Alcotest.bool "right size hits" true (Tag_cache.take cache ~pages:2 <> None)

let test_tag_cache_scrub_counter () =
  (* Scrubbing is counted, not clock-charged: billing page_scrub per
     reused page would erase the cheap-reuse effect the cache reproduces
     (Figure 8), but the secrecy work must still be observable. *)
  let pm = Physmem.create () in
  let cache = Tag_cache.create pm in
  let fs = [ Physmem.alloc pm; Physmem.alloc pm; Physmem.alloc pm ] in
  Tag_cache.put cache { Tag_cache.base = 0x5000; pages = 3; frames = fs };
  List.iter (fun f -> Physmem.decref pm f) fs;
  check Alcotest.int "nothing scrubbed yet" 0 (Tag_cache.scrubbed_pages cache);
  ignore (Tag_cache.take cache ~pages:3);
  check Alcotest.int "every reused page scrubbed" 3 (Tag_cache.scrubbed_pages cache)

let test_tag_cache_disabled () =
  let pm = Physmem.create () in
  let cache = Tag_cache.create ~enabled:false pm in
  let f = Physmem.alloc pm in
  Tag_cache.put cache { Tag_cache.base = 0x5000; pages = 1; frames = [ f ] };
  check Alcotest.int "nothing cached" 0 (Tag_cache.size cache);
  check Alcotest.bool "take misses" true (Tag_cache.take cache ~pages:1 = None)

let qcheck tests = List.map Test_rng.to_alcotest tests

let () =
  Alcotest.run "wedge_mem"
    [
      ( "smalloc",
        [
          Alcotest.test_case "usable memory" `Quick test_alloc_returns_usable_memory;
          Alcotest.test_case "disjoint allocations" `Quick test_allocations_disjoint;
          Alcotest.test_case "free then realloc" `Quick test_free_then_realloc_reuses;
          Alcotest.test_case "coalescing" `Quick test_coalescing_recovers_space;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "wild free rejected" `Quick test_wild_free_rejected;
          Alcotest.test_case "corrupted footer rejected" `Quick test_corrupted_footer_rejected;
          Alcotest.test_case "bad magic" `Quick test_bad_magic_rejected;
          Alcotest.test_case "protection enforced" `Quick test_alloc_respects_vm_protection;
          Alcotest.test_case "prefill image" `Quick test_prefill_image_matches_init;
        ] );
      ( "smalloc-properties",
        qcheck
          [
            prop_random_trace;
            prop_checked_after_every_op;
            prop_free_all_recovers_everything;
            prop_alloc_8byte_aligned;
          ]
      );
      ("tag", [ Alcotest.test_case "registry lookup" `Quick test_tag_registry_lookup ]);
      ( "tag_cache",
        [
          Alcotest.test_case "hit and scrub" `Quick test_tag_cache_hit_and_scrub;
          Alcotest.test_case "no scrub leaks" `Quick test_tag_cache_no_scrub_leaks;
          Alcotest.test_case "exact size class" `Quick test_tag_cache_size_class_exact;
          Alcotest.test_case "scrub counter" `Quick test_tag_cache_scrub_counter;
          Alcotest.test_case "disabled" `Quick test_tag_cache_disabled;
        ] );
    ]
