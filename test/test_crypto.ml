(* Crypto substrate tests: bignum arithmetic (with qcheck properties against
   native-int references), SHA-256 / HMAC / RC4 standard test vectors, prime
   generation, RSA and DSA roundtrips and tamper-rejection. *)

module B = Wedge_crypto.Bignum
module Drbg = Wedge_crypto.Drbg
module Prime = Wedge_crypto.Prime
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module Sha256 = Wedge_crypto.Sha256
module Hmac = Wedge_crypto.Hmac
module Rc4 = Wedge_crypto.Rc4

let check = Alcotest.check
let rng () = Drbg.create ~seed:0x5eed

(* ---------- Bignum ---------- *)

let test_bignum_int_roundtrip () =
  List.iter
    (fun n -> check Alcotest.int (string_of_int n) n (B.to_int (B.of_int n)))
    [ 0; 1; 2; 255; 256; 65535; 1 lsl 26; (1 lsl 26) - 1; 123456789; max_int / 2 ]

let test_bignum_hex () =
  check Alcotest.string "hex" "deadbeef" (B.to_hex (B.of_hex "DEADBEEF"));
  check Alcotest.string "zero" "0" (B.to_hex B.zero);
  check Alcotest.int "hex value" 0xdeadbeef (B.to_int (B.of_hex "deadbeef"))

let test_bignum_bytes_be () =
  let b = Bytes.of_string "\x01\x02\x03" in
  check Alcotest.int "of_bytes" 0x010203 (B.to_int (B.of_bytes_be b));
  check Alcotest.string "to_bytes padded" "\x00\x01\x02\x03"
    (Bytes.to_string (B.to_bytes_be ~len:4 (B.of_int 0x010203)));
  (match B.to_bytes_be ~len:2 (B.of_int 0x010203) with
  | _ -> Alcotest.fail "expected overflow rejection"
  | exception Invalid_argument _ -> ());
  check Alcotest.string "zero is one byte" "\x00" (Bytes.to_string (B.to_bytes_be B.zero))

let test_bignum_sub_negative_rejected () =
  match B.sub (B.of_int 3) (B.of_int 5) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_bignum_divmod_by_zero () =
  match B.divmod B.one B.zero with
  | _ -> Alcotest.fail "expected Division_by_zero"
  | exception Division_by_zero -> ()

let test_bignum_modexp_known () =
  (* 5^117 mod 19 = 1 (5 has order dividing 18; 117 mod 18 = 9; 5^9 mod 19 = 5^9 = 1953125 mod 19) *)
  let v = B.modexp ~base:(B.of_int 5) ~exp:(B.of_int 117) ~m:(B.of_int 19) in
  check Alcotest.int "5^117 mod 19" (let rec p b e m acc = if e = 0 then acc else p b (e-1) m (acc * b mod m) in p 5 117 19 1) (B.to_int v);
  let v2 = B.modexp ~base:(B.of_hex "123456789abcdef") ~exp:(B.of_int 2) ~m:(B.of_hex "fffffffffffffff1") in
  let expected =
    let x = B.of_hex "123456789abcdef" in
    B.rem (B.mul x x) (B.of_hex "fffffffffffffff1")
  in
  check Alcotest.bool "square mod big" true (B.equal v2 expected)

let test_bignum_modinv () =
  let m = B.of_int 97 in
  for a = 1 to 96 do
    let inv = B.modinv (B.of_int a) ~m in
    check Alcotest.int (Printf.sprintf "inv %d" a) 1 (B.to_int (B.rem (B.mul (B.of_int a) inv) m))
  done;
  match B.modinv (B.of_int 6) ~m:(B.of_int 9) with
  | _ -> Alcotest.fail "expected Not_found for non-coprime"
  | exception Not_found -> ()

let test_bignum_shift () =
  let x = B.of_hex "123456789abcdef0" in
  check Alcotest.bool "shl/shr inverse" true (B.equal x (B.shift_right (B.shift_left x 37) 37));
  check Alcotest.int "shr drops" 0x12 (B.to_int (B.shift_right x 56));
  check Alcotest.int "num_bits" 61 (B.num_bits x)

let small = QCheck.int_range 0 0x3fffffff

let prop_add_matches_int =
  QCheck.Test.make ~name:"bignum add matches int" ~count:200 (QCheck.pair small small)
    (fun (a, b) -> B.to_int (B.add (B.of_int a) (B.of_int b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bignum mul matches int" ~count:200
    (QCheck.pair (QCheck.int_range 0 0x7fffffff) (QCheck.int_range 0 0x7fffffff))
    (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = a * b)

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r with r < b" ~count:200
    (QCheck.pair (QCheck.int_range 0 max_int) (QCheck.int_range 1 max_int))
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int q = a / b && B.to_int r = a mod b)

let prop_big_divmod_identity =
  (* Same identity over operands far beyond the int range. *)
  QCheck.Test.make ~name:"big divmod reconstructs dividend" ~count:60
    (QCheck.pair (QCheck.int_range 1 1_000_000) (QCheck.int_range 1 1_000_000))
    (fun (sa, sb) ->
      let ra = Drbg.create ~seed:sa and rb = Drbg.create ~seed:sb in
      let a = B.random_bits ra ~bits:300 and b = B.random_bits rb ~bits:130 in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let prop_modexp_matches_naive =
  QCheck.Test.make ~name:"modexp matches naive square-and-multiply" ~count:50
    (QCheck.triple (QCheck.int_range 2 9999) (QCheck.int_range 0 50) (QCheck.int_range 2 9999))
    (fun (b, e, m) ->
      let rec naive acc i = if i = 0 then acc else naive (acc * b mod m) (i - 1) in
      B.to_int (B.modexp ~base:(B.of_int b) ~exp:(B.of_int e) ~m:(B.of_int m)) = naive 1 e)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"of_bytes_be . to_bytes_be = id" ~count:100
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let r = Drbg.create ~seed in
      let v = B.random_bits r ~bits:(1 + Drbg.int_below r 300) in
      B.equal v (B.of_bytes_be (B.to_bytes_be v)))

let test_bignum_modexp_edges () =
  let m = B.of_int 97 in
  check Alcotest.int "x^0 = 1" 1 (B.to_int (B.modexp ~base:(B.of_int 5) ~exp:B.zero ~m));
  check Alcotest.int "0^x = 0" 0 (B.to_int (B.modexp ~base:B.zero ~exp:(B.of_int 5) ~m));
  check Alcotest.int "mod 1 = 0" 0 (B.to_int (B.modexp ~base:(B.of_int 5) ~exp:(B.of_int 5) ~m:B.one));
  match B.modexp ~base:B.one ~exp:B.one ~m:B.zero with
  | _ -> Alcotest.fail "expected Division_by_zero"
  | exception Division_by_zero -> ()

let test_bignum_to_int_overflow () =
  let huge = B.shift_left B.one 80 in
  match B.to_int huge with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

let test_dsa_params_are_sound () =
  let p = Dsa.demo_params () in
  (* q divides p-1 and g has order q. *)
  check Alcotest.bool "q | p-1" true
    (B.is_zero (B.rem (B.sub p.Dsa.p B.one) p.Dsa.q));
  check Alcotest.bool "g^q = 1 mod p" true
    (B.equal (B.modexp ~base:p.Dsa.g ~exp:p.Dsa.q ~m:p.Dsa.p) B.one);
  check Alcotest.bool "g <> 1" false (B.equal p.Dsa.g B.one)

(* ---------- SHA-256 ---------- *)

let test_sha256_vectors () =
  let t s = Sha256.hex (Sha256.digest_string s) in
  check Alcotest.string "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (t "");
  check Alcotest.string "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (t "abc");
  check Alcotest.string "two-block"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (t "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "448-bit edge"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (t "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_incremental () =
  let one_shot = Sha256.digest_string "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  List.iter (Sha256.update_string ctx) [ "the quick brown "; "fox jumps "; ""; "over the lazy dog" ];
  check Alcotest.string "incremental = one-shot" (Sha256.hex one_shot) (Sha256.hex (Sha256.final ctx))

let prop_sha256_incremental_split =
  QCheck.Test.make ~name:"sha256: any split gives same digest" ~count:100
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.int_range 0 300)) (QCheck.int_range 0 300))
    (fun (s, cut) ->
      let cut = min cut (String.length s) in
      let ctx = Sha256.init () in
      Sha256.update_string ctx (String.sub s 0 cut);
      Sha256.update_string ctx (String.sub s cut (String.length s - cut));
      Sha256.final ctx = Sha256.digest_string s)

(* ---------- HMAC ---------- *)

let test_hmac_rfc4231 () =
  let tag1 = Hmac.mac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There") in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" (Sha256.hex tag1);
  let tag2 = Hmac.mac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?") in
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" (Sha256.hex tag2);
  (* long key (> block size) *)
  let tag3 = Hmac.mac ~key:(Bytes.make 131 '\xaa') (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First") in
  check Alcotest.string "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" (Sha256.hex tag3)

let test_hmac_verify () =
  let key = Bytes.of_string "k" in
  let data = Bytes.of_string "data" in
  let tag = Hmac.mac ~key data in
  check Alcotest.bool "accepts" true (Hmac.verify ~key data ~tag);
  Bytes.set tag 5 (Char.chr (Char.code (Bytes.get tag 5) lxor 1));
  check Alcotest.bool "rejects flipped bit" false (Hmac.verify ~key data ~tag);
  check Alcotest.bool "rejects short tag" false (Hmac.verify ~key data ~tag:(Bytes.sub tag 0 16))

(* ---------- RC4 ---------- *)

let test_rc4_vectors () =
  let t key pt =
    Sha256.hex (Rc4.crypt (Rc4.create ~key:(Bytes.of_string key)) (Bytes.of_string pt))
  in
  ignore t;
  let hexify b = String.concat "" (List.map (fun c -> Printf.sprintf "%02X" (Char.code c)) (List.of_seq (Bytes.to_seq b))) in
  let enc key pt = hexify (Rc4.crypt (Rc4.create ~key:(Bytes.of_string key)) (Bytes.of_string pt)) in
  check Alcotest.string "Key/Plaintext" "BBF316E8D940AF0AD3" (enc "Key" "Plaintext");
  check Alcotest.string "Wiki/pedia" "1021BF0420" (enc "Wiki" "pedia");
  check Alcotest.string "Secret/dawn" "45A01F645FC35B383552544B9BF5" (enc "Secret" "Attack at dawn")

let test_rc4_roundtrip_and_state () =
  let key = Bytes.of_string "some key" in
  let enc = Rc4.create ~key and dec = Rc4.create ~key in
  let msgs = [ "first"; "second message"; "third!" ] in
  List.iter
    (fun m ->
      let ct = Rc4.crypt enc (Bytes.of_string m) in
      check Alcotest.string "stream decrypts in order" m (Bytes.to_string (Rc4.crypt dec ct)))
    msgs;
  (* Serialisation preserves mid-stream state. *)
  let enc2 = Rc4.deserialize (Rc4.serialize enc) in
  let dec2 = Rc4.deserialize (Rc4.serialize dec) in
  let ct = Rc4.crypt enc2 (Bytes.of_string "resumed") in
  check Alcotest.string "state roundtrip" "resumed" (Bytes.to_string (Rc4.crypt dec2 ct))

(* ---------- Prime ---------- *)

let test_prime_known () =
  let r = rng () in
  List.iter
    (fun (n, expect) ->
      check Alcotest.bool (string_of_int n) expect (Prime.is_prime r (B.of_int n)))
    [ (0, false); (1, false); (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (104729, true); (104730, false) ]

let test_prime_large () =
  let r = rng () in
  (* 2^89 - 1 is a Mersenne prime; 2^67 - 1 is famously composite. *)
  let m89 = B.sub (B.shift_left B.one 89) B.one in
  let m67 = B.sub (B.shift_left B.one 67) B.one in
  check Alcotest.bool "M89 prime" true (Prime.is_prime r m89);
  check Alcotest.bool "M67 composite" false (Prime.is_prime r m67)

let test_gen_prime_bits () =
  let r = rng () in
  let p = Prime.gen_prime r ~bits:64 in
  check Alcotest.int "exact bits" 64 (B.num_bits p);
  check Alcotest.bool "prime" true (Prime.is_prime r p)

(* ---------- RSA ---------- *)

let test_rsa_roundtrip () =
  let k = Rsa.demo_key () in
  let r = rng () in
  let msg = Bytes.of_string "premaster-secret-48-bytes-................" in
  let ct = Rsa.encrypt r k.Rsa.pub msg in
  check Alcotest.bool "decrypts" true (Rsa.decrypt k ct = Some msg)

let test_rsa_padding_randomizes () =
  let k = Rsa.demo_key () in
  let r = rng () in
  let msg = Bytes.of_string "same message" in
  let c1 = Rsa.encrypt r k.Rsa.pub msg and c2 = Rsa.encrypt r k.Rsa.pub msg in
  check Alcotest.bool "ciphertexts differ" false (Bytes.equal c1 c2)

let test_rsa_wrong_key_fails () =
  let k1 = Rsa.demo_key () and k2 = Rsa.demo_key2 () in
  let r = rng () in
  let ct = Rsa.encrypt r k1.Rsa.pub (Bytes.of_string "for key 1") in
  check Alcotest.bool "other key cannot decrypt" true (Rsa.decrypt k2 ct <> Some (Bytes.of_string "for key 1"))

let test_rsa_tampered_ct_fails () =
  let k = Rsa.demo_key () in
  let r = rng () in
  let ct = Rsa.encrypt r k.Rsa.pub (Bytes.of_string "payload") in
  Bytes.set ct 10 (Char.chr (Char.code (Bytes.get ct 10) lxor 0x40));
  check Alcotest.bool "padding check rejects" true (Rsa.decrypt k ct <> Some (Bytes.of_string "payload"))

let test_rsa_sign_verify () =
  let k = Rsa.demo_key () in
  let msg = Bytes.of_string "host key proof" in
  let signature = Rsa.sign k msg in
  check Alcotest.bool "verifies" true (Rsa.verify k.Rsa.pub msg ~signature);
  check Alcotest.bool "wrong message rejected" false
    (Rsa.verify k.Rsa.pub (Bytes.of_string "other") ~signature);
  Bytes.set signature 3 'X';
  check Alcotest.bool "tampered signature rejected" false (Rsa.verify k.Rsa.pub msg ~signature)

let test_rsa_pub_serialization () =
  let k = Rsa.demo_key () in
  match Rsa.pub_of_string (Rsa.pub_to_string k.Rsa.pub) with
  | Some p ->
      check Alcotest.bool "n" true (B.equal p.Rsa.n k.Rsa.pub.Rsa.n);
      check Alcotest.bool "e" true (B.equal p.Rsa.e k.Rsa.pub.Rsa.e)
  | None -> Alcotest.fail "roundtrip failed"

let test_rsa_max_payload_enforced () =
  let k = Rsa.demo_key () in
  let r = rng () in
  let too_big = Bytes.create (Rsa.max_payload k.Rsa.pub + 1) in
  match Rsa.encrypt r k.Rsa.pub too_big with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let prop_rsa_roundtrip_random =
  QCheck.Test.make ~name:"rsa roundtrips random payloads" ~count:15
    (QCheck.string_of_size (QCheck.Gen.int_range 1 30))
    (fun s ->
      let k = Rsa.demo_key () in
      let r = Drbg.create ~seed:(Hashtbl.hash s) in
      Rsa.decrypt k (Rsa.encrypt r k.Rsa.pub (Bytes.of_string s)) = Some (Bytes.of_string s))

(* ---------- DSA ---------- *)

let test_dsa_sign_verify () =
  let r = rng () in
  let params = Dsa.demo_params () in
  let key = Dsa.keygen r params in
  let msg = Bytes.of_string "authenticate me" in
  let signature = Dsa.sign r key msg in
  check Alcotest.bool "verifies" true (Dsa.verify key.Dsa.pub msg ~signature);
  check Alcotest.bool "other message rejected" false
    (Dsa.verify key.Dsa.pub (Bytes.of_string "forged") ~signature)

let test_dsa_wrong_key_rejected () =
  let r = rng () in
  let params = Dsa.demo_params () in
  let k1 = Dsa.keygen r params and k2 = Dsa.keygen r params in
  let msg = Bytes.of_string "msg" in
  let signature = Dsa.sign r k1 msg in
  check Alcotest.bool "k2 pub rejects k1 sig" false (Dsa.verify k2.Dsa.pub msg ~signature)

let test_dsa_signature_randomized () =
  let r = rng () in
  let params = Dsa.demo_params () in
  let key = Dsa.keygen r params in
  let msg = Bytes.of_string "m" in
  let r1, s1 = Dsa.sign r key msg and r2, s2 = Dsa.sign r key msg in
  check Alcotest.bool "nonces differ" false (B.equal r1 r2 && B.equal s1 s2)

(* ---------- Drbg ---------- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:7 and b = Drbg.create ~seed:7 in
  check Alcotest.string "same stream" (Bytes.to_string (Drbg.bytes a 64)) (Bytes.to_string (Drbg.bytes b 64));
  let c = Drbg.create ~seed:8 in
  check Alcotest.bool "different seed differs" false
    (Bytes.equal (Drbg.bytes (Drbg.create ~seed:7) 64) (Drbg.bytes c 64))

let test_drbg_int_below_range () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Drbg.int_below r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done

let qcheck tests = List.map Test_rng.to_alcotest tests

let () =
  Alcotest.run "wedge_crypto"
    [
      ( "bignum",
        [
          Alcotest.test_case "int roundtrip" `Quick test_bignum_int_roundtrip;
          Alcotest.test_case "hex" `Quick test_bignum_hex;
          Alcotest.test_case "bytes be" `Quick test_bignum_bytes_be;
          Alcotest.test_case "negative sub rejected" `Quick test_bignum_sub_negative_rejected;
          Alcotest.test_case "div by zero" `Quick test_bignum_divmod_by_zero;
          Alcotest.test_case "modexp known" `Quick test_bignum_modexp_known;
          Alcotest.test_case "modinv exhaustive mod 97" `Quick test_bignum_modinv;
          Alcotest.test_case "shifts" `Quick test_bignum_shift;
          Alcotest.test_case "modexp edges" `Quick test_bignum_modexp_edges;
          Alcotest.test_case "to_int overflow" `Quick test_bignum_to_int_overflow;
        ] );
      ( "bignum-properties",
        qcheck
          [
            prop_add_matches_int;
            prop_mul_matches_int;
            prop_divmod_identity;
            prop_big_divmod_identity;
            prop_modexp_matches_naive;
            prop_bytes_roundtrip;
          ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
        ]
        @ qcheck [ prop_sha256_incremental_split ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "rc4",
        [
          Alcotest.test_case "classic vectors" `Quick test_rc4_vectors;
          Alcotest.test_case "roundtrip + state" `Quick test_rc4_roundtrip_and_state;
        ] );
      ( "prime",
        [
          Alcotest.test_case "known primes" `Quick test_prime_known;
          Alcotest.test_case "large Mersenne" `Quick test_prime_large;
          Alcotest.test_case "gen_prime size" `Quick test_gen_prime_bits;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "padding randomizes" `Quick test_rsa_padding_randomizes;
          Alcotest.test_case "wrong key fails" `Quick test_rsa_wrong_key_fails;
          Alcotest.test_case "tampered ciphertext" `Quick test_rsa_tampered_ct_fails;
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "pub serialization" `Quick test_rsa_pub_serialization;
          Alcotest.test_case "max payload" `Quick test_rsa_max_payload_enforced;
        ]
        @ qcheck [ prop_rsa_roundtrip_random ] );
      ( "dsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_dsa_sign_verify;
          Alcotest.test_case "wrong key" `Quick test_dsa_wrong_key_rejected;
          Alcotest.test_case "randomized" `Quick test_dsa_signature_randomized;
          Alcotest.test_case "parameters sound" `Quick test_dsa_params_are_sound;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "int_below range" `Quick test_drbg_int_below_range;
        ] );
    ]
