(* Self-healing tests: overflow-safe supervision backoff, fault-history
   reset for long-lived workers, supervision-tree escalation / quarantine
   / rest-for-one, watchdog hang detection (unit and against all three
   servers via a mid-header staller), circuit-breaker transitions, fiber
   cancellation delivery, the new engine fault sites, and byte-identical
   replay of a full fault-storm scenario. *)

module Fault_plan = Wedge_fault.Fault_plan
module Kernel = Wedge_kernel.Kernel
module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Watchdog = Wedge_net.Watchdog
module Byzantine = Wedge_net.Byzantine
module W = Wedge_core.Wedge
module Supervisor = Wedge_core.Supervisor
module Scenarios = Wedge_check.Scenarios

let check = Alcotest.check

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mk_ctx () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app ~image_pages:40 k in
  W.boot app;
  (k, W.main_ctx app)

(* ---------- satellite 1: overflow-safe, capped backoff ---------- *)

let test_backoff_no_overflow () =
  (* The old schedule [backoff_ns * (1 lsl (attempt - 1))] overflows at
     attempt 63 and shifts by a negative amount past 64.  The doubling
     fold must saturate instead. *)
  let p = Supervisor.policy ~backoff_ns:100 ~max_backoff_ns:max_int () in
  let b100 = Supervisor.backoff_for p ~attempt:100 in
  check Alcotest.bool "attempt 100 is non-negative" true (b100 >= 0);
  check Alcotest.bool "attempt 100 saturates high" true (b100 > 1_000_000);
  let big = Supervisor.policy ~backoff_ns:(max_int / 2) ~max_backoff_ns:max_int () in
  check Alcotest.bool "huge base stays positive" true
    (Supervisor.backoff_for big ~attempt:5 > 0)

let test_backoff_cap_pins_schedule () =
  let p = Supervisor.policy ~backoff_ns:100 ~max_backoff_ns:1_000 () in
  check Alcotest.int "attempt 1" 100 (Supervisor.backoff_for p ~attempt:1);
  check Alcotest.int "attempt 2" 200 (Supervisor.backoff_for p ~attempt:2);
  check Alcotest.int "attempt 4" 800 (Supervisor.backoff_for p ~attempt:4);
  check Alcotest.int "attempt 5 capped" 1_000 (Supervisor.backoff_for p ~attempt:5);
  check Alcotest.int "attempt 60 capped" 1_000 (Supervisor.backoff_for p ~attempt:60);
  (* The default cap (1 s of simulated time) leaves the historical small
     schedules untouched: 100+200+400 = 700 ns for three retries. *)
  let d = Supervisor.policy ~max_restarts:3 ~backoff_ns:100 () in
  let total =
    Supervisor.backoff_for d ~attempt:1
    + Supervisor.backoff_for d ~attempt:2
    + Supervisor.backoff_for d ~attempt:3
  in
  check Alcotest.int "pinned 700 ns schedule" 700 total

(* ---------- tree: escalation, quarantine, rest-for-one ---------- *)

let failing_fn () = raise (Fault_plan.Injected "boom")

let test_tree_escalates_and_quarantines () =
  let k, ctx = mk_ctx () in
  let node =
    Supervisor.node ~intensity:2 ~window_ns:10_000 ~quarantine_ns:20_000
      ~name:"t" ctx
  in
  let c = Supervisor.child ~policy:(Supervisor.policy ~max_restarts:5 ()) node ~name:"w" in
  (* Attempt stream: faults 1 and 2 fit the budget, the third escalates
     mid-retry. *)
  (match Supervisor.run_child_fn c failing_fn with
  | Supervisor.Gave_up { last_fault; _ } ->
      check Alcotest.bool "escalated" true (contains last_fault "escalated")
  | Supervisor.Done _ -> Alcotest.fail "expected Gave_up");
  check Alcotest.bool "quarantined" true
    (Supervisor.child_health c = Supervisor.Quarantined);
  check Alcotest.int "escalation counted" 1 (Stats.get k.Kernel.stats "supervisor.escalated");
  (* While quarantined: refused without burning an attempt — even a
     healthy function is not run. *)
  (match Supervisor.run_child_fn c (fun () -> 7) with
  | Supervisor.Gave_up { attempts; last_fault } ->
      check Alcotest.int "no attempt burned" 0 attempts;
      check Alcotest.bool "quarantined reason" true (contains last_fault "quarantined")
  | Supervisor.Done _ -> Alcotest.fail "quarantine must refuse");
  check Alcotest.int "refusal counted" 1
    (Stats.get k.Kernel.stats "supervisor.quarantine.refused");
  (* After the quarantine window the child runs again and recovers. *)
  Clock.charge k.Kernel.clock 25_000;
  (match Supervisor.run_child_fn c (fun () -> 7) with
  | Supervisor.Done { value; _ } -> check Alcotest.int "served after lift" 7 value
  | Supervisor.Gave_up _ -> Alcotest.fail "quarantine must lift");
  check Alcotest.int "lift counted" 1
    (Stats.get k.Kernel.stats "supervisor.quarantine.lift")

let test_rest_for_one_restarts_later_siblings () =
  let k, ctx = mk_ctx () in
  let node =
    Supervisor.node ~strategy:Supervisor.Rest_for_one ~intensity:1 ~window_ns:10_000
      ~name:"t" ctx
  in
  let first = Supervisor.child node ~name:"first" in
  let middle = Supervisor.child ~policy:(Supervisor.policy ~max_restarts:3 ()) node ~name:"middle" in
  let last = Supervisor.child node ~name:"last" in
  ignore (Supervisor.run_child_fn first (fun () -> 0));
  ignore (Supervisor.run_child_fn last (fun () -> 0));
  ignore (Supervisor.run_child_fn middle failing_fn);
  check Alcotest.bool "middle quarantined" true
    (Supervisor.child_health middle = Supervisor.Quarantined);
  (* Registration order is dependency order: only the later sibling is
     swept into Restarting. *)
  check Alcotest.bool "later sibling restarting" true
    (Supervisor.child_health last = Supervisor.Restarting);
  check Alcotest.bool "earlier sibling untouched" true
    (Supervisor.child_health first <> Supervisor.Restarting);
  check Alcotest.int "rest_for_one counted" 1
    (Stats.get k.Kernel.stats "supervisor.rest_for_one");
  check Alcotest.bool "tree renders" true
    (contains (Supervisor.tree_to_string node) "rest-for-one")

(* ---------- satellite 2: healthy period clears fault history ---------- *)

let test_healthy_reset_clears_history () =
  let k, ctx = mk_ctx () in
  let node =
    Supervisor.node ~intensity:2 ~window_ns:1_000_000 ~healthy_after_ns:5_000
      ~name:"t" ctx
  in
  let c = Supervisor.child ~policy:(Supervisor.policy ~max_restarts:1 ()) node ~name:"w" in
  (* One faulted run puts a fault in the (huge) window. *)
  ignore (Supervisor.run_child_fn c failing_fn);
  check Alcotest.bool "degraded after fault" true
    (Supervisor.child_health c = Supervisor.Degraded);
  (* A long clean stretch forgets the early crash: the worker is Healthy
     again and the old fault cannot contribute to a later escalation. *)
  Clock.charge k.Kernel.clock 10_000;
  (match Supervisor.run_child_fn c (fun () -> 1) with
  | Supervisor.Done _ -> ()
  | Supervisor.Gave_up _ -> Alcotest.fail "clean run");
  check Alcotest.bool "healthy after quiet period" true
    (Supervisor.child_health c = Supervisor.Healthy);
  check Alcotest.bool "reset counted" true
    (Stats.get k.Kernel.stats "supervisor.healthy_reset" >= 1);
  (* The forgotten fault must not count toward the budget: one fresh
     fault is within intensity 2 again (no escalation). *)
  (match Supervisor.run_child_fn c failing_fn with
  | Supervisor.Gave_up { last_fault; _ } ->
      check Alcotest.bool "plain gave-up, not escalation" false
        (contains last_fault "escalated")
  | Supervisor.Done _ -> Alcotest.fail "expected Gave_up");
  check Alcotest.int "no escalation" 0 (Stats.get k.Kernel.stats "supervisor.escalated")

(* ---------- fiber cancellation ---------- *)

let test_fiber_cancel_delivered_once () =
  let cancelled = ref 0 and resumed = ref 0 and id = ref (-1) in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          id := Fiber.fiber_id ();
          (try
             while true do
               Fiber.yield ()
             done
           with Fiber.Cancelled _ -> incr cancelled);
          (* The mark is consumed: later yields in the same fiber run. *)
          Fiber.yield ();
          incr resumed);
      Fiber.yield ();
      Fiber.cancel ~reason:"test" !id);
  check Alcotest.int "cancelled once" 1 !cancelled;
  check Alcotest.int "fiber continued after handling" 1 !resumed

(* ---------- watchdog ---------- *)

let test_watchdog_cuts_hung_heart () =
  let clock = Clock.create () in
  let w = Watchdog.create ~deadline_ns:1_000 clock in
  let cancelled = ref false in
  Fiber.run ~clock (fun () ->
      Fiber.spawn (fun () ->
          let h = Watchdog.arm ~name:"victim" w in
          try
            Watchdog.beat h;
            Clock.charge clock 5_000;
            (* hung: no beat while the clock runs past the deadline *)
            while true do
              Fiber.yield ()
            done
          with Fiber.Cancelled _ -> cancelled := true);
      Fiber.yield ();
      Watchdog.sweep w;
      Fiber.yield ());
  check Alcotest.bool "fiber cancelled" true !cancelled;
  check Alcotest.int "one cut" 1 (Watchdog.cuts w);
  check Alcotest.bool "sweep satisfied the invariant" true
    (Watchdog.self_check w = None)

let test_watchdog_beat_after_cut_raises_hang () =
  let clock = Clock.create () in
  let w = Watchdog.create ~deadline_ns:1_000 clock in
  let raised = ref false in
  Fiber.run ~clock (fun () ->
      let h = Watchdog.arm ~name:"zombie" w in
      Clock.charge clock 2_000;
      Watchdog.sweep w;
      check Alcotest.bool "hung" true (Watchdog.hung h);
      (try Watchdog.beat h with Watchdog.Hang _ -> raised := true));
  check Alcotest.bool "beat after cut raises Hang" true !raised;
  check Alcotest.bool "Hang is a contained engine fault" true
    (Wedge_core.Engine.fault_reason (Watchdog.Hang "x") <> None)

(* ---------- reactor / watchdog interplay ---------- *)

module Reactor = Wedge_sim.Reactor
module Fd_table = Wedge_kernel.Fd_table

let mk_readv_vm () =
  let pm = Wedge_kernel.Physmem.create () in
  let vm = Wedge_kernel.Vm.create ~pid:1 pm (Clock.create ()) Cost_model.free in
  Wedge_kernel.Vm.map_fresh vm ~addr:0x1000 ~pages:1
    ~prot:Wedge_kernel.Prot.page_rw ~tag:None;
  vm

(* A worker draining its connection through batched vectored reads keeps
   its heart beaten: the watchdog — pumped from the reactor's timer
   sweeps, no polling fiber anywhere — must never cut it, even though
   the session spans several deadlines end to end. *)
let test_reactor_readv_beats_heart () =
  let clock = Clock.create () in
  let r = Reactor.create ~clock () in
  let w = Watchdog.create ~deadline_ns:1_000 clock in
  let g = Guard.create ~clock ~watchdog:w ~reactor:r ~max_conns:2 () in
  let got = Buffer.create 64 in
  Fiber.run ~clock ~on_switch:(Reactor.hook r) (fun () ->
      let a, b = Chan.pair () in
      let c =
        match Guard.admit g b with
        | Guard.Admitted c -> c
        | _ -> Alcotest.fail "expected admission"
      in
      let e = Guard.endpoint c in
      let readv = Option.get e.Fd_table.ep_readv in
      let vm = mk_readv_vm () in
      Fiber.spawn (fun () ->
          (* Arm the heart from inside the serve fiber, as accept_loop
             does — a cut cancels precisely this fiber. *)
          Guard.rearm_heart c;
          let rec go () =
            let n = readv vm [| (0x1000, 4); (0x1004, 4) |] in
            if n > 0 then begin
              Buffer.add_bytes got (Wedge_kernel.Vm.read_bytes vm 0x1000 n);
              go ()
            end
          in
          go ();
          Guard.release c);
      (* Five bursts, each 0.6 deadlines apart: the whole session lasts
         3x the heartbeat deadline, but every vectored delivery beats
         the heart in passing. *)
      for i = 1 to 5 do
        Clock.charge clock 600;
        Chan.write_string a (Printf.sprintf "burst%03d" i)
      done;
      Chan.close a);
  check Alcotest.int "heart stayed beaten: no cut" 0 (Watchdog.cuts w);
  check Alcotest.int "every burst landed through readv" 40 (Buffer.length got);
  check Alcotest.bool "no heart left overdue" true (Watchdog.self_check w = None)

(* A parked worker whose client goes silent: the heart runs overdue and
   the reactor-pumped watchdog must cut it promptly — parking must not
   delay the cut past the deadline plus one sweep step, and the cut must
   wake the parked fiber to a clean EOF. *)
let test_reactor_cuts_parked_worker_within_deadline () =
  let clock = Clock.create () in
  let r = Reactor.create ~clock () in
  let w = Watchdog.create ~deadline_ns:1_000 clock in
  let g = Guard.create ~clock ~watchdog:w ~reactor:r ~max_conns:2 () in
  let woke_at = ref (-1) in
  let eof = ref false in
  Fiber.run ~clock ~on_switch:(Reactor.hook r) (fun () ->
      let a, b = Chan.pair () in
      let c =
        match Guard.admit g b with
        | Guard.Admitted c -> c
        | _ -> Alcotest.fail "expected admission"
      in
      let e = Guard.endpoint c in
      let readv = Option.get e.Fd_table.ep_readv in
      let vm = mk_readv_vm () in
      Fiber.spawn (fun () ->
          Guard.rearm_heart c;
          (try eof := readv vm [| (0x1000, 8) |] = 0
           with Fiber.Cancelled _ -> eof := true);
          woke_at := Clock.now clock;
          Guard.release c);
      (* Let the worker arm its heart and park before the silence. *)
      Fiber.yield ();
      (* Silence: advance the clock in sweep-sized steps; every yield
         runs the reactor hook, which sweeps the watchdog. *)
      for _ = 1 to 10 do
        Clock.charge clock 300;
        Fiber.yield ()
      done;
      Chan.close a);
  check Alcotest.int "watchdog cut the parked worker" 1 (Watchdog.cuts w);
  check Alcotest.bool "cut surfaced as EOF in the parked read" true !eof;
  (* The sweep at t=1200 cuts the heart, but the cancelled worker lands
     behind the already-enqueued main fiber, so it resumes one scheduler
     rotation (one more 300 ns charge) later: deadline + sweep + rotation. *)
  check Alcotest.bool "cut landed within deadline + sweep + one rotation" true
    (!woke_at >= 0 && !woke_at <= 1_600)

(* ---------- circuit breaker ---------- *)

let breaker_guard clock =
  Guard.create ~clock
    ~breaker:
      (Guard.breaker_config ~consecutive:3 ~rate:0.9 ~min_samples:100
         ~window_ns:1_000_000 ~open_ns:5_000 ~probes:2 ~brownout:0.99 ())
    ~max_conns:8 ()

let test_breaker_opens_sheds_and_recovers () =
  let clock = Clock.create () in
  Fiber.run ~clock (fun () ->
      let g = breaker_guard clock in
      let admit () =
        let a, b = Chan.pair () in
        match Guard.admit g b with
        | Guard.Admitted c -> (a, c)
        | _ -> Alcotest.fail "expected admission"
      in
      check Alcotest.bool "starts closed" true
        (Guard.breaker_state g = Some Guard.Closed);
      (* Three consecutive failures trip it. *)
      for i = 1 to 3 do
        let a, c = admit () in
        Clock.charge clock 100;
        Guard.report c ~ok:false;
        Guard.release c;
        Chan.close a;
        if i < 3 then
          check Alcotest.bool "still closed before streak" true
            (Guard.breaker_state g = Some Guard.Closed)
      done;
      check Alcotest.bool "open after streak" true
        (Guard.breaker_state g = Some Guard.Open);
      check Alcotest.bool "reaction recorded" true
        (List.length (Guard.breaker_reactions g) = 1);
      (* Open sheds without burning capacity. *)
      let a, b = Chan.pair () in
      (match Guard.admit g b with
      | Guard.Shed -> ()
      | _ -> Alcotest.fail "open breaker must shed");
      Chan.close a;
      check Alcotest.int "no slot burned" 0 (Guard.active g);
      (* After the cooling period: half-open probes; two successes close. *)
      Clock.charge clock 6_000;
      let a1, c1 = admit () in
      check Alcotest.bool "half-open on first probe" true
        (Guard.breaker_state g = Some Guard.Half_open);
      Guard.report c1 ~ok:true;
      Guard.release c1;
      Chan.close a1;
      let a2, c2 = admit () in
      Guard.report c2 ~ok:true;
      Guard.release c2;
      Chan.close a2;
      check Alcotest.bool "closed after probes" true
        (Guard.breaker_state g = Some Guard.Closed);
      check Alcotest.bool "summary mentions closed" true
        (contains (Guard.breaker_summary g) "closed"))

let test_breaker_failed_probe_reopens () =
  let clock = Clock.create () in
  Fiber.run ~clock (fun () ->
      let g = breaker_guard clock in
      let admit () =
        let a, b = Chan.pair () in
        match Guard.admit g b with
        | Guard.Admitted c -> (a, c)
        | _ -> Alcotest.fail "expected admission"
      in
      for _ = 1 to 3 do
        let a, c = admit () in
        Clock.charge clock 100;
        Guard.report c ~ok:false;
        Guard.release c;
        Chan.close a
      done;
      Clock.charge clock 6_000;
      let a, c = admit () in
      Guard.report c ~ok:false;
      Guard.release c;
      Chan.close a;
      check Alcotest.bool "failed probe reopens" true
        (Guard.breaker_state g = Some Guard.Open);
      check Alcotest.int "two trips recorded" 2
        (Guard.stats g).Guard.s_breaker_opened)

(* ---------- satellite 3: mid-header staller vs all three servers ------- *)

(* One hanging client against a watchdog-armed server: the hung worker is
   cut at the heartbeat deadline, the listener survives ([clean] — a
   terminating well-formed exchange — succeeds afterwards), and the
   tally accounts for the staller. *)
let staller_then_clean ~serve_loop ~prefix ~clean k l guard w =
  let clock = k.Kernel.clock in
  let t = Byzantine.tally () in
  let served_after = ref false in
  Fiber.run ~clock ~on_switch:(Watchdog.hook w) (fun () ->
      Fiber.spawn serve_loop;
      Fiber.spawn (fun () ->
          Byzantine.mid_header_stall t l ~clock ~step_ns:1_000 ~prefix
            ~is_rejection:(fun _ -> false) ());
      Fiber.wait_until ~what:"staller resolved" (fun () -> Byzantine.total t = 1);
      (* The staller is gone; the listener must still serve. *)
      served_after := clean ();
      Guard.drain guard l);
  check Alcotest.int "staller cut" 1 t.Byzantine.cut;
  check Alcotest.bool "watchdog cut the hung worker" true (Watchdog.cuts w >= 1);
  check Alcotest.bool "listener survived and served" true !served_after;
  check Alcotest.bool "no heart left overdue" true (Watchdog.self_check w = None)

(* A clean request/response exchange that is guaranteed to terminate:
   send [request], read to EOF (the request must drive the server to
   close), return whether [ok] accepts the response. *)
let clean_exchange l ~request ~ok () =
  match Chan.connect l with
  | exception _ -> false
  | ep ->
      Chan.write_string ep request;
      let buf = Buffer.create 64 in
      (try
         let rec go () =
           let b = Chan.read ep 4096 in
           if Bytes.length b > 0 then begin
             Buffer.add_bytes buf b;
             go ()
           end
         in
         go ()
       with _ -> ());
      (try Chan.close ep with _ -> ());
      ok (Buffer.contents buf)

let test_staller_httpd () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed:11 k in
  let l = Chan.listener ~costs:Cost_model.free ~backlog:4 () in
  let w = Watchdog.create ~deadline_ns:4_000 k.Kernel.clock in
  let guard = Guard.create ~clock:k.Kernel.clock ~watchdog:w ~max_conns:2 () in
  staller_then_clean
    ~serve_loop:(fun () -> Wedge_httpd.Httpd_simple.serve_loop env guard l)
    ~prefix:"h\001\000partial-hello"
      (* plaintext at a TLS endpoint: the bad record type fails the
         handshake and closes the stream — a definite answer proves the
         listener is alive *)
    ~clean:(clean_exchange l ~request:"GET / HTTP/1.0\r\n\r\n" ~ok:(fun _ -> true))
    k l guard w

let test_staller_pop3 () =
  let k = Kernel.create ~costs:Cost_model.free () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let l = Chan.listener ~costs:Cost_model.free ~backlog:4 () in
  let w = Watchdog.create ~deadline_ns:4_000 k.Kernel.clock in
  let guard = Guard.create ~clock:k.Kernel.clock ~watchdog:w ~max_conns:2 () in
  staller_then_clean
    ~serve_loop:(fun () -> Wedge_pop3.Pop3_wedge.serve_loop main_ctx guard l)
    ~prefix:"USER ali"
    ~clean:
      (clean_exchange l ~request:"USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n"
         ~ok:(fun resp -> contains resp "+OK"))
    k l guard w

let test_staller_sshd () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed:12 k in
  let l = Chan.listener ~costs:Cost_model.free ~backlog:4 () in
  let w = Watchdog.create ~deadline_ns:4_000 k.Kernel.clock in
  let guard = Guard.create ~clock:k.Kernel.clock ~watchdog:w ~max_conns:2 () in
  (* The clean probe is a real SSH login: a garbage follow-up would hang
     the slave mid-packet (another watchdog cut, not a health proof). *)
  let clean () =
    match Chan.connect l with
    | exception _ -> false
    | ep -> (
        let rng = Wedge_crypto.Drbg.create ~seed:0x5AFE in
        match
          Wedge_sshd.Ssh_client.login ~rng
            ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Wedge_crypto.Rsa.pub
            ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Wedge_crypto.Dsa.pub
            ~user:"alice"
            (Wedge_sshd.Ssh_client.Password "wonderland")
            ep
        with
        | Ok conn ->
            Wedge_sshd.Ssh_client.close conn;
            true
        | Error _ ->
            (try Chan.close ep with _ -> ());
            false
        | exception _ ->
            (try Chan.close ep with _ -> ());
            false)
  in
  staller_then_clean
    ~serve_loop:(fun () -> Wedge_sshd.Sshd_privsep.serve_loop env guard l)
      (* truncated wire frame: claims 256 payload bytes, delivers 11 *)
    ~prefix:"D\001\000SSH-2.0-cha" ~clean k l guard w

(* ---------- new engine fault sites ---------- *)

let test_fiber_stall_site_charges_clock () =
  let plan = Fault_plan.create ~seed:3 () in
  Fault_plan.rule plan ~site:"fiber.stall" ~prob:1.0 [ Fault_plan.Delay 8_000 ];
  let clock = Clock.create () in
  Fiber.run ~faults:plan ~clock (fun () -> Fiber.yield ());
  check Alcotest.bool "stall charged the clock" true (Clock.now clock >= 8_000)

let test_cgate_call_site_faults_contained () =
  let plan = Fault_plan.create ~seed:4 () in
  Fault_plan.rule plan ~site:"cgate.call" ~prob:1.0 [ Fault_plan.Crash ];
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let degraded = ref false in
  Fiber.run (fun () ->
      let a, b = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          (* No retries: a fresh attempt would re-greet and serve the
             remaining (innocent) QUIT, masking the crash. *)
          let r =
            Wedge_pop3.Pop3_wedge.serve_connection
              ~restart_policy:Supervisor.default_policy main_ctx b
          in
          degraded := r.Wedge_pop3.Pop3_wedge.degraded);
      (* Let the handler start, then make every callgate call crash. *)
      Chan.write_string a "USER alice\r\n";
      Fault_plan.arm plan;
      Chan.write_string a "PASS wonderland\r\nQUIT\r\n";
      let rec drain_eof () =
        if Bytes.length (Chan.read a 4096) > 0 then drain_eof ()
      in
      (try drain_eof () with _ -> ());
      try Chan.close a with _ -> ());
  check Alcotest.bool "cgate crash contained into degraded conn" true !degraded;
  check Alcotest.bool "fault site charged" true
    (Stats.get k.Kernel.stats "fault.cgate" >= 1)

(* ---------- satellite: re-armed hearts on pooled restart ---------- *)

let test_rearm_heart_clears_stale_beat () =
  (* A supervised retry resumes in the same serve fiber after a backoff
     charge.  The heart armed at admission is then already past its
     deadline through no fault of the fresh attempt — without a rearm the
     next sweep cuts the retry for its predecessor's silence. *)
  let clock = Clock.create () in
  let w = Watchdog.create ~deadline_ns:1_000 clock in
  Fiber.run ~clock (fun () ->
      let g = Guard.create ~clock ~watchdog:w ~max_conns:2 () in
      let a, b = Chan.pair () in
      let c =
        match Guard.admit g b with
        | Guard.Admitted c -> c
        | _ -> Alcotest.fail "expected admission"
      in
      Clock.charge clock 2_000;
      Guard.rearm_heart c;
      Watchdog.sweep w;
      check Alcotest.int "no spurious cut after rearm" 0 (Watchdog.cuts w);
      Guard.release c;
      Chan.close a);
  check Alcotest.bool "no heart left overdue" true (Watchdog.self_check w = None)

let test_staller_pop3_pooled_restamp () =
  (* The integration shape: a pooled supervised worker is cut by the
     watchdog mid-header; the supervisor restamps from the frozen image
     (re-arming the heart on the way) and the listener keeps serving. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let l = Chan.listener ~costs:Cost_model.free ~backlog:4 () in
  let w = Watchdog.create ~deadline_ns:4_000 k.Kernel.clock in
  let guard = Guard.create ~clock:k.Kernel.clock ~watchdog:w ~max_conns:2 () in
  staller_then_clean
    ~serve_loop:(fun () ->
      (* freeze needs a running fiber, so the pool is built here *)
      let pool = Wedge_pop3.Pop3_wedge.worker_pool main_ctx in
      let tree = Wedge_pop3.Pop3_wedge.supervision_tree ~pool main_ctx in
      Wedge_pop3.Pop3_wedge.serve_loop ~supervision:tree main_ctx guard l)
    ~prefix:"USER ali"
    ~clean:
      (clean_exchange l ~request:"USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n"
         ~ok:(fun resp -> contains resp "+OK"))
    k l guard w;
  check Alcotest.bool "workers stamped from the pool" true
    (app.Wedge_core.Engine.pool_hits > 0)

(* ---------- storm determinism ---------- *)

let test_storm_replays_identically () =
  let s =
    match Scenarios.find "httpd_storm" with
    | Some s -> s
    | None -> Alcotest.fail "httpd_storm scenario missing"
  in
  let run () =
    s.Scenarios.s_run ~policy:(Fiber.Random 9) ~diff:false ~faults:true ~seed:5
  in
  let a = run () and b = run () in
  check Alcotest.string "same seed, same storm, byte-identical summary" a b

let () =
  Alcotest.run "recovery"
    [
      ( "backoff",
        [
          Alcotest.test_case "no overflow" `Quick test_backoff_no_overflow;
          Alcotest.test_case "cap pins schedule" `Quick test_backoff_cap_pins_schedule;
        ] );
      ( "tree",
        [
          Alcotest.test_case "escalate + quarantine" `Quick
            test_tree_escalates_and_quarantines;
          Alcotest.test_case "rest-for-one" `Quick test_rest_for_one_restarts_later_siblings;
          Alcotest.test_case "healthy reset" `Quick test_healthy_reset_clears_history;
        ] );
      ( "cancel",
        [ Alcotest.test_case "delivered once" `Quick test_fiber_cancel_delivered_once ] );
      ( "watchdog",
        [
          Alcotest.test_case "cuts hung heart" `Quick test_watchdog_cuts_hung_heart;
          Alcotest.test_case "beat after cut" `Quick test_watchdog_beat_after_cut_raises_hang;
        ] );
      ( "reactor",
        [
          Alcotest.test_case "batched readv beats heart" `Quick
            test_reactor_readv_beats_heart;
          Alcotest.test_case "parked worker cut within deadline" `Quick
            test_reactor_cuts_parked_worker_within_deadline;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "open/shed/recover" `Quick test_breaker_opens_sheds_and_recovers;
          Alcotest.test_case "failed probe reopens" `Quick test_breaker_failed_probe_reopens;
        ] );
      ( "staller",
        [
          Alcotest.test_case "httpd" `Quick test_staller_httpd;
          Alcotest.test_case "pop3" `Quick test_staller_pop3;
          Alcotest.test_case "sshd" `Quick test_staller_sshd;
        ] );
      ( "rearm",
        [
          Alcotest.test_case "stale heart survives rearm" `Quick
            test_rearm_heart_clears_stale_beat;
          Alcotest.test_case "pooled staller restamp" `Quick
            test_staller_pop3_pooled_restamp;
        ] );
      ( "fault-sites",
        [
          Alcotest.test_case "fiber.stall" `Quick test_fiber_stall_site_charges_clock;
          Alcotest.test_case "cgate.call" `Quick test_cgate_call_site_faults_contained;
        ] );
      ( "determinism",
        [ Alcotest.test_case "storm replay" `Quick test_storm_replays_identically ] );
    ]
