(* Tests for the simulated machine and OS: physical memory, page tables,
   the VM layer (protection, COW), VFS permissions, fd tables, SELinux. *)

module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot
module Vfs = Wedge_kernel.Vfs
module Fd_table = Wedge_kernel.Fd_table
module Selinux = Wedge_kernel.Selinux
module Kernel = Wedge_kernel.Kernel
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model

let check = Alcotest.check
let ps = Physmem.page_size

let mk_vm ?(pid = 1) () =
  let pm = Physmem.create () in
  (pm, Vm.create ~pid pm (Clock.create ()) Cost_model.free)

let expect_fault f =
  match f () with
  | _ -> Alcotest.fail "expected Vm.Fault"
  | exception Vm.Fault _ -> ()

(* ---------- Physmem ---------- *)

let test_physmem_alloc_zeroed () =
  let pm = Physmem.create () in
  let f = Physmem.alloc pm in
  let b = Physmem.get pm f in
  check Alcotest.int "page size" ps (Bytes.length b);
  check Alcotest.bool "zeroed" true (Bytes.for_all (fun c -> c = '\000') b)

let test_physmem_refcount () =
  let pm = Physmem.create () in
  let f = Physmem.alloc pm in
  Physmem.incref pm f;
  check Alcotest.int "refcount 2" 2 (Physmem.refcount pm f);
  Physmem.decref pm f;
  check Alcotest.int "still live" 1 (Physmem.refcount pm f);
  Physmem.decref pm f;
  check Alcotest.int "freed" 0 (Physmem.frames_in_use pm)

let test_physmem_reuse () =
  let pm = Physmem.create () in
  let f = Physmem.alloc pm in
  Bytes.set (Physmem.get pm f) 0 'x';
  Physmem.decref pm f;
  let g = Physmem.alloc pm in
  check Alcotest.int "frame number reused" f g;
  check Alcotest.char "scrubbed on alloc" '\000' (Bytes.get (Physmem.get pm g) 0)

let test_physmem_dead_access () =
  let pm = Physmem.create () in
  let f = Physmem.alloc pm in
  Physmem.decref pm f;
  (match Physmem.get pm f with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  check Alcotest.bool "ok" true true

let test_physmem_growth () =
  let pm = Physmem.create () in
  let frames = List.init 300 (fun _ -> Physmem.alloc pm) in
  check Alcotest.int "300 in use" 300 (Physmem.frames_in_use pm);
  List.iter (fun f -> Physmem.decref pm f) frames;
  check Alcotest.int "all freed" 0 (Physmem.frames_in_use pm)

(* ---------- Vm: mapping, protection, COW ---------- *)

let test_vm_rw_roundtrip () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u64 vm 0x1ffc 0x1122334455667788;
  (* crosses a page boundary *)
  check Alcotest.int "u64 across pages" 0x1122334455667788 (Vm.read_u64 vm 0x1ffc);
  Vm.write_bytes vm 0x1800 (Bytes.of_string "hello world");
  check Alcotest.string "bytes" "hello world" (Bytes.to_string (Vm.read_bytes vm 0x1800 11))

let test_vm_unmapped_faults () =
  let _, vm = mk_vm () in
  expect_fault (fun () -> Vm.read_u8 vm 0x5000);
  expect_fault (fun () -> Vm.write_u8 vm 0x5000 1)

let test_vm_readonly_faults_on_write () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_r ~tag:None;
  check Alcotest.int "read ok" 0 (Vm.read_u8 vm 0x1000);
  expect_fault (fun () -> Vm.write_u8 vm 0x1000 7)

let test_vm_noread_faults () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_none ~tag:None;
  expect_fault (fun () -> Vm.read_u8 vm 0x1000)

let test_vm_fault_is_partial_read_safe () =
  (* A bulk read that crosses into a forbidden page must fault, not return
     partial data. *)
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.map_fresh vm ~addr:0x2000 ~pages:1 ~prot:Prot.page_none ~tag:None;
  expect_fault (fun () -> Vm.read_bytes vm 0x1ff0 32)

let test_vm_cow_break_isolates () =
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm1 = Vm.create ~pid:1 pm clock Cost_model.free in
  let vm2 = Vm.create ~pid:2 pm clock Cost_model.free in
  Vm.map_fresh vm1 ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_bytes vm1 0x1000 (Bytes.of_string "shared");
  (* Share the page COW into vm2. *)
  Vm.share_range ~src:vm1 ~dst:vm2 ~addr:0x1000 ~pages:1 ~prot:Prot.page_cow;
  check Alcotest.string "vm2 sees data" "shared"
    (Bytes.to_string (Vm.read_bytes vm2 0x1000 6));
  Vm.write_bytes vm2 0x1000 (Bytes.of_string "child!");
  check Alcotest.string "vm2 sees its write" "child!"
    (Bytes.to_string (Vm.read_bytes vm2 0x1000 6));
  check Alcotest.string "vm1 unaffected" "shared"
    (Bytes.to_string (Vm.read_bytes vm1 0x1000 6))

let test_vm_cow_sole_owner_claims_in_place () =
  let pm, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_cow ~tag:None;
  let before = Physmem.frames_in_use pm in
  Vm.write_u8 vm 0x1000 42;
  check Alcotest.int "no copy when refcount = 1" before (Physmem.frames_in_use pm);
  check Alcotest.int "write visible" 42 (Vm.read_u8 vm 0x1000)

let test_vm_cow_charges_cost () =
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm1 = Vm.create ~pid:1 pm clock Cost_model.default in
  let vm2 = Vm.create ~pid:2 pm clock Cost_model.default in
  Vm.map_fresh vm1 ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.share_range ~src:vm1 ~dst:vm2 ~addr:0x1000 ~pages:1 ~prot:Prot.page_cow;
  let t0 = Clock.now clock in
  Vm.write_u8 vm2 0x1000 1;
  check Alcotest.bool "COW break charged" true
    (Clock.now clock - t0 >= Cost_model.default.Cost_model.page_copy)

let test_vm_share_readonly_then_write_faults () =
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm1 = Vm.create ~pid:1 pm clock Cost_model.free in
  let vm2 = Vm.create ~pid:2 pm clock Cost_model.free in
  Vm.map_fresh vm1 ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.share_range ~src:vm1 ~dst:vm2 ~addr:0x1000 ~pages:1 ~prot:Prot.page_r;
  expect_fault (fun () -> Vm.write_u8 vm2 0x1000 1)

let test_vm_unmap_releases_frames () =
  let pm, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:4 ~prot:Prot.page_rw ~tag:None;
  check Alcotest.int "4 frames" 4 (Physmem.frames_in_use pm);
  Vm.unmap_range vm ~addr:0x1000 ~pages:4;
  check Alcotest.int "freed" 0 (Physmem.frames_in_use pm);
  expect_fault (fun () -> Vm.read_u8 vm 0x1000)

let test_vm_destroy () =
  let pm, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:3 ~prot:Prot.page_rw ~tag:None;
  Vm.map_fresh vm ~addr:0x9000 ~pages:2 ~prot:Prot.page_r ~tag:None;
  Vm.destroy vm;
  check Alcotest.int "all frames released" 0 (Physmem.frames_in_use pm);
  check Alcotest.int "no mappings" 0 (Vm.mapped_pages vm)

let test_vm_kernel_write_preserves_shared_frame () =
  (* A kernel write into a COW page must not alter the shared frame. *)
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm1 = Vm.create ~pid:1 pm clock Cost_model.free in
  let vm2 = Vm.create ~pid:2 pm clock Cost_model.free in
  Vm.map_fresh vm1 ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_bytes vm1 0x1000 (Bytes.of_string "orig");
  Vm.share_range ~src:vm1 ~dst:vm2 ~addr:0x1000 ~pages:1 ~prot:Prot.page_cow;
  Vm.write_bytes_kernel vm2 0x1000 (Bytes.of_string "kern");
  check Alcotest.string "vm1 keeps original" "orig"
    (Bytes.to_string (Vm.read_bytes vm1 0x1000 4));
  check Alcotest.string "vm2 got kernel data" "kern"
    (Bytes.to_string (Vm.read_bytes vm2 0x1000 4))

let test_vm_can_read_write_probes () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_r ~tag:None;
  check Alcotest.bool "can_read" true (Vm.can_read vm ~addr:0x1000 ~len:16);
  check Alcotest.bool "cannot write" false (Vm.can_write vm ~addr:0x1000 ~len:16);
  check Alcotest.bool "unmapped" false (Vm.can_read vm ~addr:0x8000 ~len:1);
  check Alcotest.bool "crossing into unmapped" false (Vm.can_read vm ~addr:0x1ff0 ~len:32)

(* Random map/share/unmap/write sequences across three address spaces must
   never corrupt reference counts: destroying everything frees every
   frame. *)
let prop_refcount_invariant =
  QCheck.Test.make ~name:"frame refcounts survive random mapping traffic" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 0 5) (int_range 0 15)))
    (fun ops ->
      let pm = Physmem.create () in
      let clock = Clock.create () in
      let vms = Array.init 3 (fun pid -> Vm.create ~pid pm clock Cost_model.free) in
      let mapped = Array.make 3 [] in
      List.iter
        (fun (op, page) ->
          let vm_i = page mod 3 in
          let vm = vms.(vm_i) in
          let addr = 0x10000 + (page * 4096) in
          match op with
          | 0 | 1 ->
              if not (List.mem addr mapped.(vm_i)) then begin
                Vm.map_fresh vm ~addr ~pages:1 ~prot:Prot.page_rw ~tag:None;
                mapped.(vm_i) <- addr :: mapped.(vm_i)
              end
          | 2 ->
              (* share from another vm if it has this page *)
              let src_i = (vm_i + 1) mod 3 in
              if List.mem addr mapped.(src_i) && not (List.mem addr mapped.(vm_i)) then begin
                Vm.share_range ~src:vms.(src_i) ~dst:vm ~addr ~pages:1 ~prot:Prot.page_cow;
                mapped.(vm_i) <- addr :: mapped.(vm_i)
              end
          | 3 ->
              if List.mem addr mapped.(vm_i) then begin
                Vm.unmap_range vm ~addr ~pages:1;
                mapped.(vm_i) <- List.filter (fun a -> a <> addr) mapped.(vm_i)
              end
          | _ ->
              if List.mem addr mapped.(vm_i) then
                (* a write may trigger a COW break *)
                (try Vm.write_u8 vm addr 1 with Vm.Fault _ -> ()))
        ops;
      Array.iter Vm.destroy vms;
      Physmem.frames_in_use pm = 0)

(* ---------- Pagetable ---------- *)

let test_pagetable_double_map_rejected () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:5 ~frame:1 ~prot:Prot.page_rw ~tag:None;
  (match Pagetable.map pt ~vpn:5 ~frame:2 ~prot:Prot.page_rw ~tag:None with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  check Alcotest.int "count" 1 (Pagetable.count pt)

let test_pagetable_unmap () =
  let pt = Pagetable.create () in
  Pagetable.map pt ~vpn:5 ~frame:1 ~prot:Prot.page_rw ~tag:(Some 3);
  (match Pagetable.unmap pt ~vpn:5 with
  | Some pte -> check Alcotest.int "frame" 1 pte.Pagetable.frame
  | None -> Alcotest.fail "expected pte");
  check Alcotest.bool "gone" false (Pagetable.mem pt ~vpn:5);
  check Alcotest.bool "unmap missing is None" true (Pagetable.unmap pt ~vpn:5 = None)

(* ---------- Prot ---------- *)

let test_prot_subsumption () =
  let open Prot in
  check Alcotest.bool "rw > r" true (grant_subsumes ~parent:RW ~child:R);
  check Alcotest.bool "rw > cow" true (grant_subsumes ~parent:RW ~child:COW);
  check Alcotest.bool "r < rw" false (grant_subsumes ~parent:R ~child:RW);
  check Alcotest.bool "cow < rw" false (grant_subsumes ~parent:COW ~child:RW);
  check Alcotest.bool "r > cow" true (grant_subsumes ~parent:R ~child:COW);
  check Alcotest.bool "cow > r" true (grant_subsumes ~parent:COW ~child:R)

(* ---------- Vfs ---------- *)

let mk_vfs () =
  let v = Vfs.create () in
  Vfs.mkdir_p v "/etc";
  Vfs.install v ~uid:0 ~mode:0o600 "/etc/shadow" "root:hash";
  Vfs.install v ~uid:0 ~mode:0o644 "/etc/motd" "welcome";
  Vfs.mkdir_p v ~uid:1000 ~mode:0o755 "/home/alice";
  Vfs.install v ~uid:1000 ~mode:0o600 "/home/alice/secret" "alice-data";
  v

let test_vfs_read_modes () =
  let v = mk_vfs () in
  check Alcotest.bool "root reads shadow" true
    (Vfs.read_file v ~root:"/" ~uid:0 "/etc/shadow" = Ok "root:hash");
  check Alcotest.bool "user denied shadow" true
    (Vfs.read_file v ~root:"/" ~uid:1000 "/etc/shadow" = Error Vfs.Eacces);
  check Alcotest.bool "user reads motd" true
    (Vfs.read_file v ~root:"/" ~uid:1000 "/etc/motd" = Ok "welcome");
  check Alcotest.bool "owner reads own" true
    (Vfs.read_file v ~root:"/" ~uid:1000 "/home/alice/secret" = Ok "alice-data");
  check Alcotest.bool "other denied" true
    (Vfs.read_file v ~root:"/" ~uid:1001 "/home/alice/secret" = Error Vfs.Eacces)

let test_vfs_chroot_confines () =
  let v = mk_vfs () in
  Vfs.mkdir_p v "/jail";
  Vfs.install v "/jail/etc/motd" "jailed";
  check Alcotest.bool "resolves inside jail" true
    (Vfs.read_file v ~root:"/jail" ~uid:1000 "/etc/motd" = Ok "jailed");
  check Alcotest.bool "host shadow invisible" true
    (Vfs.read_file v ~root:"/jail" ~uid:0 "/etc/shadow" = Error Vfs.Enoent)

let test_vfs_empty_chroot () =
  let v = mk_vfs () in
  Vfs.mkdir_p v "/var/empty";
  check Alcotest.bool "nothing there" true
    (Vfs.read_file v ~root:"/var/empty" ~uid:99 "/etc/motd" = Error Vfs.Enoent)

let test_vfs_write_and_append () =
  let v = mk_vfs () in
  check Alcotest.bool "create" true (Vfs.write_file v ~root:"/" ~uid:0 "/etc/new" "a" = Ok ());
  check Alcotest.bool "append" true (Vfs.append_file v ~root:"/" ~uid:0 "/etc/new" "b" = Ok ());
  check Alcotest.bool "contents" true (Vfs.read_file v ~root:"/" ~uid:0 "/etc/new" = Ok "ab");
  check Alcotest.bool "non-owner write denied" true
    (Vfs.write_file v ~root:"/" ~uid:1000 "/etc/motd" "x" = Error Vfs.Eacces)

let test_vfs_readdir_and_unlink () =
  let v = mk_vfs () in
  (match Vfs.readdir v ~root:"/" ~uid:0 "/etc" with
  | Ok l -> check (Alcotest.list Alcotest.string) "listing" [ "motd"; "shadow" ] l
  | Error _ -> Alcotest.fail "readdir failed");
  check Alcotest.bool "unlink" true (Vfs.unlink v ~root:"/" ~uid:0 "/etc/motd" = Ok ());
  check Alcotest.bool "gone" false (Vfs.exists v ~root:"/" "/etc/motd")

let test_vfs_chmod_chown () =
  let v = mk_vfs () in
  Vfs.chmod v "/etc/shadow" ~mode:0o644;
  check Alcotest.bool "now readable" true
    (Vfs.read_file v ~root:"/" ~uid:1000 "/etc/shadow" = Ok "root:hash");
  Vfs.chown v "/etc/shadow" ~uid:1000;
  check Alcotest.bool "stat uid" true (Vfs.stat_uid v "/etc/shadow" = Ok 1000)

(* ---------- Fd_table ---------- *)

let test_fd_perm_subsumption () =
  let open Fd_table in
  check Alcotest.bool "rw > r" true (perm_subsumes ~parent:perm_rw ~child:perm_r);
  check Alcotest.bool "r < w" false (perm_subsumes ~parent:perm_r ~child:perm_w);
  check Alcotest.bool "r = r" true (perm_subsumes ~parent:perm_r ~child:perm_r)

let test_fd_dup_reduces_only () =
  let src = Fd_table.create () in
  let dst = Fd_table.create () in
  let fd = Fd_table.add src Fd_table.Null Fd_table.perm_r in
  (match Fd_table.dup_into ~src ~dst ~fd ~perm:Fd_table.perm_rw with
  | _ -> Alcotest.fail "expected escalation rejection"
  | exception Invalid_argument _ -> ());
  Fd_table.dup_into ~src ~dst ~fd ~perm:Fd_table.perm_r;
  check Alcotest.int "dst has one fd" 1 (Fd_table.count dst)

let test_fd_close_independent () =
  let src = Fd_table.create () in
  let dst = Fd_table.create () in
  let fd = Fd_table.add src Fd_table.Null Fd_table.perm_rw in
  Fd_table.dup_into ~src ~dst ~fd ~perm:Fd_table.perm_rw;
  Fd_table.close dst fd;
  check Alcotest.bool "src still open" true (Fd_table.find src fd <> None);
  check Alcotest.bool "dst closed" true (Fd_table.find dst fd = None)

(* ---------- Selinux ---------- *)

let test_selinux_domain_policy () =
  let se = Selinux.create ~default_allow:false () in
  Selinux.allow se ~domain:"worker_t" ~syscall:"read";
  check Alcotest.bool "allowed" true (Selinux.check se ~sid:"u:r:worker_t" ~syscall:"read");
  check Alcotest.bool "denied other call" false
    (Selinux.check se ~sid:"u:r:worker_t" ~syscall:"open");
  check Alcotest.bool "unknown domain denied" false
    (Selinux.check se ~sid:"u:r:other_t" ~syscall:"read");
  Selinux.allow_all_syscalls se ~domain:"init_t";
  check Alcotest.bool "all granted" true (Selinux.check se ~sid:"u:r:init_t" ~syscall:"anything")

let test_selinux_transitions () =
  let se = Selinux.create () in
  check Alcotest.bool "identity ok" true
    (Selinux.may_transition se ~from_:"u:r:a_t" ~to_:"u:r:a_t");
  check Alcotest.bool "unknown denied" false
    (Selinux.may_transition se ~from_:"u:r:a_t" ~to_:"u:r:b_t");
  Selinux.allow_transition se ~from_:"a_t" ~to_:"b_t";
  check Alcotest.bool "explicit allowed" true
    (Selinux.may_transition se ~from_:"u:r:a_t" ~to_:"u:r:b_t")

(* ---------- Kernel ---------- *)

let test_kernel_process_lifecycle () =
  let k = Kernel.create () in
  let p = Kernel.new_process k ~kind:Wedge_kernel.Process.Sthread ~uid:33 ~root:"/" ~sid:"u:r:t" () in
  check Alcotest.bool "found" true (Kernel.find_process k p.Wedge_kernel.Process.pid <> None);
  check Alcotest.int "live" 1 (Kernel.live_processes k);
  p.Wedge_kernel.Process.status <- Wedge_kernel.Process.Exited 0;
  Kernel.reap k p;
  check Alcotest.bool "reaped" true (Kernel.find_process k p.Wedge_kernel.Process.pid = None)

let test_kernel_syscall_denial () =
  let k = Kernel.create () in
  let se = k.Kernel.selinux in
  Selinux.allow se ~domain:"locked_t" ~syscall:"read";
  let p = Kernel.new_process k ~kind:Wedge_kernel.Process.Sthread ~uid:33 ~root:"/" ~sid:"u:r:locked_t" () in
  Kernel.syscall_check k p "read";
  (match Kernel.syscall_check k p "open" with
  | _ -> Alcotest.fail "expected Eperm"
  | exception Kernel.Eperm _ -> ());
  check Alcotest.bool "ok" true true

let test_kernel_trap_charges () =
  let k = Kernel.create () in
  let t0 = Clock.now k.Kernel.clock in
  Kernel.trap k "test";
  check Alcotest.bool "charged" true
    (Clock.now k.Kernel.clock - t0 = Cost_model.default.Cost_model.syscall_trap)

(* ---------- Software TLB: fast path correctness and shootdown ---------- *)

module Rlimit = Wedge_kernel.Rlimit

let mk_vm_costed ?limits () =
  let pm = Physmem.create () in
  let clock = Clock.create () in
  (pm, clock, Vm.create ?limits ~pid:1 pm clock Cost_model.default)

let test_tlb_counters () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  ignore (Vm.read_u8 vm 0x1000);
  check Alcotest.int "first access misses" 1 (Vm.tlb_misses vm);
  ignore (Vm.read_u8 vm 0x1004);
  ignore (Vm.read_u8 vm 0x1008);
  check Alcotest.int "subsequent accesses hit" 2 (Vm.tlb_hits vm);
  check Alcotest.int "no further misses" 1 (Vm.tlb_misses vm)

let test_tlb_protect_revokes_immediately () =
  (* The security invariant of the whole cache: a permissions downgrade
     must be visible to the very next access, warm entry or not. *)
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u8 vm 0x1000 42;
  Vm.write_u8 vm 0x1001 43;
  (* warm, write-capable *)
  Vm.protect_range vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_r;
  expect_fault (fun () -> Vm.write_u8 vm 0x1002 44);
  check Alcotest.int "reads still allowed" 42 (Vm.read_u8 vm 0x1000);
  check Alcotest.bool "shootdown counted" true (Vm.tlb_shootdowns vm >= 1)

let test_tlb_unmap_revokes_immediately () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  ignore (Vm.read_u8 vm 0x1000);
  (* warm *)
  Vm.unmap_range vm ~addr:0x1000 ~pages:1;
  expect_fault (fun () -> Vm.read_u8 vm 0x1000)

let test_tlb_destroy_flushes () =
  let pm, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  ignore (Vm.read_u8 vm 0x1000);
  ignore (Vm.read_u8 vm 0x2000);
  Vm.destroy vm;
  check Alcotest.int "frames released" 0 (Physmem.frames_in_use pm);
  expect_fault (fun () -> Vm.read_u8 vm 0x1000)

let test_tlb_stale_entry_cannot_corrupt_snapshot () =
  (* The boot/fork pattern: a page is downgraded to COW in place (no
     map/unmap, so no epoch movement) while another address space shares
     the frame.  A stale write-capable TLB entry would let the writer
     scribble on the shared snapshot frame; the shootdown in
     set_page_prot forces the write through the slow path, which breaks
     COW into a private copy. *)
  let pm, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u8 vm 0x1000 65;
  (* warms a write-capable entry *)
  let vm2 = Vm.create ~pid:2 pm (Clock.create ()) Cost_model.free in
  Vm.share_range ~src:vm ~dst:vm2 ~addr:0x1000 ~pages:1 ~prot:Prot.page_r;
  Vm.set_page_prot vm ~addr:0x1000 ~prot:Prot.page_cow;
  Vm.write_u8 vm 0x1000 66;
  check Alcotest.int "writer sees its write" 66 (Vm.read_u8 vm 0x1000);
  check Alcotest.int "shared snapshot untouched" 65 (Vm.read_u8 vm2 0x1000)

let test_tlb_cow_breaks_exactly_once () =
  (* Write through a cached read entry: the first write must break COW
     (one page_copy, one quota frame, old frame's refcount drops); the
     second write must ride the refilled entry and charge nothing close
     to a copy. *)
  let pm, _, vm1 = mk_vm_costed () in
  Vm.map_fresh vm1 ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u8 vm1 0x1000 1;
  let limits = Rlimit.create ~max_frames:4 () in
  let clock2 = Clock.create () in
  let vm2 = Vm.create ~limits ~pid:2 pm clock2 Cost_model.default in
  Vm.share_range ~src:vm1 ~dst:vm2 ~addr:0x1000 ~pages:1 ~prot:Prot.page_cow;
  let frame =
    match Pagetable.find (Vm.page_table vm1) ~vpn:1 with
    | Some pte -> pte.Pagetable.frame
    | None -> Alcotest.fail "unmapped"
  in
  check Alcotest.int "frame shared" 2 (Physmem.refcount pm frame);
  ignore (Vm.read_u8 vm2 0x1000);
  (* caches a read-capable entry *)
  check Alcotest.int "no quota before write" 0 (Rlimit.frames_used limits);
  Vm.write_u8 vm2 0x1000 2;
  check Alcotest.int "one quota frame after break" 1 (Rlimit.frames_used limits);
  check Alcotest.int "old frame refcount dropped" 1 (Physmem.refcount pm frame);
  let t0 = Clock.now clock2 in
  Vm.write_u8 vm2 0x1001 3;
  check Alcotest.bool "second write does not copy again" true
    (Clock.now clock2 - t0 < Cost_model.default.Cost_model.page_copy);
  check Alcotest.int "still one quota frame" 1 (Rlimit.frames_used limits);
  check Alcotest.int "parent unaffected" 1 (Vm.read_u8 vm1 0x1000)

let test_protect_range_charges_per_page () =
  let _, clock, vm = mk_vm_costed () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:3 ~prot:Prot.page_rw ~tag:None;
  let t0 = Clock.now clock in
  (* TLB cold: no cached entries, so the charge is purely per-pte. *)
  Vm.protect_range vm ~addr:0x1000 ~pages:3 ~prot:Prot.page_r;
  check Alcotest.int "pte_copy per mapped page" (3 * Cost_model.default.Cost_model.pte_copy)
    (Clock.now clock - t0)

let test_probe_is_advisory () =
  (* probes answer a question: no cost, no fault roll, no TLB traffic. *)
  let _, clock, vm = mk_vm_costed () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_r ~tag:None;
  let t0 = Clock.now clock in
  check Alcotest.bool "can read" true (Vm.can_read vm ~addr:0x1000 ~len:16);
  check Alcotest.bool "cannot write" false (Vm.can_write vm ~addr:0x1000 ~len:16);
  check Alcotest.int "no cost charged" t0 (Clock.now clock);
  check Alcotest.int "no TLB traffic" 0 (Vm.tlb_misses vm + Vm.tlb_hits vm)

(* ---------- 63-bit u64 semantics and page-boundary atomicity ---------- *)

let test_u64_63bit_roundtrip () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  List.iter
    (fun v ->
      Vm.write_u64 vm 0x1000 v;
      check Alcotest.int "within-page roundtrip" v (Vm.read_u64 vm 0x1000);
      Vm.write_u64 vm 0x1ffc v;
      check Alcotest.int "page-crossing roundtrip" v (Vm.read_u64 vm 0x1ffc))
    [ 0; 1; -1; max_int; min_int; 0xdeadbeef; 0x1122334455667788 ];
  (* The stored word zero-extends the 63-bit pattern: bit 63 clear even
     for negative values, so byte layouts are canonical. *)
  Vm.write_u64 vm 0x1000 (-1);
  check Alcotest.int "top stored byte is 0x7f" 0x7f (Vm.read_u8 vm 0x1007)

let test_boundary_second_page_unmapped () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  (* Reads crossing into the void fault... *)
  expect_fault (fun () -> ignore (Vm.read_u16 vm 0x1fff));
  expect_fault (fun () -> ignore (Vm.read_u32 vm 0x1ffe));
  expect_fault (fun () -> ignore (Vm.read_u64 vm 0x1ffc));
  (* ...and writes crossing fault WITHOUT touching the mapped page. *)
  Vm.write_u8 vm 0x1ffe 0xab;
  Vm.write_u8 vm 0x1fff 0xcd;
  expect_fault (fun () -> Vm.write_u32 vm 0x1ffe 0xffffffff);
  expect_fault (fun () -> Vm.write_u64 vm 0x1ffc 42);
  check Alcotest.int "first page intact (byte 1)" 0xab (Vm.read_u8 vm 0x1ffe);
  check Alcotest.int "first page intact (byte 2)" 0xcd (Vm.read_u8 vm 0x1fff)

let test_blit_across_readonly_page_is_atomic () =
  let _, vm = mk_vm () in
  Vm.map_fresh vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.map_fresh vm ~addr:0x2000 ~pages:1 ~prot:Prot.page_r ~tag:None;
  Vm.write_bytes vm 0x1ff0 (Bytes.of_string "SENTINEL00000000");
  (* 32-byte write straddling into the read-only page must fault and must
     not have dirtied the writable half first. *)
  expect_fault (fun () -> Vm.write_bytes vm 0x1ff0 (Bytes.make 32 'X'));
  check Alcotest.string "writable half untouched" "SENTINEL00000000"
    (Bytes.to_string (Vm.read_bytes vm 0x1ff0 16))

let test_pagetable_epoch_moves_on_structural_change () =
  let pt = Pagetable.create () in
  let e0 = Pagetable.epoch pt in
  Pagetable.map pt ~vpn:1 ~frame:0 ~prot:Prot.page_rw ~tag:None;
  check Alcotest.bool "map advances epoch" true (Pagetable.epoch pt > e0);
  let e1 = Pagetable.epoch pt in
  ignore (Pagetable.find pt ~vpn:1);
  (match Pagetable.find pt ~vpn:1 with
  | Some pte -> pte.Pagetable.prot <- Prot.page_r
  | None -> Alcotest.fail "unmapped");
  check Alcotest.int "find / in-place mutation do not" e1 (Pagetable.epoch pt);
  ignore (Pagetable.unmap pt ~vpn:1);
  check Alcotest.bool "unmap advances epoch" true (Pagetable.epoch pt > e1)

(* Process iteration must be in ascending-pid order — Hashtbl.iter order
   depends on insertion history and hash-table internals, which made
   every oracle sweep and metrics fold schedule-dependent — and must
   tolerate the callback reaping the process it is handed. *)
let test_iter_processes_sorted_and_reap_safe () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let procs =
    List.map
      (fun _ ->
        Kernel.new_process k ~kind:Wedge_kernel.Process.Sthread ~uid:33 ~root:"/"
          ~sid:"u:r:t" ())
      (List.init 16 Fun.id)
  in
  (* Churn the table so pids are neither contiguous nor insertion-ordered. *)
  List.iteri (fun i p -> if i mod 3 = 0 then Kernel.reap k p) procs;
  ignore
    (Kernel.new_process k ~kind:Wedge_kernel.Process.Sthread ~uid:33 ~root:"/"
       ~sid:"u:r:t" ());
  let seen = ref [] in
  Kernel.iter_processes k (fun p -> seen := p.Wedge_kernel.Process.pid :: !seen);
  let order = List.rev !seen in
  check (Alcotest.list Alcotest.int) "ascending pid order"
    (List.sort compare order) order;
  check Alcotest.int "every live process visited" (Kernel.live_processes k)
    (List.length order);
  (* Reap from inside the walk: the snapshot must keep the iteration
     sound (visit each remaining process exactly once, no crash). *)
  let visited = ref 0 in
  Kernel.iter_processes k (fun p ->
      incr visited;
      Kernel.reap k p);
  check Alcotest.int "reap-during-iteration visits all" (List.length order) !visited;
  check Alcotest.int "table empty afterwards" 0 (Kernel.live_processes k)

let () =
  Alcotest.run "wedge_kernel"
    [
      ( "physmem",
        [
          Alcotest.test_case "alloc zeroed" `Quick test_physmem_alloc_zeroed;
          Alcotest.test_case "refcount" `Quick test_physmem_refcount;
          Alcotest.test_case "frame reuse" `Quick test_physmem_reuse;
          Alcotest.test_case "dead frame access" `Quick test_physmem_dead_access;
          Alcotest.test_case "growth" `Quick test_physmem_growth;
        ] );
      ( "vm",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_vm_rw_roundtrip;
          Alcotest.test_case "unmapped faults" `Quick test_vm_unmapped_faults;
          Alcotest.test_case "read-only write faults" `Quick test_vm_readonly_faults_on_write;
          Alcotest.test_case "no-read faults" `Quick test_vm_noread_faults;
          Alcotest.test_case "partial read faults" `Quick test_vm_fault_is_partial_read_safe;
          Alcotest.test_case "COW break isolates" `Quick test_vm_cow_break_isolates;
          Alcotest.test_case "COW sole owner in place" `Quick test_vm_cow_sole_owner_claims_in_place;
          Alcotest.test_case "COW charges cost" `Quick test_vm_cow_charges_cost;
          Alcotest.test_case "shared read-only write faults" `Quick test_vm_share_readonly_then_write_faults;
          Alcotest.test_case "unmap releases frames" `Quick test_vm_unmap_releases_frames;
          Alcotest.test_case "destroy" `Quick test_vm_destroy;
          Alcotest.test_case "kernel write preserves shared frame" `Quick
            test_vm_kernel_write_preserves_shared_frame;
          Alcotest.test_case "probes" `Quick test_vm_can_read_write_probes;
        ] );
      ("vm-properties", List.map Test_rng.to_alcotest [ prop_refcount_invariant ]);
      ( "pagetable",
        [
          Alcotest.test_case "double map rejected" `Quick test_pagetable_double_map_rejected;
          Alcotest.test_case "unmap" `Quick test_pagetable_unmap;
          Alcotest.test_case "epoch on structural change" `Quick
            test_pagetable_epoch_moves_on_structural_change;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_tlb_counters;
          Alcotest.test_case "protect revokes immediately" `Quick
            test_tlb_protect_revokes_immediately;
          Alcotest.test_case "unmap revokes immediately" `Quick
            test_tlb_unmap_revokes_immediately;
          Alcotest.test_case "destroy flushes" `Quick test_tlb_destroy_flushes;
          Alcotest.test_case "stale entry cannot corrupt snapshot" `Quick
            test_tlb_stale_entry_cannot_corrupt_snapshot;
          Alcotest.test_case "COW breaks exactly once" `Quick test_tlb_cow_breaks_exactly_once;
          Alcotest.test_case "protect_range charges per page" `Quick
            test_protect_range_charges_per_page;
          Alcotest.test_case "probe is advisory" `Quick test_probe_is_advisory;
          Alcotest.test_case "u64 63-bit roundtrip" `Quick test_u64_63bit_roundtrip;
          Alcotest.test_case "boundary into unmapped" `Quick test_boundary_second_page_unmapped;
          Alcotest.test_case "blit atomic across read-only" `Quick
            test_blit_across_readonly_page_is_atomic;
        ] );
      ("prot", [ Alcotest.test_case "grant subsumption" `Quick test_prot_subsumption ]);
      ( "vfs",
        [
          Alcotest.test_case "read modes" `Quick test_vfs_read_modes;
          Alcotest.test_case "chroot confines" `Quick test_vfs_chroot_confines;
          Alcotest.test_case "empty chroot" `Quick test_vfs_empty_chroot;
          Alcotest.test_case "write and append" `Quick test_vfs_write_and_append;
          Alcotest.test_case "readdir and unlink" `Quick test_vfs_readdir_and_unlink;
          Alcotest.test_case "chmod chown" `Quick test_vfs_chmod_chown;
        ] );
      ( "fd_table",
        [
          Alcotest.test_case "perm subsumption" `Quick test_fd_perm_subsumption;
          Alcotest.test_case "dup reduces only" `Quick test_fd_dup_reduces_only;
          Alcotest.test_case "close independent" `Quick test_fd_close_independent;
        ] );
      ( "selinux",
        [
          Alcotest.test_case "domain policy" `Quick test_selinux_domain_policy;
          Alcotest.test_case "transitions" `Quick test_selinux_transitions;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "process lifecycle" `Quick test_kernel_process_lifecycle;
          Alcotest.test_case "iter_processes sorted + reap-safe" `Quick
            test_iter_processes_sorted_and_reap_safe;
          Alcotest.test_case "syscall denial" `Quick test_kernel_syscall_denial;
          Alcotest.test_case "trap charges" `Quick test_kernel_trap_charges;
        ] );
    ]
