(* Failure injection: random garbage thrown at each server's network-facing
   compartment must never crash the master or poison the application —
   after every fuzz connection the server still serves a legitimate client.
   Plus chroot-escape attempts against the VFS. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Vfs = Wedge_kernel.Vfs
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module W = Wedge_core.Wedge

let check = Alcotest.check

let garbage_gen =
  QCheck.string_of_size (QCheck.Gen.int_range 0 400)

(* Send raw bytes at a server, close, and confirm the serve fiber ends. *)
let throw_garbage serve garbage =
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> serve server_ep);
      if String.length garbage > 0 then Chan.write_string client_ep garbage;
      Chan.close client_ep;
      (* drain whatever the server says, until it closes *)
      let rec drain () = if Bytes.length (Chan.read client_ep 512) > 0 then drain () in
      (try drain () with Fiber.Deadlock _ -> ()))

(* ---------- httpd ---------- *)

let prop_httpd_survives_garbage =
  QCheck.Test.make ~name:"httpd: garbage never kills the master" ~count:40 garbage_gen
    (fun garbage ->
      let k = Kernel.create ~costs:Cost_model.free () in
      let env = Wedge_httpd.Httpd_env.install ~image_pages:80 k in
      throw_garbage
        (fun ep -> ignore (Wedge_httpd.Httpd_mitm.serve_connection env ep))
        garbage;
      (* The master survived: a legitimate request still works. *)
      let ok = ref false in
      Fiber.run (fun () ->
          let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
          Fiber.spawn (fun () -> ignore (Wedge_httpd.Httpd_mitm.serve_connection env server_ep));
          let r =
            Wedge_httpd.Https_client.get ~rng:(Drbg.create ~seed:5)
              ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" client_ep
          in
          ok := r.Wedge_httpd.Https_client.response <> None);
      !ok)

(* Garbage wrapped in VALID wire frames reaches deeper parsing layers. *)
let prop_httpd_survives_framed_garbage =
  QCheck.Test.make ~name:"httpd: well-framed junk handled" ~count:40
    QCheck.(pair (int_range 0 6) garbage_gen)
    (fun (ty, payload) ->
      let k = Kernel.create ~costs:Cost_model.free () in
      let env = Wedge_httpd.Httpd_env.install ~image_pages:80 k in
      let types = [ 'h'; 'H'; 'C'; 'K'; 'F'; 'D'; 'A' ] in
      let t = List.nth types (ty mod List.length types) in
      let n = min (String.length payload) 0xffff in
      let frame =
        Printf.sprintf "%c%c%c%s" t
          (Char.chr ((n lsr 8) land 0xff))
          (Char.chr (n land 0xff))
          (String.sub payload 0 n)
      in
      throw_garbage
        (fun ep -> ignore (Wedge_httpd.Httpd_mitm.serve_connection env ep))
        frame;
      true)

(* ---------- sshd ---------- *)

let prop_sshd_survives_garbage =
  QCheck.Test.make ~name:"sshd: garbage never kills the master" ~count:30 garbage_gen
    (fun garbage ->
      let k = Kernel.create ~costs:Cost_model.free () in
      let env = Wedge_sshd.Sshd_env.install ~image_pages:80 k in
      throw_garbage
        (fun ep -> ignore (Wedge_sshd.Sshd_wedge.serve_connection env ep))
        garbage;
      let ok = ref false in
      Fiber.run (fun () ->
          let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
          Fiber.spawn (fun () -> ignore (Wedge_sshd.Sshd_wedge.serve_connection env server_ep));
          (match
             Wedge_sshd.Ssh_client.login ~rng:(Drbg.create ~seed:6)
               ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
               ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Dsa.pub ~user:"alice"
               (Wedge_sshd.Ssh_client.Password "wonderland") client_ep
           with
          | Ok conn ->
              ok := true;
              Wedge_sshd.Ssh_client.close conn
          | Error _ -> ()));
      !ok)

(* ---------- pop3 ---------- *)

let prop_pop3_survives_garbage =
  QCheck.Test.make ~name:"pop3: garbage never kills the master" ~count:30 garbage_gen
    (fun garbage ->
      let k = Kernel.create ~costs:Cost_model.free () in
      Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
      let app = W.create_app k in
      W.boot app;
      let main = W.main_ctx app in
      throw_garbage
        (fun ep -> ignore (Wedge_pop3.Pop3_wedge.serve_connection main ep))
        garbage;
      let ok = ref false in
      Fiber.run (fun () ->
          let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
          Fiber.spawn (fun () -> ignore (Wedge_pop3.Pop3_wedge.serve_connection main server_ep));
          let c = Wedge_pop3.Pop3_client.connect client_ep in
          ok := Wedge_pop3.Pop3_client.login c ~user:"alice" ~password:"wonderland";
          Wedge_pop3.Pop3_client.quit c;
          Chan.close client_ep);
      !ok)

(* ---------- gate argument-protocol fuzzing ---------- *)

(* An exploited worker controls the argument buffer bytes completely; the
   callgates must treat them as hostile: no crash, no privilege change.
   This also exercises the oversized length-value guard (a fabricated
   0xFFFFFFF length must fault inside the gate, not OOM the host). *)
let prop_sshd_gates_survive_hostile_argbuf =
  QCheck.Test.make ~name:"sshd gates survive hostile argument buffers" ~count:25
    QCheck.(pair (int_range 0 1_000_000) (string_of_size (Gen.int_range 0 600)))
    (fun (seed, junk) ->
      let k = Kernel.create ~costs:Cost_model.free () in
      let env = Wedge_sshd.Sshd_env.install ~image_pages:80 k in
      let authed_shell = ref None in
      Fiber.run (fun () ->
          let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
          Fiber.spawn (fun () ->
              ignore
                (Wedge_sshd.Sshd_wedge.serve_connection
                   ~exploit:(fun ctx ->
                     (* Overwrite the worker's whole argument area with junk
                        and fabricated huge length fields, then poke every
                        address that might be a length-value block. *)
                     let rng2 = Drbg.create ~seed in
                     let tags = W.live_tags (W.app_of ctx) in
                     List.iter
                       (fun (tag : Wedge_mem.Tag.t) ->
                         if tag.Wedge_mem.Tag.name = "sshd.arg" then begin
                           let base = tag.Wedge_mem.Tag.base in
                           (try
                              W.write_string ctx (base + 40) junk;
                              (* plant absurd lv lengths at the protocol
                                 offsets the gates will read *)
                              List.iter
                                (fun off -> W.write_u32 ctx (base + 40 + off) 0xFFFFFFF)
                                [ 0; 256; 512; 1024; 1280 ];
                              ignore (Drbg.next64 rng2)
                            with Wedge_kernel.Vm.Fault _ -> ())
                         end)
                       tags)
                   env server_ep));
          (match
             Wedge_sshd.Ssh_client.start ~rng:(Drbg.create ~seed:9)
               ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
               ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Dsa.pub client_ep
           with
          | Ok conn ->
              (* trigger the exploit, then try the auth methods with junk *)
              ignore (Wedge_sshd.Ssh_client.exec conn "xploit");
              ignore
                (Wedge_sshd.Ssh_client.authenticate conn ~user:junk
                   (Wedge_sshd.Ssh_client.Password junk));
              authed_shell := Wedge_sshd.Ssh_client.exec conn "shell";
              Wedge_sshd.Ssh_client.close conn
          | Error _ -> ());
          Chan.close client_ep);
      (* never authenticated, master alive for a real login *)
      !authed_shell = Some "permission denied"
      || !authed_shell = None
         &&
         let ok = ref false in
         Fiber.run (fun () ->
             let c2, s2 = Chan.pair ~costs:Cost_model.free () in
             Fiber.spawn (fun () ->
                 ignore (Wedge_sshd.Sshd_wedge.serve_connection env s2));
             (match
                Wedge_sshd.Ssh_client.login ~rng:(Drbg.create ~seed:10)
                  ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
                  ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Dsa.pub ~user:"alice"
                  (Wedge_sshd.Ssh_client.Password "wonderland") c2
              with
             | Ok conn ->
                 ok := true;
                 Wedge_sshd.Ssh_client.close conn
             | Error _ -> ()));
         !ok)

let test_oversized_lv_faults_not_allocates () =
  (* Directly: a fabricated huge length must raise Vm.Fault quickly. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let t = W.tag_new main in
  let a = W.smalloc main 64 t in
  W.write_u32 main a 0xFFFFFFF;
  match W.read_lv main a with
  | _ -> Alcotest.fail "expected fault"
  | exception Wedge_kernel.Vm.Fault f ->
      check Alcotest.bool "reason mentions oversized" true
        (let s = Wedge_kernel.Vm.fault_to_string f in
         let rec has i =
           i + 9 <= String.length s && (String.sub s i 9 = "oversized" || has (i + 1))
         in
         has 0)

(* ---------- vfs traversal ---------- *)

let test_chroot_cannot_be_escaped () =
  let v = Vfs.create () in
  Vfs.install v ~uid:0 ~mode:0o600 "/etc/shadow" "secret";
  Vfs.mkdir_p v "/jail";
  Vfs.install v "/jail/hello" "world";
  List.iter
    (fun path ->
      check Alcotest.bool (path ^ " stays jailed") true
        (match Vfs.read_file v ~root:"/jail" ~uid:0 path with
        | Ok data -> data <> "secret"
        | Error _ -> true))
    [
      "/../etc/shadow";
      "../etc/shadow";
      "/../../etc/shadow";
      "/./../etc/shadow";
      "//../etc/shadow";
      "/etc/../../etc/shadow";
    ]

let test_pop3_path_injection () =
  (* A username crafted as a path must not escape the maildir scheme. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let logged = ref true in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Wedge_pop3.Pop3_wedge.serve_connection main server_ep));
      let c = Wedge_pop3.Pop3_client.connect client_ep in
      logged := Wedge_pop3.Pop3_client.login c ~user:"../etc" ~password:"x";
      Wedge_pop3.Pop3_client.quit c;
      Chan.close client_ep);
  check Alcotest.bool "path-shaped username rejected" false !logged

let qcheck tests = List.map Test_rng.to_alcotest tests

let () =
  Alcotest.run "wedge_fuzz"
    [
      ( "garbage-input",
        qcheck
          [
            prop_httpd_survives_garbage;
            prop_httpd_survives_framed_garbage;
            prop_sshd_survives_garbage;
            prop_pop3_survives_garbage;
          ] );
      ( "gate-argbuf",
        qcheck [ prop_sshd_gates_survive_hostile_argbuf ]
        @ [
            Alcotest.test_case "oversized lv faults" `Quick
              test_oversized_lv_faults_not_allocates;
          ] );
      ( "path-traversal",
        [
          Alcotest.test_case "chroot not escapable" `Quick test_chroot_cannot_be_escaped;
          Alcotest.test_case "pop3 path injection" `Quick test_pop3_path_injection;
        ] );
    ]
