(* Mini-SSL and network simulator tests: record layer integrity, the full
   handshake over simulated channels, session resumption, certificate
   pinning against substitution, passive MITM transparency, and the
   mechanics of trace capture + later decryption that the Apache attack
   experiments build on. *)

module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module Session = Wedge_tls.Session
module Handshake = Wedge_tls.Handshake
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Mitm = Wedge_net.Mitm

let check = Alcotest.check

let io_of_ep ep =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = Chan.read ep n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> Chan.write ep b)

let mk_master seed =
  let rng = Drbg.create ~seed in
  (Drbg.bytes rng 32, Drbg.bytes rng 32, Drbg.bytes rng 32)

let mk_keys () =
  let master, cr, sr = mk_master 11 in
  let c = Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Client in
  let s = Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Server in
  (c, s)

(* ---------- Wire ---------- *)

let test_wire_roundtrip () =
  let buf = Buffer.create 64 in
  let io = Wire.io_of_fns ~recv:(fun _ -> None) ~send:(fun b -> Buffer.add_bytes buf b) in
  Wire.send_msg io Wire.Client_hello (Bytes.of_string "payload");
  Wire.send_msg io Wire.App_data (Bytes.of_string "x");
  let frames = Wire.parse_frames (Buffer.contents buf) in
  check Alcotest.int "two frames" 2 (List.length frames);
  (match frames with
  | [ (Wire.Client_hello, p1); (Wire.App_data, p2) ] ->
      check Alcotest.string "p1" "payload" (Bytes.to_string p1);
      check Alcotest.string "p2" "x" (Bytes.to_string p2)
  | _ -> Alcotest.fail "wrong frames");
  check Alcotest.int "partial frame ignored" 2
    (List.length (Wire.parse_frames (Buffer.contents buf ^ "D\x00\x10abc")))

(* ---------- Record layer ---------- *)

let test_record_roundtrip () =
  let c, s = mk_keys () in
  let r1 = Record.seal c (Bytes.of_string "client to server") in
  check Alcotest.bool "server opens" true
    (Record.open_ s r1 = Some (Bytes.of_string "client to server"));
  let r2 = Record.seal s (Bytes.of_string "server to client") in
  check Alcotest.bool "client opens" true
    (Record.open_ c r2 = Some (Bytes.of_string "server to client"))

let test_record_rejects_tamper () =
  let c, s = mk_keys () in
  let r = Record.seal c (Bytes.of_string "data") in
  Bytes.set r 1 (Char.chr (Char.code (Bytes.get r 1) lxor 1));
  check Alcotest.bool "tampered rejected" true (Record.open_ s r = None)

let test_record_rejects_replay () =
  let c, s = mk_keys () in
  let r = Record.seal c (Bytes.of_string "one") in
  check Alcotest.bool "first accepted" true (Record.open_ s r <> None);
  check Alcotest.bool "replay rejected (seq advanced)" true (Record.open_ s r = None)

let test_record_rejects_forgery_without_key () =
  let _, s = mk_keys () in
  let attacker_keys, _ = mk_keys () in
  ignore attacker_keys;
  (* An attacker without the MAC key fabricates a record from a different key set. *)
  let other_master, cr, sr = mk_master 99 in
  let forge = Record.derive ~master:other_master ~client_random:cr ~server_random:sr ~side:`Client in
  let r = Record.seal forge (Bytes.of_string "evil") in
  check Alcotest.bool "forgery dropped" true (Record.open_ s r = None)

let test_record_forged_record_does_not_desync () =
  let c, s = mk_keys () in
  let other_master, cr, sr = mk_master 99 in
  let forge = Record.derive ~master:other_master ~client_random:cr ~server_random:sr ~side:`Client in
  ignore (Record.open_ s (Record.seal forge (Bytes.of_string "junk")));
  (* Legitimate traffic continues to flow after the drop. *)
  let r = Record.seal c (Bytes.of_string "still fine") in
  check Alcotest.bool "stream survives" true (Record.open_ s r = Some (Bytes.of_string "still fine"))

let test_record_state_serialization () =
  let c, s = mk_keys () in
  ignore (Record.open_ s (Record.seal c (Bytes.of_string "advance state")));
  let s' = Record.of_bytes (Record.to_bytes s) in
  let c' = Record.of_bytes (Record.to_bytes c) in
  let r = Record.seal c' (Bytes.of_string "after reload") in
  check Alcotest.bool "reloaded state decrypts" true
    (Record.open_ s' r = Some (Bytes.of_string "after reload"))

(* ---------- Chan ---------- *)

let test_chan_basic () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Fiber.spawn (fun () ->
          Chan.write_string b "hello";
          Chan.close b);
      check Alcotest.bool "read" true (Chan.read_exact a 5 = Some (Bytes.of_string "hello"));
      check Alcotest.string "eof" "" (Bytes.to_string (Chan.read a 1)))

let test_chan_blocking_interleave () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      let log = Buffer.create 16 in
      Fiber.spawn (fun () ->
          Buffer.add_string log "s1;";
          let q = Chan.read_exact b 3 in
          Buffer.add_string log (Printf.sprintf "srv-got:%s;" (Bytes.to_string (Option.get q)));
          Chan.write_string b "pong");
      Chan.write_string a "png";
      let r = Chan.read_exact a 4 in
      Buffer.add_string log (Printf.sprintf "cli-got:%s" (Bytes.to_string (Option.get r)));
      check Alcotest.string "interleaving" "s1;srv-got:png;cli-got:pong" (Buffer.contents log))

let test_chan_deadlock_detected () =
  match
    Fiber.run (fun () ->
        let a, _b = Chan.pair () in
        ignore (Chan.read a 1))
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock _ -> ()

let test_listener () =
  Fiber.run (fun () ->
      let l = Chan.listener () in
      Fiber.spawn (fun () ->
          match Chan.accept l with
          | Some ep ->
              let b = Chan.read_exact ep 2 in
              Chan.write_string ep (String.uppercase_ascii (Bytes.to_string (Option.get b)))
          | None -> ());
      let c = Chan.connect l in
      Chan.write_string c "ok";
      check Alcotest.bool "echoed upper" true (Chan.read_exact c 2 = Some (Bytes.of_string "OK")))

(* ---------- Handshake over channels ---------- *)

let run_server ?(cache = Session.create ()) ~priv ep =
  let rng = Drbg.create ~seed:0x5e1 in
  let state = Handshake.plain_state_create () in
  let ops = Handshake.plain_ops ~rng ~priv ~cache ~state in
  let io = io_of_ep ep in
  match Handshake.server_handshake ~ops ~cert:(Rsa.pub_to_string priv.Rsa.pub) io with
  | Ok _sid -> Ok (io, Handshake.keys_of_plain_state state, state)
  | Error e -> Error e

let test_handshake_and_data () =
  let priv = Rsa.demo_key () in
  let result = ref None in
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Fiber.spawn (fun () ->
          match run_server ~priv b with
          | Ok (io, keys, _) -> (
              match Handshake.recv_data io keys with
              | Ok req ->
                  Handshake.send_data io keys
                    (Bytes.of_string ("echo:" ^ Bytes.to_string req))
              | Error _ -> ())
          | Error e -> Alcotest.fail ("server: " ^ e));
      let rng = Drbg.create ~seed:0xC11 in
      let io = io_of_ep a in
      match Handshake.client_connect ~rng ~pinned:priv.Rsa.pub io with
      | Error e -> Alcotest.fail ("client: " ^ e)
      | Ok res ->
          check Alcotest.bool "not resumed" false res.Handshake.cr_resumed;
          Handshake.send_data io res.Handshake.cr_keys (Bytes.of_string "ping");
          (match Handshake.recv_data io res.Handshake.cr_keys with
          | Ok reply -> result := Some (Bytes.to_string reply)
          | Error _ -> ()));
  check (Alcotest.option Alcotest.string) "echoed through SSL" (Some "echo:ping") !result

let test_session_resumption () =
  let priv = Rsa.demo_key () in
  let cache = Session.create () in
  let resumed_flag = ref None in
  Fiber.run (fun () ->
      let session = ref None in
      (* First connection: full handshake populates the cache. *)
      let a1, b1 = Chan.pair () in
      Fiber.spawn (fun () -> ignore (run_server ~cache ~priv b1));
      let rng = Drbg.create ~seed:1 in
      (match Handshake.client_connect ~rng ~pinned:priv.Rsa.pub (io_of_ep a1) with
      | Ok res -> session := Some res.Handshake.cr_session
      | Error e -> Alcotest.fail e);
      check Alcotest.int "cached" 1 (Session.size cache);
      (* Second connection offers the session id. *)
      let a2, b2 = Chan.pair () in
      Fiber.spawn (fun () ->
          match run_server ~cache ~priv b2 with
          | Ok (io, keys, _) -> (
              match Handshake.recv_data io keys with
              | Ok d -> Handshake.send_data io keys d
              | Error _ -> ())
          | Error e -> Alcotest.fail ("resumed server: " ^ e));
      let rng2 = Drbg.create ~seed:2 in
      match Handshake.client_connect ?resume:!session ~rng:rng2 ~pinned:priv.Rsa.pub (io_of_ep a2) with
      | Ok res ->
          resumed_flag := Some res.Handshake.cr_resumed;
          Handshake.send_data (io_of_ep a2) res.Handshake.cr_keys (Bytes.of_string "hi")
          (* note: io buffers are per-io; use the same io for send/recv *)
      | Error e -> Alcotest.fail ("resumed client: " ^ e));
  check (Alcotest.option Alcotest.bool) "resumed" (Some true) !resumed_flag

let test_resumption_disabled_cache () =
  let priv = Rsa.demo_key () in
  let cache = Session.create ~enabled:false () in
  Fiber.run (fun () ->
      let a1, b1 = Chan.pair () in
      Fiber.spawn (fun () -> ignore (run_server ~cache ~priv b1));
      let rng = Drbg.create ~seed:1 in
      let session =
        match Handshake.client_connect ~rng ~pinned:priv.Rsa.pub (io_of_ep a1) with
        | Ok res -> res.Handshake.cr_session
        | Error e -> Alcotest.fail e
      in
      check Alcotest.int "nothing cached" 0 (Session.size cache);
      let a2, b2 = Chan.pair () in
      Fiber.spawn (fun () -> ignore (run_server ~cache ~priv b2));
      let rng2 = Drbg.create ~seed:2 in
      match Handshake.client_connect ~resume:session ~rng:rng2 ~pinned:priv.Rsa.pub (io_of_ep a2) with
      | Ok res -> check Alcotest.bool "full handshake forced" false res.Handshake.cr_resumed
      | Error e -> Alcotest.fail e)

let test_wrong_pin_detected () =
  (* A MITM who substitutes his own certificate is caught by the pin. *)
  let priv = Rsa.demo_key () in
  let attacker = Rsa.demo_key2 () in
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Fiber.spawn (fun () -> ignore (run_server ~priv:attacker b));
      let rng = Drbg.create ~seed:3 in
      let outcome = Handshake.client_connect ~rng ~pinned:priv.Rsa.pub (io_of_ep a) in
      Chan.close a;
      (* unblock the server fiber *)
      match outcome with
      | Ok _ -> Alcotest.fail "client accepted a substituted certificate"
      | Error e ->
          let contains hay needle =
            let nl = String.length needle and hl = String.length hay in
            let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          check Alcotest.bool "pin error mentions MITM" true (contains e "MITM"))

let test_passive_mitm_transparent_but_captures () =
  let priv = Rsa.demo_key () in
  let mitm = Mitm.create () in
  let ok = ref false in
  Fiber.run (fun () ->
      (* client <-> mitm <-> server *)
      let client_ep, mitm_client = Chan.pair () in
      let mitm_server, server_ep = Chan.pair () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () ->
          match run_server ~priv server_ep with
          | Ok (io, keys, _) -> (
              match Handshake.recv_data io keys with
              | Ok _ -> Handshake.send_data io keys (Bytes.of_string "SECRET PAGE")
              | Error _ -> ())
          | Error _ -> ());
      let rng = Drbg.create ~seed:4 in
      let io = io_of_ep client_ep in
      match Handshake.client_connect ~rng ~pinned:priv.Rsa.pub io with
      | Error e -> Alcotest.fail ("handshake through MITM: " ^ e)
      | Ok res ->
          Handshake.send_data io res.Handshake.cr_keys (Bytes.of_string "GET /secret");
          (match Handshake.recv_data io res.Handshake.cr_keys with
          | Ok d when Bytes.to_string d = "SECRET PAGE" -> ok := true
          | _ -> ());
          Chan.close client_ep);
  check Alcotest.bool "passive MITM is transparent" true !ok;
  (* The eavesdropper captured the whole conversation... *)
  let c2s = Mitm.captured mitm Mitm.Client_to_server in
  let s2c = Mitm.captured mitm Mitm.Server_to_client in
  check Alcotest.bool "captured client flow" true (String.length c2s > 0);
  let frames = Wire.parse_frames s2c in
  check Alcotest.bool "captured server frames parse" true (List.length frames >= 3);
  (* ...but the application data in the capture is not cleartext. *)
  let contains_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "capture does not contain plaintext" false (contains_sub s2c "SECRET PAGE")

let test_key_leak_decrypts_capture () =
  (* The attack mechanics of §5.1.2: if the session keys leak (e.g. out of
     an exploited worker), the captured trace decrypts offline. *)
  let priv = Rsa.demo_key () in
  let mitm = Mitm.create () in
  let leaked_state = ref None in
  Fiber.run (fun () ->
      let client_ep, mitm_client = Chan.pair () in
      let mitm_server, server_ep = Chan.pair () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () ->
          match run_server ~priv server_ep with
          | Ok (io, keys, _) -> (
              (* The "exploit": server-side keys leak to the attacker. *)
              leaked_state := Some (Record.to_bytes keys);
              match Handshake.recv_data io keys with
              | Ok _ -> Handshake.send_data io keys (Bytes.of_string "TOP SECRET BODY")
              | Error _ -> ())
          | Error _ -> ());
      let rng = Drbg.create ~seed:5 in
      let io = io_of_ep client_ep in
      match Handshake.client_connect ~rng ~pinned:priv.Rsa.pub io with
      | Error e -> Alcotest.fail e
      | Ok res ->
          Handshake.send_data io res.Handshake.cr_keys (Bytes.of_string "GET /top-secret");
          ignore (Handshake.recv_data io res.Handshake.cr_keys);
          Chan.close client_ep);
  let keys =
    match !leaked_state with Some b -> Record.of_bytes b | None -> Alcotest.fail "no leak"
  in
  (* Rewind the leaked state: reconstruct fresh receive state by replaying
     from sequence zero.  The leaked bytes were taken post-handshake, so
     decrypt the captured *data* records with it. *)
  let s2c_frames = Wire.parse_frames (Mitm.captured mitm Mitm.Server_to_client) in
  let data_records = List.filter (fun (t, _) -> t = Wire.App_data) s2c_frames in
  (* Attacker plays the client role for s2c data using the server's tx
     state inverted: simplest is to note the leak included the server's rx
     AND tx cipher states, so clone and decrypt. *)
  check Alcotest.int "one data record server->client" 1 (List.length data_records);
  ignore keys;
  (* Decrypting with a leaked state requires the state as it was when the
     record was sealed; we leaked post-handshake state, i.e. exactly the
     state used for the first data record.  The server seals with enc_tx;
     an attacker reconstructs a decryptor by swapping tx/rx halves. *)
  let swapped =
    let b = Record.to_bytes keys in
    let mac_tx = Bytes.sub b 0 32 and mac_rx = Bytes.sub b 32 32 in
    let rc4_tx = Bytes.sub b 64 258 and rc4_rx = Bytes.sub b (64 + 258) 258 in
    let seq_tx = Bytes.sub b (64 + 516) 8 and seq_rx = Bytes.sub b (64 + 524) 8 in
    Record.of_bytes
      (Bytes.concat Bytes.empty [ mac_rx; mac_tx; rc4_rx; rc4_tx; seq_rx; seq_tx ])
  in
  match data_records with
  | [ (_, record) ] ->
      check
        (Alcotest.option Alcotest.string)
        "leaked keys decrypt the capture" (Some "TOP SECRET BODY")
        (Option.map Bytes.to_string (Record.open_ swapped record))
  | _ -> Alcotest.fail "unexpected records"

let test_injection_dropped_by_mac () =
  let priv = Rsa.demo_key () in
  let mitm = Mitm.create () in
  let server_saw = ref [] in
  Fiber.run (fun () ->
      let client_ep, mitm_client = Chan.pair () in
      let mitm_server, server_ep = Chan.pair () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () ->
          match run_server ~priv server_ep with
          | Ok (io, keys, _) ->
              let rec loop () =
                match Handshake.recv_data io keys with
                | Ok d ->
                    server_saw := Bytes.to_string d :: !server_saw;
                    loop ()
                | Error `Mac_fail ->
                    server_saw := "<dropped>" :: !server_saw;
                    loop ()
                | Error _ -> ()
              in
              loop ()
          | Error _ -> ());
      let rng = Drbg.create ~seed:6 in
      let io = io_of_ep client_ep in
      match Handshake.client_connect ~rng ~pinned:priv.Rsa.pub io with
      | Error e -> Alcotest.fail e
      | Ok res ->
          Handshake.send_data io res.Handshake.cr_keys (Bytes.of_string "legit-1");
          Fiber.yield ();
          (* Attacker injects a fabricated data record toward the server. *)
          Mitm.inject mitm Mitm.Client_to_server
            (Wire.frame Wire.App_data (Bytes.of_string (String.make 48 'E')));
          Fiber.yield ();
          Handshake.send_data io res.Handshake.cr_keys (Bytes.of_string "legit-2");
          Fiber.yield ();
          Chan.close client_ep);
  check (Alcotest.list Alcotest.string) "injection dropped, stream intact"
    [ "legit-1"; "<dropped>"; "legit-2" ]
    (List.rev !server_saw)

(* ---------- property tests ---------- *)

let mk_pair seed =
  let master = Wedge_crypto.Sha256.digest_string ("m" ^ string_of_int seed) in
  let cr = Wedge_crypto.Sha256.digest_string ("c" ^ string_of_int seed) in
  let sr = Wedge_crypto.Sha256.digest_string ("s" ^ string_of_int seed) in
  ( Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Client,
    Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Server )

let prop_record_roundtrip_any_payload =
  QCheck.Test.make ~name:"record layer roundtrips any payload" ~count:100
    QCheck.(string_of_size (Gen.int_range 0 2000))
    (fun payload ->
      let c, s = mk_pair (Hashtbl.hash payload) in
      Record.open_ s (Record.seal c (Bytes.of_string payload))
      = Some (Bytes.of_string payload))

let prop_record_rejects_any_flip =
  QCheck.Test.make ~name:"any single-byte corruption is rejected" ~count:100
    QCheck.(pair (string_of_size (Gen.int_range 1 300)) (int_range 0 10_000))
    (fun (payload, flip) ->
      let c, s = mk_pair (Hashtbl.hash payload) in
      let r = Record.seal c (Bytes.of_string payload) in
      let i = flip mod Bytes.length r in
      Bytes.set r i (Char.chr (Char.code (Bytes.get r i) lxor (1 + (flip mod 255))));
      Record.open_ s r = None)

let prop_record_stream_order =
  QCheck.Test.make ~name:"records decrypt only in order" ~count:60
    QCheck.(list_of_size (Gen.int_range 2 8) (string_of_size (Gen.int_range 1 100)))
    (fun payloads ->
      let c, s = mk_pair (Hashtbl.hash payloads) in
      let records = List.map (fun p -> Record.seal c (Bytes.of_string p)) payloads in
      match records with
      | first :: second :: _ ->
          (* out of order: rejected; in order: accepted *)
          Record.open_ s second = None
          && Record.open_ s first = Some (Bytes.of_string (List.hd payloads))
      | _ -> true)

let prop_wire_frames_roundtrip =
  QCheck.Test.make ~name:"wire frames parse back from a byte stream" ~count:80
    QCheck.(list_of_size (Gen.int_range 0 10) (string_of_size (Gen.int_range 0 200)))
    (fun payloads ->
      let stream =
        String.concat ""
          (List.map (fun p -> Bytes.to_string (Wire.frame Wire.App_data (Bytes.of_string p))) payloads)
      in
      let parsed = Wire.parse_frames stream in
      List.length parsed = List.length payloads
      && List.for_all2 (fun (t, b) p -> t = Wire.App_data && Bytes.to_string b = p) parsed payloads)

let qcheck tests = List.map Test_rng.to_alcotest tests

let () =
  Alcotest.run "wedge_tls"
    [
      ("wire", [ Alcotest.test_case "framing roundtrip" `Quick test_wire_roundtrip ]);
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_record_rejects_tamper;
          Alcotest.test_case "replay rejected" `Quick test_record_rejects_replay;
          Alcotest.test_case "forgery rejected" `Quick test_record_rejects_forgery_without_key;
          Alcotest.test_case "forgery does not desync" `Quick test_record_forged_record_does_not_desync;
          Alcotest.test_case "state serialization" `Quick test_record_state_serialization;
        ] );
      ( "chan",
        [
          Alcotest.test_case "basic" `Quick test_chan_basic;
          Alcotest.test_case "blocking interleave" `Quick test_chan_blocking_interleave;
          Alcotest.test_case "deadlock detected" `Quick test_chan_deadlock_detected;
          Alcotest.test_case "listener" `Quick test_listener;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "handshake + data" `Quick test_handshake_and_data;
          Alcotest.test_case "session resumption" `Quick test_session_resumption;
          Alcotest.test_case "resumption with cache off" `Quick test_resumption_disabled_cache;
          Alcotest.test_case "wrong pin detected" `Quick test_wrong_pin_detected;
        ] );
      ( "properties",
        qcheck
          [
            prop_record_roundtrip_any_payload;
            prop_record_rejects_any_flip;
            prop_record_stream_order;
            prop_wire_frames_roundtrip;
          ] );
      ( "mitm",
        [
          Alcotest.test_case "passive transparent + captures" `Quick
            test_passive_mitm_transparent_but_captures;
          Alcotest.test_case "key leak decrypts capture" `Quick test_key_leak_decrypts_capture;
          Alcotest.test_case "injection dropped by MAC" `Quick test_injection_dropped_by_mac;
        ] );
    ]
