(* Snapshot pools: freeze a booted worker image once, stamp compartments
   out of it at flat cost.  Covers the freeze/stamp/discard lifecycle,
   the O(1) cost claim against fork-priced boot, COW preservation of the
   frozen frames, rlimit and identity capture, fault injection on both
   pool sites (a fault mid-stamp must leave the image pristine and the
   refcounts clean — swept by the oracle), supervisor [From_pool]
   integration, and the pool counters in the metrics registry. *)

module Kernel = Wedge_kernel.Kernel
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Fiber = Wedge_sim.Fiber
module Fault_plan = Wedge_fault.Fault_plan
module Rlimit = Wedge_kernel.Rlimit
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics
module W = Wedge_core.Wedge
module Engine = Wedge_core.Engine
module Pool = Wedge_core.Pool
module Supervisor = Wedge_core.Supervisor
module Oracle = Wedge_check.Oracle

let check = Alcotest.check

let mk ?faults ?(costs = Cost_model.free) ?(image_pages = 40) () =
  let k = Kernel.create ~costs ?faults () in
  let app = W.create_app ~image_pages k in
  W.boot app;
  (k, app, W.main_ctx app)

let sweep k app =
  let o = Oracle.create k in
  Oracle.set_app o app;
  Oracle.check o

let noop _ _ = 0

(* ---------- lifecycle ---------- *)

let test_freeze_stamp_basic () =
  let k, app, main = mk () in
  Fiber.run (fun () ->
      let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      check Alcotest.bool "live" true (Pool.is_live pool);
      check Alcotest.bool "pages captured" true (Pool.frozen_pages pool > 0);
      let h = W.Pool.stamp main pool (fun _ x -> x + 41) 1 in
      check Alcotest.int "stamped worker ran" 42 (W.sthread_join main h);
      check Alcotest.int "freeze counted" 1 app.Engine.pool_freezes;
      check Alcotest.int "stamp counted" 1 app.Engine.pool_stamps;
      check Alcotest.int "hit counted" 1 app.Engine.pool_hits);
  sweep k app

let test_stamp_flat_vs_fresh_scaling () =
  (* The O(1) claim, on the simulated clock with paper-shaped prices:
     fresh boot cost grows with the image, stamp cost does not. *)
  let measure pages =
    let k, _, main = mk ~costs:Cost_model.default ~image_pages:pages () in
    let clock = k.Kernel.clock in
    let fresh = ref 0 and stamp = ref 0 in
    Fiber.run ~clock (fun () ->
        let t0 = Clock.now clock in
        ignore (W.sthread_create main (W.sc_create ()) noop 0);
        fresh := Clock.now clock - t0;
        let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
        let t1 = Clock.now clock in
        ignore (W.Pool.stamp main pool noop 0);
        stamp := Clock.now clock - t1);
    (!fresh, !stamp)
  in
  let f1, s1 = measure 40 and f2, s2 = measure 400 in
  check Alcotest.bool "fresh scales with pages" true (f2 > f1);
  check Alcotest.int "stamp flat across 10x image" s1 s2;
  check Alcotest.bool "stamp beats fresh" true (s1 < f1 && s2 < f2)

let test_stamp_cow_preserves_frozen_image () =
  let k, app, main = mk () in
  Fiber.run (fun () ->
      (* Warm the image so the frozen heap is part of the snapshot. *)
      let addr = ref 0 in
      let pool =
        W.Pool.freeze ~name:"w"
          ~warm:(fun ctx ->
            let p = W.malloc ctx 64 in
            W.write_u64 ctx p 0xBEEF;
            addr := p)
          main (W.sc_create ())
      in
      (* Two stamped workers write the same heap address: each must COW
         onto a private frame and see its own value. *)
      let h1 =
        W.Pool.stamp main pool
          (fun ctx _ ->
            W.write_u64 ctx !addr 111;
            W.read_u64 ctx !addr)
          0
      in
      check Alcotest.int "worker 1 private write" 111 (W.sthread_join main h1);
      let h2 =
        W.Pool.stamp main pool
          (fun ctx _ -> W.read_u64 ctx !addr)
          0
      in
      check Alcotest.int "worker 2 still sees frozen value" 0xBEEF
        (W.sthread_join main h2));
  (* The frozen frames survived both stamps un-broken: refcounts re-derive
     and no pw mapping points at a frozen COW frame. *)
  sweep k app

let test_discard_releases_image () =
  let k, app, main = mk () in
  Fiber.run (fun () ->
      let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      ignore (W.sthread_join main (W.Pool.stamp main pool noop 0));
      W.Pool.discard main pool;
      check Alcotest.bool "dead after discard" false (Pool.is_live pool);
      check Alcotest.bool "stamp after discard refused" true
        (match W.Pool.stamp main pool noop 0 with
        | exception Invalid_argument _ -> true
        | _ -> false);
      (* Double discard is a no-op, and a fresh freeze can reuse the name. *)
      W.Pool.discard main pool;
      let pool2 = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      ignore (W.sthread_join main (W.Pool.stamp main pool2 noop 0)));
  sweep k app

let test_duplicate_freeze_name_refused () =
  let _, _, main = mk () in
  Fiber.run (fun () ->
      let _pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      check Alcotest.bool "duplicate name refused" true
        (match W.Pool.freeze ~name:"w" main (W.sc_create ()) with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* ---------- identity and limits ---------- *)

let test_stamp_identity_and_limits () =
  let k, app, main = mk () in
  Fiber.run (fun () ->
      let sc = W.sc_create () in
      W.sc_set_uid sc 99;
      W.sc_set_rlimit sc (Rlimit.create ~max_frames:64 ~max_fds:4 ~max_fuel:100_000 ());
      let pool = W.Pool.freeze ~name:"w" main sc in
      (* Identity captured at freeze rides into every stamp. *)
      let h = W.Pool.stamp main pool (fun ctx _ -> W.getuid ctx) 0 in
      check Alcotest.int "stamped uid from pool" 99 (W.sthread_join main h);
      (* A stamp-time extra can override identity per invocation. *)
      let extra = W.sc_create () in
      W.sc_set_uid extra 33;
      let h2 = W.Pool.stamp ~extra main pool (fun ctx _ -> W.getuid ctx) 0 in
      check Alcotest.int "extra overrides uid" 33 (W.sthread_join main h2));
  sweep k app

(* ---------- fault injection on the pool sites ---------- *)

let test_fault_during_freeze_leaves_no_image () =
  let plan = Fault_plan.create ~seed:7 () in
  Fault_plan.rule plan ~site:"pool.freeze" ~prob:1.0 [ Fault_plan.Crash ];
  Fault_plan.disarm plan;
  let k, app, main = mk ~faults:plan () in
  Fiber.run (fun () ->
      Fault_plan.arm plan;
      check Alcotest.bool "freeze crashed" true
        (match W.Pool.freeze ~name:"w" main (W.sc_create ()) with
        | exception _ -> true
        | _ -> false);
      Fault_plan.disarm plan;
      check Alcotest.int "no image registered" 0 (List.length app.Engine.frozen_images);
      (* The name is free again and a clean retry works. *)
      let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      ignore (W.sthread_join main (W.Pool.stamp main pool noop 0)));
  sweep k app

let test_fault_during_stamp_image_pristine () =
  let plan = Fault_plan.create ~seed:8 () in
  Fault_plan.rule plan ~site:"pool.stamp" ~prob:1.0 [ Fault_plan.Crash ];
  Fault_plan.disarm plan;
  let k, app, main = mk ~faults:plan () in
  Fiber.run (fun () ->
      let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      Fault_plan.arm plan;
      check Alcotest.bool "stamp crashed" true
        (match W.Pool.stamp main pool noop 0 with exception _ -> true | _ -> false);
      Fault_plan.disarm plan;
      (* The frozen image survived the failed stamp pristine: still live,
         still registered, and a clean stamp serves. *)
      check Alcotest.bool "pool still live" true (Pool.is_live pool);
      check Alcotest.int "image still registered" 1 (List.length app.Engine.frozen_images);
      check Alcotest.bool "faulted attempt counted, no hit" true
        (app.Engine.pool_stamps >= 1 && app.Engine.pool_hits = 0);
      ignore (W.sthread_join main (W.Pool.stamp main pool noop 0)));
  (* Refcounts and COW re-derive clean after the mid-stamp crash. *)
  sweep k app

(* ---------- supervisor integration ---------- *)

let test_from_pool_child_restamps () =
  let k, app, main = mk () in
  Fiber.run (fun () ->
      let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      let node = Supervisor.node ~name:"t" main in
      let c =
        Supervisor.child
          ~policy:(Supervisor.policy ~max_restarts:2 ())
          ~restart:(Supervisor.From_pool pool) node ~name:"w"
      in
      let attempts = ref 0 in
      let outcome =
        Supervisor.run_child_sthread c (W.sc_create ())
          (fun _ _ ->
            incr attempts;
            if !attempts = 1 then raise (Fault_plan.Injected "first attempt dies");
            7)
          0
      in
      (match outcome with
      | Supervisor.Done { value; _ } ->
          check Alcotest.int "restamped attempt served" 7 value
      | Supervisor.Gave_up _ -> Alcotest.fail "pooled child gave up");
      check Alcotest.int "two attempts" 2 !attempts;
      check Alcotest.int "both attempts stamped from pool" 2 app.Engine.pool_stamps);
  sweep k app

let test_from_pool_quarantine_is_shorter () =
  (* Quarantine length is priced against restart cost: a pooled child is
     re-admitted at a quarter of the node's quarantine_ns. *)
  let run_variant restart =
    let _, _, main = mk () in
    let lifted = ref (-1) in
    Fiber.run (fun () ->
        let pool =
          match restart with
          | true -> Some (W.Pool.freeze ~name:"w" main (W.sc_create ()))
          | false -> None
        in
        let node =
          Supervisor.node ~intensity:1 ~window_ns:10_000 ~quarantine_ns:20_000
            ~name:"t" main
        in
        let c =
          Supervisor.child
            ~policy:(Supervisor.policy ~max_restarts:5 ())
            ~restart:
              (match pool with Some p -> Supervisor.From_pool p | None -> Supervisor.Fresh)
            node ~name:"w"
        in
        ignore (Supervisor.run_child_fn c (fun () -> raise (Fault_plan.Injected "boom")));
        match Supervisor.quarantined_until c with
        | Some t -> lifted := t
        | None -> Alcotest.fail "expected quarantine");
    !lifted
  in
  let fresh_until = run_variant false and pooled_until = run_variant true in
  check Alcotest.bool "pooled quarantine lifts sooner" true
    (pooled_until < fresh_until)

(* ---------- observability ---------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pool_metrics_and_trace () =
  let k, app, main = mk () in
  Trace.arm k.Kernel.trace;
  Fiber.run (fun () ->
      let pool = W.Pool.freeze ~name:"w" main (W.sc_create ()) in
      ignore (W.sthread_join main (W.Pool.stamp main pool noop 0));
      W.Pool.discard main pool);
  check Alcotest.bool "freeze stat" true (Stats.get k.Kernel.stats "pool.freeze" >= 1);
  check Alcotest.bool "stamp stat" true (Stats.get k.Kernel.stats "pool.stamp" >= 1);
  check Alcotest.bool "discard stat" true (Stats.get k.Kernel.stats "pool.discard" >= 1);
  let m = Metrics.create () in
  W.register_metrics m app;
  let json = Metrics.to_json m in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " in metrics") true (contains json needle))
    [ "pool.freezes"; "pool.stamps"; "pool.hits"; "pool.frozen_frames" ];
  let trace = Trace.to_chrome_json k.Kernel.trace in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " in trace") true (contains trace needle))
    [ "pool.freeze"; "pool.stamp"; "pool.discard" ];
  sweep k app

let () =
  Alcotest.run "pool"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "freeze + stamp" `Quick test_freeze_stamp_basic;
          Alcotest.test_case "flat vs fresh scaling" `Quick test_stamp_flat_vs_fresh_scaling;
          Alcotest.test_case "COW preserves image" `Quick test_stamp_cow_preserves_frozen_image;
          Alcotest.test_case "discard" `Quick test_discard_releases_image;
          Alcotest.test_case "duplicate name" `Quick test_duplicate_freeze_name_refused;
        ] );
      ( "grants",
        [ Alcotest.test_case "identity + limits" `Quick test_stamp_identity_and_limits ] );
      ( "faults",
        [
          Alcotest.test_case "freeze crash" `Quick test_fault_during_freeze_leaves_no_image;
          Alcotest.test_case "stamp crash" `Quick test_fault_during_stamp_image_pristine;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "From_pool restamps" `Quick test_from_pool_child_restamps;
          Alcotest.test_case "pooled quarantine shorter" `Quick
            test_from_pool_quarantine_is_shorter;
        ] );
      ( "observability",
        [ Alcotest.test_case "metrics + trace" `Quick test_pool_metrics_and_trace ] );
    ]
