(* Crowbar tests: cb-log tracing (backtraces, allocation-site attribution),
   the three cb-analyze query types, policy suggestion, the sthread
   emulation library, and the complete partitioning workflow the paper
   describes — trace a monolithic run, ask Crowbar what a compartment
   needs, build the policy, and watch the default-deny sthread run clean. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Prot = Wedge_kernel.Prot
module Process = Wedge_kernel.Process
module Instr = Wedge_sim.Instr
module Tag = Wedge_mem.Tag
module W = Wedge_core.Wedge
module Backtrace = Wedge_crowbar.Backtrace
module Trace = Wedge_crowbar.Trace
module Cb_log = Wedge_crowbar.Cb_log
module Cb_analyze = Wedge_crowbar.Cb_analyze
module Emulation = Wedge_crowbar.Emulation

let check = Alcotest.check

let mk_app () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  W.boot app;
  (k, app, W.main_ctx app)

(* A little monolithic "application" with a call tree:
     session_handler
       -> parse_input   (reads the input tag, writes heap scratch)
       -> render_reply  (reads heap scratch, writes the output tag)
   plus an unrelated function [bystander] that touches a third tag. *)
let workload ctx ~input_tag ~output_tag ~secret_tag =
  let input = W.smalloc ctx 64 input_tag in
  W.write_string ctx input "GET /index";
  let output = W.smalloc ctx 128 output_tag in
  let secret = W.smalloc ctx 32 secret_tag in
  W.write_string ctx secret "the private key";
  let scratch = ref 0 in
  let fn name f = W.in_function ctx ~name ~file:"app.ml" ~line:1 f in
  fn "session_handler" (fun () ->
      fn "parse_input" (fun () ->
          let s = W.read_string ctx input 10 in
          scratch := W.malloc ctx 32;
          W.write_string ctx !scratch (String.uppercase_ascii s));
      fn "render_reply" (fun () ->
          let s = W.read_string ctx !scratch 10 in
          W.write_string ctx output ("reply:" ^ s)));
  fn "bystander" (fun () -> ignore (W.read_string ctx secret 15));
  (input, output, !scratch)

let traced_workload () =
  let _, _, main = mk_app () in
  let input_tag = W.tag_new ~name:"input" main in
  let output_tag = W.tag_new ~name:"output" main in
  let secret_tag = W.tag_new ~name:"secret" main in
  let log = Cb_log.create () in
  W.set_instr main (Cb_log.instr log);
  let addrs = workload main ~input_tag ~output_tag ~secret_tag in
  W.set_instr main Instr.null;
  (Cb_log.trace log, input_tag, output_tag, secret_tag, addrs)

(* ---------- backtrace ---------- *)

let test_backtrace_stack () =
  let bt = Backtrace.create () in
  Backtrace.push bt { Backtrace.fn = "a"; file = "f"; line = 1 };
  Backtrace.push bt { Backtrace.fn = "b"; file = "f"; line = 2 };
  check Alcotest.int "depth" 2 (Backtrace.depth bt);
  check Alcotest.bool "in scope" true (Backtrace.in_scope bt ~fn:"a");
  (match Backtrace.current bt with
  | { Backtrace.fn = "b"; _ } :: _ -> ()
  | _ -> Alcotest.fail "innermost first");
  Backtrace.pop bt;
  check Alcotest.bool "popped" false (Backtrace.in_scope bt ~fn:"b")

(* ---------- cb-log ---------- *)

let test_trace_attributes_accesses () =
  let tr, input_tag, _, _, (input, _, _) = traced_workload () in
  check Alcotest.bool "has accesses" true (Trace.access_count tr > 0);
  (* The read of the input buffer is attributed to parse_input under
     session_handler, in the input tag's smalloc'd segment. *)
  let hit =
    Array.exists
      (fun (a : Trace.access) ->
        a.Trace.a_addr = input
        && a.Trace.a_mode = Trace.Read
        && (match a.Trace.a_seg with
           | Some s -> s.Trace.kind = Trace.Tagged input_tag.Tag.id
           | None -> false)
        && List.exists (fun f -> f.Backtrace.fn = "parse_input") a.Trace.a_bt
        && List.exists (fun f -> f.Backtrace.fn = "session_handler") a.Trace.a_bt)
      (Trace.accesses tr)
  in
  check Alcotest.bool "input read fully attributed" true hit

let test_trace_heap_alloc_site () =
  let tr, _, _, _, (_, _, scratch) = traced_workload () in
  match Trace.find_segment tr scratch with
  | Some seg ->
      check Alcotest.bool "heap kind" true (seg.Trace.kind = Trace.Heap);
      check Alcotest.bool "alloc site records parse_input" true
        (List.exists (fun f -> f.Backtrace.fn = "parse_input") seg.Trace.alloc_bt)
  | None -> Alcotest.fail "scratch segment not found"

let test_trace_offsets () =
  let tr, _, output_tag, _, (_, output, _) = traced_workload () in
  ignore output_tag;
  let writes =
    Array.to_list (Trace.accesses tr)
    |> List.filter (fun (a : Trace.access) ->
           a.Trace.a_mode = Trace.Write && a.Trace.a_addr = output)
  in
  match writes with
  | a :: _ -> check Alcotest.bool "offset within segment" true (a.Trace.a_off >= 0)
  | [] -> Alcotest.fail "no write to output"

let test_free_retires_segment () =
  let _, _, main = mk_app () in
  let tag = W.tag_new ~name:"t" main in
  let log = Cb_log.create () in
  W.set_instr main (Cb_log.instr log);
  let p = W.smalloc main 32 tag in
  W.sfree main p;
  let q = W.smalloc main 32 tag in
  W.write_u8 main q 1;
  W.set_instr main Instr.null;
  let tr = Cb_log.trace log in
  (* The write to q attributes to the NEW segment, not the freed one. *)
  match Trace.find_segment tr q with
  | Some seg -> check Alcotest.bool "live segment" true seg.Trace.live
  | None -> Alcotest.fail "no segment"

(* ---------- cb-analyze ---------- *)

let test_query1_includes_descendants () =
  let tr, input_tag, output_tag, secret_tag, _ = traced_workload () in
  let items = Cb_analyze.items_used_by tr ~fn:"session_handler" in
  let kinds = List.map (fun ir -> ir.Cb_analyze.ir_segment.Trace.kind) items in
  check Alcotest.bool "input tag (read in descendant)" true
    (List.exists (fun k -> k = Trace.Tagged input_tag.Tag.id) kinds);
  check Alcotest.bool "output tag" true
    (List.exists (fun k -> k = Trace.Tagged output_tag.Tag.id) kinds);
  check Alcotest.bool "heap scratch" true (List.mem Trace.Heap kinds);
  check Alcotest.bool "secret NOT included" false
    (List.exists (fun k -> k = Trace.Tagged secret_tag.Tag.id) kinds)

let test_query1_modes () =
  let tr, input_tag, output_tag, _, _ = traced_workload () in
  let items = Cb_analyze.items_used_by tr ~fn:"session_handler" in
  let find k = List.find_opt (fun ir -> ir.Cb_analyze.ir_segment.Trace.kind = k) items in
  (match find (Trace.Tagged input_tag.Tag.id) with
  | Some ir ->
      check Alcotest.bool "input read-only" true
        (ir.Cb_analyze.ir_reads > 0 && ir.Cb_analyze.ir_writes = 0)
  | None -> Alcotest.fail "input missing");
  match find (Trace.Tagged output_tag.Tag.id) with
  | Some ir -> check Alcotest.bool "output written" true (ir.Cb_analyze.ir_writes > 0)
  | None -> Alcotest.fail "output missing"

let test_query2_procedures_for_data () =
  let tr, _, _, secret_tag, _ = traced_workload () in
  let secret_segs =
    List.filter
      (fun s -> s.Trace.kind = Trace.Tagged secret_tag.Tag.id)
      (Trace.segments tr)
  in
  let procs = Cb_analyze.procedures_using tr ~segments:secret_segs in
  let names = List.map (fun p -> p.Cb_analyze.pr_fn) procs in
  check Alcotest.bool "bystander found" true (List.mem "bystander" names);
  check Alcotest.bool "parse_input not implicated" false (List.mem "parse_input" names)

let test_query3_write_sites () =
  let tr, input_tag, output_tag, _, _ = traced_workload () in
  let items = Cb_analyze.writes_of tr ~fn:"render_reply" in
  let kinds = List.map (fun ir -> ir.Cb_analyze.ir_segment.Trace.kind) items in
  check Alcotest.bool "writes to output tag" true
    (List.exists (fun k -> k = Trace.Tagged output_tag.Tag.id) kinds);
  check Alcotest.bool "no writes to input" false
    (List.exists (fun k -> k = Trace.Tagged input_tag.Tag.id) kinds)

(* Queries 2 and 3 across a compartment boundary: a worker sthread calls a
   callgate whose entry runs under its own frame.  The gate ctx inherits
   the caller's cb-log instrumentation and the backtrace is shared, so the
   gate's accesses nest as descendants of the worker's call site. *)
let traced_gate_workload () =
  let _, _, main = mk_app () in
  let arg_tag = W.tag_new ~name:"g.arg" main in
  let vault_tag = W.tag_new ~name:"g.vault" main in
  let log = Cb_log.create () in
  W.set_instr main (Cb_log.instr log);
  let arg = W.smalloc main 16 arg_tag in
  let vault = W.smalloc main 16 vault_tag in
  W.write_u8 main arg 7;
  let worker_sc = W.sc_create () in
  W.sc_mem_add worker_sc arg_tag Prot.RW;
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc vault_tag Prot.RW;
  let gate =
    W.sc_cgate_add main worker_sc ~name:"vault_gate"
      ~entry:(fun gctx ~trusted:_ ~arg ->
        W.in_function gctx ~name:"gate_entry" (fun () ->
            let v = W.read_u8 gctx arg in
            W.write_u8 gctx vault v;
            v))
      ~cgsc ~trusted:0
  in
  let h =
    W.sthread_create main worker_sc
      (fun ctx _ ->
        W.in_function ctx ~name:"worker_fn" (fun () ->
            W.write_u8 ctx arg 9;
            let perms = W.sc_create () in
            W.sc_mem_add perms arg_tag Prot.R;
            W.cgate ctx gate ~perms ~arg))
      0
  in
  ignore (W.sthread_join main h);
  W.set_instr main Instr.null;
  check Alcotest.bool "workload ran clean" true (W.handle_status h = Process.Exited 0);
  (Cb_log.trace log, arg_tag, vault_tag)

let test_query2_nested_gate_attribution () =
  let tr, _, vault_tag = traced_gate_workload () in
  let vault_segs =
    List.filter (fun s -> s.Trace.kind = Trace.Tagged vault_tag.Tag.id) (Trace.segments tr)
  in
  let procs = Cb_analyze.procedures_using tr ~segments:vault_segs in
  let names = List.map (fun p -> p.Cb_analyze.pr_fn) procs in
  (* The innermost toucher of the vault is the gate's entry, not the
     worker function that merely invoked the gate. *)
  check Alcotest.bool "gate_entry implicated" true (List.mem "gate_entry" names);
  check Alcotest.bool "worker_fn not the innermost toucher" false
    (List.mem "worker_fn" names)

let test_query3_nested_gate_descendants () =
  let tr, arg_tag, vault_tag = traced_gate_workload () in
  let kinds_written_by fn =
    List.map
      (fun ir -> ir.Cb_analyze.ir_segment.Trace.kind)
      (Cb_analyze.writes_of tr ~fn)
  in
  (* From the worker's vantage the gate is a descendant: its vault write
     is attributed to worker_fn's subtree alongside the direct arg write. *)
  let from_worker = kinds_written_by "worker_fn" in
  check Alcotest.bool "worker subtree writes arg" true
    (List.exists (fun k -> k = Trace.Tagged arg_tag.Tag.id) from_worker);
  check Alcotest.bool "worker subtree writes vault (through the gate)" true
    (List.exists (fun k -> k = Trace.Tagged vault_tag.Tag.id) from_worker);
  (* From the gate's vantage only the vault is written: the arg write
     happened before the gate was entered. *)
  let from_gate = kinds_written_by "gate_entry" in
  check Alcotest.bool "gate writes vault" true
    (List.exists (fun k -> k = Trace.Tagged vault_tag.Tag.id) from_gate);
  check Alcotest.bool "gate does not write arg" false
    (List.exists (fun k -> k = Trace.Tagged arg_tag.Tag.id) from_gate)

let test_overapproximation_is_superset () =
  let tr, _, _, _, _ = traced_workload () in
  let per_fn = Cb_analyze.suggest_policy tr ~fn:"session_handler" in
  let everything = Cb_analyze.overapproximate tr in
  check Alcotest.bool "static superset strictly larger" true
    (List.length everything > List.length per_fn);
  List.iter
    (fun s ->
      check Alcotest.bool "contained" true
        (List.exists (fun s' -> s'.Cb_analyze.s_kind = s.Cb_analyze.s_kind) everything))
    per_fn

let test_save_load_roundtrip () =
  let tr, input_tag, _, _, _ = traced_workload () in
  let path = Filename.temp_file "wedge" ".cblog" in
  Trace.save tr path;
  (match Trace.load path with
  | Error e -> Alcotest.fail e
  | Ok tr2 ->
      check Alcotest.int "access count" (Trace.access_count tr) (Trace.access_count tr2);
      check Alcotest.int "segment count"
        (List.length (Trace.segments tr))
        (List.length (Trace.segments tr2));
      (* Queries give identical answers on the reloaded trace. *)
      let items t = Cb_analyze.items_used_by t ~fn:"session_handler" in
      check Alcotest.int "query results match" (List.length (items tr)) (List.length (items tr2));
      let kinds t = List.map (fun ir -> ir.Cb_analyze.ir_segment.Trace.kind) (items t) in
      check Alcotest.bool "input tag present after reload" true
        (List.exists (fun k -> k = Trace.Tagged input_tag.Tag.id) (kinds tr2)));
  Sys.remove path

let test_save_load_escaping () =
  (* Names with spaces, pipes and newlines survive the text format. *)
  let tr = Trace.create () in
  let bt = [ { Backtrace.fn = "we|ird fn"; file = "a b.ml"; line = 3 } ] in
  ignore (Trace.add_segment tr ~base:4096 ~len:64 ~kind:(Trace.Global "g|1 x\n") ~bt);
  Trace.record tr ~addr:4100 ~len:4 ~mode:Trace.Write ~bt;
  let path = Filename.temp_file "wedge" ".cblog" in
  Trace.save tr path;
  (match Trace.load path with
  | Error e -> Alcotest.fail e
  | Ok tr2 -> (
      match Trace.segments tr2 with
      | [ s ] ->
          check Alcotest.bool "kind survived" true (s.Trace.kind = Trace.Global "g|1 x\n");
          (match (Trace.accesses tr2).(0).Trace.a_bt with
          | [ f ] -> check Alcotest.string "frame fn survived" "we|ird fn" f.Backtrace.fn
          | _ -> Alcotest.fail "bt lost")
      | _ -> Alcotest.fail "segment lost"));
  Sys.remove path

let test_load_rejects_garbage () =
  let path = Filename.temp_file "wedge" ".cblog" in
  let oc = open_out path in
  output_string oc "S not a valid line | x\n";
  close_out oc;
  (match Trace.load path with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  Sys.remove path

let test_merge_traces () =
  let tr1, _, _, _, _ = traced_workload () in
  let tr2, _, _, _, _ = traced_workload () in
  let merged = Trace.merge [ tr1; tr2 ] in
  check Alcotest.int "accesses add up"
    (Trace.access_count tr1 + Trace.access_count tr2)
    (Trace.access_count merged)

(* ---------- pin ---------- *)

let test_pin_translation_caching () =
  let p = Cb_log.pin () in
  let instr = Cb_log.pin_instr p in
  for _ = 1 to 100 do
    instr.Instr.on_enter "hot_fn" "f" 1;
    instr.Instr.on_exit ()
  done;
  instr.Instr.on_enter "cold_fn" "f" 2;
  instr.Instr.on_exit ();
  check Alcotest.int "two translations" 2 (Cb_log.pin_blocks_translated p);
  check Alcotest.int "101 executions" 101 (Cb_log.pin_block_executions p)

(* ---------- emulation + workflow ---------- *)

let test_emulation_logs_without_killing () =
  let _, _, main = mk_app () in
  let tag = W.tag_new ~name:"needed" main in
  let addr = W.smalloc main 16 tag in
  W.write_string main addr "hello";
  (* Policy forgot the tag entirely. *)
  let sc = W.sc_create () in
  let result, violations =
    Emulation.run main sc
      (fun ctx _ ->
        (* would fault under a real sthread; emulation lets it finish *)
        if W.read_string ctx addr 5 = "hello" then 42 else 0)
      0
  in
  check Alcotest.int "body completed" 42 result;
  check Alcotest.bool "violations logged" true (List.length violations > 0);
  match Emulation.missing_grants (W.app_of main) violations with
  | [ (t, g) ] ->
      check Alcotest.string "right tag" "needed" t.Tag.name;
      check Alcotest.bool "read grant suffices" true (g = Prot.R)
  | l -> Alcotest.failf "expected one grant, got %d" (List.length l)

let test_emulation_write_needs_rw () =
  let _, _, main = mk_app () in
  let tag = W.tag_new ~name:"w" main in
  let addr = W.smalloc main 16 tag in
  let sc = W.sc_create () in
  let _, violations =
    Emulation.run main sc
      (fun ctx _ ->
        W.write_u8 ctx addr 1;
        0)
      0
  in
  match Emulation.missing_grants (W.app_of main) violations with
  | [ (_, g) ] -> check Alcotest.bool "rw needed" true (g = Prot.RW)
  | _ -> Alcotest.fail "expected one grant"

let test_emulation_respects_partial_grants () =
  let _, _, main = mk_app () in
  let tag = W.tag_new ~name:"have" main in
  let addr = W.smalloc main 16 tag in
  W.write_string main addr "x";
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Prot.R;
  let _, violations =
    Emulation.run main sc
      (fun ctx _ ->
        ignore (W.read_u8 ctx addr);
        (* allowed *)
        W.write_u8 ctx addr 1;
        (* not allowed: R only *)
        0)
      0
  in
  check Alcotest.int "only the write violates" 1 (List.length violations)

let test_emulation_with_cblog_backtraces () =
  (* With cb-log attached, violations carry the offending backtrace. *)
  let _, _, main = mk_app () in
  let tag = W.tag_new ~name:"v" main in
  let addr = W.smalloc main 8 tag in
  let log = Cb_log.create () in
  let _, violations =
    Emulation.run ~cblog:log main (W.sc_create ())
      (fun ctx _ ->
        W.in_function ctx ~name:"offender" (fun () -> ignore (W.read_u8 ctx addr));
        0)
      0
  in
  match violations with
  | [ v ] -> (
      match v.Emulation.v_bt with
      | f :: _ -> check Alcotest.string "backtrace names the offender" "offender" f.Backtrace.fn
      | [] -> Alcotest.fail "no backtrace despite cblog")
  | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l)

let test_full_partitioning_workflow () =
  (* The end-to-end §3.4 story:
     1. run the monolithic code under cb-log;
     2. ask cb-analyze what session_handler needs;
     3. build an sc from the suggestions;
     4. the default-deny sthread now runs the same code cleanly — and
        still cannot touch the secret. *)
  let _, _, main = mk_app () in
  let input_tag = W.tag_new ~name:"input" main in
  let output_tag = W.tag_new ~name:"output" main in
  let secret_tag = W.tag_new ~name:"secret" main in
  let log = Cb_log.create () in
  W.set_instr main (Cb_log.instr log);
  let input, output, _ = workload main ~input_tag ~output_tag ~secret_tag in
  W.set_instr main Instr.null;
  let tr = Cb_log.trace log in
  (* Build the policy from Crowbar's answer. *)
  let sc = W.sc_create () in
  List.iter
    (fun s ->
      match s.Cb_analyze.s_kind with
      | Trace.Tagged id -> (
          match List.find_opt (fun t -> t.Tag.id = id) (W.live_tags (W.app_of main)) with
          | Some tag -> W.sc_mem_add sc tag s.Cb_analyze.s_grant
          | None -> ())
      | _ -> ())
    (Cb_analyze.suggest_policy tr ~fn:"session_handler");
  let secret_addr = W.smalloc main 16 secret_tag in
  W.write_string main secret_addr "shh";
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* the same handler logic, now in a compartment *)
        let s = W.read_string ctx input 10 in
        let scratch = W.malloc ctx 32 in
        W.write_string ctx scratch s;
        W.write_string ctx output ("reply:" ^ W.read_string ctx scratch 5);
        (* and the secret is out of reach *)
        match W.read_u8 ctx secret_addr with
        | _ -> 0
        | exception Wedge_kernel.Vm.Fault _ -> 7)
      0
  in
  check Alcotest.int "handler ran clean, secret denied" 7 (W.sthread_join main h);
  check Alcotest.bool "no fault" true (W.handle_status h = Process.Exited 0)

let () =
  Alcotest.run "wedge_crowbar"
    [
      ("backtrace", [ Alcotest.test_case "stack ops" `Quick test_backtrace_stack ]);
      ( "cb-log",
        [
          Alcotest.test_case "access attribution" `Quick test_trace_attributes_accesses;
          Alcotest.test_case "heap alloc site" `Quick test_trace_heap_alloc_site;
          Alcotest.test_case "offsets" `Quick test_trace_offsets;
          Alcotest.test_case "free retires segment" `Quick test_free_retires_segment;
        ] );
      ( "cb-analyze",
        [
          Alcotest.test_case "query 1: descendants" `Quick test_query1_includes_descendants;
          Alcotest.test_case "query 1: modes" `Quick test_query1_modes;
          Alcotest.test_case "query 2: procedures for data" `Quick test_query2_procedures_for_data;
          Alcotest.test_case "query 3: write sites" `Quick test_query3_write_sites;
          Alcotest.test_case "query 2: nested callgate attribution" `Quick
            test_query2_nested_gate_attribution;
          Alcotest.test_case "query 3: nested callgate descendants" `Quick
            test_query3_nested_gate_descendants;
          Alcotest.test_case "static overapproximation" `Quick test_overapproximation_is_superset;
          Alcotest.test_case "trace merging" `Quick test_merge_traces;
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "save/load escaping" `Quick test_save_load_escaping;
          Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
        ] );
      ("pin", [ Alcotest.test_case "translation caching" `Quick test_pin_translation_caching ]);
      ( "emulation",
        [
          Alcotest.test_case "logs without killing" `Quick test_emulation_logs_without_killing;
          Alcotest.test_case "write needs rw" `Quick test_emulation_write_needs_rw;
          Alcotest.test_case "partial grants respected" `Quick test_emulation_respects_partial_grants;
          Alcotest.test_case "cblog backtraces in violations" `Quick
            test_emulation_with_cblog_backtraces;
        ] );
      ( "workflow",
        [ Alcotest.test_case "trace -> suggest -> partition" `Quick test_full_partitioning_workflow ]
      );
    ]
