(* Tests for the simulation substrate: the effects-based fiber scheduler,
   the clock, stats counters and instrumentation plumbing. *)

module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Stats = Wedge_sim.Stats
module Instr = Wedge_sim.Instr
module Cost_model = Wedge_sim.Cost_model

let check = Alcotest.check

(* ---------- fibers ---------- *)

let test_fiber_runs_to_completion () =
  let log = ref [] in
  Fiber.run (fun () -> log := "main" :: !log);
  check (Alcotest.list Alcotest.string) "ran" [ "main" ] !log

let test_fiber_spawn_ordering () =
  let log = Buffer.create 32 in
  Fiber.run (fun () ->
      Buffer.add_string log "a";
      Fiber.spawn (fun () -> Buffer.add_string log "c");
      Buffer.add_string log "b";
      Fiber.yield ();
      Buffer.add_string log "d");
  check Alcotest.string "cooperative order" "abcd" (Buffer.contents log)

let test_fiber_nested_spawn () =
  let count = ref 0 in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          incr count;
          Fiber.spawn (fun () -> incr count));
      Fiber.spawn (fun () -> incr count));
  check Alcotest.int "all descendants ran" 3 !count

let test_fiber_wait_until () =
  let flag = ref false in
  let seen = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () ->
          Fiber.wait_until ~what:"flag" (fun () -> !flag);
          seen := true);
      Fiber.yield ();
      flag := true;
      Fiber.progress ());
  check Alcotest.bool "woke up" true !seen

let test_fiber_deadlock_detection () =
  match Fiber.run (fun () -> Fiber.wait_until ~what:"never" (fun () -> false)) with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock what ->
      (* The message now also names the blocked fibers; the awaited
         condition must still appear. *)
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "names the condition" true (contains what "never")

let test_fiber_exception_propagates () =
  match Fiber.run (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> check Alcotest.string "propagated" "boom" m

let test_fiber_spawn_outside_run_rejected () =
  match Fiber.spawn (fun () -> ()) with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_fiber_yield_outside_run_is_noop () =
  Fiber.yield ();
  check Alcotest.bool "no crash" true true

let test_fiber_nested_run_rejected () =
  match Fiber.run (fun () -> Fiber.run (fun () -> ())) with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_fiber_usable_after_crash () =
  (* A failed run must not poison the scheduler state. *)
  (try Fiber.run (fun () -> failwith "x") with Failure _ -> ());
  let ran = ref false in
  Fiber.run (fun () -> ran := true);
  check Alcotest.bool "second run works" true !ran

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_fiber_deadlock_message_lists_waiters () =
  (* The message must name every blocked fiber with what it awaits, so a
     wedged exploration run is diagnosable from the exception alone. *)
  match
    Fiber.run (fun () ->
        Fiber.spawn (fun () -> Fiber.wait_until ~what:"red flag" (fun () -> false));
        Fiber.spawn (fun () -> Fiber.wait_until ~what:"green flag" (fun () -> false)))
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock what ->
      check Alcotest.bool "lists first waiter" true (contains what "red flag");
      check Alcotest.bool "lists second waiter" true (contains what "green flag");
      check Alcotest.bool "names a fiber id" true (contains what "fiber")

let test_fiber_stamp_tracks_progress () =
  let s0 = ref 0 and s1 = ref 0 and s2 = ref 0 in
  check Alcotest.int "zero outside run" 0 (Fiber.stamp ());
  Fiber.run (fun () ->
      s0 := Fiber.stamp ();
      Fiber.yield ();
      (* A bare yield is not progress: the detector must see a stalled
         system through any number of idle spins. *)
      s1 := Fiber.stamp ();
      Fiber.progress ();
      s2 := Fiber.stamp ());
  check Alcotest.int "yield alone does not advance the stamp" !s0 !s1;
  check Alcotest.bool "progress advances the stamp" true (!s2 > !s1)

let test_fiber_nested_spawn_ordering_policies () =
  (* Nested spawns must run exactly once under every policy; round-robin
     additionally pins the historical FIFO order. *)
  let trace policy =
    let log = Buffer.create 32 in
    Fiber.run ~policy (fun () ->
        Fiber.spawn (fun () ->
            Buffer.add_string log "a";
            Fiber.spawn (fun () -> Buffer.add_string log "c");
            Fiber.yield ();
            Buffer.add_string log "d");
        Fiber.spawn (fun () -> Buffer.add_string log "b"));
    Buffer.contents log
  in
  check Alcotest.string "round-robin FIFO" "abcd" (trace Fiber.Round_robin);
  List.iter
    (fun policy ->
      let t = trace policy in
      check Alcotest.int "all four ran" 4 (String.length t);
      check Alcotest.string "same multiset of events" "abcd"
        (String.init 4
           (let sorted = List.sort compare [ t.[0]; t.[1]; t.[2]; t.[3] ] in
            List.nth sorted));
      (* Replayable: the same policy gives the same interleaving. *)
      check Alcotest.string "deterministic in seed" t (trace policy))
    [ Fiber.Random 42; Fiber.Pct { seed = 42; change_prob = 0.1 } ]

let test_fiber_last_decisions_replay () =
  let order policy =
    let log = Buffer.create 8 in
    Fiber.run ~policy (fun () ->
        Fiber.spawn (fun () -> Buffer.add_string log "x");
        Fiber.spawn (fun () -> Buffer.add_string log "y");
        Fiber.yield ());
    Buffer.contents log
  in
  let under_random = order (Fiber.Random 9) in
  let decisions = Fiber.last_decisions () in
  check Alcotest.bool "decisions recorded" true (Array.length decisions > 0);
  check Alcotest.string "replaying the trace reproduces the schedule"
    under_random
    (order (Fiber.Replay decisions));
  (* Decisions survive exceptional termination too. *)
  (match
     Fiber.run ~policy:(Fiber.Random 9) (fun () ->
         Fiber.spawn (fun () -> ());
         Fiber.yield ();
         failwith "boom")
   with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ ->
      check Alcotest.bool "decisions valid after a crash" true
        (Array.length (Fiber.last_decisions ()) > 0));
  check Alcotest.int "round-robin records no decisions" 0
    (Fiber.run Fiber.yield;
     Array.length (Fiber.last_decisions ()))

let test_fiber_yield_fault_injection () =
  (* An armed plan with a certain rule at "fiber.yield" kills the yielding
     fiber; other fibers keep running and the run itself completes. *)
  let plan = Wedge_fault.Fault_plan.create ~seed:3 () in
  Wedge_fault.Fault_plan.rule plan ~site:"fiber.yield" ~prob:1.0
    [ Wedge_fault.Fault_plan.Reset ];
  let survivor = ref false and victim_died = ref false in
  Fiber.run ~faults:plan (fun () ->
      Fiber.spawn (fun () ->
          match Fiber.yield () with
          | () -> ()
          | exception Wedge_fault.Fault_plan.Injected _ -> victim_died := true);
      survivor := true);
  check Alcotest.bool "yielding fiber saw the injection" true !victim_died;
  check Alcotest.bool "non-yielding fiber unaffected" true !survivor;
  (* Disarmed: yields are clean again. *)
  Wedge_fault.Fault_plan.disarm plan;
  let clean = ref false in
  Fiber.run ~faults:plan (fun () ->
      Fiber.yield ();
      clean := true);
  check Alcotest.bool "disarmed yield clean" true !clean

(* ---------- clock ---------- *)

let test_clock_accumulates () =
  let c = Clock.create () in
  Clock.charge c 5;
  Clock.charge c 7;
  check Alcotest.int "sum" 12 (Clock.now c);
  Clock.reset c;
  check Alcotest.int "reset" 0 (Clock.now c)

let test_clock_time_scopes () =
  let c = Clock.create () in
  Clock.charge c 100;
  let v, dt = Clock.time c (fun () -> Clock.charge c 42; "x") in
  check Alcotest.string "value" "x" v;
  check Alcotest.int "delta only" 42 dt

(* ---------- stats ---------- *)

let test_stats () =
  let s = Stats.create () in
  Stats.bump s "a";
  Stats.bump s "a";
  Stats.add s "b" 5;
  check Alcotest.int "a" 2 (Stats.get s "a");
  check Alcotest.int "b" 5 (Stats.get s "b");
  check Alcotest.int "missing" 0 (Stats.get s "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted" [ ("a", 2); ("b", 5) ] (Stats.to_list s);
  Stats.reset s;
  check Alcotest.int "reset" 0 (Stats.get s "a")

(* ---------- instr ---------- *)

let test_instr_null_is_identified () =
  check Alcotest.bool "null" true (Instr.is_null Instr.null);
  let other = { Instr.null with Instr.on_exit = (fun () -> ()) } in
  check Alcotest.bool "non-null" false (Instr.is_null other)

let test_instr_scoped_balances_on_exception () =
  let depth = ref 0 in
  let instr =
    {
      Instr.null with
      Instr.on_enter = (fun _ _ _ -> incr depth);
      on_exit = (fun () -> decr depth);
    }
  in
  (try Instr.scoped instr ~name:"f" ~file:"x" ~line:1 (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "balanced after raise" 0 !depth;
  let v = Instr.scoped instr ~name:"g" ~file:"x" ~line:1 (fun () -> 9) in
  check Alcotest.int "returns value" 9 v;
  check Alcotest.int "balanced" 0 !depth

let test_cost_model_free_is_zero () =
  let open Cost_model in
  check Alcotest.int "trap" 0 free.syscall_trap;
  check Alcotest.int "rsa" 0 free.rsa_private_op;
  check Alcotest.bool "default nonzero" true (default.syscall_trap > 0)

let () =
  Alcotest.run "wedge_sim"
    [
      ( "fiber",
        [
          Alcotest.test_case "runs to completion" `Quick test_fiber_runs_to_completion;
          Alcotest.test_case "spawn ordering" `Quick test_fiber_spawn_ordering;
          Alcotest.test_case "nested spawn" `Quick test_fiber_nested_spawn;
          Alcotest.test_case "wait_until" `Quick test_fiber_wait_until;
          Alcotest.test_case "deadlock detection" `Quick test_fiber_deadlock_detection;
          Alcotest.test_case "exception propagates" `Quick test_fiber_exception_propagates;
          Alcotest.test_case "spawn outside run" `Quick test_fiber_spawn_outside_run_rejected;
          Alcotest.test_case "yield outside run" `Quick test_fiber_yield_outside_run_is_noop;
          Alcotest.test_case "nested run rejected" `Quick test_fiber_nested_run_rejected;
          Alcotest.test_case "usable after crash" `Quick test_fiber_usable_after_crash;
          Alcotest.test_case "deadlock message lists waiters" `Quick
            test_fiber_deadlock_message_lists_waiters;
          Alcotest.test_case "stamp tracks progress" `Quick test_fiber_stamp_tracks_progress;
          Alcotest.test_case "nested spawn ordering per policy" `Quick
            test_fiber_nested_spawn_ordering_policies;
          Alcotest.test_case "last_decisions replay" `Quick test_fiber_last_decisions_replay;
          Alcotest.test_case "yield fault injection" `Quick test_fiber_yield_fault_injection;
        ] );
      ( "clock",
        [
          Alcotest.test_case "accumulates" `Quick test_clock_accumulates;
          Alcotest.test_case "time scopes" `Quick test_clock_time_scopes;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats ]);
      ( "instr",
        [
          Alcotest.test_case "null identified" `Quick test_instr_null_is_identified;
          Alcotest.test_case "scoped balances" `Quick test_instr_scoped_balances_on_exception;
          Alcotest.test_case "cost models" `Quick test_cost_model_free_is_zero;
        ] );
    ]
