(* Tests for the benchmark measurement helpers: the shared percentile
   rank (the one hoisted out of the per-bench copies) and the seeded
   long-tailed request mix — the machinery whose earlier per-bench
   duplicates let a uniform request shape hide p99 == p50. *)

let check = Alcotest.check

(* ---------- percentile ---------- *)

let test_percentile_empty_and_singleton () =
  check Alcotest.int "empty list is 0" 0 (Bench_util.percentile [] 0.99);
  check Alcotest.int "singleton p50" 42 (Bench_util.percentile [ 42 ] 0.50);
  check Alcotest.int "singleton p999" 42 (Bench_util.percentile [ 42 ] 0.999)

(* Nearest-rank on a sorted list: idx = ceil(p * (n-1)), clamped.  Pin
   the boundaries so a reimplementation cannot silently shift ranks. *)
let test_percentile_rank_boundaries () =
  let l = List.init 10 (fun i -> (i + 1) * 10) in
  check Alcotest.int "p0 is the minimum" 10 (Bench_util.percentile l 0.0);
  check Alcotest.int "p50 of 10 samples" 60 (Bench_util.percentile l 0.50);
  check Alcotest.int "p99 of 10 samples" 100 (Bench_util.percentile l 0.99);
  check Alcotest.int "p100 is the maximum" 100 (Bench_util.percentile l 1.0);
  (* 100 samples: p99 must not clamp to the max prematurely. *)
  let big = List.init 100 (fun i -> i) in
  check Alcotest.int "p99 of 100 samples" 99 (Bench_util.percentile big 0.99);
  check Alcotest.int "p50 of 100 samples" 50 (Bench_util.percentile big 0.50)

(* ---------- skewed request mix ---------- *)

let count label shapes =
  Array.fold_left
    (fun acc s -> if Bench_util.shape_label s = label then acc + 1 else acc)
    0 shapes

let test_skewed_classes_deterministic () =
  let a = Bench_util.skewed_classes ~seed:17 ~n:256 in
  let b = Bench_util.skewed_classes ~seed:17 ~n:256 in
  check Alcotest.bool "same seed, same mix" true (a = b);
  let c = Bench_util.skewed_classes ~seed:18 ~n:256 in
  check Alcotest.bool "different seed, different order" true (a <> c);
  (* Same strata even when the order differs. *)
  List.iter
    (fun label ->
      check Alcotest.int ("stratum preserved: " ^ label) (count label a)
        (count label c))
    [ "small"; "medium"; "large" ]

let test_skewed_classes_stratification () =
  let m = Bench_util.skewed_classes ~seed:3 ~n:100 in
  check Alcotest.int "1% large" 1 (count "large" m);
  check Alcotest.int "9% medium" 9 (count "medium" m);
  check Alcotest.int "90% small" 90 (count "small" m);
  (* Tiny populations still get a tail: at least one large, at least
     two medium requests — this is exactly what makes p99 > p50. *)
  let tiny = Bench_util.skewed_classes ~seed:3 ~n:10 in
  check Alcotest.int "tiny mix keeps a large" 1 (count "large" tiny);
  check Alcotest.int "tiny mix keeps mediums" 2 (count "medium" tiny);
  check Alcotest.int "rest small" 7 (count "small" tiny)

let test_shape_sizes () =
  check Alcotest.int "small is 64 B" 64 (Bench_util.shape_bytes Bench_util.shape_small);
  check Alcotest.int "medium is 512 B" 512
    (Bench_util.shape_bytes Bench_util.shape_medium);
  check Alcotest.int "large is 4 KiB" 4096
    (Bench_util.shape_bytes Bench_util.shape_large)

let () =
  Alcotest.run "bench_util"
    [
      ( "percentile",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_percentile_empty_and_singleton;
          Alcotest.test_case "rank boundaries" `Quick test_percentile_rank_boundaries;
        ] );
      ( "skewed mix",
        [
          Alcotest.test_case "deterministic" `Quick test_skewed_classes_deterministic;
          Alcotest.test_case "stratification" `Quick test_skewed_classes_stratification;
          Alcotest.test_case "shape sizes" `Quick test_shape_sizes;
        ] );
    ]
