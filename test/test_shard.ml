(* Tests for the sharded multikernel fabric: stable connection routing,
   the cross-shard TLB-shootdown protocol behind global tag deletion,
   the cluster-wide oracle sweep, and digest-stable schedule exploration
   of the sharded server scenarios. *)

module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot
module Kernel = Wedge_kernel.Kernel
module Process = Wedge_kernel.Process
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Fiber = Wedge_sim.Fiber
module Shard = Wedge_net.Shard
module W = Wedge_core.Wedge
module Oracle = Wedge_check.Oracle
module Explore = Wedge_check.Explore

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Run [f fab] as the main fiber of an [n]-shard world, with the fabric
   pump as the scheduler's idle handler (as every sharded scenario and
   bench does). *)
let with_fabric n f =
  let fab = Shard.make ~n () in
  Fiber.run ~on_switch:(Shard.hook fab) ~on_idle:(Shard.idle fab) (fun () ->
      Shard.start fab;
      f fab;
      Shard.stop fab);
  fab

let xshoot_stat fab sid =
  Stats.get (Shard.shard fab sid).Shard.kernel.Kernel.stats "tlb.cross_shard_shootdown"

(* ---------- connection routing ---------- *)

(* FNV-1a is part of the wire contract: a key's shard assignment must
   never move across runs, hosts or versions, or a rolling restart
   would re-home every connection.  Pin exact values. *)
let test_shard_hash_pinned () =
  List.iter
    (fun (key, want) -> check Alcotest.int key want (Shard.shard_hash key))
    [
      ("alice", 2267157479);
      ("bob", 2261164244);
      ("carol", 1728614162);
      ("dave", 3496789471);
    ];
  let mod_pattern n =
    List.init 8 (fun i -> Shard.shard_hash (Printf.sprintf "conn-%d" i) mod n)
  in
  check (Alcotest.list Alcotest.int) "conn-0..7 over 2 shards"
    [ 0; 1; 0; 1; 0; 1; 0; 1 ] (mod_pattern 2);
  check (Alcotest.list Alcotest.int) "conn-0..7 over 4 shards"
    [ 2; 1; 0; 3; 2; 1; 0; 3 ] (mod_pattern 4)

let test_route_deterministic_and_covering () =
  let fab = Shard.make ~n:4 () in
  let seen = Array.make 4 0 in
  for i = 0 to 99 do
    let key = Printf.sprintf "conn-%d" i in
    let sid = Shard.route fab ~key in
    check Alcotest.int ("route is hash mod n for " ^ key)
      (Shard.shard_hash key mod 4) sid;
    check Alcotest.int ("route is stable for " ^ key) sid (Shard.route fab ~key);
    seen.(sid) <- seen.(sid) + 1
  done;
  Array.iteri
    (fun sid n ->
      check Alcotest.bool (Printf.sprintf "shard %d gets traffic" sid) true (n > 0))
    seen

(* ---------- cross-shard revocation ---------- *)

(* The tentpole safety property: deleting a global tag from ANY shard
   must revoke every remote replica before the delete returns.  The
   stale-TLB window is a recycled callgate on shard 1 (its pooled
   sthread keeps mappings between invocations); after a delete issued
   on shard 0, re-invocation must fault (join -1), never read stale
   frames. *)
let test_cross_shard_revocation () =
  let fab =
    with_fabric 2 (fun fab ->
        let s1 = Shard.shard fab 1 in
        let main1 = W.main_ctx s1.Shard.app in
        let g = Shard.gtag_new ~name:"secret" ~pages:1 fab in
        let r1 = Shard.replica g ~sid:1 in
        let addr = W.smalloc main1 16 r1 in
        W.write_string main1 addr "per-conn secret!";
        let sc = W.sc_create () in
        let cgsc = W.sc_create () in
        W.sc_mem_add cgsc r1 Prot.R;
        let gate =
          W.sc_cgate_add ~recycled:true main1 sc ~name:"peek"
            ~entry:(fun gctx ~trusted:_ ~arg:_ -> W.read_u8 gctx addr)
            ~cgsc ~trusted:0
        in
        let invoke () =
          W.sthread_join main1
            (W.sthread_create main1 sc
               (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0)
               0)
        in
        check Alcotest.int "live replica readable through the gate"
          (Char.code 'p') (invoke ());
        check Alcotest.bool "gtag live before delete" true (Shard.gtag_live g);
        Shard.gtag_delete fab ~sid:0 g;
        check Alcotest.bool "gtag dead after delete" false (Shard.gtag_live g);
        check Alcotest.int "stale replica faults after global revocation" (-1)
          (invoke ()))
  in
  check Alcotest.int "one cross-shard shootdown" 1
    (Shard.cross_shard_shootdowns fab);
  check Alcotest.int "charged to the remote shard" 1 (xshoot_stat fab 1);
  check Alcotest.int "deleting shard pays no cross-shard stat" 0 (xshoot_stat fab 0);
  check (Alcotest.option Alcotest.string) "fabric self_check clean" None
    (Shard.self_check fab)

(* Every delete broadcasts to the n-1 peers, whichever shard issues it. *)
let test_shootdown_fan_out_n4 () =
  let fab =
    with_fabric 4 (fun fab ->
        let g1 = Shard.gtag_new ~name:"g1" ~pages:1 fab in
        Shard.gtag_delete fab ~sid:0 g1;
        let g2 = Shard.gtag_new ~name:"g2" ~pages:1 fab in
        Shard.gtag_delete fab ~sid:2 g2)
  in
  check Alcotest.int "two deletes x three peers" 6
    (Shard.cross_shard_shootdowns fab);
  (* Delete from 0 hits 1,2,3; delete from 2 hits 0,1,3. *)
  List.iter
    (fun (sid, want) ->
      check Alcotest.int (Printf.sprintf "shard %d shootdowns" sid) want
        (xshoot_stat fab sid))
    [ (0, 1); (1, 2); (2, 1); (3, 2) ];
  check (Alcotest.option Alcotest.string) "fabric self_check clean" None
    (Shard.self_check fab)

(* ---------- cluster-wide oracle sweep ---------- *)

let test_global_sweep_labels_shard () =
  let mk shard =
    let k = Kernel.create ~costs:Cost_model.free ~shard () in
    let p =
      Kernel.new_process k ~kind:Process.Main ~uid:0 ~root:"/" ~sid:"sys" ()
    in
    Vm.map_fresh p.Process.vm ~addr:0x10000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
    (k, p, Oracle.create k)
  in
  let _, _, o0 = mk 0 in
  let k1, p1, o1 = mk 1 in
  Oracle.global_sweep [ o0; o1 ];
  (* Leak a reference behind shard 1's kernel: the sweep must fail and
     say which shard's ground truth diverged. *)
  (match Pagetable.find (Vm.page_table p1.Process.vm) ~vpn:(0x10000 / Physmem.page_size) with
  | Some pte -> Physmem.incref k1.Kernel.pm pte.Pagetable.frame
  | None -> Alcotest.fail "page vanished");
  match Oracle.global_sweep [ o0; o1 ] with
  | () -> Alcotest.fail "global sweep missed the leaked reference"
  | exception Oracle.Violation msg ->
      check Alcotest.bool "violation names shard 1" true (contains msg "shard 1");
      check Alcotest.bool "violation names refcounts" true (contains msg "refcount")

(* ---------- schedule exploration ---------- *)

(* The sharded httpd scenario under 25 independently seeded schedules:
   a clean sweep, and the digest — a hash over every schedule's summary
   line — must reproduce exactly, or scenario summaries picked up
   schedule-dependent noise (the property replay depends on). *)
let test_explore_httpd_sharded_digest_stable () =
  let run () =
    match Explore.explore ~schedules:25 ~scenario:"httpd_sharded" ~seed:5 () with
    | Explore.Passed { p_schedules; p_digest } ->
        check Alcotest.int "all schedules ran" 25 p_schedules;
        p_digest
    | Explore.Failed { x_exn; _ } ->
        Alcotest.fail ("httpd_sharded failed under exploration: " ^ x_exn)
  in
  let d1 = run () in
  let d2 = run () in
  check Alcotest.string "digest reproduces across explorations" d1 d2

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [
          Alcotest.test_case "hash pinned" `Quick test_shard_hash_pinned;
          Alcotest.test_case "route deterministic + covering" `Quick
            test_route_deterministic_and_covering;
        ] );
      ( "revocation",
        [
          Alcotest.test_case "cross-shard shootdown" `Quick test_cross_shard_revocation;
          Alcotest.test_case "fan-out at n=4" `Quick test_shootdown_fan_out_n4;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "global sweep labels the shard" `Quick
            test_global_sweep_labels_shard;
        ] );
      ( "explore",
        [
          Alcotest.test_case "httpd_sharded 25-schedule digest" `Slow
            test_explore_httpd_sharded_digest_stable;
        ] );
    ]
