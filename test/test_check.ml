(* Tests for the correctness harness itself: the invariant oracles, the
   differential reference model, schedule exploration + shrinking, and
   pinned regressions for bugs the oracles originally surfaced. *)

module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot
module Rlimit = Wedge_kernel.Rlimit
module Kernel = Wedge_kernel.Kernel
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Fiber = Wedge_sim.Fiber
module Oracle = Wedge_check.Oracle
module Refvm = Wedge_check.Refvm
module Scenarios = Wedge_check.Scenarios
module Explore = Wedge_check.Explore

let check = Alcotest.check
let ps = Physmem.page_size

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- Oracle ---------- *)

let test_oracle_clean_on_fresh_kernel () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let o = Oracle.create k in
  Oracle.check o;
  check Alcotest.int "one check ran" 1 (Oracle.checks_run o)

let test_oracle_catches_refcount_drift () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let p = Kernel.new_process k ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" () in
  Vm.map_fresh p.Wedge_kernel.Process.vm ~addr:0x10000 ~pages:1
    ~prot:Prot.page_rw ~tag:None;
  let o = Oracle.create k in
  Oracle.check o;
  (* Leak a reference behind the kernel's back: the frame now counts 2
     holders but only 1 mapping exists. *)
  (match Pagetable.find (Vm.page_table p.Wedge_kernel.Process.vm) ~vpn:(0x10000 / ps) with
  | Some pte -> Physmem.incref k.Kernel.pm pte.Pagetable.frame
  | None -> Alcotest.fail "page vanished");
  match Oracle.check o with
  | () -> Alcotest.fail "oracle missed the leaked reference"
  | exception Oracle.Violation msg ->
      check Alcotest.bool "names refcounts" true (contains msg "refcount")

let test_oracle_catches_quota_drift () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let p =
    Kernel.new_process k ~limits:(Rlimit.create ~max_frames:8 ())
      ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" ()
  in
  let vm = p.Wedge_kernel.Process.vm in
  Vm.map_fresh vm ~addr:0x10000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  let o = Oracle.create k in
  Oracle.check o;
  (* Charge a unit for a frame that was never allocated. *)
  Rlimit.charge_frames p.Wedge_kernel.Process.limits 1;
  (match Oracle.check o with
  | () -> Alcotest.fail "oracle missed the phantom charge"
  | exception Oracle.Violation msg ->
      check Alcotest.bool "names the charge" true (contains msg "charged"));
  Rlimit.release_frames p.Wedge_kernel.Process.limits 1;
  Oracle.check o

let test_oracle_custom_invariant () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let o = Oracle.create k in
  let armed = ref false in
  Oracle.add_invariant o ~name:"never" (fun () ->
      if !armed then Some "tripped" else None);
  Oracle.check o;
  armed := true;
  match Oracle.check o with
  | () -> Alcotest.fail "custom invariant ignored"
  | exception Oracle.Violation msg ->
      check Alcotest.bool "named" true (contains msg "never")

let test_oracle_hook_stride () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let o = Oracle.create k in
  let h = Oracle.hook ~stride:3 o in
  for _ = 1 to 10 do
    h ()
  done;
  check Alcotest.int "10 switches / stride 3" 3 (Oracle.checks_run o)

(* ---------- Refvm (differential reference model) ---------- *)

let test_refvm_lockstep_clean () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let p = Kernel.new_process k ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" () in
  let vm = p.Wedge_kernel.Process.vm in
  let r = Refvm.create k in
  Refvm.arm r;
  Fun.protect ~finally:(fun () -> Refvm.disarm r) @@ fun () ->
  Vm.map_fresh vm ~addr:0x10000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u64 vm 0x10008 0x1234_5678;
  check Alcotest.int "readback" 0x1234_5678 (Vm.read_u64 vm 0x10008);
  Vm.write_bytes vm 0x10100 (Bytes.of_string "differential");
  ignore (Vm.read_bytes vm 0x10100 12);
  Vm.unmap_range vm ~addr:0x11000 ~pages:1;
  Refvm.verify r;
  check Alcotest.bool "events flowed" true (Refvm.events r > 0)

let test_refvm_catches_silent_corruption () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let p = Kernel.new_process k ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" () in
  let vm = p.Wedge_kernel.Process.vm in
  let r = Refvm.create k in
  Refvm.arm r;
  Fun.protect ~finally:(fun () -> Refvm.disarm r) @@ fun () ->
  Vm.map_fresh vm ~addr:0x10000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u64 vm 0x10000 42;
  (* Corrupt the frame behind the recorder's back — a model of a store
     that bypassed the MMU. *)
  (match Pagetable.find (Vm.page_table vm) ~vpn:(0x10000 / ps) with
  | Some pte -> Bytes.set (Physmem.get k.Kernel.pm pte.Pagetable.frame) 0 '\xff'
  | None -> Alcotest.fail "page vanished");
  match Vm.read_u64 vm 0x10000 with
  | _ -> Alcotest.fail "model agreed with corrupted bytes"
  | exception Refvm.Mismatch msg ->
      check Alcotest.bool "read diff caught" true (contains msg "read")

let test_refvm_verify_catches_drift () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let p = Kernel.new_process k ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" () in
  let vm = p.Wedge_kernel.Process.vm in
  let r = Refvm.create k in
  Refvm.arm r;
  Fun.protect ~finally:(fun () -> Refvm.disarm r) @@ fun () ->
  Vm.map_fresh vm ~addr:0x10000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  (match Pagetable.find (Vm.page_table vm) ~vpn:(0x10000 / ps) with
  | Some pte -> Bytes.set (Physmem.get k.Kernel.pm pte.Pagetable.frame) 7 'z'
  | None -> Alcotest.fail "page vanished");
  match Refvm.verify r with
  | () -> Alcotest.fail "verify missed divergent content"
  | exception Refvm.Mismatch _ -> ()

let test_refvm_cow_sharing () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let p1 = Kernel.new_process k ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" () in
  let p2 = Kernel.new_process k ~kind:Wedge_kernel.Process.Sthread ~uid:0 ~root:"/" ~sid:"sys" () in
  let v1 = p1.Wedge_kernel.Process.vm and v2 = p2.Wedge_kernel.Process.vm in
  let r = Refvm.create k in
  Refvm.arm r;
  Fun.protect ~finally:(fun () -> Refvm.disarm r) @@ fun () ->
  Vm.map_fresh v1 ~addr:0x10000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  Vm.write_u64 v1 0x10000 7;
  (* Share COW into the second space, then write in each: one break. *)
  Vm.share_range ~src:v1 ~dst:v2 ~addr:0x10000 ~pages:1 ~prot:Prot.page_cow;
  Vm.protect_range v1 ~addr:0x10000 ~pages:1 ~prot:Prot.page_cow;
  Vm.write_u64 v2 0x10000 8;
  Vm.write_u64 v1 0x10000 9;
  check Alcotest.int "v2 copy" 8 (Vm.read_u64 v2 0x10000);
  check Alcotest.int "v1 copy" 9 (Vm.read_u64 v1 0x10000);
  Refvm.verify r

(* ---------- Exploration: determinism, bug finding, shrinking ---------- *)

let test_explore_deterministic () =
  let run () =
    Explore.explore ~schedules:4 ~scenario:"pop3" ~seed:11 ()
    |> Explore.verdict_to_string
  in
  let a = run () and b = run () in
  check Alcotest.string "same seed, same digest" a b;
  check Alcotest.bool "passed" true (contains a "PASSED")

let test_explore_seed_changes_digest () =
  let digest seed =
    Explore.explore ~schedules:3 ~scenario:"pop3" ~seed ()
    |> Explore.verdict_to_string
  in
  check Alcotest.bool "different seeds explore different schedules" true
    (digest 1 <> digest 2)

let test_decision_trace_deterministic () =
  let trace seed =
    (try
       ignore
         (Scenarios.(
            match find "racy" with Some s -> s.s_run | None -> assert false)
            ~policy:(Fiber.Random seed) ~diff:false ~faults:false ~seed)
     with _ -> ());
    Fiber.last_decisions ()
  in
  check Alcotest.bool "same seed, identical decisions" true
    (trace 7 = trace 7);
  check Alcotest.bool "trace nonempty" true (Array.length (trace 7) > 0)

let test_explore_catches_and_shrinks_racy () =
  (* The deliberately racy scenario: a lost update only schedules that
     interleave a yielding read-modify-write can expose.  Round_robin
     never fires it; random exploration must, and the shrunk trace must
     still reproduce under Replay. *)
  (match
     Scenarios.(match find "racy" with Some s -> s.s_run | None -> assert false)
       ~policy:Fiber.Round_robin ~diff:false ~faults:false ~seed:1
   with
  | _ -> ()
  | exception e ->
      Alcotest.failf "racy fired under round-robin: %s" (Printexc.to_string e));
  match Explore.explore ~schedules:50 ~scenario:"racy" ~seed:7 () with
  | Explore.Passed _ -> Alcotest.fail "exploration missed the seeded race"
  | Explore.Failed { x_exn; x_confirmed; x_shrunk; x_decisions; x_repro; x_seed; _ } ->
      check Alcotest.bool "violation named" true (contains x_exn "lost update");
      check Alcotest.bool "replay-confirmed" true x_confirmed;
      check Alcotest.bool "shrunk no longer than original" true
        (Array.length x_shrunk <= Array.length x_decisions);
      check Alcotest.bool "repro names the cli" true
        (contains x_repro "wedge_cli check --scenario racy");
      check Alcotest.bool "repro pins the failing seed" true
        (contains x_repro (Printf.sprintf "--seed %d" x_seed));
      (* The minimal trace reproduces the failure on its own. *)
      (match
         Explore.replay ~faults:false ~scenario:"racy" ~seed:x_seed
           ~trace:x_shrunk ()
       with
      | _ -> Alcotest.fail "shrunk trace no longer fails"
      | exception _ -> ());
      (* And the seed alone reproduces it too (policy is pure in seed). *)
      (match Explore.explore ~schedules:1 ~scenario:"racy" ~seed:x_seed () with
      | Explore.Failed { x_index; _ } -> check Alcotest.int "same schedule index" 0 x_index
      | Explore.Passed _ -> Alcotest.fail "seed repro did not reproduce")

let test_explore_unknown_scenario_rejected () =
  match Explore.explore ~schedules:1 ~scenario:"nope" ~seed:1 () with
  | _ -> Alcotest.fail "unknown scenario accepted"
  | exception Invalid_argument msg ->
      check Alcotest.bool "lists known names" true (contains msg "racy")

(* The acceptance sweep: >= 100 schedules across the three partitioned
   servers under Byzantine clients and armed fault plans, oracles clean.
   Differential checking rides along on a subset of each. *)
let sweep scenario ~schedules ~diff_schedules =
  (match Explore.explore ~schedules ~scenario ~seed:2026 () with
  | Explore.Passed _ -> ()
  | Explore.Failed _ as v -> Alcotest.failf "%s" (Explore.verdict_to_string v));
  match Explore.explore ~schedules:diff_schedules ~diff:true ~scenario ~seed:31 () with
  | Explore.Passed _ -> ()
  | Explore.Failed _ as v -> Alcotest.failf "%s" (Explore.verdict_to_string v)

let test_sweep_pop3 () = sweep "pop3" ~schedules:35 ~diff_schedules:5
let test_sweep_httpd () = sweep "httpd" ~schedules:35 ~diff_schedules:5
let test_sweep_sshd () = sweep "sshd" ~schedules:35 ~diff_schedules:5

let test_sweep_pct_policy () =
  List.iter
    (fun scenario ->
      match Explore.explore ~schedules:8 ~policy:`Pct ~scenario ~seed:5 () with
      | Explore.Passed _ -> ()
      | Explore.Failed _ as v -> Alcotest.failf "%s" (Explore.verdict_to_string v))
    [ "pop3"; "httpd"; "sshd" ]

(* ---------- Pinned regressions the oracles originally surfaced ---------- *)

let test_regression_cow_break_no_double_charge () =
  (* A COW break of a page this address space itself allocated (fork
     downgraded it, then the owner wrote) used to charge a second quota
     unit for the same vpn; the unmap then released only one, leaving
     the rlimit permanently inflated. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  let p1 =
    Kernel.new_process k ~limits:(Rlimit.create ~max_frames:4 ())
      ~kind:Wedge_kernel.Process.Main ~uid:0 ~root:"/" ~sid:"sys" ()
  in
  let p2 = Kernel.new_process k ~kind:Wedge_kernel.Process.Sthread ~uid:0 ~root:"/" ~sid:"sys" () in
  let v1 = p1.Wedge_kernel.Process.vm in
  Vm.map_fresh v1 ~addr:0x10000 ~pages:1 ~prot:Prot.page_rw ~tag:None;
  check Alcotest.int "one unit charged" 1
    (Rlimit.frames_used p1.Wedge_kernel.Process.limits);
  Vm.share_range ~src:v1 ~dst:p2.Wedge_kernel.Process.vm ~addr:0x10000 ~pages:1
    ~prot:Prot.page_cow;
  Vm.protect_range v1 ~addr:0x10000 ~pages:1 ~prot:Prot.page_cow;
  (* Owner writes: COW break copies the shared frame — same vpn, still
     one private frame, still one unit. *)
  Vm.write_u64 v1 0x10000 1;
  check Alcotest.int "still one unit after self-COW break" 1
    (Rlimit.frames_used p1.Wedge_kernel.Process.limits);
  check Alcotest.int "one owned vpn" 1 (Vm.owned_count v1);
  Vm.unmap_range v1 ~addr:0x10000 ~pages:1;
  check Alcotest.int "released down to zero" 0
    (Rlimit.frames_used p1.Wedge_kernel.Process.limits);
  let o = Oracle.create k in
  Oracle.check o

let test_regression_failed_alloc_rolls_back_charge () =
  (* The quota charge happens before the physical allocation; when the
     allocation itself fails the charge must be rolled back, or the
     rlimit counts a frame that never existed and the unit can never be
     released (the vpn was never mapped). *)
  let pm = Physmem.create ~max_frames:2 () in
  let lim = Rlimit.create ~max_frames:100 () in
  let vm = Vm.create ~limits:lim ~pid:1 pm (Clock.create ()) Cost_model.free in
  Vm.map_fresh vm ~addr:0x10000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  check Alcotest.int "two units" 2 (Rlimit.frames_used lim);
  (match Vm.map_fresh vm ~addr:0x12000 ~pages:1 ~prot:Prot.page_rw ~tag:None with
  | () -> Alcotest.fail "expected allocation failure"
  | exception _ -> ());
  check Alcotest.int "failed alloc left no phantom charge" 2
    (Rlimit.frames_used lim);
  check Alcotest.int "owned matches mapped" 2 (Vm.owned_count vm)

(* ---------- Suite ---------- *)

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [
          Alcotest.test_case "clean on fresh kernel" `Quick test_oracle_clean_on_fresh_kernel;
          Alcotest.test_case "catches refcount drift" `Quick test_oracle_catches_refcount_drift;
          Alcotest.test_case "catches quota drift" `Quick test_oracle_catches_quota_drift;
          Alcotest.test_case "custom invariant" `Quick test_oracle_custom_invariant;
          Alcotest.test_case "hook stride" `Quick test_oracle_hook_stride;
        ] );
      ( "refvm",
        [
          Alcotest.test_case "lockstep clean" `Quick test_refvm_lockstep_clean;
          Alcotest.test_case "catches silent corruption" `Quick test_refvm_catches_silent_corruption;
          Alcotest.test_case "verify catches drift" `Quick test_refvm_verify_catches_drift;
          Alcotest.test_case "cow sharing" `Quick test_refvm_cow_sharing;
        ] );
      ( "explore",
        [
          Alcotest.test_case "deterministic" `Quick test_explore_deterministic;
          Alcotest.test_case "seed changes digest" `Quick test_explore_seed_changes_digest;
          Alcotest.test_case "decision trace deterministic" `Quick test_decision_trace_deterministic;
          Alcotest.test_case "catches and shrinks racy" `Quick test_explore_catches_and_shrinks_racy;
          Alcotest.test_case "unknown scenario rejected" `Quick test_explore_unknown_scenario_rejected;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "pop3 35+5 schedules" `Slow test_sweep_pop3;
          Alcotest.test_case "httpd 35+5 schedules" `Slow test_sweep_httpd;
          Alcotest.test_case "sshd 35+5 schedules" `Slow test_sweep_sshd;
          Alcotest.test_case "pct policy" `Slow test_sweep_pct_policy;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "cow break no double charge" `Quick
            test_regression_cow_break_no_double_charge;
          Alcotest.test_case "failed alloc rolls back charge" `Quick
            test_regression_failed_alloc_rolls_back_charge;
        ] );
    ]
