(* OpenSSH stand-in tests: the three authentication methods across the
   monolithic / privilege-separated / Wedge-partitioned servers, S/Key
   chain behaviour, scp, authentication bypass resistance, and the two
   lessons of §5.2 — the username-probing leak of classic privilege
   separation (fixed by the dummy-passwd callgate) and the PAM
   scratch-memory leak (fixed by callgate-private heaps). *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Layout = Wedge_kernel.Layout
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Attacker = Wedge_net.Attacker
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module W = Wedge_core.Wedge
module Env = Wedge_sshd.Sshd_env
module Mono = Wedge_sshd.Sshd_mono
module Privsep = Wedge_sshd.Sshd_privsep
module Wedge_d = Wedge_sshd.Sshd_wedge
module Client = Wedge_sshd.Ssh_client
module Skey = Wedge_sshd.Skey
module Pam = Wedge_sshd.Pam

let check = Alcotest.check

let mk_env () =
  let k = Kernel.create ~costs:Cost_model.free () in
  Env.install ~image_pages:80 k

type variant = VMono | VPrivsep | VWedge

let vname = function VMono -> "mono" | VPrivsep -> "privsep" | VWedge -> "wedge"

let with_conn ?exploit_w ?exploit_p env variant f =
  let result = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          match variant with
          | VMono -> Mono.serve_connection ?exploit:exploit_w env server_ep
          | VPrivsep -> Privsep.serve_connection ?exploit:exploit_p env server_ep
          | VWedge -> ignore (Wedge_d.serve_connection ?exploit:exploit_w env server_ep));
      let rng = Drbg.create ~seed:0xC0 in
      match
        Client.start ~rng ~pinned_rsa:env.Env.host_rsa.Rsa.pub
          ~pinned_dsa:env.Env.host_dsa.Wedge_crypto.Dsa.pub client_ep
      with
      | Error e -> Alcotest.fail ("kex failed: " ^ e)
      | Ok conn ->
          result := Some (f conn);
          Client.close conn);
  Option.get !result

(* ---------- functional ---------- *)

let test_password_login variant () =
  let env = mk_env () in
  let ok =
    with_conn env variant (fun c -> Client.authenticate c ~user:"alice" (Client.Password "wonderland"))
  in
  check Alcotest.bool (vname variant ^ " password login") true ok

let test_wrong_password variant () =
  let env = mk_env () in
  let ok =
    with_conn env variant (fun c -> Client.authenticate c ~user:"alice" (Client.Password "nope"))
  in
  check Alcotest.bool "rejected" false ok

let test_pubkey_login variant () =
  let env = mk_env () in
  let alice = List.hd env.Env.users in
  let ok =
    with_conn env variant (fun c ->
        Client.authenticate c ~user:"alice" (Client.Pubkey (Env.user_key alice)))
  in
  check Alcotest.bool (vname variant ^ " pubkey login") true ok

let test_pubkey_wrong_key variant () =
  let env = mk_env () in
  let bob = List.nth env.Env.users 1 in
  (* bob's key is not in alice's authorized_keys *)
  let ok =
    with_conn env variant (fun c ->
        Client.authenticate c ~user:"alice" (Client.Pubkey (Env.user_key bob)))
  in
  check Alcotest.bool "rejected" false ok

let test_skey_login variant () =
  let env = mk_env () in
  let ok =
    with_conn env variant (fun c ->
        Client.authenticate c ~user:"alice" (Client.Skey "rabbit hole"))
  in
  check Alcotest.bool (vname variant ^ " skey login") true ok

let test_skey_chain_advances variant () =
  let env = mk_env () in
  (* Two consecutive S/Key logins must use decreasing sequence numbers and
     a replayed response must fail. *)
  let seq1 =
    with_conn env variant (fun c ->
        let chal = Client.skey_challenge_for c ~user:"alice" in
        (match chal with
        | Some (seq, seed) ->
            ignore (Client.skey_answer c ~response:(Skey.respond ~passphrase:"rabbit hole" ~seed ~seq))
        | None -> ());
        chal)
  in
  let seq2 = with_conn env variant (fun c -> Client.skey_challenge_for c ~user:"alice") in
  match (seq1, seq2) with
  | Some (s1, _), Some (s2, _) ->
      check Alcotest.int "sequence decreased" (s1 - 1) s2;
      (* Replaying the old response fails now. *)
      let replay_ok =
        with_conn env variant (fun c ->
            match Client.skey_challenge_for c ~user:"alice" with
            | Some (_, seed) ->
                Client.skey_answer c
                  ~response:(Skey.respond ~passphrase:"rabbit hole" ~seed ~seq:s1)
            | None -> false)
      in
      check Alcotest.bool "replay rejected" false replay_ok
  | _ -> Alcotest.fail "no challenges"

let test_exec_requires_auth variant () =
  let env = mk_env () in
  let reply = with_conn env variant (fun c -> Client.exec c "shell") in
  check (Alcotest.option Alcotest.string) "denied pre-auth" (Some "permission denied") reply

let test_scp_upload () =
  let env = mk_env () in
  let data = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let ok =
    with_conn env VWedge (fun c ->
        if Client.authenticate c ~user:"alice" (Client.Password "wonderland") then
          Client.scp_upload c ~path:"upload.bin" ~data
        else false)
  in
  check Alcotest.bool "scp saved" true ok;
  (* The worker's root became /home/alice after authentication. *)
  let k = W.kernel env.Env.app in
  match Wedge_kernel.Vfs.read_file k.Kernel.vfs ~root:"/" ~uid:0 "/home/alice/upload.bin" with
  | Ok saved -> check Alcotest.bool "content intact" true (String.equal saved data)
  | Error _ -> Alcotest.fail "upload not found under alice's home"

let test_shell_runs_as_user () =
  let env = mk_env () in
  let reply =
    with_conn env VWedge (fun c ->
        if Client.authenticate c ~user:"alice" (Client.Password "wonderland") then
          Client.exec c "shell"
        else None)
  in
  check (Alcotest.option Alcotest.string) "uid escalated to alice" (Some "Welcome, uid 1000") reply

(* ---------- S/Key unit behaviour ---------- *)

let test_skey_chain_math () =
  let stored = Skey.chain ~passphrase:"pp" ~seed:"sd" ~count:10 in
  let resp = Skey.respond ~passphrase:"pp" ~seed:"sd" ~seq:9 in
  check Alcotest.string "H(resp) = stored" stored (Skey.hash_hex resp);
  let e = { Skey.user = "u"; seq = 10; seed = "sd"; stored } in
  (match Skey.verify e ~response:resp with
  | Some e' ->
      check Alcotest.int "seq decrements" 9 e'.Skey.seq;
      check Alcotest.string "stored replaced" resp e'.Skey.stored
  | None -> Alcotest.fail "verify failed");
  check Alcotest.bool "wrong response rejected" true (Skey.verify e ~response:"bad" = None);
  check Alcotest.bool "line roundtrip" true
    (Skey.entry_of_line (Skey.entry_to_line e) = Some e)

(* ---------- attacks ---------- *)

let test_mono_exploit_gets_hostkey_and_shadow () =
  let env = mk_env () in
  let loot = Attacker.loot_create () in
  ignore
    (with_conn env VMono
       ~exploit_w:(fun ctx ->
         (match Attacker.try_read ctx ~addr:env.Env.rsa_addr ~len:32 with
         | Ok d -> Attacker.grab loot ~label:"hostkey" d
         | Error _ -> ());
         match W.vfs_read ctx Env.shadow_path with
         | Ok d -> Attacker.grab loot ~label:"shadow" d
         | Error _ -> ())
       (fun c -> Client.exec c "xploit"));
  check Alcotest.bool "hostkey read" true (Attacker.stolen loot ~label:"hostkey" <> None);
  check Alcotest.bool "shadow read" true (Attacker.stolen loot ~label:"shadow" <> None)

let test_wedge_exploit_contained () =
  let env = mk_env () in
  let loot = Attacker.loot_create () in
  ignore
    (with_conn env VWedge
       ~exploit_w:(fun ctx ->
         (match Attacker.try_read ctx ~addr:env.Env.rsa_addr ~len:32 with
         | Ok d -> Attacker.grab loot ~label:"hostkey" d
         | Error _ -> ());
         (match W.vfs_read ctx Env.shadow_path with
         | Ok d -> Attacker.grab loot ~label:"shadow" d
         | Error _ -> ());
         match W.vfs_read ctx Env.skey_path with
         | Ok d -> Attacker.grab loot ~label:"skey" d
         | Error _ -> ())
       (fun c -> Client.exec c "xploit"));
  check Alcotest.int "nothing reachable" 0 (Attacker.count loot)

let test_wedge_exploit_cannot_selfpromote () =
  (* The worker cannot change its own uid: only the auth gates can, and
     only on success. *)
  let env = mk_env () in
  let outcome = ref `Untried in
  let debug = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          debug :=
            Some
              (Wedge_d.serve_connection
                 ~exploit:(fun ctx ->
                   match W.set_identity ctx ~target_pid:(W.pid ctx) ~uid:0 () with
                   | () -> outcome := `Promoted
                   | exception W.Privilege_violation _ -> outcome := `Denied
                   | exception Kernel.Eperm _ -> outcome := `Denied)
                 env server_ep));
      let rng = Drbg.create ~seed:0xC1 in
      (match
         Client.start ~rng ~pinned_rsa:env.Env.host_rsa.Rsa.pub
           ~pinned_dsa:env.Env.host_dsa.Wedge_crypto.Dsa.pub client_ep
       with
      | Ok conn ->
          ignore (Client.exec conn "xploit");
          (* still unauthenticated afterwards *)
          let reply = Client.exec conn "shell" in
          check (Alcotest.option Alcotest.string) "still locked out"
            (Some "permission denied") reply;
          Client.close conn
      | Error e -> Alcotest.fail e));
  check Alcotest.bool "self-promotion denied" true (!outcome = `Denied);
  match !debug with
  | Some d -> check Alcotest.int "worker ended unprivileged" 99 d.Wedge_d.final_uid
  | None -> Alcotest.fail "no debug"

(* ---------- lesson 1: username probing ---------- *)

let test_privsep_username_oracle () =
  (* An exploited privsep slave asks the monitor's getpwnam at will: the
     NULL / non-NULL distinction reveals which usernames exist (portable
     OpenSSH 4.7 behaviour). *)
  let env = mk_env () in
  let verdicts = ref [] in
  ignore
    (with_conn env VPrivsep
       ~exploit_p:(fun _ctx monitor ->
         verdicts :=
           List.map
             (fun u -> (u, monitor.Privsep.m_getpw u <> None))
             [ "alice"; "bob"; "mallory"; "eve" ])
       (fun c -> Client.exec c "xploit"));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
    "existence leaked"
    [ ("alice", true); ("bob", true); ("mallory", false); ("eve", false) ]
    !verdicts

let test_privsep_skey_leak_without_exploit () =
  (* The S/Key variant leaks over the network, no exploit needed: unknown
     users get no challenge. *)
  let env = mk_env () in
  let known, unknown =
    with_conn env VPrivsep (fun c ->
        ( Client.skey_challenge_for c ~user:"alice" <> None,
          Client.skey_challenge_for c ~user:"mallory" <> None ))
  in
  check Alcotest.bool "known user gets challenge" true known;
  check Alcotest.bool "unknown user refused (the leak)" false unknown

let test_wedge_no_username_oracle () =
  (* The Wedge gates answer identically for unknown users: the password
     gate returns the same failure, the S/Key gate issues a dummy
     challenge. *)
  let env = mk_env () in
  let wrong_pw, unknown_pw, known_chal, unknown_chal, unknown_chal2 =
    with_conn env VWedge (fun c ->
        ( Client.authenticate c ~user:"alice" (Client.Password "bad"),
          Client.authenticate c ~user:"mallory" (Client.Password "bad"),
          Client.skey_challenge_for c ~user:"alice" <> None,
          Client.skey_challenge_for c ~user:"mallory",
          Client.skey_challenge_for c ~user:"mallory" ))
  in
  check Alcotest.bool "wrong password: same verdict" true (wrong_pw = unknown_pw);
  check Alcotest.bool "known user: challenge" true known_chal;
  check Alcotest.bool "unknown user: dummy challenge too" true (unknown_chal <> None);
  check Alcotest.bool "dummy challenge is stable across probes" true
    (unknown_chal = unknown_chal2)

(* ---------- lesson 2: PAM scratch memory ---------- *)

let heap_hunt ctx needle =
  (* Scan the (inherited) heap for a cleartext password remnant. *)
  let found = ref false in
  for page = 0 to Layout.heap_pages - 1 do
    let addr = Layout.heap_base + (page * 4096) in
    match Attacker.try_read ctx ~addr ~len:4096 with
    | Ok data ->
        let nl = String.length needle and hl = String.length data in
        let rec go i = i + nl <= hl && (String.sub data i nl = needle || go (i + 1)) in
        if go 0 then found := true
    | Error _ -> ()
  done;
  !found

let test_privsep_pam_scratch_inherited () =
  let env = mk_env () in
  (* Connection 1: alice authenticates; PAM scratch lands in the monitor's
     heap. *)
  ignore
    (with_conn env VPrivsep (fun c ->
         Client.authenticate c ~user:"alice" (Client.Password "wonderland")));
  (* Connection 2: the slave forked for it inherits that heap; an exploit
     finds alice's cleartext password. *)
  let stolen = ref false in
  ignore
    (with_conn env VPrivsep
       ~exploit_p:(fun ctx _monitor -> stolen := heap_hunt ctx "wonderland")
       (fun c -> Client.exec c "xploit"));
  check Alcotest.bool "previous user's password recovered from heap" true !stolen

let test_wedge_pam_scratch_unreachable () =
  let env = mk_env () in
  ignore
    (with_conn env VWedge (fun c ->
         Client.authenticate c ~user:"alice" (Client.Password "wonderland")));
  let stolen = ref false in
  ignore
    (with_conn env VWedge
       ~exploit_w:(fun ctx -> stolen := heap_hunt ctx "wonderland")
       (fun c -> Client.exec c "xploit"));
  check Alcotest.bool "no password remnant reachable" false !stolen

(* ---------- property tests ---------- *)

let prop_skey_chain_walk =
  QCheck.Test.make ~name:"skey chain verifies all the way down" ~count:25
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 20)) (int_range 3 12))
    (fun (passphrase, n) ->
      let seed = "sd" in
      let e0 =
        { Skey.user = "u"; seq = n; seed; stored = Skey.chain ~passphrase ~seed ~count:n }
      in
      let rec walk e =
        if Skey.exhausted e then true
        else
          let seq, seed = Skey.challenge e in
          let resp = Skey.respond ~passphrase ~seed ~seq in
          (* the correct response verifies, a corrupted one does not *)
          Skey.verify e ~response:(resp ^ "x") = None
          &&
          match Skey.verify e ~response:resp with
          | Some e' -> e'.Skey.seq = e.Skey.seq - 1 && walk e'
          | None -> false
      in
      walk e0)

let msg_gen =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_range 0 40) in
  let bts = map Bytes.of_string str in
  oneof
    [
      map (fun s -> Wedge_sshd.Ssh_proto.Version s) str;
      map (fun b -> Wedge_sshd.Ssh_proto.Kexinit b) bts;
      map2 (fun u p -> Wedge_sshd.Ssh_proto.Auth_password { user = u; password = p }) str str;
      map (fun u -> Wedge_sshd.Ssh_proto.Skey_start { user = u }) str;
      map2 (fun seq seed -> Wedge_sshd.Ssh_proto.Skey_challenge { seq; seed }) (int_range 0 999) str;
      map (fun r -> Wedge_sshd.Ssh_proto.Skey_response { response = r }) str;
      map (fun ok -> Wedge_sshd.Ssh_proto.Auth_result ok) bool;
      map (fun c -> Wedge_sshd.Ssh_proto.Exec c) str;
      map (fun b -> Wedge_sshd.Ssh_proto.Data b) bts;
      return Wedge_sshd.Ssh_proto.Eof;
      return Wedge_sshd.Ssh_proto.Disconnect;
    ]

let prop_proto_roundtrip =
  QCheck.Test.make ~name:"wssh messages roundtrip through marshalling" ~count:200
    (QCheck.make msg_gen)
    (fun msg ->
      Wedge_sshd.Ssh_proto.unmarshal (Wedge_sshd.Ssh_proto.marshal msg) = Some msg)

let qcheck tests = List.map Test_rng.to_alcotest tests

let both name f = [ Alcotest.test_case (name ^ " (mono)") `Quick (f VMono);
                    Alcotest.test_case (name ^ " (privsep)") `Quick (f VPrivsep);
                    Alcotest.test_case (name ^ " (wedge)") `Quick (f VWedge) ]

let () =
  Alcotest.run "wedge_sshd"
    [
      ( "functional",
        both "password login" test_password_login
        @ both "wrong password" test_wrong_password
        @ both "pubkey login" test_pubkey_login
        @ both "pubkey wrong key" test_pubkey_wrong_key
        @ both "skey login" test_skey_login
        @ [
            Alcotest.test_case "skey chain advances (wedge)" `Quick
              (test_skey_chain_advances VWedge);
            Alcotest.test_case "skey chain advances (mono)" `Quick
              (test_skey_chain_advances VMono);
          ]
        @ both "exec requires auth" test_exec_requires_auth
        @ [
            Alcotest.test_case "scp upload" `Quick test_scp_upload;
            Alcotest.test_case "shell as user" `Quick test_shell_runs_as_user;
            Alcotest.test_case "skey chain math" `Quick test_skey_chain_math;
          ] );
      ( "attacks",
        [
          Alcotest.test_case "mono exploit gets everything" `Quick
            test_mono_exploit_gets_hostkey_and_shadow;
          Alcotest.test_case "wedge exploit contained" `Quick test_wedge_exploit_contained;
          Alcotest.test_case "no self-promotion" `Quick test_wedge_exploit_cannot_selfpromote;
        ] );
      ("properties", qcheck [ prop_skey_chain_walk; prop_proto_roundtrip ]);
      ( "lessons",
        [
          Alcotest.test_case "privsep username oracle" `Quick test_privsep_username_oracle;
          Alcotest.test_case "privsep skey leak (no exploit)" `Quick
            test_privsep_skey_leak_without_exploit;
          Alcotest.test_case "wedge: no username oracle" `Quick test_wedge_no_username_oracle;
          Alcotest.test_case "privsep PAM scratch inherited" `Quick
            test_privsep_pam_scratch_inherited;
          Alcotest.test_case "wedge PAM scratch unreachable" `Quick
            test_wedge_pam_scratch_unreachable;
        ] );
    ]
