(* Resource-governance tests: bounded channels with backpressure, listener
   backlog refusal, line-length caps, admission control under a hostile
   500-client flood, slow-loris deadlines on the simulated clock, oversized
   request rejection in the parsers, and graceful drain — in-flight
   connections finish, stragglers are force-cut, and the same seed replays
   the whole melee byte for byte. *)

module Kernel = Wedge_kernel.Kernel
module Rlimit = Wedge_kernel.Rlimit
module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Fault_plan = Wedge_fault.Fault_plan
module Chan = Wedge_net.Chan
module Lineio = Wedge_net.Lineio
module Guard = Wedge_net.Guard
module Byzantine = Wedge_net.Byzantine
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module W = Wedge_core.Wedge
module Env = Wedge_httpd.Httpd_env
module Simple = Wedge_httpd.Httpd_simple
module Http = Wedge_httpd.Http
module Client = Wedge_httpd.Https_client
module Pop3_env = Wedge_pop3.Pop3_env
module Pop3_wedge = Wedge_pop3.Pop3_wedge
module Reactor = Wedge_sim.Reactor
module Fd_table = Wedge_kernel.Fd_table
module Process = Wedge_kernel.Process

let check = Alcotest.check

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mk_pop3 ?faults () =
  let k = Kernel.create ~costs:Cost_model.free ?faults () in
  Pop3_env.install k Pop3_env.default_users;
  let app = W.create_app k in
  W.boot app;
  (k, W.main_ctx app)

(* ---------- bounded channels ---------- *)

let test_backpressure_delivers_everything () =
  let got = Buffer.create 64 in
  Fiber.run (fun () ->
      let a, b = Chan.pair ~capacity:8 () in
      check (Alcotest.option Alcotest.int) "capacity visible" (Some 8) (Chan.capacity a);
      Fiber.spawn (fun () ->
          for i = 0 to 9 do
            (* 40 bytes through an 8-byte pipe: the writer must block on
               the watermark and resume as the reader drains. *)
            Chan.write_string b (String.make 4 (Char.chr (Char.code 'a' + i)))
          done;
          Chan.close b);
      let rec rd () =
        let chunk = Chan.read a 4 in
        if Bytes.length chunk > 0 then begin
          Buffer.add_bytes got chunk;
          rd ()
        end
      in
      rd ());
  check Alcotest.int "all 40 bytes delivered" 40 (Buffer.length got);
  check Alcotest.string "in order" "aaaabbbbcccc"
    (String.sub (Buffer.contents got) 0 12)

let test_backpressure_stall_is_contained () =
  (* A writer whose peer never reads must not wedge the scheduler: the
     write raises a contained Resource_exhausted once the system stalls. *)
  let outcome = ref `Silent in
  Fiber.run (fun () ->
      let a, _b = Chan.pair ~capacity:4 () in
      match
        for _ = 1 to 10 do
          Chan.write_string a "xxxx"
        done
      with
      | () -> outcome := `Unbounded
      | exception Rlimit.Resource_exhausted msg -> outcome := `Stalled msg);
  match !outcome with
  | `Stalled msg -> check Alcotest.bool "names the channel" true (contains msg "chan.write")
  | `Unbounded -> Alcotest.fail "capacity 4 accepted 40 bytes with no reader"
  | `Silent -> Alcotest.fail "writer never resolved"

let test_backlog_refuses_then_recovers () =
  Fiber.run (fun () ->
      let l = Chan.listener ~backlog:2 () in
      let c1 = Chan.connect l in
      let c2 = Chan.connect l in
      (match Chan.connect l with
      | _ -> Alcotest.fail "third connect exceeded backlog 2"
      | exception Chan.Refused _ -> ());
      check Alcotest.int "refusal counted" 1 (Chan.refused l);
      (* Accepting frees a slot: the next connect succeeds. *)
      (match Chan.accept l with
      | Some ep -> Chan.close ep
      | None -> Alcotest.fail "accept failed");
      let c3 = Chan.connect l in
      List.iter Chan.close [ c1; c2; c3 ];
      Chan.shutdown l)

let test_read_exact () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Chan.write_string b "wxyz";
      Chan.close b;
      check (Alcotest.option Alcotest.bytes) "exact read"
        (Some (Bytes.of_string "wxyz"))
        (Chan.read_exact a 4);
      check Alcotest.bool "eof after drain" true (Chan.read_exact a 1 = None);
      check (Alcotest.option Alcotest.bytes) "zero-length read"
        (Some Bytes.empty) (Chan.read_exact a 0);
      let c, d = Chan.pair () in
      Chan.write_string d "ab";
      Chan.close d;
      (* Peer closed two bytes short: terminate with None, don't spin. *)
      check Alcotest.bool "short stream" true (Chan.read_exact c 4 = None))

(* ---------- line buffering ---------- *)

let test_lineio_many_lines () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      for i = 1 to 200 do
        Chan.write_string b (Printf.sprintf "line-%d\r\n" i)
      done;
      Chan.close b;
      let io = Lineio.of_chan a in
      for i = 1 to 200 do
        match Lineio.read_line io with
        | Some l -> check Alcotest.string "line content" (Printf.sprintf "line-%d" i) l
        | None -> Alcotest.failf "stream ended at line %d" i
      done;
      check Alcotest.bool "clean eof" true (Lineio.read_line io = None);
      check Alcotest.bool "no overflow" false (Lineio.overflowed io))

let test_lineio_overlong_line_poisons () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Chan.write_string b "ok\r\n";
      Chan.write_string b (String.make 300 'x' ^ "\r\nafter\r\n");
      Chan.close b;
      let io = Lineio.of_chan ~max_line:256 a in
      check (Alcotest.option Alcotest.string) "line before the bomb" (Some "ok")
        (Lineio.read_line io);
      check Alcotest.bool "overlong line refused" true (Lineio.read_line io = None);
      check Alcotest.bool "buffer poisoned" true (Lineio.overflowed io);
      (* Poisoned is terminal: no resynchronising on attacker framing. *)
      check Alcotest.bool "stays closed" true (Lineio.read_line io = None))

(* ---------- flood: admission control under 500 hostile clients ---------- *)

type flood = {
  f_trace : string;
  f_tally : int * int * int * int * int;  (* completed, refused, rejected, cut, errors *)
  f_stats : Guard.stats;
  f_rejected_stat : int;
}

let run_flood ~seed =
  let plan = Fault_plan.create ~seed () in
  Fault_plan.rule plan ~site:"chan.read" ~prob:0.03 [ Fault_plan.Drop; Fault_plan.Reset ];
  Fault_plan.rule plan ~site:"chan.write" ~prob:0.03 [ Fault_plan.Reset ];
  Fault_plan.disarm plan;
  let k, main = mk_pop3 ~faults:plan () in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:16 () in
  let guard = Guard.create ~max_conns:8 () in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "-ERR busy" in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Pop3_wedge.serve_loop main guard l);
      Fault_plan.arm plan;
      for i = 1 to 500 do
        Fiber.spawn (fun () ->
            if i mod 4 = 0 then
              Byzantine.half_close t l ~request:"USER alice\r\nQUIT\r\n" ~is_rejection
            else Byzantine.oneshot t l ~request:"QUIT\r\n" ~is_rejection)
      done;
      Fiber.wait_until ~what:"flood resolved" (fun () -> Byzantine.total t = 500);
      Fault_plan.disarm plan;
      Guard.drain guard l);
  {
    f_trace = Fault_plan.trace plan;
    f_tally = (t.Byzantine.completed, t.refused, t.rejected, t.cut, t.errors);
    f_stats = Guard.stats guard;
    f_rejected_stat = Stats.get k.Kernel.stats "pop3.rejected";
  }

let test_flood_every_connection_resolves () =
  let f = run_flood ~seed:4242 in
  let completed, refused, rejected, cut, errors = f.f_tally in
  check Alcotest.int "all 500 clients resolved" 500
    (completed + refused + rejected + cut + errors);
  check Alcotest.int "no client errored" 0 errors;
  check Alcotest.bool "some clients served" true (completed > 0);
  check Alcotest.bool "backlog refused the burst" true (refused > 0);
  check Alcotest.bool "admission rejected overflow" true (rejected > 0);
  (* Every busy rejection was answered (the -ERR busy counter) and every
     rejection the clients saw came from the guard. *)
  check Alcotest.int "rejections counted server-side"
    (f.f_stats.Guard.s_rejected_busy + f.f_stats.Guard.s_rejected_draining)
    f.f_rejected_stat;
  check Alcotest.bool "client and server rejection counts agree" true
    (rejected <= f.f_stats.Guard.s_rejected_busy + f.f_stats.Guard.s_rejected_draining);
  check Alcotest.bool "admissions happened" true (f.f_stats.Guard.s_admitted > 0);
  check Alcotest.int "drained to zero" 0 f.f_stats.Guard.s_active

let test_flood_replays_identically () =
  let a = run_flood ~seed:99 in
  let b = run_flood ~seed:99 in
  check Alcotest.string "byte-identical fault trace" a.f_trace b.f_trace;
  check Alcotest.bool "trace nonempty" true (String.length a.f_trace > 0);
  check
    Alcotest.(pair (pair int int) (pair int (pair int int)))
    "identical tallies"
    (let c, r, j, u, e = a.f_tally in
     ((c, r), (j, (u, e))))
    (let c, r, j, u, e = b.f_tally in
     ((c, r), (j, (u, e))));
  check Alcotest.int "identical admissions" a.f_stats.Guard.s_admitted
    b.f_stats.Guard.s_admitted;
  check Alcotest.int "identical busy rejections" a.f_stats.Guard.s_rejected_busy
    b.f_stats.Guard.s_rejected_busy

(* ---------- slow-loris ---------- *)

let test_slow_loris_cut_without_collateral () =
  let k, main = mk_pop3 () in
  let l = Chan.listener ~costs:Cost_model.free () in
  let guard =
    Guard.create ~clock:k.Kernel.clock ~header_deadline_ns:1_000 ~max_conns:4 ()
  in
  let slow = Byzantine.tally () and good = Byzantine.tally () in
  let is_rejection s = contains s "-ERR busy" in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Pop3_wedge.serve_loop main guard l);
      Fiber.spawn (fun () ->
          Byzantine.slow_loris slow l ~clock:k.Kernel.clock ~step_ns:500
            ~request:"USER alice\r\nPASS wonderland\r\nQUIT\r\n" ~is_rejection);
      (* A well-behaved client sharing the guard completes undisturbed. *)
      Byzantine.oneshot good l ~request:"QUIT\r\n" ~is_rejection;
      Fiber.wait_until ~what:"loris resolved" (fun () -> Byzantine.total slow = 1);
      Guard.drain guard l);
  check Alcotest.int "loris cut" 1 slow.Byzantine.cut;
  check Alcotest.int "good client completed" 1 good.Byzantine.completed;
  check Alcotest.bool "deadline cut counted" true
    ((Guard.stats guard).Guard.s_timed_out >= 1)

(* ---------- oversized requests ---------- *)

let test_pop3_oversized_command_rejected () =
  let _k, main = mk_pop3 () in
  let l = Chan.listener ~costs:Cost_model.free () in
  let guard = Guard.create ~max_conns:4 () in
  let t = Byzantine.tally () in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Pop3_wedge.serve_loop ~max_line:256 main guard l);
      Byzantine.oversized t l ~size:10_000
        ~is_rejection:(fun s -> contains s "command line too long");
      Guard.drain guard l);
  check Alcotest.int "oversized command answered -ERR and closed" 1 t.Byzantine.rejected

let test_http_oversized_request_gets_413 () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Env.install ~image_pages:80 k in
  let status = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          ignore (Simple.serve_connection ~max_request_bytes:64 env server_ep));
      let rng = Drbg.create ~seed:5 in
      let r =
        Client.get ~rng ~pinned:env.Env.priv.Rsa.pub
          ~path:("/" ^ String.make 100 'a')
          client_ep
      in
      status := Option.map (fun resp -> resp.Http.status) r.Client.response);
  check (Alcotest.option Alcotest.int) "sealed 413" (Some 413) !status

(* ---------- drain ---------- *)

let test_drain_completes_in_flight () =
  let k, main = mk_pop3 () in
  let l = Chan.listener ~costs:Cost_model.free () in
  let guard = Guard.create ~clock:k.Kernel.clock ~max_conns:4 () in
  let finished = ref false in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Pop3_wedge.serve_loop main guard l);
      Fiber.spawn (fun () ->
          let ep = Chan.connect l in
          Chan.write_string ep "USER alice\r\n";
          (* Dawdle mid-session while the guard drains around us. *)
          for _ = 1 to 10 do
            Fiber.yield ()
          done;
          Chan.write_string ep "QUIT\r\n";
          let rec rd () = if Bytes.length (Chan.read ep 256) > 0 then rd () in
          rd ();
          Chan.close ep;
          finished := true);
      Fiber.wait_until ~what:"client admitted" (fun () -> Guard.active guard = 1);
      Guard.drain ~deadline_ns:1_000_000 guard l);
  check Alcotest.bool "in-flight client finished its session" true !finished;
  check Alcotest.int "nothing force-closed" 0 (Guard.stats guard).Guard.s_forced;
  check Alcotest.int "drained" 0 (Guard.active guard);
  check Alcotest.bool "draining flag set" true (Guard.draining guard)

let test_drain_forces_stragglers () =
  let _k, main = mk_pop3 () in
  let l = Chan.listener ~costs:Cost_model.free () in
  let guard = Guard.create ~max_conns:4 () in
  let t = Byzantine.tally () in
  Fiber.run (fun () ->
      Fiber.spawn (fun () -> Pop3_wedge.serve_loop main guard l);
      (* Connect and never speak: holds a slot forever. *)
      Fiber.spawn (fun () -> Byzantine.silent t l);
      Fiber.wait_until ~what:"holder admitted" (fun () -> Guard.active guard = 1);
      Guard.drain guard l;
      (* The straggler was force-cut, its client unblocked to EOF. *)
      Fiber.wait_until ~what:"holder unblocked" (fun () -> Byzantine.total t = 1));
  check Alcotest.int "straggler force-closed" 1 (Guard.stats guard).Guard.s_forced;
  check Alcotest.int "holder saw the cut" 1 t.Byzantine.cut;
  check Alcotest.int "no ghosts left" 0 (Guard.active guard);
  (* The listener is down for good: reconnecting is refused (contained),
     not a programming error. *)
  match Chan.connect l with
  | _ -> Alcotest.fail "connect succeeded after drain"
  | exception Chan.Refused _ -> ()

let test_release_idempotent () =
  (* Regression: releasing a connection twice (worker finally + drain
     forfeit racing) must not drive the O(1) active counter negative or
     free another connection's slot. *)
  Fiber.run (fun () ->
      let guard = Guard.create ~max_conns:2 () in
      let a, b = Chan.pair () in
      match (Guard.admit guard a, Guard.admit guard b) with
      | Guard.Admitted ca, Guard.Admitted cb ->
          check Alcotest.int "two active" 2 (Guard.active guard);
          Guard.release ca;
          Guard.release ca;
          Guard.release ca;
          check Alcotest.int "triple release frees one slot" 1 (Guard.active guard);
          (* The freed slot admits exactly one newcomer, not three. *)
          let c, d = Chan.pair () in
          (match Guard.admit guard c with
          | Guard.Admitted _ -> ()
          | _ -> Alcotest.fail "slot not reusable after release");
          (match Guard.admit guard d with
          | Guard.Admitted _ -> Alcotest.fail "double release leaked a slot"
          | _ -> ());
          Guard.release cb;
          check Alcotest.int "one left" 1 (Guard.active guard)
      | _ -> Alcotest.fail "admissions under capacity refused")

let test_refused_contained_under_supervision () =
  (* Connect-after-drain from a supervised compartment: Chan.Refused is
     in the registered contained-fault class, so the sthread dies cleanly
     and the supervisor degrades the attempt — the exception must not
     escape as a crash. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let l = Chan.listener ~costs:Cost_model.free () in
  let outcome = ref None in
  Fiber.run (fun () ->
      Chan.shutdown l;
      outcome :=
        Some
          (Wedge_core.Supervisor.supervise_sthread
             ~policy:(Wedge_core.Supervisor.policy ~max_restarts:1 ())
             main (W.sc_create ())
             (fun _ctx _ ->
               ignore (Chan.connect l);
               0)
             0));
  (match !outcome with
  | Some (Wedge_core.Supervisor.Gave_up { attempts; last_fault }) ->
      check Alcotest.int "both attempts refused" 2 attempts;
      check Alcotest.bool "reason names the refusal" true
        (contains last_fault "listener is down")
  | Some (Wedge_core.Supervisor.Done _) -> Alcotest.fail "connect to a down listener succeeded"
  | None -> Alcotest.fail "supervision never resolved");
  check Alcotest.bool "gave_up counted" true
    (Stats.get k.Kernel.stats "supervisor.gave_up" >= 1);
  check Alcotest.int "refusals counted on the listener" 2 (Chan.refused l)

(* ---------- idle fuel ---------- *)

(* Satellite regression: a reactor-parked connection charges zero
   syscall fuel while idle.  Fuel meters kernel entries (one unit per
   trap), so the pin below proves the parked server never polls the
   kernel during the silence — the reactor wakes it only when the
   interest set turns ready.  The request after the silence still
   lands, proving the connection stayed live rather than merely quiet. *)
let test_idle_reactor_conn_charges_no_fuel () =
  let k = Kernel.create ~costs:Cost_model.default () in
  let clock = k.Kernel.clock in
  let app = W.create_app k in
  W.boot app;
  let ctx = W.main_ctx app in
  let tag = W.tag_new ~name:"idle.fuel" ~pages:1 ctx in
  let buf = W.smalloc ctx 8 tag in
  let r = Reactor.create ~clock () in
  let a, b = Chan.pair ~clock ~costs:Cost_model.free () in
  Chan.attach_reactor r b;
  let fd = W.add_endpoint ctx (Chan.to_endpoint b) Fd_table.perm_rw in
  let limits = (W.proc ctx).Process.limits in
  let idle_fuel = ref (-1) in
  let got = ref 0 in
  Fiber.run ~on_switch:(Reactor.hook r) ~on_idle:(Reactor.idle r) (fun () ->
      Fiber.spawn (fun () ->
          let rec loop () =
            Chan.wait_rx ~bytes:8 b;
            if Chan.bytes_in_flight b >= 8 then begin
              got := W.fd_readv ctx fd [| (buf, 8) |];
              loop ()
            end
          in
          loop ());
      (* Let the server reach its park before the silence starts. *)
      Fiber.yield ();
      let fuel0 = Rlimit.fuel_used limits in
      for _ = 1 to 1_000 do
        Clock.charge clock 1_000;
        Fiber.yield ()
      done;
      idle_fuel := Rlimit.fuel_used limits - fuel0;
      Chan.write_string a "request!";
      Fiber.wait_until ~what:"request served" (fun () -> !got = 8);
      Chan.close a);
  check Alcotest.int "idle stretch charged zero syscall fuel" 0 !idle_fuel;
  check Alcotest.int "request after the silence still served" 8 !got

let () =
  Alcotest.run "guard"
    [
      ( "channels",
        [
          Alcotest.test_case "backpressure delivers" `Quick
            test_backpressure_delivers_everything;
          Alcotest.test_case "backpressure stall contained" `Quick
            test_backpressure_stall_is_contained;
          Alcotest.test_case "backlog refusal" `Quick test_backlog_refuses_then_recovers;
          Alcotest.test_case "read_exact" `Quick test_read_exact;
        ] );
      ( "lineio",
        [
          Alcotest.test_case "many lines" `Quick test_lineio_many_lines;
          Alcotest.test_case "overlong line poisons" `Quick
            test_lineio_overlong_line_poisons;
        ] );
      ( "flood",
        [
          Alcotest.test_case "500 clients resolve" `Quick
            test_flood_every_connection_resolves;
          Alcotest.test_case "replays identically" `Quick test_flood_replays_identically;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "slow-loris cut" `Quick test_slow_loris_cut_without_collateral;
        ] );
      ( "oversized",
        [
          Alcotest.test_case "pop3 command cap" `Quick
            test_pop3_oversized_command_rejected;
          Alcotest.test_case "http 413" `Quick test_http_oversized_request_gets_413;
        ] );
      ( "drain",
        [
          Alcotest.test_case "completes in-flight" `Quick test_drain_completes_in_flight;
          Alcotest.test_case "forces stragglers" `Quick test_drain_forces_stragglers;
        ] );
      ( "admission",
        [
          Alcotest.test_case "release idempotent" `Quick test_release_idempotent;
          Alcotest.test_case "refused contained under supervision" `Quick
            test_refused_contained_under_supervision;
        ] );
      ( "idle fuel",
        [
          Alcotest.test_case "reactor-parked conn charges none" `Quick
            test_idle_reactor_conn_charges_no_fuel;
        ] );
    ]
