(* One seeded PRNG for every randomized test in the suite.

   All property tests draw from a single seed so a red CI run is
   reproducible on a laptop: the failure output names the seed, and

     WEDGE_TEST_SEED=<n> dune runtest

   replays the exact generation sequence.  Individual tests never touch
   the stdlib's global [Random] state. *)

let seed =
  match Sys.getenv_opt "WEDGE_TEST_SEED" with
  | None -> 0xC0FFEE
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "WEDGE_TEST_SEED=%S is not an integer\n%!" s;
          exit 2)

(* A fresh state per call: each property test gets the same stream
   regardless of suite ordering or which other tests ran first. *)
let state () = Random.State.make [| seed |]

let to_alcotest ?long t =
  let name, speed, f = QCheck_alcotest.to_alcotest ?long ~rand:(state ()) t in
  ( name,
    speed,
    fun () ->
      try f ()
      with e ->
        Printf.eprintf "[test_rng] failing seed: WEDGE_TEST_SEED=%d\n%!" seed;
        raise e )

(* Ad-hoc randomized loops (non-QCheck) share the same discipline: take a
   state from [fork ~label] — the label decorrelates streams between call
   sites — and report [seed] in any failure message. *)
let fork ~label =
  Random.State.make [| seed; Hashtbl.hash label |]
