(* Fault-injection and supervision tests: deterministic replay of a seeded
   fault plan, recovery from frame exhaustion, channel resets mid-request,
   supervisor backoff schedules, callgate deadlines, recycled-gate respawn,
   enriched deadlock diagnostics, and a chaos soak that drives the Figure 2
   httpd through hundreds of connections at a 5% fault rate — the listener
   must survive every one of them, and the same seed must reproduce the
   same fault trace byte for byte. *)

module Fault_plan = Wedge_fault.Fault_plan
module Kernel = Wedge_kernel.Kernel
module Physmem = Wedge_kernel.Physmem
module Process = Wedge_kernel.Process
module Rlimit = Wedge_kernel.Rlimit
module Fd_table = Wedge_kernel.Fd_table
module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module W = Wedge_core.Wedge
module Supervisor = Wedge_core.Supervisor
module Env = Wedge_httpd.Httpd_env
module Simple = Wedge_httpd.Httpd_simple
module Client = Wedge_httpd.Https_client
module Http = Wedge_httpd.Http
module Pop3_env = Wedge_pop3.Pop3_env
module Pop3_wedge = Wedge_pop3.Pop3_wedge

let check = Alcotest.check

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mk_app () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  (k, app, W.main_ctx app)

(* ---------- deterministic replay ---------- *)

let test_same_seed_same_trace () =
  let mk seed =
    let p = Fault_plan.create ~seed () in
    Fault_plan.rule p ~site:"chan.read" ~prob:0.3
      [ Fault_plan.Drop; Fault_plan.Reset; Fault_plan.Truncate ];
    Fault_plan.rule p ~site:"physmem.alloc" ~prob:0.1 [ Fault_plan.Enomem ];
    p
  in
  let roll_seq p =
    for _ = 1 to 200 do
      ignore (Fault_plan.roll p ~site:"chan.read");
      ignore (Fault_plan.roll p ~site:"physmem.alloc")
    done
  in
  let p1 = mk 42 and p2 = mk 42 and p3 = mk 43 in
  roll_seq p1;
  roll_seq p2;
  roll_seq p3;
  check Alcotest.string "same seed, same trace" (Fault_plan.trace p1) (Fault_plan.trace p2);
  check Alcotest.bool "trace nonempty" true (String.length (Fault_plan.trace p1) > 0);
  check Alcotest.bool "seeds distinguish runs" true
    (Fault_plan.trace p1 <> Fault_plan.trace p3);
  check Alcotest.int "injection counts agree" (Fault_plan.injections p1)
    (Fault_plan.injections p2)

let test_disarmed_plan_is_inert () =
  let p = Fault_plan.create ~seed:1 () in
  Fault_plan.rule p ~site:"chan.read" ~prob:1.0 [ Fault_plan.Reset ];
  Fault_plan.disarm p;
  for _ = 1 to 50 do
    check Alcotest.bool "no fire while disarmed" true
      (Fault_plan.roll p ~site:"chan.read" = None)
  done;
  check Alcotest.int "op counter frozen while disarmed" 0
    (Fault_plan.site_ops p ~site:"chan.read");
  Fault_plan.arm p;
  check Alcotest.bool "fires once armed" true (Fault_plan.roll p ~site:"chan.read" <> None)

(* ---------- frame exhaustion ---------- *)

let test_frame_exhaustion_and_recovery () =
  let pm = Physmem.create ~max_frames:2 () in
  let f1 = Physmem.alloc pm in
  let _f2 = Physmem.alloc pm in
  (match Physmem.alloc pm with
  | _ -> Alcotest.fail "expected Enomem"
  | exception Physmem.Enomem -> ());
  Physmem.decref pm f1;
  let f3 = Physmem.alloc pm in
  check Alcotest.bool "freed frame reusable" true (f3 >= 0);
  check Alcotest.int "frames accounted" 2 (Physmem.frames_in_use pm)

let test_supervisor_recovers_from_injected_enomem () =
  let plan = Fault_plan.create ~seed:11 () in
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  W.boot app;
  let attempt = ref 0 in
  let outcome =
    Supervisor.supervise_sthread
      ~policy:(Supervisor.policy ~max_restarts:1 ())
      main (W.sc_create ())
      (fun ctx _ ->
        incr attempt;
        if !attempt = 1 then begin
          (* Arm only inside the first attempt: the very next frame
             allocation — this attempt's own heap growth — fails. *)
          Fault_plan.rule plan ~site:"physmem.alloc"
            ~nth:(Fault_plan.site_ops plan ~site:"physmem.alloc" + 1)
            [ Fault_plan.Enomem ];
          Fault_plan.arm plan
        end;
        let b = W.malloc ctx 4096 in
        W.write_u8 ctx b 7;
        W.read_u8 ctx b)
      0
  in
  Fault_plan.disarm plan;
  (match outcome with
  | Supervisor.Done { value; attempts } ->
      check Alcotest.int "retry succeeded" 7 value;
      check Alcotest.int "took two attempts" 2 attempts
  | Supervisor.Gave_up { last_fault; _ } ->
      Alcotest.fail ("expected recovery, gave up: " ^ last_fault));
  check Alcotest.int "restart counted" 1 (Stats.get k.Kernel.stats "supervisor.restart");
  check Alcotest.bool "fault contained and counted" true
    (Stats.get k.Kernel.stats "fault.compartment" >= 1)

(* ---------- channel faults ---------- *)

let body_of (r : Client.result) =
  match r.Client.response with Some { Http.status = 200; body } -> Some body | _ -> None

let test_channel_reset_mid_request () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Env.install ~image_pages:80 k in
  let plan = Fault_plan.create ~seed:5 () in
  Fault_plan.rule plan ~site:"chan.read" ~nth:4 [ Fault_plan.Reset ];
  let first = ref (Some "sentinel") in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free ~faults:plan () in
      Fiber.spawn (fun () -> ignore (Simple.serve_connection env server_ep));
      let rng = Drbg.create ~seed:7 in
      match Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" client_ep with
      | r -> first := body_of r
      | exception Fault_plan.Injected _ -> first := None);
  check (Alcotest.option Alcotest.string) "reset connection did not serve" None !first;
  check Alcotest.int "exactly one injection" 1 (Fault_plan.injections plan);
  Fault_plan.disarm plan;
  (* The same environment serves the next, clean connection. *)
  let second = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Simple.serve_connection env server_ep));
      let rng = Drbg.create ~seed:8 in
      second := body_of (Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" client_ep));
  check (Alcotest.option Alcotest.string) "clean connection serves" (Some Env.index_body)
    !second

let test_connect_fault_refuses_connection () =
  let plan = Fault_plan.create ~seed:2 () in
  Fault_plan.rule plan ~site:"chan.connect" ~nth:1 [ Fault_plan.Reset ];
  Fiber.run (fun () ->
      let l = Chan.listener ~costs:Cost_model.free ~faults:plan () in
      (match Chan.connect l with
      | _ -> Alcotest.fail "expected refused connection"
      | exception Fault_plan.Injected _ -> ());
      check Alcotest.int "nothing queued for accept" 0 (Chan.pending l);
      let ep = Chan.connect l in
      Chan.write_string ep "hi";
      check Alcotest.int "second connection established" 1 (Chan.pending l);
      Chan.shutdown l)

(* ---------- supervisor backoff ---------- *)

let test_supervisor_backoff_schedule () =
  let k, app, main = mk_app () in
  W.boot app;
  let t0 = Clock.now k.Kernel.clock in
  let outcome =
    Supervisor.supervise_sthread
      ~policy:(Supervisor.policy ~max_restarts:3 ~backoff_ns:100 ())
      main (W.sc_create ())
      (fun _ _ -> raise (Fault_plan.Injected "always crashes"))
      0
  in
  (match outcome with
  | Supervisor.Gave_up { attempts; last_fault } ->
      check Alcotest.int "initial try + 3 retries" 4 attempts;
      check Alcotest.bool "reason preserved" true (contains last_fault "always crashes")
  | Supervisor.Done _ -> Alcotest.fail "expected give-up");
  (* Exponential backoff on the simulated clock: 100 + 200 + 400. *)
  check Alcotest.int "backoff schedule" 700 (Clock.now k.Kernel.clock - t0);
  check Alcotest.int "restarts counted" 3 (Stats.get k.Kernel.stats "supervisor.restart");
  check Alcotest.int "give-up counted" 1 (Stats.get k.Kernel.stats "supervisor.gave_up")

(* ---------- callgate deadlines and recycled respawn ---------- *)

let test_cgate_deadline () =
  let k, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  let slow =
    W.sc_cgate_add main sc ~name:"slow"
      ~entry:(fun gctx ~trusted:_ ~arg ->
        W.charge_app gctx 1000;
        arg + 1)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let a = W.cgate ctx slow ~deadline_ns:500 ~perms:(W.sc_create ()) ~arg:1 in
        let b = W.cgate ctx slow ~deadline_ns:5000 ~perms:(W.sc_create ()) ~arg:1 in
        (a * 1000) + b)
      0
  in
  (* First call overruns its deadline (-1); the second fits (returns 2). *)
  check Alcotest.int "deadline enforced" (-998) (W.sthread_join main h);
  check Alcotest.int "overrun counted" 1
    (Stats.get k.Kernel.stats "cgate.deadline_exceeded")

let test_recycled_gate_fault_respawns () =
  let k, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  let first = ref true in
  let gate =
    W.sc_cgate_add ~recycled:true main sc ~name:"fragile"
      ~entry:(fun _ ~trusted:_ ~arg ->
        if !first then begin
          first := false;
          raise (Fault_plan.Injected "gate member crashed")
        end
        else arg + 5)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let a = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:1 in
        let b = W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:1 in
        (a * 100) + b)
      0
  in
  (* The crashing member yields -1 and is discarded; the respawned member
     serves the very next invocation. *)
  check Alcotest.int "crash then fresh member" (-94) (W.sthread_join main h);
  check Alcotest.int "gate fault counted" 1 (Stats.get k.Kernel.stats "fault.cgate");
  check Alcotest.int "respawn counted" 1
    (Stats.get k.Kernel.stats "cgate.recycled.respawn")

(* ---------- fiber crash containment and deadlock diagnostics ---------- *)

let test_fiber_crash_contained_in_sthread () =
  let plan = Fault_plan.create ~seed:9 () in
  Fault_plan.disarm plan;
  let survived = ref false in
  Fiber.run ~faults:plan (fun () ->
      let _, app, main = mk_app () in
      W.boot app;
      let outcome =
        Supervisor.supervise_sthread main (W.sc_create ())
          (fun _ _ ->
            Fault_plan.rule plan ~site:"fiber.yield"
              ~nth:(Fault_plan.site_ops plan ~site:"fiber.yield" + 1)
              [ Fault_plan.Crash ];
            Fault_plan.arm plan;
            Fiber.yield ();
            99)
          0
      in
      Fault_plan.disarm plan;
      (match outcome with
      | Supervisor.Gave_up { last_fault; _ } ->
          check Alcotest.bool "names the site" true (contains last_fault "fiber.yield")
      | Supervisor.Done _ -> Alcotest.fail "expected the worker to crash");
      (* The scheduler and this fiber are unharmed. *)
      Fiber.yield ();
      survived := true);
  check Alcotest.bool "main fiber survived" true !survived

let test_deadlock_names_blocked_fibers () =
  match
    Fiber.run (fun () ->
        Fiber.spawn (fun () -> Fiber.wait_until ~what:"cond_a" (fun () -> false));
        Fiber.wait_until ~what:"cond_b" (fun () -> false))
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock msg ->
      check Alcotest.bool "names cond_a" true (contains msg "cond_a");
      check Alcotest.bool "names cond_b" true (contains msg "cond_b");
      check Alcotest.bool "names fibers" true (contains msg "fiber")

(* ---------- degraded answers ---------- *)

let test_pop3_setup_fault_degrades () =
  let plan = Fault_plan.create ~seed:3 () in
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  Pop3_env.install k Pop3_env.default_users;
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let farewell = ref "" in
  let debug = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          (* The very first frame allocation of per-connection setup fails:
             the monitor must degrade, not die. *)
          Fault_plan.rule plan ~site:"physmem.alloc"
            ~nth:(Fault_plan.site_ops plan ~site:"physmem.alloc" + 1)
            [ Fault_plan.Enomem ];
          Fault_plan.arm plan;
          let d = Pop3_wedge.serve_connection main server_ep in
          Fault_plan.disarm plan;
          debug := Some d);
      farewell := Bytes.to_string (Chan.read client_ep 128));
  (match !debug with
  | Some d ->
      check Alcotest.bool "degraded" true d.Pop3_wedge.degraded;
      check Alcotest.bool "no tags created" true (d.Pop3_wedge.uid_tag = None);
      (match d.Pop3_wedge.worker_status with
      | Process.Faulted reason ->
          check Alcotest.bool "setup fault named" true (contains reason "setup:")
      | _ -> Alcotest.fail "expected a setup fault")
  | None -> Alcotest.fail "serve_connection never returned");
  check Alcotest.bool "-ERR farewell sent" true (contains !farewell "-ERR");
  check Alcotest.int "pop3.degraded counted" 1 (Stats.get k.Kernel.stats "pop3.degraded")

(* ---------- resource quotas under supervision ---------- *)

let test_frame_quota_contained_and_supervised () =
  let k, app, main = mk_app () in
  W.boot app;
  let frames_before = Physmem.frames_in_use k.Kernel.pm in
  let t0 = Clock.now k.Kernel.clock in
  let sc = W.sc_create () in
  (* The worker's lazy heap mapping alone needs 256 frames: the first
     malloc must hit the quota inside the contained region. *)
  W.sc_set_rlimit sc (Rlimit.create ~max_frames:64 ());
  let outcome =
    Supervisor.supervise_sthread
      ~policy:(Supervisor.policy ~max_restarts:2 ~backoff_ns:100 ())
      main sc
      (fun ctx _ ->
        let b = W.malloc ctx 4096 in
        W.write_u8 ctx b 1;
        W.read_u8 ctx b)
      0
  in
  (match outcome with
  | Supervisor.Gave_up { attempts; last_fault } ->
      check Alcotest.int "initial try + 2 restarts" 3 attempts;
      check Alcotest.bool "names the frame quota" true (contains last_fault "frame quota")
  | Supervisor.Done _ -> Alcotest.fail "64-frame quota allowed a 256-frame heap");
  (* Backoff charged between attempts: 100 + 200. *)
  check Alcotest.int "backoff schedule" 300 (Clock.now k.Kernel.clock - t0);
  check Alcotest.int "restarts counted" 2 (Stats.get k.Kernel.stats "supervisor.restart");
  check Alcotest.int "parent frames unaffected" frames_before
    (Physmem.frames_in_use k.Kernel.pm)

let test_generous_quota_runs_clean () =
  let _k, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_set_rlimit sc (Rlimit.create ~max_frames:400 ~max_fds:16 ~max_fuel:10_000 ());
  let outcome =
    Supervisor.supervise_sthread main sc
      (fun ctx _ ->
        let b = W.malloc ctx 4096 in
        W.write_u8 ctx b 7;
        W.read_u8 ctx b)
      0
  in
  match outcome with
  | Supervisor.Done { value; attempts } ->
      check Alcotest.int "worker ran to completion" 7 value;
      check Alcotest.int "first attempt" 1 attempts
  | Supervisor.Gave_up { last_fault; _ } ->
      Alcotest.fail ("generous quota still faulted: " ^ last_fault)

let test_fuel_quota_burns_out_hostile_loop () =
  let _k, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_set_rlimit sc (Rlimit.create ~max_fuel:3 ());
  let outcome =
    Supervisor.supervise_sthread main sc
      (fun ctx _ ->
        (* A hostile syscall loop: every trap burns fuel whether or not
           SELinux lets it through, so the loop terminates by quota. *)
        for _ = 1 to 1_000 do
          try ignore (W.vfs_read ctx "/index.html") with Kernel.Eperm _ -> ()
        done;
        0)
      0
  in
  match outcome with
  | Supervisor.Gave_up { last_fault; _ } ->
      check Alcotest.bool "names the fuel quota" true (contains last_fault "fuel quota")
  | Supervisor.Done _ -> Alcotest.fail "3 units of fuel survived 1000 syscalls"

let test_fd_quota_fault_during_creation_is_supervised () =
  let _k, app, main = mk_app () in
  W.boot app;
  Fiber.run (fun () ->
      let ep, peer = Chan.pair ~costs:Cost_model.free () in
      let fd = W.add_endpoint main (Chan.to_endpoint ep) Fd_table.perm_rw in
      let sc = W.sc_create () in
      W.sc_fd_add sc fd Fd_table.perm_r;
      (* Zero descriptors allowed, one granted: the quota fires while the
         monitor duplicates grants, before the worker body ever runs —
         the supervisor must treat it like any other compartment fault. *)
      W.sc_set_rlimit sc (Rlimit.create ~max_fds:0 ());
      let outcome = Supervisor.supervise_sthread main sc (fun _ _ -> 0) 0 in
      (match outcome with
      | Supervisor.Gave_up { attempts; last_fault } ->
          check Alcotest.int "one attempt" 1 attempts;
          check Alcotest.bool "creation fault marked" true (contains last_fault "create:");
          check Alcotest.bool "names the fd quota" true (contains last_fault "fd quota")
      | Supervisor.Done _ -> Alcotest.fail "fd quota 0 accepted a descriptor grant");
      W.fd_close main fd;
      Chan.close ep;
      Chan.close peer)

let test_quota_escalation_refused () =
  let _k, app, main = mk_app () in
  W.boot app;
  let sc = W.sc_create () in
  W.sc_set_rlimit sc (Rlimit.create ~max_frames:500 ~max_fuel:10_000 ());
  match
    Supervisor.supervise_sthread main sc
      (fun ctx _ ->
        (* A child sc that doesn't mention limits inherits a subset of the
           parent's — allowed.  Asking for more than the parent holds is a
           privilege escalation, refused before anything is created. *)
        let looser = W.sc_create () in
        W.sc_set_rlimit looser (Rlimit.create ~max_frames:1_000_000 ());
        let h = W.sthread_create ctx looser (fun _ _ -> 0) 0 in
        W.sthread_join ctx h)
      0
  with
  | _ -> Alcotest.fail "quota escalation was not refused"
  | exception W.Privilege_violation msg ->
      check Alcotest.bool "names the escalation" true
        (contains msg "escalates resource limits")

(* ---------- chaos soak ---------- *)

type soak = {
  s_trace : string;
  s_injections : int;
  s_ok : int;
  s_failed : int;
  s_refused : int;
  s_final_ok : bool;
  s_degraded : int;
}

let run_soak ?(quotas = false) ~seed ~n () =
  (* Generous per-worker quotas: arming the accounting must not change
     behaviour — or the fault trace — of a healthy (if unlucky) worker. *)
  let worker_limits =
    if quotas then Some (Rlimit.create ~max_frames:2048 ~max_fds:64 ~max_fuel:1_000_000 ())
    else None
  in
  let plan = Fault_plan.create ~seed () in
  let chan_kinds =
    [ Fault_plan.Drop; Fault_plan.Truncate; Fault_plan.Reset; Fault_plan.Delay 50 ]
  in
  Fault_plan.rule plan ~site:"chan.read" ~prob:0.05 chan_kinds;
  Fault_plan.rule plan ~site:"chan.write" ~prob:0.05 chan_kinds;
  Fault_plan.rule plan ~site:"physmem.alloc" ~prob:0.05 [ Fault_plan.Enomem ];
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let env = Env.install ~image_pages:80 k in
  let ok = ref 0 and failed = ref 0 and refused = ref 0 in
  let final_ok = ref false in
  Fiber.run (fun () ->
      let l = Chan.listener ~clock:k.Kernel.clock ~costs:Cost_model.free ~faults:plan () in
      Fiber.spawn (fun () ->
          let rec loop () =
            match Chan.accept l with
            | None -> ()
            | Some ep ->
                (* Every connection's fate — served, degraded, or torn
                   down — is contained inside serve_connection. *)
                ignore (Simple.serve_connection ?worker_limits env ep);
                loop ()
          in
          loop ());
      let fetch i =
        match Chan.connect l with
        | exception Fault_plan.Injected _ -> incr refused
        | ep -> (
            let rng = Drbg.create ~seed:(1000 + i) in
            let r =
              try
                match
                  Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" ep
                with
                | r -> if body_of r <> None then `Ok else `Failed
              with
              | Fiber.Deadlock _ as e -> raise e
              | _ -> `Failed
            in
            match r with `Ok -> incr ok | `Failed -> incr failed)
      in
      Fault_plan.arm plan;
      for i = 1 to n do
        fetch i
      done;
      Fault_plan.disarm plan;
      (* The listener took n faulty connections and still accepts: one
         last clean fetch must succeed end to end. *)
      let ep = Chan.connect l in
      let rng = Drbg.create ~seed:31337 in
      final_ok :=
        body_of (Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" ep)
        = Some Env.index_body;
      Chan.shutdown l);
  {
    s_trace = Fault_plan.trace plan;
    s_injections = Fault_plan.injections plan;
    s_ok = !ok;
    s_failed = !failed;
    s_refused = !refused;
    s_final_ok = !final_ok;
    s_degraded = Stats.get k.Kernel.stats "httpd.degraded";
  }

let test_chaos_soak () =
  let n = 200 in
  let a = run_soak ~seed:77 ~n () in
  check Alcotest.int "every connection resolved" n (a.s_ok + a.s_failed + a.s_refused);
  check Alcotest.bool "faults actually injected" true (a.s_injections > 0);
  (* At 5% per-I/O-operation, most multi-round-trip TLS connections hit at
     least one fault; what matters is that clean ones still complete and
     faulty ones resolve definitively instead of wedging the server. *)
  check Alcotest.bool "clean connections still served" true (a.s_ok > 0);
  check Alcotest.bool "some connections degraded" true (a.s_failed > 0);
  check Alcotest.bool "listener survived the soak" true a.s_final_ok;
  check Alcotest.bool "degradations were counted" true (a.s_degraded >= 0)

let test_chaos_soak_replays_identically () =
  let a = run_soak ~seed:123 ~n:60 () in
  let b = run_soak ~seed:123 ~n:60 () in
  check Alcotest.string "byte-identical fault trace" a.s_trace b.s_trace;
  check Alcotest.bool "trace nonempty" true (String.length a.s_trace > 0);
  check Alcotest.int "identical outcomes" a.s_ok b.s_ok;
  check Alcotest.int "identical failures" a.s_failed b.s_failed;
  check Alcotest.int "identical degradations" a.s_degraded b.s_degraded

let test_quota_armed_soak_replays_identically () =
  let n = 200 in
  let a = run_soak ~quotas:true ~seed:321 ~n () in
  let b = run_soak ~quotas:true ~seed:321 ~n () in
  check Alcotest.string "byte-identical fault trace" a.s_trace b.s_trace;
  check Alcotest.bool "trace nonempty" true (String.length a.s_trace > 0);
  check Alcotest.int "every connection resolved" n (a.s_ok + a.s_failed + a.s_refused);
  check Alcotest.int "identical outcomes" a.s_ok b.s_ok;
  check Alcotest.int "identical failures" a.s_failed b.s_failed;
  check Alcotest.bool "listener survived with quotas armed" true
    (a.s_final_ok && b.s_final_ok)

let test_quotas_do_not_perturb_the_trace () =
  (* Same seed, quotas on vs off: the accounting layer adds no fault-site
     rolls, so even the injected-fault trace is unchanged. *)
  let a = run_soak ~quotas:true ~seed:123 ~n:60 () in
  let b = run_soak ~quotas:false ~seed:123 ~n:60 () in
  check Alcotest.string "same trace with and without quotas" a.s_trace b.s_trace;
  check Alcotest.int "same outcomes" a.s_ok b.s_ok;
  check Alcotest.int "same failures" a.s_failed b.s_failed

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "same seed same trace" `Quick test_same_seed_same_trace;
          Alcotest.test_case "disarmed plan inert" `Quick test_disarmed_plan_is_inert;
        ] );
      ( "frames",
        [
          Alcotest.test_case "exhaustion and recovery" `Quick
            test_frame_exhaustion_and_recovery;
          Alcotest.test_case "supervised enomem recovery" `Quick
            test_supervisor_recovers_from_injected_enomem;
        ] );
      ( "channels",
        [
          Alcotest.test_case "reset mid-request" `Quick test_channel_reset_mid_request;
          Alcotest.test_case "connect refused" `Quick
            test_connect_fault_refuses_connection;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "backoff schedule" `Quick test_supervisor_backoff_schedule;
        ] );
      ( "cgate",
        [
          Alcotest.test_case "deadline" `Quick test_cgate_deadline;
          Alcotest.test_case "recycled respawn" `Quick
            test_recycled_gate_fault_respawns;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "crash contained" `Quick
            test_fiber_crash_contained_in_sthread;
          Alcotest.test_case "deadlock names fibers" `Quick
            test_deadlock_names_blocked_fibers;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "pop3 setup fault" `Quick test_pop3_setup_fault_degrades;
        ] );
      ( "quotas",
        [
          Alcotest.test_case "frame quota supervised" `Quick
            test_frame_quota_contained_and_supervised;
          Alcotest.test_case "generous quota clean" `Quick test_generous_quota_runs_clean;
          Alcotest.test_case "fuel burns out" `Quick
            test_fuel_quota_burns_out_hostile_loop;
          Alcotest.test_case "fd quota at creation" `Quick
            test_fd_quota_fault_during_creation_is_supervised;
          Alcotest.test_case "escalation refused" `Quick test_quota_escalation_refused;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "soak" `Quick test_chaos_soak;
          Alcotest.test_case "soak replay" `Quick test_chaos_soak_replays_identically;
          Alcotest.test_case "quota-armed soak replay" `Quick
            test_quota_armed_soak_replays_identically;
          Alcotest.test_case "quotas trace-neutral" `Quick
            test_quotas_do_not_perturb_the_trace;
        ] );
    ]
