(* Network simulator tests: channel semantics (including simulated RTT
   charging), line-oriented I/O, listener lifecycle, and the MITM
   interposer's replace/drop/inject actions. *)

module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Chan = Wedge_net.Chan
module Lineio = Wedge_net.Lineio
module Mitm = Wedge_net.Mitm

let check = Alcotest.check

(* ---------- chan ---------- *)

let test_partial_reads () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Chan.write_string b "abcdef";
      check Alcotest.string "up to n" "abc" (Bytes.to_string (Chan.read a 3));
      check Alcotest.string "rest" "def" (Bytes.to_string (Chan.read a 100)))

let test_read_exact_across_writes () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Fiber.spawn (fun () ->
          Chan.write_string b "hel";
          Fiber.yield ();
          Chan.write_string b "lo!");
      check (Alcotest.option Alcotest.string) "stitched" (Some "hello!")
        (Option.map Bytes.to_string (Chan.read_exact a 6)))

let test_read_exact_eof_mid_message () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Chan.write_string b "par";
      Chan.close b;
      check Alcotest.bool "None on short" true (Chan.read_exact a 6 = None))

let test_write_after_close_rejected () =
  Fiber.run (fun () ->
      let _, b = Chan.pair () in
      Chan.close b;
      match Chan.write_string b "x" with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())

let test_blocking_read_charges_rtt () =
  let clock = Clock.create () in
  Fiber.run (fun () ->
      let a, b = Chan.pair ~clock ~costs:Cost_model.default () in
      Fiber.spawn (fun () -> Chan.write_string b "x");
      let t0 = Clock.now clock in
      ignore (Chan.read a 1);
      check Alcotest.bool "blocked read charged half RTT" true
        (Clock.now clock - t0 >= Cost_model.default.Cost_model.net_rtt / 2));
  (* A non-blocking read charges nothing. *)
  let clock2 = Clock.create () in
  Fiber.run (fun () ->
      let a, b = Chan.pair ~clock:clock2 ~costs:Cost_model.default () in
      Chan.write_string b "y";
      let t0 = Clock.now clock2 in
      ignore (Chan.read a 1);
      check Alcotest.int "immediate read free" t0 (Clock.now clock2))

let test_bytes_in_flight () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      Chan.write_string b "12345";
      check Alcotest.int "buffered" 5 (Chan.bytes_in_flight a);
      ignore (Chan.read a 2);
      check Alcotest.int "drained" 3 (Chan.bytes_in_flight a))

let test_listener_shutdown () =
  Fiber.run (fun () ->
      let l = Chan.listener () in
      let got = ref `Pending in
      Fiber.spawn (fun () ->
          match Chan.accept l with Some _ -> got := `Conn | None -> got := `Down);
      Fiber.yield ();
      Chan.shutdown l;
      Fiber.yield ();
      check Alcotest.bool "accept returned None" true (!got = `Down);
      (* A down listener refuses (a contained, supervisable condition),
         never Invalid_argument (which would escape containment). *)
      (match Chan.connect l with
      | _ -> Alcotest.fail "connect after shutdown"
      | exception Chan.Refused _ -> ());
      check Alcotest.int "refusal counted" 1 (Chan.refused l))

let test_listener_queueing () =
  Fiber.run (fun () ->
      let l = Chan.listener () in
      let c1 = Chan.connect l in
      let c2 = Chan.connect l in
      check Alcotest.int "two pending" 2 (Chan.pending l);
      Chan.write_string c1 "1";
      Chan.write_string c2 "2";
      let s1 = Option.get (Chan.accept l) in
      let s2 = Option.get (Chan.accept l) in
      check Alcotest.string "fifo order" "1" (Bytes.to_string (Chan.read s1 1));
      check Alcotest.string "fifo order 2" "2" (Bytes.to_string (Chan.read s2 1)))

(* ---------- lineio ---------- *)

let mk_lineio input =
  let pos = ref 0 in
  let recv n =
    let len = min n (String.length input - !pos) in
    let b = Bytes.of_string (String.sub input !pos len) in
    pos := !pos + len;
    b
  in
  let out = Buffer.create 32 in
  (Lineio.create ~recv ~send:(Buffer.add_bytes out) (), out)

let test_lineio_lines () =
  let io, _ = mk_lineio "one\r\ntwo\nthree" in
  check (Alcotest.option Alcotest.string) "crlf" (Some "one") (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "lf" (Some "two") (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "unterminated tail" (Some "three") (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "eof" None (Lineio.read_line io)

let test_lineio_empty_lines () =
  let io, _ = mk_lineio "\r\n\na" in
  check (Alcotest.option Alcotest.string) "empty crlf" (Some "") (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "empty lf" (Some "") (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "tail" (Some "a") (Lineio.read_line io)

let test_lineio_eof_cr_tail () =
  (* Regression: a final line terminated by EOF right after '\r' (the
     peer died between the '\r' and the '\n') must strip the '\r' just
     like the newline path does. *)
  let io, _ = mk_lineio "QUIT\r" in
  check (Alcotest.option Alcotest.string) "cr tail stripped" (Some "QUIT")
    (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "eof after tail" None (Lineio.read_line io);
  (* Only one trailing '\r' is stripped; interior ones survive. *)
  let io2, _ = mk_lineio "a\rb\r" in
  check (Alcotest.option Alcotest.string) "interior cr kept" (Some "a\rb")
    (Lineio.read_line io2)

let test_lineio_read_exact_mixes_with_lines () =
  let io, _ = mk_lineio "HDR\r\nBODYBODY!" in
  check (Alcotest.option Alcotest.string) "line" (Some "HDR") (Lineio.read_line io);
  check (Alcotest.option Alcotest.string) "exact" (Some "BODYBODY!")
    (Option.map Bytes.to_string (Lineio.read_exact io 9));
  check Alcotest.bool "short read is None" true (Lineio.read_exact io 5 = None)

let test_lineio_write_line () =
  let io, out = mk_lineio "" in
  Lineio.write_line io "hello";
  check Alcotest.string "crlf appended" "hello\r\n" (Buffer.contents out)

(* ---------- mitm actions ---------- *)

let run_mitm handler client_script server_script =
  let mitm = Mitm.create ~handler () in
  Fiber.run (fun () ->
      let client_ep, mitm_client = Chan.pair () in
      let mitm_server, server_ep = Chan.pair () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () -> server_script server_ep);
      client_script client_ep;
      Chan.close client_ep);
  mitm

let test_mitm_replace () =
  let seen = ref "" in
  let handler dir chunk =
    match dir with
    | Mitm.Client_to_server when Bytes.to_string chunk = "attack-me" ->
        Mitm.Replace (Bytes.of_string "replaced!")
    | _ -> Mitm.Forward
  in
  let _ =
    run_mitm handler
      (fun c ->
        Chan.write_string c "attack-me";
        Fiber.yield ())
      (fun s -> seen := Bytes.to_string (Option.get (Chan.read_exact s 9)))
  in
  check Alcotest.string "server saw the substitution" "replaced!" !seen

let test_mitm_drop () =
  let seen = ref "" in
  let handler dir chunk =
    if dir = Mitm.Client_to_server && Bytes.to_string chunk = "secret" then Mitm.Drop
    else Mitm.Forward
  in
  let _ =
    run_mitm handler
      (fun c ->
        Chan.write_string c "secret";
        Fiber.yield ();
        Chan.write_string c "public";
        Fiber.yield ())
      (fun s -> seen := Bytes.to_string (Option.get (Chan.read_exact s 6)))
  in
  check Alcotest.string "dropped chunk never arrived" "public" !seen

let test_mitm_captures_both_directions () =
  let mitm =
    run_mitm
      (fun _ _ -> Mitm.Forward)
      (fun c ->
        Chan.write_string c "question";
        ignore (Chan.read_exact c 6))
      (fun s ->
        ignore (Chan.read_exact s 8);
        Chan.write_string s "answer")
  in
  check Alcotest.string "c2s" "question" (Mitm.captured mitm Mitm.Client_to_server);
  check Alcotest.string "s2c" "answer" (Mitm.captured mitm Mitm.Server_to_client)

(* ---------- kernel-copy endpoints (channel <-> Vm memory) ---------- *)

module Physmem = Wedge_kernel.Physmem
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot

let mk_vm () =
  let pm = Physmem.create () in
  let vm = Vm.create ~pid:1 pm (Clock.create ()) Cost_model.free in
  Vm.map_fresh vm ~addr:0x1000 ~pages:2 ~prot:Prot.page_rw ~tag:None;
  vm

let test_chan_vm_roundtrip () =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      let vm = mk_vm () in
      Vm.write_bytes vm 0x1000 (Bytes.of_string "payload via pages");
      Chan.write_from b vm ~addr:0x1000 ~len:17;
      let n = Chan.read_into a vm ~addr:0x1800 100 in
      check Alcotest.int "all bytes landed" 17 n;
      check Alcotest.string "roundtrip through Vm memory" "payload via pages"
        (Bytes.to_string (Vm.read_bytes vm 0x1800 17)))

let test_chan_read_into_faults_cleanly () =
  (* Payload directed at a read-only page: the checked atomic write
     faults with nothing written, and the fault surfaces to the caller
     rather than corrupting memory. *)
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      let vm = mk_vm () in
      Vm.protect_range vm ~addr:0x1000 ~pages:1 ~prot:Prot.page_r;
      Chan.write_string b "attack";
      (match Chan.read_into a vm ~addr:0x1000 6 with
      | _ -> Alcotest.fail "expected Vm.Fault"
      | exception Vm.Fault _ -> ());
      check Alcotest.int "read-only page untouched" 0 (Vm.read_u8 vm 0x1000))

(* ---------- vectored kernel-copy (readv/writev) properties ----------

   Differential properties against the scalar path: a vectored call must
   scatter/gather exactly the bytes the plain read/write calls would
   move, across page boundaries, through capacity watermarks, and a
   protection fault mid-vector must never tear a run or lose a byte.
   All draws come from the suite's seeded PRNG (WEDGE_TEST_SEED). *)

let mk_vm4 () =
  let pm = Physmem.create () in
  let vm = Vm.create ~pid:1 pm (Clock.create ()) Cost_model.free in
  Vm.map_fresh vm ~addr:0x1000 ~pages:4 ~prot:Prot.page_rw ~tag:None;
  vm

(* Runs as (length, preceding gap); laid out in order from [base] so the
   random gaps make runs straddle page boundaries at arbitrary offsets. *)
let iov_gen =
  QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 0 50) (int_range 0 24)))

let layout ~base runs =
  let addr = ref base in
  Array.of_list
    (List.map
       (fun (len, gap) ->
         addr := !addr + gap;
         let a = !addr in
         addr := !addr + len;
         (a, len))
       runs)

let payload_of n = String.init n (fun i -> Char.chr (Char.code 'a' + (i mod 26)))

let drain_to_eof ep =
  let buf = Buffer.create 64 in
  let rec go () =
    let b = Chan.read ep 4096 in
    if Bytes.length b > 0 then begin
      Buffer.add_bytes buf b;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let prop_readv_scatter_equivalence =
  Test_rng.to_alcotest
    (QCheck.Test.make ~name:"readv == scatter of plain reads" ~count:100
       QCheck.(pair (int_range 1 600) iov_gen)
       (fun (plen, runs) ->
         let payload = payload_of plen in
         let ok = ref false in
         Fiber.run (fun () ->
             let a, b = Chan.pair () in
             let vm = mk_vm4 () in
             Chan.write_string b payload;
             Chan.close b;
             let iovs = layout ~base:0x1000 runs in
             let want = Array.fold_left (fun acc (_, l) -> acc + l) 0 iovs in
             let n = Chan.readv a vm iovs in
             (* Exactly what the scalar path would deliver from a closed
                peer: min(buffered, want), filled in run order. *)
             let expected = min plen want in
             let delivered = Buffer.create 64 in
             let left = ref n in
             Array.iter
               (fun (addr, len) ->
                 let take = min len !left in
                 if take > 0 then
                   Buffer.add_bytes delivered (Vm.read_bytes vm addr take);
                 left := !left - take)
               iovs;
             let rest = drain_to_eof a in
             ok :=
               n = expected
               && Buffer.contents delivered = String.sub payload 0 expected
               && rest = String.sub payload expected (plen - expected));
         !ok))

let prop_writev_gather_equivalence =
  Test_rng.to_alcotest
    (QCheck.Test.make ~name:"writev == gather of plain writes" ~count:100 iov_gen
       (fun runs ->
         let ok = ref false in
         Fiber.run (fun () ->
             let a, b = Chan.pair () in
             let vm = mk_vm4 () in
             let iovs = layout ~base:0x1000 runs in
             let total = Array.fold_left (fun acc (_, l) -> acc + l) 0 iovs in
             (* Distinct content per run so a gather that reorders or
                duplicates runs cannot pass. *)
             let expected = Buffer.create 64 in
             Array.iteri
               (fun i (addr, len) ->
                 let s =
                   String.init len (fun j ->
                       Char.chr (Char.code 'A' + ((i + j) mod 26)))
                 in
                 Buffer.add_string expected s;
                 Vm.write_bytes vm addr (Bytes.of_string s))
               iovs;
             let n = Chan.writev b vm iovs in
             Chan.close b;
             let got = drain_to_eof a in
             ok := n = total && got = Buffer.contents expected);
         !ok))

let prop_readv_fault_mid_vector =
  Test_rng.to_alcotest
    (QCheck.Test.make
       ~name:"readv fault mid-vector: prior runs land, no byte lost" ~count:100
       QCheck.(triple iov_gen (int_range 1 50) (int_range 1 100))
       (fun (runs, bad_len, extra) ->
         (* Good runs stay inside the first two pages; the final run
            targets the read-only page at 0x3000.  The payload is long
            enough to reach it, so the vector must fault there — after
            the good runs were delivered and consumed, with the rest
            still buffered. *)
         let ok = ref false in
         Fiber.run (fun () ->
             let a, b = Chan.pair () in
             let vm = mk_vm4 () in
             Vm.protect_range vm ~addr:0x3000 ~pages:1 ~prot:Prot.page_r;
             let good = layout ~base:0x1000 runs in
             let good_want = Array.fold_left (fun acc (_, l) -> acc + l) 0 good in
             let iovs = Array.append good [| (0x3000, bad_len) |] in
             let plen = good_want + extra in
             let payload = payload_of plen in
             Chan.write_string b payload;
             Chan.close b;
             match Chan.readv a vm iovs with
             | _ -> ()
             | exception Vm.Fault f ->
                 let delivered = Buffer.create 64 in
                 Array.iter
                   (fun (addr, len) ->
                     if len > 0 then
                       Buffer.add_bytes delivered (Vm.read_bytes vm addr len))
                   good;
                 let rest = drain_to_eof a in
                 ok :=
                   Buffer.contents delivered = String.sub payload 0 good_want
                   && rest = String.sub payload good_want extra
                   && Wedge_core.Wedge.fault_reason (Vm.Fault f) <> None);
         !ok))

let prop_writev_fault_no_partial_write =
  Test_rng.to_alcotest
    (QCheck.Test.make ~name:"writev fault mid-vector: nothing reaches the wire"
       ~count:100
       QCheck.(pair iov_gen (int_range 1 50))
       (fun (runs, bad_len) ->
         let ok = ref false in
         Fiber.run (fun () ->
             let a, b = Chan.pair () in
             let vm = mk_vm4 () in
             let good = layout ~base:0x1000 runs in
             Array.iter
               (fun (addr, len) -> Vm.write_bytes vm addr (Bytes.make len 'g'))
               good;
             Vm.protect_range vm ~addr:0x3000 ~pages:1 ~prot:Prot.page_none;
             let iovs = Array.append good [| (0x3000, bad_len) |] in
             match Chan.writev b vm iovs with
             | _ -> ()
             | exception Vm.Fault f ->
                 ok :=
                   Chan.bytes_in_flight a = 0
                   && Wedge_core.Wedge.fault_reason (Vm.Fault f) <> None);
         !ok))

let prop_readv_partial_at_capacity_watermark =
  Test_rng.to_alcotest
    (QCheck.Test.make ~name:"readv through a capacity watermark loses nothing"
       ~count:60
       QCheck.(triple (int_range 8 64) (int_range 1 300) (int_range 1 8))
       (fun (cap, extra, step) ->
         let plen = cap + extra in
         let payload = payload_of plen in
         let ok = ref false in
         Fiber.run (fun () ->
             let a, b = Chan.pair ~capacity:cap () in
             let vm = mk_vm4 () in
             (* Dribble in [step]-byte writes so the writer actually hits
                the high watermark and blocks mid-payload. *)
             Fiber.spawn (fun () ->
                 let off = ref 0 in
                 while !off < plen do
                   let n = min step (plen - !off) in
                   Chan.write_string b (String.sub payload !off n);
                   off := !off + n
                 done;
                 Chan.close b);
             Fiber.wait_until ~what:"writer at watermark" (fun () ->
                 Chan.bytes_in_flight a >= cap);
             (* The writer is wedged at the watermark: the first vectored
                read sees a partial request, bounded by cap plus the
                final sub-watermark push. *)
             let iovs = [| (0x1000, plen) |] in
             let first = Chan.readv a vm iovs in
             let got = Buffer.create 64 in
             Buffer.add_bytes got (Vm.read_bytes vm 0x1000 first);
             let rec go () =
               let n = Chan.readv a vm iovs in
               if n > 0 then begin
                 Buffer.add_bytes got (Vm.read_bytes vm 0x1000 n);
                 go ()
               end
             in
             go ();
             ok := first > 0 && first < cap + step && Buffer.contents got = payload);
         !ok))

let () =
  Alcotest.run "wedge_net"
    [
      ( "chan",
        [
          Alcotest.test_case "partial reads" `Quick test_partial_reads;
          Alcotest.test_case "read_exact across writes" `Quick test_read_exact_across_writes;
          Alcotest.test_case "eof mid message" `Quick test_read_exact_eof_mid_message;
          Alcotest.test_case "write after close" `Quick test_write_after_close_rejected;
          Alcotest.test_case "rtt charging" `Quick test_blocking_read_charges_rtt;
          Alcotest.test_case "bytes in flight" `Quick test_bytes_in_flight;
          Alcotest.test_case "listener shutdown" `Quick test_listener_shutdown;
          Alcotest.test_case "listener queueing" `Quick test_listener_queueing;
          Alcotest.test_case "vm kernel-copy roundtrip" `Quick test_chan_vm_roundtrip;
          Alcotest.test_case "read_into faults cleanly" `Quick test_chan_read_into_faults_cleanly;
        ] );
      ( "vectored",
        [
          prop_readv_scatter_equivalence;
          prop_writev_gather_equivalence;
          prop_readv_fault_mid_vector;
          prop_writev_fault_no_partial_write;
          prop_readv_partial_at_capacity_watermark;
        ] );
      ( "lineio",
        [
          Alcotest.test_case "line termination styles" `Quick test_lineio_lines;
          Alcotest.test_case "empty lines" `Quick test_lineio_empty_lines;
          Alcotest.test_case "eof right after cr" `Quick test_lineio_eof_cr_tail;
          Alcotest.test_case "lines + exact reads" `Quick test_lineio_read_exact_mixes_with_lines;
          Alcotest.test_case "write_line" `Quick test_lineio_write_line;
        ] );
      ( "mitm",
        [
          Alcotest.test_case "replace" `Quick test_mitm_replace;
          Alcotest.test_case "drop" `Quick test_mitm_drop;
          Alcotest.test_case "captures both directions" `Quick test_mitm_captures_both_directions;
        ] );
    ]
