type pte = {
  mutable frame : int;
  mutable prot : Prot.page;
  mutable tag : int option;
}

(* The epoch advances on every structural change (map/unmap), so a cached
   translation can be validated with one integer compare.  In-place pte
   mutations (a protection downgrade, a COW frame swap) deliberately do
   NOT advance it: those are the revocation paths that must perform an
   explicit TLB shootdown, and the tests assert they do. *)
type t = {
  tbl : (int, pte) Hashtbl.t;
  mutable epoch : int;
}

let create () : t = { tbl = Hashtbl.create 512; epoch = 0 }

let epoch t = t.epoch

let map t ~vpn ~frame ~prot ~tag =
  if Hashtbl.mem t.tbl vpn then
    invalid_arg (Printf.sprintf "Pagetable.map: vpn 0x%x already mapped" vpn);
  t.epoch <- t.epoch + 1;
  Hashtbl.add t.tbl vpn { frame; prot; tag }

let unmap t ~vpn =
  match Hashtbl.find_opt t.tbl vpn with
  | Some pte ->
      t.epoch <- t.epoch + 1;
      Hashtbl.remove t.tbl vpn;
      Some pte
  | None -> None

let find t ~vpn = Hashtbl.find_opt t.tbl vpn
let mem t ~vpn = Hashtbl.mem t.tbl vpn
let count t = Hashtbl.length t.tbl
let iter f t = Hashtbl.iter f t.tbl
let fold f t init = Hashtbl.fold f t.tbl init
