type kind =
  | Main
  | Sthread
  | Cgate
  | Recycled
  | Forked

type status =
  | Running
  | Exited of int
  | Faulted of string

type t = {
  pid : int;
  kind : kind;
  mutable uid : int;
  mutable root : string;
  mutable sid : string;
  vm : Vm.t;
  fds : Fd_table.t;
  limits : Rlimit.t;
  mutable status : status;
}

let kind_to_string = function
  | Main -> "main"
  | Sthread -> "sthread"
  | Cgate -> "cgate"
  | Recycled -> "recycled"
  | Forked -> "forked"

let is_alive t = t.status = Running
