(** Per-process file descriptor tables.

    Sthreads inherit only the descriptors named in their security policy
    (§3.1), each with read/write permission bits checked on every use.
    Descriptor targets are either VFS files or abstract byte-stream
    endpoints (sockets from the network simulator, which plugs in via the
    {!endpoint} record to avoid a dependency cycle). *)

type perm = {
  fr : bool;
  fw : bool;
}

val perm_r : perm
val perm_w : perm
val perm_rw : perm

val perm_subsumes : parent:perm -> child:perm -> bool

(** A duplex byte-stream endpoint (socket-like). *)
type endpoint = {
  ep_read : int -> bytes;  (** read up to n bytes; may block the fiber *)
  ep_write : bytes -> unit;
  ep_close : unit -> unit;
  ep_eof : unit -> bool;  (** no data buffered and peer closed *)
  ep_desc : string;
  ep_wait : (unit -> unit) option;
      (** block — park, on a reactor-driven endpoint — until [ep_read]
          can make progress (readable, EOF, or cut).  The engine calls
          it {e before} the syscall trap, so a blocked read charges no
          fuel while idle. *)
  ep_readv : (Vm.t -> (int * int) array -> int) option;
  ep_writev : (Vm.t -> (int * int) array -> int) option;
      (** vectored kernel-copy paths over [(addr, len)] runs in the given
          address space; [None] makes the engine scatter/gather over
          [ep_read]/[ep_write] instead *)
}

type target =
  | File of file_handle
  | Endpoint of endpoint
  | Null

and file_handle = {
  fh_path : string;
  mutable fh_pos : int;
}

type entry = {
  target : target;
  perm : perm;
  mutable closed : bool;
}

type t

val create : ?limits:Rlimit.t -> unit -> t
(** [limits] charges one fd-quota unit per open descriptor (released on
    {!close}); installing past the cap raises
    {!Rlimit.Resource_exhausted}. *)

val add : t -> target -> perm -> int
(** Install a target, returning the new descriptor number. *)

val find : t -> int -> entry option
val close : t -> int -> unit
val dup_into : src:t -> dst:t -> fd:int -> perm:perm -> unit
(** Copy descriptor [fd] from [src] to [dst] under the same number with
    (possibly reduced) permission [perm].
    @raise Invalid_argument if [fd] is not open in [src] or [perm] exceeds
    the source permission. *)

val install : t -> fd:int -> target -> perm -> unit
(** Install a target under a specific descriptor number (kernel use: giving
    a callgate the descriptors its creator granted it).
    @raise Invalid_argument if the number is taken. *)

val count : t -> int
val fds : t -> int list
