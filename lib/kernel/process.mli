(** Process control blocks.  Sthreads are implemented as a variant of
    processes (§4.1): private address space, private fd copies, own uid,
    filesystem root and SELinux SID. *)

type kind =
  | Main      (** the application's original process *)
  | Sthread
  | Cgate     (** an sthread created to run one callgate invocation *)
  | Recycled  (** a long-lived sthread backing a recycled callgate *)
  | Forked    (** full-fork child (the privilege-separation baseline) *)

type status =
  | Running
  | Exited of int
  | Faulted of string

type t = {
  pid : int;
  kind : kind;
  mutable uid : int;
  mutable root : string;  (** filesystem root (chroot) *)
  mutable sid : string;   (** SELinux security identifier *)
  vm : Vm.t;
  fds : Fd_table.t;
  limits : Rlimit.t;  (** resource quotas (frames / fds / syscall fuel) *)
  mutable status : status;
}

val kind_to_string : kind -> string
val is_alive : t -> bool
