(** The simulated kernel: physical memory, clock, VFS, SELinux policy and
    the process table, plus the privilege checks every simulated system
    call passes through. *)

exception Eperm of string
(** A system call was denied (SELinux policy, uid check, or privilege
    escalation attempt). *)

type t = {
  pm : Physmem.t;
  clock : Wedge_sim.Clock.t;
  costs : Wedge_sim.Cost_model.t;
  vfs : Vfs.t;
  selinux : Selinux.t;
  stats : Wedge_sim.Stats.t;
  trace : Wedge_sim.Trace.t;
  faults : Wedge_fault.Fault_plan.t option;
  shard : int;
      (** which kernel shard this is in a multi-kernel world (0 in the
          single-kernel one); labels traces and oracle reports *)
  mutable next_pid : int;
  procs : (int, Process.t) Hashtbl.t;
  mem_rec : Vm.recorder;
      (** one {!Vm.recorder} cell shared by every address space this
          kernel creates — arm it ([:= Some f]) to stream the globally
          ordered memory events of all processes to a differential
          checker, disarm with [:= None] *)
  mutable on_syscall : (string -> unit) option;
      (** invariant-oracle hook, called with the syscall name on entry to
          {!syscall_check}, before any charge or policy check runs *)
}

val create :
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  ?max_frames:int ->
  ?shard:int ->
  unit ->
  t
(** [faults] threads a fault plan into physical-memory allocation and
    every process's MMU checks; [max_frames] caps live physical frames
    (exhaustion raises {!Physmem.Enomem}); [shard] (default 0) labels
    this kernel in a sharded multi-kernel world
    (see {!Wedge_net.Shard}). *)

val charge : t -> int -> unit
val trap : t -> string -> unit
(** Charge one system-call trap and bump the named stat. *)

val new_process :
  t ->
  ?limits:Rlimit.t ->
  kind:Process.kind ->
  uid:int ->
  root:string ->
  sid:string ->
  unit ->
  Process.t
(** Allocate a PCB with an empty address space and fd table.  [limits]
    (default unlimited) bounds the process's private frames, open
    descriptors and syscall fuel; it should be a fresh-usage
    {!Rlimit.child_of} copy, never shared with another process. *)

val find_process : t -> int -> Process.t option

val iter_processes : t -> (Process.t -> unit) -> unit
(** Visit every process in the table (any status), in ascending pid
    order — a pure function of the table's contents, so shootdown traces
    and exploration digests never depend on hash-table history.  [f] may
    reap processes mid-walk.  Used by global revocations — e.g. tag
    deletion — that must unmap a range from, and shoot down cached
    translations in, {e every} address space that maps it, not just the
    caller's. *)

val reap : t -> Process.t -> unit
(** Tear down a terminated process's address space and descriptors.
    Folds the address space's TLB hit/miss/shootdown counters into
    {!field-stats} (keys ["tlb.hit"], ["tlb.miss"], ["tlb.shootdown"])
    before destroying it. *)

val syscall_check : t -> Process.t -> string -> unit
(** Enforce the caller's SELinux policy for a named system call.  With
    {!field-trace} armed, records a ["sys.<name>"] instant attributed to
    the calling pid.
    @raise Eperm when denied. *)

val syscall_check_batch : t -> Process.t -> string -> ops:int -> unit
(** {!syscall_check} for a vectored burst: one trap charge, one trace
    instant, one unit of fuel and one policy check amortize over [ops]
    operations, each past the first charging
    {!Wedge_sim.Cost_model.t.syscall_batch_op} (and counted under stat
    ["trap.batched_ops"]).  [ops = 1] is exactly {!syscall_check}. *)

val live_processes : t -> int

val register_metrics : Wedge_sim.Metrics.t -> t -> unit
(** Register this kernel's counters with a metrics registry: the stats
    table, live per-process TLB counters (summed with the reaped totals
    under the same keys), a live-process gauge, and — when a fault plan
    is attached — its injection and per-site op counts. *)
