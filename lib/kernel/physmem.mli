(** Simulated physical memory: 4 KiB frames with reference counts.

    Frames are shared between address spaces for copy-on-write (the pristine
    snapshot of §4.1) and for tagged-memory mappings; the reference count
    decides whether a COW write can claim the frame in place or must copy. *)

val page_size : int
(** 4096. *)

exception Enomem
(** Frame allocation failed: the configured [max_frames] budget is
    exhausted, or an attached fault plan fired at site ["physmem.alloc"].
    The engine turns this into compartment termination. *)

type t

val create : ?faults:Wedge_fault.Fault_plan.t -> ?max_frames:int -> unit -> t
(** [max_frames] caps live frames ({!frames_in_use}); allocation beyond it
    raises {!Enomem}.  Unbounded by default. *)

val alloc : t -> int
(** Allocate a zeroed frame with reference count 1; returns the frame
    number.
    @raise Enomem on budget exhaustion or injected allocation failure. *)

val get : t -> int -> bytes
(** The backing bytes of a live frame.  O(1).
    @raise Invalid_argument on a dead frame. *)

val incref : t -> int -> unit
val decref : t -> int -> unit
(** [decref] frees the frame when the count reaches zero. *)

val refcount : t -> int -> int
val frames_in_use : t -> int

val iter_live : t -> (int -> int -> unit) -> unit
(** [iter_live t f] calls [f frame refcount] for every live frame, in
    frame order.  Pure (no allocation charges, no fault rolls) — the
    refcount invariant oracle's view of ground truth. *)
