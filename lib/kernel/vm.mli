(** A process's virtual address space, with MMU-style enforcement.

    All compartment data access goes through checked reads and writes here;
    a protection violation raises {!Fault}, which the sthread machinery
    turns into compartment termination (the paper's SIGSEGV).  Writes to
    copy-on-write pages transparently take a private copy of the frame,
    charging the cost model. *)

type access =
  | Read
  | Write

type fault = {
  pid : int;
  addr : int;
  access : access;
  reason : string;
}

exception Fault of fault

val fault_to_string : fault -> string

type t

val create :
  ?faults:Wedge_fault.Fault_plan.t ->
  ?limits:Rlimit.t ->
  pid:int ->
  Physmem.t ->
  Wedge_sim.Clock.t ->
  Wedge_sim.Cost_model.t ->
  t
(** [faults] makes checked compartment accesses roll site ["vm.access"];
    a fired fault raises {!Fault} as a spurious protection fault.
    [limits] charges a frame-quota unit for every private frame this
    address space allocates ({!map_fresh} pages and COW copies; shared
    mappings are free), released again on unmap/destroy.  Exhaustion
    raises {!Rlimit.Resource_exhausted}. *)

val pid : t -> int
val page_table : t -> Pagetable.t

(** {2 Mapping} *)

val map_fresh :
  t -> addr:int -> pages:int -> prot:Prot.page -> tag:int option -> unit
(** Map freshly allocated zeroed frames at [addr] (page aligned). *)

val map_frame :
  t -> addr:int -> frame:int -> prot:Prot.page -> tag:int option -> unit
(** Map an existing frame (takes a reference). *)

val share_range :
  src:t -> dst:t -> addr:int -> pages:int -> prot:Prot.page -> unit
(** Map [src]'s frames for [addr..] into [dst] with protection [prot]
    (sharing, not copying; used to grant tagged memory to sthreads). *)

val unmap_range : t -> addr:int -> pages:int -> unit
val protect_range : t -> addr:int -> pages:int -> prot:Prot.page -> unit
val destroy : t -> unit
(** Unmap everything, releasing frame references. *)

val mapped_pages : t -> int

(** {2 Checked access (compartment code)} *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_bytes : t -> int -> int -> bytes
(** Bulk read.  Negative or absurd lengths (> 64 MiB, beyond any simulated
    region) fault immediately — so attacker-fabricated length fields hit
    the MMU, not the host allocator. *)

val write_bytes : t -> int -> bytes -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int
(** Little-endian; the top bit is lost (63-bit OCaml ints), which is fine
    for simulated pointers and lengths. *)

val write_u64 : t -> int -> int -> unit

val can_read : t -> addr:int -> len:int -> bool
val can_write : t -> addr:int -> len:int -> bool

(** {2 Unchecked access (kernel use only)} *)

val read_bytes_kernel : t -> int -> int -> bytes
(** Bypasses protection checks (still faults on unmapped pages). *)

val write_bytes_kernel : t -> int -> bytes -> unit
(** Bypasses protection checks but still performs COW breaks, so kernel
    writes never corrupt shared pristine frames. *)
