(** A process's virtual address space, with MMU-style enforcement.

    All compartment data access goes through checked reads and writes here;
    a protection violation raises {!Fault}, which the sthread machinery
    turns into compartment termination (the paper's SIGSEGV).  Writes to
    copy-on-write pages transparently take a private copy of the frame,
    charging the cost model.

    Translations are served through a per-address-space direct-mapped
    software TLB: the first access to a page walks the page table
    ([tlb_miss] cost) and caches frame bytes + effective protection;
    subsequent accesses hit the cache ([tlb_hit] cost).  Every path that
    revokes or downgrades a translation — {!unmap_range},
    {!protect_range}, COW breaks, {!set_page_prot}, {!set_page_tag},
    {!destroy} — shoots the affected entries down, so a revocation is
    visible to the very next access.  A stale entry surviving revocation
    would be a default-deny bypass; the shootdown test suite asserts there
    is none. *)

type access =
  | Read
  | Write

type fault = {
  pid : int;
  addr : int;
  access : access;
  reason : string;
}

exception Fault of fault

val fault_to_string : fault -> string

(** {2 Memory-event stream (differential checking)}

    With a {!recorder} cell armed, every structural change to the address
    space and every access outcome emits one event, in global order.  A
    reference model (see [lib/check]'s [Refvm]) consumes the stream and
    independently recomputes what each access should have observed. *)
type mem_event =
  | Ev_map of {
      pid : int;
      vpn : int;
      frame : int;
      prot : Prot.page;
      seed : bytes option;
          (** [None]: a freshly allocated zeroed frame; [Some snap]: an
              existing frame mapped in, with its content at map time *)
    }
  | Ev_unmap of { pid : int; vpn : int }
  | Ev_prot of { pid : int; vpn : int; prot : Prot.page }
  | Ev_cow of {
      pid : int;
      vpn : int;
      frame : int;  (** the frame backing [vpn] after the break *)
      prot : Prot.page;
    }
  | Ev_destroy of { pid : int }
  | Ev_read of {
      pid : int;
      addr : int;
      value : bytes;
      kernel : bool;
      u64 : bool;
          (** the value was observed through {!read_u64}'s 63-bit codec:
              it is the stored word with bit 63 cleared, and a model must
              mask its own word the same way before comparing *)
    }
  | Ev_write of {
      pid : int;
      addr : int;
      value : bytes;
          (** byte-identical to what landed in the frame (scalar stores
              are re-encoded exactly like the store itself, including the
              u64 bit-63 mask) *)
      kernel : bool;
    }
  | Ev_fault of {
      pid : int;
      addr : int;  (** the faulting address, not the access start *)
      access : access;
      reason : string;
      kernel : bool;
    }

type recorder = (mem_event -> unit) option ref
(** Shared by every address space of a kernel ({!Kernel.create} makes
    one); arm by setting the cell to [Some f], disarm with [None].  The
    disarmed cost is one load and compare per access. *)

type t

val create :
  ?faults:Wedge_fault.Fault_plan.t ->
  ?limits:Rlimit.t ->
  ?trace:Wedge_sim.Trace.t ->
  ?recorder:recorder ->
  pid:int ->
  Physmem.t ->
  Wedge_sim.Clock.t ->
  Wedge_sim.Cost_model.t ->
  t
(** [faults] makes checked compartment accesses roll site ["vm.access"]
    once per access (a u64 or a bulk blit is one roll, not one per byte);
    a fired fault raises {!Fault} as a spurious protection fault.
    [limits] charges a frame-quota unit for every private frame this
    address space allocates ({!map_fresh} pages and COW copies; shared
    mappings are free), released again on unmap/destroy.  Exhaustion
    raises {!Rlimit.Resource_exhausted}.  [trace] (default
    {!Wedge_sim.Trace.null}) records ["tlb.miss"]/["tlb.shootdown"]
    instants attributed to [pid] — off the TLB-hit fast path, which is
    never instrumented. *)

val pid : t -> int
val page_table : t -> Pagetable.t

(** {2 Mapping} *)

val map_fresh :
  t -> addr:int -> pages:int -> prot:Prot.page -> tag:int option -> unit
(** Map freshly allocated zeroed frames at [addr] (page aligned). *)

val map_frame :
  t -> addr:int -> frame:int -> prot:Prot.page -> tag:int option -> unit
(** Map an existing frame (takes a reference). *)

val map_image : t -> (int * int * Prot.page * int option) list -> unit
(** Bulk-install a frozen snapshot image: each [(vpn, frame, prot, tag)]
    entry takes one frame reference and lands directly in the page table.
    No per-page cost is charged — the caller accounts one flat stamp
    charge however many pages the image holds (the point of checkpoint/
    restore spawn).  Recorder events are emitted per page so differential
    reference VMs track the mappings. *)

val share_range :
  src:t -> dst:t -> addr:int -> pages:int -> prot:Prot.page -> unit
(** Map [src]'s frames for [addr..] into [dst] with protection [prot]
    (sharing, not copying; used to grant tagged memory to sthreads). *)

val unmap_range : t -> addr:int -> pages:int -> unit
(** Unmaps and shoots down any cached translations for the range. *)

val protect_range : t -> addr:int -> pages:int -> prot:Prot.page -> unit
(** Rewrites the protection of every mapped page in the range, charging a
    [pte_copy]-class cost per page, and shoots down any cached
    translations so the downgrade takes effect on the very next access. *)

val set_page_prot : t -> addr:int -> prot:Prot.page -> unit
(** Kernel bookkeeping: rewrite one page's protection in place (no cost
    charged — callers account for their own PTE work) with the mandatory
    shootdown.  Raises [Invalid_argument] if unmapped. *)

val set_page_tag : t -> addr:int -> tag:int option -> unit
(** Kernel bookkeeping: retag one page in place, with shootdown.
    Raises [Invalid_argument] if unmapped. *)

val destroy : t -> unit
(** Unmap everything, releasing frame references (flushes the TLB first). *)

val mapped_pages : t -> int

(** {2 Software TLB} *)

val tlb_invalidate : t -> vpn:int -> unit
(** Shoot down the cached translation for [vpn], if present.  Charges
    [tlb_shootdown] only when an entry actually dies. *)

val tlb_flush : t -> unit
(** Drop every cached translation (address-space teardown / switch). *)

val tlb_hits : t -> int
val tlb_misses : t -> int
val tlb_shootdowns : t -> int
(** Monotonic per-address-space counters, surfaced through kernel stats
    and [bench -- metrics]. *)

(** {2 Checked access (compartment code)} *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_bytes : t -> int -> int -> bytes
(** Bulk read.  Negative or absurd lengths (> 64 MiB, beyond any simulated
    region) fault immediately — so attacker-fabricated length fields hit
    the MMU, not the host allocator.  Translates once per page crossed,
    not once per byte. *)

val write_bytes : t -> int -> bytes -> unit
(** Bulk write; atomic across pages: every page is translated (and any
    COW break taken) before the first byte lands, so a fault on a later
    page never leaves a partial write on an earlier one. *)

val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit

val read_u64 : t -> int -> int
(** Little-endian, 63-bit domain: returns the low 63 bits of the stored
    64-bit word as a two's-complement OCaml int (bit 62 of the word is
    the result's sign bit; bit 63 is dropped).  Round-trips exactly with
    {!write_u64} for every OCaml int, including negatives.  Fine for
    simulated pointers and lengths, which never need bit 63. *)

val write_u64 : t -> int -> int -> unit
(** Stores the int's 63-bit pattern zero-extended to a 64-bit LE word
    (bit 63 of the stored word is always 0). *)

val can_read : t -> addr:int -> len:int -> bool
val can_write : t -> addr:int -> len:int -> bool
(** Advisory probes for policy decisions ("would this access be allowed
    right now").  They walk the page table directly — never the TLB,
    which they must not pollute — charge nothing, and are exempt from
    injected-fault rolls: a probe is a question, not an access, and no
    real MMU faults on a question. *)

(** {2 Oracle accessors (invariant checking)}

    Pure reads of ground truth: nothing here charges the clock, touches
    the TLB, or rolls injected faults, so an oracle running at every
    context switch cannot perturb the schedule it is checking. *)

val owned_count : t -> int
(** Number of vpns currently charged against the frame quota (fresh
    mappings and COW copies).  When {!quota_tracked}, this must equal
    [Rlimit.frames_used] of the attached limits at every sync point. *)

val owned_vpns : t -> int list
(** The charged vpns, sorted.  Every one must be currently mapped. *)

val quota_tracked : t -> bool
(** Whether a frame quota is attached (bounded [limits] at creation). *)

val tlb_check : t -> string list
(** Validate every servable TLB entry (valid vpn, current epoch) against
    the page table: same frame, physically identical byte store, same
    protection and tag.  Returns one message per disagreement — any entry
    here is a revocation that failed to shoot down, i.e. a default-deny
    bypass.  Empty means consistent. *)

(** {2 Unchecked access (kernel use only)} *)

val read_bytes_kernel : t -> int -> int -> bytes
(** Bypasses protection checks (still faults on unmapped pages). *)

val write_bytes_kernel : t -> int -> bytes -> unit
(** Bypasses protection checks but still performs COW breaks, so kernel
    writes never corrupt shared pristine frames.  Atomic across pages,
    like {!write_bytes}. *)
