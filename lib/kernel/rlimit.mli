(** Per-process resource quotas — the resource half of default-deny.

    A security context bounds what a compartment may {e touch}; an rlimit
    bounds what it may {e consume}: private physical frames, open file
    descriptors, and syscall fuel (one unit per kernel trap).  Limits are
    inherited and subsettable at sthread creation like fd grants; a child
    limit must be no looser than its parent's ({!subsumes}).

    Exhaustion raises {!Resource_exhausted}, which the engine contains as
    a compartment fault (same family as a protection fault or ENOMEM):
    the offending compartment dies, supervision decides what happens next,
    and the creator is unaffected. *)

exception Resource_exhausted of string

type t

val create : ?max_frames:int -> ?max_fds:int -> ?max_fuel:int -> unit -> t
(** Omitted fields are unlimited.  Usage counters start at zero. *)

val unlimited : unit -> t

val child_of : t -> t
(** Same caps, fresh (zero) usage — what a new process inherits. *)

val subsumes : parent:t -> child:t -> bool
(** Per-field: an unlimited parent field admits anything; a bounded parent
    field requires a bounded child field that is no larger. *)

val is_unlimited : t -> bool

(** {2 Charging — kernel paths only}

    Each charge raises {!Resource_exhausted} instead of exceeding a cap;
    releases never go below zero. *)

val charge_frames : t -> int -> unit
val release_frames : t -> int -> unit
val charge_fd : t -> unit
val release_fd : t -> unit
val charge_fuel : t -> int -> unit

val frames_used : t -> int
val fds_used : t -> int
val fuel_used : t -> int
val to_string : t -> string
