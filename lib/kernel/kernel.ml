module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics

exception Eperm of string

type t = {
  pm : Physmem.t;
  clock : Clock.t;
  costs : Cost_model.t;
  vfs : Vfs.t;
  selinux : Selinux.t;
  stats : Stats.t;
  trace : Trace.t;
  faults : Wedge_fault.Fault_plan.t option;
  shard : int;
      (* which kernel shard this is in a multi-kernel world (0 in the
         single-kernel one); labels traces and oracle reports *)
  mutable next_pid : int;
  procs : (int, Process.t) Hashtbl.t;
  mem_rec : Vm.recorder;
      (* one recorder cell shared by every address space this kernel
         creates, so an armed consumer sees the globally ordered
         cross-process memory-event stream *)
  mutable on_syscall : (string -> unit) option;
      (* invariant-oracle hook, called on entry to [syscall_check] *)
}

let create ?(costs = Cost_model.default) ?faults ?max_frames ?(shard = 0) () =
  let clock = Clock.create () in
  {
    pm = Physmem.create ?faults ?max_frames ();
    clock;
    costs;
    vfs = Vfs.create ();
    selinux = Selinux.create ();
    stats = Stats.create ();
    trace = Trace.create ~clock ();
    faults;
    shard;
    next_pid = 1;
    procs = Hashtbl.create 32;
    mem_rec = ref None;
    on_syscall = None;
  }

let charge t ns = Clock.charge t.clock ns

let trap t name =
  charge t t.costs.Cost_model.syscall_trap;
  Stats.bump t.stats ("trap." ^ name)

let new_process t ?limits ~kind ~uid ~root ~sid () =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  charge t t.costs.Cost_model.proc_struct;
  let limits = match limits with Some l -> l | None -> Rlimit.unlimited () in
  let vm_limits = if Rlimit.is_unlimited limits then None else Some limits in
  let p =
    {
      Process.pid;
      kind;
      uid;
      root;
      sid;
      vm =
        Vm.create ?faults:t.faults ?limits:vm_limits ~trace:t.trace
          ~recorder:t.mem_rec ~pid t.pm t.clock t.costs;
      fds = Fd_table.create ?limits:vm_limits ();
      limits;
      status = Process.Running;
    }
  in
  Hashtbl.add t.procs pid p;
  p

let find_process t pid = Hashtbl.find_opt t.procs pid

(* Global revocations (tag deletion's shootdown sweep) and the invariant
   oracles both walk the whole process table; [Hashtbl.iter]'s order
   depends on insertion/resize history, which made shootdown traces —
   and therefore exploration digests — differ between otherwise
   identical runs.  Sorted-pid order is a pure function of the table's
   contents.  The pid list is snapshotted first so [f] may remove
   entries (reap) without invalidating the walk. *)
let iter_processes t f =
  let pids = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.procs [] in
  List.iter
    (fun pid -> match Hashtbl.find_opt t.procs pid with Some p -> f p | None -> ())
    (List.sort compare pids)

(* Fold the address space's TLB counters into the kernel stats before the
   Vm goes away, so short-lived sthreads still show up in the totals. *)
let fold_tlb_stats t (p : Process.t) =
  let vm = p.Process.vm in
  let bump key n = if n > 0 then Stats.add t.stats key n in
  bump "tlb.hit" (Vm.tlb_hits vm);
  bump "tlb.miss" (Vm.tlb_misses vm);
  bump "tlb.shootdown" (Vm.tlb_shootdowns vm)

let reap t (p : Process.t) =
  fold_tlb_stats t p;
  Vm.destroy p.Process.vm;
  List.iter (fun fd -> Fd_table.close p.Process.fds fd) (Fd_table.fds p.Process.fds);
  Hashtbl.remove t.procs p.Process.pid

(* Batched dispatch: one kernel entry amortized over a burst of [ops]
   vectored operations.  One oracle-hook call, one trap charge, one
   trace instant, one unit of fuel, one policy check — plus a per-op
   batch price for everything past the first.  [ops = 1] is byte-for-byte
   the historical [syscall_check], so every existing cost shape
   (fig7/fig8) is untouched. *)
let syscall_check_batch t (p : Process.t) name ~ops =
  (* The oracle hook runs first: it checks the state the syscall found,
     before the trap charges fuel or anything else moves. *)
  (match t.on_syscall with Some f -> f name | None -> ());
  trap t name;
  if ops > 1 then begin
    charge t ((ops - 1) * t.costs.Cost_model.syscall_batch_op);
    Stats.add t.stats "trap.batched_ops" (ops - 1)
  end;
  (* The [enabled] guard keeps the disabled path free of the string
     concatenation below. *)
  if Trace.enabled t.trace then
    Trace.instant t.trace ~name:("sys." ^ name) ~pid:p.Process.pid;
  (* One unit of syscall fuel per trap — for a batch too: the fuel quota
     bounds kernel entries, and a batch enters once.  A compartment in a
     hostile loop burns out deterministically instead of spinning
     forever. *)
  Rlimit.charge_fuel p.Process.limits 1;
  if not (Selinux.check t.selinux ~sid:p.Process.sid ~syscall:name) then
    raise
      (Eperm
         (Printf.sprintf "pid %d (sid %s): syscall %s denied by SELinux policy"
            p.Process.pid p.Process.sid name))

let syscall_check t p name = syscall_check_batch t p name ~ops:1

let live_processes t =
  Hashtbl.fold (fun _ p n -> if Process.is_alive p then n + 1 else n) t.procs 0

(* Registry sources covering everything the kernel can see: its own stats
   table (traps, compartment faults, supervisor counters, reaped TLB
   totals) plus the live per-process TLB counters not yet folded in by
   [reap].  [Metrics.snapshot] sums duplicate keys, so live + reaped
   under "tlb.hit"/"tlb.miss"/"tlb.shootdown" reads as the true total.
   The attached fault plan, when present, registers its own source. *)
let register_metrics m t =
  Metrics.register_stats m ~name:"kernel.stats" t.stats;
  Metrics.register m ~name:"kernel.tlb" ~kind:Metrics.Counter (fun () ->
      let hit = ref 0 and miss = ref 0 and shoot = ref 0 in
      iter_processes t (fun p ->
          let vm = p.Process.vm in
          hit := !hit + Vm.tlb_hits vm;
          miss := !miss + Vm.tlb_misses vm;
          shoot := !shoot + Vm.tlb_shootdowns vm);
      [ ("tlb.hit", !hit); ("tlb.miss", !miss); ("tlb.shootdown", !shoot) ]);
  Metrics.register m ~name:"kernel.procs" (fun () ->
      [ ("kernel.live_processes", live_processes t) ]);
  match t.faults with
  | Some plan -> Metrics.register_fault_plan m plan
  | None -> ()
