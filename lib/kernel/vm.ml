module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model

type access =
  | Read
  | Write

type fault = {
  pid : int;
  addr : int;
  access : access;
  reason : string;
}

exception Fault of fault

let fault_to_string f =
  Printf.sprintf "protection fault: pid %d %s at 0x%x (%s)" f.pid
    (match f.access with Read -> "read" | Write -> "write")
    f.addr f.reason

(* ------------------------------------------------------------------ *)
(* Memory-event stream (differential checking)                         *)

(* When the recorder cell is armed, every structural change to an address
   space and every access outcome emits one event.  The cell is shared by
   all address spaces of a kernel (see [Kernel.create]) so one consumer
   observes the globally ordered, cross-process stream — which is what a
   reference model needs to follow COW sharing between processes.  The
   disarmed cost is one load and compare per access, off the per-byte
   path. *)
type mem_event =
  | Ev_map of {
      pid : int;
      vpn : int;
      frame : int;
      prot : Prot.page;
      seed : bytes option;
          (* [None]: a freshly allocated zeroed frame.  [Some snap]: an
             existing frame mapped in; [snap] is its content at map time,
             so a model that has never seen the frame can seed it. *)
    }
  | Ev_unmap of { pid : int; vpn : int }
  | Ev_prot of { pid : int; vpn : int; prot : Prot.page }
  | Ev_cow of {
      pid : int;
      vpn : int;
      frame : int;  (* the frame backing [vpn] after the break *)
      prot : Prot.page;
    }
  | Ev_destroy of { pid : int }
  | Ev_read of { pid : int; addr : int; value : bytes; kernel : bool; u64 : bool }
  | Ev_write of { pid : int; addr : int; value : bytes; kernel : bool }
  | Ev_fault of {
      pid : int;
      addr : int;  (* the faulting address, not the access start *)
      access : access;
      reason : string;
      kernel : bool;
    }

type recorder = (mem_event -> unit) option ref

(* ------------------------------------------------------------------ *)
(* Software TLB                                                        *)

(* Direct-mapped, per-address-space translation cache: vpn -> frame bytes
   + effective protection + tag.  The fast path costs one array index,
   three compares and a byte access — no hashtable walk, no fault roll
   per byte.  Safety comes from two mechanisms:
     - every entry is stamped with the page table's epoch at fill time,
       so any map/unmap invalidates the whole cache with one compare;
     - in-place pte mutations (protect_range, COW breaks, tag retags) do
       not move the epoch and MUST call [tlb_invalidate] — a stale entry
       surviving a revocation would be a default-deny bypass, so those
       call sites are load-bearing and covered by the shootdown tests. *)

let tlb_slots = 64
let tlb_mask = tlb_slots - 1

type tlb_entry = {
  mutable e_vpn : int;  (* -1 = invalid *)
  mutable e_epoch : int;  (* Pagetable.epoch at fill time *)
  mutable e_bytes : Bytes.t;  (* the frame's backing store *)
  mutable e_prot : Prot.page;  (* effective protection at fill time *)
  mutable e_tag : int option;
  mutable e_frame : int;
}

type t = {
  pid : int;
  pm : Physmem.t;
  pt : Pagetable.t;
  clock : Clock.t;
  costs : Cost_model.t;
  faults : Wedge_fault.Fault_plan.t option;
  limits : Rlimit.t option;
  trace : Wedge_sim.Trace.t;
      (* instrumented off the fast path only: misses and shootdowns, not
         hits — an armed trace never slows the hit path *)
  owned : (int, unit) Hashtbl.t;
      (* vpns whose frames were charged to [limits]: fresh mappings and
         private COW copies.  Shared mappings (pristine snapshot, tag
         grants) are never charged — the quota bounds private frames. *)
  recorder : recorder;
  tlb : tlb_entry array;
  mutable tlb_hit_n : int;
  mutable tlb_miss_n : int;
  mutable tlb_shootdown_n : int;
}

let create ?faults ?limits ?(trace = Wedge_sim.Trace.null) ?recorder ~pid pm clock
    costs =
  {
    pid;
    pm;
    pt = Pagetable.create ();
    clock;
    costs;
    faults;
    limits;
    trace;
    owned = Hashtbl.create 64;
    recorder = (match recorder with Some r -> r | None -> ref None);
    tlb =
      Array.init tlb_slots (fun _ ->
          {
            e_vpn = -1;
            e_epoch = 0;
            e_bytes = Bytes.empty;
            e_prot = Prot.page_none;
            e_tag = None;
            e_frame = -1;
          });
    tlb_hit_n = 0;
    tlb_miss_n = 0;
    tlb_shootdown_n = 0;
  }
let pid t = t.pid
let page_table t = t.pt
let page_size = Physmem.page_size
let vpn_of addr = addr lsr 12
let off_of addr = addr land (page_size - 1)

let fault t addr access reason = raise (Fault { pid = t.pid; addr; access; reason })

let check_aligned addr =
  if addr land (page_size - 1) <> 0 then
    invalid_arg (Printf.sprintf "Vm: address 0x%x not page aligned" addr)

(* Shoot down one cached translation.  The cost (and the counter) are paid
   only when an entry actually dies: an invalidation of nothing models a
   filtered IPI that never needed sending. *)
let tlb_invalidate t ~vpn =
  let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
  if e.e_vpn = vpn then begin
    e.e_vpn <- -1;
    t.tlb_shootdown_n <- t.tlb_shootdown_n + 1;
    Clock.charge t.clock t.costs.Cost_model.tlb_shootdown;
    Wedge_sim.Trace.instant t.trace ~name:"tlb.shootdown" ~pid:t.pid
  end

let tlb_flush t =
  let any = ref false in
  Array.iter
    (fun e ->
      if e.e_vpn >= 0 then begin
        e.e_vpn <- -1;
        any := true
      end)
    t.tlb;
  if !any then t.tlb_shootdown_n <- t.tlb_shootdown_n + 1

let tlb_hits t = t.tlb_hit_n
let tlb_misses t = t.tlb_miss_n
let tlb_shootdowns t = t.tlb_shootdown_n

let tlb_fill t vpn (pte : Pagetable.pte) =
  let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
  e.e_vpn <- vpn;
  e.e_epoch <- Pagetable.epoch t.pt;
  e.e_bytes <- Physmem.get t.pm pte.Pagetable.frame;
  e.e_prot <- pte.Pagetable.prot;
  e.e_tag <- pte.Pagetable.tag;
  e.e_frame <- pte.Pagetable.frame

let emit t ev = match !(t.recorder) with Some f -> f ev | None -> ()
let recording t = !(t.recorder) <> None

(* Quota accounting for private frames.  The charge happens before the
   allocation so exhaustion is deterministic and leaves physical memory
   untouched; [Rlimit.Resource_exhausted] is contained by the engine the
   same way Enomem is.  Returns whether a fresh charge was made: a vpn
   already owned (a COW break of a page this space itself allocated, e.g.
   after a fork downgraded it) must not be charged twice — the quota
   counts live private frames, and unmap releases exactly one unit per
   owned vpn. *)
let charge_owned t vpn =
  if Hashtbl.mem t.owned vpn then false
  else begin
    (match t.limits with Some l -> Rlimit.charge_frames l 1 | None -> ());
    Hashtbl.replace t.owned vpn ();
    true
  end

let release_owned t vpn =
  if Hashtbl.mem t.owned vpn then begin
    Hashtbl.remove t.owned vpn;
    match t.limits with Some l -> Rlimit.release_frames l 1 | None -> ()
  end

(* Charge-then-allocate, with the charge rolled back if the allocation
   itself fails (budget exhaustion or an injected ENOMEM): otherwise the
   quota would keep counting a private frame that never existed — a drift
   the invariant oracles flag — and, for a never-mapped vpn, the unit
   could never be released at all. *)
let alloc_charged t vpn =
  let charged = charge_owned t vpn in
  match Physmem.alloc t.pm with
  | frame -> frame
  | exception e ->
      if charged then release_owned t vpn;
      raise e

let map_fresh t ~addr ~pages ~prot ~tag =
  check_aligned addr;
  for i = 0 to pages - 1 do
    Clock.charge t.clock t.costs.Cost_model.page_alloc;
    let vpn = vpn_of addr + i in
    let frame = alloc_charged t vpn in
    Pagetable.map t.pt ~vpn ~frame ~prot ~tag;
    if recording t then emit t (Ev_map { pid = t.pid; vpn; frame; prot; seed = None })
  done

let map_frame t ~addr ~frame ~prot ~tag =
  check_aligned addr;
  Physmem.incref t.pm frame;
  Pagetable.map t.pt ~vpn:(vpn_of addr) ~frame ~prot ~tag;
  if recording t then
    emit t
      (Ev_map
         {
           pid = t.pid;
           vpn = vpn_of addr;
           frame;
           prot;
           seed = Some (Bytes.copy (Physmem.get t.pm frame));
         })

(* Bulk-install a frozen snapshot image (compartment checkpoint/restore):
   each entry takes one frame reference and lands directly in the page
   table — the simulated analogue of pointing a child at a prepared
   pagetable subtree, so no per-page cost is charged here (the caller
   accounts one flat stamp charge however many pages the image holds).
   Recorder events are emitted per page: a differential reference VM must
   see these mappings exactly like any other, or COW breaks inside a
   stamped child would diverge. *)
let map_image t entries =
  List.iter
    (fun (vpn, frame, prot, tag) ->
      Physmem.incref t.pm frame;
      Pagetable.map t.pt ~vpn ~frame ~prot ~tag;
      if recording t then
        emit t
          (Ev_map
             {
               pid = t.pid;
               vpn;
               frame;
               prot;
               seed = Some (Bytes.copy (Physmem.get t.pm frame));
             }))
    entries

let share_range ~src ~dst ~addr ~pages ~prot =
  check_aligned addr;
  for i = 0 to pages - 1 do
    let vpn = vpn_of addr + i in
    match Pagetable.find src.pt ~vpn with
    | None ->
        invalid_arg
          (Printf.sprintf "Vm.share_range: source page 0x%x unmapped" (vpn * page_size))
    | Some pte ->
        Clock.charge dst.clock dst.costs.Cost_model.pte_copy;
        Physmem.incref dst.pm pte.Pagetable.frame;
        Pagetable.map dst.pt ~vpn ~frame:pte.Pagetable.frame ~prot ~tag:pte.Pagetable.tag;
        if recording dst then
          emit dst
            (Ev_map
               {
                 pid = dst.pid;
                 vpn;
                 frame = pte.Pagetable.frame;
                 prot;
                 seed = Some (Bytes.copy (Physmem.get dst.pm pte.Pagetable.frame));
               })
  done

let unmap_range t ~addr ~pages =
  check_aligned addr;
  for i = 0 to pages - 1 do
    (* The epoch bump from Pagetable.unmap already invalidates every
       cached entry; the explicit shootdown keeps the counter and the
       cost model honest about what a revocation did. *)
    tlb_invalidate t ~vpn:(vpn_of addr + i);
    match Pagetable.unmap t.pt ~vpn:(vpn_of addr + i) with
    | Some pte ->
        release_owned t (vpn_of addr + i);
        Physmem.decref t.pm pte.Pagetable.frame;
        if recording t then emit t (Ev_unmap { pid = t.pid; vpn = vpn_of addr + i })
    | None -> ()
  done

(* Permission changes mutate ptes in place — no epoch movement — so the
   explicit per-page shootdown here is what keeps revocation sound: a TLB
   entry surviving this loop would let a compartment keep writing through
   a mapping that was just downgraded.  Each mapped page charges a
   pte_copy-class cost (the kernel rewrites the entry), plus the shootdown
   cost for any translation that was actually cached. *)
let protect_range t ~addr ~pages ~prot =
  check_aligned addr;
  for i = 0 to pages - 1 do
    match Pagetable.find t.pt ~vpn:(vpn_of addr + i) with
    | Some pte ->
        Clock.charge t.clock t.costs.Cost_model.pte_copy;
        pte.Pagetable.prot <- prot;
        tlb_invalidate t ~vpn:(vpn_of addr + i);
        if recording t then emit t (Ev_prot { pid = t.pid; vpn = vpn_of addr + i; prot })
    | None -> ()
  done

(* In-place pte rewrites for kernel bookkeeping (boot's COW snapshot,
   fork's COW downgrade, boundary retags).  No cost is charged — callers
   account for their own PTE work — but the shootdown is mandatory:
   these are exactly the "behind the VM's back" mutations that used to
   touch the page table directly. *)
let set_page_prot t ~addr ~prot =
  match Pagetable.find t.pt ~vpn:(vpn_of addr) with
  | Some pte ->
      pte.Pagetable.prot <- prot;
      tlb_invalidate t ~vpn:(vpn_of addr);
      if recording t then emit t (Ev_prot { pid = t.pid; vpn = vpn_of addr; prot })
  | None -> invalid_arg (Printf.sprintf "Vm.set_page_prot: 0x%x unmapped" addr)

let set_page_tag t ~addr ~tag =
  match Pagetable.find t.pt ~vpn:(vpn_of addr) with
  | Some pte ->
      pte.Pagetable.tag <- tag;
      tlb_invalidate t ~vpn:(vpn_of addr)
  | None -> invalid_arg (Printf.sprintf "Vm.set_page_tag: 0x%x unmapped" addr)

let destroy t =
  tlb_flush t;
  let frames = Pagetable.fold (fun vpn pte acc -> (vpn, pte.Pagetable.frame) :: acc) t.pt [] in
  List.iter
    (fun (vpn, frame) ->
      ignore (Pagetable.unmap t.pt ~vpn);
      release_owned t vpn;
      Physmem.decref t.pm frame)
    frames;
  if recording t then emit t (Ev_destroy { pid = t.pid })

let mapped_pages t = Pagetable.count t.pt

(* Take a private copy of a COW page so it can be written.  The copy is a
   private frame, so it counts against the frame quota (a compartment
   ballooning the shared pristine image pays for every page it dirties).
   The frame swap happens in place — no epoch movement — so the explicit
   shootdown below is what stops a cached read entry from serving the old
   shared frame's bytes after the break. *)
let cow_break t ~vpn (pte : Pagetable.pte) =
  Clock.charge t.clock t.costs.Cost_model.page_copy;
  if Physmem.refcount t.pm pte.frame > 1 then begin
    let fresh = alloc_charged t vpn in
    Bytes.blit (Physmem.get t.pm pte.frame) 0 (Physmem.get t.pm fresh) 0 page_size;
    Physmem.decref t.pm pte.frame;
    pte.frame <- fresh
  end;
  pte.prot <- { pr = true; pw = true; pcow = false };
  tlb_invalidate t ~vpn;
  if recording t then
    emit t (Ev_cow { pid = t.pid; vpn; frame = pte.frame; prot = pte.prot })

(* The slow path: one page-table walk.  Injected faults are rolled by the
   callers, once per access (see [roll_access]), not here — a bulk read
   is one access however many pages it crosses. *)
let pte_for t addr access check =
  match Pagetable.find t.pt ~vpn:(vpn_of addr) with
  | None -> fault t addr access "unmapped page"
  | Some pte ->
      let p = pte.Pagetable.prot in
      (match access with
      | Read -> if check && not p.Prot.pr then fault t addr Read "no read permission"
      | Write ->
          if p.Prot.pw then ()
          else if p.Prot.pcow then cow_break t ~vpn:(vpn_of addr) pte
          else if check then fault t addr Write "no write permission"
          else if not p.Prot.pw then
            (* Kernel writes still must not corrupt shared frames. *)
            if Physmem.refcount t.pm pte.Pagetable.frame > 1 then begin
              let prot = p in
              cow_break t ~vpn:(vpn_of addr) pte;
              pte.Pagetable.prot <- prot;
              if recording t then
                emit t (Ev_prot { pid = t.pid; vpn = vpn_of addr; prot })
            end);
      pte

(* Can a cached entry serve this access?  Reads need pr (kernel reads are
   exempt, as in the slow path); writes need pw exactly — a COW page must
   fall through to the slow path so the break happens. *)
let perm_hit access check (p : Prot.page) =
  match access with
  | Read -> p.Prot.pr || not check
  | Write -> p.Prot.pw

(* One translation: TLB fast path, page walk + fill on miss.  Returns the
   frame's backing bytes; offsets within the page are the caller's. *)
let page_for t addr access check =
  let vpn = addr lsr 12 in
  let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
  if e.e_vpn = vpn && e.e_epoch = Pagetable.epoch t.pt && perm_hit access check e.e_prot
  then begin
    t.tlb_hit_n <- t.tlb_hit_n + 1;
    Clock.charge t.clock t.costs.Cost_model.tlb_hit;
    e.e_bytes
  end
  else begin
    t.tlb_miss_n <- t.tlb_miss_n + 1;
    Clock.charge t.clock t.costs.Cost_model.tlb_miss;
    Wedge_sim.Trace.instant t.trace ~name:"tlb.miss" ~pid:t.pid;
    let pte = pte_for t addr access check in
    tlb_fill t vpn pte;
    Physmem.get t.pm pte.Pagetable.frame
  end

(* Checked (compartment) accesses roll the injected-fault plan once per
   access — a u64 or a 4 KiB blit is one roll, not eight or a thousand.
   (Fault-trace format v2: plans recorded against the per-byte rolls of
   the v1 accessors replay with different op counts.)  Kernel paths never
   roll, mirroring how a real MMU cannot fault the kernel's copies. *)
let roll_access t addr access =
  match Wedge_fault.Fault_plan.roll_opt t.faults ~site:"vm.access" with
  | Some _ -> fault t addr access "injected protection fault"
  | None -> ()

let read_u8_raw t addr =
  roll_access t addr Read;
  let b = page_for t addr Read true in
  Char.code (Bytes.unsafe_get b (addr land (page_size - 1)))

let write_u8_raw t addr v =
  roll_access t addr Write;
  let b = page_for t addr Write true in
  Bytes.unsafe_set b (addr land (page_size - 1)) (Char.unsafe_chr (v land 0xff))

(* Page-cursor bulk transfer: one translation per page touched, shared by
   checked and kernel paths.  The fault roll (if any) happened at the
   access entry point. *)
let rec blit_read_pages t addr buf pos len check =
  if len > 0 then begin
    let off = off_of addr in
    let chunk = min len (page_size - off) in
    let b = page_for t addr Read check in
    Bytes.blit b off buf pos chunk;
    blit_read_pages t (addr + chunk) buf (pos + chunk) (len - chunk) check
  end

let rec blit_write_pages t addr src pos len check =
  if len > 0 then begin
    let off = off_of addr in
    let chunk = min len (page_size - off) in
    let b = page_for t addr Write check in
    Bytes.blit src pos b off chunk;
    blit_write_pages t (addr + chunk) src (pos + chunk) (len - chunk) check
  end

(* Multi-page writes are atomic: every page is translated (and any COW
   break taken) before the first byte lands, so a fault on page N+1 never
   leaves a partial write on page N.  The probe pass warms the TLB, so
   the copy pass runs entirely on hits. *)
let rec probe_write_pages t addr len check =
  if len > 0 then begin
    let off = off_of addr in
    let chunk = min len (page_size - off) in
    ignore (page_for t addr Write check);
    probe_write_pages t (addr + chunk) (len - chunk) check
  end

let blit_write_atomic t addr src pos len check =
  if len > 0 then begin
    if off_of addr + len > page_size then probe_write_pages t addr len check;
    blit_write_pages t addr src pos len check
  end

(* Bound checked bulk reads before allocating the destination: a
   compromised compartment that fabricates a huge length (e.g. in a
   length-value block a callgate will read) must hit a protection fault,
   not force the host to allocate gigabytes first.  64 MiB is far beyond
   any simulated address-space region. *)
let max_read = 64 * 1024 * 1024

let read_bytes_raw t addr len =
  if len < 0 || len > max_read then
    fault t addr Read (Printf.sprintf "oversized read of %d bytes" len);
  let buf = Bytes.create len in
  if len > 0 then begin
    roll_access t addr Read;
    blit_read_pages t addr buf 0 len true
  end;
  buf

let write_bytes_raw t addr src =
  let len = Bytes.length src in
  if len > 0 then begin
    roll_access t addr Write;
    blit_write_atomic t addr src 0 len true
  end

let read_bytes_kernel_raw t addr len =
  let buf = Bytes.create len in
  blit_read_pages t addr buf 0 len false;
  buf

let write_bytes_kernel_raw t addr src = blit_write_atomic t addr src 0 (Bytes.length src) false

(* Multi-byte accessors: translate once when the value sits inside a page
   (the overwhelmingly common case), fall back to the page cursor across
   a boundary.  Either way: one fault roll, not one per byte. *)

let read_u16_raw t addr =
  roll_access t addr Read;
  let off = off_of addr in
  if off <= page_size - 2 then Bytes.get_uint16_le (page_for t addr Read true) off
  else begin
    let buf = Bytes.create 2 in
    blit_read_pages t addr buf 0 2 true;
    Bytes.get_uint16_le buf 0
  end

let write_u16_raw t addr v =
  roll_access t addr Write;
  let off = off_of addr in
  if off <= page_size - 2 then Bytes.set_uint16_le (page_for t addr Write true) off (v land 0xffff)
  else begin
    let buf = Bytes.create 2 in
    Bytes.set_uint16_le buf 0 (v land 0xffff);
    blit_write_atomic t addr buf 0 2 true
  end

let read_u32_raw t addr =
  roll_access t addr Read;
  let off = off_of addr in
  if off <= page_size - 4 then
    Int32.to_int (Bytes.get_int32_le (page_for t addr Read true) off) land 0xffffffff
  else begin
    let buf = Bytes.create 4 in
    blit_read_pages t addr buf 0 4 true;
    Int32.to_int (Bytes.get_int32_le buf 0) land 0xffffffff
  end

let write_u32_raw t addr v =
  roll_access t addr Write;
  let off = off_of addr in
  if off <= page_size - 4 then
    Bytes.set_int32_le (page_for t addr Write true) off (Int32.of_int v)
  else begin
    let buf = Bytes.create 4 in
    Bytes.set_int32_le buf 0 (Int32.of_int v);
    blit_write_atomic t addr buf 0 4 true
  end

(* The u64 accessors live in OCaml's 63-bit int domain: read_u64 returns
   the LOW 63 BITS of the stored little-endian word, two's complement
   (bit 62 of the word is the sign bit of the result; bit 63 is dropped).
   write_u64 stores the 63-bit pattern zero-extended to 64 bits, so
   write/read round-trips exactly for every OCaml int, including
   negatives and max_int/min_int.  This is the same value the historical
   [lo lor (hi lsl 32)] computed — the mask makes it explicit instead of
   relying on lsl overflow. *)
let u64_store_mask = 0x7FFF_FFFF_FFFF_FFFFL

let read_u64_raw t addr =
  roll_access t addr Read;
  let off = off_of addr in
  if off <= page_size - 8 then Int64.to_int (Bytes.get_int64_le (page_for t addr Read true) off)
  else begin
    let buf = Bytes.create 8 in
    blit_read_pages t addr buf 0 8 true;
    Int64.to_int (Bytes.get_int64_le buf 0)
  end

let write_u64_raw t addr v =
  roll_access t addr Write;
  let w = Int64.logand (Int64.of_int v) u64_store_mask in
  let off = off_of addr in
  if off <= page_size - 8 then Bytes.set_int64_le (page_for t addr Write true) off w
  else begin
    let buf = Bytes.create 8 in
    Bytes.set_int64_le buf 0 w;
    blit_write_atomic t addr buf 0 8 true
  end

(* ------------------------------------------------------------------ *)
(* Recording facades over the raw accessors.  Disarmed: one load and one
   branch, no allocation.  Armed: the observed outcome — returned value
   (encoded little-endian, scalar reads/writes re-encoded exactly as the
   bytes a reference model computes from its own state) or the protection
   fault — is emitted after the access completes, with any [Ev_cow] the
   access triggered already in the stream before it. *)

let enc1 v =
  let b = Bytes.create 1 in
  Bytes.set_uint8 b 0 (v land 0xff);
  b

let enc2 v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 (v land 0xffff);
  b

let enc4 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b

(* Masked exactly like [write_u64_raw]'s store, so an emitted write value
   is byte-identical to what landed in the frame, and an emitted u64 read
   value is the stored word with bit 63 cleared — which a reference model
   reproduces by applying the same mask to its own word ([Ev_read.u64]). *)
let enc8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.logand (Int64.of_int v) u64_store_mask);
  b

let armed_read t r addr ~kernel ~u64 enc f =
  match f () with
  | v ->
      r (Ev_read { pid = t.pid; addr; value = enc v; kernel; u64 });
      v
  | exception Fault ft ->
      r (Ev_fault { pid = t.pid; addr = ft.addr; access = Read; reason = ft.reason; kernel });
      raise (Fault ft)

let armed_write t r addr ~kernel enc f =
  match f () with
  | () -> r (Ev_write { pid = t.pid; addr; value = enc (); kernel })
  | exception Fault ft ->
      r (Ev_fault { pid = t.pid; addr = ft.addr; access = Write; reason = ft.reason; kernel });
      raise (Fault ft)

let read_u8 t addr =
  match !(t.recorder) with
  | None -> read_u8_raw t addr
  | Some r -> armed_read t r addr ~kernel:false ~u64:false enc1 (fun () -> read_u8_raw t addr)

let write_u8 t addr v =
  match !(t.recorder) with
  | None -> write_u8_raw t addr v
  | Some r ->
      armed_write t r addr ~kernel:false (fun () -> enc1 v) (fun () -> write_u8_raw t addr v)

let read_u16 t addr =
  match !(t.recorder) with
  | None -> read_u16_raw t addr
  | Some r -> armed_read t r addr ~kernel:false ~u64:false enc2 (fun () -> read_u16_raw t addr)

let write_u16 t addr v =
  match !(t.recorder) with
  | None -> write_u16_raw t addr v
  | Some r ->
      armed_write t r addr ~kernel:false (fun () -> enc2 v) (fun () -> write_u16_raw t addr v)

let read_u32 t addr =
  match !(t.recorder) with
  | None -> read_u32_raw t addr
  | Some r -> armed_read t r addr ~kernel:false ~u64:false enc4 (fun () -> read_u32_raw t addr)

let write_u32 t addr v =
  match !(t.recorder) with
  | None -> write_u32_raw t addr v
  | Some r ->
      armed_write t r addr ~kernel:false (fun () -> enc4 v) (fun () -> write_u32_raw t addr v)

let read_u64 t addr =
  match !(t.recorder) with
  | None -> read_u64_raw t addr
  | Some r -> armed_read t r addr ~kernel:false ~u64:true enc8 (fun () -> read_u64_raw t addr)

let write_u64 t addr v =
  match !(t.recorder) with
  | None -> write_u64_raw t addr v
  | Some r ->
      armed_write t r addr ~kernel:false (fun () -> enc8 v) (fun () -> write_u64_raw t addr v)

let read_bytes t addr len =
  match !(t.recorder) with
  | None -> read_bytes_raw t addr len
  | Some r -> armed_read t r addr ~kernel:false ~u64:false Bytes.copy (fun () -> read_bytes_raw t addr len)

let write_bytes t addr src =
  match !(t.recorder) with
  | None -> write_bytes_raw t addr src
  | Some r ->
      armed_write t r addr ~kernel:false
        (fun () -> Bytes.copy src)
        (fun () -> write_bytes_raw t addr src)

let read_bytes_kernel t addr len =
  match !(t.recorder) with
  | None -> read_bytes_kernel_raw t addr len
  | Some r ->
      armed_read t r addr ~kernel:true ~u64:false Bytes.copy (fun () -> read_bytes_kernel_raw t addr len)

let write_bytes_kernel t addr src =
  match !(t.recorder) with
  | None -> write_bytes_kernel_raw t addr src
  | Some r ->
      armed_write t r addr ~kernel:true
        (fun () -> Bytes.copy src)
        (fun () -> write_bytes_kernel_raw t addr src)

(* ------------------------------------------------------------------ *)
(* Oracle accessors: pure reads of ground truth for invariant checking.
   Nothing here charges the clock, touches the TLB, or rolls faults. *)

let owned_count t = Hashtbl.length t.owned
let owned_vpns t = List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) t.owned [])
let quota_tracked t = t.limits <> None

(* Validate every *servable* TLB entry (valid vpn, current epoch — stale
   epochs can never be served) against the page table: same frame, the
   cached byte store physically identical to the frame's, protection and
   tag as filled.  Any disagreement is a revocation that failed to shoot
   an entry down — a default-deny bypass. *)
let tlb_check t =
  let epoch = Pagetable.epoch t.pt in
  let bad = ref [] in
  let report fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  Array.iter
    (fun e ->
      if e.e_vpn >= 0 && e.e_epoch = epoch then
        match Pagetable.find t.pt ~vpn:e.e_vpn with
        | None ->
            report "pid %d: TLB entry for unmapped vpn 0x%x (frame %d)" t.pid e.e_vpn
              e.e_frame
        | Some pte ->
            if pte.Pagetable.frame <> e.e_frame then
              report "pid %d: TLB vpn 0x%x caches frame %d but pte has %d" t.pid e.e_vpn
                e.e_frame pte.Pagetable.frame
            else if not (Physmem.get t.pm pte.Pagetable.frame == e.e_bytes) then
              report "pid %d: TLB vpn 0x%x byte store is not frame %d's backing" t.pid
                e.e_vpn pte.Pagetable.frame
            else begin
              if pte.Pagetable.prot <> e.e_prot then
                report "pid %d: TLB vpn 0x%x caches stale protection" t.pid e.e_vpn;
              if pte.Pagetable.tag <> e.e_tag then
                report "pid %d: TLB vpn 0x%x caches stale tag" t.pid e.e_vpn
            end)
    t.tlb;
  List.rev !bad

(* [probe] is advisory, not an access: it answers "would this access be
   allowed right now" for policy decisions (e.g. priv_for_tag).  It walks
   the page table directly — never the TLB, which it must not pollute —
   charges nothing, and rolls no injected faults: a spurious fault on a
   probe would turn a question into a crash, which no real MMU does. *)
let probe t ~addr ~len access =
  let rec loop a remaining =
    remaining <= 0
    ||
    match Pagetable.find t.pt ~vpn:(vpn_of a) with
    | None -> false
    | Some pte ->
        let p = pte.Pagetable.prot in
        let ok =
          match access with
          | Read -> p.Prot.pr
          | Write -> p.Prot.pw || p.Prot.pcow
        in
        ok
        &&
        let chunk = min remaining (page_size - off_of a) in
        loop (a + chunk) (remaining - chunk)
  in
  loop addr len

let can_read t ~addr ~len = probe t ~addr ~len Read
let can_write t ~addr ~len = probe t ~addr ~len Write
