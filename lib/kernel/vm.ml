module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model

type access =
  | Read
  | Write

type fault = {
  pid : int;
  addr : int;
  access : access;
  reason : string;
}

exception Fault of fault

let fault_to_string f =
  Printf.sprintf "protection fault: pid %d %s at 0x%x (%s)" f.pid
    (match f.access with Read -> "read" | Write -> "write")
    f.addr f.reason

type t = {
  pid : int;
  pm : Physmem.t;
  pt : Pagetable.t;
  clock : Clock.t;
  costs : Cost_model.t;
  faults : Wedge_fault.Fault_plan.t option;
  limits : Rlimit.t option;
  owned : (int, unit) Hashtbl.t;
      (* vpns whose frames were charged to [limits]: fresh mappings and
         private COW copies.  Shared mappings (pristine snapshot, tag
         grants) are never charged — the quota bounds private frames. *)
}

let create ?faults ?limits ~pid pm clock costs =
  {
    pid;
    pm;
    pt = Pagetable.create ();
    clock;
    costs;
    faults;
    limits;
    owned = Hashtbl.create 64;
  }
let pid t = t.pid
let page_table t = t.pt
let page_size = Physmem.page_size
let vpn_of addr = addr lsr 12
let off_of addr = addr land (page_size - 1)

let fault t addr access reason = raise (Fault { pid = t.pid; addr; access; reason })

let check_aligned addr =
  if addr land (page_size - 1) <> 0 then
    invalid_arg (Printf.sprintf "Vm: address 0x%x not page aligned" addr)

(* Quota accounting for private frames.  The charge happens before the
   allocation so exhaustion is deterministic and leaves physical memory
   untouched; [Rlimit.Resource_exhausted] is contained by the engine the
   same way Enomem is. *)
let charge_owned t vpn =
  (match t.limits with Some l -> Rlimit.charge_frames l 1 | None -> ());
  Hashtbl.replace t.owned vpn ()

let release_owned t vpn =
  if Hashtbl.mem t.owned vpn then begin
    Hashtbl.remove t.owned vpn;
    match t.limits with Some l -> Rlimit.release_frames l 1 | None -> ()
  end

let map_fresh t ~addr ~pages ~prot ~tag =
  check_aligned addr;
  for i = 0 to pages - 1 do
    Clock.charge t.clock t.costs.Cost_model.page_alloc;
    charge_owned t (vpn_of addr + i);
    let frame = Physmem.alloc t.pm in
    Pagetable.map t.pt ~vpn:(vpn_of addr + i) ~frame ~prot ~tag
  done

let map_frame t ~addr ~frame ~prot ~tag =
  check_aligned addr;
  Physmem.incref t.pm frame;
  Pagetable.map t.pt ~vpn:(vpn_of addr) ~frame ~prot ~tag

let share_range ~src ~dst ~addr ~pages ~prot =
  check_aligned addr;
  for i = 0 to pages - 1 do
    let vpn = vpn_of addr + i in
    match Pagetable.find src.pt ~vpn with
    | None ->
        invalid_arg
          (Printf.sprintf "Vm.share_range: source page 0x%x unmapped" (vpn * page_size))
    | Some pte ->
        Clock.charge dst.clock dst.costs.Cost_model.pte_copy;
        Physmem.incref dst.pm pte.Pagetable.frame;
        Pagetable.map dst.pt ~vpn ~frame:pte.Pagetable.frame ~prot ~tag:pte.Pagetable.tag
  done

let unmap_range t ~addr ~pages =
  check_aligned addr;
  for i = 0 to pages - 1 do
    match Pagetable.unmap t.pt ~vpn:(vpn_of addr + i) with
    | Some pte ->
        release_owned t (vpn_of addr + i);
        Physmem.decref t.pm pte.Pagetable.frame
    | None -> ()
  done

let protect_range t ~addr ~pages ~prot =
  check_aligned addr;
  for i = 0 to pages - 1 do
    match Pagetable.find t.pt ~vpn:(vpn_of addr + i) with
    | Some pte -> pte.Pagetable.prot <- prot
    | None -> ()
  done

let destroy t =
  let frames = Pagetable.fold (fun vpn pte acc -> (vpn, pte.Pagetable.frame) :: acc) t.pt [] in
  List.iter
    (fun (vpn, frame) ->
      ignore (Pagetable.unmap t.pt ~vpn);
      release_owned t vpn;
      Physmem.decref t.pm frame)
    frames

let mapped_pages t = Pagetable.count t.pt

(* Take a private copy of a COW page so it can be written.  The copy is a
   private frame, so it counts against the frame quota (a compartment
   ballooning the shared pristine image pays for every page it dirties). *)
let cow_break t ~vpn (pte : Pagetable.pte) =
  Clock.charge t.clock t.costs.Cost_model.page_copy;
  if Physmem.refcount t.pm pte.frame > 1 then begin
    charge_owned t vpn;
    let fresh = Physmem.alloc t.pm in
    Bytes.blit (Physmem.get t.pm pte.frame) 0 (Physmem.get t.pm fresh) 0 page_size;
    Physmem.decref t.pm pte.frame;
    pte.frame <- fresh
  end;
  pte.prot <- { pr = true; pw = true; pcow = false }

let pte_for t addr access check =
  (* Checked (compartment) accesses only: kernel paths never take injected
     faults, mirroring how a real MMU cannot fault the kernel's copies. *)
  if check then (
    match Wedge_fault.Fault_plan.roll_opt t.faults ~site:"vm.access" with
    | Some _ -> fault t addr access "injected protection fault"
    | None -> ());
  match Pagetable.find t.pt ~vpn:(vpn_of addr) with
  | None -> fault t addr access "unmapped page"
  | Some pte ->
      let p = pte.Pagetable.prot in
      (match access with
      | Read -> if check && not p.Prot.pr then fault t addr Read "no read permission"
      | Write ->
          if p.Prot.pw then ()
          else if p.Prot.pcow then cow_break t ~vpn:(vpn_of addr) pte
          else if check then fault t addr Write "no write permission"
          else if not p.Prot.pw then
            (* Kernel writes still must not corrupt shared frames. *)
            if Physmem.refcount t.pm pte.Pagetable.frame > 1 then begin
              let prot = p in
              cow_break t ~vpn:(vpn_of addr) pte;
              pte.Pagetable.prot <- prot
            end);
      pte

let read_u8 t addr =
  let pte = pte_for t addr Read true in
  Char.code (Bytes.get (Physmem.get t.pm pte.Pagetable.frame) (off_of addr))

let write_u8 t addr v =
  let pte = pte_for t addr Write true in
  Bytes.set (Physmem.get t.pm pte.Pagetable.frame) (off_of addr) (Char.chr (v land 0xff))

(* Page-by-page bulk transfer shared by checked and kernel paths. *)
let rec blit_read t addr buf pos len check =
  if len > 0 then begin
    let off = off_of addr in
    let chunk = min len (page_size - off) in
    let pte = pte_for t addr Read check in
    Bytes.blit (Physmem.get t.pm pte.Pagetable.frame) off buf pos chunk;
    blit_read t (addr + chunk) buf (pos + chunk) (len - chunk) check
  end

let rec blit_write t addr src pos len check =
  if len > 0 then begin
    let off = off_of addr in
    let chunk = min len (page_size - off) in
    let pte = pte_for t addr Write check in
    Bytes.blit src pos (Physmem.get t.pm pte.Pagetable.frame) off chunk;
    blit_write t (addr + chunk) src (pos + chunk) (len - chunk) check
  end

(* Bound checked bulk reads before allocating the destination: a
   compromised compartment that fabricates a huge length (e.g. in a
   length-value block a callgate will read) must hit a protection fault,
   not force the host to allocate gigabytes first.  64 MiB is far beyond
   any simulated address-space region. *)
let max_read = 64 * 1024 * 1024

let read_bytes t addr len =
  if len < 0 || len > max_read then
    fault t addr Read (Printf.sprintf "oversized read of %d bytes" len);
  let buf = Bytes.create len in
  blit_read t addr buf 0 len true;
  buf

let write_bytes t addr src = blit_write t addr src 0 (Bytes.length src) true

let read_bytes_kernel t addr len =
  let buf = Bytes.create len in
  blit_read t addr buf 0 len false;
  buf

let write_bytes_kernel t addr src = blit_write t addr src 0 (Bytes.length src) false

let read_u16 t addr = read_u8 t addr lor (read_u8 t (addr + 1) lsl 8)

let write_u16 t addr v =
  write_u8 t addr (v land 0xff);
  write_u8 t (addr + 1) ((v lsr 8) land 0xff)

let read_u32 t addr = read_u16 t addr lor (read_u16 t (addr + 2) lsl 16)

let write_u32 t addr v =
  write_u16 t addr (v land 0xffff);
  write_u16 t (addr + 2) ((v lsr 16) land 0xffff)

let read_u64 t addr =
  let lo = read_u32 t addr and hi = read_u32 t (addr + 4) in
  lo lor (hi lsl 32)

let write_u64 t addr v =
  write_u32 t addr (v land 0xffffffff);
  write_u32 t (addr + 4) ((v lsr 32) land 0xffffffff)

let probe t ~addr ~len access =
  let rec loop a remaining =
    remaining <= 0
    ||
    match Pagetable.find t.pt ~vpn:(vpn_of a) with
    | None -> false
    | Some pte ->
        let p = pte.Pagetable.prot in
        let ok =
          match access with
          | Read -> p.Prot.pr
          | Write -> p.Prot.pw || p.Prot.pcow
        in
        ok
        &&
        let chunk = min remaining (page_size - off_of a) in
        loop (a + chunk) (remaining - chunk)
  in
  loop addr len

let can_read t ~addr ~len = probe t ~addr ~len Read
let can_write t ~addr ~len = probe t ~addr ~len Write
