module Fault_plan = Wedge_fault.Fault_plan

let page_size = 4096

exception Enomem

type t = {
  mutable frames : bytes option array;
  mutable refs : int array;
  free : int Queue.t;
  mutable used : int;
  mutable next : int;
  max_frames : int option;
  faults : Fault_plan.t option;
}

let create ?faults ?max_frames () =
  {
    frames = Array.make 64 None;
    refs = Array.make 64 0;
    free = Queue.create ();
    used = 0;
    next = 0;
    max_frames;
    faults;
  }

let grow t =
  let n = Array.length t.frames in
  let frames = Array.make (n * 2) None in
  Array.blit t.frames 0 frames 0 n;
  let refs = Array.make (n * 2) 0 in
  Array.blit t.refs 0 refs 0 n;
  t.frames <- frames;
  t.refs <- refs

let alloc t =
  (match t.max_frames with
  | Some m when t.used >= m -> raise Enomem
  | _ -> ());
  (match Fault_plan.roll_opt t.faults ~site:"physmem.alloc" with
  | Some _ -> raise Enomem
  | None -> ());
  let f =
    match Queue.take_opt t.free with
    | Some f -> f
    | None ->
        if t.next >= Array.length t.frames then grow t;
        let f = t.next in
        t.next <- t.next + 1;
        f
  in
  t.frames.(f) <- Some (Bytes.make page_size '\000');
  t.refs.(f) <- 1;
  t.used <- t.used + 1;
  f

let get t f =
  match t.frames.(f) with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Physmem.get: dead frame %d" f)

let incref t f =
  if t.frames.(f) = None then invalid_arg "Physmem.incref: dead frame";
  t.refs.(f) <- t.refs.(f) + 1

let decref t f =
  if t.frames.(f) = None then invalid_arg "Physmem.decref: dead frame";
  t.refs.(f) <- t.refs.(f) - 1;
  if t.refs.(f) <= 0 then begin
    t.frames.(f) <- None;
    t.refs.(f) <- 0;
    t.used <- t.used - 1;
    Queue.push f t.free
  end

let refcount t f = t.refs.(f)
let frames_in_use t = t.used

let iter_live t f =
  for i = 0 to t.next - 1 do
    match t.frames.(i) with Some _ -> f i t.refs.(i) | None -> ()
  done
