(** Per-process page table: virtual page number to frame + protection.

    A tag id is recorded on pages that belong to tagged-memory segments so
    that policy checks and Crowbar attribution can name them. *)

type pte = {
  mutable frame : int;
  mutable prot : Prot.page;
  mutable tag : int option;
}

type t

val create : unit -> t

val epoch : t -> int
(** Generation counter, advanced by every {!map} and {!unmap}.  A software
    TLB stamps each cached translation with the epoch at fill time, so any
    structural change to the address space invalidates every cached entry
    with one compare.  In-place pte mutations (protection changes, COW
    frame swaps) do {e not} advance the epoch — those paths must shoot the
    affected entries down explicitly (see {!Vm.protect_range}). *)

val map : t -> vpn:int -> frame:int -> prot:Prot.page -> tag:int option -> unit
val unmap : t -> vpn:int -> pte option
(** Removes and returns the entry, if mapped. *)

val find : t -> vpn:int -> pte option
val mem : t -> vpn:int -> bool
val count : t -> int
val iter : (int -> pte -> unit) -> t -> unit
val fold : (int -> pte -> 'a -> 'a) -> t -> 'a -> 'a
