type perm = {
  fr : bool;
  fw : bool;
}

let perm_r = { fr = true; fw = false }
let perm_w = { fr = false; fw = true }
let perm_rw = { fr = true; fw = true }

let perm_subsumes ~parent ~child =
  (parent.fr || not child.fr) && (parent.fw || not child.fw)

type endpoint = {
  ep_read : int -> bytes;
  ep_write : bytes -> unit;
  ep_close : unit -> unit;
  ep_eof : unit -> bool;
  ep_desc : string;
  ep_wait : (unit -> unit) option;
      (* block (park, on a reactor-driven endpoint) until ep_read can
         make progress — readable, EOF, or cut.  Called BEFORE the
         syscall trap, so a blocked read charges no fuel while idle. *)
  ep_readv : (Vm.t -> (int * int) array -> int) option;
  ep_writev : (Vm.t -> (int * int) array -> int) option;
      (* vectored kernel-copy paths: (addr, len) runs moved directly
         between the channel and the given address space in one batched
         call.  Absent on endpoints without a zero-copy path; the engine
         falls back to scatter/gather over ep_read/ep_write. *)
}

type target =
  | File of file_handle
  | Endpoint of endpoint
  | Null

and file_handle = {
  fh_path : string;
  mutable fh_pos : int;
}

type entry = {
  target : target;
  perm : perm;
  mutable closed : bool;
}

type t = {
  tbl : (int, entry) Hashtbl.t;
  mutable next : int;
  limits : Rlimit.t option;
      (* the owning process's quota: one unit per open descriptor,
         charged when installed, released when closed *)
}

let create ?limits () = { tbl = Hashtbl.create 8; next = 3; limits }

let charge t = match t.limits with Some l -> Rlimit.charge_fd l | None -> ()
let release t = match t.limits with Some l -> Rlimit.release_fd l | None -> ()

let add t target perm =
  charge t;
  let fd = t.next in
  t.next <- t.next + 1;
  Hashtbl.add t.tbl fd { target; perm; closed = false };
  fd

let find t fd =
  match Hashtbl.find_opt t.tbl fd with
  | Some e when not e.closed -> Some e
  | _ -> None

(* Closing a descriptor drops this process's reference only; the underlying
   endpoint (a shared open-file description) stays open for other holders
   and is shut down by its owner via the channel layer. *)
let close t fd =
  match Hashtbl.find_opt t.tbl fd with
  | Some e when not e.closed ->
      e.closed <- true;
      release t
  | _ -> ()

let dup_into ~src ~dst ~fd ~perm =
  match find src fd with
  | None -> invalid_arg (Printf.sprintf "Fd_table.dup_into: fd %d not open" fd)
  | Some e ->
      if not (perm_subsumes ~parent:e.perm ~child:perm) then
        invalid_arg (Printf.sprintf "Fd_table.dup_into: fd %d permission escalation" fd);
      if Hashtbl.mem dst.tbl fd then
        invalid_arg (Printf.sprintf "Fd_table.dup_into: fd %d already present" fd);
      (* Sthreads receive private descriptor copies (closing does not affect
         the parent), but file positions and endpoints are shared state, as
         with fork. *)
      let target =
        match e.target with
        | File fh -> File { fh_path = fh.fh_path; fh_pos = fh.fh_pos }
        | (Endpoint _ | Null) as x -> x
      in
      charge dst;
      Hashtbl.add dst.tbl fd { target; perm; closed = false };
      if fd >= dst.next then dst.next <- fd + 1

let install t ~fd target perm =
  (match Hashtbl.find_opt t.tbl fd with
  | Some e when not e.closed ->
      invalid_arg (Printf.sprintf "Fd_table.install: fd %d already present" fd)
  | _ -> ());
  charge t;
  Hashtbl.replace t.tbl fd { target; perm; closed = false };
  if fd >= t.next then t.next <- fd + 1

let count t = Hashtbl.fold (fun _ e n -> if e.closed then n else n + 1) t.tbl 0

let fds t =
  Hashtbl.fold (fun fd e acc -> if e.closed then acc else fd :: acc) t.tbl []
  |> List.sort compare
