(* Per-process resource quotas: the resource half of default-deny.

   Wedge's security contexts bound what a compartment may *touch*; an
   rlimit bounds what it may *consume* — physical frames (private pages
   allocated by map_fresh and COW breaks), file descriptors, and syscall
   fuel (one unit per kernel trap).  Limits are caps-plus-usage: the caps
   are immutable after creation, usage counters are charged and released
   by the kernel paths that own the resource.

   Like fd grants, limits are inherited and subsettable at sthread
   creation: a parent may hand a child any limit no looser than its own
   ([subsumes]).  Exhaustion raises [Resource_exhausted], which the
   engine treats as a contained compartment fault (the simulated
   SIGSEGV/SIGKILL family) — the hostile or runaway compartment dies,
   its supervisor decides what happens next, and the creator's own
   counters are untouched. *)

exception Resource_exhausted of string

type t = {
  max_frames : int option;  (* private physical frames (None = unlimited) *)
  max_fds : int option;     (* open descriptors in the fd table *)
  max_fuel : int option;    (* lifetime syscall traps *)
  mutable frames : int;
  mutable fds : int;
  mutable fuel : int;
}

let create ?max_frames ?max_fds ?max_fuel () =
  { max_frames; max_fds; max_fuel; frames = 0; fds = 0; fuel = 0 }

let unlimited () = create ()

(* A fresh-usage copy for a new process inheriting these caps. *)
let child_of t = { t with frames = 0; fds = 0; fuel = 0 }

let field_subsumes parent child =
  match (parent, child) with
  | None, _ -> true
  | Some _, None -> false  (* bounded parent cannot mint an unbounded child *)
  | Some p, Some c -> c <= p

let subsumes ~parent ~child =
  field_subsumes parent.max_frames child.max_frames
  && field_subsumes parent.max_fds child.max_fds
  && field_subsumes parent.max_fuel child.max_fuel

let is_unlimited t = t.max_frames = None && t.max_fds = None && t.max_fuel = None

let exhausted what limit =
  raise
    (Resource_exhausted (Printf.sprintf "%s quota exhausted (limit %d)" what limit))

let charge_frames t n =
  (match t.max_frames with
  | Some m when t.frames + n > m -> exhausted "frame" m
  | _ -> ());
  t.frames <- t.frames + n

let release_frames t n = t.frames <- max 0 (t.frames - n)

let charge_fd t =
  (match t.max_fds with
  | Some m when t.fds + 1 > m -> exhausted "fd" m
  | _ -> ());
  t.fds <- t.fds + 1

let release_fd t = t.fds <- max 0 (t.fds - 1)

let charge_fuel t n =
  (match t.max_fuel with
  | Some m when t.fuel + n > m -> exhausted "syscall fuel" m
  | _ -> ());
  t.fuel <- t.fuel + n

let frames_used t = t.frames
let fds_used t = t.fds
let fuel_used t = t.fuel

let to_string t =
  let f name cap used =
    match cap with
    | None -> Printf.sprintf "%s=%d/inf" name used
    | Some m -> Printf.sprintf "%s=%d/%d" name used m
  in
  String.concat " "
    [
      f "frames" t.max_frames t.frames;
      f "fds" t.max_fds t.fds;
      f "fuel" t.max_fuel t.fuel;
    ]
