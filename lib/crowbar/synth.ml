module W = Wedge_core.Wedge
module Sc = Wedge_core.Sc
module Prot = Wedge_kernel.Prot
module Fd_table = Wedge_kernel.Fd_table
module Tag = Wedge_mem.Tag

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)

module Profile = struct
  type entry_kind = Sthread | Gate

  type fd_mode = Fd_r | Fd_w | Fd_rw

  type entry = {
    e_kind : entry_kind;
    e_name : string;
    e_tags : (string * Prot.grant) list;
    e_fds : (string * fd_mode) list;
    e_gates : string list;
    e_uid : int option;
    e_root : string option;
    e_context : string option;
  }

  type t = {
    p_app : string;
    p_entries : entry list;
  }

  type parse_error = {
    pe_line : int;
    pe_msg : string;
  }

  let kind_rank = function Sthread -> 0 | Gate -> 1
  let kind_to_string = function Sthread -> "sthread" | Gate -> "gate"

  let fd_mode_to_string = function Fd_r -> "r" | Fd_w -> "w" | Fd_rw -> "rw"

  let normalize p =
    let by_name (a, _) (b, _) = compare a b in
    let entries =
      List.map
        (fun e ->
          {
            e with
            e_tags = List.sort by_name e.e_tags;
            e_fds = List.sort by_name e.e_fds;
            e_gates = List.sort compare e.e_gates;
          })
        p.p_entries
      |> List.sort (fun a b ->
             compare (kind_rank a.e_kind, a.e_name) (kind_rank b.e_kind, b.e_name))
    in
    { p with p_entries = entries }

  let print p =
    let p = normalize p in
    let buf = Buffer.create 512 in
    let quoted s = "\"" ^ s ^ "\"" in
    Buffer.add_string buf "# wedge-synth profile v1\n";
    Buffer.add_string buf ("app " ^ quoted p.p_app ^ "\n");
    List.iter
      (fun e ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (kind_to_string e.e_kind ^ " " ^ quoted e.e_name ^ " {\n");
        (match e.e_uid with
        | Some u -> Buffer.add_string buf ("  uid " ^ string_of_int u ^ "\n")
        | None -> ());
        (match e.e_root with
        | Some r -> Buffer.add_string buf ("  root " ^ quoted r ^ "\n")
        | None -> ());
        (match e.e_context with
        | Some s -> Buffer.add_string buf ("  context " ^ quoted s ^ "\n")
        | None -> ());
        List.iter
          (fun (t, g) ->
            Buffer.add_string buf
              ("  tag " ^ quoted t ^ " " ^ Prot.grant_to_string g ^ "\n"))
          e.e_tags;
        List.iter
          (fun (r, m) ->
            Buffer.add_string buf
              ("  fd " ^ quoted r ^ " " ^ fd_mode_to_string m ^ "\n"))
          e.e_fds;
        List.iter
          (fun g -> Buffer.add_string buf ("  gate " ^ quoted g ^ "\n"))
          e.e_gates;
        Buffer.add_string buf "}\n")
      p.p_entries;
    Buffer.contents buf

  (* --- parsing ---------------------------------------------------- *)

  exception Fail of parse_error

  let fail ln fmt = Printf.ksprintf (fun m -> raise (Fail { pe_line = ln; pe_msg = m })) fmt

  type token = Bare of string | Quoted of string

  let tokenize ln line =
    let n = String.length line in
    let toks = ref [] in
    let i = ref 0 in
    while !i < n do
      let c = line.[!i] in
      if c = ' ' || c = '\t' || c = '\r' then incr i
      else if c = '#' then i := n
      else if c = '"' then (
        match String.index_from_opt line (!i + 1) '"' with
        | None -> fail ln "unterminated string"
        | Some j ->
            toks := Quoted (String.sub line (!i + 1) (j - !i - 1)) :: !toks;
            i := j + 1)
      else begin
        let j = ref !i in
        while
          !j < n && line.[!j] <> ' ' && line.[!j] <> '\t' && line.[!j] <> '\r'
          && line.[!j] <> '"' && line.[!j] <> '#'
        do
          incr j
        done;
        toks := Bare (String.sub line !i (!j - !i)) :: !toks;
        i := !j
      end
    done;
    List.rev !toks

  (* Mutable builder for the entry being parsed. *)
  type building = {
    b_kind : entry_kind;
    b_name : string;
    b_line : int;
    mutable b_tags : (string * Prot.grant) list;
    mutable b_fds : (string * fd_mode) list;
    mutable b_gates : string list;
    mutable b_uid : int option;
    mutable b_root : string option;
    mutable b_context : string option;
  }

  let finish b =
    {
      e_kind = b.b_kind;
      e_name = b.b_name;
      e_tags = List.rev b.b_tags;
      e_fds = List.rev b.b_fds;
      e_gates = List.rev b.b_gates;
      e_uid = b.b_uid;
      e_root = b.b_root;
      e_context = b.b_context;
    }

  let tag_mode ln = function
    | "r" -> Prot.R
    | "rw" -> Prot.RW
    | "cow" -> Prot.COW
    | "w" -> fail ln "write-only tag grants are forbidden"
    | m -> fail ln "bad tag mode '%s' (expected r, rw or cow)" m

  let fd_mode ln = function
    | "r" -> Fd_r
    | "w" -> Fd_w
    | "rw" -> Fd_rw
    | m -> fail ln "bad fd mode '%s' (expected r, w or rw)" m

  let parse s =
    try
      let app = ref None in
      let entries = ref [] in
      let cur = ref None in
      let seen_entry kind name =
        List.exists (fun e -> e.e_kind = kind && e.e_name = name) !entries
      in
      let lines = String.split_on_char '\n' s in
      List.iteri
        (fun i line ->
          let ln = i + 1 in
          match (tokenize ln line, !cur) with
          | [], _ -> ()
          | [ Bare "app"; Quoted name ], None ->
              if !app <> None then fail ln "duplicate app directive";
              app := Some name
          | Bare (("sthread" | "gate") as k) :: rest, None -> (
              let kind = if k = "sthread" then Sthread else Gate in
              match rest with
              | [ Quoted name; Bare "{" ] ->
                  if seen_entry kind name then
                    fail ln "duplicate entry %s \"%s\"" k name;
                  cur :=
                    Some
                      {
                        b_kind = kind;
                        b_name = name;
                        b_line = ln;
                        b_tags = [];
                        b_fds = [];
                        b_gates = [];
                        b_uid = None;
                        b_root = None;
                        b_context = None;
                      }
              | _ -> fail ln "expected: %s \"name\" {" k)
          | [ Bare "}" ], Some b ->
              entries := finish b :: !entries;
              cur := None
          | [ Bare "}" ], None -> fail ln "'}' outside an entry"
          | [ Bare "tag"; Quoted name; Bare mode ], Some b ->
              if List.mem_assoc name b.b_tags then
                fail ln "duplicate tag grant \"%s\"" name;
              b.b_tags <- (name, tag_mode ln mode) :: b.b_tags
          | [ Bare "fd"; Quoted role; Bare mode ], Some b ->
              if List.mem_assoc role b.b_fds then
                fail ln "duplicate fd grant \"%s\"" role;
              b.b_fds <- (role, fd_mode ln mode) :: b.b_fds
          | [ Bare "gate"; Quoted name ], Some b ->
              if List.mem name b.b_gates then
                fail ln "duplicate gate grant \"%s\"" name;
              b.b_gates <- name :: b.b_gates
          | [ Bare "uid"; Bare n ], Some b -> (
              if b.b_uid <> None then fail ln "duplicate uid directive";
              match int_of_string_opt n with
              | Some u when u >= 0 -> b.b_uid <- Some u
              | _ -> fail ln "uid expects a non-negative integer")
          | [ Bare "root"; Quoted r ], Some b ->
              if b.b_root <> None then fail ln "duplicate root directive";
              b.b_root <- Some r
          | [ Bare "context"; Quoted s ], Some b ->
              if b.b_context <> None then fail ln "duplicate context directive";
              b.b_context <- Some s
          | Bare d :: _, Some _ ->
              fail ln "unknown directive '%s' inside an entry" d
          | Bare d :: _, None -> fail ln "unknown directive '%s'" d
          | Quoted _ :: _, _ -> fail ln "directive expected")
        lines;
      (match !cur with
      | Some b -> fail (List.length lines) "unterminated entry started at line %d" b.b_line
      | None -> ());
      match !app with
      | None -> fail 1 "missing app directive"
      | Some name ->
          Ok (normalize { p_app = name; p_entries = List.rev !entries })
    with Fail e -> Error e

  let equal a b = normalize a = normalize b

  let find p kind name =
    List.find_opt (fun e -> e.e_kind = kind && e.e_name = name) p.p_entries
end

(* ------------------------------------------------------------------ *)
(* Grant enumeration and tightening                                    *)

type grant_class = Tag_read | Tag_write | Fd_use | Gate_call

type grant_ref = {
  gr_kind : Profile.entry_kind;
  gr_entry : string;
  gr_class : grant_class;
  gr_name : string;
}

let class_to_string = function
  | Tag_read -> "tag-read"
  | Tag_write -> "tag-write"
  | Fd_use -> "fd"
  | Gate_call -> "gate"

let grant_ref_to_string r =
  Printf.sprintf "%s %s: %s %s"
    (Profile.kind_to_string r.gr_kind)
    r.gr_entry (class_to_string r.gr_class) r.gr_name

let grants p =
  let p = Profile.normalize p in
  List.concat_map
    (fun (e : Profile.entry) ->
      let mk cls name =
        { gr_kind = e.e_kind; gr_entry = e.e_name; gr_class = cls; gr_name = name }
      in
      List.map
        (fun (t, g) ->
          mk (match g with Prot.RW -> Tag_write | Prot.R | Prot.COW -> Tag_read) t)
        e.e_tags
      @ List.map (fun (r, _) -> mk Fd_use r) e.e_fds
      @ List.map (fun g -> mk Gate_call g) e.e_gates)
    p.Profile.p_entries

let tighten p r =
  let found = ref false in
  let entries =
    List.map
      (fun (e : Profile.entry) ->
        if e.e_kind <> r.gr_kind || e.e_name <> r.gr_entry then e
        else
          match r.gr_class with
          | Tag_read ->
              {
                e with
                e_tags =
                  List.filter
                    (fun (t, g) ->
                      let hit = t = r.gr_name && g <> Prot.RW in
                      if hit then found := true;
                      not hit)
                    e.e_tags;
              }
          | Tag_write ->
              {
                e with
                e_tags =
                  List.map
                    (fun (t, g) ->
                      if t = r.gr_name && g = Prot.RW then begin
                        found := true;
                        (t, Prot.R)
                      end
                      else (t, g))
                    e.e_tags;
              }
          | Fd_use ->
              {
                e with
                e_fds =
                  List.filter
                    (fun (role, _) ->
                      let hit = role = r.gr_name in
                      if hit then found := true;
                      not hit)
                    e.e_fds;
              }
          | Gate_call ->
              {
                e with
                e_gates =
                  List.filter
                    (fun g ->
                      let hit = g = r.gr_name in
                      if hit then found := true;
                      not hit)
                    e.e_gates;
              })
      p.Profile.p_entries
  in
  if !found then Some (Profile.normalize { p with Profile.p_entries = entries })
  else None

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

type mode = Record | Complain of Profile.t | Enforce of Profile.t

(* What one named compartment has been observed doing, across all
   connections/invocations of the session. *)
type obs = {
  ob_tags : (string, Prot.grant) Hashtbl.t;
  ob_fds : (string, Profile.fd_mode) Hashtbl.t;
  ob_gates : (string, unit) Hashtbl.t;
  mutable ob_uid : int option;
  mutable ob_root : string option;
  mutable ob_context : string option;
}

type t = {
  s_name : string;
  s_mode : mode;
  s_obs : (Profile.entry_kind * string, obs) Hashtbl.t;
  s_complaints : (string, int ref) Hashtbl.t;
  s_denials : (string, int ref) Hashtbl.t;
}

let create ~name mode =
  {
    s_name = name;
    s_mode = mode;
    s_obs = Hashtbl.create 8;
    s_complaints = Hashtbl.create 8;
    s_denials = Hashtbl.create 8;
  }

let mode_of t = t.s_mode

let obs_for t kind name =
  match Hashtbl.find_opt t.s_obs (kind, name) with
  | Some o -> o
  | None ->
      let o =
        {
          ob_tags = Hashtbl.create 8;
          ob_fds = Hashtbl.create 4;
          ob_gates = Hashtbl.create 4;
          ob_uid = None;
          ob_root = None;
          ob_context = None;
        }
      in
      Hashtbl.add t.s_obs (kind, name) o;
      o

let merge_grant old add =
  match (old, add) with
  | Some Prot.RW, _ | _, Prot.RW -> Prot.RW
  | Some Prot.COW, _ | _, Prot.COW -> Prot.COW
  | _, g -> g

let note_tag ob name ~write =
  let add = if write then Prot.RW else Prot.R in
  Hashtbl.replace ob.ob_tags name (merge_grant (Hashtbl.find_opt ob.ob_tags name) add)

let note_fd ob role ~write =
  let add = if write then Profile.Fd_w else Profile.Fd_r in
  let merged =
    match (Hashtbl.find_opt ob.ob_fds role, add) with
    | Some Profile.Fd_rw, _ -> Profile.Fd_rw
    | Some Profile.Fd_r, Profile.Fd_w | Some Profile.Fd_w, Profile.Fd_r ->
        Profile.Fd_rw
    | _, m -> m
  in
  Hashtbl.replace ob.ob_fds role merged

let note_gate ob name = Hashtbl.replace ob.ob_gates name ()

(* Record the compartment's identity, but only where it differs from the
   application's main process — a profile only pins what the hand-written
   policy changed, so applying it later stays a no-op for the rest. *)
let note_identity ob ctx =
  let main = W.proc (W.main_ctx (W.app_of ctx)) in
  let p = W.proc ctx in
  if p.Wedge_kernel.Process.uid <> main.Wedge_kernel.Process.uid then
    ob.ob_uid <- Some p.Wedge_kernel.Process.uid;
  if p.Wedge_kernel.Process.root <> main.Wedge_kernel.Process.root then
    ob.ob_root <- Some p.Wedge_kernel.Process.root;
  if p.Wedge_kernel.Process.sid <> main.Wedge_kernel.Process.sid then
    ob.ob_context <- Some p.Wedge_kernel.Process.sid

let role_of fds fd = List.find_opt (fun (_, n) -> n = fd) fds |> Option.map fst

(* ------------------------------------------------------------------ *)
(* Policy decisions (complain and enforce share the verdicts)          *)

let mem_verdict (entry : Profile.entry option) tag_name ~write =
  let granted =
    match entry with
    | None -> None
    | Some e -> List.assoc_opt tag_name e.Profile.e_tags
  in
  match (granted, write) with
  | Some (Prot.RW | Prot.COW), _ -> None
  | Some Prot.R, false -> None
  | Some Prot.R, true -> Some (Printf.sprintf "write to tag %s denied (granted r)" tag_name)
  | None, true -> Some (Printf.sprintf "write to tag %s denied (not granted)" tag_name)
  | None, false -> Some (Printf.sprintf "read of tag %s denied (not granted)" tag_name)

let fd_verdict (entry : Profile.entry option) role ~write =
  let granted =
    match entry with
    | None -> None
    | Some e -> List.assoc_opt role e.Profile.e_fds
  in
  match (granted, write) with
  | Some Profile.Fd_rw, _ -> None
  | Some Profile.Fd_r, false | Some Profile.Fd_w, true -> None
  | Some Profile.Fd_r, true ->
      Some (Printf.sprintf "write to fd %s denied (granted r)" role)
  | Some Profile.Fd_w, false ->
      Some (Printf.sprintf "read of fd %s denied (granted w)" role)
  | None, _ -> Some (Printf.sprintf "fd %s denied (not granted)" role)

let gate_verdict (entry : Profile.entry option) gate =
  let granted =
    match entry with
    | None -> false
    | Some e -> List.mem gate e.Profile.e_gates
  in
  if granted then None
  else Some (Printf.sprintf "callgate %s denied (not granted)" gate)

let bump tbl msg =
  match Hashtbl.find_opt tbl msg with
  | Some r -> incr r
  | None -> Hashtbl.add tbl msg (ref 1)

(* The per-ctx hooks for an installed profile.  Observation happens first
   in every mode so the differ and [synthesize] see the compartment's
   actual behaviour; then the verdict either counts (complain) or denies
   (enforce). *)
let profile_hooks t ~entry_name (entry : Profile.entry option) ob ~fds ~enforce ctx =
  let decide verdict =
    match verdict with
    | None -> None
    | Some msg ->
        let msg = Printf.sprintf "profile %s: %s" entry_name msg in
        if enforce then begin
          bump t.s_denials msg;
          Some msg
        end
        else begin
          bump t.s_complaints msg;
          W.stat ctx "policy.complain";
          W.trace_instant ctx "policy.complain";
          None
        end
  in
  {
    W.pol_mem =
      (fun ~addr ~len:_ ~write ->
        match W.find_tag_by_addr (W.app_of ctx) addr with
        | None -> None (* heap, stack, pristine image: outside tag policy *)
        | Some tag ->
            note_tag ob tag.Tag.name ~write;
            decide (mem_verdict entry tag.Tag.name ~write));
    pol_fd =
      (fun ~fd ~write ->
        match role_of fds fd with
        | None -> None (* descriptors outside the role map: sc governs *)
        | Some role ->
            note_fd ob role ~write;
            decide (fd_verdict entry role ~write));
    pol_gate =
      (fun gate ->
        note_gate ob gate;
        decide (gate_verdict entry gate));
  }

(* Record-mode hooks: pure observation of descriptors and callgates (tag
   accesses come from the attached cb-log, which attributes them by
   segment). *)
let observe_hooks ob ~fds =
  {
    W.pol_mem = (fun ~addr:_ ~len:_ ~write:_ -> None);
    pol_fd =
      (fun ~fd ~write ->
        (match role_of fds fd with
        | Some role -> note_fd ob role ~write
        | None -> ());
        None);
    pol_gate =
      (fun gate ->
        note_gate ob gate;
        None);
  }

(* Fold a compartment's cb-log trace into its observation record: every
   tagged item it touched, at the weakest sufficient mode (Query 1 over
   the whole compartment body). *)
let fold_trace ob tr =
  List.iter
    (fun (ir : Cb_analyze.item_report) ->
      match (ir.Cb_analyze.ir_segment.Trace.kind, ir.Cb_analyze.ir_segment.Trace.label) with
      | Trace.Tagged _, Some name ->
          if ir.Cb_analyze.ir_reads > 0 then note_tag ob name ~write:false;
          if ir.Cb_analyze.ir_writes > 0 then note_tag ob name ~write:true
      | _ -> ())
    (Cb_analyze.items_of tr)

let install_record t kind name ~fds ctx =
  let ob = obs_for t kind name in
  note_identity ob ctx;
  let cb = Cb_log.create () in
  (* Tags allocated before this compartment started (by main, by the
     environment) must be visible as segments or their accesses would go
     unattributed. *)
  List.iter
    (fun (tag : Tag.t) ->
      ignore
        (Trace.add_segment (Cb_log.trace cb) ~label:tag.Tag.name ~base:tag.Tag.base
           ~len:(Tag.size_bytes tag) ~kind:(Trace.Tagged tag.Tag.id) ~bt:[]))
    (W.live_tags (W.app_of ctx));
  let saved = W.instr_of ctx in
  W.set_instr ctx (Cb_log.instr cb);
  W.set_policy ctx (Some (observe_hooks ob ~fds));
  fun () ->
    W.set_policy ctx None;
    W.set_instr ctx saved;
    fold_trace ob (Cb_log.trace cb)

let install_profile t kind name ~fds ctx profile ~enforce =
  let ob = obs_for t kind name in
  note_identity ob ctx;
  let entry = Profile.find profile kind name in
  W.set_policy ctx (Some (profile_hooks t ~entry_name:name entry ob ~fds ~enforce ctx));
  fun () -> W.set_policy ctx None

let run_wrapped t kind name ~fds ctx body =
  let uninstall =
    match t.s_mode with
    | Record -> install_record t kind name ~fds ctx
    | Complain p -> install_profile t kind name ~fds ctx p ~enforce:false
    | Enforce p -> install_profile t kind name ~fds ctx p ~enforce:true
  in
  match body () with
  | v ->
      uninstall ();
      v
  | exception (W.Privilege_violation _ as e) ->
      (* A denial unwinding out of the body: leave the hooks installed so
         the engine's containment check (which reads [ctx.policy]) still
         sees a profiled compartment and faults it contained.  The ctx
         dies with the compartment (recycled gate members are discarded
         and respawned), so the skipped uninstall leaks nothing. *)
      raise e
  | exception e ->
      uninstall ();
      raise e

let wrap_sthread t ~name ~fds body ctx arg =
  match t with
  | None -> body ctx arg
  | Some t -> run_wrapped t Profile.Sthread name ~fds ctx (fun () -> body ctx arg)

let wrap_gate t ~name entry ctx ~trusted ~arg =
  match t with
  | None -> entry ctx ~trusted ~arg
  | Some t ->
      run_wrapped t Profile.Gate name ~fds:[] ctx (fun () -> entry ctx ~trusted ~arg)

(* ------------------------------------------------------------------ *)
(* Applying a profile: synthesized security contexts                   *)

let resolve_tag ~tags ctx name =
  match List.find_opt (fun (t : Tag.t) -> t.Tag.name = name && t.Tag.live) tags with
  | Some t -> Some t
  | None ->
      List.find_opt (fun (t : Tag.t) -> t.Tag.name = name) (W.live_tags (W.app_of ctx))

let perm_of_fd_mode = function
  | Profile.Fd_r -> Fd_table.perm_r
  | Profile.Fd_w -> Fd_table.perm_w
  | Profile.Fd_rw -> Fd_table.perm_rw

let sc_of_entry (e : Profile.entry) ~tags ~fds ctx =
  let sc = Sc.create () in
  List.iter
    (fun (name, grant) ->
      match resolve_tag ~tags ctx name with
      | Some tag -> Sc.mem_add sc tag grant
      | None -> () (* stale grant: the hooks still deny fresh use *))
    e.Profile.e_tags;
  List.iter
    (fun (role, mode) ->
      match List.assoc_opt role fds with
      | Some fd -> Sc.fd_add sc fd (perm_of_fd_mode mode)
      | None -> ())
    e.Profile.e_fds;
  (* Gate grants are added when the gates are minted (sc_cgate_add); the
     profile's gate lines are enforced by the pol_gate hook. *)
  (match e.Profile.e_uid with Some u -> Sc.set_uid sc u | None -> ());
  (match e.Profile.e_root with Some r -> Sc.set_root sc r | None -> ());
  (match e.Profile.e_context with Some s -> Sc.sel_context sc s | None -> ());
  sc

let sthread_sc t ~name ~tags ~fds ctx =
  match t with
  | Some { s_mode = Enforce p; _ } ->
      Profile.find p Profile.Sthread name
      |> Option.map (fun e -> sc_of_entry e ~tags ~fds ctx)
  | _ -> None

let gate_sc t ~name ~tags ctx =
  match t with
  | Some { s_mode = Enforce p; _ } ->
      Profile.find p Profile.Gate name
      |> Option.map (fun e -> sc_of_entry e ~tags ~fds:[] ctx)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Results                                                             *)

let sorted_counts tbl =
  Hashtbl.fold (fun msg r acc -> (msg, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let complaints t = sorted_counts t.s_complaints
let denials t = sorted_counts t.s_denials

let synthesize t =
  let entries =
    Hashtbl.fold
      (fun (kind, name) ob acc ->
        {
          Profile.e_kind = kind;
          e_name = name;
          e_tags = Hashtbl.fold (fun k v l -> (k, v) :: l) ob.ob_tags [];
          e_fds = Hashtbl.fold (fun k v l -> (k, v) :: l) ob.ob_fds [];
          e_gates = Hashtbl.fold (fun k () l -> k :: l) ob.ob_gates [];
          e_uid = ob.ob_uid;
          e_root = ob.ob_root;
          e_context = ob.ob_context;
        }
        :: acc)
      t.s_obs []
  in
  Profile.normalize { Profile.p_app = t.s_name; p_entries = entries }

let diff ~installed ~observed =
  let installed = Profile.normalize installed in
  let lines = ref [] in
  let push fmt = Printf.ksprintf (fun m -> lines := m :: !lines) fmt in
  List.iter
    (fun (o : Profile.entry) ->
      let where = Profile.kind_to_string o.e_kind ^ " " ^ o.e_name in
      match Profile.find installed o.e_kind o.e_name with
      | None -> push "%s: no installed entry" where
      | Some i ->
          List.iter
            (fun (tname, og) ->
              match List.assoc_opt tname i.Profile.e_tags with
              | Some ig when Prot.grant_subsumes ~parent:ig ~child:og -> ()
              | Some ig ->
                  push "%s: tag %s %s exceeds installed %s" where tname
                    (Prot.grant_to_string og) (Prot.grant_to_string ig)
              | None -> push "%s: tag %s %s not installed" where tname (Prot.grant_to_string og))
            o.e_tags;
          List.iter
            (fun (role, om) ->
              let subsumed =
                match (List.assoc_opt role i.Profile.e_fds, om) with
                | Some Profile.Fd_rw, _ -> true
                | Some m, m' -> m = m'
                | None, _ -> false
              in
              if not subsumed then
                push "%s: fd %s %s not installed" where role (Profile.fd_mode_to_string om))
            o.e_fds;
          List.iter
            (fun g ->
              if not (List.mem g i.Profile.e_gates) then
                push "%s: gate %s not installed" where g)
            o.e_gates)
    (Profile.normalize observed).p_entries;
  List.sort compare !lines

let self_check t () =
  match t.s_mode with
  | Record | Complain _ -> None
  | Enforce installed -> (
      match denials t with
      | (msg, n) :: _ -> Some (Printf.sprintf "%d denial(s), first: %s" n msg)
      | [] -> (
          match diff ~installed ~observed:(synthesize t) with
          | [] -> None
          | excess :: _ -> Some ("observed exceeds installed profile: " ^ excess)))
