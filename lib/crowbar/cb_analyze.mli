(** cb-analyze: the query half of Crowbar (§3.4).

    Three query types over a cb-log trace, matching the paper:

    + given a procedure, the memory items it {e and all its descendants in
      the execution call graph} access, with modes — what to grant an
      sthread running that procedure;
    + given data items, the procedures that use them — what should execute
      inside a callgate protecting those items;
    + given a procedure that generates sensitive data, where it and its
      descendants write — which memory to keep private to a callgate. *)

type item_report = {
  ir_segment : Trace.segment;
  ir_reads : int;
  ir_writes : int;
  ir_min_off : int;
  ir_max_off : int;  (** inclusive byte range touched within the segment *)
}

val items_used_by : Trace.t -> fn:string -> item_report list
(** Query 1: memory items accessed while [fn] was anywhere on the call
    stack, i.e. by [fn] and its descendants. *)

val items_of : Trace.t -> item_report list
(** Every item the whole trace touched, with aggregated modes — the input
    to profile synthesis, where the trace boundary (one compartment body)
    already scopes the accesses. *)

type proc_report = {
  pr_fn : string;
  pr_reads : int;
  pr_writes : int;
}

val procedures_using : Trace.t -> segments:Trace.segment list -> proc_report list
(** Query 2: innermost procedures touching any of the given items. *)

val writes_of : Trace.t -> fn:string -> item_report list
(** Query 3: where [fn] and its descendants write. *)

(** {2 Policy suggestion} *)

type suggestion = {
  s_kind : Trace.seg_kind;
  s_grant : Wedge_kernel.Prot.grant;  (** R or RW, from observed modes *)
}

val suggest_policy : Trace.t -> fn:string -> suggestion list
(** The privileges a least-privilege sthread running [fn] appears to need —
    Crowbar {e suggests}, the programmer decides (§7). *)

val overapproximate : Trace.t -> suggestion list
(** What trace-blind static analysis would grant: every item accessed
    anywhere in the program (§7's superset argument, for the ablation). *)

(** {2 Reports} *)

val pp_items : Format.formatter -> item_report list -> unit
val pp_procs : Format.formatter -> proc_report list -> unit
val pp_suggestions : Format.formatter -> suggestion list -> unit
