type item_report = {
  ir_segment : Trace.segment;
  ir_reads : int;
  ir_writes : int;
  ir_min_off : int;
  ir_max_off : int;
}

type proc_report = {
  pr_fn : string;
  pr_reads : int;
  pr_writes : int;
}

let in_scope bt fn = List.exists (fun f -> f.Backtrace.fn = fn) bt

let collect_items accs pred =
  let by_seg : (int, item_report ref) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun (a : Trace.access) ->
      if pred a then
        match a.Trace.a_seg with
        | None -> ()
        | Some seg ->
            let r =
              match Hashtbl.find_opt by_seg seg.Trace.seg_id with
              | Some r -> r
              | None ->
                  let r =
                    ref
                      {
                        ir_segment = seg;
                        ir_reads = 0;
                        ir_writes = 0;
                        ir_min_off = max_int;
                        ir_max_off = -1;
                      }
                  in
                  Hashtbl.add by_seg seg.Trace.seg_id r;
                  r
            in
            let v = !r in
            r :=
              {
                v with
                ir_reads = (v.ir_reads + if a.Trace.a_mode = Trace.Read then 1 else 0);
                ir_writes = (v.ir_writes + if a.Trace.a_mode = Trace.Write then 1 else 0);
                ir_min_off = min v.ir_min_off a.Trace.a_off;
                ir_max_off = max v.ir_max_off (a.Trace.a_off + a.Trace.a_len - 1);
              })
    accs;
  Hashtbl.fold (fun _ r acc -> !r :: acc) by_seg []
  |> List.sort (fun a b -> compare a.ir_segment.Trace.seg_id b.ir_segment.Trace.seg_id)

let items_used_by tr ~fn =
  collect_items (Trace.accesses tr) (fun a -> in_scope a.Trace.a_bt fn)

let items_of tr = collect_items (Trace.accesses tr) (fun _ -> true)

let writes_of tr ~fn =
  collect_items (Trace.accesses tr) (fun a ->
      a.Trace.a_mode = Trace.Write && in_scope a.Trace.a_bt fn)

let procedures_using tr ~segments =
  let ids = List.map (fun s -> s.Trace.seg_id) segments in
  let by_fn : (string, proc_report ref) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun (a : Trace.access) ->
      match a.Trace.a_seg with
      | Some seg when List.mem seg.Trace.seg_id ids -> (
          match a.Trace.a_bt with
          | [] -> ()
          | innermost :: _ ->
              let fn = innermost.Backtrace.fn in
              let r =
                match Hashtbl.find_opt by_fn fn with
                | Some r -> r
                | None ->
                    let r = ref { pr_fn = fn; pr_reads = 0; pr_writes = 0 } in
                    Hashtbl.add by_fn fn r;
                    r
              in
              let v = !r in
              r :=
                {
                  v with
                  pr_reads = (v.pr_reads + if a.Trace.a_mode = Trace.Read then 1 else 0);
                  pr_writes = (v.pr_writes + if a.Trace.a_mode = Trace.Write then 1 else 0);
                })
      | _ -> ())
    (Trace.accesses tr);
  Hashtbl.fold (fun _ r acc -> !r :: acc) by_fn []
  |> List.sort (fun a b -> compare a.pr_fn b.pr_fn)

type suggestion = {
  s_kind : Trace.seg_kind;
  s_grant : Wedge_kernel.Prot.grant;
}

let dedup_suggestions l =
  List.sort_uniq compare l

let suggestions_of_items items =
  List.map
    (fun ir ->
      {
        s_kind = ir.ir_segment.Trace.kind;
        s_grant = (if ir.ir_writes > 0 then Wedge_kernel.Prot.RW else Wedge_kernel.Prot.R);
      })
    items
  |> dedup_suggestions

let suggest_policy tr ~fn = suggestions_of_items (items_used_by tr ~fn)

let overapproximate tr =
  suggestions_of_items (collect_items (Trace.accesses tr) (fun _ -> true))

let pp_items fmt items =
  List.iter
    (fun ir ->
      Format.fprintf fmt "  %-28s %5dr %5dw  bytes [%d..%d]  alloc at %s@."
        (Trace.describe ir.ir_segment)
        ir.ir_reads ir.ir_writes ir.ir_min_off ir.ir_max_off
        (match ir.ir_segment.Trace.alloc_bt with
        | [] -> "(startup)"
        | f :: _ -> Backtrace.frame_to_string f))
    items

let pp_procs fmt procs =
  List.iter
    (fun p -> Format.fprintf fmt "  %-32s %5dr %5dw@." p.pr_fn p.pr_reads p.pr_writes)
    procs

let pp_suggestions fmt l =
  List.iter
    (fun s ->
      Format.fprintf fmt "  grant %-4s on %s@."
        (Wedge_kernel.Prot.grant_to_string s.s_grant)
        (Trace.seg_kind_to_string s.s_kind))
    l
