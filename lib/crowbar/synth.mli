(** Profile synthesis: closing the Crowbar loop (§3.4, §7).

    The paper's workflow is cb-log → cb-analyze → programmer writes the
    policy.  This module automates the last step for whole compartments:
    run any workload with compartments under {!wrap_sthread}/{!wrap_gate}
    in {!Record} mode, and {!synthesize} aggregates the per-compartment
    cb-log traces (plus observed descriptor and callgate use) into a
    least-privilege {!Profile.t} — one [sthread]/[gate] entry per named
    compartment, each grant the minimum mode observed.

    A synthesized profile can then be {e installed}:

    - {!Complain} mode keeps the hand-written policy in force and only
      logs would-be violations of the profile — counted as
      ["policy.complain"] instants in the kernel trace and tallied in
      {!complaints} — mirroring AppArmor's complain mode;
    - {!Enforce} mode replaces the hand-written security contexts with
      ones built from the profile ({!sthread_sc}/{!gate_sc}) and installs
      per-compartment policy hooks: any access beyond the profile raises
      [Privilege_violation] with a deterministic message (no pids, no
      addresses) and the compartment dies contained.

    Profiles print and parse ({!Profile.print}/{!Profile.parse}) as a
    deterministic, diffable text format: same observations ⇒ byte-identical
    files. *)

module Profile : sig
  type entry_kind = Sthread | Gate

  type fd_mode = Fd_r | Fd_w | Fd_rw

  type entry = {
    e_kind : entry_kind;
    e_name : string;
    e_tags : (string * Wedge_kernel.Prot.grant) list;  (** tag name → mode *)
    e_fds : (string * fd_mode) list;  (** descriptor role → mode *)
    e_gates : string list;  (** callgates this compartment may invoke *)
    e_uid : int option;
    e_root : string option;
    e_context : string option;  (** SELinux SID *)
  }

  type t = {
    p_app : string;
    p_entries : entry list;
  }

  type parse_error = {
    pe_line : int;  (** 1-based *)
    pe_msg : string;
  }

  val normalize : t -> t
  (** Canonical order: entries by (kind, name), grants within an entry by
      name.  {!print} emits normalized form; two profiles describing the
      same grants print identically. *)

  val print : t -> string
  (** Deterministic text rendering.  Grammar (one directive per line,
      [#] comments):
      {v
      app "httpd"
      sthread "httpd.worker" {
        uid 33
        root "/www"
        tag "httpd.arg" rw
        fd "conn" rw
        gate "setup_session_key"
      }
      gate "setup_session_key" {
        tag "httpd.privkey" r
      }
      v}
      Tag modes are [r]/[rw]/[cow] (write-only is forbidden, §3.1);
      fd modes are [r]/[w]/[rw]. *)

  val parse : string -> (t, parse_error) result
  (** Inverse of {!print} up to normalization:
      [parse (print p) = Ok (normalize p)].  Rejects malformed directives
      and duplicate grants/entries with a positioned error. *)

  val equal : t -> t -> bool
  (** Equality up to normalization. *)

  val find : t -> entry_kind -> string -> entry option
end

(** {1 Grant enumeration and tightening}

    Minimality is verified adversarially: for every grant in a synthesized
    profile, removing (or downgrading) just that grant must make the same
    workload fault — otherwise the grant was slack. *)

type grant_class =
  | Tag_read  (** an [r]/[cow] tag grant; tighten = drop it *)
  | Tag_write  (** an [rw] tag grant; tighten = downgrade to [r] *)
  | Fd_use  (** a descriptor grant; tighten = drop it *)
  | Gate_call  (** permission to invoke a callgate; tighten = drop it *)

type grant_ref = {
  gr_kind : Profile.entry_kind;
  gr_entry : string;
  gr_class : grant_class;
  gr_name : string;  (** tag name, fd role, or gate name *)
}

val grants : Profile.t -> grant_ref list
(** Every tightenable grant, in normalized order. *)

val tighten : Profile.t -> grant_ref -> Profile.t option
(** The profile with exactly that one grant removed/downgraded, or [None]
    if the profile does not contain it. *)

val grant_ref_to_string : grant_ref -> string

(** {1 Sessions} *)

type mode =
  | Record  (** observe with cb-log; hand-written policy stays in force *)
  | Complain of Profile.t  (** log would-be violations, allow them *)
  | Enforce of Profile.t  (** excess access ⇒ contained [Privilege_violation] *)

type t

val create : name:string -> mode -> t
(** A synthesis/verification session.  [name] becomes [p_app] of the
    synthesized profile. *)

val mode_of : t -> mode

(** {2 Server-side hooks}

    All take [t option] so servers thread an optional [?synth] parameter:
    [None] leaves the server untouched. *)

val sthread_sc :
  t option ->
  name:string ->
  tags:Wedge_mem.Tag.t list ->
  fds:(string * int) list ->
  Wedge_core.Wedge.ctx ->
  Wedge_core.Sc.t option
(** In {!Enforce} mode, the security context built from the profile's
    [sthread name] entry — the synthesized replacement for the server's
    hand-written policy; [None] otherwise (use the hand-written one).
    Tag names resolve against [tags] (this connection's fresh tags) first,
    then the app-wide live tags of [ctx]'s application; fd roles resolve
    against [fds].  Unresolvable grants are skipped: enforcement of what
    remains happens in the hooks. *)

val gate_sc :
  t option ->
  name:string ->
  tags:Wedge_mem.Tag.t list ->
  Wedge_core.Wedge.ctx ->
  Wedge_core.Sc.t option
(** Same for a callgate's [cgsc] from the profile's [gate name] entry. *)

val wrap_sthread :
  t option ->
  name:string ->
  fds:(string * int) list ->
  (Wedge_core.Wedge.ctx -> int -> int) ->
  Wedge_core.Wedge.ctx ->
  int ->
  int
(** Wrap a compartment body.  {!Record}: attach a fresh cb-log, observe
    descriptor/callgate use, and fold the trace into the session at exit.
    {!Complain}/{!Enforce}: install the per-ctx policy hooks for entry
    [name].  [fds] names this compartment's descriptors (role → fd).
    [None] session: the body runs unchanged. *)

val wrap_gate :
  t option ->
  name:string ->
  (Wedge_core.Wedge.ctx -> trusted:int -> arg:int -> int) ->
  Wedge_core.Wedge.ctx ->
  trusted:int ->
  arg:int ->
  int
(** Same for a callgate entry function (no descriptors, no identity). *)

(** {2 Results} *)

val synthesize : t -> Profile.t
(** The least-privilege profile implied by everything observed so far.
    Deterministic: two runs of the same seeded workload synthesize equal
    profiles ({!Profile.print} then renders them byte-identically). *)

val complaints : t -> (string * int) list
(** Complain-mode would-be violations, sorted by message. *)

val denials : t -> (string * int) list
(** Enforce-mode denials, sorted by message. *)

val diff : installed:Profile.t -> observed:Profile.t -> string list
(** The differ: every observed grant not subsumed by the installed
    profile, as sorted human-readable lines; [[]] when
    installed ⊇ observed. *)

val self_check : t -> unit -> string option
(** Oracle invariant for {!Enforce} sessions: [None] while no access was
    denied and the installed profile subsumes everything observed;
    [Some reason] otherwise.  Always [None] in other modes — feed to
    [Oracle.add_invariant]. *)
