(* Compartment checkpoint/restore: freeze a fully-booted worker image
   once, stamp new sthreads out of it in O(1).

   [freeze] builds a template worker the expensive way — pristine
   snapshot mapped page by page, grants resolved, optionally a [warm]
   body run so lazily-mapped private pages (heap, stack) exist — then
   checkpoints the template's entire address space: every frame gets one
   extra Physmem reference held by the image, private writable pages are
   recorded copy-on-write (the image must never change again), and the
   template is reaped.  What survives is a list of
   [Engine.frozen_page]s, the captured descriptor table, the rlimit
   shape and the identity — no process, no address space.

   [stamp] is the paper's Figure 7/8 story taken further than recycled
   callgates: a new sthread whose address space is the frozen image
   bulk-installed via [Vm.map_image] at one flat [pool_stamp] charge,
   however many pages the image holds.  Per-connection grants ride in
   through [extra] (validated against the stamping parent like any sc),
   so the O(1) cost is in the image size, not in the constant-sized
   per-request policy.

   Both paths are attackable: fault sites ["pool.freeze"] and
   ["pool.stamp"] inject mid-operation, and the unwind must leave the
   frozen image pristine and every refcount clean — which the
   [lib/check] refcount oracle re-derives (frozen images count as
   pristine-like owners) across explored schedules. *)

module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Trace = Wedge_sim.Trace
module Kernel = Wedge_kernel.Kernel
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot
module Process = Wedge_kernel.Process
module Fd_table = Wedge_kernel.Fd_table
module Pagetable = Wedge_kernel.Pagetable
module Physmem = Wedge_kernel.Physmem
module Layout = Wedge_kernel.Layout
module Rlimit = Wedge_kernel.Rlimit
module Fault_plan = Wedge_fault.Fault_plan

let page_size = Physmem.page_size

type t = {
  name : string;
  app : Engine.app;
  pages : Engine.frozen_page list;  (* the frozen image, one ref each *)
  fds : (int * Fd_table.target * Fd_table.perm) list;
      (* descriptor table shape captured at freeze time *)
  limits : Rlimit.t;  (* caps shape stamped children inherit *)
  uid : int;
  root : string;
  sid : string;
  mutable live : bool;
}

let name t = t.name
let frozen_pages t = List.length t.pages
let is_live t = t.live

let roll_site app site =
  match Fault_plan.roll_opt app.Engine.kernel.Kernel.faults ~site with
  | Some (Fault_plan.Delay ns) -> Clock.charge app.Engine.kernel.Kernel.clock ns
  | Some k -> Fault_plan.fail ~site k
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Freeze                                                              *)

let freeze ?(name = "pool") ?warm parent (sc : Sc.t) =
  let app = parent.Engine.app in
  if not (Engine.booted app) then invalid_arg "Pool.freeze: application not booted";
  if List.mem_assoc name app.Engine.frozen_images then
    invalid_arg (Printf.sprintf "Pool.freeze: image %S already frozen" name);
  Kernel.syscall_check app.Engine.kernel parent.Engine.proc "sthread_create";
  Engine.stat parent "pool.freeze";
  Engine.validate_sc parent sc;
  let tr = Engine.ktrace parent in
  if Trace.enabled tr then
    Trace.span_begin tr ~name:"pool.freeze" ~pid:(Engine.pid parent);
  let finish v =
    if Trace.enabled tr then
      Trace.span_end tr ~name:"pool.freeze" ~pid:(Engine.pid parent);
    v
  in
  let uid, root, sid = Engine.resolve_identity parent sc in
  let limits = Engine.resolve_limits parent sc in
  (* The template pays the full fork-priced boot exactly once — that is
     the checkpoint's whole bargain. *)
  let template =
    Kernel.new_process app.Engine.kernel ~limits ~kind:Process.Sthread ~uid ~root ~sid ()
  in
  match
    Engine.map_pristine app template.Process.vm;
    Engine.map_grants parent template sc;
    (* Mid-freeze fault site: the template exists and holds references,
       so the unwind below must release every one of them. *)
    roll_site app "pool.freeze";
    (match warm with
    | None -> ()
    | Some body ->
        (* Run the warm-up body in the template so demand-mapped private
           pages (heap, stack) become part of the frozen image. *)
        let tctx = Engine.make_ctx app template sc parent.Engine.instr in
        body tctx);
    (* Checkpoint: every mapped page, sorted by vpn so the image (and
       every artifact derived from it) is deterministic.  Untagged
       writable pages freeze copy-on-write — a stamped child that writes
       one breaks into a private copy, never onto the image.  Tagged
       pages keep their grant protection: tag memory is shared-mutable
       by design, and COW-ing it would silently unshare the very
       channels compartments communicate over. *)
    let entries =
      Pagetable.fold
        (fun vpn (pte : Pagetable.pte) acc -> (vpn, pte) :: acc)
        (Vm.page_table template.Process.vm) []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let pm = app.Engine.kernel.Kernel.pm in
    let pages =
      List.map
        (fun (vpn, (pte : Pagetable.pte)) ->
          Physmem.incref pm pte.Pagetable.frame;
          let prot =
            if pte.Pagetable.prot.Prot.pw && pte.Pagetable.tag = None then
              Prot.page_cow
            else pte.Pagetable.prot
          in
          {
            Engine.fz_vpn = vpn;
            fz_frame = pte.Pagetable.frame;
            fz_prot = prot;
            fz_tag = pte.Pagetable.tag;
          })
        entries
    in
    let fds =
      List.filter_map
        (fun fd ->
          match Fd_table.find template.Process.fds fd with
          | Some e when not e.Fd_table.closed ->
              Some (fd, e.Fd_table.target, e.Fd_table.perm)
          | _ -> None)
        (Fd_table.fds template.Process.fds)
    in
    (pages, fds)
  with
  | exception e ->
      (* Unwind: the template's address space holds the only references
         taken so far; reaping it releases them all and the world is as
         if freeze was never called. *)
      template.Process.status <-
        Process.Faulted
          (match Engine.fault_reason e with Some r -> r | None -> "freeze failed");
      Kernel.reap app.Engine.kernel template;
      Engine.stat parent "pool.freeze.fault";
      ignore (finish ());
      raise e
  | pages, fds ->
      template.Process.status <- Process.Exited 0;
      Kernel.reap app.Engine.kernel template;
      app.Engine.frozen_images <- (name, pages) :: app.Engine.frozen_images;
      app.Engine.pool_freezes <- app.Engine.pool_freezes + 1;
      Engine.trace_instant parent "pool.frozen";
      finish
        {
          name;
          app;
          pages;
          fds;
          limits = Option.value sc.Sc.limits ~default:parent.Engine.proc.Process.limits;
          uid;
          root;
          sid;
          live = true;
        }

(* ------------------------------------------------------------------ *)
(* Stamp                                                               *)

(* Map the per-invocation extras on top of the image, skipping anything
   the image already provides (same dedup rule as callgate extras). *)
let map_extra_grants parent (child : Process.t) (extra : Sc.t) =
  let app = parent.Engine.app in
  let cm = app.Engine.kernel.Kernel.costs in
  let clock = app.Engine.kernel.Kernel.clock in
  List.iter
    (fun { Sc.tag; grant } ->
      if
        not
          (Pagetable.mem
             (Vm.page_table child.Process.vm)
             ~vpn:(tag.Wedge_mem.Tag.base / page_size))
      then begin
        let prot = Prot.page_of_grant grant in
        Array.iteri
          (fun i frame ->
            Clock.charge clock cm.Cost_model.pte_copy;
            Vm.map_frame child.Process.vm
              ~addr:(tag.Wedge_mem.Tag.base + (i * page_size))
              ~frame ~prot ~tag:(Some tag.Wedge_mem.Tag.id))
          tag.Wedge_mem.Tag.frames
      end)
    extra.Sc.mems;
  List.iter
    (fun { Sc.fd; perm } ->
      if Fd_table.find child.Process.fds fd = None then begin
        Clock.charge clock cm.Cost_model.fd_dup;
        Fd_table.dup_into ~src:parent.Engine.proc.Process.fds ~dst:child.Process.fds
          ~fd ~perm
      end)
    extra.Sc.fds

let stamp ?instr ?extra parent pool fn arg =
  if not pool.live then invalid_arg "Pool.stamp: image discarded";
  let app = pool.app in
  if parent.Engine.app != app then invalid_arg "Pool.stamp: parent from another app";
  Kernel.syscall_check app.Engine.kernel parent.Engine.proc "sthread_create";
  app.Engine.pool_stamps <- app.Engine.pool_stamps + 1;
  Engine.stat parent "pool.stamp";
  let extra = match extra with Some e -> e | None -> Sc.create () in
  Engine.validate_sc parent extra;
  let tr = Engine.ktrace parent in
  if Trace.enabled tr then
    Trace.span_begin tr ~name:"pool.stamp" ~pid:(Engine.pid parent);
  let finish v =
    if Trace.enabled tr then
      Trace.span_end tr ~name:"pool.stamp" ~pid:(Engine.pid parent);
    v
  in
  (* Identity and limits come from the frozen image unless the extras
     override them (already validated against the stamping parent). *)
  let uid = Option.value extra.Sc.uid ~default:pool.uid in
  let root = Option.value extra.Sc.root ~default:pool.root in
  let sid = Option.value extra.Sc.sid ~default:pool.sid in
  let limits = Rlimit.child_of (Option.value extra.Sc.limits ~default:pool.limits) in
  let kernel = app.Engine.kernel in
  let child = Kernel.new_process kernel ~limits ~kind:Process.Sthread ~uid ~root ~sid () in
  match
    (* The restore: the whole image lands for one flat charge — spawn
       cost independent of address-space size. *)
    Clock.charge kernel.Kernel.clock kernel.Kernel.costs.Cost_model.pool_stamp;
    Vm.map_image child.Process.vm
      (List.map
         (fun (fz : Engine.frozen_page) ->
           (fz.Engine.fz_vpn, fz.Engine.fz_frame, fz.Engine.fz_prot, fz.Engine.fz_tag))
         pool.pages);
    (* Mid-stamp fault site: pages are mapped (references taken) but the
       descriptor table is not yet populated — the unwind must return
       every reference and leave the frozen image untouched. *)
    roll_site app "pool.stamp";
    List.iter
      (fun (fd, target, perm) ->
        Clock.charge kernel.Kernel.clock kernel.Kernel.costs.Cost_model.fd_dup;
        Fd_table.install child.Process.fds ~fd target perm)
      pool.fds;
    map_extra_grants parent child extra
  with
  | exception e ->
      (match Engine.fault_reason e with
      | Some reason ->
          child.Process.status <- Process.Faulted reason;
          Engine.stat parent "pool.stamp.fault";
          Engine.trace_instant parent "pool.stamp.fault"
      | None -> child.Process.status <- Process.Faulted "stamp failed");
      (* Reap releases the child's quota charges and its per-page frame
         references; the image's own references are untouched. *)
      Kernel.reap kernel child;
      ignore (finish ());
      raise e
  | () ->
      app.Engine.pool_hits <- app.Engine.pool_hits + 1;
      let cctx =
        Engine.make_ctx app child extra (Option.value instr ~default:parent.Engine.instr)
      in
      (* A warmed image carries the template's demand-mapped heap/stack
         (smalloc bookkeeping included); the stamped ctx must know, or
         its first allocation would try to re-map pages the image
         already provides. *)
      let pt = Vm.page_table child.Process.vm in
      if Pagetable.mem pt ~vpn:(Layout.heap_base / page_size) then
        cctx.Engine.heap_ready <- true;
      if Pagetable.mem pt ~vpn:(Layout.stack_base / page_size) then
        cctx.Engine.stack_ready <- true;
      Engine.trace_instant cctx "pool.stamped";
      let handle = { Engine.h_proc = child; h_result = None } in
      handle.Engine.h_result <- Engine.run_compartment cctx fn arg;
      Kernel.reap kernel child;
      finish handle

(* ------------------------------------------------------------------ *)
(* Discard                                                             *)

let discard parent pool =
  if pool.live then begin
    pool.live <- false;
    let app = pool.app in
    Engine.stat parent "pool.discard";
    Engine.trace_instant parent "pool.discard";
    app.Engine.frozen_images <-
      List.filter (fun (_, ps) -> ps != pool.pages) app.Engine.frozen_images;
    (* Dropping the image's references frees any frame no live address
       space still maps; frames shared with running stamped children
       survive on their references and die with their last unmap (which
       goes through the Vm teardown/shootdown path as usual). *)
    let pm = app.Engine.kernel.Kernel.pm in
    List.iter (fun (fz : Engine.frozen_page) -> Physmem.decref pm fz.Engine.fz_frame) pool.pages
  end
