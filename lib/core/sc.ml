type mem_grant = {
  tag : Wedge_mem.Tag.t;
  grant : Wedge_kernel.Prot.grant;
}

type fd_grant = {
  fd : int;
  perm : Wedge_kernel.Fd_table.perm;
}

type t = {
  mutable mems : mem_grant list;
  mutable fds : fd_grant list;
  mutable gates : int list;
  mutable uid : int option;
  mutable root : string option;
  mutable sid : string option;
  mutable limits : Wedge_kernel.Rlimit.t option;
}

let create () =
  { mems = []; fds = []; gates = []; uid = None; root = None; sid = None; limits = None }

let mem_add t tag grant =
  t.mems <- { tag; grant } :: List.filter (fun g -> g.tag.Wedge_mem.Tag.id <> tag.Wedge_mem.Tag.id) t.mems

let fd_add t fd perm = t.fds <- { fd; perm } :: List.filter (fun g -> g.fd <> fd) t.fds
let sel_context t sid = t.sid <- Some sid
let set_uid t uid = t.uid <- Some uid
let set_root t root = t.root <- Some root
let gate_grant t gid = if not (List.mem gid t.gates) then t.gates <- gid :: t.gates
let set_rlimit t limits = t.limits <- Some limits

let mem_grant_of t tag_id =
  List.find_opt (fun g -> g.tag.Wedge_mem.Tag.id = tag_id) t.mems
  |> Option.map (fun g -> g.grant)
