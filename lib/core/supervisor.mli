(** Restart policies and supervision trees for compartments.

    The engine contains a compartment crash (protection fault, SELinux
    denial, injected ENOMEM or channel fault) by terminating only that
    compartment; a supervisor decides what happens next.

    The {e flat} layer ({!supervise} and friends) retries each faulted
    attempt up to [max_restarts] times with exponential backoff charged to
    the simulated clock; when the policy is exhausted the caller receives
    {!Gave_up} and degrades the one affected connection (HTTP 500, POP3
    [-ERR], SSH disconnect) while the listener lives on.

    The {e tree} layer ({!node} / {!child} / {!run_child}) adds named
    children with per-child {!health} state and a restart-intensity budget
    (at most [intensity] faulted attempts per [window_ns] of simulated
    time).  Exceeding the budget escalates to the node: the child is
    {!Quarantined} — further runs are refused outright for
    [quarantine_ns], so the caller degrades immediately instead of burning
    a doomed spawn — and under {!Rest_for_one} every child registered
    after it is marked {!Restarting} with its fault history cleared.  A
    child that stays clean for [healthy_after_ns] has its fault history
    forgotten, so an early crash cannot inflate a long-lived worker's
    intensity forever.

    Kernel stats bumped: [supervisor.restart], [supervisor.gave_up],
    [supervisor.escalated], [supervisor.rest_for_one],
    [supervisor.quarantine.refused], [supervisor.quarantine.lift],
    [supervisor.healthy_reset] — with matching trace instants for the
    state transitions. *)

type policy = {
  max_restarts : int;  (** retries after the first attempt *)
  backoff_ns : int;  (** retry [k] charges [backoff_ns * 2^(k-1)] ns *)
  max_backoff_ns : int;  (** saturation cap on any single backoff charge *)
}

val default_policy : policy
(** No restarts: fail straight to degraded (right for workers whose input
    stream is consumed by the failed attempt). *)

val policy :
  ?max_restarts:int -> ?backoff_ns:int -> ?max_backoff_ns:int -> unit -> policy
(** [max_backoff_ns] defaults to 1s of simulated time. *)

val backoff_for : policy -> attempt:int -> int
(** The backoff charged after faulted attempt [attempt]: [backoff_ns]
    doubled [attempt - 1] times, saturating (overflow-safely) at
    [max_backoff_ns]. *)

type outcome =
  | Done of { value : int; attempts : int }
      (** The compartment terminated by exiting (any code, including
          nonzero protocol failures) on attempt [attempts]. *)
  | Gave_up of { attempts : int; last_fault : string }
      (** Every attempt faulted; [last_fault] is the final reason —
          prefixed ["escalated: "] when the intensity budget cut the
          retries short, ["quarantined: "] when the run was refused
          without an attempt ([attempts = 0]). *)

val outcome_to_string : outcome -> string

val supervise :
  ?policy:policy -> Engine.ctx -> (unit -> Engine.handle) -> outcome
(** [supervise ctx run] runs attempts produced by [run] until one exits or
    the policy gives up.  A contained fault raised by [run] itself (e.g.
    a resource quota hit while creating the compartment) counts as a
    faulted attempt with reason prefix ["create: "] — it never propagates
    to the caller. *)

val supervise_sthread :
  ?policy:policy ->
  ?instr:Wedge_sim.Instr.t ->
  Engine.ctx ->
  Sc.t ->
  (Engine.ctx -> int -> int) ->
  int ->
  outcome
(** {!supervise} over {!Engine.sthread_create}: each attempt is a fresh
    default-deny sthread with grants [sc]. *)

val supervise_fork :
  ?policy:policy -> Engine.ctx -> (Engine.ctx -> int) -> outcome
(** {!supervise} over {!Engine.fork} (the privsep baseline's slave). *)

(** {2 Supervision trees} *)

type health = Healthy | Degraded | Restarting | Quarantined
(** [Healthy]: no faults in the window.  [Degraded]: gave up (or still
    carrying window faults) but runnable.  [Restarting]: mid-retry, or
    swept up by a sibling's rest-for-one escalation.  [Quarantined]:
    intensity budget exceeded; runs are refused until the quarantine
    expires. *)

val health_to_string : health -> string

type strategy = One_for_one | Rest_for_one
(** What an escalation does to siblings: nothing ([One_for_one]), or mark
    every {e later-registered} child [Restarting] with cleared fault
    history ([Rest_for_one] — registration order is dependency order). *)

val strategy_to_string : strategy -> string

type restart = Fresh | From_pool of Pool.t
(** Where a child's compartments come from.  [Fresh] boots every attempt
    the fork-priced way ({!Engine.sthread_create} / {!Engine.fork}).
    [From_pool] stamps every attempt from a frozen snapshot image
    ({!Pool.stamp}) at a flat cost independent of image size — so
    recovery after a quarantine escalation, a watchdog cut or a
    [Rest_for_one] sweep is O(1), the [sc] passed to {!run_child_sthread}
    riding along as the stamp's per-invocation extra grants.

    Quarantine throttles crash loops, and its length is priced against
    what a futile restart costs: a [From_pool] child serves a quarter of
    the node's [quarantine_ns], because re-admitting it wastes a flat
    stamp rather than an O(pages) reboot.  Restart-intensity budgets
    thereby stop depending on image size. *)

type node
type child

val node :
  ?strategy:strategy ->
  ?intensity:int ->
  ?window_ns:int ->
  ?healthy_after_ns:int ->
  ?quarantine_ns:int ->
  name:string ->
  Engine.ctx ->
  node
(** A supervision node.  Defaults: [One_for_one], [intensity] 5 faulted
    attempts per [window_ns] 10_000 ns, history reset after
    [healthy_after_ns] 10_000 ns clean, [quarantine_ns] 20_000 ns.
    @raise Invalid_argument on a negative intensity or non-positive
    window. *)

val child : ?policy:policy -> ?restart:restart -> node -> name:string -> child
(** Register a named child (registration order is the [Rest_for_one]
    dependency order).  [policy] governs each {!run_child}'s retries;
    [restart] (default [Fresh]) selects fresh boots or pooled stamps.
    @raise Invalid_argument on a duplicate name within the node. *)

val run_child :
  ?on_restart:(unit -> unit) -> child -> (unit -> Engine.handle) -> outcome
(** {!supervise} under the child's policy, plus tree accounting: every
    faulted attempt lands in the intensity window; exceeding the budget
    escalates (see module doc) and returns [Gave_up] with reason
    ["escalated: ..."].  While quarantined, returns [Gave_up { attempts =
    0; last_fault = "quarantined: ..." }] without running anything.
    [on_restart] fires once per retry, after the backoff charge and
    before the next attempt — the hook for per-attempt repair work such
    as re-arming a watchdog heart the previous attempt's cut left hung
    ({!Wedge_net.Guard.rearm_heart}). *)

val run_child_sthread :
  ?on_restart:(unit -> unit) ->
  ?instr:Wedge_sim.Instr.t ->
  child ->
  Sc.t ->
  (Engine.ctx -> int -> int) ->
  int ->
  outcome
(** Under [From_pool], each attempt is {!Pool.stamp} with [sc] as the
    extra grants; under [Fresh], {!Engine.sthread_create} as before. *)

val run_child_fork :
  ?on_restart:(unit -> unit) -> ?pool_extra:Sc.t -> child -> (Engine.ctx -> int) -> outcome
(** Under [From_pool], each attempt is a stamped sthread standing in for
    the fork, with [pool_extra] carrying the grants the fork would have
    inherited (typically the connection descriptor); [pool_extra] is
    ignored under [Fresh]. *)

val run_child_fn : ?on_restart:(unit -> unit) -> child -> (unit -> int) -> outcome
(** {!run_child} over a plain function in the caller's process — the
    shape of an accept loop: not a compartment, but restartable under the
    same budget when a contained fault leaks out of the serve path. *)

val child_name : child -> string
val child_health : child -> health
val child_restarts : child -> int
(** Lifetime restarts (including rest-for-one sweeps), for summaries. *)

val quarantined_until : child -> int option
(** Simulated-clock instant the quarantine lifts, while quarantined. *)

val children : node -> (string * health) list
(** Child names and health, in registration order. *)

val node_health : node -> health
(** The worst child health (a node is as sick as its sickest child). *)

val tree_to_string : node -> string
(** Deterministic one-line rendering, e.g.
    ["httpd[one-for-one healthy]: listener=healthy/0, worker=degraded/3"]. *)
