(** Restart policies for compartments.

    The engine contains a compartment crash (protection fault, SELinux
    denial, injected ENOMEM or channel fault) by terminating only that
    compartment; a supervisor decides what happens next.  Each faulted
    attempt is retried up to [max_restarts] times with exponential backoff
    charged to the simulated clock; when the policy is exhausted the
    caller receives {!Gave_up} and degrades the one affected connection
    (HTTP 500, POP3 [-ERR], SSH disconnect) while the listener lives on. *)

type policy = {
  max_restarts : int;  (** retries after the first attempt *)
  backoff_ns : int;  (** retry [k] charges [backoff_ns * 2^(k-1)] ns *)
}

val default_policy : policy
(** No restarts: fail straight to degraded (right for workers whose input
    stream is consumed by the failed attempt). *)

val policy : ?max_restarts:int -> ?backoff_ns:int -> unit -> policy

type outcome =
  | Done of { value : int; attempts : int }
      (** The compartment terminated by exiting (any code, including
          nonzero protocol failures) on attempt [attempts]. *)
  | Gave_up of { attempts : int; last_fault : string }
      (** Every attempt faulted; [last_fault] is the final reason. *)

val outcome_to_string : outcome -> string

val supervise :
  ?policy:policy -> Engine.ctx -> (unit -> Engine.handle) -> outcome
(** [supervise ctx run] runs attempts produced by [run] until one exits or
    the policy gives up.  Bumps kernel stats [supervisor.restart] and
    [supervisor.gave_up].  A contained fault raised by [run] itself (e.g.
    a resource quota hit while creating the compartment) counts as a
    faulted attempt with reason prefix ["create: "] — it never propagates
    to the caller. *)

val supervise_sthread :
  ?policy:policy ->
  ?instr:Wedge_sim.Instr.t ->
  Engine.ctx ->
  Sc.t ->
  (Engine.ctx -> int -> int) ->
  int ->
  outcome
(** {!supervise} over {!Engine.sthread_create}: each attempt is a fresh
    default-deny sthread with grants [sc]. *)

val supervise_fork :
  ?policy:policy -> Engine.ctx -> (Engine.ctx -> int) -> outcome
(** {!supervise} over {!Engine.fork} (the privsep baseline's slave). *)
