type app = Engine.app
type ctx = Engine.ctx
type handle = Engine.handle
type gate_id = Engine.gate_id

exception Privilege_violation = Engine.Privilege_violation
exception Exit_sthread = Engine.Exit_sthread
exception Fd_error = Engine.Fd_error
exception Heap_corruption = Engine.Heap_corruption

let create_app ?image_pages kernel = Engine.create_app ?image_pages kernel
let main_ctx = Engine.main_ctx
let boot = Engine.boot
let booted = Engine.booted
let kernel = Engine.kernel
let live_tags = Engine.live_tags
let set_tag_cache = Engine.set_tag_cache
let tag_cache_hits = Engine.tag_cache_hits
let tag_cache_misses = Engine.tag_cache_misses
let find_tag_by_addr = Engine.find_tag_by_addr
let app_of = Engine.app_of
let pid = Engine.pid
let getuid = Engine.getuid
let proc = Engine.proc
let sthread_create = Engine.sthread_create
let sthread_join = Engine.sthread_join
let handle_status = Engine.handle_status
let exit_sthread = Engine.exit_sthread
let tag_new = Engine.tag_new
let tag_delete = Engine.tag_delete
let set_on_tag_delete = Engine.set_on_tag_delete
let smalloc = Engine.smalloc
let sfree = Engine.sfree
let malloc = Engine.malloc
let free = Engine.free
let smalloc_on = Engine.smalloc_on
let smalloc_off = Engine.smalloc_off
let smalloc_state = Engine.smalloc_state
let boundary_var = Engine.boundary_var
let boundary_tag = Engine.boundary_tag
let sc_create = Sc.create
let sc_mem_add = Sc.mem_add
let sc_fd_add = Sc.fd_add
let sc_sel_context = Sc.sel_context
let sc_set_uid = Sc.set_uid
let sc_set_root = Sc.set_root
let sc_gate_grant = Sc.gate_grant
let sc_set_rlimit = Sc.set_rlimit
let sc_cgate_add = Engine.sc_cgate_add
let cgate = Engine.cgate
let gate_name = Engine.gate_name
let fork = Engine.fork
let pthread = Engine.pthread
let set_identity = Engine.set_identity
let read_u8 = Engine.read_u8
let write_u8 = Engine.write_u8
let read_u16 = Engine.read_u16
let write_u16 = Engine.write_u16
let read_u32 = Engine.read_u32
let write_u32 = Engine.write_u32
let read_u64 = Engine.read_u64
let write_u64 = Engine.write_u64
let read_bytes = Engine.read_bytes
let write_bytes = Engine.write_bytes
let read_string = Engine.read_string
let write_string = Engine.write_string
let write_lv = Engine.write_lv
let read_lv = Engine.read_lv
let charge_app = Engine.charge_app
let stat = Engine.stat
let trace_instant = Engine.trace_instant
let register_metrics = Engine.register_metrics
let fault_reason = Engine.fault_reason
let register_fault_class = Engine.register_fault_class
let can_read = Engine.can_read
let can_write = Engine.can_write

type tlb_stats = Engine.tlb_stats = {
  tlb_hits : int;
  tlb_misses : int;
  tlb_shootdowns : int;
}

let tlb_stats = Engine.tlb_stats
let set_instr = Engine.set_instr
let instr_of = Engine.instr_of

type policy_check = Engine.policy_check = {
  pol_mem : addr:int -> len:int -> write:bool -> string option;
  pol_fd : fd:int -> write:bool -> string option;
  pol_gate : string -> string option;
}

let set_policy = Engine.set_policy
let policy_of = Engine.policy_of
let in_function = Engine.in_function
let stack_frame = Engine.stack_frame
let open_file = Engine.open_file
let add_endpoint = Engine.add_endpoint
let fd_read = Engine.fd_read
let fd_write = Engine.fd_write
let fd_read_into = Engine.fd_read_into
let fd_write_from = Engine.fd_write_from
let fd_readv = Engine.fd_readv
let fd_writev = Engine.fd_writev
let fd_close = Engine.fd_close
let vfs_read = Engine.vfs_read
let vfs_write = Engine.vfs_write
let vfs_readdir = Engine.vfs_readdir
let caller_pid = Engine.caller_pid

module Pool = Pool
