(** Security contexts ([sc_t], §3.1, Table 1).

    An sc describes everything an sthread may touch: memory tags with their
    permissions, file descriptors with theirs, invocable callgates, and the
    UNIX uid / filesystem root / SELinux SID it runs under.  A fresh sc
    grants nothing — compartments are default-deny; every privilege is an
    explicit [*_add] call. *)

type mem_grant = {
  tag : Wedge_mem.Tag.t;
  grant : Wedge_kernel.Prot.grant;
}

type fd_grant = {
  fd : int;
  perm : Wedge_kernel.Fd_table.perm;
}

type t = {
  mutable mems : mem_grant list;
  mutable fds : fd_grant list;
  mutable gates : int list;  (** callgate capability ids, minted by
                                 [Engine.sc_cgate_add] *)
  mutable uid : int option;   (** [None] inherits the parent's *)
  mutable root : string option;
  mutable sid : string option;
  mutable limits : Wedge_kernel.Rlimit.t option;
      (** resource quotas for the child ([None] inherits the parent's
          caps with fresh usage) *)
}

val create : unit -> t
(** The empty (deny-everything) security context. *)

val mem_add : t -> Wedge_mem.Tag.t -> Wedge_kernel.Prot.grant -> unit
(** [sc_mem_add] of Table 1. *)

val fd_add : t -> int -> Wedge_kernel.Fd_table.perm -> unit
(** [sc_fd_add] of Table 1. *)

val sel_context : t -> string -> unit
(** [sc_sel_context] of Table 1. *)

val set_uid : t -> int -> unit
val set_root : t -> string -> unit

val gate_grant : t -> int -> unit
(** Grant an existing capability (normally done by
    [Engine.sc_cgate_add]; exposed for passing a held capability on to a
    child). *)

val set_rlimit : t -> Wedge_kernel.Rlimit.t -> unit
(** [sc_set_rlimit]: bound the child's resources.  Validated at sthread
    creation like every other grant — the child's caps must be no looser
    than the parent's ({!Wedge_kernel.Rlimit.subsumes}). *)

val mem_grant_of : t -> int -> Wedge_kernel.Prot.grant option
(** The grant this sc holds for a tag id, if any. *)
