(* Restart supervision for compartments (the recovery half of §4.1's
   containment story): a compartment crash is already contained by the
   engine; this module decides what happens next.  Policies retry a
   crashed sthread with exponential backoff charged to the simulated
   clock, and give up into a [Gave_up] outcome the caller turns into a
   degraded response (HTTP 500, POP3 -ERR, SSH disconnect). *)

module Clock = Wedge_sim.Clock
module Process = Wedge_kernel.Process

type policy = {
  max_restarts : int;  (* retries after the first attempt *)
  backoff_ns : int;  (* charged before retry k as backoff_ns * 2^(k-1) *)
}

let default_policy = { max_restarts = 0; backoff_ns = 100 }
let policy ?(max_restarts = 0) ?(backoff_ns = 100) () = { max_restarts; backoff_ns }

type outcome =
  | Done of { value : int; attempts : int }
  | Gave_up of { attempts : int; last_fault : string }

let outcome_to_string = function
  | Done { value; attempts } -> Printf.sprintf "done value=%d attempts=%d" value attempts
  | Gave_up { attempts; last_fault } ->
      Printf.sprintf "gave up after %d attempts: %s" attempts last_fault

(* [run] produces one attempt's handle (an [sthread_create] or [fork]
   application); keeping it a thunk lets one supervisor cover both. *)
let supervise ?(policy = default_policy) ctx run =
  let rec go attempt =
    (* A contained fault during creation itself (resource quota hit while
       duplicating granted descriptors, frame exhaustion mapping the
       image) counts as a faulted attempt, exactly like a crash inside
       the compartment — it must never propagate past the supervisor. *)
    let status =
      match run () with
      | handle -> `Created handle
      | exception e when Engine.fault_reason e <> None ->
          Engine.stat ctx "fault.compartment";
          `Creation_fault (Option.get (Engine.fault_reason e))
    in
    let faulted reason =
      if attempt <= policy.max_restarts then begin
        Engine.stat ctx "supervisor.restart";
        Engine.trace_instant ctx "supervisor.restart";
        (* Exponential backoff, charged to the simulated clock: 1x, 2x,
           4x ... of [backoff_ns]. *)
        Engine.charge_app ctx (policy.backoff_ns * (1 lsl (attempt - 1)));
        go (attempt + 1)
      end
      else begin
        Engine.stat ctx "supervisor.gave_up";
        Engine.trace_instant ctx "supervisor.gave_up";
        Gave_up { attempts = attempt; last_fault = reason }
      end
    in
    match status with
    | `Creation_fault reason -> faulted ("create: " ^ reason)
    | `Created handle -> (
        match Engine.handle_status handle with
        | Process.Faulted reason -> faulted reason
        | _ -> Done { value = Engine.sthread_join ctx handle; attempts = attempt })
  in
  go 1

let supervise_sthread ?policy ?instr ctx sc fn arg =
  supervise ?policy ctx (fun () -> Engine.sthread_create ?instr ctx sc fn arg)

let supervise_fork ?policy ctx fn = supervise ?policy ctx (fun () -> Engine.fork ctx fn)
