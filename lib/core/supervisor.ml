(* Restart supervision for compartments (the recovery half of §4.1's
   containment story): a compartment crash is already contained by the
   engine; this module decides what happens next.

   Two layers:

   - The flat API ([supervise] and friends): retry a crashed sthread with
     exponential backoff charged to the simulated clock, give up into a
     [Gave_up] outcome the caller turns into a degraded response (HTTP
     500, POP3 -ERR, SSH disconnect).

   - The supervision tree ([node] / [child] / [run_child*]): named
     children with per-child health state and a restart-intensity budget
     on the simulated clock.  A child whose faults exceed the budget
     inside the window escalates to its node — it is quarantined (runs
     are refused outright until the quarantine expires, the caller's
     degraded path fires without burning a doomed spawn) and, under
     [Rest_for_one], every child registered after it is marked
     [Restarting] with its fault history cleared.  A child that stays
     healthy for the node's healthy window gets its fault history reset,
     so one early crash does not inflate a long-lived worker's intensity
     forever. *)

module Clock = Wedge_sim.Clock
module Process = Wedge_kernel.Process

type policy = {
  max_restarts : int;  (* retries after the first attempt *)
  backoff_ns : int;  (* charged before retry k as backoff_ns * 2^(k-1) *)
  max_backoff_ns : int;  (* cap on any single backoff charge *)
}

let default_max_backoff_ns = 1_000_000_000

let default_policy =
  { max_restarts = 0; backoff_ns = 100; max_backoff_ns = default_max_backoff_ns }

let policy ?(max_restarts = 0) ?(backoff_ns = 100)
    ?(max_backoff_ns = default_max_backoff_ns) () =
  { max_restarts; backoff_ns; max_backoff_ns }

(* Overflow-safe exponential backoff: double attempt-1 times, saturating
   at the cap.  The former [backoff_ns * (1 lsl (attempt - 1))] went
   negative past a 62-step shift (and far earlier for large [backoff_ns]),
   which *credited* simulated time back to the clock. *)
let backoff_for p ~attempt =
  if p.backoff_ns <= 0 then 0
  else begin
    let cap = max p.max_backoff_ns 0 in
    let rec go k v =
      if k <= 0 || v >= cap then min v cap
      else go (k - 1) (if v > max_int / 2 then max_int else v * 2)
    in
    go (attempt - 1) p.backoff_ns
  end

type outcome =
  | Done of { value : int; attempts : int }
  | Gave_up of { attempts : int; last_fault : string }

let outcome_to_string = function
  | Done { value; attempts } -> Printf.sprintf "done value=%d attempts=%d" value attempts
  | Gave_up { attempts; last_fault } ->
      Printf.sprintf "gave up after %d attempts: %s" attempts last_fault

(* ------------------------------------------------------------------ *)
(* Attempts                                                            *)

(* One attempt of the supervised unit, with every contained fault folded
   into [Error reason] — both a fault during creation itself (resource
   quota hit while duplicating granted descriptors, frame exhaustion
   mapping the image) and a crash inside the compartment.  Neither may
   ever propagate past the supervisor. *)
let run_attempt ctx run =
  match run () with
  | handle -> (
      match Engine.handle_status handle with
      | Process.Faulted reason -> Error reason
      | _ -> Ok (Engine.sthread_join ctx handle))
  | exception e when Engine.fault_reason e <> None ->
      Engine.stat ctx "fault.compartment";
      Error ("create: " ^ Option.get (Engine.fault_reason e))

(* The flat retry loop, parameterised over what happens before a retry:
   the tree layer threads its intensity accounting through [on_fault]
   (returning [false] to abort the retry sequence — escalation), and
   callers hook per-retry repair work — re-arming a watchdog heart left
   [`Hung] by the cut that killed the previous attempt — through
   [on_restart], which fires after the backoff charge, just before the
   new attempt spawns. *)
let supervise_gen ~policy:p ~on_fault ~on_restart ctx attempt =
  let rec go n =
    match attempt () with
    | Ok value -> Done { value; attempts = n }
    | Error reason ->
        if not (on_fault ~attempt:n reason) then
          Gave_up { attempts = n; last_fault = "escalated: " ^ reason }
        else if n <= p.max_restarts then begin
          Engine.stat ctx "supervisor.restart";
          Engine.trace_instant ctx "supervisor.restart";
          (* Exponential backoff, charged to the simulated clock: 1x, 2x,
             4x ... of [backoff_ns], saturating at [max_backoff_ns]. *)
          Engine.charge_app ctx (backoff_for p ~attempt:n);
          on_restart ();
          go (n + 1)
        end
        else begin
          Engine.stat ctx "supervisor.gave_up";
          Engine.trace_instant ctx "supervisor.gave_up";
          Gave_up { attempts = n; last_fault = reason }
        end
  in
  go 1

let supervise ?(policy = default_policy) ctx run =
  supervise_gen ~policy
    ~on_fault:(fun ~attempt:_ _ -> true)
    ~on_restart:(fun () -> ())
    ctx
    (fun () -> run_attempt ctx run)

let supervise_sthread ?policy ?instr ctx sc fn arg =
  supervise ?policy ctx (fun () -> Engine.sthread_create ?instr ctx sc fn arg)

let supervise_fork ?policy ctx fn = supervise ?policy ctx (fun () -> Engine.fork ctx fn)

(* ------------------------------------------------------------------ *)
(* Supervision tree                                                    *)

type health = Healthy | Degraded | Restarting | Quarantined
type strategy = One_for_one | Rest_for_one

(* Where a child's compartments come from: fresh fork-priced boots, or
   O(1) stamps from a frozen snapshot pool.  [From_pool] applies to every
   attempt, so a restart after a quarantine escalation, a watchdog cut or
   a [Rest_for_one] sweep pays the flat stamp cost instead of a boot that
   scales with the image — the recovery path this module exists for. *)
type restart = Fresh | From_pool of Pool.t

let health_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Restarting -> "restarting"
  | Quarantined -> "quarantined"

let strategy_to_string = function
  | One_for_one -> "one-for-one"
  | Rest_for_one -> "rest-for-one"

type node = {
  n_name : string;
  n_strategy : strategy;
  n_intensity : int;  (* faulted attempts tolerated inside the window *)
  n_window_ns : int;
  n_healthy_after_ns : int;  (* fault history forgotten after this *)
  n_quarantine_ns : int;
  n_ctx : Engine.ctx;
  mutable n_children : child list;  (* registration order, oldest first *)
}

and child = {
  c_name : string;
  c_node : node;
  c_policy : policy;
  c_restart : restart;
  mutable c_health : health;
  mutable c_faults : int list;  (* fault timestamps inside the window, newest first *)
  mutable c_last_fault_ns : int;
  mutable c_last_fault : string;
  mutable c_quarantined_until : int;
  mutable c_restarts : int;  (* lifetime restart count, for summaries *)
}

let node ?(strategy = One_for_one) ?(intensity = 5) ?(window_ns = 10_000)
    ?(healthy_after_ns = 10_000) ?(quarantine_ns = 20_000) ~name ctx =
  if intensity < 0 then invalid_arg "Supervisor.node: intensity < 0";
  if window_ns <= 0 || healthy_after_ns <= 0 || quarantine_ns <= 0 then
    invalid_arg "Supervisor.node: windows must be positive";
  {
    n_name = name;
    n_strategy = strategy;
    n_intensity = intensity;
    n_window_ns = window_ns;
    n_healthy_after_ns = healthy_after_ns;
    n_quarantine_ns = quarantine_ns;
    n_ctx = ctx;
    n_children = [];
  }

let child ?(policy = default_policy) ?(restart = Fresh) node ~name =
  if List.exists (fun c -> c.c_name = name) node.n_children then
    invalid_arg ("Supervisor.child: duplicate child " ^ name);
  let c =
    {
      c_name = name;
      c_node = node;
      c_policy = policy;
      c_restart = restart;
      c_health = Healthy;
      c_faults = [];
      c_last_fault_ns = 0;
      c_last_fault = "";
      c_quarantined_until = 0;
      c_restarts = 0;
    }
  in
  node.n_children <- node.n_children @ [ c ];
  c

let child_name c = c.c_name
let child_health c = c.c_health
let child_restarts c = c.c_restarts
let children n = List.map (fun c -> (c.c_name, c.c_health)) n.n_children

(* A node is as sick as its sickest child. *)
let node_health n =
  let rank = function Healthy -> 0 | Restarting -> 1 | Degraded -> 2 | Quarantined -> 3 in
  List.fold_left
    (fun acc c -> if rank c.c_health > rank acc then c.c_health else acc)
    Healthy n.n_children

let quarantined_until c =
  match c.c_health with Quarantined -> Some c.c_quarantined_until | _ -> None

let now_of n = Clock.now (Engine.clock n.n_ctx)

(* Clock-window bookkeeping at the start of every run: lift an expired
   quarantine, and forget the fault history of a child that has stayed
   clean for the healthy window — the long-lived-worker reset. *)
let refresh c =
  let n = c.c_node in
  let now = now_of n in
  (match c.c_health with
  | Quarantined when now >= c.c_quarantined_until ->
      c.c_health <- Restarting;
      c.c_faults <- [];
      Engine.stat n.n_ctx "supervisor.quarantine.lift";
      Engine.trace_instant n.n_ctx "supervisor.quarantine.lift"
  | _ -> ());
  if c.c_faults <> [] && now - c.c_last_fault_ns >= n.n_healthy_after_ns then begin
    c.c_faults <- [];
    if c.c_health = Degraded then c.c_health <- Healthy;
    Engine.stat n.n_ctx "supervisor.healthy_reset"
  end

let quarantine c now reason =
  let n = c.c_node in
  c.c_health <- Quarantined;
  (* Quarantine throttles crash loops, and its length is priced against
     what a futile restart costs.  A [From_pool] child restarts as a
     flat-cost stamp instead of an O(pages) reboot, so the same thrash
     budget re-admits it 4x sooner — this is what makes recovery time
     independent of image size, not just the spawn itself. *)
  let span =
    match c.c_restart with
    | From_pool _ -> max 1 (n.n_quarantine_ns / 4)
    | Fresh -> n.n_quarantine_ns
  in
  c.c_quarantined_until <- now + span;
  c.c_last_fault <- reason;
  Engine.stat n.n_ctx "supervisor.escalated";
  Engine.trace_instant n.n_ctx "supervisor.escalated";
  match n.n_strategy with
  | One_for_one -> ()
  | Rest_for_one ->
      (* Children registered after the escalating one restart with it:
         their state may depend on the failed sibling, so their fault
         history no longer means anything. *)
      let rec later = function
        | [] -> []
        | c' :: rest when c' == c -> rest
        | _ :: rest -> later rest
      in
      List.iter
        (fun c' ->
          if c'.c_health <> Quarantined then begin
            c'.c_health <- Restarting;
            c'.c_faults <- [];
            c'.c_restarts <- c'.c_restarts + 1;
            Engine.stat n.n_ctx "supervisor.rest_for_one"
          end)
        (later n.n_children)

(* Record one faulted attempt against the child's intensity window.
   Returns [false] — stop retrying — when the budget is exceeded. *)
let note_fault c reason =
  let n = c.c_node in
  let now = now_of n in
  c.c_faults <- now :: List.filter (fun t -> now - t <= n.n_window_ns) c.c_faults;
  c.c_last_fault_ns <- now;
  c.c_last_fault <- reason;
  if List.length c.c_faults > n.n_intensity then begin
    quarantine c now reason;
    false
  end
  else true

let run_child_gen ?(on_restart = fun () -> ()) c attempt =
  let n = c.c_node in
  refresh c;
  match c.c_health with
  | Quarantined ->
      (* Refused outright: the caller degrades this request immediately
         instead of burning a doomed compartment spawn. *)
      Engine.stat n.n_ctx "supervisor.quarantine.refused";
      Gave_up { attempts = 0; last_fault = "quarantined: " ^ c.c_last_fault }
  | _ ->
      let on_fault ~attempt reason =
        let retry = note_fault c reason in
        (* Only an attempt the policy will actually retry counts as a
           restart; the final fault before a give-up does not. *)
        if retry && attempt <= c.c_policy.max_restarts then begin
          c.c_health <- Restarting;
          c.c_restarts <- c.c_restarts + 1
        end;
        retry
      in
      let outcome = supervise_gen ~policy:c.c_policy ~on_fault ~on_restart n.n_ctx attempt in
      (match outcome with
      | Done _ -> c.c_health <- (if c.c_faults = [] then Healthy else Degraded)
      | Gave_up _ -> if c.c_health <> Quarantined then c.c_health <- Degraded);
      outcome

let run_child ?on_restart c run =
  run_child_gen ?on_restart c (fun () -> run_attempt c.c_node.n_ctx run)

let run_child_sthread ?on_restart ?instr c sc fn arg =
  match c.c_restart with
  | Fresh ->
      run_child ?on_restart c (fun () ->
          Engine.sthread_create ?instr c.c_node.n_ctx sc fn arg)
  | From_pool pool ->
      (* Every attempt is stamped from the frozen image at the flat
         [pool_stamp] cost; [sc] rides along as the per-invocation extra
         (the usual per-page/per-fd price on the small per-connection
         grants, not on the image). *)
      run_child ?on_restart c (fun () ->
          Pool.stamp ?instr ~extra:sc c.c_node.n_ctx pool fn arg)

let run_child_fork ?on_restart ?pool_extra c fn =
  match c.c_restart with
  | Fresh -> run_child ?on_restart c (fun () -> Engine.fork c.c_node.n_ctx fn)
  | From_pool pool ->
      (* The privsep slave's pooled form: a stamped sthread standing in
         for the fork, with [pool_extra] carrying what the fork would
         have inherited for free (the connection descriptor). *)
      run_child ?on_restart c (fun () ->
          Pool.stamp ?extra:pool_extra c.c_node.n_ctx pool (fun c _ -> fn c) 0)

(* Supervise a plain function in the caller's process — the shape of an
   accept loop, which is not a compartment but must survive contained
   faults leaking out of the serve path all the same. *)
let run_child_fn ?on_restart c fn =
  run_child_gen ?on_restart c (fun () ->
      match fn () with
      | v -> Ok v
      | exception e when Engine.fault_reason e <> None ->
          Error (Option.get (Engine.fault_reason e)))

let tree_to_string n =
  Printf.sprintf "%s[%s %s]: %s" n.n_name
    (strategy_to_string n.n_strategy)
    (health_to_string (node_health n))
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s=%s/%d" c.c_name (health_to_string c.c_health) c.c_restarts)
          n.n_children))
