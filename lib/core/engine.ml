(* The Wedge engine: applications, sthreads, callgates and tagged memory on
   top of the simulated kernel.  This module holds the mutually recursive
   types (a callgate entry receives a ctx; a ctx belongs to an app that
   stores callgates); the thin public modules [Sthread], [Callgate] and
   [Wedge] re-export groups of these operations. *)

module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics
module Instr = Wedge_sim.Instr
module Kernel = Wedge_kernel.Kernel
module Vm = Wedge_kernel.Vm
module Prot = Wedge_kernel.Prot
module Process = Wedge_kernel.Process
module Fd_table = Wedge_kernel.Fd_table
module Vfs = Wedge_kernel.Vfs
module Layout = Wedge_kernel.Layout
module Selinux = Wedge_kernel.Selinux
module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Tag = Wedge_mem.Tag
module Smalloc = Wedge_mem.Smalloc
module Tag_cache = Wedge_mem.Tag_cache
module Fault_plan = Wedge_fault.Fault_plan
module Rlimit = Wedge_kernel.Rlimit
module Fiber = Wedge_sim.Fiber

exception Privilege_violation of string
exception Exit_sthread of int

exception Heap_corruption of string
(* What [sfree] raises when the allocator's pointer validation rejects a
   wild or corrupted chunk: the glibc-abort analogue.  A hostile peer
   compartment can scribble over shared tagged memory, so the victim
   detecting the damage at free time must die contained (SIGABRT), not
   crash the application as a programming error. *)

(* The exception classes that kill a compartment without propagating —
   the simulated SIGSEGV/SIGKILL family.  Everything else (including
   [Privilege_violation], a policy bug in the caller) propagates.
   Layers above this one (wedge_net, invisible from here) register their
   own contained classes at module initialisation: a refused connection,
   for instance, is an environmental condition a supervised compartment
   must die from cleanly, not a programming error. *)
let extra_fault_classes : (exn -> string option) list ref = ref []
let register_fault_class f = extra_fault_classes := f :: !extra_fault_classes

let fault_reason e =
  match e with
  | Vm.Fault f -> Some (Vm.fault_to_string f)
  | Kernel.Eperm msg -> Some msg
  | Physmem.Enomem -> Some "out of memory"
  | Fault_plan.Injected msg -> Some msg
  | Rlimit.Resource_exhausted msg -> Some msg
  | Heap_corruption msg -> Some msg
  (* A watchdog-cancelled fiber dies contained, like a SIGKILLed hung
     worker: the hang was detected and cut, not a programming error. *)
  | Fiber.Cancelled msg -> Some msg
  | _ -> List.find_map (fun f -> f e) !extra_fault_classes

let page_size = Physmem.page_size

type gate_id = int

(* An installed declarative profile (see [Wedge_crowbar.Synth]): the
   loader attaches one of these to a compartment's ctx at creation, and
   the engine consults it on every data access, descriptor operation and
   callgate invocation.  A hook returns [Some msg] when the operation
   exceeds the installed profile; the engine then raises
   [Privilege_violation msg], which dies CONTAINED for a profiled
   compartment (the sandbox working, not a monitor bug).  Complain-mode
   hooks log and return [None], so nothing is denied. *)
type policy_check = {
  pol_mem : addr:int -> len:int -> write:bool -> string option;
  pol_fd : fd:int -> write:bool -> string option;
  pol_gate : string -> string option;
}

type boundary_section = {
  b_id : int;
  b_name : string;
  b_base : int;
  b_pages : int;
  mutable b_tag : Tag.t option;
}

(* One page of a frozen compartment snapshot (see [Pool]): the frame it
   pins, the protection a stamped child maps it with, and its tag.  The
   registry lives on the app — not in [Pool] — so the invariant oracles
   can re-derive frame refcounts (frozen images are pristine-like
   holders) without a dependency on the pool module. *)
type frozen_page = {
  fz_vpn : int;
  fz_frame : int;
  fz_prot : Prot.page;
  fz_tag : int option;
}

type app = {
  kernel : Kernel.t;
  layout : Layout.t;
  tags : Tag.registry;
  tag_cache : Tag_cache.t;
  gates : (gate_id, gate) Hashtbl.t;
  mutable next_gate : gate_id;
  mutable boundaries : boundary_section list;
  mutable data_pages : int;  (* image pages + boundary pages *)
  image_pages : int;
  mutable booted : bool;
  mutable pristine : (int * int) list;  (* (vpn, frame) of the snapshot *)
  mutable main : ctx option;
  recycled_pool : (string, pooled) Hashtbl.t;
      (* long-lived sthreads backing recycled callgates, keyed by gate
         name so they survive per-connection gate re-instantiation *)
  mutable frozen_images : (string * frozen_page list) list;
      (* frozen snapshot-pool images, newest first; each page holds one
         Physmem reference until the image is discarded *)
  mutable pool_freezes : int;
  mutable pool_stamps : int;  (* stamp attempts, including faulted ones *)
  mutable pool_hits : int;  (* stamps that produced a running compartment *)
  mutable on_tag_delete : (Tag.t -> unit) option;
      (* fires after [tag_delete] finishes the local revocation (every
         address space of THIS kernel unmapped, frames released, tag
         dead).  The shard fabric hangs its cross-shard TLB-shootdown
         broadcast here; the hook runs in the deleter's fiber and may
         yield/park while it waits for remote acks. *)
}

and pooled = {
  mutable p_ctx : ctx;
  mutable p_sc : Sc.t;  (* grants currently mapped into the pooled sthread *)
}

and gate = {
  g_id : gate_id;
  g_name : string;
  g_entry : ctx -> trusted:int -> arg:int -> int;
  g_sc : Sc.t;  (* permissions fixed and validated at creation *)
  g_trusted : int;  (* kernel-held trusted argument *)
  g_minter : int;  (* pid that performed sc_cgate_add *)
  g_uid : int;  (* identity inherited from the creator, not the caller *)
  g_root : string;
  g_sid : string;
  g_recycled : bool;
  g_fds : (int * Fd_table.target * Fd_table.perm) list;
      (* descriptor grants resolved against the creator at creation time,
         so a caller without network access cannot influence (and need not
         hold) the gate's descriptors *)
}

and ctx = {
  app : app;
  proc : Process.t;
  sc : Sc.t;  (* the effective grants this compartment was created with *)
  mutable instr : Instr.t;
  mutable policy : policy_check option;
      (* an installed declarative profile (Crowbar synthesis loader):
         checked on every data access, descriptor operation and callgate
         invocation of THIS compartment *)
  mutable smalloc_tag : Tag.t option;  (* smalloc_on state (per sthread) *)
  mutable heap_ready : bool;
  mutable stack_ready : bool;
  mutable stack_sp : int;
  mutable caller_pid : int option;
      (* during a callgate invocation, the pid of the invoking sthread
         (kernel-provided, like SO_PEERCRED) *)
}

type handle = {
  h_proc : Process.t;
  mutable h_result : int option;
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let costs ctx = ctx.app.kernel.Kernel.costs
let clock ctx = ctx.app.kernel.Kernel.clock
let charge ctx ns = Clock.charge (clock ctx) ns
let stat ctx name = Stats.bump ctx.app.kernel.Kernel.stats name
let kernel app = app.kernel
let app_of ctx = ctx.app
let proc ctx = ctx.proc
let pid ctx = ctx.proc.Process.pid
let ktrace ctx = ctx.app.kernel.Kernel.trace

(* Record an instant against the caller's pid; the single [enabled]
   branch is the entire disabled-path cost, so callers pass only
   pre-built names here (dynamic names must guard themselves). *)
let trace_instant ctx name =
  let tr = ktrace ctx in
  if Trace.enabled tr then Trace.instant tr ~name ~pid:ctx.proc.Process.pid
let getuid ctx = ctx.proc.Process.uid
let booted app = app.booted
let violation fmt = Printf.ksprintf (fun s -> raise (Privilege_violation s)) fmt

(* An installed profile said no: counted, visible in the kernel trace,
   then the standard policy exception — contained by [run_compartment]
   (and the recycled-gate path) because the dying ctx carries a policy. *)
let policy_deny ctx msg =
  stat ctx "policy.deny";
  trace_instant ctx "policy.violation";
  raise (Privilege_violation msg)

let check_policy_fd ctx fd ~write =
  match ctx.policy with
  | None -> ()
  | Some p -> (
      match p.pol_fd ~fd ~write with
      | None -> ()
      | Some msg -> policy_deny ctx msg)

let check_policy_gate ctx name =
  match ctx.policy with
  | None -> ()
  | Some p -> (
      match p.pol_gate name with
      | None -> ()
      | Some msg -> policy_deny ctx msg)

(* ------------------------------------------------------------------ *)
(* Application setup                                                   *)

let default_image_pages = 300  (* a minimal process: libc + loader + globals *)

let make_ctx app proc sc instr =
  {
    app;
    proc;
    sc;
    instr;
    policy = None;
    smalloc_tag = None;
    heap_ready = false;
    stack_ready = false;
    stack_sp = Layout.stack_base + (Layout.stack_pages * page_size);
    caller_pid = None;
  }

let create_app ?(image_pages = default_image_pages) kernel =
  let app =
    {
      kernel;
      layout = Layout.create ();
      tags = Tag.registry_create ();
      tag_cache = Tag_cache.create kernel.Kernel.pm;
      gates = Hashtbl.create 16;
      next_gate = 1;
      boundaries = [];
      data_pages = image_pages;
      image_pages;
      booted = false;
      pristine = [];
      main = None;
      recycled_pool = Hashtbl.create 8;
      frozen_images = [];
      pool_freezes = 0;
      pool_stamps = 0;
      pool_hits = 0;
      on_tag_delete = None;
    }
  in
  let proc = Kernel.new_process kernel ~kind:Process.Main ~uid:0 ~root:"/" ~sid:"system_u:system_r:init_t" () in
  Vm.map_fresh proc.Process.vm ~addr:Layout.data_base ~pages:image_pages
    ~prot:Prot.page_rw ~tag:None;
  let ctx = make_ctx app proc (Sc.create ()) Instr.null in
  app.main <- Some ctx;
  app

let main_ctx app =
  match app.main with
  | Some c -> c
  | None -> invalid_arg "Engine.main_ctx: application torn down"

(* Declare a tagged global section (BOUNDARY_VAR, §4.1): page-aligned pages
   appended to the data segment, excluded from the pristine snapshot. *)
let boundary_var app ~id ~name ~size =
  if app.booted then invalid_arg "Engine.boundary_var: application already booted";
  if List.exists (fun b -> b.b_id = id) app.boundaries then
    invalid_arg (Printf.sprintf "Engine.boundary_var: id %d already declared" id);
  let pages = Layout.pages_for ~bytes_len:size in
  let base = Layout.data_base + (app.data_pages * page_size) in
  app.data_pages <- app.data_pages + pages;
  let main = main_ctx app in
  Vm.map_fresh main.proc.Process.vm ~addr:base ~pages ~prot:Prot.page_rw ~tag:None;
  app.boundaries <- { b_id = id; b_name = name; b_base = base; b_pages = pages; b_tag = None } :: app.boundaries;
  base

let find_boundary app id =
  match List.find_opt (fun b -> b.b_id = id) app.boundaries with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Engine.boundary: id %d not declared" id)

(* Snapshot of the program image just before main() runs (§4.1): record the
   frames, take a snapshot reference on each, and mark the owner's pages
   copy-on-write so later writes never alter the snapshot.  Boundary
   sections are excluded, so sthreads do not receive them by default. *)
let boot app =
  if app.booted then invalid_arg "Engine.boot: already booted";
  let main = main_ctx app in
  let vm = main.proc.Process.vm in
  let pm = app.kernel.Kernel.pm in
  let in_boundary vpn =
    List.exists
      (fun b ->
        let b0 = b.b_base / page_size in
        vpn >= b0 && vpn < b0 + b.b_pages)
      app.boundaries
  in
  let first = Layout.data_base / page_size in
  let snapshot = ref [] in
  for vpn = first to first + app.data_pages - 1 do
    if not (in_boundary vpn) then
      match Pagetable.find (Vm.page_table vm) ~vpn with
      | Some pte ->
          Physmem.incref pm pte.Pagetable.frame;
          snapshot := (vpn, pte.Pagetable.frame) :: !snapshot;
          (* Through Vm so the owner's cached translations are shot down:
             a warm write entry surviving this downgrade would let post-boot
             writes land on the snapshot's shared frames. *)
          Vm.set_page_prot vm ~addr:(vpn * page_size) ~prot:Prot.page_cow
      | None -> ()
  done;
  app.pristine <- List.rev !snapshot;
  app.booted <- true

(* ------------------------------------------------------------------ *)
(* Effective privileges, derived from ground truth                     *)

(* The memory privilege a process actually holds on a tag is read off its
   page table, which handles main (mapped at tag_new) and sthreads (mapped
   from their policy) uniformly. *)
let priv_for_tag (p : Process.t) (tag : Tag.t) : Prot.grant option =
  match Pagetable.find (Vm.page_table p.Process.vm) ~vpn:(tag.Tag.base / page_size) with
  | None -> None
  | Some pte ->
      let pr = pte.Pagetable.prot in
      if pr.Prot.pw then Some Prot.RW
      else if pr.Prot.pcow then Some Prot.COW
      else if pr.Prot.pr then Some Prot.R
      else None

let holds_gate ctx gid =
  List.mem gid ctx.sc.Sc.gates
  ||
  match Hashtbl.find_opt ctx.app.gates gid with
  | Some g -> g.g_minter = pid ctx
  | None -> false

(* A parent may only delegate subsets of its own privileges (§3.1). *)
let validate_sc parent (sc : Sc.t) =
  List.iter
    (fun { Sc.tag; grant } ->
      if not tag.Tag.live then violation "grant on deleted tag %s" tag.Tag.name;
      match priv_for_tag parent.proc tag with
      | None -> violation "pid %d grants tag %s it does not hold" (pid parent) tag.Tag.name
      | Some pg ->
          if not (Prot.grant_subsumes ~parent:pg ~child:grant) then
            violation "pid %d escalates tag %s from %s to %s" (pid parent) tag.Tag.name
              (Prot.grant_to_string pg) (Prot.grant_to_string grant))
    sc.Sc.mems;
  List.iter
    (fun { Sc.fd; perm } ->
      match Fd_table.find parent.proc.Process.fds fd with
      | None -> violation "pid %d grants fd %d it does not hold" (pid parent) fd
      | Some e ->
          if not (Fd_table.perm_subsumes ~parent:e.Fd_table.perm ~child:perm) then
            violation "pid %d escalates fd %d permissions" (pid parent) fd)
    sc.Sc.fds;
  List.iter
    (fun gid ->
      if not (holds_gate parent gid) then
        violation "pid %d grants callgate %d it does not hold" (pid parent) gid)
    sc.Sc.gates;
  (match sc.Sc.limits with
  | Some child when not (Rlimit.subsumes ~parent:parent.proc.Process.limits ~child) ->
      violation "pid %d escalates resource limits (parent %s, child %s)" (pid parent)
        (Rlimit.to_string parent.proc.Process.limits)
        (Rlimit.to_string child)
  | _ -> ());
  (match sc.Sc.uid with
  | Some u when u <> parent.proc.Process.uid && parent.proc.Process.uid <> 0 ->
      violation "pid %d (uid %d) cannot set uid %d" (pid parent) parent.proc.Process.uid u
  | _ -> ());
  (match sc.Sc.root with
  | Some r when r <> parent.proc.Process.root && parent.proc.Process.uid <> 0 ->
      violation "pid %d cannot chroot without uid 0" (pid parent)
  | _ -> ());
  match sc.Sc.sid with
  | Some sid
    when not
           (Selinux.may_transition parent.app.kernel.Kernel.selinux
              ~from_:parent.proc.Process.sid ~to_:sid) ->
      violation "SELinux forbids transition %s -> %s" parent.proc.Process.sid sid
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Sthread construction                                                *)

let resolve_identity parent (sc : Sc.t) =
  ( Option.value sc.Sc.uid ~default:parent.proc.Process.uid,
    Option.value sc.Sc.root ~default:parent.proc.Process.root,
    Option.value sc.Sc.sid ~default:parent.proc.Process.sid )

(* Like identity, limits inherit from the parent when the sc is silent:
   the child gets the parent's caps with fresh usage, so an unlimited
   parent mints unlimited children and a quota-bound parent can never be
   escaped by omitting the field. *)
let resolve_limits parent (sc : Sc.t) =
  Rlimit.child_of (Option.value sc.Sc.limits ~default:parent.proc.Process.limits)

(* Map the pristine snapshot copy-on-write into a new sthread. *)
let map_pristine app (vm : Vm.t) =
  let cm = app.kernel.Kernel.costs in
  List.iter
    (fun (vpn, frame) ->
      Clock.charge app.kernel.Kernel.clock cm.Cost_model.pte_copy;
      Vm.map_frame vm ~addr:(vpn * page_size) ~frame ~prot:Prot.page_cow ~tag:None)
    app.pristine

(* Map a policy's tag grants into a new sthread's address space. *)
let map_tag_grants app (child : Process.t) (sc : Sc.t) =
  let cm = app.kernel.Kernel.costs in
  List.iter
    (fun { Sc.tag; grant } ->
      let prot = Prot.page_of_grant grant in
      Array.iteri
        (fun i frame ->
          Clock.charge app.kernel.Kernel.clock cm.Cost_model.pte_copy;
          Vm.map_frame child.Process.vm ~addr:(tag.Tag.base + (i * page_size)) ~frame ~prot
            ~tag:(Some tag.Tag.id))
        tag.Tag.frames)
    sc.Sc.mems

(* Map a policy's grants into a new sthread's address space and fd table
   (descriptors duplicated from the parent: sthread creation). *)
let map_grants parent (child : Process.t) (sc : Sc.t) =
  let app = parent.app in
  let cm = app.kernel.Kernel.costs in
  map_tag_grants app child sc;
  List.iter
    (fun { Sc.fd; perm } ->
      Clock.charge app.kernel.Kernel.clock cm.Cost_model.fd_dup;
      Fd_table.dup_into ~src:parent.proc.Process.fds ~dst:child.Process.fds ~fd ~perm)
    sc.Sc.fds

let run_compartment ctx fn arg =
  let cm = costs ctx in
  charge ctx (cm.Cost_model.context_switch + cm.Cost_model.tlb_flush);
  let tr = ktrace ctx in
  (* Span named by the compartment kind ("sthread", "cgate", ...), pid =
     the compartment's own process — what attributes trace time to the
     right box in the Chrome view. *)
  let span = Process.kind_to_string ctx.proc.Process.kind in
  if Trace.enabled tr then
    Trace.span_begin tr ~name:span ~pid:ctx.proc.Process.pid;
  let result =
    match fn ctx arg with
    | v ->
        ctx.proc.Process.status <- Process.Exited 0;
        Some v
    | exception Exit_sthread code ->
        ctx.proc.Process.status <- Process.Exited code;
        Some code
    | exception Privilege_violation msg when ctx.policy <> None ->
        (* A compartment under an installed profile exceeding its grants
           is the sandbox working as intended: die contained, like a
           protection fault, never up through the monitor. *)
        ctx.proc.Process.status <- Process.Faulted ("policy: " ^ msg);
        stat ctx "fault.compartment";
        trace_instant ctx "compartment.fault";
        None
    | exception e -> (
        match fault_reason e with
        | Some reason ->
            ctx.proc.Process.status <- Process.Faulted reason;
            stat ctx "fault.compartment";
            trace_instant ctx "compartment.fault";
            None
        | None -> raise e)
  in
  if Trace.enabled tr then
    Trace.span_end tr ~name:span ~pid:ctx.proc.Process.pid;
  charge ctx cm.Cost_model.context_switch;
  result

let sthread_create ?instr parent (sc : Sc.t) fn arg =
  if not parent.app.booted then invalid_arg "sthread_create: application not booted";
  Kernel.syscall_check parent.app.kernel parent.proc "sthread_create";
  stat parent "sthread_create";
  validate_sc parent sc;
  let uid, root, sid = resolve_identity parent sc in
  let limits = resolve_limits parent sc in
  let child =
    Kernel.new_process parent.app.kernel ~limits ~kind:Process.Sthread ~uid ~root ~sid ()
  in
  map_pristine parent.app child.Process.vm;
  map_grants parent child sc;
  let cctx = make_ctx parent.app child sc (Option.value instr ~default:parent.instr) in
  trace_instant cctx "sthread.create";
  let handle = { h_proc = child; h_result = None } in
  handle.h_result <- run_compartment cctx fn arg;
  Kernel.reap parent.app.kernel child;
  handle

let sthread_join parent handle =
  Kernel.syscall_check parent.app.kernel parent.proc "sthread_join";
  trace_instant parent "sthread.join";
  match (handle.h_result, handle.h_proc.Process.status) with
  | Some v, _ -> v
  | None, Process.Faulted _ -> -1
  | None, _ -> invalid_arg "sthread_join: sthread still running"

let handle_status handle = handle.h_proc.Process.status

let exit_sthread code = raise (Exit_sthread code)

(* ------------------------------------------------------------------ *)
(* fork(2) and pthreads, as comparison baselines                       *)

(* Full fork: the child inherits a copy of the entire address space —
   including any sensitive data the parent holds — and all descriptors.
   Used by the privilege-separation baseline (§5.2) and Figure 7. *)
let fork parent fn =
  Kernel.syscall_check parent.app.kernel parent.proc "fork";
  stat parent "fork";
  let p = parent.proc in
  let child =
    Kernel.new_process parent.app.kernel
      ~limits:(Rlimit.child_of p.Process.limits)
      ~kind:Process.Forked ~uid:p.Process.uid ~root:p.Process.root ~sid:p.Process.sid ()
  in
  let cm = costs parent in
  let entries = Pagetable.fold (fun vpn pte acc -> (vpn, pte) :: acc) (Vm.page_table p.Process.vm) [] in
  List.iter
    (fun (vpn, (pte : Pagetable.pte)) ->
      charge parent cm.Cost_model.pte_copy;
      let prot = pte.Pagetable.prot in
      let shared_prot =
        if prot.Prot.pw then Prot.page_cow
        else prot
      in
      (* Both sides go copy-on-write, as with a real fork; the parent's
         downgrade goes through Vm so its TLB entries are shot down. *)
      if prot.Prot.pw then
        Vm.set_page_prot p.Process.vm ~addr:(vpn * page_size) ~prot:Prot.page_cow;
      Vm.map_frame child.Process.vm ~addr:(vpn * page_size) ~frame:pte.Pagetable.frame
        ~prot:shared_prot ~tag:pte.Pagetable.tag)
    entries;
  List.iter
    (fun fd ->
      match Fd_table.find p.Process.fds fd with
      | Some e ->
          charge parent cm.Cost_model.fd_dup;
          Fd_table.dup_into ~src:p.Process.fds ~dst:child.Process.fds ~fd ~perm:e.Fd_table.perm
      | None -> ())
    (Fd_table.fds p.Process.fds);
  let cctx = make_ctx parent.app child parent.sc parent.instr in
  cctx.heap_ready <- parent.heap_ready;
  cctx.stack_ready <- parent.stack_ready;
  let handle = { h_proc = child; h_result = None } in
  handle.h_result <- run_compartment cctx (fun c _ -> fn c) 0;
  Kernel.reap parent.app.kernel child;
  handle

(* A pthread shares everything with its creator: no new address space, no
   new descriptors — just thread bookkeeping and two context switches. *)
let pthread parent fn =
  Kernel.syscall_check parent.app.kernel parent.proc "clone";
  stat parent "pthread_create";
  let cm = costs parent in
  charge parent (cm.Cost_model.thread_struct + cm.Cost_model.context_switch);
  let v = fn parent in
  charge parent (cm.Cost_model.syscall_trap + cm.Cost_model.context_switch);
  v

(* ------------------------------------------------------------------ *)
(* Tagged memory                                                       *)

let default_tag_pages = 16

let tag_new ?(name = "tag") ?(pages = default_tag_pages) ctx =
  let app = ctx.app in
  let cm = costs ctx in
  match Tag_cache.take app.tag_cache ~pages with
  | Some entry ->
      (* Userland reuse: no system call; scrub by prefilling the cached
         bookkeeping image (§4.1). *)
      stat ctx "tag_new.reuse";
      charge ctx cm.Cost_model.smalloc_book_init;
      let tag = Tag.register app.tags ~name ~base:entry.Tag_cache.base ~pages in
      tag.Tag.frames <- Array.of_list entry.Tag_cache.frames;
      Array.iteri
        (fun i frame ->
          Vm.map_frame ctx.proc.Process.vm ~addr:(tag.Tag.base + (i * page_size)) ~frame
            ~prot:Prot.page_rw ~tag:(Some tag.Tag.id))
        tag.Tag.frames;
      (* The cache's reference transfers to the registry. *)
      List.iter (fun f -> Physmem.decref app.kernel.Kernel.pm f) entry.Tag_cache.frames;
      List.iter (fun f -> Physmem.incref app.kernel.Kernel.pm f) entry.Tag_cache.frames;
      List.iter
        (fun (addr, w) -> Vm.write_u64 ctx.proc.Process.vm addr w)
        (Smalloc.prefill_image ~base:tag.Tag.base ~size:(pages * page_size));
      ctx.instr.Instr.on_alloc tag.Tag.base (pages * page_size)
        (Instr.Tagged (tag.Tag.id, tag.Tag.name));
      tag
  | None ->
      Kernel.syscall_check app.kernel ctx.proc "tag_new";
      stat ctx "tag_new.fresh";
      charge ctx (cm.Cost_model.mmap_op + cm.Cost_model.smalloc_book_init);
      let base = Layout.alloc_tag_range app.layout ~pages in
      let tag = Tag.register app.tags ~name ~base ~pages in
      Vm.map_fresh ctx.proc.Process.vm ~addr:base ~pages ~prot:Prot.page_rw ~tag:(Some tag.Tag.id);
      let frames =
        Array.init pages (fun i ->
            match Pagetable.find (Vm.page_table ctx.proc.Process.vm) ~vpn:((base / page_size) + i) with
            | Some pte -> pte.Pagetable.frame
            | None -> assert false)
      in
      tag.Tag.frames <- frames;
      Array.iter (fun f -> Physmem.incref app.kernel.Kernel.pm f) frames;
      Smalloc.init ctx.proc.Process.vm ~base ~size:(pages * page_size);
      ctx.instr.Instr.on_alloc base (pages * page_size) (Instr.Tagged (tag.Tag.id, tag.Tag.name));
      tag

let tag_delete ctx (tag : Tag.t) =
  if not tag.Tag.live then invalid_arg "tag_delete: tag already deleted";
  (match priv_for_tag ctx.proc tag with
  | Some Prot.RW -> ()
  | _ -> violation "pid %d deletes tag %s without read-write access" (pid ctx) tag.Tag.name);
  stat ctx "tag_delete";
  ctx.instr.Instr.on_free tag.Tag.base;
  (* Cache the range and frames for reuse before releasing our references. *)
  Tag_cache.put ctx.app.tag_cache
    { Tag_cache.base = tag.Tag.base; pages = tag.Tag.pages; frames = Array.to_list tag.Tag.frames };
  (* Deleting a tag is a *global* revocation: the range must vanish from
     every address space that maps it — sthreads holding a grant, not
     just the deleter — and each of those spaces' cached translations
     must be shot down, or a compartment could keep reading a tag that
     no longer exists (and whose frames the cache will scrub and hand to
     someone else).  Each remote unmap releases the reference that
     address space took when the grant was shared in. *)
  let caller_pid = pid ctx in
  Kernel.iter_processes ctx.app.kernel (fun p ->
      let vm = p.Process.vm in
      if Pagetable.mem (Vm.page_table vm) ~vpn:(tag.Tag.base / page_size) then begin
        Vm.unmap_range vm ~addr:tag.Tag.base ~pages:tag.Tag.pages;
        if p.Process.pid <> caller_pid then stat ctx "tlb.remote_shootdown"
      end);
  Array.iter (fun f -> Physmem.decref ctx.app.kernel.Kernel.pm f) tag.Tag.frames;
  Tag.delete ctx.app.tags tag;
  (* The local revocation is complete and every local invariant holds;
     now let the shard fabric (if armed) extend it to the other kernels
     before the delete returns to the caller. *)
  match ctx.app.on_tag_delete with Some f -> f tag | None -> ()

let set_on_tag_delete app f = app.on_tag_delete <- f

let smalloc ctx size (tag : Tag.t) =
  charge ctx (costs ctx).Cost_model.malloc_op;
  stat ctx "smalloc";
  let ptr = Smalloc.alloc ctx.proc.Process.vm ~base:tag.Tag.base size in
  ctx.instr.Instr.on_alloc ptr size (Instr.Tagged (tag.Tag.id, tag.Tag.name));
  ptr

(* The private, untagged per-sthread heap (mapped lazily so that unused
   compartments stay cheap, as real kernels do with demand paging). *)
let ensure_heap ctx =
  if not ctx.heap_ready then begin
    Vm.map_fresh ctx.proc.Process.vm ~addr:Layout.heap_base ~pages:Layout.heap_pages
      ~prot:Prot.page_rw ~tag:None;
    Smalloc.init ctx.proc.Process.vm ~base:Layout.heap_base
      ~size:(Layout.heap_pages * page_size);
    ctx.heap_ready <- true
  end

let malloc ctx size =
  match ctx.smalloc_tag with
  | Some tag -> smalloc ctx size tag
  | None ->
      charge ctx (costs ctx).Cost_model.malloc_op;
      stat ctx "malloc";
      ensure_heap ctx;
      let ptr = Smalloc.alloc ctx.proc.Process.vm ~base:Layout.heap_base size in
      ctx.instr.Instr.on_alloc ptr size Instr.Heap;
      ptr

(* The allocator rejects wild/corrupted pointers with [Invalid_argument];
   inside a compartment that must become a contained abort — a hostile
   peer with write access to the same tag can manufacture the corruption,
   and the victim detecting it must not take the whole application down. *)
let checked_free ctx ~base ptr =
  try Smalloc.free ctx.proc.Process.vm ~base ptr
  with Invalid_argument msg ->
    stat ctx "fault.heap_corruption";
    raise (Heap_corruption msg)

let sfree ctx ptr =
  charge ctx (costs ctx).Cost_model.malloc_op;
  ctx.instr.Instr.on_free ptr;
  match Tag.find_by_addr ctx.app.tags ptr with
  | Some tag -> checked_free ctx ~base:tag.Tag.base ptr
  | None ->
      if ptr >= Layout.heap_base && ptr < Layout.heap_base + (Layout.heap_pages * page_size)
      then checked_free ctx ~base:Layout.heap_base ptr
      else invalid_arg (Printf.sprintf "sfree: 0x%x is not in a tag or the heap" ptr)

let free = sfree

let smalloc_on ctx tag =
  (* Deliberately mirrors the paper's single-flag limitation (§4.1): not
     reentrant; callers save and restore around nested use. *)
  ctx.smalloc_tag <- Some tag

let smalloc_off ctx = ctx.smalloc_tag <- None
let smalloc_state ctx = ctx.smalloc_tag

let boundary_tag ctx ~id =
  let b = find_boundary ctx.app id in
  match b.b_tag with
  | Some t -> t
  | None ->
      let tag = Tag.register ctx.app.tags ~name:("boundary:" ^ b.b_name) ~base:b.b_base ~pages:b.b_pages in
      let vm = (main_ctx ctx.app).proc.Process.vm in
      let frames =
        Array.init b.b_pages (fun i ->
            let addr = b.b_base + (i * page_size) in
            match Pagetable.find (Vm.page_table vm) ~vpn:(addr / page_size) with
            | Some pte ->
                (* Retag through Vm: a cached translation carrying the old
                   (untagged) identity must not survive the boundary's
                   promotion to tagged memory. *)
                Vm.set_page_tag vm ~addr ~tag:(Some tag.Tag.id);
                pte.Pagetable.frame
            | None -> assert false)
      in
      tag.Tag.frames <- frames;
      Array.iter (fun f -> Physmem.incref ctx.app.kernel.Kernel.pm f) frames;
      b.b_tag <- Some tag;
      tag

(* ------------------------------------------------------------------ *)
(* Callgates                                                           *)

let sc_cgate_add ?(recycled = false) creator (sc : Sc.t) ~name ~entry ~cgsc ~trusted =
  Kernel.syscall_check creator.app.kernel creator.proc "cgate_add";
  stat creator "cgate_add";
  (* A callgate's permissions must be a subset of its creator's (§3.3). *)
  validate_sc creator cgsc;
  let gid = creator.app.next_gate in
  creator.app.next_gate <- gid + 1;
  let resolved_fds =
    List.map
      (fun { Sc.fd; perm } ->
        match Fd_table.find creator.proc.Process.fds fd with
        | Some e -> (fd, e.Fd_table.target, perm)
        | None -> violation "cgate_add: creator does not hold fd %d" fd)
      cgsc.Sc.fds
  in
  let g =
    {
      g_id = gid;
      g_name = name;
      g_entry = entry;
      g_sc = cgsc;
      g_trusted = trusted;
      g_minter = pid creator;
      g_uid = Option.value cgsc.Sc.uid ~default:creator.proc.Process.uid;
      g_root = Option.value cgsc.Sc.root ~default:creator.proc.Process.root;
      g_sid = Option.value cgsc.Sc.sid ~default:creator.proc.Process.sid;
      g_recycled = recycled;
      g_fds = resolved_fds;
    }
  in
  Hashtbl.add creator.app.gates gid g;
  Sc.gate_grant sc gid;
  gid

let gate_of ctx gid =
  match Hashtbl.find_opt ctx.app.gates gid with
  | Some g -> g
  | None -> violation "cgate: no such callgate %d" gid

(* Build the sthread that will execute one callgate invocation.  It carries
   the creator's identity and the permissions fixed at creation time, plus
   the caller-supplied extra permissions for this invocation. *)
let build_gate_proc caller (g : gate) kind =
  (* Gate limits come from the gate's own sc (validated against the
     creator at creation); a silent sc leaves the gate unlimited, since
     gates run with creator — typically monitor — privileges. *)
  let limits =
    match g.g_sc.Sc.limits with
    | Some l -> Rlimit.child_of l
    | None -> Rlimit.unlimited ()
  in
  let child =
    Kernel.new_process caller.app.kernel ~limits ~kind ~uid:g.g_uid ~root:g.g_root
      ~sid:g.g_sid ()
  in
  map_pristine caller.app child.Process.vm;
  map_tag_grants caller.app child g.g_sc;
  (* Descriptor grants were resolved against the creator at creation time
     (kernel-held): the caller needs no access to them. *)
  let cm = caller.app.kernel.Kernel.costs in
  List.iter
    (fun (fd, target, perm) ->
      Clock.charge caller.app.kernel.Kernel.clock cm.Cost_model.fd_dup;
      Fd_table.install child.Process.fds ~fd target perm)
    g.g_fds;
  make_ctx caller.app child g.g_sc caller.instr

let map_extra caller (gctx : ctx) (perms : Sc.t) =
  (* Per-invocation permissions (typically the tag holding the argument). *)
  let mapped = ref [] in
  List.iter
    (fun { Sc.tag; grant } ->
      if priv_for_tag gctx.proc tag = None then begin
        let prot = Prot.page_of_grant grant in
        Array.iteri
          (fun i frame ->
            Clock.charge caller.app.kernel.Kernel.clock (costs caller).Cost_model.pte_copy;
            Vm.map_frame gctx.proc.Process.vm ~addr:(tag.Tag.base + (i * page_size)) ~frame
              ~prot ~tag:(Some tag.Tag.id))
          tag.Tag.frames;
        mapped := tag :: !mapped
      end)
    perms.Sc.mems;
  List.iter
    (fun { Sc.fd; perm } ->
      if Fd_table.find gctx.proc.Process.fds fd = None then
        Fd_table.dup_into ~src:caller.proc.Process.fds ~dst:gctx.proc.Process.fds ~fd ~perm)
    perms.Sc.fds;
  !mapped

let cgate ?deadline_ns caller gid ~perms ~arg =
  Kernel.syscall_check caller.app.kernel caller.proc "cgate";
  stat caller "cgate";
  let g = gate_of caller gid in
  if not (List.mem gid caller.sc.Sc.gates || g.g_minter = pid caller) then
    violation "pid %d invokes callgate %s without permission" (pid caller) g.g_name;
  check_policy_gate caller g.g_name;
  let cm = costs caller in
  charge caller cm.Cost_model.cgate_validate;
  (* The extra permissions must be a subset of the caller's own (§4.1). *)
  validate_sc caller perms;
  (* Callgate span, attributed to the invoking pid; the gate body itself
     shows up nested (the non-recycled path runs through
     [run_compartment], which opens a "cgate" span on the gate's pid).
     The name is dynamic, so build it only when armed. *)
  let tr = ktrace caller in
  let span = if Trace.enabled tr then "cgate:" ^ g.g_name else "" in
  if Trace.enabled tr then Trace.span_begin tr ~name:span ~pid:(pid caller);
  let finish result =
    if Trace.enabled tr then Trace.span_end tr ~name:span ~pid:(pid caller);
    result
  in
  let started_ns = Clock.now (clock caller) in
  (* Fault site "cgate.call": [Delay ns] models a livelocked gate — the
     invocation burns [ns] of simulated time before the entry runs, so a
     caller-supplied [deadline_ns] fires (and a recycled member is
     discarded as hung); any other kind crashes the call contained, in
     the caller, before any gate process is built. *)
  (match Fault_plan.roll_opt caller.app.kernel.Kernel.faults ~site:"cgate.call" with
  | Some (Fault_plan.Delay ns) ->
      stat caller "cgate.stalled";
      charge caller ns
  | Some k ->
      stat caller "fault.cgate";
      if Trace.enabled tr then Trace.span_end tr ~name:span ~pid:(pid caller);
      Fault_plan.fail ~site:"cgate.call" k
  | None -> ());
  (* A gate that overruns its deadline is treated as hung: the caller gets
     -1 after the gate's work has been charged to the clock (the timeout
     fires only once that much simulated time has passed). *)
  let apply_deadline result =
    match deadline_ns with
    | Some d when Clock.now (clock caller) - started_ns > d ->
        stat caller "cgate.deadline_exceeded";
        -1
    | _ -> result
  in
  if g.g_recycled then begin
    stat caller "cgate.recycled";
    (* Reuse the long-lived sthread for this gate name if one exists —
       remapping its grants to the current gate instance (new connection
       descriptors, fresh per-connection tags) without paying sthread
       creation.  Its private heap and stack survive, which is exactly the
       isolation-for-performance trade §3.3 warns about. *)
    let remap (pooled : pooled) =
      let gctx = pooled.p_ctx in
      List.iter
        (fun { Sc.tag; _ } ->
          if Pagetable.mem (Vm.page_table gctx.proc.Process.vm) ~vpn:(tag.Tag.base / page_size)
          then Vm.unmap_range gctx.proc.Process.vm ~addr:tag.Tag.base ~pages:tag.Tag.pages)
        pooled.p_sc.Sc.mems;
      List.iter (fun { Sc.fd; _ } -> Fd_table.close gctx.proc.Process.fds fd) pooled.p_sc.Sc.fds;
      map_tag_grants caller.app gctx.proc g.g_sc;
      List.iter
        (fun (fd, target, perm) ->
          Fd_table.close gctx.proc.Process.fds fd;
          Fd_table.install gctx.proc.Process.fds ~fd target perm)
        g.g_fds;
      gctx.proc.Process.uid <- g.g_uid;
      gctx.proc.Process.root <- g.g_root;
      gctx.proc.Process.sid <- g.g_sid;
      pooled.p_sc <- g.g_sc;
      gctx
    in
    let pooled =
      match Hashtbl.find_opt caller.app.recycled_pool g.g_name with
      | Some p when Process.is_alive p.p_ctx.proc ->
          if p.p_sc != g.g_sc then ignore (remap p);
          p
      | _ ->
          let c = build_gate_proc caller g Process.Recycled in
          let p = { p_ctx = c; p_sc = g.g_sc } in
          Hashtbl.replace caller.app.recycled_pool g.g_name p;
          p
    in
    let gctx = pooled.p_ctx in
    (* Wake the long-lived sthread through a futex, run, wait for the
       completion futex (§4.1). *)
    charge caller (2 * cm.Cost_model.futex_op);
    charge caller (2 * cm.Cost_model.context_switch);
    gctx.caller_pid <- Some (pid caller);
    let extra = map_extra caller gctx perms in
    let cleanup_extra () =
      if Process.is_alive gctx.proc then
        List.iter
          (fun (tag : Tag.t) ->
            Vm.unmap_range gctx.proc.Process.vm ~addr:tag.Tag.base ~pages:tag.Tag.pages)
          extra
    in
    (* One bad invocation must not poison the pool: the faulted (or hung)
       member is reaped and a fresh one is built eagerly, so the next
       caller finds a healthy sthread instead of paying a cold start. *)
    let discard_and_respawn reason =
      gctx.proc.Process.status <- Process.Faulted reason;
      if Kernel.find_process caller.app.kernel (gctx.proc.Process.pid) <> None then
        Kernel.reap caller.app.kernel gctx.proc;
      let fresh = build_gate_proc caller g Process.Recycled in
      Hashtbl.replace caller.app.recycled_pool g.g_name { p_ctx = fresh; p_sc = g.g_sc };
      stat caller "cgate.recycled.respawn"
    in
    let result =
      match g.g_entry gctx ~trusted:g.g_trusted ~arg with
      | v -> v
      | exception Exit_sthread code -> code
      | exception Privilege_violation msg when gctx.policy <> None ->
          (* Same containment as [run_compartment]: a profiled pooled
             member exceeding its profile is discarded, not propagated. *)
          stat caller "fault.cgate";
          discard_and_respawn ("policy: " ^ msg);
          -1
      | exception e -> (
          match fault_reason e with
          | Some reason ->
              stat caller "fault.cgate";
              discard_and_respawn reason;
              -1
          | None -> raise e)
    in
    cleanup_extra ();
    let final = apply_deadline result in
    if final = -1 && result <> -1 then
      (* Deadline overrun with the member still alive: treat it as hung. *)
      discard_and_respawn "callgate deadline exceeded";
    finish final
  end
  else begin
    let gctx = build_gate_proc caller g Process.Cgate in
    gctx.caller_pid <- Some (pid caller);
    ignore (map_extra caller gctx perms);
    let result =
      match run_compartment gctx (fun c a -> g.g_entry c ~trusted:g.g_trusted ~arg:a) arg with
      | Some v -> v
      | None ->
          stat caller "fault.cgate";
          -1
    in
    Kernel.reap caller.app.kernel gctx.proc;
    finish (apply_deadline result)
  end

let gate_name ctx gid = (gate_of ctx gid).g_name

(* ------------------------------------------------------------------ *)
(* Identity changes (used by authentication callgates, §5.2)           *)

let set_identity ctx ~target_pid ?uid ?root () =
  Kernel.syscall_check ctx.app.kernel ctx.proc "setuid";
  if getuid ctx <> 0 then violation "set_identity: pid %d is not root" (pid ctx);
  match Kernel.find_process ctx.app.kernel target_pid with
  | None -> violation "set_identity: no process %d" target_pid
  | Some p ->
      (match uid with Some u -> p.Process.uid <- u | None -> ());
      (match root with Some r -> p.Process.root <- r | None -> ())

(* ------------------------------------------------------------------ *)
(* Checked, instrumented data access                                   *)

let on_access ctx addr len kind =
  if not (Instr.is_null ctx.instr) then ctx.instr.Instr.on_access addr len kind;
  match ctx.policy with
  | None -> ()
  | Some p -> (
      match p.pol_mem ~addr ~len ~write:(kind = Instr.Write) with
      | None -> ()
      | Some msg -> policy_deny ctx msg)

let read_u8 ctx addr =
  on_access ctx addr 1 Instr.Read;
  Vm.read_u8 ctx.proc.Process.vm addr

let write_u8 ctx addr v =
  on_access ctx addr 1 Instr.Write;
  Vm.write_u8 ctx.proc.Process.vm addr v

let read_u16 ctx addr =
  on_access ctx addr 2 Instr.Read;
  Vm.read_u16 ctx.proc.Process.vm addr

let write_u16 ctx addr v =
  on_access ctx addr 2 Instr.Write;
  Vm.write_u16 ctx.proc.Process.vm addr v

let read_u32 ctx addr =
  on_access ctx addr 4 Instr.Read;
  Vm.read_u32 ctx.proc.Process.vm addr

let write_u32 ctx addr v =
  on_access ctx addr 4 Instr.Write;
  Vm.write_u32 ctx.proc.Process.vm addr v

let read_u64 ctx addr =
  on_access ctx addr 8 Instr.Read;
  Vm.read_u64 ctx.proc.Process.vm addr

let write_u64 ctx addr v =
  on_access ctx addr 8 Instr.Write;
  Vm.write_u64 ctx.proc.Process.vm addr v

let read_bytes ctx addr len =
  on_access ctx addr len Instr.Read;
  Vm.read_bytes ctx.proc.Process.vm addr len

let write_bytes ctx addr b =
  on_access ctx addr (Bytes.length b) Instr.Write;
  Vm.write_bytes ctx.proc.Process.vm addr b

let read_string ctx addr len = Bytes.to_string (read_bytes ctx addr len)
let write_string ctx addr s = write_bytes ctx addr (Bytes.of_string s)

let can_read ctx ~addr ~len = Vm.can_read ctx.proc.Process.vm ~addr ~len
let can_write ctx ~addr ~len = Vm.can_write ctx.proc.Process.vm ~addr ~len

(* Live TLB counters for the calling compartment's address space.
   (Kernel.reap folds these into the global stats when the process dies;
   this accessor reads them while it is still running.) *)
type tlb_stats = {
  tlb_hits : int;
  tlb_misses : int;
  tlb_shootdowns : int;
}

let tlb_stats ctx =
  let vm = ctx.proc.Process.vm in
  {
    tlb_hits = Vm.tlb_hits vm;
    tlb_misses = Vm.tlb_misses vm;
    tlb_shootdowns = Vm.tlb_shootdowns vm;
  }

(* ------------------------------------------------------------------ *)
(* Function and stack-frame tracking (Crowbar's "frame pointers")      *)

let in_function ctx ~name ?(file = "?") ?(line = 0) f =
  Instr.scoped ctx.instr ~name ~file ~line f

let ensure_stack ctx =
  if not ctx.stack_ready then begin
    Vm.map_fresh ctx.proc.Process.vm ~addr:Layout.stack_base ~pages:Layout.stack_pages
      ~prot:Prot.page_rw ~tag:None;
    ctx.stack_ready <- true
  end

(* A stack frame with [locals] bytes of named local storage; the body gets
   the frame base address.  Registered with the instrumentation so cb-log
   can attribute accesses to the owning function's frame (§4.2). *)
let stack_frame ctx ~name ~locals f =
  ensure_stack ctx;
  let aligned = (locals + 7) land lnot 7 in
  let sp = ctx.stack_sp - aligned in
  if sp < Layout.stack_base then invalid_arg "stack_frame: simulated stack overflow";
  ctx.stack_sp <- sp;
  ctx.instr.Instr.on_alloc sp aligned (Instr.Stack name);
  let restore () =
    ctx.instr.Instr.on_free sp;
    ctx.stack_sp <- sp + aligned
  in
  match f sp with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(* ------------------------------------------------------------------ *)
(* File descriptors and files                                          *)

exception Fd_error of string

let fd_entry ctx fd =
  match Fd_table.find ctx.proc.Process.fds fd with
  | Some e -> e
  | None -> raise (Fd_error (Printf.sprintf "pid %d: bad fd %d" (pid ctx) fd))

let open_file ctx ?(write = false) path =
  Kernel.syscall_check ctx.app.kernel ctx.proc "open";
  let k = ctx.app.kernel in
  let p = ctx.proc in
  let check =
    if write then
      Vfs.append_file k.Kernel.vfs ~root:p.Process.root ~uid:p.Process.uid path ""
    else
      Result.map (fun (_ : string) -> ())
        (Vfs.read_file k.Kernel.vfs ~root:p.Process.root ~uid:p.Process.uid path)
  in
  match check with
  | Error e -> Error e
  | Ok () ->
      let eff = Filename.concat p.Process.root path in
      let target = Fd_table.File { Fd_table.fh_path = eff; fh_pos = 0 } in
      let perm = if write then Fd_table.perm_rw else Fd_table.perm_r in
      Ok (Fd_table.add p.Process.fds target perm)

let add_endpoint ctx ep perm = Fd_table.add ctx.proc.Process.fds (Fd_table.Endpoint ep) perm

(* Block before the trap, not after: a descriptor with a readiness wait
   (a reactor-attached channel) parks here until a read would progress,
   so an idle connection charges zero syscall fuel and zero trap cost
   while it waits.  Endpoints without one (or whose permissions will make
   the read fail anyway) fall through to the historical charge-then-block
   order byte-for-byte. *)
let fd_pre_wait ctx fd =
  match Fd_table.find ctx.proc.Process.fds fd with
  | Some
      {
        Fd_table.target = Fd_table.Endpoint { Fd_table.ep_wait = Some w; _ };
        perm;
        closed = _;
      }
    when perm.Fd_table.fr ->
      w ()
  | _ -> ()

let fd_read ctx fd n =
  fd_pre_wait ctx fd;
  Kernel.syscall_check ctx.app.kernel ctx.proc "read";
  check_policy_fd ctx fd ~write:false;
  let e = fd_entry ctx fd in
  if not e.Fd_table.perm.Fd_table.fr then
    raise (Fd_error (Printf.sprintf "pid %d: fd %d not readable" (pid ctx) fd));
  match e.Fd_table.target with
  | Fd_table.Null -> Bytes.create 0
  | Fd_table.Endpoint ep ->
      let b = ep.Fd_table.ep_read n in
      charge ctx ((costs ctx).Cost_model.net_per_byte * Bytes.length b);
      b
  | Fd_table.File fh -> (
      match Vfs.read_file ctx.app.kernel.Kernel.vfs ~root:"/" ~uid:0 fh.Fd_table.fh_path with
      | Error err -> raise (Fd_error (Vfs.error_to_string err))
      | Ok data ->
          let avail = max 0 (String.length data - fh.Fd_table.fh_pos) in
          let len = min n avail in
          let b = Bytes.of_string (String.sub data fh.Fd_table.fh_pos len) in
          fh.Fd_table.fh_pos <- fh.Fd_table.fh_pos + len;
          charge ctx ((costs ctx).Cost_model.disk_per_byte * len);
          b)

let fd_write ctx fd b =
  Kernel.syscall_check ctx.app.kernel ctx.proc "write";
  check_policy_fd ctx fd ~write:true;
  let e = fd_entry ctx fd in
  if not e.Fd_table.perm.Fd_table.fw then
    raise (Fd_error (Printf.sprintf "pid %d: fd %d not writable" (pid ctx) fd));
  match e.Fd_table.target with
  | Fd_table.Null -> ()
  | Fd_table.Endpoint ep ->
      charge ctx ((costs ctx).Cost_model.net_per_byte * Bytes.length b);
      ep.Fd_table.ep_write b
  | Fd_table.File fh -> (
      let vfs = ctx.app.kernel.Kernel.vfs in
      let data =
        match Vfs.read_file vfs ~root:"/" ~uid:0 fh.Fd_table.fh_path with
        | Ok d -> d
        | Error _ -> ""
      in
      let pos = fh.Fd_table.fh_pos in
      let data =
        if pos >= String.length data then data ^ Bytes.to_string b
        else
          String.sub data 0 pos
          ^ Bytes.to_string b
          ^
          let tail = pos + Bytes.length b in
          if tail < String.length data then String.sub data tail (String.length data - tail)
          else ""
      in
      charge ctx ((costs ctx).Cost_model.disk_per_byte * Bytes.length b);
      fh.Fd_table.fh_pos <- pos + Bytes.length b;
      match Vfs.write_file vfs ~root:"/" ~uid:0 fh.Fd_table.fh_path data with
      | Ok () -> ()
      | Error err -> raise (Fd_error (Vfs.error_to_string err)))

(* Zero-intermediate-step I/O: the kernel moves bytes between the
   descriptor and the caller's pages directly.  The memory side goes
   through the checked Vm bulk path — one fault roll, one translation per
   page (warm pages hit the TLB), atomic multi-page writes — so a
   mid-transfer protection fault never leaves a torn buffer. *)
let fd_read_into ctx fd ~addr n =
  let b = fd_read ctx fd n in
  let len = Bytes.length b in
  if len > 0 then begin
    on_access ctx addr len Instr.Write;
    Vm.write_bytes ctx.proc.Process.vm addr b
  end;
  len

let fd_write_from ctx fd ~addr ~len =
  on_access ctx addr len Instr.Read;
  let b = Vm.read_bytes ctx.proc.Process.vm addr len in
  fd_write ctx fd b

(* Vectored descriptor I/O: a whole burst of (addr, len) runs through ONE
   kernel entry — one trap, one fuel unit, one trace instant, with each
   run past the first priced at [Cost_model.syscall_batch_op].  On
   endpoints with a native vectored path (channels) the bytes move
   directly between the channel buffer and the caller's pages; otherwise
   the engine scatters/gathers over the byte-level ops with the same
   no-partial-write semantics. *)
let iov_check name iovs =
  Array.iter
    (fun (_, len) ->
      if len < 0 then
        raise (Fd_error (Printf.sprintf "%s: negative iov length" name)))
    iovs;
  Array.fold_left (fun a (_, len) -> a + len) 0 iovs

let fd_readv ctx fd iovs =
  let want = iov_check "readv" iovs in
  let ops = max 1 (Array.length iovs) in
  fd_pre_wait ctx fd;
  Kernel.syscall_check_batch ctx.app.kernel ctx.proc "read" ~ops;
  check_policy_fd ctx fd ~write:false;
  let e = fd_entry ctx fd in
  if not e.Fd_table.perm.Fd_table.fr then
    raise (Fd_error (Printf.sprintf "pid %d: fd %d not readable" (pid ctx) fd));
  if want = 0 then 0
  else
    match e.Fd_table.target with
    | Fd_table.Null -> 0
    | Fd_table.File _ ->
        raise (Fd_error (Printf.sprintf "pid %d: fd %d: readv needs a stream" (pid ctx) fd))
    | Fd_table.Endpoint ep ->
        Array.iter
          (fun (addr, len) -> if len > 0 then on_access ctx addr len Instr.Write)
          iovs;
        let total =
          match ep.Fd_table.ep_readv with
          | Some rv -> rv ctx.proc.Process.vm iovs
          | None ->
              (* Scatter fallback: fill runs in order until the stream
                 runs short.  Each chunk lands atomically through the
                 checked bulk path, like [fd_read_into]. *)
              let filled = ref 0 in
              (try
                 Array.iter
                   (fun (addr, len) ->
                     if len > 0 then begin
                       let b = ep.Fd_table.ep_read len in
                       let got = Bytes.length b in
                       if got > 0 then begin
                         Vm.write_bytes ctx.proc.Process.vm addr b;
                         filled := !filled + got
                       end;
                       if got < len then raise Exit
                     end)
                   iovs
               with Exit -> ());
              !filled
        in
        charge ctx ((costs ctx).Cost_model.net_per_byte * total);
        total

let fd_writev ctx fd iovs =
  let want = iov_check "writev" iovs in
  let ops = max 1 (Array.length iovs) in
  Kernel.syscall_check_batch ctx.app.kernel ctx.proc "write" ~ops;
  check_policy_fd ctx fd ~write:true;
  let e = fd_entry ctx fd in
  if not e.Fd_table.perm.Fd_table.fw then
    raise (Fd_error (Printf.sprintf "pid %d: fd %d not writable" (pid ctx) fd));
  if want = 0 then 0
  else
    match e.Fd_table.target with
    | Fd_table.Null -> want
    | Fd_table.File _ ->
        raise (Fd_error (Printf.sprintf "pid %d: fd %d: writev needs a stream" (pid ctx) fd))
    | Fd_table.Endpoint ep ->
        Array.iter
          (fun (addr, len) -> if len > 0 then on_access ctx addr len Instr.Read)
          iovs;
        charge ctx ((costs ctx).Cost_model.net_per_byte * want);
        (match ep.Fd_table.ep_writev with
        | Some wv -> ignore (wv ctx.proc.Process.vm iovs)
        | None ->
            (* Gather fallback: read every run out of the address space
               BEFORE any byte is sent, so a protection fault mid-vector
               delivers nothing — same atomicity as the native path. *)
            let vm = ctx.proc.Process.vm in
            let runs = Array.map (fun (addr, len) -> Vm.read_bytes vm addr len) iovs in
            Array.iter
              (fun b -> if Bytes.length b > 0 then ep.Fd_table.ep_write b)
              runs);
        want

let fd_close ctx fd = Fd_table.close ctx.proc.Process.fds fd

(* Convenience path-level file access under the caller's identity. *)
let vfs_read ctx path =
  Kernel.syscall_check ctx.app.kernel ctx.proc "open";
  let n = String.length path in
  ignore n;
  Vfs.read_file ctx.app.kernel.Kernel.vfs ~root:ctx.proc.Process.root ~uid:ctx.proc.Process.uid path

let vfs_write ctx path data =
  Kernel.syscall_check ctx.app.kernel ctx.proc "open";
  Vfs.write_file ctx.app.kernel.Kernel.vfs ~root:ctx.proc.Process.root ~uid:ctx.proc.Process.uid path data

let vfs_readdir ctx path =
  Kernel.syscall_check ctx.app.kernel ctx.proc "getdents";
  Vfs.readdir ctx.app.kernel.Kernel.vfs ~root:ctx.proc.Process.root ~uid:ctx.proc.Process.uid path

let set_instr ctx instr = ctx.instr <- instr
let instr_of ctx = ctx.instr
let set_policy ctx p = ctx.policy <- p
let policy_of ctx = ctx.policy
let caller_pid ctx = ctx.caller_pid

(* Length-value blocks: the idiom for passing variable-size arguments and
   results through tagged memory between compartments. *)
let write_lv ctx addr s =
  write_u32 ctx addr (String.length s);
  write_string ctx (addr + 4) s

let read_lv ctx addr =
  let n = read_u32 ctx addr in
  read_string ctx (addr + 4) n

(* Charge application-level work to the simulated clock (e.g. the fixed
   per-request cost of the HTTP application logic). *)
let charge_app ctx ns = charge ctx ns

(* The kernel's tag-to-segment map (what an attacker who knows the layout
   would target; also used by Crowbar attribution). *)
let live_tags app = Tag.live_tags app.tags
let set_tag_cache app enabled = Tag_cache.set_enabled app.tag_cache enabled
let tag_cache_hits app = Tag_cache.hits app.tag_cache
let tag_cache_misses app = Tag_cache.misses app.tag_cache
let find_tag_by_addr app addr = Tag.find_by_addr app.tags addr

(* The application's whole counter surface in one registry: everything
   the kernel sees (stats, TLB, fault plan) plus the tag-cache counters
   only the engine can reach. *)
let register_metrics m app =
  Kernel.register_metrics m app.kernel;
  Metrics.register m ~name:"tag_cache" ~kind:Metrics.Counter (fun () ->
      [
        ("tag_cache.hits", Tag_cache.hits app.tag_cache);
        ("tag_cache.misses", Tag_cache.misses app.tag_cache);
        ("tag_cache.scrubbed_pages", Tag_cache.scrubbed_pages app.tag_cache);
      ]);
  Metrics.register m ~name:"engine" (fun () ->
      [ ("tags.live", List.length (Tag.live_tags app.tags)) ]);
  Metrics.register m ~name:"pool" ~kind:Metrics.Counter (fun () ->
      [
        ("pool.freezes", app.pool_freezes);
        ("pool.stamps", app.pool_stamps);
        ("pool.hits", app.pool_hits);
      ]);
  Metrics.register m ~name:"pool.gauges" (fun () ->
      [
        ("pool.images", List.length app.frozen_images);
        ( "pool.frozen_frames",
          List.fold_left (fun a (_, ps) -> a + List.length ps) 0 app.frozen_images );
      ])
