(** The Wedge programming interface (Table 1 of the paper).

    This facade re-exports the engine's operations under the paper's names.
    A typical partitioned application:

    {[
      let kernel = Wedge_kernel.Kernel.create () in
      let app = Wedge.create_app kernel in
      let main = Wedge.main_ctx app in
      Wedge.boot app;                          (* pristine snapshot, pre-main *)
      let secret = Wedge.tag_new ~name:"secret" main in
      let key = Wedge.smalloc main 32 secret in
      Wedge.write_string main key "hunter2...";
      (* a callgate that may read the secret *)
      let cgsc = Wedge.sc_create () in
      Wedge.sc_mem_add cgsc secret Wedge_kernel.Prot.R;
      let worker_sc = Wedge.sc_create () in
      let gate =
        Wedge.sc_cgate_add main worker_sc ~name:"use_secret"
          ~entry:(fun gctx ~trusted ~arg:_ ->
            String.length (Wedge.read_string gctx trusted 32))
          ~cgsc ~trusted:key
      in
      ignore gate;
      (* a default-deny worker: cannot read [key], can invoke the gate *)
      let h =
        Wedge.sthread_create main worker_sc
          (fun ctx _ -> Wedge.cgate ctx gate ~perms:(Wedge.sc_create ()) ~arg:0)
          0
      in
      ignore (Wedge.sthread_join main h)
    ]} *)

type app = Engine.app
type ctx = Engine.ctx
type handle = Engine.handle
type gate_id = Engine.gate_id

exception Privilege_violation of string
(** A policy asked for more privilege than its grantor holds, or a
    compartment invoked a callgate it was not granted. *)

exception Exit_sthread of int

exception Heap_corruption of string
(** {!sfree}/{!free} detected a wild or corrupted chunk (the allocator's
    pointer validation failed).  Contained like SIGABRT: the compartment
    dies, the application survives — a hostile peer with write access to
    the same tag must not be able to crash the whole program by
    corrupting chunk headers. *)

(** {1 Application lifecycle} *)

val create_app : ?image_pages:int -> Wedge_kernel.Kernel.t -> app
(** Create the application's original process.  [image_pages] is the size
    of the program image (globals + shared libraries + loader state) that
    the pristine snapshot will cover — minimal-size processes use the
    default (300 pages); the Apache stand-in passes a realistically large
    image. *)

val main_ctx : app -> ctx
val boot : app -> unit
(** Take the pristine pre-[main] snapshot (§4.1).  Must be called before
    any sthread is created; [BOUNDARY_VAR] declarations must precede it. *)

val booted : app -> bool
val kernel : app -> Wedge_kernel.Kernel.t
val live_tags : app -> Wedge_mem.Tag.t list
val set_tag_cache : app -> bool -> unit
(** Enable/disable the userland tag free-list cache (ablation E7). *)

val tag_cache_hits : app -> int
val tag_cache_misses : app -> int
val find_tag_by_addr : app -> int -> Wedge_mem.Tag.t option
val app_of : ctx -> app
val pid : ctx -> int
val getuid : ctx -> int
val proc : ctx -> Wedge_kernel.Process.t

(** {1 Sthread-related calls} *)

val sthread_create :
  ?instr:Wedge_sim.Instr.t -> ctx -> Sc.t -> (ctx -> int -> int) -> int -> handle
(** [sthread_create parent sc body arg] spawns a default-deny compartment
    holding exactly the privileges in [sc] (plus the pristine snapshot,
    copy-on-write) and runs [body] to completion.  A protection fault or
    SELinux denial terminates the sthread without propagating.
    @raise Privilege_violation if [sc] exceeds the parent's privileges. *)

val sthread_join : ctx -> handle -> int
(** The sthread's return value, or -1 if it was killed by a fault. *)

val handle_status : handle -> Wedge_kernel.Process.status
val exit_sthread : int -> 'a

(** {1 Memory-related calls} *)

val tag_new : ?name:string -> ?pages:int -> ctx -> Wedge_mem.Tag.t
(** Create a tag: allocate a segment (reusing the userland tag cache when
    possible, §4.1), map it read-write into the caller, and initialise
    smalloc bookkeeping inside it. *)

val tag_delete : ctx -> Wedge_mem.Tag.t -> unit
(** Delete a tag: a {e global} revocation — the range is unmapped from
    every address space of this kernel (with a TLB shootdown per remote
    space), and with {!set_on_tag_delete} armed the revocation extends
    across kernel shards before the call returns. *)

val set_on_tag_delete : app -> (Wedge_mem.Tag.t -> unit) option -> unit
(** Arm/disarm the post-delete hook {!tag_delete} fires once the local
    revocation is complete — the shard fabric's cross-shard shootdown
    broadcast.  The hook runs in the deleter's fiber and may park. *)

val smalloc : ctx -> int -> Wedge_mem.Tag.t -> int
val sfree : ctx -> int -> unit
val malloc : ctx -> int -> int
(** Untagged allocation from the sthread's private heap — invisible to
    every other compartment.  Redirected to [smalloc] while
    {!smalloc_on} is active. *)

val free : ctx -> int -> unit
val smalloc_on : ctx -> Wedge_mem.Tag.t -> unit
val smalloc_off : ctx -> unit
val smalloc_state : ctx -> Wedge_mem.Tag.t option
val boundary_var : app -> id:int -> name:string -> size:int -> int
(** [BOUNDARY_VAR]: place a global in a distinct page-aligned section,
    excluded from the pristine snapshot; returns its address.  Pre-boot
    only. *)

val boundary_tag : ctx -> id:int -> Wedge_mem.Tag.t
(** [BOUNDARY_TAG]: the tag covering a boundary section. *)

(** {1 Policy-related calls} *)

val sc_create : unit -> Sc.t
val sc_mem_add : Sc.t -> Wedge_mem.Tag.t -> Wedge_kernel.Prot.grant -> unit
val sc_fd_add : Sc.t -> int -> Wedge_kernel.Fd_table.perm -> unit
val sc_sel_context : Sc.t -> string -> unit
val sc_set_uid : Sc.t -> int -> unit
val sc_set_root : Sc.t -> string -> unit
val sc_gate_grant : Sc.t -> gate_id -> unit
(** Pass on a capability the grantor already holds. *)

val sc_set_rlimit : Sc.t -> Wedge_kernel.Rlimit.t -> unit
(** Bound the child's resources (private frames, descriptors, syscall
    fuel).  Validated at creation like every other grant: the child's
    caps must be no looser than the parent's.  Omitted, the child
    inherits the parent's caps with fresh usage. *)

(** {1 Callgate-related calls} *)

val sc_cgate_add :
  ?recycled:bool ->
  ctx ->
  Sc.t ->
  name:string ->
  entry:(ctx -> trusted:int -> arg:int -> int) ->
  cgsc:Sc.t ->
  trusted:int ->
  gate_id
(** Mint a callgate and add permission to invoke it to [sc].  The entry
    point, permissions [cgsc] and [trusted] argument are stored kernel-side
    and cannot be altered by any caller; [cgsc] must be a subset of the
    creator's privileges.  [recycled] gates reuse one long-lived sthread
    across invocations (§3.3, §4.1). *)

val cgate : ?deadline_ns:int -> ctx -> gate_id -> perms:Sc.t -> arg:int -> int
(** Invoke a callgate with additional (subset-checked) permissions [perms]
    — typically read access to the tag holding [arg].  Blocks until the
    gate terminates; a faulting gate yields -1.  With [deadline_ns], an
    invocation whose simulated-clock cost exceeds the deadline also yields
    -1 (the work is still charged — the timeout only fires after that much
    simulated time has passed); a recycled gate member that faults or
    overruns is reaped and eagerly respawned rather than poisoning the
    pool. *)

val gate_name : ctx -> gate_id -> string

(** {1 Comparison primitives (baselines)} *)

val fork : ctx -> (ctx -> int) -> handle
(** Classic fork: the child inherits the {e whole} address space (secrets
    included) and every descriptor — the baseline Wedge argues against. *)

val pthread : ctx -> (ctx -> int) -> int

(** {1 Identity (used by authentication callgates)} *)

val set_identity : ctx -> target_pid:int -> ?uid:int -> ?root:string -> unit -> unit

(** {1 Data access (checked + instrumented)} *)

val read_u8 : ctx -> int -> int
val write_u8 : ctx -> int -> int -> unit
val read_u16 : ctx -> int -> int
val write_u16 : ctx -> int -> int -> unit
val read_u32 : ctx -> int -> int
val write_u32 : ctx -> int -> int -> unit
val read_u64 : ctx -> int -> int
val write_u64 : ctx -> int -> int -> unit
val read_bytes : ctx -> int -> int -> bytes
val write_bytes : ctx -> int -> bytes -> unit
val read_string : ctx -> int -> int -> string
val write_string : ctx -> int -> string -> unit
val write_lv : ctx -> int -> string -> unit
(** Length-prefixed (u32) string block — the idiom for passing
    variable-size values through tagged memory. *)

val read_lv : ctx -> int -> string

(** [charge_app ctx ns] charges simulated nanoseconds of application-level
    work to the clock. *)
val charge_app : ctx -> int -> unit

val stat : ctx -> string -> unit
(** Bump a named counter in the kernel's stats table (how servers surface
    fault/recovery counts). *)

val trace_instant : ctx -> string -> unit
(** Record an instant event attributed to the calling compartment's pid
    in the kernel's trace (one branch when tracing is disarmed). *)

val register_metrics : Wedge_sim.Metrics.t -> app -> unit
(** Register every counter surface of this application with a metrics
    registry: kernel stats (traps, faults, supervisor, reaped TLB),
    live per-process TLB counters, the fault plan when one is attached,
    and the engine's tag-cache counters.  One
    {!Wedge_sim.Metrics.snapshot} then reads the whole system. *)

val fault_reason : exn -> string option
(** [Some reason] iff the exception is in the fault class that terminates
    a compartment (protection fault, SELinux denial, frame exhaustion,
    quota exhaustion, injected fault) rather than a programming error.
    What monitors use to guard their own per-connection setup work. *)

val register_fault_class : (exn -> string option) -> unit
(** Extend the contained-fault class with a layer-specific exception
    (e.g. a refused connection): the callback returns [Some reason] for
    exceptions that should terminate a compartment cleanly. *)

val can_read : ctx -> addr:int -> len:int -> bool
val can_write : ctx -> addr:int -> len:int -> bool

type tlb_stats = Engine.tlb_stats = {
  tlb_hits : int;
  tlb_misses : int;
  tlb_shootdowns : int;
}

val tlb_stats : ctx -> tlb_stats
(** Live software-TLB counters for the calling compartment's address
    space.  Totals across dead processes are folded into the kernel stats
    (keys ["tlb.hit"], ["tlb.miss"], ["tlb.shootdown"]) at reap time. *)

(** {1 Instrumentation (Crowbar attachment points)} *)

val set_instr : ctx -> Wedge_sim.Instr.t -> unit
val instr_of : ctx -> Wedge_sim.Instr.t

(** A declarative profile check attached to a compartment by the Crowbar
    synthesis loader ({!Wedge_crowbar.Synth}): consulted on every data
    access, descriptor operation and callgate invocation of that
    compartment.  [Some msg] denies — the engine raises
    {!Privilege_violation}[ msg], which dies {e contained} for a
    profiled compartment (stat ["policy.deny"], trace instant
    ["policy.violation"]). Complain-mode hooks count and return [None]. *)
type policy_check = Engine.policy_check = {
  pol_mem : addr:int -> len:int -> write:bool -> string option;
  pol_fd : fd:int -> write:bool -> string option;
  pol_gate : string -> string option;
}

val set_policy : ctx -> policy_check option -> unit
val policy_of : ctx -> policy_check option
val in_function : ctx -> name:string -> ?file:string -> ?line:int -> (unit -> 'a) -> 'a
val stack_frame : ctx -> name:string -> locals:int -> (int -> 'a) -> 'a

(** {1 Files and descriptors} *)

exception Fd_error of string

val open_file : ctx -> ?write:bool -> string -> (int, Wedge_kernel.Vfs.error) result
val add_endpoint : ctx -> Wedge_kernel.Fd_table.endpoint -> Wedge_kernel.Fd_table.perm -> int
val fd_read : ctx -> int -> int -> bytes
val fd_write : ctx -> int -> bytes -> unit

val fd_read_into : ctx -> int -> addr:int -> int -> int
(** [fd_read_into ctx fd ~addr n] reads up to [n] bytes from [fd] straight
    into the caller's memory at [addr] (checked bulk write: one
    translation per page, atomic across pages).  Returns the byte count. *)

val fd_write_from : ctx -> int -> addr:int -> len:int -> unit
(** [fd_write_from ctx fd ~addr ~len] writes [len] bytes read straight
    from the caller's memory at [addr] to [fd]. *)

val fd_readv : ctx -> int -> (int * int) array -> int
(** [fd_readv ctx fd iovs] scatters the stream into the [(addr, len)]
    runs in order, through ONE kernel entry — one trap/fuel/trace charge
    with each run past the first priced at
    {!Wedge_sim.Cost_model.t.syscall_batch_op}.  On endpoints with a
    native vectored path the bytes move directly between the channel and
    the caller's pages; others are scattered over byte reads.  Returns
    the byte total; [0] means EOF.  A protection fault on run [k] leaves
    runs [< k] delivered (a short readv) — never a torn run. *)

val fd_writev : ctx -> int -> (int * int) array -> int
(** [fd_writev ctx fd iovs] gathers the [(addr, len)] runs and sends them
    as one burst (one kernel entry, batch-priced).  All runs are read out
    of the caller's memory {e before} any byte is sent, so a protection
    fault mid-vector delivers nothing.  Returns the byte total. *)

val fd_close : ctx -> int -> unit
val vfs_read : ctx -> string -> (string, Wedge_kernel.Vfs.error) result
val vfs_write : ctx -> string -> string -> (unit, Wedge_kernel.Vfs.error) result
val vfs_readdir : ctx -> string -> (string list, Wedge_kernel.Vfs.error) result

(** [caller_pid gctx] is the pid of the sthread that invoked the currently
    running callgate (kernel-provided caller identity, like SO_PEERCRED) —
    what an authentication callgate passes to {!set_identity} to log the
    caller in (§5.2). *)
val caller_pid : ctx -> int option

(** {1 Frozen snapshot pools (O(1) spawn and crash recovery)} *)

module Pool : module type of Pool
(** Checkpoint a fully-booted worker once ({!Pool.freeze}), then stamp
    new sthreads from the frozen image at a flat cost independent of
    address-space size ({!Pool.stamp}) — what {!Supervisor} uses for
    [From_pool] restarts. *)
