(** Frozen compartment snapshot pools: O(1) crash recovery.

    Sthread creation is fork-priced — a [pte_copy] per pristine page and
    an [fd_dup] per granted descriptor — so spawn (and therefore crash
    recovery) scales with the image.  A pool checkpoints one fully-booted
    worker instead: {!freeze} builds a template the expensive way (with
    an optional warm-up body so demand-mapped heap and stack pages join
    the image), pins every frame of its address space with an extra
    reference, records private writable pages copy-on-write, captures
    the descriptor-table and rlimit shape, and reaps the template.
    {!stamp} then restores the whole image into a fresh sthread for one
    flat [pool_stamp] charge, independent of how many pages it holds —
    per-connection grants ride in through [extra] at the usual per-page/
    per-fd price, keeping the O(1) in the image, where the bytes are.

    Stamped children never dirty the image: their writes to frozen pages
    break copy-on-write into private frames, and tagged grant pages keep
    their grant protection (tag memory is shared-mutable by design).
    Fault sites ["pool.freeze"] and ["pool.stamp"] inject mid-operation;
    the unwind reaps the half-built process, which returns every frame
    reference it took and leaves the frozen image pristine — an
    invariant the [lib/check] refcount oracle re-derives independently
    (frozen images are pristine-like frame holders). *)

type t

val freeze :
  ?name:string -> ?warm:(Engine.ctx -> unit) -> Engine.ctx -> Sc.t -> t
(** [freeze parent sc] builds a worker from [sc] (validated against
    [parent] like any sthread policy), runs [warm] in it if given, and
    checkpoints its entire address space plus descriptor table, rlimit
    shape and identity into a frozen image registered on the app.  The
    template pays the full fork-priced boot exactly once and is reaped
    before [freeze] returns.  Raises [Invalid_argument] if the app is
    not booted or an image named [name] already exists; injected faults
    at site ["pool.freeze"] propagate after a clean unwind. *)

val stamp :
  ?instr:Wedge_sim.Instr.t ->
  ?extra:Sc.t ->
  Engine.ctx ->
  t ->
  (Engine.ctx -> int -> int) ->
  int ->
  Engine.handle
(** [stamp parent pool fn arg] creates a new sthread whose address space
    is the frozen image, bulk-installed for one flat [pool_stamp] charge,
    then runs [fn] in it like {!Engine.sthread_create} (same containment,
    same handle).  [extra] carries per-invocation grants — tags, fds,
    identity and limit overrides — validated against [parent] and mapped
    at the usual per-page/per-fd cost on top of the image (entries the
    image already provides are skipped).  Identity and limits default to
    the frozen template's.  Injected faults at site ["pool.stamp"]
    propagate after the half-stamped child is reaped — refcounts clean,
    image untouched. *)

val discard : Engine.ctx -> t -> unit
(** Drop the image's frame references and unregister it.  Frames still
    mapped by running stamped children survive on their own references.
    Idempotent; stamping from a discarded pool raises
    [Invalid_argument]. *)

val name : t -> string
val frozen_pages : t -> int
(** Pages in the frozen image (what one {!stamp} maps for its flat
    charge). *)

val is_live : t -> bool
