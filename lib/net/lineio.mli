(** Buffered line-oriented I/O over abstract byte streams — the classic
    text-protocol front end (POP3, HTTP, SSH version exchange).  Works over
    compartment file descriptors or raw channels alike.

    The buffer uses an offset cursor (consuming a line advances a read
    position; no per-line copying of the remainder), and lines are capped
    at [max_line] bytes so a client dribbling an endless line cannot
    balloon the buffer: overflow poisons the stream ({!read_line} returns
    [None], {!overflowed} turns true) and the owning server decides how
    to reject. *)

type t

val create : ?max_line:int -> recv:(int -> bytes) -> send:(bytes -> unit) -> unit -> t
(** [recv n] returns up to [n] bytes, empty meaning EOF.  [max_line]
    defaults to 1 MiB; servers facing untrusted clients pass their
    protocol's limit. *)

val of_chan : ?max_line:int -> Chan.ep -> t

val of_chan_readv :
  ?max_line:int -> Chan.ep -> Wedge_kernel.Vm.t -> addr:int -> len:int -> t
(** Fill-from-readv mode: refills land in the staging run [addr, addr+len)
    of [vm] through the vectored kernel-copy path ({!Chan.readv} — one
    blocking wait, one fault roll, no intermediate channel-side buffer)
    before lifting into the line buffer.  A revoked staging page faults
    the refill cleanly.
    @raise Invalid_argument when [len <= 0]. *)

val read_line : t -> string option
(** Next line without its terminator (accepts LF and CRLF); [None] at
    EOF or once the stream overflowed its line cap.  A final
    unterminated line is returned as-is. *)

val read_exact : t -> int -> bytes option
val write : t -> bytes -> unit
val write_line : t -> string -> unit
(** Appends CRLF. *)

val overflowed : t -> bool
(** True once a line exceeded [max_line]; the stream is poisoned (reads
    return [None]) but the send side still works, so the server can emit
    a rejection before closing. *)
