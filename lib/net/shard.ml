(* Sharded multi-kernel fabric: N independent simulated kernels — each
   with its own physical memory, page tables, fd space, clock and
   reactor — stitched into one cluster by directed cross-shard channels.

   A shard is a machine: its clock advances independently (that is the
   whole point of scaling out — N shards serve N connection streams in
   parallel simulated time), its reactor parks its own fibers, and its
   invariant oracle sweeps its own kernel.  The one global fact the
   fabric must preserve is PR 3's revocation invariant: deleting a tag
   revokes it *everywhere*.  A global tag ([gtag]) is replicated on
   every shard — the multikernel take on a shared memory grant — and
   deleting any replica runs the cross-shard TLB-shootdown protocol:

     1. the deleting shard finishes its local revocation (every local
        address space unmapped, local TLBs shot down — [Engine.tag_delete]
        already does this) and the engine's [on_tag_delete] hook fires;
     2. the fabric marks the gtag dead, charges one [tlb_shootdown] per
        peer (the IPI send), and posts a shootdown request on the link
        to every peer shard;
     3. each peer's link handler — a fiber parked on that shard's
        reactor — services the request: bumps [tlb.cross_shard_shootdown],
        charges the IPI, deletes its local replica (a full local
        revocation on that kernel), and acks;
     4. the deleter parks until every ack is in, then returns — exactly
        the synchronous shootdown contract a real multikernel completes
        before reusing the frames.

   Determinism: links are plain simulated channels, handlers wake in
   fiber-id order, peers are always walked in ascending shard id, and
   every charge comes from the cost model — so shootdown traces and
   exploration digests are pure functions of the schedule.

   One host runs the whole cluster: the single cooperative [Fiber]
   scheduler multiplexes every shard's fibers (it is a global singleton
   by design), so "per-shard scheduler" here means per-shard reactor +
   interest sets + clock, not N OS threads.  [hook]/[idle] wire the
   whole fabric into one [Fiber.run]. *)

module Kernel = Wedge_kernel.Kernel
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Stats = Wedge_sim.Stats
module Fiber = Wedge_sim.Fiber
module Reactor = Wedge_sim.Reactor
module Tag = Wedge_mem.Tag
module Engine = Wedge_core.Engine
module W = Wedge_core.Wedge

type shard = {
  sid : int;
  kernel : Kernel.t;
  app : Engine.app;
  reactor : Reactor.t;
}

type gtag = {
  g_gid : int;
  g_replicas : Tag.t array;  (* index = shard id *)
  mutable g_live : bool;
      (* flipped off the moment a delete starts — the gtag is logically
         dead cluster-wide before the first shootdown is even posted *)
  mutable g_pending : int;  (* shootdown acks still outstanding *)
}

type t = {
  shards : shard array;
  links_out : Chan.ep option array array;
      (* links_out.(i).(j): shard i's send end of the directed i->j
         link.  Links are directed because attaching a channel to a
         reactor covers both endpoints, and a message for shard j must
         wake shard j's reactor — so each ordered pair gets its own
         channel, attached at the receiver. *)
  links_in : Chan.ep option array array;
      (* links_in.(j).(i): shard j's receive end of the i->j link *)
  mutable next_gid : int;
  gtags : (int, gtag) Hashtbl.t;  (* gid -> gtag *)
  by_replica : (int * int, int) Hashtbl.t;  (* (sid, local tag id) -> gid *)
  mutable relaying : bool;
      (* a link handler is applying a remote shootdown: its local
         [Engine.tag_delete] must not re-broadcast (the scheduler is
         cooperative and the delete does not yield, so one flag is a
         sound re-entrancy guard) *)
  mutable handlers : int;  (* live link-handler fibers *)
  mutable started : bool;
  mutable stopping : bool;
}

let n t = Array.length t.shards
let shards t = t.shards
let shard t sid = t.shards.(sid)
let reactors t = Array.to_list (Array.map (fun s -> s.reactor) t.shards)

(* ------------------------------------------------------------------ *)
(* Wire format: 1 opcode byte + 4-byte big-endian gid                  *)

let msg_bytes = 5

let encode op gid =
  let b = Bytes.create msg_bytes in
  Bytes.set b 0 op;
  Bytes.set b 1 (Char.chr ((gid lsr 24) land 0xff));
  Bytes.set b 2 (Char.chr ((gid lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((gid lsr 8) land 0xff));
  Bytes.set b 4 (Char.chr (gid land 0xff));
  b

let decode_gid b =
  (Char.code (Bytes.get b 1) lsl 24)
  lor (Char.code (Bytes.get b 2) lsl 16)
  lor (Char.code (Bytes.get b 3) lsl 8)
  lor Char.code (Bytes.get b 4)

let link_out t i j =
  match t.links_out.(i).(j) with
  | Some ep -> ep
  | None -> invalid_arg "Shard: no link between these shards"

let send t ~from ~to_ op gid = ignore (Chan.write (link_out t from to_) (encode op gid))

(* ------------------------------------------------------------------ *)
(* The shootdown broadcast (the deleting side)                         *)

let broadcast_delete t (s : shard) gid =
  let g = Hashtbl.find t.gtags gid in
  if g.g_live then begin
    g.g_live <- false;
    let peers = n t - 1 in
    g.g_pending <- peers;
    if peers > 0 then begin
      if not t.started then
        invalid_arg "Shard: gtag delete with link handlers not started";
      let costs = s.kernel.Kernel.costs in
      for j = 0 to n t - 1 do
        if j <> s.sid then begin
          (* One IPI per peer, charged to the revoking shard. *)
          Clock.charge s.kernel.Kernel.clock costs.Cost_model.tlb_shootdown;
          send t ~from:s.sid ~to_:j 'S' gid
        end
      done;
      (* The synchronous contract: the delete does not return until
         every peer has revoked and acked. *)
      Fiber.wait_until ~what:"cross-shard shootdown acks" (fun () -> g.g_pending = 0)
    end
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create worlds =
  if Array.length worlds = 0 then invalid_arg "Shard.create: no shards";
  let shards =
    Array.mapi
      (fun sid (kernel, app) ->
        { sid; kernel; app; reactor = Reactor.create ~clock:kernel.Kernel.clock () })
      worlds
  in
  let m = Array.length shards in
  let links_out = Array.make_matrix m m None in
  let links_in = Array.make_matrix m m None in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j then begin
        (* The link is free of channel charges: the protocol charges the
           cost model's [tlb_shootdown] explicitly on each side, so the
           price of a shootdown is one knob, not a sum of hidden RTTs. *)
        let a, b = Chan.pair () in
        Chan.attach_reactor shards.(j).reactor b;
        links_out.(i).(j) <- Some a;
        links_in.(j).(i) <- Some b
      end
    done
  done;
  let t =
    {
      shards;
      links_out;
      links_in;
      next_gid = 1;
      gtags = Hashtbl.create 16;
      by_replica = Hashtbl.create 16;
      relaying = false;
      handlers = 0;
      started = false;
      stopping = false;
    }
  in
  (* The deleter's broadcast rides the engine's post-delete hook, so a
     plain [Wedge.tag_delete] of any replica is automatically a
     cluster-wide revocation. *)
  Array.iter
    (fun s ->
      Engine.set_on_tag_delete s.app
        (Some
           (fun (tag : Tag.t) ->
             if not t.relaying then
               match Hashtbl.find_opt t.by_replica (s.sid, tag.Tag.id) with
               | None -> ()  (* a purely local tag: local revocation suffices *)
               | Some gid -> broadcast_delete t s gid)))
    shards;
  t

(* Convenience: [n] bare booted worlds sharing one cost model. *)
let make ?image_pages ?(costs = Cost_model.default) ~n () =
  if n <= 0 then invalid_arg "Shard.make: n <= 0";
  create
    (Array.init n (fun sid ->
         let kernel = Kernel.create ~costs ~shard:sid () in
         let app = W.create_app ?image_pages kernel in
         W.boot app;
         (kernel, app)))

(* ------------------------------------------------------------------ *)
(* Link handlers (the receiving side)                                  *)

let service_shootdown t (s : shard) ~from_sid gid =
  let costs = s.kernel.Kernel.costs in
  (* The IPI itself: serviced on the receiving shard's clock, counted on
     its kernel — [bench -- scale] and the oracles read this stat. *)
  Stats.bump s.kernel.Kernel.stats "tlb.cross_shard_shootdown";
  Clock.charge s.kernel.Kernel.clock costs.Cost_model.tlb_shootdown;
  (match Hashtbl.find_opt t.gtags gid with
  | Some g ->
      let replica = g.g_replicas.(s.sid) in
      if replica.Tag.live then begin
        t.relaying <- true;
        Fun.protect
          ~finally:(fun () -> t.relaying <- false)
          (fun () -> Engine.tag_delete (Engine.main_ctx s.app) replica)
      end
  | None -> ());
  send t ~from:s.sid ~to_:from_sid 'A' gid

let handler t (s : shard) ~from_sid ep =
  let rec loop () =
    Chan.wait_rx ~bytes:msg_bytes ep;
    if Chan.bytes_in_flight ep >= msg_bytes then begin
      (match Chan.read_exact ep msg_bytes with
      | None -> ()
      | Some msg -> (
          let gid = decode_gid msg in
          match Bytes.get msg 0 with
          | 'S' -> service_shootdown t s ~from_sid gid
          | 'A' -> (
              match Hashtbl.find_opt t.gtags gid with
              | Some g -> g.g_pending <- g.g_pending - 1
              | None -> ())
          | c ->
              invalid_arg
                (Printf.sprintf "Shard: bad opcode %C on link %d->%d" c from_sid
                   s.sid)));
      loop ()
    end
    (* EOF: the fabric is stopping; fall through and retire. *)
  in
  loop ();
  t.handlers <- t.handlers - 1

let start t =
  if t.started then invalid_arg "Shard.start: already started";
  t.started <- true;
  Array.iter
    (fun s ->
      Array.iteri
        (fun from_sid ep ->
          match ep with
          | None -> ()
          | Some ep ->
              t.handlers <- t.handlers + 1;
              Fiber.spawn (fun () -> handler t s ~from_sid ep))
        t.links_in.(s.sid))
    t.shards

let stop t =
  if t.started && not t.stopping then begin
    t.stopping <- true;
    (* Closing every send end EOFs every receive end: handlers parked on
       their shard's reactor wake, drain, and retire. *)
    Array.iter
      (fun row ->
        Array.iter (fun ep -> match ep with Some ep -> Chan.close ep | None -> ()) row)
      t.links_out;
    Fiber.wait_until ~what:"shard link handlers retired" (fun () -> t.handlers = 0)
  end

(* ------------------------------------------------------------------ *)
(* Scheduler wiring                                                    *)

let hook t =
  let hooks = Array.map (fun s -> Reactor.hook s.reactor) t.shards in
  fun () -> Array.iter (fun h -> h ()) hooks

let idle t = Reactor.idle_multi (reactors t)

(* ------------------------------------------------------------------ *)
(* Global tags                                                         *)

let gtag_new ?(name = "gtag") ?pages t =
  let gid = t.next_gid in
  t.next_gid <- gid + 1;
  let replicas =
    Array.map
      (fun s ->
        W.tag_new ~name:(Printf.sprintf "%s.g%d" name gid) ?pages
          (Engine.main_ctx s.app))
      t.shards
  in
  let g = { g_gid = gid; g_replicas = replicas; g_live = true; g_pending = 0 } in
  Hashtbl.replace t.gtags gid g;
  Array.iteri
    (fun sid (replica : Tag.t) ->
      Hashtbl.replace t.by_replica (sid, replica.Tag.id) gid)
    replicas;
  g

let gtag_id g = g.g_gid
let gtag_live g = g.g_live
let replica g ~sid = g.g_replicas.(sid)

let gtag_delete t ~sid g =
  let s = t.shards.(sid) in
  Engine.tag_delete (Engine.main_ctx s.app) g.g_replicas.(sid)

let cross_shard_shootdowns t =
  Array.fold_left
    (fun acc s -> acc + Stats.get s.kernel.Kernel.stats "tlb.cross_shard_shootdown")
    0 t.shards

(* ------------------------------------------------------------------ *)
(* Audit: the fabric's own contribution to the global sweep            *)

(* Sound at every scheduler sync point, including mid-shootdown:
   - a live gtag has every replica live and no delete in flight;
   - a dead gtag with no pending acks has every replica dead — the
     revocation completed everywhere (a live replica here is exactly
     the stale-grant bug the protocol exists to prevent);
   - mid-flight (pending > 0) replicas are mixed by design, but the
     initiating side already killed its own, so the count of live
     replicas can never exceed the acks still outstanding;
   - the relay flag never survives a shootdown application. *)
let self_check t =
  let problem = ref None in
  let report fmt =
    Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt
  in
  if t.relaying then report "shard: relay flag stuck set outside a shootdown";
  Hashtbl.iter
    (fun gid g ->
      let live_replicas =
        Array.fold_left
          (fun acc (r : Tag.t) -> if r.Tag.live then acc + 1 else acc)
          0 g.g_replicas
      in
      if g.g_live then begin
        if g.g_pending <> 0 then
          report "shard: live gtag %d has %d shootdowns in flight" gid g.g_pending;
        if live_replicas <> Array.length g.g_replicas then
          report "shard: live gtag %d has only %d/%d live replicas" gid live_replicas
            (Array.length g.g_replicas)
      end
      else if g.g_pending = 0 then begin
        if live_replicas > 0 then
          report
            "shard: gtag %d deleted but %d replica(s) still live — revocation did \
             not reach every shard"
            gid live_replicas
      end
      else if live_replicas > g.g_pending then
        report "shard: gtag %d mid-shootdown with %d live replicas > %d pending acks"
          gid live_replicas g.g_pending)
    t.gtags;
  !problem

(* ------------------------------------------------------------------ *)
(* Front door: hash connections to shards                              *)

(* FNV-1a (32-bit): tiny, seedless, and stable across runs, hosts and
   OCaml versions — the same key must land on the same shard forever,
   or a client's session affinity breaks. *)
let shard_hash key =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff) key;
  !h

let route t ~key = shard_hash key mod n t

type front = {
  f_fab : t;
  f_listeners : Chan.listener array;
  f_guards : Guard.t array;
}

let front ?costs ?faults ?backlog ?header_deadline_ns ?breaker ?watchdogs ~max_conns t =
  let listeners =
    Array.map
      (fun s -> Chan.listener ~clock:s.kernel.Kernel.clock ?costs ?faults ?backlog ())
      t.shards
  in
  let guards =
    Array.map
      (fun s ->
        let watchdog =
          match watchdogs with Some ws -> Some ws.(s.sid) | None -> None
        in
        Guard.create ~clock:s.kernel.Kernel.clock ?header_deadline_ns ?breaker
          ?watchdog ~reactor:s.reactor ~max_conns ())
      t.shards
  in
  { f_fab = t; f_listeners = listeners; f_guards = guards }

let front_fabric f = f.f_fab
let front_listener f sid = f.f_listeners.(sid)
let front_guard f sid = f.f_guards.(sid)

let front_connect f ~key =
  let sid = route f.f_fab ~key in
  (sid, Chan.connect f.f_listeners.(sid))

let front_drain f =
  Array.iteri (fun sid g -> Guard.drain g f.f_listeners.(sid)) f.f_guards
