(** Hostile-client behaviors (flood, slow-loris, oversized request,
    half-close, silent holder) for exercising the {!Guard} admission
    layer.  Each behavior runs one complete client script in the calling
    fiber and records exactly one outcome in its {!tally}, so a driver
    spawning N clients can assert the outcomes sum back to N.  Protocol
    specifics are parameters ([request] bytes; [is_rejection] recognises
    the server's busy banner), so the same behaviors drive HTTP, POP3
    and SSH servers. *)

type tally = {
  mutable completed : int;
  mutable refused : int;  (** refused at the listener backlog *)
  mutable rejected : int;  (** admitted, then sent a busy rejection *)
  mutable cut : int;  (** reset mid-script (deadline cut, drain, fault) *)
  mutable errors : int;
}

val tally : unit -> tally
val total : tally -> int
val to_string : tally -> string

val oneshot :
  tally -> Chan.listener -> request:string -> is_rejection:(string -> bool) -> unit
(** Well-formed client: send [request], read to EOF, classify the
    response.  [request] must drive the server to close (end with QUIT,
    a complete HTTP exchange, ...). *)

val half_close :
  tally -> Chan.listener -> request:string -> is_rejection:(string -> bool) -> unit
(** Send [request], close the write side, then read responses to EOF. *)

val slow_loris :
  tally ->
  Chan.listener ->
  clock:Wedge_sim.Clock.t ->
  step_ns:int ->
  request:string ->
  is_rejection:(string -> bool) ->
  unit
(** Dribble [request] one byte per [step_ns] of simulated time. *)

val oversized : tally -> Chan.listener -> size:int -> is_rejection:(string -> bool) -> unit
(** One [size]-byte line; expects a too-large rejection from a capped
    parser. *)

val mid_header_stall :
  tally ->
  Chan.listener ->
  clock:Wedge_sim.Clock.t ->
  step_ns:int ->
  ?max_steps:int ->
  prefix:string ->
  is_rejection:(string -> bool) ->
  unit ->
  unit
(** Send [prefix] (a half-written header) then go silent, charging
    [step_ns] of simulated time per scheduler step for up to [max_steps]
    (default 64) steps or until the server cuts us.  Only hang detection
    reclaims the slot: the worker is blocked mid-read with bytes already
    consumed.  Tallied as cut unless the server answered with a
    rejection. *)

val silent : tally -> Chan.listener -> unit
(** Connect and never write; holds a slot until cut. *)
