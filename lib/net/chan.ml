module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics
module Reactor = Wedge_sim.Reactor
module Fd_table = Wedge_kernel.Fd_table
module Rlimit = Wedge_kernel.Rlimit
module Fault_plan = Wedge_fault.Fault_plan

exception Refused of string

(* A refused connection is an environmental condition, not a programming
   error: a supervised compartment that reconnects during/after a drain
   must die contained (and restartable), exactly like a reset.  Register
   [Refused] with the engine's contained-fault class at link time. *)
let () =
  Wedge_core.Engine.register_fault_class (function
    | Refused msg -> Some msg
    | _ -> None)

(* One direction of flow: a byte FIFO with a close flag.  [reset] marks a
   close forced by fault injection: readers still see EOF, but writers get
   a catchable [Fault_plan.Injected] (the EPIPE analogue) instead of the
   programming-error [Invalid_argument]. *)
type dir = {
  mutable data : Bytes.t;
  mutable rpos : int;
  mutable wpos : int;
  mutable closed : bool;
  mutable reset : bool;
  mutable handle : Reactor.handle option;
      (* readiness interest set for this direction when a reactor is
         attached: its reader parks on it for data/EOF, its writer for
         drained backpressure space.  [None] (the default) keeps the
         historical spin-yield blocking byte-for-byte — every seeded
         replay test depends on that. *)
}

let dir_create () =
  {
    data = Bytes.create 256;
    rpos = 0;
    wpos = 0;
    closed = false;
    reset = false;
    handle = None;
  }
let dir_available d = d.wpos - d.rpos

(* One readiness edge: data arrived, space drained, or the direction
   died.  Level-triggered waiters re-check their own condition, so
   signalling coarsely (every push, every pop) is correct; the disarmed
   cost is one option match. *)
let dir_signal d =
  match d.handle with Some h -> Reactor.signal h | None -> ()

let dir_push d b =
  let n = Bytes.length b in
  let cap = Bytes.length d.data in
  if d.wpos + n > cap then begin
    let live = dir_available d in
    let need = live + n in
    let newcap = max (cap * 2) (need * 2) in
    let fresh = Bytes.create newcap in
    Bytes.blit d.data d.rpos fresh 0 live;
    d.data <- fresh;
    d.rpos <- 0;
    d.wpos <- live
  end;
  Bytes.blit b 0 d.data d.wpos n;
  d.wpos <- d.wpos + n;
  dir_signal d

let dir_pop d n =
  let take = min n (dir_available d) in
  let b = Bytes.sub d.data d.rpos take in
  d.rpos <- d.rpos + take;
  if d.rpos = d.wpos then begin
    d.rpos <- 0;
    d.wpos <- 0
  end;
  if take > 0 then dir_signal d;
  b

type ep = {
  rx : dir;
  tx : dir;
  clock : Clock.t option;
  costs : Cost_model.t;
  faults : Fault_plan.t option;
  trace : Trace.t;
  capacity : int option;
      (* high watermark on in-flight bytes per direction: a writer blocks
         on the fiber scheduler above it and resumes at half (the low
         watermark), so no peer can balloon a channel buffer without
         bound *)
}

(* Channel events are attributed to pid 0 — the wire itself, not any
   compartment; the tid (scheduler fiber) tells connections apart. *)
let net_pid = 0

let pair ?clock ?(costs = Cost_model.default) ?faults ?(trace = Trace.null)
    ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Chan.pair: capacity <= 0"
  | _ -> ());
  let ab = dir_create () and ba = dir_create () in
  ( { rx = ba; tx = ab; clock; costs; faults; trace; capacity },
    { rx = ab; tx = ba; clock; costs; faults; trace; capacity } )

let charge_rtt ep half =
  match ep.clock with
  | Some c -> Clock.charge c (if half then ep.costs.Cost_model.net_rtt / 2 else ep.costs.Cost_model.net_rtt)
  | None -> ()

(* Tear one direction down as a fault: readers of it see EOF, writers get
   [Injected].  Pending bytes are lost.  The reactor handle dies with the
   direction: every parked waiter wakes (to EOF or the write error) and
   no new registration can land on the carcass. *)
let dir_kill d =
  d.rpos <- 0;
  d.wpos <- 0;
  d.closed <- true;
  d.reset <- true;
  match d.handle with Some h -> Reactor.kill h | None -> ()

(* Close as reset but let already-buffered bytes drain (truncation). *)
let dir_kill_keep_data d =
  d.closed <- true;
  d.reset <- true;
  dir_signal d

(* Connection reset: both directions die so no fiber can block on the
   carcass (silently dropped bytes would stall the peer forever and take
   the whole cooperative scheduler down as a deadlock). *)
let kill ep =
  dir_kill ep.rx;
  dir_kill ep.tx;
  Fiber.progress ()

let charge_delay ep ns =
  match ep.clock with Some c -> Clock.charge c ns | None -> ()

(* Block until this endpoint is readable.  Reactor-attached directions
   park — zero scheduler steps while blocked — everything else keeps the
   historical spin-yield wait byte-for-byte. *)
let wait_rx ?(bytes = 1) ep =
  let bytes = max 1 bytes in
  let ready () = dir_available ep.rx >= bytes || ep.rx.closed in
  match ep.rx.handle with
  | Some h when Fiber.in_scheduler () ->
      Reactor.wait h ~what:"channel data" ~ready
  | _ -> Fiber.wait_until ~what:"channel data" ready

let block_for_data ep = wait_rx ep

let wait_readable = block_for_data

let read ep n =
  if n <= 0 then invalid_arg "Chan.read: n <= 0";
  (match Fault_plan.roll_opt ep.faults ~site:"chan.read" with
  | Some Fault_plan.Reset ->
      kill ep
  | Some (Fault_plan.Drop | Fault_plan.Enomem | Fault_plan.Prot_fault) ->
      (* incoming bytes lost; the read side sees EOF from now on *)
      dir_kill ep.rx;
      Fiber.progress ()
  | Some Fault_plan.Truncate ->
      (* deliver at most one pending byte, then the direction dies *)
      let keep = min 1 (dir_available ep.rx) in
      ep.rx.wpos <- ep.rx.rpos + keep;
      ep.rx.closed <- true;
      ep.rx.reset <- true;
      dir_signal ep.rx;
      Fiber.progress ()
  | Some (Fault_plan.Delay ns) -> charge_delay ep ns
  | Some (Fault_plan.Crash as k) -> Fault_plan.fail ~site:"chan.read" k
  | None -> ());
  let blocked = dir_available ep.rx = 0 && not ep.rx.closed in
  block_for_data ep;
  if blocked then charge_rtt ep true;
  let b = dir_pop ep.rx n in
  Trace.count ep.trace ~name:"chan.read" ~pid:net_pid ~value:(Bytes.length b);
  (* Draining counts as global progress: a writer blocked on the high
     watermark must see its space appear as forward motion, not a stall. *)
  if Bytes.length b > 0 then Fiber.progress ();
  b

let read_exact ep n =
  if n < 0 then invalid_arg "Chan.read_exact: n < 0";
  if n = 0 then Some Bytes.empty
  else begin
    (* One preallocated buffer filled in place — the per-call Buffer of
       the old implementation copied every chunk twice.  A faulted
       direction can deliver empty chunks without EOF; two consecutive
       zero-progress reads terminate the loop instead of spinning. *)
    let buf = Bytes.create n in
    let rec go filled stalls =
      if filled >= n then Some buf
      else
        let chunk = read ep (n - filled) in
        let len = Bytes.length chunk in
        if len = 0 then
          if stalls >= 1 || (dir_available ep.rx = 0 && ep.rx.closed) then None
          else go filled (stalls + 1)
        else begin
          Bytes.blit chunk 0 buf filled len;
          go (filled + len) 0
        end
    in
    go 0 0
  end

(* Writer-side backpressure: above the high watermark, spin-yield until
   the reader drains to the low watermark.  If the whole system stalls
   while we wait (the peer will never read), tear the direction down and
   raise a contained [Resource_exhausted] — the in-flight byte budget is
   a resource like any other, and a stalled bounded write must become a
   compartment fault, never a scheduler deadlock. *)
let backpressure_spins = 2_000

let spin_for_space ep ~low =
  let rec loop last spins =
    if dir_available ep.tx <= low || ep.tx.closed then ()
    else if Fiber.stamp () = last && spins > backpressure_spins then begin
      dir_kill ep.tx;
      Fiber.progress ();
      raise
        (Rlimit.Resource_exhausted
           (Printf.sprintf
              "chan.write: bounded channel stalled (%d bytes in flight, peer not reading)"
              (dir_available ep.tx)))
    end
    else begin
      Fiber.yield ();
      let s = Fiber.stamp () in
      if s = last then loop last (spins + 1) else loop s 0
    end
  in
  loop (Fiber.stamp ()) 0

let wait_for_space ep cap =
  let low = max 1 (cap / 2) in
  (* A reactor-attached writer parks for the drain signal instead of
     spinning; a peer that never reads is then the admission layer's
     problem (deadline cut -> abort -> wake to a contained error), or —
     with no guard armed — a reported deadlock naming this fiber. *)
  match ep.tx.handle with
  | Some h when Fiber.in_scheduler () ->
      Reactor.wait h ~what:"channel space" ~ready:(fun () ->
          dir_available ep.tx <= low || ep.tx.closed)
  | _ -> spin_for_space ep ~low

let write ep b =
  if ep.tx.closed then
    if ep.tx.reset then
      raise (Fault_plan.Injected "chan.write: peer reset (injected)")
    else invalid_arg "Chan.write: endpoint closed";
  (match ep.capacity with
  | Some cap when dir_available ep.tx >= cap -> wait_for_space ep cap
  | _ -> ());
  (* The block may have ended because the direction died under us. *)
  if ep.tx.closed then
    raise (Fault_plan.Injected "chan.write: peer reset while blocked on backpressure");
  (match Fault_plan.roll_opt ep.faults ~site:"chan.write" with
  | Some (Fault_plan.Reset | Fault_plan.Crash as k) ->
      kill ep;
      Fault_plan.fail ~site:"chan.write" k
  | Some (Fault_plan.Drop | Fault_plan.Enomem | Fault_plan.Prot_fault) ->
      (* the bytes vanish in flight and the direction dies; the writer
         only finds out on its next write (like a TCP send after FIN) *)
      dir_kill ep.tx;
      Fiber.progress ()
  | Some Fault_plan.Truncate ->
      if Bytes.length b > 0 then dir_push ep.tx (Bytes.sub b 0 1);
      dir_kill_keep_data ep.tx;
      Fiber.progress ()
  | Some (Fault_plan.Delay ns) ->
      charge_delay ep ns;
      dir_push ep.tx b
  | None -> dir_push ep.tx b);
  Trace.count ep.trace ~name:"chan.write" ~pid:net_pid ~value:(Bytes.length b);
  Fiber.progress ();
  Fiber.yield ()

let write_string ep s = write ep (Bytes.of_string s)

(* Kernel-copy endpoints: move bytes between the channel and a process's
   pages in one step.  The memory side uses the Vm bulk path — checked,
   one translation per page, atomic multi-page writes — so a connection's
   payload landing on a revoked or read-only page faults cleanly without
   leaving a torn buffer behind. *)
let read_into ep vm ~addr n =
  let b = read ep n in
  let len = Bytes.length b in
  if len > 0 then Wedge_kernel.Vm.write_bytes vm addr b;
  len

let write_from ep vm ~addr ~len =
  write ep (Wedge_kernel.Vm.read_bytes vm addr len)

(* ------------------------------------------------------------------ *)
(* Vectored kernel-copy I/O                                            *)

(* [readv ep vm iovs] fills the (addr, len) runs in order with whatever
   is buffered, through the same checked Vm bulk path as [read_into] —
   one blocking wait, ONE fault roll and one trace count for the whole
   vector, no intermediate per-chunk reads.  Returns the byte total; 0
   means EOF.  Atomicity per run: bytes are consumed from the channel
   only after they landed, so a protection fault on run k leaves runs
   < k delivered (a short readv, as on real hardware) and the rest of
   the payload still buffered — never a torn run, never lost bytes. *)
let readv ep vm iovs =
  Array.iter
    (fun (_, len) -> if len < 0 then invalid_arg "Chan.readv: negative length")
    iovs;
  let want = Array.fold_left (fun a (_, len) -> a + len) 0 iovs in
  if want = 0 then 0
  else begin
    (match Fault_plan.roll_opt ep.faults ~site:"chan.read" with
    | Some Fault_plan.Reset -> kill ep
    | Some (Fault_plan.Drop | Fault_plan.Enomem | Fault_plan.Prot_fault) ->
        dir_kill ep.rx;
        Fiber.progress ()
    | Some Fault_plan.Truncate ->
        let keep = min 1 (dir_available ep.rx) in
        ep.rx.wpos <- ep.rx.rpos + keep;
        ep.rx.closed <- true;
        ep.rx.reset <- true;
        dir_signal ep.rx;
        Fiber.progress ()
    | Some (Fault_plan.Delay ns) -> charge_delay ep ns
    | Some (Fault_plan.Crash as k) -> Fault_plan.fail ~site:"chan.read" k
    | None -> ());
    let blocked = dir_available ep.rx = 0 && not ep.rx.closed in
    block_for_data ep;
    if blocked then charge_rtt ep true;
    let total = ref 0 in
    (try
       Array.iter
         (fun (addr, len) ->
           let take = min len (dir_available ep.rx) in
           if take > 0 then begin
             (* Land first, consume after: a Vm fault must leave the
                unread bytes in the channel, not drop them. *)
             let b = Bytes.sub ep.rx.data ep.rx.rpos take in
             Wedge_kernel.Vm.write_bytes vm addr b;
             ignore (dir_pop ep.rx take);
             total := !total + take
           end)
         iovs
     with e ->
       if !total > 0 then begin
         Trace.count ep.trace ~name:"chan.read" ~pid:net_pid ~value:!total;
         Fiber.progress ()
       end;
       raise e);
    Trace.count ep.trace ~name:"chan.read" ~pid:net_pid ~value:!total;
    if !total > 0 then Fiber.progress ();
    !total
  end

(* [writev ep vm iovs] gathers the (addr, len) runs and sends them as one
   burst: ONE backpressure wait, one fault roll, one trace count.  Every
   run is read out of the address space (each a checked bulk read) BEFORE
   any byte reaches the wire, so a protection fault mid-vector delivers
   nothing — no partial-write corruption.  Returns the byte total. *)
let writev ep vm iovs =
  Array.iter
    (fun (_, len) -> if len < 0 then invalid_arg "Chan.writev: negative length")
    iovs;
  if ep.tx.closed then
    if ep.tx.reset then
      raise (Fault_plan.Injected "chan.write: peer reset (injected)")
    else invalid_arg "Chan.writev: endpoint closed";
  (* Validate + gather before anything is committed. *)
  let runs =
    Array.map (fun (addr, len) -> Wedge_kernel.Vm.read_bytes vm addr len) iovs
  in
  let total = Array.fold_left (fun a b -> a + Bytes.length b) 0 runs in
  (match ep.capacity with
  | Some cap when dir_available ep.tx >= cap -> wait_for_space ep cap
  | _ -> ());
  if ep.tx.closed then
    raise
      (Fault_plan.Injected "chan.write: peer reset while blocked on backpressure");
  (match Fault_plan.roll_opt ep.faults ~site:"chan.write" with
  | Some ((Fault_plan.Reset | Fault_plan.Crash) as k) ->
      kill ep;
      Fault_plan.fail ~site:"chan.write" k
  | Some (Fault_plan.Drop | Fault_plan.Enomem | Fault_plan.Prot_fault) ->
      dir_kill ep.tx;
      Fiber.progress ()
  | Some Fault_plan.Truncate ->
      (match Array.find_opt (fun b -> Bytes.length b > 0) runs with
      | Some b -> dir_push ep.tx (Bytes.sub b 0 1)
      | None -> ());
      dir_kill_keep_data ep.tx;
      Fiber.progress ()
  | Some (Fault_plan.Delay ns) ->
      charge_delay ep ns;
      Array.iter (fun b -> if Bytes.length b > 0 then dir_push ep.tx b) runs
  | None -> Array.iter (fun b -> if Bytes.length b > 0 then dir_push ep.tx b) runs);
  Trace.count ep.trace ~name:"chan.write" ~pid:net_pid ~value:total;
  Fiber.progress ();
  Fiber.yield ();
  total

let close ep =
  ep.tx.closed <- true;
  (* The peer's parked reader must see its EOF. *)
  dir_signal ep.tx;
  Fiber.progress ()

(* Forced teardown (RST): both directions die immediately.  Readers see
   EOF, writers get a contained [Injected] — what the admission layer
   uses to cut a connection past its deadline or at drain force-close. *)
let abort ep =
  Trace.instant ep.trace ~name:"chan.abort" ~pid:net_pid;
  kill ep

let is_eof ep = dir_available ep.rx = 0 && ep.rx.closed
let bytes_in_flight ep = dir_available ep.rx
let capacity ep = ep.capacity

(* Attach a reactor to this endpoint: both directions get interest-set
   handles, so readers/writers of either side park instead of spinning.
   Idempotent; the peer endpoint shares the same dirs and is attached by
   the same call. *)
let attach_reactor r ep =
  (match ep.rx.handle with
  | Some _ -> ()
  | None -> ep.rx.handle <- Some (Reactor.handle r ~name:"chan.rx"));
  match ep.tx.handle with
  | Some _ -> ()
  | None -> ep.tx.handle <- Some (Reactor.handle r ~name:"chan.tx")

let to_endpoint ep =
  {
    Fd_table.ep_read = (fun n -> read ep n);
    ep_write = (fun b -> write ep b);
    ep_close = (fun () -> close ep);
    ep_eof = (fun () -> is_eof ep);
    ep_desc = "chan";
    (* Pre-trap wait only in reactor mode: the unattached path must keep
       blocking inside [read] (after the trap, with its half-RTT charge)
       byte-for-byte. *)
    ep_wait =
      Some (fun () -> if ep.rx.handle <> None then wait_readable ep);
    ep_readv = Some (fun vm iovs -> readv ep vm iovs);
    ep_writev = Some (fun vm iovs -> writev ep vm iovs);
  }

(* ------------------------------------------------------------------ *)

type listener = {
  queue : ep Queue.t;
  mutable down : bool;
  backlog : int;
  mutable refused : int;
  lclock : Clock.t option;
  lcosts : Cost_model.t;
  lfaults : Fault_plan.t option;
  ltrace : Trace.t;
  lcapacity : int option;
  mutable l_h : Reactor.handle option;
      (* accept-queue interest set: the acceptor parks on it and a SYN
         burst wakes it once to drain the whole backlog *)
  mutable l_reactor : Reactor.t option;
      (* when set, every accepted connection pair is auto-attached, so
         the serve path parks end to end without per-conn plumbing *)
}

let default_backlog = 128

let listener ?clock ?(costs = Cost_model.default) ?faults
    ?(trace = Trace.null) ?(backlog = default_backlog) ?capacity () =
  if backlog <= 0 then invalid_arg "Chan.listener: backlog <= 0";
  {
    queue = Queue.create ();
    down = false;
    backlog;
    refused = 0;
    lclock = clock;
    lcosts = costs;
    lfaults = faults;
    ltrace = trace;
    lcapacity = capacity;
    l_h = None;
    l_reactor = None;
  }

(* Park acceptors on the queue instead of spinning, and attach every
   connection this listener mints from now on.  Idempotent. *)
let attach_listener r l =
  (match l.l_h with
  | Some _ -> ()
  | None -> l.l_h <- Some (Reactor.handle r ~name:"chan.listener"));
  l.l_reactor <- Some r

let refuse l msg =
  l.refused <- l.refused + 1;
  Trace.instant l.ltrace ~name:"chan.refused" ~pid:net_pid;
  Fiber.progress ();
  raise (Refused msg)

let connect l =
  (* A down listener refuses like a full backlog: connecting to a server
     that went away is an environmental condition the engine contains
     (see the fault-class registration above), never [Invalid_argument]
     — which would escape containment and kill the reconnecting
     compartment's whole supervisor chain as a programming error. *)
  if l.down then refuse l "Chan.connect: listener is down";
  (match Fault_plan.roll_opt l.lfaults ~site:"chan.connect" with
  | Some k -> Fault_plan.fail ~site:"chan.connect" k
  | None -> ());
  (* A full accept queue refuses the SYN outright — overflow connects
     must surface to the connecting fiber as a distinct error, never
     pile up unboundedly behind a server that will not accept them. *)
  if Queue.length l.queue >= l.backlog then
    refuse l
      (Printf.sprintf "Chan.connect: backlog full (%d pending)"
         (Queue.length l.queue));
  let client, server =
    match l.lclock with
    | Some c ->
        pair ~clock:c ~costs:l.lcosts ?faults:l.lfaults ~trace:l.ltrace
          ?capacity:l.lcapacity ()
    | None ->
        pair ~costs:l.lcosts ?faults:l.lfaults ~trace:l.ltrace
          ?capacity:l.lcapacity ()
  in
  (match l.l_reactor with
  | Some r ->
      (* one call covers both: client and server share the same dirs *)
      attach_reactor r client
  | None -> ());
  Queue.push server l.queue;
  (match l.l_h with Some h -> Reactor.signal h | None -> ());
  Trace.instant l.ltrace ~name:"chan.connect" ~pid:net_pid;
  Fiber.progress ();
  client

let accept l =
  let ready () = not (Queue.is_empty l.queue) || l.down in
  (match l.l_h with
  | Some h when Fiber.in_scheduler () ->
      Reactor.wait h ~what:"incoming connection" ~ready
  | _ -> Fiber.wait_until ~what:"incoming connection" ready);
  let r = Queue.take_opt l.queue in
  if Option.is_some r then Trace.instant l.ltrace ~name:"chan.accept" ~pid:net_pid;
  r

let shutdown l =
  l.down <- true;
  (* Connections already queued but never to be accepted are reset, so
     their clients see EOF instead of waiting forever. *)
  Queue.iter kill l.queue;
  Queue.clear l.queue;
  (* Parked acceptors wake to the [down] flag; no new registrations. *)
  (match l.l_h with Some h -> Reactor.kill h | None -> ());
  Fiber.progress ()

let pending l = Queue.length l.queue
let refused l = l.refused

let register_metrics ?(name = "chan.listener") m l =
  Metrics.register m ~name ~kind:Metrics.Counter (fun () ->
      [ ("chan.refused", l.refused) ]);
  Metrics.register m ~name:(name ^ ".gauges") (fun () ->
      [ ("chan.pending", Queue.length l.queue) ])
