(** Admission control, connection deadlines, and graceful drain — the
    resource-governance front door shared by every partitioned server.

    A guard caps concurrent connections (overflow is rejected with a
    protocol-specific answer and closed), enforces header and idle
    deadlines on the simulated clock (slow-loris defense), and drains:
    stop accepting, finish in-flight connections under a deadline, then
    force-close stragglers.

    Deadline cuts use {!Chan.abort}, so the worker compartment sees EOF
    on read and a {e contained} fault on write — the listener survives.

    Two self-healing attachments (both optional):

    - a per-backend {e circuit breaker} over reported worker outcomes:
      closed → open on a consecutive-failure streak or a window failure
      rate, open sheds every admission ({!decision} [Shed]) for a cooling
      period, then half-open lets a few probes through — all succeeding
      closes it, any failing reopens it.  Below the trip point, a window
      failure rate at the brownout threshold sheds every second admission
      (partial load shedding while the backend flaps);

    - a {!Watchdog}: every admitted connection gets a heart armed in its
      serve fiber, beaten by delivered bytes and {!established}, so a
      hung worker is cut and cancelled within its heartbeat deadline. *)

type t
type conn

type breaker_state = Closed | Open | Half_open

val breaker_state_to_string : breaker_state -> string

type breaker_config

val breaker_config :
  ?consecutive:int ->
  ?rate:float ->
  ?min_samples:int ->
  ?window_ns:int ->
  ?open_ns:int ->
  ?probes:int ->
  ?brownout:float ->
  unit ->
  breaker_config
(** Trip on [consecutive] (default 3) straight failures, or a failure
    rate of [rate] (default 0.5) over at least [min_samples] (default 8)
    outcomes within [window_ns] (default 20_000) of simulated time.  Stay
    open for [open_ns] (default 10_000), then admit [probes] (default 2)
    half-open probes.  Brownout-shed every second admission while the
    window failure rate is at least [brownout] (default 0.25).
    @raise Invalid_argument on non-positive thresholds or windows. *)

type decision = Admitted of conn | Busy | Draining | Shed

type stats = {
  s_active : int;
  s_admitted : int;
  s_rejected_busy : int;
  s_rejected_draining : int;
  s_timed_out : int;  (** connections cut by a deadline or stall *)
  s_forced : int;  (** connections force-closed by {!drain} *)
  s_shed : int;  (** admissions shed by the breaker or brownout *)
  s_breaker_opened : int;  (** times the breaker tripped *)
}

val create :
  ?clock:Wedge_sim.Clock.t ->
  ?header_deadline_ns:int ->
  ?idle_deadline_ns:int ->
  ?breaker:breaker_config ->
  ?watchdog:Watchdog.t ->
  ?reactor:Wedge_sim.Reactor.t ->
  ?trace:Wedge_sim.Trace.t ->
  max_conns:int ->
  unit ->
  t
(** [header_deadline_ns] bounds the time from admission to
    {!established} (e.g. handshake + first request line);
    [idle_deadline_ns] bounds the gap between reads thereafter.  Both —
    and [breaker] — need [clock].  [trace] records admission decisions
    (["guard.admit"/"guard.reject.busy"/"guard.reject.draining"]), cuts
    (["guard.cut"]), drain spans, and breaker transitions
    (["guard.breaker.open"/"half_open"/"close"/"shed"]).

    [reactor] (which must share [clock]) switches the guard to
    event-driven blocking: admitted connections are
    {!Chan.attach_reactor}ed so their readers park instead of
    spin-polling, deadlines become timer-wheel entries (fire-and-re-check
    — O(1) per read, no per-read cancellation), {!accept_loop} parks on
    the accept queue and drains connect bursts in one wake, and the
    watchdog (when also present) is swept from the reactor's timer tick
    instead of worker poll loops.  Without it every historical spin/poll
    path is preserved byte-for-byte.
    @raise Invalid_argument on a deadline, breaker or reactor without a
    clock, a reactor on a different clock, or [max_conns <= 0]. *)

val admit : t -> Chan.ep -> decision
(** Claim a slot.  [Busy] when at [max_conns], [Draining] once {!drain}
    started, [Shed] when the breaker is open (or half-open beyond its
    probe budget, or brownout alternation fires); all are counted and the
    caller must reject + close.  The breaker is consulted {e before}
    capacity: shedding refuses work without burning a slot. *)

val report : conn -> ok:bool -> unit
(** Feed this connection's outcome to the breaker (idempotent per
    connection; no-op without a breaker).  Servers call it where they
    decide served-vs-degraded. *)

val breaker_state : t -> breaker_state option
val breaker_reactions : t -> int list
(** Trip latencies (first failure of a streak → open), oldest first —
    the MTTR benchmark's breaker reaction rows. *)

val breaker_summary : t -> string
(** Deterministic one-liner, e.g. ["closed opened=2 shed=5"]; ["-"]
    without a breaker. *)

val release : conn -> unit
(** Give the slot back; idempotent.  Always call (e.g. [Fun.protect
    ~finally]) or {!drain} will wait on a ghost. *)

val established : conn -> unit
(** The connection passed its handshake/greeting: the header deadline no
    longer applies and the idle clock restarts. *)

val rearm_heart : conn -> unit
(** Replace the connection's watchdog heart with a freshly armed one
    (watching the same endpoint).  A cut leaves the old heart hung so the
    stalled worker's late beat dies contained; a supervisor retrying the
    worker in the same serve fiber passes this as its [on_restart] hook,
    so the new attempt starts with a clean beat history instead of being
    killed for its predecessor's hang.  No-op without a watchdog. *)

val ep : conn -> Chan.ep

val overdue : conn -> bool
val cut : conn -> unit
(** Abort the connection (counted in [s_timed_out]); idempotent. *)

val endpoint : conn -> Wedge_kernel.Fd_table.endpoint
(** Deadline-aware descriptor target for the worker compartment: reads
    poll instead of block, returning EOF once the connection is overdue
    or the whole system stalls waiting on a silent client — always
    before the fiber scheduler's deadlock detector fires.  Under a
    reactor-driven guard, reads park instead of polling, the endpoint's
    [ep_wait] parks {e before} the syscall trap (an idle connection
    charges zero syscall fuel), and the vectored [ep_readv]/[ep_writev]
    paths carry the same deadline/heartbeat bookkeeping as reads. *)

val accept_loop :
  t ->
  Chan.listener ->
  reject:(decision -> Chan.ep -> unit) ->
  serve:(conn -> unit) ->
  unit
(** Accept until the listener shuts down.  Admitted connections are
    served in their own fiber with the slot auto-released; rejected ones
    get [reject] (best-effort, exceptions swallowed) then close. *)

val drain : ?deadline_ns:int -> t -> Chan.listener -> unit
(** Stop accepting (shuts the listener down, resetting queued
    connections), wait for in-flight connections to release, and
    force-abort the remainder when [deadline_ns] of simulated time
    passes or the system stalls.  Guaranteed to terminate. *)

val active : t -> int
(** Connections currently holding a slot — O(1), maintained at
    admit/release (never a list walk). *)

val draining : t -> bool
val stats : t -> stats

val self_check : t -> string option
(** Internal-consistency audit for the invariant oracle: [None] when the
    O(1) active counter equals the live-connection list length, no
    released connection lingers on the list, and the counter respects
    [max_conns]; otherwise [Some description] of the drift. *)

val register_metrics : ?name:string -> Wedge_sim.Metrics.t -> t -> unit
(** Expose the admission counters (["guard.admitted"],
    ["guard.rejected_busy"], ["guard.rejected_draining"],
    ["guard.timed_out"], ["guard.forced"]) and the ["guard.active"]
    gauge.  [name] (default ["guard"]) keys the source. *)
