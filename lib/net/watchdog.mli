(** Hang detection: per-compartment heartbeat deadlines on the simulated
    clock.

    A crash is contained the instant it happens; a {e hang} (stalled
    fiber, silent peer, livelocked callgate) is invisible until a missing
    heartbeat betrays it.  Work units {!arm} a {!heart}; progress
    {!beat}s it; {!sweep} — composed into {!Wedge_sim.Fiber.run}'s
    [on_switch] hook via {!hook} — cuts any heart whose last beat is
    older than its deadline: watched endpoints are aborted
    ({!Chan.abort}) and the armed fiber cancelled
    ({!Wedge_sim.Fiber.cancel}), so the hung compartment dies as a
    contained fault its supervisor can restart.  No hung compartment
    outlives its deadline by more than one scheduling step. *)

type t
type heart

exception Hang of string
(** Raised by {!beat} on a heart that was already cut — the worker woke
    up after teardown and must die contained (registered as an engine
    fault class at link time, like [Chan.Refused]). *)

val create : ?trace:Wedge_sim.Trace.t -> deadline_ns:int -> Wedge_sim.Clock.t -> t
(** [deadline_ns] is the default heart deadline; cuts are traced as
    ["watchdog.cut"] instants.
    @raise Invalid_argument when [deadline_ns <= 0]. *)

val arm : ?name:string -> ?deadline_ns:int -> t -> heart
(** Start watching the calling fiber (the id is captured here — arm from
    inside the fiber that serves the work).  The first beat is implicit. *)

val watch : heart -> Chan.ep -> unit
(** Abort [ep] when the heart is cut. *)

val beat : heart -> unit
(** Record progress.  No-op when disarmed.
    @raise Hang when the heart was already cut. *)

val disarm : heart -> unit
(** Stop watching (normal completion).  A hung heart stays hung for
    accounting. *)

val overdue : heart -> bool
val hung : heart -> bool

val cut : heart -> unit
(** Force the cut now (idempotent): abort watched endpoints, cancel the
    armed fiber, count it. *)

val sweep : t -> unit
(** Cut every overdue heart. *)

val hook : t -> unit -> unit
(** [hook t] is [sweep] shaped for [Fiber.run ~on_switch] — compose it
    before invariant checks so {!self_check} holds at every switch. *)

val cuts : t -> int
val beats : t -> int
val armed : t -> int
(** Hearts currently alive (not hung, not disarmed). *)

val self_check : ?slack_ns:int -> t -> string option
(** Oracle invariant: [Some description] when a live heart is overdue by
    more than [slack_ns] (default 0) beyond its deadline without having
    been cut — i.e. the sweep failed to act.  Run after {!sweep} in the
    same hook. *)

val register_metrics : ?name:string -> Wedge_sim.Metrics.t -> t -> unit
(** Counters ["watchdog.cuts"]/["watchdog.beats"] and gauge
    ["watchdog.armed"]. *)
