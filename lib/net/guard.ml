(* Admission control and connection deadlines shared by every server.

   A guard sits between a listener and the per-connection compartments:
   it caps concurrent connections (overflow gets a protocol-specific
   rejection and an immediate close), enforces header/idle deadlines on
   the simulated clock so a slow-loris client is cut instead of pinning a
   worker forever, and offers [drain] — stop accepting, let in-flight
   connections finish under a deadline, then force-close stragglers.

   Cutting always goes through [Chan.abort]: the worker compartment sees
   EOF on read and a contained [Fault_plan.Injected] on write, both of
   which the engine maps to a compartment fault.  Never [Chan.close],
   whose [Invalid_argument] on a subsequent worker write would escape
   containment and kill the listener. *)

module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics

type t = {
  max_conns : int;
  header_deadline_ns : int option;
  idle_deadline_ns : int option;
  clock : Clock.t option;
  trace : Trace.t;
  mutable conns : conn list;
  mutable active_n : int;
      (* |conns|, maintained at admit/release so the admission check is
         O(1) — the list itself stays for drain/overdue iteration only *)
  mutable draining : bool;
  mutable admitted : int;
  mutable rejected_busy : int;
  mutable rejected_draining : int;
  mutable timed_out : int;
  mutable forced : int;
}

and conn = {
  g : t;
  ep : Chan.ep;
  opened_ns : int;
  mutable is_established : bool;
  mutable last_read_ns : int;
  mutable is_cut : bool;
  mutable is_released : bool;
      (* makes [release] idempotent without scanning the list to find
         out whether this conn was still in it *)
}

type decision = Admitted of conn | Busy | Draining

type stats = {
  s_active : int;
  s_admitted : int;
  s_rejected_busy : int;
  s_rejected_draining : int;
  s_timed_out : int;
  s_forced : int;
}

(* Spin thresholds, ordered below the fiber scheduler's deadlock detector
   (10_000): governance must always act first, converting a wedged
   connection into a contained cut rather than a scheduler crash. *)
let guard_spins = 2_000
let drain_spins = 5_000

let create ?clock ?header_deadline_ns ?idle_deadline_ns ?(trace = Trace.null)
    ~max_conns () =
  if max_conns <= 0 then invalid_arg "Guard.create: max_conns <= 0";
  (match (header_deadline_ns, idle_deadline_ns, clock) with
  | (Some _, _, None | _, Some _, None) ->
      invalid_arg "Guard.create: deadlines need a clock"
  | _ -> ());
  {
    max_conns;
    header_deadline_ns;
    idle_deadline_ns;
    clock;
    trace;
    conns = [];
    active_n = 0;
    draining = false;
    admitted = 0;
    rejected_busy = 0;
    rejected_draining = 0;
    timed_out = 0;
    forced = 0;
  }

let now t = match t.clock with Some c -> Clock.now c | None -> 0

(* Guard events carry pid 0: admission happens before any compartment
   exists for the connection. *)
let guard_pid = 0

let admit t ep =
  if t.draining then begin
    t.rejected_draining <- t.rejected_draining + 1;
    Trace.instant t.trace ~name:"guard.reject.draining" ~pid:guard_pid;
    Draining
  end
  else if t.active_n >= t.max_conns then begin
    t.rejected_busy <- t.rejected_busy + 1;
    Trace.instant t.trace ~name:"guard.reject.busy" ~pid:guard_pid;
    Busy
  end
  else begin
    let n = now t in
    let c =
      {
        g = t;
        ep;
        opened_ns = n;
        is_established = false;
        last_read_ns = n;
        is_cut = false;
        is_released = false;
      }
    in
    t.conns <- c :: t.conns;
    t.active_n <- t.active_n + 1;
    t.admitted <- t.admitted + 1;
    Trace.instant t.trace ~name:"guard.admit" ~pid:guard_pid;
    Admitted c
  end

let release c =
  (* Idempotent by flag, not by scanning: double releases (worker finally
     + drain force-clear) must be cheap no-ops, not O(n) list walks. *)
  if not c.is_released then begin
    c.is_released <- true;
    let g = c.g in
    g.conns <- List.filter (fun c' -> c' != c) g.conns;
    g.active_n <- g.active_n - 1;
    (* Freeing a slot is global progress: an accept loop or drain waiting
       on the connection count must not read this as a stall. *)
    Fiber.progress ()
  end

let established c =
  c.is_established <- true;
  c.last_read_ns <- now c.g

let ep c = c.ep

let overdue c =
  match c.g.clock with
  | None -> false
  | Some clk ->
      let n = Clock.now clk in
      let header_overdue =
        match c.g.header_deadline_ns with
        | Some d when not c.is_established -> n - c.opened_ns > d
        | _ -> false
      in
      let idle_overdue =
        match c.g.idle_deadline_ns with Some d -> n - c.last_read_ns > d | None -> false
      in
      header_overdue || idle_overdue

let cut c =
  if not c.is_cut then begin
    c.is_cut <- true;
    c.g.timed_out <- c.g.timed_out + 1;
    Trace.instant c.g.trace ~name:"guard.cut" ~pid:guard_pid;
    Chan.abort c.ep
  end

(* Deadline-aware endpoint.  Reads poll rather than block: data ready or
   EOF delegates to the channel (which then cannot block), a passed
   deadline or a globally stalled system cuts the connection and returns
   EOF to the worker.  The worker compartment thus never holds a slot
   past its deadline, and a silent client (never writes, never advances
   the clock) is detected by the stall check before the scheduler's
   deadlock detector fires. *)
let guarded_read c n =
  if c.is_cut then Bytes.empty
  else if overdue c then begin
    cut c;
    Bytes.empty
  end
  else begin
    let has_deadline =
      c.g.header_deadline_ns <> None || c.g.idle_deadline_ns <> None
    in
    if not has_deadline then Chan.read c.ep n
    else begin
      let rec wait last spins =
        if Chan.bytes_in_flight c.ep > 0 || Chan.is_eof c.ep then `Ready
        else if c.is_cut then `Cut
        else if overdue c then `Timeout
        else if Fiber.stamp () = last && spins > guard_spins then `Timeout
        else begin
          Fiber.yield ();
          let s = Fiber.stamp () in
          if s = last then wait last (spins + 1) else wait s 0
        end
      in
      match wait (Fiber.stamp ()) 0 with
      | `Cut -> Bytes.empty
      | `Timeout ->
          cut c;
          Bytes.empty
      | `Ready ->
          let b = Chan.read c.ep n in
          if Bytes.length b > 0 then c.last_read_ns <- now c.g;
          b
    end
  end

let endpoint c =
  {
    Wedge_kernel.Fd_table.ep_read = (fun n -> guarded_read c n);
    ep_write = (fun b -> Chan.write c.ep b);
    ep_close = (fun () -> Chan.close c.ep);
    ep_eof = (fun () -> c.is_cut || Chan.is_eof c.ep);
    ep_desc = "guarded-chan";
  }

let accept_loop t l ~reject ~serve =
  let rec loop () =
    match Chan.accept l with
    | None -> ()
    | Some ep ->
        (match admit t ep with
        | Admitted c ->
            Fiber.spawn (fun () ->
                Fun.protect ~finally:(fun () -> release c) (fun () -> serve c))
        | (Busy | Draining) as d ->
            (* Rejection is best-effort: a client that vanished before we
               answer must not take the accept loop down. *)
            (try reject d ep with _ -> ());
            (try Chan.close ep with _ -> ()));
        loop ()
  in
  loop ()

(* Drain state machine: accepting -> draining (listener down, in-flight
   finishing) -> forced (deadline or global stall: every remaining
   connection aborted) -> drained.  Termination is guaranteed: once
   forced, a second full stall window clears the connection list — the
   workers have already been cut, their slots are forfeit. *)
let drain ?deadline_ns t l =
  t.draining <- true;
  Trace.span_begin t.trace ~name:"guard.drain" ~pid:guard_pid;
  Chan.shutdown l;
  let deadline =
    match (deadline_ns, t.clock) with
    | Some d, Some clk -> Some (Clock.now clk + d)
    | Some _, None -> invalid_arg "Guard.drain: deadline needs a clock"
    | None, _ -> None
  in
  let forced = ref false in
  let force () =
    if not !forced then begin
      forced := true;
      Trace.instant t.trace ~name:"guard.drain.forced" ~pid:guard_pid;
      List.iter
        (fun c ->
          if not c.is_cut then begin
            c.is_cut <- true;
            t.forced <- t.forced + 1;
            Chan.abort c.ep
          end)
        t.conns
    end
  in
  (* Already-forced stragglers whose workers never ran their finally:
     their slots are forfeit — mark each released so a late [release]
     stays a no-op and the active count agrees with the emptied list. *)
  let forfeit () =
    List.iter (fun c -> c.is_released <- true) t.conns;
    t.conns <- [];
    t.active_n <- 0
  in
  let rec loop last spins =
    if t.conns <> [] then begin
      (match (deadline, t.clock) with
      | Some d, Some clk when Clock.now clk >= d -> force ()
      | _ -> ());
      if Fiber.stamp () = last && spins > drain_spins then
        if !forced then forfeit ()
        else begin
          force ();
          loop last 0
        end
      else begin
        Fiber.yield ();
        let s = Fiber.stamp () in
        if s = last then loop last (spins + 1) else loop s 0
      end
    end
  in
  loop (Fiber.stamp ()) 0;
  Trace.span_end t.trace ~name:"guard.drain" ~pid:guard_pid

let active t = t.active_n
let draining t = t.draining

(* Internal-consistency audit for the invariant oracle: the O(1) counter
   must agree with the list it shadows, and a released connection must
   never linger in the list (release removes it under the same flag that
   makes it idempotent — drift between the two means a double-admit or a
   lost release). *)
let self_check t =
  let n = List.length t.conns in
  if t.active_n <> n then
    Some
      (Printf.sprintf "guard: active_n = %d but %d live connections" t.active_n n)
  else
    match List.find_opt (fun c -> c.is_released) t.conns with
    | Some _ -> Some "guard: released connection still on the live list"
    | None ->
        if t.active_n > t.max_conns then
          Some
            (Printf.sprintf "guard: active_n = %d exceeds max_conns = %d"
               t.active_n t.max_conns)
        else None

let stats t =
  {
    s_active = t.active_n;
    s_admitted = t.admitted;
    s_rejected_busy = t.rejected_busy;
    s_rejected_draining = t.rejected_draining;
    s_timed_out = t.timed_out;
    s_forced = t.forced;
  }

let register_metrics ?(name = "guard") m t =
  Metrics.register m ~name ~kind:Metrics.Counter (fun () ->
      [
        ("guard.admitted", t.admitted);
        ("guard.rejected_busy", t.rejected_busy);
        ("guard.rejected_draining", t.rejected_draining);
        ("guard.timed_out", t.timed_out);
        ("guard.forced", t.forced);
      ]);
  Metrics.register m ~name:(name ^ ".gauges") (fun () ->
      [ ("guard.active", t.active_n) ])
