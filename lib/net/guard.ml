(* Admission control and connection deadlines shared by every server.

   A guard sits between a listener and the per-connection compartments:
   it caps concurrent connections (overflow gets a protocol-specific
   rejection and an immediate close), enforces header/idle deadlines on
   the simulated clock so a slow-loris client is cut instead of pinning a
   worker forever, and offers [drain] — stop accepting, let in-flight
   connections finish under a deadline, then force-close stragglers.

   Cutting always goes through [Chan.abort]: the worker compartment sees
   EOF on read and a contained [Fault_plan.Injected] on write, both of
   which the engine maps to a compartment fault.  Never [Chan.close],
   whose [Invalid_argument] on a subsequent worker write would escape
   containment and kill the listener. *)

module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics
module Reactor = Wedge_sim.Reactor

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)

(* Per-backend breaker over worker outcomes ([report]).  Closed → Open on
   either [bc_consecutive] straight failures or a failure rate of at
   least [bc_rate] over [bc_min_samples]+ outcomes inside [bc_window_ns];
   Open sheds every admission for [bc_open_ns]; Half_open lets
   [bc_probes] probe connections through — all succeeding closes the
   breaker, any failing reopens it.  While still Closed but with the
   window failure rate at [bc_brownout] or above, every second admission
   is shed (brownout): partial load shedding before the full trip. *)

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker_config = {
  bc_consecutive : int;
  bc_rate : float;
  bc_min_samples : int;
  bc_window_ns : int;
  bc_open_ns : int;
  bc_probes : int;
  bc_brownout : float;
}

let breaker_config ?(consecutive = 3) ?(rate = 0.5) ?(min_samples = 8)
    ?(window_ns = 20_000) ?(open_ns = 10_000) ?(probes = 2) ?(brownout = 0.25) () =
  if consecutive <= 0 || min_samples <= 0 || probes <= 0 then
    invalid_arg "Guard.breaker_config: thresholds must be positive";
  if window_ns <= 0 || open_ns <= 0 then
    invalid_arg "Guard.breaker_config: windows must be positive";
  {
    bc_consecutive = consecutive;
    bc_rate = rate;
    bc_min_samples = min_samples;
    bc_window_ns = window_ns;
    bc_open_ns = open_ns;
    bc_probes = probes;
    bc_brownout = brownout;
  }

type breaker = {
  bcfg : breaker_config;
  mutable b_state : breaker_state;
  mutable b_events : (int * bool) list;  (* (ns, ok) outcomes, newest first *)
  mutable b_consecutive : int;  (* current failure streak *)
  mutable b_first_failure_ns : int;  (* streak start, -1 outside one *)
  mutable b_opened_at : int;
  mutable b_probes_admitted : int;
  mutable b_probe_successes : int;
  mutable b_brownout_tick : int;  (* alternator: shed every 2nd admit *)
  mutable b_opened : int;  (* times tripped, lifetime *)
  mutable b_shed : int;
  mutable b_reactions : int list;  (* first-failure -> open latency, newest first *)
}

type t = {
  max_conns : int;
  header_deadline_ns : int option;
  idle_deadline_ns : int option;
  clock : Clock.t option;
  trace : Trace.t;
  breaker : breaker option;
  watchdog : Watchdog.t option;
  reactor : Reactor.t option;
      (* reactor-driven mode: admitted connections are attached (their
         readers park instead of spin-polling), deadlines live on the
         timer wheel, and the watchdog is pumped from [on_tick].  [None]
         keeps every historical spin/poll path byte-for-byte. *)
  mutable conns : conn list;
  mutable active_n : int;
      (* |conns|, maintained at admit/release so the admission check is
         O(1) — the list itself stays for drain/overdue iteration only *)
  mutable draining : bool;
  mutable admitted : int;
  mutable rejected_busy : int;
  mutable rejected_draining : int;
  mutable timed_out : int;
  mutable forced : int;
}

and conn = {
  g : t;
  ep : Chan.ep;
  opened_ns : int;
  mutable is_established : bool;
  mutable last_read_ns : int;
  mutable is_cut : bool;
  mutable is_released : bool;
      (* makes [release] idempotent without scanning the list to find
         out whether this conn was still in it *)
  mutable is_probe : bool;  (* admitted through a half-open breaker *)
  mutable is_reported : bool;  (* outcome already fed to the breaker *)
  mutable heart : Watchdog.heart option;
}

type decision = Admitted of conn | Busy | Draining | Shed

type stats = {
  s_active : int;
  s_admitted : int;
  s_rejected_busy : int;
  s_rejected_draining : int;
  s_timed_out : int;
  s_forced : int;
  s_shed : int;
  s_breaker_opened : int;
}

(* Spin thresholds, ordered below the fiber scheduler's deadlock detector
   (10_000): governance must always act first, converting a wedged
   connection into a contained cut rather than a scheduler crash. *)
let guard_spins = 2_000
let drain_spins = 5_000

let create ?clock ?header_deadline_ns ?idle_deadline_ns ?breaker ?watchdog
    ?reactor ?(trace = Trace.null) ~max_conns () =
  if max_conns <= 0 then invalid_arg "Guard.create: max_conns <= 0";
  (match (header_deadline_ns, idle_deadline_ns, clock) with
  | (Some _, _, None | _, Some _, None) ->
      invalid_arg "Guard.create: deadlines need a clock"
  | _ -> ());
  (match (reactor, clock) with
  | Some r, Some c when Reactor.clock r != c ->
      invalid_arg "Guard.create: reactor must share the guard's clock"
  | Some _, None -> invalid_arg "Guard.create: a reactor needs a clock"
  | _ -> ());
  let breaker =
    match (breaker, clock) with
    | None, _ -> None
    | Some _, None -> invalid_arg "Guard.create: a breaker needs a clock"
    | Some bcfg, Some _ ->
        Some
          {
            bcfg;
            b_state = Closed;
            b_events = [];
            b_consecutive = 0;
            b_first_failure_ns = -1;
            b_opened_at = 0;
            b_probes_admitted = 0;
            b_probe_successes = 0;
            b_brownout_tick = 0;
            b_opened = 0;
            b_shed = 0;
            b_reactions = [];
          }
  in
  let t =
    {
      max_conns;
      header_deadline_ns;
      idle_deadline_ns;
      clock;
      trace;
      breaker;
      watchdog;
      reactor;
      conns = [];
      active_n = 0;
      draining = false;
      admitted = 0;
      rejected_busy = 0;
      rejected_draining = 0;
      timed_out = 0;
      forced = 0;
    }
  in
  (* With everyone parked, no poll loop pumps the watchdog — the timer
     sweep does it instead, exactly when simulated time moves. *)
  (match (reactor, watchdog) with
  | Some r, Some w -> Reactor.on_tick r (fun () -> Watchdog.sweep w)
  | _ -> ());
  t

let now t = match t.clock with Some c -> Clock.now c | None -> 0

(* Guard events carry pid 0: admission happens before any compartment
   exists for the connection. *)
let guard_pid = 0

(* Clock-driven breaker transition: an open breaker ages into half-open
   once [bc_open_ns] has passed — checked lazily at every admission and
   report, so no timer fiber is needed. *)
let breaker_tick t b =
  if b.b_state = Open && now t - b.b_opened_at >= b.bcfg.bc_open_ns then begin
    b.b_state <- Half_open;
    b.b_probes_admitted <- 0;
    b.b_probe_successes <- 0;
    Trace.instant t.trace ~name:"guard.breaker.half_open" ~pid:guard_pid
  end

let prune_events t b =
  let n = now t in
  b.b_events <- List.filter (fun (ts, _) -> n - ts <= b.bcfg.bc_window_ns) b.b_events

(* Window failure rate; NaN-free: no samples means rate 0. *)
let failure_rate b =
  let total = List.length b.b_events in
  if total = 0 then 0.
  else
    float_of_int (List.length (List.filter (fun (_, ok) -> not ok) b.b_events))
    /. float_of_int total

let shed t b =
  b.b_shed <- b.b_shed + 1;
  Trace.instant t.trace ~name:"guard.breaker.shed" ~pid:guard_pid;
  Shed

(* What the breaker says about admitting one more connection:
   [`Admit is_probe] or [`Shed]. *)
let breaker_decision t =
  match t.breaker with
  | None -> `Admit false
  | Some b -> (
      breaker_tick t b;
      match b.b_state with
      | Open -> `Shed
      | Half_open ->
          if b.b_probes_admitted >= b.bcfg.bc_probes then `Shed
          else begin
            b.b_probes_admitted <- b.b_probes_admitted + 1;
            `Admit true
          end
      | Closed ->
          prune_events t b;
          if
            List.length b.b_events >= b.bcfg.bc_min_samples
            && failure_rate b >= b.bcfg.bc_brownout
          then begin
            (* Brownout: deterministic alternation, not a coin flip —
               every second admission is shed while the backend flaps. *)
            b.b_brownout_tick <- b.b_brownout_tick + 1;
            if b.b_brownout_tick mod 2 = 0 then `Shed else `Admit false
          end
          else `Admit false)

let overdue c =
  match c.g.clock with
  | None -> false
  | Some clk ->
      let n = Clock.now clk in
      let header_overdue =
        match c.g.header_deadline_ns with
        | Some d when not c.is_established -> n - c.opened_ns > d
        | _ -> false
      in
      let idle_overdue =
        match c.g.idle_deadline_ns with Some d -> n - c.last_read_ns > d | None -> false
      in
      header_overdue || idle_overdue

let cut c =
  if not c.is_cut then begin
    c.is_cut <- true;
    c.g.timed_out <- c.g.timed_out + 1;
    Trace.instant c.g.trace ~name:"guard.cut" ~pid:guard_pid;
    Chan.abort c.ep
  end

(* Earliest instant at which [overdue] could flip true (deadlines use
   strict [>], hence the +1).  [None] once released/cut or when no
   deadline applies any more. *)
let next_deadline c =
  if c.is_released || c.is_cut then None
  else
    let hdr =
      match c.g.header_deadline_ns with
      | Some d when not c.is_established -> Some (c.opened_ns + d + 1)
      | _ -> None
    in
    let idle =
      match c.g.idle_deadline_ns with
      | Some d -> Some (c.last_read_ns + d + 1)
      | None -> None
    in
    match (hdr, idle) with
    | Some a, Some b -> Some (min a b)
    | (Some _ as x), None | None, x -> x

(* Fire-and-re-check deadline: one timer per connection, armed at the
   earliest candidate instant.  When it fires the deadline has either
   truly passed (cut — the channel abort wakes the parked worker to EOF)
   or moved (bytes arrived, connection established): arm a fresh timer at
   the new instant.  O(1) per event; no cancellation on the hot read
   path — timers on released/cut connections fire once into a no-op. *)
let rec arm_deadline r c =
  match next_deadline c with
  | None -> ()
  | Some at ->
      ignore
        (Reactor.at r ~ns:at (fun () ->
             if not (c.is_released || c.is_cut) then
               if overdue c then cut c else arm_deadline r c))

let admit t ep =
  if t.draining then begin
    t.rejected_draining <- t.rejected_draining + 1;
    Trace.instant t.trace ~name:"guard.reject.draining" ~pid:guard_pid;
    Draining
  end
  else
    (* Breaker before capacity: shedding exists precisely to refuse work
       without burning a slot or a doomed compartment spawn. *)
    match breaker_decision t with
    | `Shed -> shed t (Option.get t.breaker)
    | `Admit is_probe ->
        if t.active_n >= t.max_conns then begin
          t.rejected_busy <- t.rejected_busy + 1;
          Trace.instant t.trace ~name:"guard.reject.busy" ~pid:guard_pid;
          Busy
        end
        else begin
          let n = now t in
          let c =
            {
              g = t;
              ep;
              opened_ns = n;
              is_established = false;
              last_read_ns = n;
              is_cut = false;
              is_released = false;
              is_probe;
              is_reported = false;
              heart = None;
            }
          in
          t.conns <- c :: t.conns;
          t.active_n <- t.active_n + 1;
          t.admitted <- t.admitted + 1;
          (match t.reactor with
          | Some r ->
              Chan.attach_reactor r ep;
              arm_deadline r c
          | None -> ());
          Trace.instant t.trace ~name:"guard.admit" ~pid:guard_pid;
          Admitted c
        end

(* Feed one connection's outcome to the breaker (idempotent per conn).
   Servers call this where they decide degraded-vs-served; unreported
   connections simply don't move the breaker. *)
let report c ~ok =
  match c.g.breaker with
  | None -> ()
  | Some b ->
      if not c.is_reported then begin
        c.is_reported <- true;
        let t = c.g in
        let n = now t in
        breaker_tick t b;
        b.b_events <- (n, ok) :: b.b_events;
        prune_events t b;
        if ok then begin
          b.b_consecutive <- 0;
          b.b_first_failure_ns <- -1;
          if b.b_state = Half_open && c.is_probe then begin
            b.b_probe_successes <- b.b_probe_successes + 1;
            if b.b_probe_successes >= b.bcfg.bc_probes then begin
              b.b_state <- Closed;
              b.b_events <- [];
              b.b_brownout_tick <- 0;
              Trace.instant t.trace ~name:"guard.breaker.close" ~pid:guard_pid
            end
          end
        end
        else begin
          b.b_consecutive <- b.b_consecutive + 1;
          if b.b_first_failure_ns < 0 then b.b_first_failure_ns <- n;
          let trip ~fresh_detection =
            b.b_state <- Open;
            b.b_opened_at <- n;
            b.b_opened <- b.b_opened + 1;
            (* Reaction time: first failure of this streak to the trip —
               the MTTR benchmark's breaker row.  Only a trip from
               [Closed] is a detection: a failed half-open probe reopens
               at the very instant its failure is recorded, so the
               zero-length "reaction" it used to push dragged the
               benchmark's p50 to 0 while the max stayed honest. *)
            if fresh_detection then
              b.b_reactions <- (n - b.b_first_failure_ns) :: b.b_reactions;
            b.b_consecutive <- 0;
            b.b_first_failure_ns <- -1;
            Trace.instant t.trace ~name:"guard.breaker.open" ~pid:guard_pid
          in
          match b.b_state with
          | Half_open ->
              (* A failed probe reopens immediately. *)
              trip ~fresh_detection:false
          | Closed ->
              if
                b.b_consecutive >= b.bcfg.bc_consecutive
                || List.length b.b_events >= b.bcfg.bc_min_samples
                   && failure_rate b >= b.bcfg.bc_rate
              then trip ~fresh_detection:true
          | Open -> ()
        end
      end

let breaker_state t = Option.map (fun b -> b.b_state) t.breaker

let breaker_reactions t =
  match t.breaker with None -> [] | Some b -> List.rev b.b_reactions

let breaker_summary t =
  match t.breaker with
  | None -> "-"
  | Some b ->
      Printf.sprintf "%s opened=%d shed=%d"
        (breaker_state_to_string b.b_state)
        b.b_opened b.b_shed

let release c =
  (* Idempotent by flag, not by scanning: double releases (worker finally
     + drain force-clear) must be cheap no-ops, not O(n) list walks. *)
  if not c.is_released then begin
    c.is_released <- true;
    (match c.heart with Some h -> Watchdog.disarm h | None -> ());
    let g = c.g in
    g.conns <- List.filter (fun c' -> c' != c) g.conns;
    g.active_n <- g.active_n - 1;
    (* Freeing a slot is global progress: an accept loop or drain waiting
       on the connection count must not read this as a stall. *)
    Fiber.progress ()
  end

let established c =
  c.is_established <- true;
  c.last_read_ns <- now c.g;
  match c.heart with Some h -> Watchdog.beat h | None -> ()

(* Replace this connection's heart with a freshly armed one.  A watchdog
   cut leaves the heart [`Hung] — deliberately, so the stalled worker's
   own late beat dies as a contained [Hang] — but a supervisor retrying
   the worker in the same serve fiber (a pooled restamp) must not inherit
   that state: the new attempt's first delivered byte would beat the dead
   heart and be killed for its predecessor's hang.  Passed as the
   supervisor's [on_restart] hook, so every retry starts with a clean
   beat history. *)
let rearm_heart c =
  match c.g.watchdog with
  | None -> ()
  | Some w ->
      (match c.heart with Some h -> Watchdog.disarm h | None -> ());
      let h = Watchdog.arm ~name:"guard.conn" w in
      Watchdog.watch h c.ep;
      c.heart <- Some h

let ep c = c.ep

(* Deadline-aware endpoint.  Reads poll rather than block: data ready or
   EOF delegates to the channel (which then cannot block), a passed
   deadline or a globally stalled system cuts the connection and returns
   EOF to the worker.  The worker compartment thus never holds a slot
   past its deadline, and a silent client (never writes, never advances
   the clock) is detected by the stall check before the scheduler's
   deadlock detector fires. *)
let guarded_read c n =
  if c.is_cut then Bytes.empty
  else if overdue c then begin
    cut c;
    Bytes.empty
  end
  else if c.g.reactor <> None then begin
    (* Reactor path: park for data/EOF — no polling.  The deadline lives
       on the timer wheel; a cut aborts the channel, which kills its
       interest sets and wakes this park to EOF. *)
    Chan.wait_readable c.ep;
    if c.is_cut then Bytes.empty
    else begin
      let b = Chan.read c.ep n in
      if Bytes.length b > 0 then begin
        c.last_read_ns <- now c.g;
        match c.heart with Some h -> Watchdog.beat h | None -> ()
      end;
      b
    end
  end
  else begin
    let has_deadline =
      c.g.header_deadline_ns <> None || c.g.idle_deadline_ns <> None
    in
    if not has_deadline then Chan.read c.ep n
    else begin
      let rec wait last spins =
        if Chan.bytes_in_flight c.ep > 0 || Chan.is_eof c.ep then `Ready
        else if c.is_cut then `Cut
        else if overdue c then `Timeout
        else if Fiber.stamp () = last && spins > guard_spins then `Timeout
        else begin
          (* The worker's poll loop doubles as a watchdog pump: hearts of
             other wedged connections are swept even when no scheduler
             hook is armed. *)
          (match c.g.watchdog with Some w -> Watchdog.sweep w | None -> ());
          Fiber.yield ();
          let s = Fiber.stamp () in
          if s = last then wait last (spins + 1) else wait s 0
        end
      in
      match wait (Fiber.stamp ()) 0 with
      | `Cut -> Bytes.empty
      | `Timeout ->
          cut c;
          Bytes.empty
      | `Ready ->
          let b = Chan.read c.ep n in
          if Bytes.length b > 0 then begin
            c.last_read_ns <- now c.g;
            (* Progress: delivered bytes beat this connection's heart. *)
            match c.heart with Some h -> Watchdog.beat h | None -> ()
          end;
          b
    end
  end

let endpoint c =
  {
    Wedge_kernel.Fd_table.ep_read = (fun n -> guarded_read c n);
    ep_write = (fun b -> Chan.write c.ep b);
    ep_close = (fun () -> Chan.close c.ep);
    ep_eof = (fun () -> c.is_cut || Chan.is_eof c.ep);
    ep_desc = "guarded-chan";
    (* The engine calls [ep_wait] before charging the syscall trap, so a
       reactor-parked worker burns zero fuel while its client is silent.
       Without a reactor it is a no-op — the historical polled read
       (with its fuel charges) stays byte-for-byte. *)
    ep_wait =
      Some
        (fun () ->
          if c.g.reactor <> None && (not c.is_cut) && not (overdue c) then
            Chan.wait_readable c.ep);
    ep_readv =
      Some
        (fun vm iovs ->
          if c.is_cut then 0
          else if overdue c then begin
            cut c;
            0
          end
          else begin
            let n = Chan.readv c.ep vm iovs in
            if n > 0 then begin
              c.last_read_ns <- now c.g;
              (match c.heart with Some h -> Watchdog.beat h | None -> ())
            end;
            n
          end);
    ep_writev = Some (fun vm iovs -> Chan.writev c.ep vm iovs);
  }

let accept_loop t l ~reject ~serve =
  (* Reactor mode: the acceptor parks on the accept queue and a connect
     burst wakes it once — the level-triggered wait then drains the whole
     backlog without re-parking between connections. *)
  (match t.reactor with Some r -> Chan.attach_listener r l | None -> ());
  let rec loop () =
    match Chan.accept l with
    | None -> ()
    | Some ep ->
        (match admit t ep with
        | Admitted c ->
            Fiber.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> release c)
                  (fun () ->
                    (* Arm the heartbeat from inside the serve fiber: the
                       watchdog cancels this fiber on a cut. *)
                    (match t.watchdog with
                    | Some w ->
                        let h = Watchdog.arm ~name:"guard.conn" w in
                        Watchdog.watch h c.ep;
                        c.heart <- Some h
                    | None -> ());
                    (* A contained fault escaping the serve path (e.g. a
                       watchdog cancellation delivered outside any
                       compartment) kills this connection, never the
                       accept loop. *)
                    try serve c
                    with e when Wedge_core.Engine.fault_reason e <> None -> ()))
        | (Busy | Draining | Shed) as d ->
            (* Rejection is best-effort: a client that vanished before we
               answer must not take the accept loop down. *)
            (try reject d ep with _ -> ());
            (try Chan.close ep with _ -> ()));
        loop ()
  in
  loop ()

(* Drain state machine: accepting -> draining (listener down, in-flight
   finishing) -> forced (deadline or global stall: every remaining
   connection aborted) -> drained.  Termination is guaranteed: once
   forced, a second full stall window clears the connection list — the
   workers have already been cut, their slots are forfeit. *)
let drain ?deadline_ns t l =
  t.draining <- true;
  Trace.span_begin t.trace ~name:"guard.drain" ~pid:guard_pid;
  Chan.shutdown l;
  let deadline =
    match (deadline_ns, t.clock) with
    | Some d, Some clk -> Some (Clock.now clk + d)
    | Some _, None -> invalid_arg "Guard.drain: deadline needs a clock"
    | None, _ -> None
  in
  let forced = ref false in
  let force () =
    if not !forced then begin
      forced := true;
      Trace.instant t.trace ~name:"guard.drain.forced" ~pid:guard_pid;
      List.iter
        (fun c ->
          if not c.is_cut then begin
            c.is_cut <- true;
            t.forced <- t.forced + 1;
            Chan.abort c.ep
          end)
        t.conns
    end
  in
  (* Already-forced stragglers whose workers never ran their finally:
     their slots are forfeit — mark each released so a late [release]
     stays a no-op and the active count agrees with the emptied list. *)
  let forfeit () =
    List.iter (fun c -> c.is_released <- true) t.conns;
    t.conns <- [];
    t.active_n <- 0
  in
  let rec loop last spins =
    if t.conns <> [] then begin
      (match (deadline, t.clock) with
      | Some d, Some clk when Clock.now clk >= d -> force ()
      | _ -> ());
      if Fiber.stamp () = last && spins > drain_spins then
        if !forced then forfeit ()
        else begin
          force ();
          loop last 0
        end
      else begin
        Fiber.yield ();
        let s = Fiber.stamp () in
        if s = last then loop last (spins + 1) else loop s 0
      end
    end
  in
  loop (Fiber.stamp ()) 0;
  Trace.span_end t.trace ~name:"guard.drain" ~pid:guard_pid

let active t = t.active_n
let draining t = t.draining

(* Internal-consistency audit for the invariant oracle: the O(1) counter
   must agree with the list it shadows, and a released connection must
   never linger in the list (release removes it under the same flag that
   makes it idempotent — drift between the two means a double-admit or a
   lost release). *)
let self_check t =
  let n = List.length t.conns in
  if t.active_n <> n then
    Some
      (Printf.sprintf "guard: active_n = %d but %d live connections" t.active_n n)
  else
    match List.find_opt (fun c -> c.is_released) t.conns with
    | Some _ -> Some "guard: released connection still on the live list"
    | None ->
        if t.active_n > t.max_conns then
          Some
            (Printf.sprintf "guard: active_n = %d exceeds max_conns = %d"
               t.active_n t.max_conns)
        else None

let stats t =
  {
    s_active = t.active_n;
    s_admitted = t.admitted;
    s_rejected_busy = t.rejected_busy;
    s_rejected_draining = t.rejected_draining;
    s_timed_out = t.timed_out;
    s_forced = t.forced;
    s_shed = (match t.breaker with Some b -> b.b_shed | None -> 0);
    s_breaker_opened = (match t.breaker with Some b -> b.b_opened | None -> 0);
  }

let register_metrics ?(name = "guard") m t =
  Metrics.register m ~name ~kind:Metrics.Counter (fun () ->
      [
        ("guard.admitted", t.admitted);
        ("guard.rejected_busy", t.rejected_busy);
        ("guard.rejected_draining", t.rejected_draining);
        ("guard.timed_out", t.timed_out);
        ("guard.forced", t.forced);
      ]
      @
      match t.breaker with
      | None -> []
      | Some b ->
          [
            ("guard.breaker.opened", b.b_opened);
            ("guard.breaker.shed", b.b_shed);
          ]);
  Metrics.register m ~name:(name ^ ".gauges") (fun () ->
      ("guard.active", t.active_n)
      ::
      (match t.breaker with
      | None -> []
      | Some b ->
          [
            ( "guard.breaker.state",
              match b.b_state with Closed -> 0 | Half_open -> 1 | Open -> 2 );
          ]))
