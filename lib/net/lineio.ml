(* Buffered line-oriented I/O with an offset cursor.

   The buffer is a flat byte array with read/write positions; consuming a
   line advances [rpos] instead of copying the whole remainder (the old
   Buffer-based version re-copied every buffered byte per line, O(n²)
   over a pipelined session).  [scanned] remembers how far newline
   scanning has progressed so repeated refills never rescan bytes.

   Lines are capped at [max_line] bytes: one hostile client dribbling an
   endless header must not balloon this buffer without bound.  Overflow
   poisons the stream — [read_line] returns [None], [overflowed] turns
   true, and the owning server decides how to reject. *)

type t = {
  recv : int -> bytes;
  send : bytes -> unit;
  mutable data : Bytes.t;
  mutable rpos : int;
  mutable wpos : int;
  mutable scanned : int;  (* rpos <= scanned <= wpos; no '\n' in [rpos, scanned) *)
  mutable eof : bool;
  max_line : int;
  mutable overflow : bool;
}

let default_max_line = 1 lsl 20  (* 1 MiB: far beyond any legitimate line *)

let create ?(max_line = default_max_line) ~recv ~send () =
  if max_line <= 0 then invalid_arg "Lineio.create: max_line <= 0";
  {
    recv;
    send;
    data = Bytes.create 256;
    rpos = 0;
    wpos = 0;
    scanned = 0;
    eof = false;
    max_line;
    overflow = false;
  }

let of_chan ?max_line ep =
  create ?max_line ~recv:(fun n -> Chan.read ep n) ~send:(fun b -> Chan.write ep b) ()

(* Fill-from-readv mode: every refill lands in a staging run of the
   worker's own address space through the vectored kernel-copy path
   ([Chan.readv] — one blocking wait, one fault roll, no intermediate
   channel-side buffer), then lifts into the line buffer.  The Vm checks
   each landing, so a revoked or read-only staging page faults the refill
   cleanly instead of tearing it. *)
let of_chan_readv ?max_line ep vm ~addr ~len =
  if len <= 0 then invalid_arg "Lineio.of_chan_readv: len <= 0";
  let recv n =
    let n = min n len in
    let got = Chan.readv ep vm [| (addr, n) |] in
    if got = 0 then Bytes.empty else Wedge_kernel.Vm.read_bytes vm addr got
  in
  create ?max_line ~recv ~send:(fun b -> Chan.write ep b) ()

let available t = t.wpos - t.rpos
let overflowed t = t.overflow

(* Make room for [n] more bytes: compact in place when the dead prefix
   suffices, otherwise grow geometrically. *)
let ensure_space t n =
  let cap = Bytes.length t.data in
  if t.wpos + n > cap then begin
    let live = available t in
    if live + n <= cap then begin
      Bytes.blit t.data t.rpos t.data 0 live;
      t.scanned <- t.scanned - t.rpos;
      t.rpos <- 0;
      t.wpos <- live
    end
    else begin
      let fresh = Bytes.create (max (cap * 2) (live + n)) in
      Bytes.blit t.data t.rpos fresh 0 live;
      t.data <- fresh;
      t.scanned <- t.scanned - t.rpos;
      t.rpos <- 0;
      t.wpos <- live
    end
  end

let refill t =
  if not t.eof then begin
    let chunk = t.recv 512 in
    let n = Bytes.length chunk in
    if n = 0 then t.eof <- true
    else begin
      ensure_space t n;
      Bytes.blit chunk 0 t.data t.wpos n;
      t.wpos <- t.wpos + n
    end
  end

let find_newline t =
  let rec go i =
    if i >= t.wpos then begin
      t.scanned <- t.wpos;
      None
    end
    else if Bytes.get t.data i = '\n' then Some i
    else go (i + 1)
  in
  go (max t.rpos t.scanned)

let consume t n =
  let s = Bytes.sub_string t.data t.rpos n in
  t.rpos <- t.rpos + n;
  if t.rpos = t.wpos then begin
    t.rpos <- 0;
    t.wpos <- 0;
    t.scanned <- 0
  end
  else if t.scanned < t.rpos then t.scanned <- t.rpos;
  s

(* A line past [max_line] poisons the stream: the buffered bytes are
   dropped and the connection is treated as at EOF — the server layer
   checks [overflowed] to send its protocol-specific rejection before
   closing. *)
let poison t =
  t.overflow <- true;
  t.eof <- true;
  t.rpos <- 0;
  t.wpos <- 0;
  t.scanned <- 0

let read_line t =
  if t.overflow then None
  else
    let rec go () =
      match find_newline t with
      | Some i ->
          let len = i - t.rpos in
          if len > t.max_line then begin
            poison t;
            None
          end
          else begin
            let line = consume t (len + 1) in
            let line = String.sub line 0 len in
            let line =
              if String.length line > 0 && line.[String.length line - 1] = '\r' then
                String.sub line 0 (String.length line - 1)
              else line
            in
            Some line
          end
      | None ->
          if available t > t.max_line then begin
            poison t;
            None
          end
          else if t.eof then
            if available t = 0 then None
            else begin
              (* Final unterminated line: strip a trailing '\r' exactly
                 like the newline path, so "QUIT\r" without a final '\n'
                 parses as "QUIT", not as an unknown command. *)
              let line = consume t (available t) in
              let n = String.length line in
              if n > 0 && line.[n - 1] = '\r' then
                Some (String.sub line 0 (n - 1))
              else Some line
            end
          else begin
            refill t;
            go ()
          end
    in
    go ()

let read_exact t n =
  if t.overflow then None
  else
    let rec go () =
      if available t >= n then Some (Bytes.of_string (consume t n))
      else if t.eof then None
      else begin
        refill t;
        go ()
      end
    in
    go ()

let write t b = t.send b
let write_line t s = t.send (Bytes.of_string (s ^ "\r\n"))
