(* Hang detection for compartments: heartbeats with deadlines on the
   simulated clock.

   A crash is contained by the engine the instant it happens; a *hang*
   (stalled fiber, silent channel peer, livelocked callgate) is invisible
   until something notices the missing heartbeat.  Each watched unit of
   work arms a [heart]; progress beats it; [sweep] — typically composed
   into the fiber scheduler's [on_switch] hook — cuts any heart whose
   last beat is older than its deadline: the watched endpoints are
   aborted ([Chan.abort]: reads become EOF, writes a contained fault) and
   the armed fiber is cancelled ([Fiber.cancel]), so the hung compartment
   dies as a contained [Fiber.Cancelled] fault the supervisor above can
   restart.  [Hang] (raised by a beat arriving after the cut) is
   registered as a contained engine fault class at link time, like
   [Chan.Refused]. *)

module Clock = Wedge_sim.Clock
module Fiber = Wedge_sim.Fiber
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics

exception Hang of string

let () =
  Wedge_core.Engine.register_fault_class (function
    | Hang msg -> Some msg
    | _ -> None)

type t = {
  clock : Clock.t;
  deadline_ns : int;  (* default heart deadline *)
  trace : Trace.t;
  mutable hearts : heart list;
  mutable cuts : int;
  mutable beats : int;
}

and heart = {
  w : t;
  h_name : string;
  h_deadline_ns : int;
  h_fiber : int;  (* cancelled on cut; captured at arm time *)
  mutable h_eps : Chan.ep list;
  mutable h_last_beat : int;
  mutable h_state : [ `Alive | `Hung | `Disarmed ];
}

(* Watchdog events carry pid 0, like the guard's: detection happens in
   the scheduler/monitor, outside any compartment. *)
let watchdog_pid = 0

let create ?(trace = Trace.null) ~deadline_ns clock =
  if deadline_ns <= 0 then invalid_arg "Watchdog.create: deadline_ns <= 0";
  { clock; deadline_ns; trace; hearts = []; cuts = 0; beats = 0 }

let arm ?name:(h_name = "compartment") ?deadline_ns w =
  let h =
    {
      w;
      h_name;
      h_deadline_ns = Option.value deadline_ns ~default:w.deadline_ns;
      h_fiber = Fiber.fiber_id ();
      h_eps = [];
      h_last_beat = Clock.now w.clock;
      h_state = `Alive;
    }
  in
  w.hearts <- h :: w.hearts;
  h

let watch h ep = h.h_eps <- ep :: h.h_eps

let hung h = h.h_state = `Hung

let beat h =
  match h.h_state with
  | `Hung ->
      (* The worker woke up after its connection was already cut: it must
         die contained, charged as a hang, not resume half-torn-down. *)
      raise
        (Hang
           (Printf.sprintf "watchdog: %s beat after cut (deadline %d ns)" h.h_name
              h.h_deadline_ns))
  | `Disarmed -> ()
  | `Alive ->
      h.h_last_beat <- Clock.now h.w.clock;
      h.w.beats <- h.w.beats + 1

let disarm h =
  if h.h_state <> `Hung then h.h_state <- `Disarmed;
  h.w.hearts <- List.filter (fun h' -> h' != h) h.w.hearts

let overdue h =
  h.h_state = `Alive && Clock.now h.w.clock - h.h_last_beat > h.h_deadline_ns

let cut h =
  if h.h_state = `Alive then begin
    h.h_state <- `Hung;
    h.w.cuts <- h.w.cuts + 1;
    Trace.instant h.w.trace ~name:"watchdog.cut" ~pid:watchdog_pid;
    List.iter (fun ep -> try Chan.abort ep with _ -> ()) h.h_eps;
    Fiber.cancel
      ~reason:
        (Printf.sprintf "watchdog: %s hung (deadline %d ns)" h.h_name h.h_deadline_ns)
      h.h_fiber
  end

let sweep w = List.iter (fun h -> if overdue h then cut h) w.hearts

(* Composable scheduler hook: sweep at every context switch, so a heart
   is cut at the first switch after its deadline passes — no hung
   compartment outlives its deadline by more than one scheduling step. *)
let hook w () = sweep w

let cuts w = w.cuts
let beats w = w.beats
let armed w = List.length (List.filter (fun h -> h.h_state = `Alive) w.hearts)

(* Invariant for the oracle: after a sweep, no live heart may be overdue.
   Run the sweep first (the oracle hook composes [hook w] before its
   checks), and this holds at every context switch. *)
let self_check ?(slack_ns = 0) w =
  let now = Clock.now w.clock in
  match
    List.find_opt
      (fun h ->
        h.h_state = `Alive && now - h.h_last_beat > h.h_deadline_ns + slack_ns)
      w.hearts
  with
  | Some h ->
      Some
        (Printf.sprintf "watchdog: %s overdue %d ns past its %d ns deadline, uncut"
           h.h_name
           (now - h.h_last_beat - h.h_deadline_ns)
           h.h_deadline_ns)
  | None -> None

let register_metrics ?(name = "watchdog") m w =
  Metrics.register m ~name ~kind:Metrics.Counter (fun () ->
      [ ("watchdog.cuts", w.cuts); ("watchdog.beats", w.beats) ]);
  Metrics.register m ~name:(name ^ ".gauges") (fun () ->
      [ ("watchdog.armed", armed w) ])
