(* Hostile-client behaviors for exercising the admission layer.

   Each behavior is a complete client script run inside the caller's
   fiber (compose with [Fiber.spawn] for a flood) and records exactly one
   outcome in its tally, so a driver spawning N clients can assert the
   tally sums back to N — no connection may vanish unaccounted.

   Protocol details (request bytes, what a busy-rejection banner looks
   like) are parameters: the same behaviors drive HTTP, POP3 and SSH. *)

module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Fault_plan = Wedge_fault.Fault_plan
module Rlimit = Wedge_kernel.Rlimit

type tally = {
  mutable completed : int;  (* full script ran; got a non-rejection answer *)
  mutable refused : int;  (* connect refused at the backlog *)
  mutable rejected : int;  (* admitted, then told to go away (503 / -ERR busy) *)
  mutable cut : int;  (* reset mid-script: deadline cut, drain force, fault *)
  mutable errors : int;  (* anything unexpected *)
}

let tally () = { completed = 0; refused = 0; rejected = 0; cut = 0; errors = 0 }
let total t = t.completed + t.refused + t.rejected + t.cut + t.errors

let to_string t =
  Printf.sprintf "completed=%d refused=%d rejected=%d cut=%d errors=%d" t.completed
    t.refused t.rejected t.cut t.errors

let read_until_eof ep =
  let buf = Buffer.create 64 in
  let rec go () =
    let b = Chan.read ep 4096 in
    if Bytes.length b = 0 then Buffer.contents buf
    else begin
      Buffer.add_bytes buf b;
      go ()
    end
  in
  go ()

let classify t ~is_rejection resp =
  if resp = "" then t.cut <- t.cut + 1
  else if is_rejection resp then t.rejected <- t.rejected + 1
  else t.completed <- t.completed + 1

(* Connect, run [f], and fold every way the connection can die into the
   tally.  A reset surfaces as [Injected] (abort/fault) or
   [Resource_exhausted] (stalled bounded write) — both count as cut. *)
let with_conn t l f =
  match Chan.connect l with
  | exception Chan.Refused _ ->
      t.refused <- t.refused + 1;
      Fiber.yield ()
  | exception Fault_plan.Injected _ ->
      t.cut <- t.cut + 1;
      Fiber.yield ()
  | exception _ -> t.errors <- t.errors + 1
  | ep ->
      (try f ep with
      | Fault_plan.Injected _ | Rlimit.Resource_exhausted _ -> t.cut <- t.cut + 1
      | _ -> t.errors <- t.errors + 1);
      (try Chan.close ep with _ -> ())

(* Well-formed client: send the whole request, read every response byte
   until the server closes.  The request must drive the server to close
   the session (e.g. end with QUIT). *)
let oneshot t l ~request ~is_rejection =
  with_conn t l (fun ep ->
      Chan.write_string ep request;
      classify t ~is_rejection (read_until_eof ep))

(* Half-close: full request, then shut our write side before reading —
   the server must serve the pipelined commands and treat the EOF as a
   clean goodbye, not an error. *)
let half_close t l ~request ~is_rejection =
  with_conn t l (fun ep ->
      Chan.write_string ep request;
      Chan.close ep;
      classify t ~is_rejection (read_until_eof ep))

(* Slow loris: dribble the request one byte at a time, charging the
   simulated clock between bytes.  Against a guard with a header
   deadline the connection is cut part-way (tallied as cut); without one
   the dribble eventually completes like a oneshot. *)
let slow_loris t l ~clock ~step_ns ~request ~is_rejection =
  with_conn t l (fun ep ->
      String.iter
        (fun ch ->
          Clock.charge clock step_ns;
          Chan.write_string ep (String.make 1 ch);
          Fiber.yield ())
        request;
      classify t ~is_rejection (read_until_eof ep))

(* Oversized request: a single line of [size] filler bytes.  A capped
   parser answers with its too-large rejection ([is_rejection] should
   match it) and closes; an uncapped one would buffer it all. *)
let oversized t l ~size ~is_rejection =
  with_conn t l (fun ep ->
      let blob = String.make size 'A' in
      (* chunked so the server's read loop interleaves with the writes *)
      let chunk = 4096 in
      let rec send off =
        if off < size then begin
          let n = min chunk (size - off) in
          Chan.write_string ep (String.sub blob off n);
          send (off + n)
        end
      in
      send 0;
      Chan.write_string ep "\r\n";
      classify t ~is_rejection (read_until_eof ep))

(* Mid-header staller: send a plausible prefix of the request, then go
   silent forever — a half-written header that never finishes.  Unlike
   slow-loris it makes no further progress at all, so only hang detection
   (a watchdog heartbeat deadline, or the guard's header deadline) can
   reclaim the slot: the worker is blocked mid-read with bytes already
   consumed.  The clock is charged in steps while waiting so deadlines
   actually expire.  Always tallied as cut (the session never completed)
   unless the server improbably answers the half request. *)
let mid_header_stall t l ~clock ~step_ns ?(max_steps = 64) ~prefix ~is_rejection () =
  with_conn t l (fun ep ->
      Chan.write_string ep prefix;
      let rec wait steps =
        Clock.charge clock step_ns;
        Fiber.yield ();
        if Chan.is_eof ep then ()
        else if steps < max_steps then wait (steps + 1)
      in
      wait 0;
      let resp = read_until_eof ep in
      if resp <> "" && is_rejection resp then t.rejected <- t.rejected + 1
      else t.cut <- t.cut + 1)

(* Connect and say nothing: holds a slot until the guard's stall/deadline
   detection cuts it loose.  Tallied as cut when reset, completed if the
   server closes cleanly first. *)
let silent t l =
  with_conn t l (fun ep ->
      (* The server may greet before cutting us; either way the session
         never progressed, so the outcome is always a cut. *)
      ignore (read_until_eof ep);
      t.cut <- t.cut + 1)
