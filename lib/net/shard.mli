(** Sharded multi-kernel fabric: N independent simulated kernels (each
    with its own physical memory, page tables, fd space, clock and
    reactor) joined by directed cross-shard channels, plus the
    cross-shard TLB-shootdown protocol that keeps tag deletion a
    {e global} revocation, and a front door that hashes incoming
    connections to shards.

    Shards are parallel machines: each shard's simulated clock advances
    independently, so an N-shard cluster serves N connection streams in
    parallel simulated time — that is the scale-out win [bench -- scale]
    measures.  One cooperative {!Wedge_sim.Fiber} scheduler multiplexes
    the whole cluster (it is a global singleton); per-shard scheduling
    means per-shard reactors, interest sets and clocks.

    {b Global tags.}  A {!gtag} is a tag replicated on every shard — the
    multikernel form of a shared memory grant.  Deleting {e any} replica
    (plain {!Wedge_core.Wedge.tag_delete}; the fabric rides the engine's
    post-delete hook) completes the local revocation, then posts a
    shootdown request to every peer shard's reactor, where a link
    handler revokes the local replica (bumping the receiving kernel's
    ["tlb.cross_shard_shootdown"] stat and charging one
    [tlb_shootdown]), and acks; the delete returns only after every ack
    — the synchronous contract that makes frame reuse safe.  Peers are
    walked in ascending shard id and handlers wake in fiber-id order, so
    shootdown traces and exploration digests are deterministic. *)

type shard = {
  sid : int;
  kernel : Wedge_kernel.Kernel.t;
  app : Wedge_core.Engine.app;
  reactor : Wedge_sim.Reactor.t;
}

type t

val create : (Wedge_kernel.Kernel.t * Wedge_core.Engine.app) array -> t
(** Wrap caller-built worlds (index = shard id) into a fabric: builds a
    reactor per shard on that shard's clock, the directed link channels
    (attached to the receiving shard's reactor), and arms each app's
    [on_tag_delete] hook with the shootdown broadcast.  Use this when
    shards carry server environments ({!Wedge_httpd.Httpd_env} etc.)
    that build their own apps.
    @raise Invalid_argument on an empty array. *)

val make :
  ?image_pages:int -> ?costs:Wedge_sim.Cost_model.t -> n:int -> unit -> t
(** Convenience: [n] bare booted worlds sharing one cost model. *)

val n : t -> int
val shards : t -> shard array
val shard : t -> int -> shard
val reactors : t -> Wedge_sim.Reactor.t list

val start : t -> unit
(** Spawn the link-handler fibers (one per directed link, parked on the
    receiving shard's reactor).  Must run inside [Fiber.run]; required
    before any gtag delete on a fabric with more than one shard. *)

val stop : t -> unit
(** Close every link (handlers wake to EOF and retire) and wait for them
    — call before the end of the run, or the parked handlers read as a
    deadlock.  Idempotent. *)

val hook : t -> unit -> unit
(** [on_switch] for [Fiber.run]: tick every shard's reactor.  Compose
    manually when oracle hooks are also armed. *)

val idle : t -> unit -> bool
(** [on_idle] for [Fiber.run]: {!Wedge_sim.Reactor.idle_multi} over the
    shard reactors — wake the shard whose earliest timer is nearest on
    its own clock. *)

(** {2 Global tags} *)

type gtag

val gtag_new : ?name:string -> ?pages:int -> t -> gtag
(** Replicate a fresh tag on every shard (via each shard's main
    context). *)

val gtag_id : gtag -> int
val gtag_live : gtag -> bool

val replica : gtag -> sid:int -> Wedge_mem.Tag.t
(** The local replica on shard [sid] — grant it to that shard's
    compartments like any tag. *)

val gtag_delete : t -> sid:int -> gtag -> unit
(** Delete the gtag from shard [sid] (equivalent to
    [Wedge.tag_delete (main ctx of sid) (replica ~sid g)]): local
    revocation, then the cross-shard shootdown broadcast; returns after
    every peer acked.  Must run inside [Fiber.run] with {!start}ed
    handlers when the fabric has peers. *)

val cross_shard_shootdowns : t -> int
(** Sum of ["tlb.cross_shard_shootdown"] over every shard's kernel:
    remote shootdown requests serviced. *)

val self_check : t -> string option
(** Fabric audit, sound at every scheduler sync point: a live gtag has
    all replicas live and nothing in flight; a dead gtag with no
    outstanding acks has {e no} live replica anywhere (a live one is a
    stale grant — the bug the protocol exists to prevent); mid-flight
    live replicas never exceed outstanding acks; the relay re-entrancy
    flag is clear.  [None] when consistent. *)

(** {2 Front door} *)

val shard_hash : string -> int
(** FNV-1a (32-bit) of the connection key — stable across runs and
    hosts, so a key's shard assignment never moves. *)

val route : t -> key:string -> int
(** [shard_hash key mod n]. *)

type front

val front :
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  ?backlog:int ->
  ?header_deadline_ns:int ->
  ?breaker:Guard.breaker_config ->
  ?watchdogs:Watchdog.t array ->
  max_conns:int ->
  t ->
  front
(** Per-shard listener + event-driven {!Guard} (reactor mode on the
    shard's reactor and clock); [max_conns] is per shard.  [costs] and
    [faults] apply to the listeners' channels; [watchdogs] supplies one
    per shard (index = shard id). *)

val front_fabric : front -> t
val front_listener : front -> int -> Chan.listener
val front_guard : front -> int -> Guard.t

val front_connect : front -> key:string -> int * Chan.ep
(** Hash [key] to a shard and connect to its listener; returns the shard
    id with the client endpoint.
    @raise Chan.Refused when that shard's backlog is full. *)

val front_drain : front -> unit
(** {!Guard.drain} every shard's guard against its listener. *)
