(** Simulated duplex byte-stream channels (TCP-connection stand-ins).

    Reads block the calling {!Wedge_sim.Fiber} until data arrives or the
    peer closes; a blocking read charges half a network round trip to the
    simulated clock when one is attached.  Endpoints convert to
    {!Wedge_kernel.Fd_table.endpoint}s so compartments reach the network
    only through descriptor permissions. *)

exception Refused of string
(** A connection attempt was refused: the listener's accept queue is at
    its backlog, or the listener is down (shut down / draining).  Part of
    the engine's contained-fault class (registered at link time), so a
    supervised compartment that reconnects after a drain dies contained —
    and restartable — rather than as a programming error. *)

type ep
(** One end of a duplex channel. *)

val pair :
  ?clock:Wedge_sim.Clock.t ->
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  ?trace:Wedge_sim.Trace.t ->
  ?capacity:int ->
  unit ->
  ep * ep
(** A connected pair of endpoints.  With [faults] attached, reads roll site
    ["chan.read"] and writes ["chan.write"]: [Drop]/[Truncate]/[Reset]
    tear the affected direction(s) down (readers see EOF; writers raise
    {!Wedge_fault.Fault_plan.Injected} — never a blocked peer, so fault
    injection cannot deadlock the cooperative scheduler), [Delay n]
    charges the attached clock, and [Crash] raises [Injected]
    immediately.

    [capacity] bounds in-flight bytes per direction: a writer at the high
    watermark blocks on the fiber scheduler and resumes once the reader
    drains to half.  If the whole system stalls while a writer is blocked
    (the peer will never read), the direction is torn down and the write
    raises {!Wedge_kernel.Rlimit.Resource_exhausted} — contained by the
    engine as a compartment fault, never a scheduler deadlock. *)

val read : ep -> int -> bytes
(** Up to [n] bytes; blocks until at least one byte or EOF; the empty result
    means the peer closed. *)

val read_exact : ep -> int -> bytes option
(** Exactly [n] bytes into one preallocated buffer, or [None] if the peer
    closes first or a faulted direction stops making progress (two
    consecutive empty reads without EOF terminate the loop). *)

val write : ep -> bytes -> unit
val write_string : ep -> string -> unit

val read_into : ep -> Wedge_kernel.Vm.t -> addr:int -> int -> int
(** [read_into ep vm ~addr n] reads up to [n] bytes from the channel and
    lands them directly at [addr] in [vm] through the checked bulk-write
    path (one translation per page, atomic across pages).  Returns the
    byte count; 0 means the peer closed.  A protection fault on the
    destination raises {!Wedge_kernel.Vm.Fault} with no partial write. *)

val write_from : ep -> Wedge_kernel.Vm.t -> addr:int -> len:int -> unit
(** [write_from ep vm ~addr ~len] sends [len] bytes read directly from
    [addr] in [vm] (checked, one translation per page). *)

val close : ep -> unit

val abort : ep -> unit
(** Forced teardown (RST): both directions die, pending bytes are lost;
    subsequent reads see EOF, writes raise a contained
    {!Wedge_fault.Fault_plan.Injected}.  What deadline enforcement and
    drain force-close use. *)

val is_eof : ep -> bool
val bytes_in_flight : ep -> int
(** Bytes buffered toward this endpoint. *)

val capacity : ep -> int option

val to_endpoint : ep -> Wedge_kernel.Fd_table.endpoint
(** Wrap as a descriptor target. *)

(** {2 Listeners} *)

type listener

val listener :
  ?clock:Wedge_sim.Clock.t ->
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  ?trace:Wedge_sim.Trace.t ->
  ?backlog:int ->
  ?capacity:int ->
  unit ->
  listener
(** [faults] is inherited by every accepted connection; {!connect} itself
    rolls site ["chan.connect"] (a fired fault refuses the connection by
    raising {!Wedge_fault.Fault_plan.Injected}).  [trace] records
    ["chan.connect"/"chan.accept"/"chan.refused"] instants and is
    inherited by every connection (["chan.read"/"chan.write"] counters,
    ["chan.abort"] instants).  [backlog] (default 128) caps the accept
    queue: overflow connects raise {!Refused}.  [capacity] is inherited
    by every connection's two directions. *)

val connect : listener -> ep
(** Client side of a fresh connection; the server side is queued for
    {!accept}.
    @raise Refused when the accept queue is at its backlog or the
    listener is down ([refused] counts both). *)

val accept : listener -> ep option
(** Blocks until a connection arrives or the listener shuts down. *)

val shutdown : listener -> unit
(** Stop accepting; still-queued (never-to-be-accepted) connections are
    reset so their clients see EOF rather than blocking forever. *)

val pending : listener -> int

val refused : listener -> int
(** Connects refused over this listener's lifetime (backlog overflow or
    down listener). *)

val register_metrics : ?name:string -> Wedge_sim.Metrics.t -> listener -> unit
(** Expose ["chan.refused"] (counter) and ["chan.pending"] (gauge) to a
    metrics registry.  [name] (default ["chan.listener"]) keys the source
    — pass distinct names to register several listeners. *)
