(** Simulated duplex byte-stream channels (TCP-connection stand-ins).

    Reads block the calling {!Wedge_sim.Fiber} until data arrives or the
    peer closes; a blocking read charges half a network round trip to the
    simulated clock when one is attached.  Endpoints convert to
    {!Wedge_kernel.Fd_table.endpoint}s so compartments reach the network
    only through descriptor permissions. *)

type ep
(** One end of a duplex channel. *)

val pair :
  ?clock:Wedge_sim.Clock.t ->
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  unit ->
  ep * ep
(** A connected pair of endpoints.  With [faults] attached, reads roll site
    ["chan.read"] and writes ["chan.write"]: [Drop]/[Truncate]/[Reset]
    tear the affected direction(s) down (readers see EOF; writers raise
    {!Wedge_fault.Fault_plan.Injected} — never a blocked peer, so fault
    injection cannot deadlock the cooperative scheduler), [Delay n]
    charges the attached clock, and [Crash] raises [Injected]
    immediately. *)

val read : ep -> int -> bytes
(** Up to [n] bytes; blocks until at least one byte or EOF; the empty result
    means the peer closed. *)

val read_exact : ep -> int -> bytes option
(** Exactly [n] bytes, or [None] if the peer closes first. *)

val write : ep -> bytes -> unit
val write_string : ep -> string -> unit
val close : ep -> unit
val is_eof : ep -> bool
val bytes_in_flight : ep -> int
(** Bytes buffered toward this endpoint. *)

val to_endpoint : ep -> Wedge_kernel.Fd_table.endpoint
(** Wrap as a descriptor target. *)

(** {2 Listeners} *)

type listener

val listener :
  ?clock:Wedge_sim.Clock.t ->
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  unit ->
  listener
(** [faults] is inherited by every accepted connection; {!connect} itself
    rolls site ["chan.connect"] (a fired fault refuses the connection by
    raising {!Wedge_fault.Fault_plan.Injected}). *)

val connect : listener -> ep
(** Client side of a fresh connection; the server side is queued for
    {!accept}. *)

val accept : listener -> ep option
(** Blocks until a connection arrives or the listener shuts down. *)

val shutdown : listener -> unit
val pending : listener -> int
