(** Simulated duplex byte-stream channels (TCP-connection stand-ins).

    Reads block the calling {!Wedge_sim.Fiber} until data arrives or the
    peer closes; a blocking read charges half a network round trip to the
    simulated clock when one is attached.  Endpoints convert to
    {!Wedge_kernel.Fd_table.endpoint}s so compartments reach the network
    only through descriptor permissions. *)

exception Refused of string
(** A connection attempt was refused: the listener's accept queue is at
    its backlog, or the listener is down (shut down / draining).  Part of
    the engine's contained-fault class (registered at link time), so a
    supervised compartment that reconnects after a drain dies contained —
    and restartable — rather than as a programming error. *)

type ep
(** One end of a duplex channel. *)

val pair :
  ?clock:Wedge_sim.Clock.t ->
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  ?trace:Wedge_sim.Trace.t ->
  ?capacity:int ->
  unit ->
  ep * ep
(** A connected pair of endpoints.  With [faults] attached, reads roll site
    ["chan.read"] and writes ["chan.write"]: [Drop]/[Truncate]/[Reset]
    tear the affected direction(s) down (readers see EOF; writers raise
    {!Wedge_fault.Fault_plan.Injected} — never a blocked peer, so fault
    injection cannot deadlock the cooperative scheduler), [Delay n]
    charges the attached clock, and [Crash] raises [Injected]
    immediately.

    [capacity] bounds in-flight bytes per direction: a writer at the high
    watermark blocks on the fiber scheduler and resumes once the reader
    drains to half.  If the whole system stalls while a writer is blocked
    (the peer will never read), the direction is torn down and the write
    raises {!Wedge_kernel.Rlimit.Resource_exhausted} — contained by the
    engine as a compartment fault, never a scheduler deadlock. *)

val read : ep -> int -> bytes
(** Up to [n] bytes; blocks until at least one byte or EOF; the empty result
    means the peer closed. *)

val read_exact : ep -> int -> bytes option
(** Exactly [n] bytes into one preallocated buffer, or [None] if the peer
    closes first or a faulted direction stops making progress (two
    consecutive empty reads without EOF terminate the loop). *)

val write : ep -> bytes -> unit
val write_string : ep -> string -> unit

val read_into : ep -> Wedge_kernel.Vm.t -> addr:int -> int -> int
(** [read_into ep vm ~addr n] reads up to [n] bytes from the channel and
    lands them directly at [addr] in [vm] through the checked bulk-write
    path (one translation per page, atomic across pages).  Returns the
    byte count; 0 means the peer closed.  A protection fault on the
    destination raises {!Wedge_kernel.Vm.Fault} with no partial write. *)

val write_from : ep -> Wedge_kernel.Vm.t -> addr:int -> len:int -> unit
(** [write_from ep vm ~addr ~len] sends [len] bytes read directly from
    [addr] in [vm] (checked, one translation per page). *)

val readv : ep -> Wedge_kernel.Vm.t -> (int * int) array -> int
(** [readv ep vm iovs] scatters buffered bytes into the [(addr, len)]
    runs in order through the checked kernel-copy path — one blocking
    wait, one fault-plan roll and one trace count for the whole vector,
    no intermediate buffers.  Returns the byte total; [0] means EOF.
    Bytes are consumed from the channel only after they land, so a
    protection fault on run [k] leaves runs [< k] delivered (a short
    readv) and the rest still buffered — never a torn run, never lost
    bytes. *)

val writev : ep -> Wedge_kernel.Vm.t -> (int * int) array -> int
(** [writev ep vm iovs] gathers the [(addr, len)] runs and sends them as
    one burst — one backpressure wait, one fault-plan roll, one trace
    count.  All runs are read out of the address space {e before} any
    byte reaches the wire, so a protection fault mid-vector delivers
    nothing (no partial-write corruption).  Returns the byte total. *)

val wait_readable : ep -> unit
(** Block until a read would make progress (data buffered, or EOF).  On a
    reactor-attached endpoint the fiber parks — zero scheduler steps and
    zero syscall fuel while idle; otherwise this is the historical
    spin-yield wait.  The engine calls it before the syscall trap. *)

val wait_rx : ?bytes:int -> ep -> unit
(** {!wait_readable} generalized to a minimum byte count (default 1):
    returns once [bytes] are buffered or the direction closed. *)

val attach_reactor : Wedge_sim.Reactor.t -> ep -> unit
(** Drive this connection's blocking through a reactor: readers and
    writers of both directions park on interest sets and are woken in
    batches at sync points instead of spin-polling.  One call covers the
    peer endpoint too (the two ends share their dirs).  Idempotent.
    Unattached endpoints keep the historical spin-yield blocking
    byte-for-byte. *)

val close : ep -> unit

val abort : ep -> unit
(** Forced teardown (RST): both directions die, pending bytes are lost;
    subsequent reads see EOF, writes raise a contained
    {!Wedge_fault.Fault_plan.Injected}.  What deadline enforcement and
    drain force-close use. *)

val is_eof : ep -> bool
val bytes_in_flight : ep -> int
(** Bytes buffered toward this endpoint. *)

val capacity : ep -> int option

val to_endpoint : ep -> Wedge_kernel.Fd_table.endpoint
(** Wrap as a descriptor target. *)

(** {2 Listeners} *)

type listener

val listener :
  ?clock:Wedge_sim.Clock.t ->
  ?costs:Wedge_sim.Cost_model.t ->
  ?faults:Wedge_fault.Fault_plan.t ->
  ?trace:Wedge_sim.Trace.t ->
  ?backlog:int ->
  ?capacity:int ->
  unit ->
  listener
(** [faults] is inherited by every accepted connection; {!connect} itself
    rolls site ["chan.connect"] (a fired fault refuses the connection by
    raising {!Wedge_fault.Fault_plan.Injected}).  [trace] records
    ["chan.connect"/"chan.accept"/"chan.refused"] instants and is
    inherited by every connection (["chan.read"/"chan.write"] counters,
    ["chan.abort"] instants).  [backlog] (default 128) caps the accept
    queue: overflow connects raise {!Refused}.  [capacity] is inherited
    by every connection's two directions. *)

val connect : listener -> ep
(** Client side of a fresh connection; the server side is queued for
    {!accept}.
    @raise Refused when the accept queue is at its backlog or the
    listener is down ([refused] counts both). *)

val accept : listener -> ep option
(** Blocks until a connection arrives or the listener shuts down.  On a
    reactor-attached listener the acceptor parks and a connect burst
    wakes it once — the level-triggered re-check then drains the whole
    backlog without re-parking between connections. *)

val attach_listener : Wedge_sim.Reactor.t -> listener -> unit
(** Park acceptors on the accept queue's interest set, and auto-attach
    ({!attach_reactor}) every connection this listener mints from now
    on.  Idempotent. *)

val shutdown : listener -> unit
(** Stop accepting; still-queued (never-to-be-accepted) connections are
    reset so their clients see EOF rather than blocking forever. *)

val pending : listener -> int

val refused : listener -> int
(** Connects refused over this listener's lifetime (backlog overflow or
    down listener). *)

val register_metrics : ?name:string -> Wedge_sim.Metrics.t -> listener -> unit
(** Expose ["chan.refused"] (counter) and ["chan.pending"] (gauge) to a
    metrics registry.  [name] (default ["chan.listener"]) keys the source
    — pass distinct names to register several listeners. *)
