(* Deterministic fault plan: a seeded PRNG plus per-site rules deciding
   when an injection hook fires.  The plan sits below every other library
   so any layer (scheduler, physical memory, channels, engine) can carry
   an optional reference to one; with no plan attached the hooks are a
   single [None] match and cost nothing measurable.

   Everything is deterministic: the PRNG is splitmix64 from a fixed seed,
   op counters advance only while the plan is armed, and every injection
   appends one line to an in-memory trace — two runs with the same seed
   and the same (deterministic) op sequence produce byte-identical
   traces, which is what makes chaos failures replayable. *)

type kind =
  | Enomem          (* frame allocation fails (simulated ENOMEM) *)
  | Prot_fault      (* spurious protection fault on a checked access *)
  | Drop            (* bytes vanish; the direction is torn down *)
  | Truncate        (* one byte gets through, then the direction dies *)
  | Delay of int    (* simulated nanoseconds charged to the clock *)
  | Reset           (* peer reset: both directions torn down *)
  | Crash           (* the running fiber/compartment dies mid-operation *)

exception Injected of string

let kind_to_string = function
  | Enomem -> "enomem"
  | Prot_fault -> "prot_fault"
  | Drop -> "drop"
  | Truncate -> "truncate"
  | Delay ns -> Printf.sprintf "delay:%d" ns
  | Reset -> "reset"
  | Crash -> "crash"

(* The per-site op counter lives inside the rule so the armed-but-not-firing
   hot path costs exactly one hashtable lookup. *)
type rule = {
  prob : float;
  nth : int option;
  kinds : kind array;
  mutable count : int;
}

type t = {
  seed : int;
  mutable state : int64;
  rules : (string, rule) Hashtbl.t;
  mutable injected : int;
  trace_buf : Buffer.t;
  mutable armed : bool;
}

let create ?(seed = 1) () =
  {
    seed;
    state = Int64.of_int seed;
    rules = Hashtbl.create 8;
    injected = 0;
    trace_buf = Buffer.create 256;
    armed = true;
  }

let seed t = t.seed

(* splitmix64: tiny, well-distributed, and identical on every platform. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let u01 t =
  (* top 53 bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let rule t ~site ?(prob = 0.) ?nth kinds =
  if kinds = [] then invalid_arg "Fault_plan.rule: empty kind list";
  (* Replacing a site's rule keeps its op counter: [nth] computed against
     [site_ops] stays meaningful across re-rules. *)
  let count =
    match Hashtbl.find_opt t.rules site with Some r -> r.count | None -> 0
  in
  Hashtbl.replace t.rules site { prob; nth; kinds = Array.of_list kinds; count }

let arm t = t.armed <- true
let disarm t = t.armed <- false
let armed t = t.armed

let site_ops t ~site =
  match Hashtbl.find_opt t.rules site with Some r -> r.count | None -> 0

let site_op_counts t =
  Hashtbl.fold (fun site r acc -> (site, r.count) :: acc) t.rules []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let injections t = t.injected
let trace t = Buffer.contents t.trace_buf

let pick t (kinds : kind array) =
  if Array.length kinds = 1 then kinds.(0)
  else
    let i = Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1)
                            (Int64.of_int (Array.length kinds))) in
    kinds.(i)

let roll t ~site =
  if not t.armed then None
  else
    match Hashtbl.find_opt t.rules site with
    | None -> None
    | Some r ->
        r.count <- r.count + 1;
        let fire =
          (match r.nth with Some n -> r.count = n | None -> false)
          || (r.prob > 0. && u01 t < r.prob)
        in
        if not fire then None
        else begin
          let k = pick t r.kinds in
          t.injected <- t.injected + 1;
          Buffer.add_string t.trace_buf
            (Printf.sprintf "#%d %s op=%d %s\n" t.injected site r.count (kind_to_string k));
          Some k
        end

(* The common pattern at hook sites that carry a [t option]. *)
let roll_opt plan ~site =
  match plan with None -> None | Some t -> roll t ~site

let fail ~site kind =
  raise (Injected (Printf.sprintf "injected %s at %s" (kind_to_string kind) site))
