(** Deterministic fault injection plans.

    A plan is a seeded PRNG plus per-site rules.  Hook sites scattered
    through the stack ({!Wedge_kernel.Physmem.alloc}, [Vm] checked access,
    [Chan] reads/writes/connects, the fiber scheduler) call {!roll} with a
    site name; the plan decides — deterministically, from the seed and the
    per-site operation count — whether a fault fires and which kind.

    Two runs with the same seed, rules and (deterministic) operation
    sequence produce byte-identical {!trace} output, so any chaos-test
    failure can be replayed exactly. *)

type kind =
  | Enomem          (** frame allocation fails (simulated ENOMEM) *)
  | Prot_fault      (** spurious protection fault on a checked access *)
  | Drop            (** bytes vanish; the channel direction is torn down *)
  | Truncate        (** one byte gets through, then the direction dies *)
  | Delay of int    (** simulated nanoseconds charged to the clock *)
  | Reset           (** peer reset: both channel directions torn down *)
  | Crash           (** the running fiber/compartment dies mid-operation *)

exception Injected of string
(** The catchable fault all channel/fiber injections surface as; the engine
    turns it into compartment termination, like a signal. *)

val kind_to_string : kind -> string

type t

val create : ?seed:int -> unit -> t
(** A fresh plan (armed, no rules).  Default seed 1. *)

val seed : t -> int

val rule : t -> site:string -> ?prob:float -> ?nth:int -> kind list -> unit
(** [rule t ~site ~prob kinds] makes each armed operation at [site] fail
    with probability [prob], choosing uniformly among [kinds].  [nth]
    additionally forces a failure on exactly the [nth] armed operation
    (1-based) — the deterministic "fail the Nth alloc" form.  Replaces any
    previous rule for the site. *)

val arm : t -> unit
val disarm : t -> unit
(** Disarmed plans never fire and do not advance op counters, so setup
    work (server install, tag creation) can be excluded from the plan
    deterministically. *)

val armed : t -> bool

val roll : t -> site:string -> kind option
(** Called by hook sites on every operation: advances the site's op
    counter and returns the fault to inject, if any.  Records fired
    injections in the trace. *)

val roll_opt : t option -> site:string -> kind option
(** {!roll} through the [t option] that hook sites store; [None] plans
    never fire. *)

val fail : site:string -> kind -> 'a
(** Raise {!Injected} describing the fault. *)

val site_ops : t -> site:string -> int
(** Armed operations seen at a site so far. *)

val site_op_counts : t -> (string * int) list
(** All sites with a rule and their op counts, sorted by site name — what
    a metrics registry exports. *)

val injections : t -> int
(** Total faults fired. *)

val trace : t -> string
(** One line per injection: ["#<n> <site> op=<count> <kind>\n"].
    Byte-identical across same-seed runs. *)

val next64 : t -> int64
(** Draw from the plan's PRNG (advances deterministic state). *)

val u01 : t -> float
(** Uniform draw in [0,1). *)
