(* Splitmix64: the same generator family Fault_plan uses, packaged as a
   standalone stream so schedulers, explorers and tests can share one
   seeded, replayable randomness source without dragging in a plan. *)

type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { s = Int64.of_int seed }
let copy t = { s = t.s }

let next64 t =
  t.s <- Int64.add t.s golden;
  mix64 t.s

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int n))

let float t =
  (* 53 uniform bits, as a float in [0,1). *)
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992.0

let derive ~seed i =
  (* A child seed for stream [i] of run [seed]: one finalizer application,
     so neighbouring i values land in unrelated parts of the state space.
     Non-negative so it survives a round trip through command lines. *)
  Int64.to_int
    (Int64.shift_right_logical
       (mix64 (Int64.add (Int64.of_int seed) (Int64.mul golden (Int64.of_int (i + 1)))))
       2)
