(** A seeded splitmix64 stream: deterministic, cheap, and independent of
    the OCaml stdlib's global [Random] state, so every randomized piece of
    the stack (scheduler policies, exploration drivers, property tests)
    can be replayed from a printed integer seed. *)

type t

val create : int -> t
val copy : t -> t

val next64 : t -> int64
(** Advance the state and return 64 fresh bits. *)

val int : t -> int -> int
(** [int t n] draws uniformly (up to negligible modulo bias) in [0, n).
    @raise Invalid_argument when [n <= 0]. *)

val float : t -> float
(** Uniform draw in [0, 1) with 53 bits of precision. *)

val derive : seed:int -> int -> int
(** [derive ~seed i] is the seed for substream [i] of a run seeded with
    [seed] — one hash-finalizer application, so consecutive [i] give
    uncorrelated streams.  Always non-negative. *)
