(** The Wedge-partitioned POP3 server — Figure 1 of the paper, executable.

    Per connection:
    - a {e client handler} sthread parses commands.  It runs as uid 99 with
      an empty chroot, holds read-write on the argument tag, read-only on
      the mail buffer tag, the connection descriptor, and two callgates —
      nothing else;
    - a {e login} callgate (runs as root) verifies credentials against
      /etc/pop3.passwd and writes the authenticated uid into the uid tag,
      which the handler cannot even read;
    - a {e mailbox} callgate reads the uid tag and serves only that user's
      mail into the mail buffer.

    Authentication cannot be bypassed: the mailbox callgate refuses until
    the login callgate has written the uid, and only the login callgate
    holds write permission on that tag. *)

type conn_debug = {
  uid_tag : Wedge_mem.Tag.t option;
  arg_tag : Wedge_mem.Tag.t option;
  mail_tag : Wedge_mem.Tag.t option;
  worker_status : Wedge_kernel.Process.status;
  degraded : bool;  (** this connection was answered with [-ERR] *)
  attempts : int;  (** supervision attempts (0 when setup faulted) *)
}
(** Introspection for tests (tag identities to probe, final worker state).
    The tags are [None] when per-connection setup itself faulted before
    creating them. *)

val serve_connection :
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?supervised:Wedge_core.Supervisor.child ->
  ?guard:Wedge_net.Guard.conn ->
  ?max_line:int ->
  ?worker_limits:Wedge_kernel.Rlimit.t ->
  ?synth:Wedge_crowbar.Synth.t ->
  Wedge_core.Wedge.ctx ->
  Wedge_net.Chan.ep ->
  conn_debug
(** Serve one connection from the master context ([main]); blocks until the
    session ends.  [exploit] runs inside the {e worker} compartment when
    triggered — the paper's attacker model.

    Fault containment: a crash anywhere in this connection degrades only
    this connection (best-effort [-ERR] farewell, [pop3.degraded] counter)
    and never reaches the caller.  [restart_policy] defaults to one retry —
    POP3 is line-oriented, so a fresh handler can greet the client again.
    [supervised] runs the handler under a supervision-tree child instead
    (its policy and intensity budget override [restart_policy]).

    Resource governance: [guard] makes the handler read through the
    deadline-aware endpoint and marks the session established on a
    successful login; [max_line] caps command-line length (overlong
    commands answer [-ERR command line too long] and close);
    [worker_limits] arms per-sthread resource quotas on the handler.

    Profile synthesis: [synth] threads a {!Wedge_crowbar.Synth} session
    through the connection — compartments ["pop3.worker"] (fd role
    ["conn"]), ["pop3.login"] and ["pop3.mailbox"]; in enforce mode the
    profile's entries replace the hand-written security contexts. *)

val worker_pool : ?name:string -> Wedge_core.Wedge.ctx -> Wedge_core.Pool.t
(** Freeze the handler's boot into a snapshot pool (identity dropped to
    uid 99 / empty chroot, heap warmed so the demand-mapped pages join
    the image).  Pass to {!supervision_tree} as [pool] for O(1) worker
    spawn and crash recovery; per-connection grants still ride in at
    stamp time. *)

val supervision_tree :
  ?strategy:Wedge_core.Supervisor.strategy ->
  ?intensity:int ->
  ?window_ns:int ->
  ?healthy_after_ns:int ->
  ?quarantine_ns:int ->
  ?listener_policy:Wedge_core.Supervisor.policy ->
  ?worker_policy:Wedge_core.Supervisor.policy ->
  ?pool:Wedge_core.Pool.t ->
  Wedge_core.Wedge.ctx ->
  Wedge_core.Supervisor.node
  * Wedge_core.Supervisor.child
  * Wedge_core.Supervisor.child
(** The declared POP3 topology: node ["pop3"] with children ["listener"]
    (registered first, default two accept-loop retries) and ["worker"]
    (default one retry, matching {!serve_connection}).  Pass the triple
    to {!serve_loop} as [supervision].  With [pool] (see {!worker_pool})
    every worker attempt is stamped from the frozen image instead of
    fork-priced boot. *)

val serve_loop :
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?max_line:int ->
  ?worker_limits:Wedge_kernel.Rlimit.t ->
  ?supervision:
    Wedge_core.Supervisor.node
    * Wedge_core.Supervisor.child
    * Wedge_core.Supervisor.child ->
  Wedge_core.Wedge.ctx ->
  Wedge_net.Guard.t ->
  Wedge_net.Chan.listener ->
  unit
(** Guarded accept loop: over-capacity or draining connections get
    ["-ERR busy, try again later"] and close (counter [pop3.rejected];
    breaker-shed ones count [pop3.shed]); admitted ones run
    {!serve_connection} in their own fiber, their outcome reported to the
    guard's breaker.  With [supervision] (see {!supervision_tree})
    workers run under "worker" and the accept loop under "listener".
    Returns once the listener shuts down — compose with
    {!Wedge_net.Guard.drain}. *)

val serve_sharded :
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?max_line:int ->
  ?worker_limits:Wedge_kernel.Rlimit.t ->
  Wedge_core.Wedge.ctx array ->
  Wedge_net.Shard.front ->
  unit
(** Spawn one {!serve_loop} fiber per shard: shard [i] serves with its
    own trusted context [mains.(i)] behind the front door's shard-[i]
    guard and listener. *)
