module Lineio = Wedge_net.Lineio

type command =
  | User of string
  | Pass of string
  | Stat
  | List
  | Retr of int
  | Dele of int
  | Quit
  | Xploit
  | Unknown of string

let parse line =
  let line = String.trim line in
  let upper = String.uppercase_ascii in
  match String.index_opt line ' ' with
  | None -> (
      match upper line with
      | "STAT" -> Stat
      | "LIST" -> List
      | "QUIT" -> Quit
      | "XPLOIT" -> Xploit
      | _ -> Unknown line)
  | Some i -> (
      let cmd = upper (String.sub line 0 i) in
      let arg = String.sub line (i + 1) (String.length line - i - 1) in
      match cmd with
      | "USER" -> User arg
      | "PASS" -> Pass arg
      | "RETR" -> ( match int_of_string_opt arg with Some n -> Retr n | None -> Unknown line)
      | "DELE" -> ( match int_of_string_opt arg with Some n -> Dele n | None -> Unknown line)
      | _ -> Unknown line)

type backend = {
  login : user:string -> password:string -> bool;
  stat : unit -> (int * int) option;
  list_mails : unit -> (int * int) list option;
  retr : int -> string option;
  dele : int -> bool;
}

let serve io backend ~exploit =
  let ok fmt = Printf.ksprintf (fun s -> Lineio.write_line io ("+OK " ^ s)) fmt in
  let err fmt = Printf.ksprintf (fun s -> Lineio.write_line io ("-ERR " ^ s)) fmt in
  ok "wedge-pop3 ready";
  let pending_user = ref None in
  let rec loop () =
    match Lineio.read_line io with
    | None ->
        (* An overlong command poisoned the stream: tell the client why
           before the close, instead of silently hanging up. *)
        if Lineio.overflowed io then err "command line too long"
    | Some line -> (
        match parse line with
        | Quit ->
            ok "bye";
            ()
        | User u ->
            pending_user := Some u;
            ok "send PASS";
            loop ()
        | Pass p ->
            (match !pending_user with
            | None -> err "USER first"
            | Some u -> if backend.login ~user:u ~password:p then ok "logged in" else err "auth failed");
            loop ()
        | Stat ->
            (match backend.stat () with
            | Some (n, bytes) -> ok "%d %d" n bytes
            | None -> err "not authenticated");
            loop ()
        | List ->
            (match backend.list_mails () with
            | Some entries ->
                ok "%d messages" (Stdlib.List.length entries);
                Stdlib.List.iter (fun (i, sz) -> Lineio.write_line io (Printf.sprintf "%d %d" i sz)) entries;
                Lineio.write_line io "."
            | None -> err "not authenticated");
            loop ()
        | Retr n ->
            (match backend.retr n with
            | Some body ->
                ok "%d octets" (String.length body);
                Lineio.write io (Bytes.of_string body);
                Lineio.write io (Bytes.of_string "\r\n.\r\n")
            | None -> err "no such message");
            loop ()
        | Dele n ->
            if backend.dele n then ok "deleted" else err "no such message";
            loop ()
        | Xploit ->
            (* The modelled parser vulnerability: attacker code executes in
               this compartment, then the session continues. *)
            (match exploit with Some payload -> payload () | None -> ());
            err "syntax error";
            loop ()
        | Unknown _ ->
            err "unknown command";
            loop ())
  in
  loop ()
