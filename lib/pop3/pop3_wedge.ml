module W = Wedge_core.Wedge
module Prot = Wedge_kernel.Prot
module Fd_table = Wedge_kernel.Fd_table
module Vfs = Wedge_kernel.Vfs
module Kernel = Wedge_kernel.Kernel
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Lineio = Wedge_net.Lineio
module Tag = Wedge_mem.Tag

module Supervisor = Wedge_core.Supervisor
module Synth = Wedge_crowbar.Synth

type conn_debug = {
  uid_tag : Tag.t option;
  arg_tag : Tag.t option;
  mail_tag : Tag.t option;
  worker_status : Wedge_kernel.Process.status;
  degraded : bool;
  attempts : int;
}

(* uid block layout: u8 authed ++ u32 uid ++ u8 namelen ++ name *)
let read_uid_block gctx uid_block =
  if W.read_u8 gctx uid_block <> 1 then None
  else begin
    let uid = W.read_u32 gctx (uid_block + 1) in
    let n = W.read_u8 gctx (uid_block + 5) in
    Some (uid, W.read_string gctx (uid_block + 6) n)
  end

let write_uid_block gctx uid_block ~uid ~name =
  W.write_u8 gctx uid_block 1;
  W.write_u32 gctx (uid_block + 1) uid;
  W.write_u8 gctx (uid_block + 5) (String.length name);
  W.write_string gctx (uid_block + 6) name

(* Length-prefixed string in the mail buffer: u32 len ++ data *)
let write_buf ctx addr s =
  W.write_u32 ctx addr (String.length s);
  W.write_string ctx (addr + 4) s

let read_buf ctx addr =
  let n = W.read_u32 ctx addr in
  W.read_string ctx (addr + 4) n

(* ---------- login callgate (privileged: reads the password db) ---------- *)

let login_entry gctx ~trusted:uid_block ~arg =
  let ulen = W.read_u8 gctx arg in
  let user = W.read_string gctx (arg + 1) ulen in
  let plen = W.read_u8 gctx (arg + 1 + ulen) in
  let password = W.read_string gctx (arg + 2 + ulen) plen in
  match W.vfs_read gctx Pop3_env.passwd_path with
  | Error _ -> 0
  | Ok passwd -> (
      match Pop3_env.lookup_line ~passwd_file:passwd ~user with
      | None -> 0
      | Some line -> (
          match Pop3_env.check_password ~passwd_line:line ~user ~password with
          | Some uid ->
              write_uid_block gctx uid_block ~uid ~name:user;
              1
          | None -> 0))

(* ---------- mailbox callgate (serves only the authenticated uid) ---------- *)

let op_stat = 1
let op_list = 2
let op_retr = 3
let op_dele = 4

let mbox_entry ~mail_block gctx ~trusted:uid_block ~arg =
  match read_uid_block gctx uid_block with
  | None -> -1 (* not authenticated: refuse *)
  | Some (uid, name) -> (
      let vfs = (W.kernel (W.app_of gctx)).Kernel.vfs in
      let dir = Pop3_env.maildir name in
      let mail_path n = Printf.sprintf "%s/%d.eml" dir n in
      (* All file access under the mailbox owner's uid, not root: the gate
         cannot be talked into reading another user's spool. *)
      let read_mail n = Vfs.read_file vfs ~root:"/" ~uid (mail_path n) in
      let listing () =
        match Vfs.readdir vfs ~root:"/" ~uid dir with
        | Error _ -> []
        | Ok files ->
            List.filter_map
              (fun f ->
                match String.split_on_char '.' f with
                | [ n; "eml" ] -> int_of_string_opt n
                | _ -> None)
              files
            |> List.sort compare
      in
      let op = W.read_u8 gctx arg in
      let msgno = W.read_u32 gctx (arg + 1) in
      if op = op_stat then begin
        let entries = listing () in
        let total =
          List.fold_left
            (fun acc n -> match read_mail n with Ok b -> acc + String.length b | Error _ -> acc)
            0 entries
        in
        write_buf gctx mail_block (Printf.sprintf "%d %d" (List.length entries) total);
        1
      end
      else if op = op_list then begin
        let lines =
          List.filter_map
            (fun n ->
              match read_mail n with
              | Ok b -> Some (Printf.sprintf "%d %d" n (String.length b))
              | Error _ -> None)
            (listing ())
        in
        write_buf gctx mail_block (String.concat "\n" lines);
        1
      end
      else if op = op_retr then begin
        match read_mail msgno with
        | Ok body ->
            write_buf gctx mail_block body;
            1
        | Error _ -> 0
      end
      else if op = op_dele then
        match Vfs.unlink vfs ~root:"/" ~uid (mail_path msgno) with Ok () -> 1 | Error _ -> 0
      else -1)

(* ---------- the worker-side backend: everything through callgates ---------- *)

let worker_backend ctx ~login_gate ~mbox_gate ~arg_tag ~arg_block ~mail_block =
  let arg_perms = W.sc_create () in
  W.sc_mem_add arg_perms arg_tag Prot.R;
  let call_mbox op msgno =
    W.write_u8 ctx arg_block op;
    W.write_u32 ctx (arg_block + 1) msgno;
    W.cgate ctx mbox_gate ~perms:arg_perms ~arg:arg_block
  in
  {
    Pop3_proto.login =
      (fun ~user ~password ->
        if String.length user > 100 || String.length password > 100 then false
        else begin
          W.write_u8 ctx arg_block (String.length user);
          W.write_string ctx (arg_block + 1) user;
          W.write_u8 ctx (arg_block + 1 + String.length user) (String.length password);
          W.write_string ctx (arg_block + 2 + String.length user) password;
          W.cgate ctx login_gate ~perms:arg_perms ~arg:arg_block = 1
        end);
    stat =
      (fun () ->
        if call_mbox op_stat 0 = 1 then
          match String.split_on_char ' ' (read_buf ctx mail_block) with
          | [ n; total ] -> Some (int_of_string n, int_of_string total)
          | _ -> None
        else None);
    list_mails =
      (fun () ->
        if call_mbox op_list 0 = 1 then
          Some
            (read_buf ctx mail_block |> String.split_on_char '\n'
            |> List.filter_map (fun line ->
                   match String.split_on_char ' ' line with
                   | [ a; b ] -> (
                       match (int_of_string_opt a, int_of_string_opt b) with
                       | Some a, Some b -> Some (a, b)
                       | _ -> None)
                   | _ -> None))
        else None);
    retr = (fun n -> if call_mbox op_retr n = 1 then Some (read_buf ctx mail_block) else None);
    dele = (fun n -> call_mbox op_dele n = 1);
  }

(* ---------- master: assemble one connection's compartments ---------- *)

(* Degraded goodbye when the handler compartment is gone: best-effort,
   the channel itself may already be reset. *)
let send_degraded main ep =
  W.stat main "pop3.degraded";
  try Chan.write_string ep "-ERR internal server error, closing\r\n" with _ -> ()

let serve_connection ?exploit ?(restart_policy = Supervisor.policy ~max_restarts:1 ())
    ?supervised ?guard ?max_line ?worker_limits ?synth main ep =
  (* Guard the master's own per-connection setup: an injected fault during
     tag creation must degrade this connection, not kill the accept loop. *)
  let created = ref [] in
  let fd_ref = ref None in
  let cleanup () =
    (match !fd_ref with
    | Some fd -> ( try W.fd_close main fd with _ -> ())
    | None -> ());
    Chan.close ep;
    List.iter (fun t -> try W.tag_delete main t with _ -> ()) !created
  in
  match
    (* Per-connection tagged memory. *)
    let uid_tag = W.tag_new ~name:"pop3.uid" ~pages:1 main in
    created := uid_tag :: !created;
    let arg_tag = W.tag_new ~name:"pop3.arg" ~pages:1 main in
    created := arg_tag :: !created;
    let mail_tag = W.tag_new ~name:"pop3.mail" ~pages:8 main in
    created := mail_tag :: !created;
    let uid_block = W.smalloc main 64 uid_tag in
    let arg_block = W.smalloc main 512 arg_tag in
    let mail_block = W.smalloc main 16384 mail_tag in
    W.write_u8 main uid_block 0;
    (* The connection descriptor, created by the master.  With a guard
       attached, reads go through the deadline-aware endpoint: a
       slow-loris client becomes EOF inside the handler, never a pinned
       fiber. *)
    let raw_ep =
      match guard with Some c -> Guard.endpoint c | None -> Chan.to_endpoint ep
    in
    let fd = W.add_endpoint main raw_ep Fd_table.perm_rw in
    fd_ref := Some fd;
    (* Callgates: login may write the uid block; mailbox may read it and fill
       the mail buffer.  Both inherit the master's root identity.  Under an
       enforced synthesized profile the contexts come from the profile
       instead of the hand-written grants. *)
    let conn_tags = [ uid_tag; arg_tag; mail_tag ] in
    let conn_fds = [ ("conn", fd) ] in
    let worker_sc =
      match Synth.sthread_sc synth ~name:"pop3.worker" ~tags:conn_tags ~fds:conn_fds main with
      | Some sc -> sc
      | None ->
          (* The client handler: default-deny plus exactly Figure 1's arrows. *)
          let sc = W.sc_create () in
          W.sc_mem_add sc arg_tag Prot.RW;
          W.sc_mem_add sc mail_tag Prot.R;
          W.sc_fd_add sc fd Fd_table.perm_rw;
          W.sc_set_uid sc 99;
          W.sc_set_root sc "/var/empty";
          sc
    in
    let login_cgsc =
      match Synth.gate_sc synth ~name:"pop3.login" ~tags:conn_tags main with
      | Some sc -> sc
      | None ->
          let sc = W.sc_create () in
          W.sc_mem_add sc uid_tag Prot.RW;
          sc
    in
    let login_gate =
      W.sc_cgate_add main worker_sc ~name:"pop3.login"
        ~entry:(Synth.wrap_gate synth ~name:"pop3.login" login_entry)
        ~cgsc:login_cgsc ~trusted:uid_block
    in
    let mbox_cgsc =
      match Synth.gate_sc synth ~name:"pop3.mailbox" ~tags:conn_tags main with
      | Some sc -> sc
      | None ->
          let sc = W.sc_create () in
          W.sc_mem_add sc uid_tag Prot.R;
          W.sc_mem_add sc mail_tag Prot.RW;
          sc
    in
    let mbox_gate =
      W.sc_cgate_add main worker_sc ~name:"pop3.mailbox"
        ~entry:(Synth.wrap_gate synth ~name:"pop3.mailbox" (mbox_entry ~mail_block))
        ~cgsc:mbox_cgsc ~trusted:uid_block
    in
    (match worker_limits with Some l -> W.sc_set_rlimit worker_sc l | None -> ());
    (uid_tag, arg_tag, mail_tag, arg_block, mail_block, fd, worker_sc, login_gate, mbox_gate)
  with
  | exception e when W.fault_reason e <> None ->
      let reason = Option.get (W.fault_reason e) in
      send_degraded main ep;
      cleanup ();
      {
        uid_tag = None;
        arg_tag = None;
        mail_tag = None;
        worker_status = Wedge_kernel.Process.Faulted ("setup: " ^ reason);
        degraded = true;
        attempts = 0;
      }
  | uid_tag, arg_tag, mail_tag, arg_block, mail_block, fd, worker_sc, login_gate, mbox_gate ->
      let worker_body ctx _ =
            let io =
              Lineio.create ?max_line
                ~recv:(fun n -> W.fd_read ctx fd n)
                ~send:(fun b -> W.fd_write ctx fd b) ()
            in
            let backend =
              worker_backend ctx ~login_gate ~mbox_gate ~arg_tag ~arg_block ~mail_block
            in
            (* A successful login establishes the session: the guard's
               header deadline stops applying and its idle clock restarts. *)
            let backend =
              match guard with
              | None -> backend
              | Some c ->
                  {
                    backend with
                    Pop3_proto.login =
                      (fun ~user ~password ->
                        let ok = backend.Pop3_proto.login ~user ~password in
                        if ok then Guard.established c;
                        ok);
                  }
            in
            let exploit = Option.map (fun payload () -> payload ctx) exploit in
            Pop3_proto.serve io backend ~exploit;
            0
      in
      let worker_main =
        Synth.wrap_sthread synth ~name:"pop3.worker" ~fds:[ ("conn", fd) ] worker_body
      in
      let outcome =
        (* A restamped worker must not inherit the hung heart a watchdog
           cut left behind: each retry re-arms a fresh one. *)
        let on_restart = Option.map (fun c () -> Guard.rearm_heart c) guard in
        match supervised with
        | Some child ->
            Supervisor.run_child_sthread ?on_restart child worker_sc worker_main 0
        | None ->
            Supervisor.supervise_sthread ~policy:restart_policy main worker_sc
              worker_main 0
      in
      let worker_status, degraded, attempts =
        match outcome with
        | Supervisor.Done { value; attempts } ->
            (Wedge_kernel.Process.Exited value, false, attempts)
        | Supervisor.Gave_up { attempts; last_fault } ->
            send_degraded main ep;
            (Wedge_kernel.Process.Faulted last_fault, true, attempts)
      in
      cleanup ();
      {
        uid_tag = Some uid_tag;
        arg_tag = Some arg_tag;
        mail_tag = Some mail_tag;
        worker_status;
        degraded;
        attempts;
      }

(* Freeze the handler's boot once: identity dropped, pristine image
   mapped, heap warmed (one allocation round-trip so the demand-mapped
   heap pages — smalloc bookkeeping included — join the frozen image).
   Per-connection grants (tags, the connection fd, the two gates) ride in
   at stamp time as the worker sc. *)
let worker_pool ?(name = "pop3.worker") main =
  let sc = W.sc_create () in
  W.sc_set_uid sc 99;
  W.sc_set_root sc "/var/empty";
  W.Pool.freeze ~name
    ~warm:(fun ctx ->
      let p = W.malloc ctx 64 in
      W.free ctx p)
    main sc

(* The declared topology: listener first, then the per-connection
   handler workers (rest-for-one restarts workers when the listener
   escalates, never the reverse).  With [pool], every worker attempt —
   first run and every restart — is stamped from the frozen image at the
   flat O(1) cost instead of a fork-priced boot. *)
let supervision_tree ?strategy ?intensity ?window_ns ?healthy_after_ns ?quarantine_ns
    ?listener_policy ?worker_policy ?pool main =
  let node =
    Supervisor.node ?strategy ?intensity ?window_ns ?healthy_after_ns ?quarantine_ns
      ~name:"pop3" main
  in
  let listener =
    Supervisor.child
      ~policy:(Option.value listener_policy ~default:(Supervisor.policy ~max_restarts:2 ()))
      node ~name:"listener"
  in
  let restart =
    match pool with Some p -> Supervisor.From_pool p | None -> Supervisor.Fresh
  in
  let worker =
    Supervisor.child
      ~policy:(Option.value worker_policy ~default:(Supervisor.policy ~max_restarts:1 ()))
      ~restart node ~name:"worker"
  in
  (node, listener, worker)

(* Guarded accept loop: the admission front door for the partitioned
   POP3 server.  Over-capacity, draining, or breaker-shed connections get
   "-ERR busy" and close; admitted ones are served in their own fiber and
   their outcome reported to the guard's breaker. *)
let serve_loop ?exploit ?restart_policy ?max_line ?worker_limits ?supervision main guard
    listener =
  let supervised = Option.map (fun (_, _, worker) -> worker) supervision in
  let reject decision ep =
    (match decision with
    | Guard.Shed -> W.stat main "pop3.shed"
    | _ -> W.stat main "pop3.rejected");
    Chan.write_string ep "-ERR busy, try again later\r\n"
  in
  let serve c =
    let r =
      serve_connection ?exploit ?restart_policy ?supervised ~guard:c ?max_line
        ?worker_limits main (Guard.ep c)
    in
    Guard.report c ~ok:(not r.degraded)
  in
  let accept () =
    Guard.accept_loop guard listener ~reject ~serve;
    0
  in
  match supervision with
  | None -> ignore (accept ())
  | Some (_, listener_child, _) ->
      ignore (Supervisor.run_child_fn listener_child accept)

(* One accept loop per shard, each on its shard's guard and listener;
   [mains.(i)] is shard [i]'s trusted context. *)
let serve_sharded ?exploit ?restart_policy ?max_line ?worker_limits mains front =
  Array.iteri
    (fun i main ->
      Wedge_sim.Fiber.spawn (fun () ->
          serve_loop ?exploit ?restart_policy ?max_line ?worker_limits main
            (Wedge_net.Shard.front_guard front i)
            (Wedge_net.Shard.front_listener front i)))
    mains
