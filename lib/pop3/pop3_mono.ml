module W = Wedge_core.Wedge
module Chan = Wedge_net.Chan
module Lineio = Wedge_net.Lineio
module Fd_table = Wedge_kernel.Fd_table

(* Direct-access backend: everything runs with the caller's (full)
   privileges. *)
let backend ctx =
  let authed = ref None in
  let mails () =
    match !authed with
    | None -> None
    | Some (name, _uid) -> (
        match W.vfs_readdir ctx (Pop3_env.maildir name) with
        | Ok files ->
            Some
              (List.filter_map
                 (fun f ->
                   match String.split_on_char '.' f with
                   | [ n; "eml" ] -> int_of_string_opt n
                   | _ -> None)
                 files
              |> List.sort compare
              |> List.map (fun n -> (n, name)))
        | Error _ -> Some [])
  in
  let mail_path name n = Printf.sprintf "%s/%d.eml" (Pop3_env.maildir name) n in
  {
    Pop3_proto.login =
      (fun ~user ~password ->
        match W.vfs_read ctx Pop3_env.passwd_path with
        | Error _ -> false
        | Ok passwd -> (
            match Pop3_env.lookup_line ~passwd_file:passwd ~user with
            | None -> false
            | Some line -> (
                match Pop3_env.check_password ~passwd_line:line ~user ~password with
                | Some uid ->
                    authed := Some (user, uid);
                    true
                | None -> false)));
    stat =
      (fun () ->
        match mails () with
        | None -> None
        | Some entries ->
            let total =
              List.fold_left
                (fun acc (n, name) ->
                  match W.vfs_read ctx (mail_path name n) with
                  | Ok body -> acc + String.length body
                  | Error _ -> acc)
                0 entries
            in
            Some (List.length entries, total));
    list_mails =
      (fun () ->
        match mails () with
        | None -> None
        | Some entries ->
            Some
              (List.filter_map
                 (fun (n, name) ->
                   match W.vfs_read ctx (mail_path name n) with
                   | Ok body -> Some (n, String.length body)
                   | Error _ -> None)
                 entries));
    retr =
      (fun n ->
        match !authed with
        | None -> None
        | Some (name, _) -> (
            match W.vfs_read ctx (mail_path name n) with Ok b -> Some b | Error _ -> None));
    dele =
      (fun n ->
        match !authed with
        | None -> false
        | Some (name, _) ->
            Result.is_ok
              (Wedge_kernel.Vfs.unlink (W.kernel (W.app_of ctx)).Wedge_kernel.Kernel.vfs
                 ~root:"/" ~uid:0 (mail_path name n)));
  }

let serve_connection ?exploit ctx ep =
  let fd = W.add_endpoint ctx (Chan.to_endpoint ep) Fd_table.perm_rw in
  let io =
    Lineio.create ~recv:(fun n -> W.fd_read ctx fd n) ~send:(fun b -> W.fd_write ctx fd b) ()
  in
  let exploit = Option.map (fun payload () -> payload ctx) exploit in
  Pop3_proto.serve io (backend ctx) ~exploit;
  W.fd_close ctx fd;
  Chan.close ep
