module Physmem = Wedge_kernel.Physmem

type entry = {
  base : int;
  pages : int;
  frames : int list;
}

type t = {
  pm : Physmem.t;
  by_pages : (int, entry list ref) Hashtbl.t;
  mutable enabled : bool;
  scrub : bool;
  mutable hits : int;
  mutable misses : int;
  mutable count : int;
  mutable scrubbed : int;
}

let create ?(enabled = true) ?(scrub = true) pm =
  {
    pm;
    by_pages = Hashtbl.create 8;
    enabled;
    scrub;
    hits = 0;
    misses = 0;
    count = 0;
    scrubbed = 0;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let put t entry =
  if t.enabled then begin
    List.iter (fun f -> Physmem.incref t.pm f) entry.frames;
    (match Hashtbl.find_opt t.by_pages entry.pages with
    | Some l -> l := entry :: !l
    | None -> Hashtbl.add t.by_pages entry.pages (ref [ entry ]));
    t.count <- t.count + 1
  end

let take t ~pages =
  if not t.enabled then begin
    t.misses <- t.misses + 1;
    None
  end
  else
    match Hashtbl.find_opt t.by_pages pages with
    | Some ({ contents = entry :: rest } as l) ->
        l := rest;
        t.count <- t.count - 1;
        t.hits <- t.hits + 1;
        if t.scrub then
          List.iter
            (fun f ->
              Bytes.fill (Physmem.get t.pm f) 0 Physmem.page_size '\000';
              t.scrubbed <- t.scrubbed + 1)
            entry.frames;
        Some entry
    | _ ->
        t.misses <- t.misses + 1;
        None

let entries t =
  Hashtbl.fold (fun _ l acc -> List.rev_append !l acc) t.by_pages []

let hits t = t.hits
let misses t = t.misses
let size t = t.count
let scrubbed_pages t = t.scrubbed
