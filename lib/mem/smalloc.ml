module Vm = Wedge_kernel.Vm

exception Out_of_tag_memory of { base : int; requested : int }

(* Segment header:
     base + 0  : magic
     base + 8  : free-list head (0 = empty)
     base + 16 : segment end address
   Chunks (8-byte aligned):
     chunk + 0        : size lor in-use bit   (size includes header+footer)
     chunk + size - 8 : same word (footer)
   Free chunks additionally:
     chunk + 8  : next free chunk (0 = nil)
     chunk + 16 : prev free chunk (0 = nil)
   User pointers are chunk + 8. *)

let magic = 0x5745444745_53 (* "WEDGE-S" ish *)
let overhead = 32
let min_chunk = 32
let min_alloc = 16
let inuse_bit = 1

let align8 n = (n + 7) land lnot 7
let hd_free base = base + 8
let hd_end base = base + 16

let chunk_size_word vm c = Vm.read_u64 vm c
let size_of w = w land lnot 7
let is_inuse w = w land inuse_bit <> 0

let set_chunk vm c ~size ~inuse =
  let w = size lor (if inuse then inuse_bit else 0) in
  Vm.write_u64 vm c w;
  Vm.write_u64 vm (c + size - 8) w

let fl_next vm c = Vm.read_u64 vm (c + 8)
let fl_prev vm c = Vm.read_u64 vm (c + 16)
let set_fl_next vm c v = Vm.write_u64 vm (c + 8) v
let set_fl_prev vm c v = Vm.write_u64 vm (c + 16) v

let fl_push vm ~base c =
  let head = Vm.read_u64 vm (hd_free base) in
  set_fl_next vm c head;
  set_fl_prev vm c 0;
  if head <> 0 then set_fl_prev vm head c;
  Vm.write_u64 vm (hd_free base) c

let fl_remove vm ~base c =
  let next = fl_next vm c and prev = fl_prev vm c in
  if prev = 0 then Vm.write_u64 vm (hd_free base) next else set_fl_next vm prev next;
  if next <> 0 then set_fl_prev vm next prev

let first_chunk base = base + overhead

let init vm ~base ~size =
  if size < overhead + min_chunk then invalid_arg "Smalloc.init: segment too small";
  let seg_end = base + (size land lnot 7) in
  Vm.write_u64 vm base magic;
  Vm.write_u64 vm (hd_end base) seg_end;
  let c = first_chunk base in
  let csize = seg_end - c in
  set_chunk vm c ~size:csize ~inuse:false;
  Vm.write_u64 vm (hd_free base) 0;
  fl_push vm ~base c

let prefill_image ~base ~size =
  let seg_end = base + (size land lnot 7) in
  let c = base + overhead in
  let csize = seg_end - c in
  [
    (base, magic);
    (base + 8, c);
    (base + 16, seg_end);
    (c, csize);
    (c + 8, 0);
    (c + 16, 0);
    (seg_end - 8, csize);
  ]

let assert_magic vm base =
  if Vm.read_u64 vm base <> magic then
    invalid_arg (Printf.sprintf "Smalloc: no segment at 0x%x (bad magic)" base)

let alloc vm ~base n =
  assert_magic vm base;
  if n <= 0 then invalid_arg "Smalloc.alloc: n <= 0";
  let need = max min_chunk (align8 n + 16) in
  (* First fit. *)
  let rec find c =
    if c = 0 then raise (Out_of_tag_memory { base; requested = n })
    else
      let w = chunk_size_word vm c in
      if size_of w >= need then c else find (fl_next vm c)
  in
  let c = find (Vm.read_u64 vm (hd_free base)) in
  let csize = size_of (chunk_size_word vm c) in
  fl_remove vm ~base c;
  if csize - need >= min_chunk then begin
    (* Split: tail remains free. *)
    let tail = c + need in
    set_chunk vm c ~size:need ~inuse:true;
    set_chunk vm tail ~size:(csize - need) ~inuse:false;
    fl_push vm ~base tail
  end
  else set_chunk vm c ~size:csize ~inuse:true;
  c + 8

(* Validate a caller-supplied user pointer before trusting the boundary
   tags around it.  A wild in-segment pointer whose word happens to carry
   the in-use bit would otherwise be accepted by [free] and silently
   corrupt the free list — the allocator must reject it as a programming
   error, not propagate the corruption.  Checks: alignment, range within
   [first_chunk, seg_end), a sane header (size >= min_chunk, chunk fits
   in the segment), and header/footer agreement. *)
let checked_chunk vm ~base ~op ptr =
  assert_magic vm base;
  let seg_end = Vm.read_u64 vm (hd_end base) in
  if ptr land 7 <> 0 then
    invalid_arg (Printf.sprintf "Smalloc.%s: misaligned pointer 0x%x" op ptr);
  let c = ptr - 8 in
  if c < first_chunk base || c >= seg_end then
    invalid_arg
      (Printf.sprintf "Smalloc.%s: pointer 0x%x outside segment [0x%x, 0x%x)"
         op ptr (first_chunk base + 8) seg_end);
  let w = chunk_size_word vm c in
  let size = size_of w in
  if size < min_chunk || c + size > seg_end then
    invalid_arg
      (Printf.sprintf "Smalloc.%s: corrupt or wild pointer 0x%x (chunk size %d)"
         op ptr size);
  let fw = Vm.read_u64 vm (c + size - 8) in
  if fw <> w then
    invalid_arg
      (Printf.sprintf "Smalloc.%s: header/footer mismatch at 0x%x (not a chunk?)"
         op ptr);
  (c, w, seg_end)

let free vm ~base ptr =
  let c, w, seg_end = checked_chunk vm ~base ~op:"free" ptr in
  if not (is_inuse w) then invalid_arg (Printf.sprintf "Smalloc.free: double free at 0x%x" ptr);
  let csize = size_of w in
  (* Coalesce with successor. *)
  let c, csize =
    let next = c + csize in
    if next < seg_end && not (is_inuse (chunk_size_word vm next)) then begin
      fl_remove vm ~base next;
      (c, csize + size_of (chunk_size_word vm next))
    end
    else (c, csize)
  in
  (* Coalesce with predecessor via its footer. *)
  let c, csize =
    if c > first_chunk base then begin
      let pw = Vm.read_u64 vm (c - 8) in
      if not (is_inuse pw) then begin
        let prev = c - size_of pw in
        fl_remove vm ~base prev;
        (prev, csize + size_of pw)
      end
      else (c, csize)
    end
    else (c, csize)
  in
  set_chunk vm c ~size:csize ~inuse:false;
  fl_push vm ~base c

let usable_size vm ~base ~ptr =
  let _, w, _ = checked_chunk vm ~base ~op:"usable_size" ptr in
  if not (is_inuse w) then invalid_arg "Smalloc.usable_size: free chunk";
  size_of w - 16

let free_bytes vm ~base =
  assert_magic vm base;
  let rec go c acc = if c = 0 then acc else go (fl_next vm c) (acc + size_of (chunk_size_word vm c)) in
  go (Vm.read_u64 vm (hd_free base)) 0

(* Whole-segment integrity walk, parameterized over the word reader so an
   invariant oracle can run it through a raw page-table walk (no clock
   charges, no TLB pollution, no injected-fault rolls) without perturbing
   the schedule under test.  Beyond the historical boundary-tag walk it
   validates the free list itself: every link lands on a free chunk the
   walk saw, no cycles, prev/next symmetry, and every free chunk on the
   list exactly once. *)
let is_segment ~read ~base = read base = magic

let check_reader ~read ~base =
  if read base <> magic then
    invalid_arg (Printf.sprintf "Smalloc: no segment at 0x%x (bad magic)" base);
  let seg_end = read (hd_end base) in
  let free_chunks = Hashtbl.create 16 in
  let rec walk c prev_free =
    if c < seg_end then begin
      let w = read c in
      let size = size_of w in
      if size < min_chunk || c + size > seg_end then
        invalid_arg (Printf.sprintf "Smalloc.check: bad chunk size %d at 0x%x" size c);
      let fw = read (c + size - 8) in
      if fw <> w then
        invalid_arg (Printf.sprintf "Smalloc.check: header/footer mismatch at 0x%x" c);
      if prev_free && not (is_inuse w) then
        invalid_arg (Printf.sprintf "Smalloc.check: uncoalesced free chunks at 0x%x" c);
      if not (is_inuse w) then Hashtbl.replace free_chunks c ();
      walk (c + size) (not (is_inuse w))
    end
  in
  walk (first_chunk base) false;
  let n_free = Hashtbl.length free_chunks in
  let seen = Hashtbl.create 16 in
  let rec follow c prev steps =
    if c <> 0 then begin
      if steps > n_free then
        invalid_arg (Printf.sprintf "Smalloc.check: free list longer than free chunks");
      if not (Hashtbl.mem free_chunks c) then
        invalid_arg (Printf.sprintf "Smalloc.check: free list links to non-free 0x%x" c);
      if Hashtbl.mem seen c then
        invalid_arg (Printf.sprintf "Smalloc.check: free list cycle at 0x%x" c);
      Hashtbl.replace seen c ();
      if read (c + 16) <> prev then
        invalid_arg (Printf.sprintf "Smalloc.check: bad prev link at 0x%x" c);
      follow (read (c + 8)) c (steps + 1)
    end
  in
  follow (read (hd_free base)) 0 0;
  if Hashtbl.length seen <> n_free then
    invalid_arg
      (Printf.sprintf "Smalloc.check: %d free chunks but %d on the free list" n_free
         (Hashtbl.length seen))

let check vm ~base = check_reader ~read:(fun addr -> Vm.read_u64 vm addr) ~base
