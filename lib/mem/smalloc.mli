(** A dlmalloc-derived boundary-tag allocator whose bookkeeping lives inside
    the simulated segment it manages (§4.1: "The smalloc implementation is
    derived from dlmalloc").

    Because every bookkeeping read and write goes through the caller's
    {!Wedge_kernel.Vm} view, allocating from a tag requires the caller to
    hold read-write permission on that tag — an sthread cannot even
    traverse the free list of memory it was not granted.

    Segment layout: a 32-byte header (magic, free-list head, segment end),
    then boundary-tagged chunks.  Chunk header and footer each hold the
    chunk size with an in-use bit; free chunks carry next/prev links. *)

exception Out_of_tag_memory of { base : int; requested : int }

val overhead : int
(** Bytes of segment header. *)

val min_alloc : int
(** Smallest usable allocation granule. *)

val init : Wedge_kernel.Vm.t -> base:int -> size:int -> unit
(** Format a fresh segment of [size] bytes starting at [base]. *)

val prefill_image : base:int -> size:int -> (int * int) list
(** The (address, u64) words [init] would write for a segment of [size]
    bytes at [base] — the "pre-initialized smalloc bookkeeping structures"
    copied on tag reuse instead of re-running initialisation (§4.1). *)

val alloc : Wedge_kernel.Vm.t -> base:int -> int -> int
(** [alloc vm ~base n] returns the address of [n] fresh usable bytes.
    @raise Out_of_tag_memory when no chunk fits. *)

val free : Wedge_kernel.Vm.t -> base:int -> int -> unit
(** [free vm ~base ptr] releases an allocation, coalescing with free
    neighbours.  [ptr] is validated before the allocator trusts its
    boundary tags — alignment, range within the segment, sane header,
    header/footer agreement.
    @raise Invalid_argument on a wild/corrupt pointer or double free. *)

val usable_size : Wedge_kernel.Vm.t -> base:int -> ptr:int -> int
(** Usable bytes of a live allocation; validates [ptr] like {!free}.
    @raise Invalid_argument on a wild/corrupt/free pointer. *)

val free_bytes : Wedge_kernel.Vm.t -> base:int -> int
(** Total bytes on the free list (for tests). *)

val check : Wedge_kernel.Vm.t -> base:int -> unit
(** Walk the whole segment validating boundary tags and the free list
    (link sanity, no cycles, prev/next symmetry, free-chunk coverage);
    raises [Invalid_argument] on corruption (for tests). *)

val is_segment : read:(int -> int) -> base:int -> bool
(** Whether an initialised segment lives at [base] (magic probe) — how an
    oracle decides which tags/heaps to walk. *)

val check_reader : read:(int -> int) -> base:int -> unit
(** {!check} parameterized over the u64-word reader, so an invariant
    oracle can validate a segment through a raw page-table walk — no
    clock charges, no TLB pollution, no injected-fault rolls — without
    perturbing the schedule under test.
    @raise Invalid_argument on corruption. *)
