(** Userland free-list of deleted tag segments (§4.1).

    [tag_new] system-call and bookkeeping-initialisation overhead is
    mitigated by caching deleted tags and reusing them when a request of
    the same page count arrives.  For secrecy the reused memory is scrubbed
    (the cache holds references to the old frames, so without scrubbing the
    previous owner's data would be visible — the [scrub] knob exists so a
    test can demonstrate that leak).  The paper reports this cache
    improved partitioned Apache throughput by 20% (ablation E7). *)

type entry = {
  base : int;
  pages : int;
  frames : int list;  (** cached physical frames (one reference held) *)
}

type t

val create : ?enabled:bool -> ?scrub:bool -> Wedge_kernel.Physmem.t -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val put : t -> entry -> unit
(** Cache a deleted tag's range and frames (takes references on the
    frames).  Drops the entry (releasing frames) when the cache is
    disabled. *)

val take : t -> pages:int -> entry option
(** Pop a cached range with exactly [pages] pages, scrubbing its frames
    (unless scrubbing is off). *)

val entries : t -> entry list
(** Every cached entry, in no particular order.  The refcount invariant
    oracle uses this to account for the one reference the cache holds on
    each cached frame. *)

val hits : t -> int
val misses : t -> int
val size : t -> int

val scrubbed_pages : t -> int
(** Total pages scrubbed on reuse.  A counter, deliberately not a clock
    charge: billing [page_scrub] per reused page would erase the cheap
    tag-reuse effect the cache exists to reproduce (Figure 8); the
    counter keeps the secrecy work observable without distorting it. *)
