(* Metrics registry: the read side of observability.  Writers keep using
   their local counters (Stats tables, record fields); each component
   registers a source closure here, and [snapshot] folds everything into
   one sorted view.  Duplicate keys sum — deliberately, so a quantity
   split across live and reaped carriers (per-process TLB counters vs the
   kernel's reaped totals) reads as one true number. *)

module Fault_plan = Wedge_fault.Fault_plan

type kind = Counter | Gauge

type source = { src_kind : kind; read : unit -> (string * int) list }

type t = {
  own : Stats.t;
  mutable sources : (string * source) list; (* name -> source, insertion order *)
}

let create () = { own = Stats.create (); sources = [] }
let bump t name = Stats.bump t.own name
let add t name n = Stats.add t.own name n
let counters t = t.own

let unregister t ~name = t.sources <- List.remove_assoc name t.sources

let register t ~name ?(kind = Gauge) read =
  unregister t ~name;
  t.sources <- t.sources @ [ (name, { src_kind = kind; read }) ]

let register_stats t ~name stats =
  register t ~name ~kind:Counter (fun () -> Stats.to_list stats)

let register_fault_plan t plan =
  register t ~name:"fault_plan" ~kind:Counter (fun () ->
      ("fault.injected", Fault_plan.injections plan)
      :: List.map
           (fun (site, n) -> ("fault.ops." ^ site, n))
           (Fault_plan.site_op_counts plan))

(* Merge [(key, v)] pairs: sort, then sum runs of equal keys. *)
let merge pairs =
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      pairs
  in
  let rec squash = function
    | (k1, v1) :: (k2, v2) :: rest when String.equal k1 k2 ->
        squash ((k1, v1 + v2) :: rest)
    | kv :: rest -> kv :: squash rest
    | [] -> []
  in
  squash sorted

let read_kind t want =
  List.concat_map
    (fun (_, s) -> if s.src_kind = want then s.read () else [])
    t.sources

let snapshot t =
  merge (Stats.to_list t.own @ read_kind t Counter @ read_kind t Gauge)

let get t key =
  match List.assoc_opt key (snapshot t) with Some v -> v | None -> 0

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let section pairs =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
         pairs)
  in
  let counters = merge (Stats.to_list t.own @ read_kind t Counter) in
  let gauges = merge (read_kind t Gauge) in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s}}" (section counters)
    (section gauges)

let pp fmt t =
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%-36s %d@." k v)
    (snapshot t)
