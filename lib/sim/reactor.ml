(* Readiness reactor: the epoll-style core of the event-driven serve
   path.

   Blocked fibers stop spin-polling ([Fiber.wait_until] burns one
   scheduler step per blocked fiber per rotation — O(connections) per
   delivered byte at 10k idle connections) and instead register a waiter
   on a [handle] and [Fiber.park].  The producer side calls [signal] at
   the moment the state changes (bytes pushed, space drained, direction
   closed, connection queued) and every waiter of that handle wakes in
   one batch.  Waits are level-triggered: a woken waiter re-checks its
   [ready] closure and re-parks on a spurious wake, so a signal can
   never be lost to a race and never needs to be precise.

   Deadlines live on a timer wheel keyed by the simulated clock:
   [tick] — wired into the scheduler as its [on_switch] hook — fires
   every timer that has come due since the clock last moved.  When the
   whole system is parked (every connection idle, nothing runnable), the
   scheduler's [on_idle] hook calls [idle], which advances the clock
   straight to the next armed timer — exactly how a real event loop
   sleeps in epoll_wait until its earliest timeout.

   Everything is deterministic: waiters wake in fiber-id order, timers
   fire in (deadline, creation) order, and the counters below are pure
   functions of the schedule. *)

type waiter = {
  w_fiber : int;
  w_ready : unit -> bool;
}

type handle = {
  h_id : int;
  h_name : string;
  h_r : t;
  mutable h_dead : bool;
  mutable h_waiters : waiter list;  (* registration order, newest first *)
}

and timer = {
  tm_id : int;
  tm_at : int;  (* absolute simulated ns *)
  mutable tm_fire : (unit -> unit) option;  (* None = cancelled *)
}

and t = {
  r_clock : Clock.t;
  r_trace : Trace.t;
  mutable next_handle : int;
  mutable next_timer : int;
  mutable timers : timer list;  (* sorted by (tm_at, tm_id) *)
  mutable tick_hooks : (unit -> unit) list;  (* registration order *)
  waiting : (int, handle) Hashtbl.t;  (* handles with live waiters *)
  mutable last_now : int;  (* clock value at the last timer sweep *)
  mutable timers_dirty : bool;  (* a timer was armed since that sweep *)
  mutable c_signals : int;  (* wake batches delivered *)
  mutable c_wakeups : int;  (* fibers woken *)
  mutable c_parks : int;  (* times a fiber parked on a handle *)
  mutable c_timer_fires : int;
  mutable c_idle_advances : int;  (* clock jumps to the next timer *)
}

let create ?(trace = Trace.null) ~clock () =
  {
    r_clock = clock;
    r_trace = trace;
    next_handle = 0;
    next_timer = 0;
    timers = [];
    tick_hooks = [];
    waiting = Hashtbl.create 64;
    last_now = -1;
    timers_dirty = false;
    c_signals = 0;
    c_wakeups = 0;
    c_parks = 0;
    c_timer_fires = 0;
    c_idle_advances = 0;
  }

let clock r = r.r_clock

(* Reactor events carry pid 0, like the wire: they belong to the event
   loop, not to any compartment. *)
let reactor_pid = 0

let handle r ~name =
  let id = r.next_handle in
  r.next_handle <- id + 1;
  { h_id = id; h_name = name; h_r = r; h_dead = false; h_waiters = [] }

let handle_name h = h.h_name

let remove_waiter h w =
  h.h_waiters <- List.filter (fun x -> x != w) h.h_waiters;
  if h.h_waiters = [] then Hashtbl.remove h.h_r.waiting h.h_id

(* One wake batch: every waiter of the handle back on the run queue, in
   fiber-id order so the wake order is a pure function of who waited,
   not of list-splicing history. *)
let signal h =
  match h.h_waiters with
  | [] -> ()
  | ws ->
      let r = h.h_r in
      r.c_signals <- r.c_signals + 1;
      h.h_waiters <- [];
      Hashtbl.remove r.waiting h.h_id;
      if Trace.enabled r.r_trace then
        Trace.count r.r_trace ~name:"reactor.wake" ~pid:reactor_pid
          ~value:(List.length ws);
      let ws = List.sort (fun a b -> compare a.w_fiber b.w_fiber) ws in
      List.iter
        (fun w ->
          r.c_wakeups <- r.c_wakeups + 1;
          Fiber.unpark w.w_fiber)
        ws

let kill h =
  if not h.h_dead then begin
    h.h_dead <- true;
    signal h
  end

let is_dead h = h.h_dead

(* Level-triggered wait: park until [ready], re-checking on every wake.
   A dead handle never blocks — the caller's own state (closed flag, EOF)
   carries the final answer.  A cancellation delivered while parked (the
   watchdog cutting this fiber) must not leave a ghost registration
   behind: the waiter entry is dropped on the exception path too. *)
let wait h ~what ~ready =
  let r = h.h_r in
  while not (h.h_dead || ready ()) do
    let w = { w_fiber = Fiber.fiber_id (); w_ready = ready } in
    h.h_waiters <- w :: h.h_waiters;
    if not (Hashtbl.mem r.waiting h.h_id) then Hashtbl.replace r.waiting h.h_id h;
    r.c_parks <- r.c_parks + 1;
    (try Fiber.park ~what
     with e ->
       remove_waiter h w;
       raise e);
    (* A signal already removed us; a stray unpark did not. *)
    remove_waiter h w
  done

(* ------------------------------------------------------------------ *)
(* Timer wheel (simulated clock)                                       *)

type timer_id = int

let insert_timer r tm =
  r.timers_dirty <- true;
  let rec ins = function
    | [] -> [ tm ]
    | t :: rest as l ->
        if (tm.tm_at, tm.tm_id) < (t.tm_at, t.tm_id) then tm :: l
        else t :: ins rest
  in
  r.timers <- ins r.timers

let at r ~ns fire =
  let id = r.next_timer in
  r.next_timer <- id + 1;
  insert_timer r { tm_id = id; tm_at = ns; tm_fire = Some fire };
  id

let after r ~ns fire = at r ~ns:(Clock.now r.r_clock + ns) fire

let cancel_timer r id =
  List.iter (fun tm -> if tm.tm_id = id then tm.tm_fire <- None) r.timers

let pending_timers r =
  List.length
    (List.filter (fun tm -> match tm.tm_fire with Some _ -> true | None -> false)
       r.timers)

let on_tick r f = r.tick_hooks <- r.tick_hooks @ [ f ]

(* Fire everything due.  The sweep is gated on the clock having moved
   (or a timer having been armed) since the last one, so the hook's cost
   on a switch where nothing happened is one comparison — the off-path
   price of an armed reactor stays O(1), never O(timers). *)
let tick r =
  let now = Clock.now r.r_clock in
  if now <> r.last_now || r.timers_dirty then begin
    r.last_now <- now;
    r.timers_dirty <- false;
    let rec fire () =
      match r.timers with
      | tm :: rest when tm.tm_at <= now ->
          r.timers <- rest;
          (match tm.tm_fire with
          | Some f ->
              r.c_timer_fires <- r.c_timer_fires + 1;
              if Trace.enabled r.r_trace then
                Trace.instant r.r_trace ~name:"reactor.timer" ~pid:reactor_pid;
              f ()
          | None -> ());
          fire ()
      | _ -> ()
    in
    fire ();
    List.iter (fun f -> f ()) r.tick_hooks
  end

let hook r () = tick r

(* Earliest armed timer, if any — the deadline [idle] would sleep to. *)
let next_deadline r =
  let rec earliest = function
    | [] -> None
    | tm :: rest -> (
        match tm.tm_fire with Some _ -> Some tm.tm_at | None -> earliest rest)
  in
  earliest r.timers

(* The scheduler is idle with parked fibers: sleep until the earliest
   armed timer by advancing the simulated clock to it, then sweep.
   Returns false when no timer is armed — the scheduler then reports the
   parked fibers as deadlocked. *)
let idle r () =
  match next_deadline r with
  | None -> false
  | Some at ->
      let now = Clock.now r.r_clock in
      if at > now then begin
        Clock.charge r.r_clock (at - now);
        r.c_idle_advances <- r.c_idle_advances + 1
      end;
      tick r;
      true

(* Multi-reactor idle, for shards: each reactor runs on its own clock
   (shards are parallel machines), so absolute deadlines are not
   comparable across reactors.  The reactor whose earliest timer is the
   *smallest relative delay* from its own now is the one a real cluster
   would wake first; ties break on list order, so the choice is a pure
   function of the reactor states.  Advance only that shard's clock and
   sweep only it — the other shards' clocks must not move for a timer
   that is not theirs. *)
let idle_multi rs () =
  let best = ref None in
  List.iter
    (fun r ->
      match next_deadline r with
      | None -> ()
      | Some at ->
          let delay = max 0 (at - Clock.now r.r_clock) in
          (match !best with
          | Some (_, d) when d <= delay -> ()
          | _ -> best := Some (r, delay)))
    rs;
  match !best with
  | None -> false
  | Some (r, delay) ->
      if delay > 0 then begin
        Clock.charge r.r_clock delay;
        r.c_idle_advances <- r.c_idle_advances + 1
      end;
      tick r;
      true

(* ------------------------------------------------------------------ *)
(* Audit and observability                                             *)

type stats = {
  signals : int;
  wakeups : int;
  parks : int;
  timer_fires : int;
  idle_advances : int;
  parked : int;
  timers : int;
}

let waiter_count r =
  Hashtbl.fold (fun _ h n -> n + List.length h.h_waiters) r.waiting 0

let stats r =
  {
    signals = r.c_signals;
    wakeups = r.c_wakeups;
    parks = r.c_parks;
    timer_fires = r.c_timer_fires;
    idle_advances = r.c_idle_advances;
    parked = waiter_count r;
    timers = pending_timers r;
  }

(* Interest sets must agree with the scheduler's parked table at every
   sync point:
   - a waiter still registered and still parked whose [ready] is already
     true is a lost wakeup (someone changed state without signalling);
   - waiters on a dead handle are ghost registrations ([kill] wakes
     everyone, and [wait] never registers on a dead handle);
   - a parked fiber with no registration anywhere can never be woken by
     the reactor (a registration leaked on some exception path).
   A registered waiter that is NOT parked is fine — that is the window
   between an unpark (signal or cancel) and the fiber running its
   cleanup.

   The parked-without-registration check is global over the scheduler's
   parked table, so with several reactors armed (one per shard) it must
   see the union of every reactor's interest sets — a fiber parked on
   shard 2's reactor is not a leak just because shard 0's audit ran
   first.  [self_check_multi] takes that union; [self_check] is the
   single-reactor special case. *)
let check_handles r report =
  Hashtbl.iter
    (fun _ h ->
      if h.h_dead && h.h_waiters <> [] then
        report
          (Printf.sprintf "reactor: %d waiter(s) on dead handle %s"
             (List.length h.h_waiters) h.h_name)
      else
        List.iter
          (fun w ->
            if Fiber.is_parked w.w_fiber && w.w_ready () then
              report
                (Printf.sprintf
                   "reactor: lost wakeup — handle %s ready but fiber %d still \
                    parked"
                   h.h_name w.w_fiber))
          h.h_waiters)
    r.waiting

let self_check_multi rs =
  let problem = ref None in
  let report msg = if !problem = None then problem := Some msg in
  List.iter (fun r -> check_handles r report) rs;
  (match !problem with
  | Some _ -> ()
  | None ->
      let registered = Hashtbl.create 16 in
      List.iter
        (fun r ->
          Hashtbl.iter
            (fun _ h ->
              List.iter
                (fun w -> Hashtbl.replace registered w.w_fiber ())
                h.h_waiters)
            r.waiting)
        rs;
      List.iter
        (fun id ->
          if not (Hashtbl.mem registered id) then
            report
              (Printf.sprintf
                 "reactor: fiber %d parked with no waiter registration" id))
        (Fiber.parked_ids ()));
  !problem

let self_check r = self_check_multi [ r ]

let register_metrics ?(name = "reactor") m r =
  Metrics.register m ~name ~kind:Metrics.Counter (fun () ->
      [
        ("reactor.signals", r.c_signals);
        ("reactor.wakeups", r.c_wakeups);
        ("reactor.parks", r.c_parks);
        ("reactor.timer_fires", r.c_timer_fires);
        ("reactor.idle_advances", r.c_idle_advances);
      ]);
  Metrics.register m ~name:(name ^ ".gauges") (fun () ->
      [
        ("reactor.parked", waiter_count r);
        ("reactor.waiting_handles", Hashtbl.length r.waiting);
        ("reactor.timers", pending_timers r);
      ])
