type t = {
  syscall_trap : int;
  syscall_batch_op : int;
  context_switch : int;
  tlb_flush : int;
  tlb_hit : int;
  tlb_miss : int;
  tlb_shootdown : int;
  pte_copy : int;
  pool_stamp : int;
  fd_dup : int;
  page_alloc : int;
  page_copy : int;
  page_scrub : int;
  thread_struct : int;
  proc_struct : int;
  malloc_op : int;
  smalloc_book_init : int;
  mmap_op : int;
  futex_op : int;
  cgate_validate : int;
  sha256_per_byte : int;
  cipher_per_byte : int;
  hmac_fixed : int;
  rsa_private_op : int;
  rsa_public_op : int;
  net_rtt : int;
  net_per_byte : int;
  disk_per_byte : int;
  http_app_fixed : int;
  ssh_login_fixed : int;
}

(* Calibration notes (see EXPERIMENTS.md):
   - pthread create+exit+join = 2 traps + thread struct + 2 switches ~ 8 us.
   - a minimal process image is ~300 pages, so fork ~ 300 PTE copies
     + proc struct + 2 switches + TLB flush ~ 65 us, and an sthread with an
     empty policy maps the same pristine image ~ 60 us.
   - tag_new with free-list reuse = bookkeeping prefill only ~ 4x malloc;
     a cold tag pays the full mmap ~ 22x malloc (Figure 8).
   - rsa_private_op matches the ~3.2 ms gap between cached and non-cached
     vanilla Apache rows of Table 2 on the 2.2 GHz Opteron.
   - tlb_hit ~ one cycle of address translation on the fast path; tlb_miss
     ~ a hardware page-table walk; tlb_shootdown ~ the cost of killing one
     cached translation on a permissions change or unmap (the IPI-and-wait
     a real multiprocessor pays, scaled to one entry).
   - syscall_batch_op: each operation past the first in one vectored
     batch (readv/writev) — per-op argument validation and iov walk with
     the kernel entry/exit already paid, ~10% of a full trap (the
     readv-vs-n-reads gap on commodity hardware).  Single-op syscalls
     never charge it, so every fig7/fig8 number is untouched. *)
let default =
  {
    syscall_trap = 500;
    syscall_batch_op = 50;
    context_switch = 1_500;
    tlb_flush = 1_000;
    tlb_hit = 1;
    tlb_miss = 40;
    tlb_shootdown = 400;
    pte_copy = 190;
    pool_stamp = 950;
    fd_dup = 250;
    page_alloc = 25;
    page_copy = 800;
    page_scrub = 450;
    thread_struct = 4_000;
    proc_struct = 3_000;
    malloc_op = 50;
    smalloc_book_init = 160;
    mmap_op = 1_050;
    futex_op = 1_000;
    cgate_validate = 1_200;
    sha256_per_byte = 8;
    cipher_per_byte = 10;
    hmac_fixed = 900;
    rsa_private_op = 3_200_000;
    rsa_public_op = 160_000;
    net_rtt = 120_000;
    net_per_byte = 9;
    disk_per_byte = 2;
    http_app_fixed = 760_000;
    ssh_login_fixed = 140_000_000;
  }

let free =
  {
    syscall_trap = 0;
    syscall_batch_op = 0;
    context_switch = 0;
    tlb_flush = 0;
    tlb_hit = 0;
    tlb_miss = 0;
    tlb_shootdown = 0;
    pte_copy = 0;
    pool_stamp = 0;
    fd_dup = 0;
    page_alloc = 0;
    page_copy = 0;
    page_scrub = 0;
    thread_struct = 0;
    proc_struct = 0;
    malloc_op = 0;
    smalloc_book_init = 0;
    mmap_op = 0;
    futex_op = 0;
    cgate_validate = 0;
    sha256_per_byte = 0;
    cipher_per_byte = 0;
    hmac_fixed = 0;
    rsa_private_op = 0;
    rsa_public_op = 0;
    net_rtt = 0;
    net_per_byte = 0;
    disk_per_byte = 0;
    http_app_fixed = 0;
    ssh_login_fixed = 0;
  }
