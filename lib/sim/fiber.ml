open Effect
open Effect.Deep
module Fault_plan = Wedge_fault.Fault_plan
module Rng = Wedge_fault.Rng

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Spawn : (unit -> unit) -> unit Effect.t

type _ Effect.t += Park : string -> unit Effect.t
(* Like [Yield], but the continuation is NOT re-enqueued: the fiber goes
   into the parked table and runs again only when [unpark] moves it back
   to the run queue.  The readiness reactor is built on this — a blocked
   fiber costs the scheduler nothing until the event it waits for
   actually happens, instead of spin-polling through every rotation. *)

exception Deadlock of string

exception Cancelled of string
(* Delivered inside a fiber at its next yield (or stall step / wait-until
   spin) after [cancel] marked it.  The watchdog uses this to tear down a
   hung compartment: the engine registers [Cancelled] as a contained
   fault class, so a cancelled worker dies like a crashed one — the
   listener and every other fiber keep running. *)

(* ------------------------------------------------------------------ *)
(* Scheduling policies                                                 *)

(* Round_robin keeps the historical FIFO queue, byte-for-byte: every
   seeded replay test in the suite depends on that order.  The other
   policies schedule from an array-backed pool of runnable fibers and
   record, per step, the pool index they picked — the decision trace.
   Feeding a trace back through [Replay] reproduces the run exactly,
   which is what exploration drivers use to shrink a failing schedule. *)
type policy =
  | Round_robin
  | Random of int  (** uniformly random runnable fiber, from the seed *)
  | Pct of {
      seed : int;
      change_prob : float;
          (** probability, per scheduling step, that the currently
              highest-priority fiber is demoted below everyone else — the
              PCT "priority change point" *)
    }
  | Replay of int array
      (** replay recorded pool indices; out of range / exhausted entries
          fall back to index 0, so truncated traces still run *)

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Random seed -> Printf.sprintf "random:%d" seed
  | Pct { seed; change_prob } -> Printf.sprintf "pct:%d:%g" seed change_prob
  | Replay d -> Printf.sprintf "replay[%d]" (Array.length d)

type task = {
  t_id : int;
  t_run : unit -> unit;
}

let dummy_task = { t_id = -1; t_run = (fun () -> ()) }

type sched = {
  policy : policy;
  runq : (unit -> unit) Queue.t;  (* Round_robin *)
  mutable pool : task array;  (* every other policy *)
  mutable pool_n : int;
  rng : Rng.t;
  prio : (int, int) Hashtbl.t;  (* Pct: fiber id -> priority *)
  mutable demote_next : int;  (* strictly decreasing fresh minima *)
  mutable last_pick : int;  (* Pct anti-starvation state *)
  mutable picks_in_a_row : int;
  mutable stamp_at_pick : int;
  mutable replay_pos : int;
  mutable decisions : int list;  (* newest first *)
  on_switch : (unit -> unit) option;
  on_idle : (unit -> bool) option;
      (* called when nothing is runnable but fibers are parked; returns
         true when it made progress (advanced the clock to a timer, fired
         one) and the scheduler should look at the queue again *)
  mutable stamp : int;  (* bumped by [progress] *)
  mutable active : bool;
  mutable cur : int;  (* id of the running fiber *)
  mutable next_id : int;
  blocked : (int, string) Hashtbl.t;  (* fiber id -> awaited condition *)
  parked : (int, unit -> unit) Hashtbl.t;
      (* fiber id -> resume thunk; parked fibers are OFF the run queue
         entirely — [unpark] is the only way back *)
  cancelled : (int, string) Hashtbl.t;  (* fiber id -> cancel reason *)
  faults : Fault_plan.t option;
  clock : Clock.t option;  (* charged by induced stalls (site "fiber.stall") *)
}

let current : sched option ref = ref None
let in_scheduler () = !current <> None
let progress () = match !current with Some s -> s.stamp <- s.stamp + 1 | None -> ()
let stamp () = match !current with Some s -> s.stamp | None -> 0
let fiber_id () = match !current with Some s -> s.cur | None -> 0

(* Deliver a pending cancellation exactly once: the flag is consumed on
   raise, so a supervisor restarting the cancelled worker does not see the
   retry die instantly from the same stale mark. *)
let check_cancel s =
  match Hashtbl.find_opt s.cancelled s.cur with
  | Some reason ->
      Hashtbl.remove s.cancelled s.cur;
      raise (Cancelled reason)
  | None -> ()

let cancel_pending id =
  match !current with None -> false | Some s -> Hashtbl.mem s.cancelled id

(* An induced hang (site "fiber.stall", kind [Delay ns]): burn [ns] of
   simulated time across several yields.  Each resume checks for
   cancellation first, so a watchdog that cuts the stalled fiber turns the
   hang into a contained [Cancelled] death mid-stall; an uncut stall is
   transient — the fiber resumes where it left off. *)
let stall s total =
  let chunk = max 1 (total / 8) in
  let rec go remaining =
    if remaining > 0 then begin
      check_cancel s;
      (match s.clock with
      | Some c ->
          Clock.charge c (min chunk remaining);
          (* Advancing the clock is global progress: deadline-based guards
             must get to observe it rather than read the stall as a wedged
             system. *)
          progress ()
      | None -> ());
      perform Yield;
      go (remaining - chunk)
    end
  in
  go total;
  check_cancel s

let yield () =
  match !current with
  | None -> ()
  | Some s ->
      check_cancel s;
      (match Fault_plan.roll_opt s.faults ~site:"fiber.yield" with
      | Some k -> Fault_plan.fail ~site:"fiber.yield" k
      | None -> ());
      (match Fault_plan.roll_opt s.faults ~site:"fiber.stall" with
      | Some (Fault_plan.Delay ns) -> stall s ns
      | Some k -> Fault_plan.fail ~site:"fiber.stall" k
      | None -> ());
      perform Yield

let spawn f =
  match !current with
  | Some _ -> perform (Spawn f)
  | None -> invalid_arg "Fiber.spawn: not inside Fiber.run"

(* "never (blocked: fiber 0 awaiting never, fiber 2 awaiting channel data)" *)
let deadlock_message s what =
  let entries =
    Hashtbl.fold (fun id w acc -> (id, w) :: acc) s.blocked []
    |> List.sort compare
    |> List.map (fun (id, w) -> Printf.sprintf "fiber %d awaiting %s" id w)
  in
  Printf.sprintf "%s (blocked: %s)" what (String.concat ", " entries)

let wait_until ?(what = "condition") cond =
  match !current with
  | None ->
      if not (cond ()) then
        raise (Deadlock (Printf.sprintf "%s (no scheduler running)" what))
  | Some s ->
      if not (cond ()) then begin
        let id = s.cur in
        Hashtbl.replace s.blocked id what;
        let finish () = Hashtbl.remove s.blocked id in
        let rec loop last_stamp spins =
          if not (cond ()) then begin
            check_cancel s;
            (* If we have spun through the run queue many times with no
               global progress, every other fiber is blocked too — but a
               blocked world with an armed reactor timer is asleep, not
               dead.  The queue never empties while this fiber spins, so
               the scheduler's own idle path can't run: consult [on_idle]
               here and only declare deadlock once it can't advance
               simulated time either. *)
            if s.stamp = last_stamp && spins > 10_000 then begin
              let idled = match s.on_idle with Some f -> f () | None -> false in
              if not idled then begin
                let msg = deadlock_message s what in
                finish ();
                raise (Deadlock msg)
              end
            end;
            perform Yield;
            if s.stamp = last_stamp then loop last_stamp (spins + 1)
            else loop s.stamp 0
          end
        in
        (match loop s.stamp 0 with
        | () -> finish ()
        | exception e ->
            finish ();
            raise e)
      end

(* ------------------------------------------------------------------ *)
(* Pool scheduling (Random / Pct / Replay)                             *)

let pool_push s task =
  let n = Array.length s.pool in
  if s.pool_n = n then begin
    let bigger = Array.make (max 8 (2 * n)) dummy_task in
    Array.blit s.pool 0 bigger 0 n;
    s.pool <- bigger
  end;
  s.pool.(s.pool_n) <- task;
  s.pool_n <- s.pool_n + 1

let pool_take s i =
  let t = s.pool.(i) in
  s.pool_n <- s.pool_n - 1;
  s.pool.(i) <- s.pool.(s.pool_n);
  s.pool.(s.pool_n) <- dummy_task;
  t

let enqueue s ~id thunk =
  match s.policy with
  | Round_robin -> Queue.push thunk s.runq
  | _ -> pool_push s { t_id = id; t_run = thunk }

(* ------------------------------------------------------------------ *)
(* Park / unpark                                                       *)

let is_parked id =
  match !current with Some s -> Hashtbl.mem s.parked id | None -> false

let parked_count () =
  match !current with Some s -> Hashtbl.length s.parked | None -> 0

let parked_ids () =
  match !current with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun id _ acc -> id :: acc) s.parked [] |> List.sort compare

(* Move a parked fiber back to the run queue.  Waking someone is global
   progress — a drain loop or deadlock detector spinning elsewhere must
   see the wake as forward motion. *)
let unpark id =
  match !current with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.parked id with
      | None -> ()
      | Some thunk ->
          Hashtbl.remove s.parked id;
          s.stamp <- s.stamp + 1;
          enqueue s ~id thunk)

(* Park the calling fiber until [unpark].  Cancellation is delivered at
   both edges: a pending mark raises before the fiber ever leaves the
   queue, and a mark set while parked (the watchdog cutting a hung
   worker — [cancel] unparks its victim) raises at resume. *)
let park ~what =
  match !current with
  | None -> raise (Deadlock (Printf.sprintf "%s (no scheduler running)" what))
  | Some s ->
      check_cancel s;
      let id = s.cur in
      Hashtbl.replace s.blocked id what;
      let finish () = Hashtbl.remove s.blocked id in
      (match perform (Park what) with
      | () -> finish ()
      | exception e ->
          finish ();
          raise e);
      check_cancel s

let cancel ?(reason = "cancelled") id =
  match !current with
  | None -> ()
  | Some s ->
      if not (Hashtbl.mem s.cancelled id) then Hashtbl.replace s.cancelled id reason;
      (* A parked victim would otherwise never observe the mark: wake it
         so [park]'s resume edge delivers [Cancelled] promptly. *)
      unpark id

(* Pct priorities are drawn at fiber creation; demotions assign fresh,
   strictly decreasing minima so the post-demotion order is total and
   deterministic. *)
let assign_prio s id =
  match s.policy with
  | Pct _ -> Hashtbl.replace s.prio id (1 + Rng.int s.rng 1_000_000)
  | _ -> ()

let pct_demote s id =
  Hashtbl.replace s.prio id s.demote_next;
  s.demote_next <- s.demote_next - 1

(* Strict priority alone livelocks against the stack's spin-yield blocking
   idiom: a top-priority fiber sitting in [wait_until] would be picked
   forever while the fiber able to unblock it never runs, and after 10_000
   fruitless spins the detector above would report a deadlock that is
   really a scheduling artifact.  Demoting a fiber that has been picked
   this many consecutive times without any global progress guarantees
   rotation long before the detector fires. *)
let starvation_limit = 64

let choose s =
  let n = s.pool_n in
  let i =
    match s.policy with
    | Round_robin -> assert false
    | Random _ -> Rng.int s.rng n
    | Replay d ->
        let i =
          if s.replay_pos < Array.length d then abs d.(s.replay_pos) mod n else 0
        in
        s.replay_pos <- s.replay_pos + 1;
        i
    | Pct { change_prob; _ } ->
        let best = ref 0 in
        let best_p = ref min_int in
        for j = 0 to n - 1 do
          let p =
            match Hashtbl.find_opt s.prio s.pool.(j).t_id with
            | Some p -> p
            | None -> 0
          in
          if p > !best_p then begin
            best := j;
            best_p := p
          end
        done;
        let id = s.pool.(!best).t_id in
        if change_prob > 0.0 && Rng.float s.rng < change_prob then pct_demote s id;
        if id = s.last_pick && s.stamp = s.stamp_at_pick then begin
          s.picks_in_a_row <- s.picks_in_a_row + 1;
          if s.picks_in_a_row >= starvation_limit then begin
            pct_demote s id;
            s.picks_in_a_row <- 0
          end
        end
        else begin
          s.last_pick <- id;
          s.picks_in_a_row <- 1;
          s.stamp_at_pick <- s.stamp
        end;
        !best
  in
  s.decisions <- i :: s.decisions;
  i

(* The decision trace of the most recently finished run (normal or
   exceptional) — Round_robin records nothing, pool policies record one
   index per scheduling step.  Survives the exception so a failing run can
   still be shrunk and replayed. *)
let last_run_decisions : int array ref = ref [||]
let last_decisions () = !last_run_decisions

let run ?faults ?clock ?(policy = Round_robin) ?on_switch ?on_idle main =
  if in_scheduler () then invalid_arg "Fiber.run: nested run";
  let seed = match policy with Random s -> s | Pct { seed; _ } -> seed | _ -> 0 in
  let s =
    {
      policy;
      runq = Queue.create ();
      pool = Array.make 8 dummy_task;
      pool_n = 0;
      rng = Rng.create seed;
      prio = Hashtbl.create 16;
      demote_next = 0;
      last_pick = -1;
      picks_in_a_row = 0;
      stamp_at_pick = -1;
      replay_pos = 0;
      decisions = [];
      on_switch;
      on_idle;
      stamp = 0;
      active = true;
      cur = 0;
      next_id = 1;
      blocked = Hashtbl.create 8;
      parked = Hashtbl.create 8;
      cancelled = Hashtbl.create 8;
      faults;
      clock;
    }
  in
  current := Some s;
  assign_prio s 0;
  let save_decisions () = last_run_decisions := Array.of_list (List.rev s.decisions) in
  let rec exec (f : unit -> unit) : unit =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            save_decisions ();
            current := None;
            raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let id = s.cur in
                    enqueue s ~id (fun () ->
                        s.cur <- id;
                        continue k ()))
            | Spawn g ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let id = s.next_id in
                    s.next_id <- s.next_id + 1;
                    assign_prio s id;
                    enqueue s ~id (fun () ->
                        s.cur <- id;
                        exec g);
                    continue k ())
            | Park _ ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let id = s.cur in
                    Hashtbl.replace s.parked id (fun () ->
                        s.cur <- id;
                        continue k ()))
            | _ -> None);
      }
  in
  let finish () =
    s.active <- false;
    save_decisions ();
    current := None
  in
  let runnable () =
    match s.policy with Round_robin -> Queue.length s.runq | _ -> s.pool_n
  in
  let step () =
    match s.policy with
    | Round_robin -> (Queue.pop s.runq) ()
    | _ -> (pool_take s (choose s)).t_run ()
  in
  (* Nothing runnable but fibers are parked: the reactor hook gets one
     chance to fire due timers ([on_switch] — e.g. a just-signaled wake
     that raced the queue emptying), then [on_idle] may advance the
     simulated clock to the next armed timer and fire it (how a deadline
     cut reaches a system where every fiber is parked on I/O).  If
     neither wakes anyone, the parked fibers can never run again. *)
  let idle () =
    (match s.on_switch with Some f -> f () | None -> ());
    if runnable () = 0 then begin
      let progressed =
        match s.on_idle with Some f -> f () | None -> false
      in
      if runnable () = 0 && not progressed then
        raise (Deadlock (deadlock_message s "parked fibers, nothing runnable"))
    end
  in
  (try
     exec main;
     let rec drain () =
       if runnable () > 0 then begin
         (match s.on_switch with Some f -> f () | None -> ());
         (* The hook may have unparked or cancelled; re-check. *)
         if runnable () > 0 then step ();
         drain ()
       end
       else if Hashtbl.length s.parked > 0 then begin
         idle ();
         drain ()
       end
     in
     drain ()
   with e ->
     finish ();
     raise e);
  finish ()
