open Effect
open Effect.Deep
module Fault_plan = Wedge_fault.Fault_plan

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Spawn : (unit -> unit) -> unit Effect.t

exception Deadlock of string

type sched = {
  runq : (unit -> unit) Queue.t;
  mutable stamp : int;  (* bumped by [progress] *)
  mutable active : bool;
  mutable cur : int;  (* id of the running fiber *)
  mutable next_id : int;
  blocked : (int, string) Hashtbl.t;  (* fiber id -> awaited condition *)
  faults : Fault_plan.t option;
}

let current : sched option ref = ref None
let in_scheduler () = !current <> None
let progress () = match !current with Some s -> s.stamp <- s.stamp + 1 | None -> ()
let stamp () = match !current with Some s -> s.stamp | None -> 0
let fiber_id () = match !current with Some s -> s.cur | None -> 0

let yield () =
  match !current with
  | None -> ()
  | Some s ->
      (match Fault_plan.roll_opt s.faults ~site:"fiber.yield" with
      | Some k -> Fault_plan.fail ~site:"fiber.yield" k
      | None -> ());
      perform Yield

let spawn f =
  match !current with
  | Some _ -> perform (Spawn f)
  | None -> invalid_arg "Fiber.spawn: not inside Fiber.run"

(* "never (blocked: fiber 0 awaiting never, fiber 2 awaiting channel data)" *)
let deadlock_message s what =
  let entries =
    Hashtbl.fold (fun id w acc -> (id, w) :: acc) s.blocked []
    |> List.sort compare
    |> List.map (fun (id, w) -> Printf.sprintf "fiber %d awaiting %s" id w)
  in
  Printf.sprintf "%s (blocked: %s)" what (String.concat ", " entries)

let wait_until ?(what = "condition") cond =
  match !current with
  | None ->
      if not (cond ()) then
        raise (Deadlock (Printf.sprintf "%s (no scheduler running)" what))
  | Some s ->
      if not (cond ()) then begin
        let id = s.cur in
        Hashtbl.replace s.blocked id what;
        let finish () = Hashtbl.remove s.blocked id in
        let rec loop last_stamp spins =
          if not (cond ()) then begin
            (* If we have spun through the run queue many times with no global
               progress, every other fiber is blocked too: deadlock. *)
            if s.stamp = last_stamp && spins > 10_000 then begin
              let msg = deadlock_message s what in
              finish ();
              raise (Deadlock msg)
            end;
            perform Yield;
            if s.stamp = last_stamp then loop last_stamp (spins + 1)
            else loop s.stamp 0
          end
        in
        (match loop s.stamp 0 with
        | () -> finish ()
        | exception e ->
            finish ();
            raise e)
      end

let run ?faults main =
  if in_scheduler () then invalid_arg "Fiber.run: nested run";
  let s =
    {
      runq = Queue.create ();
      stamp = 0;
      active = true;
      cur = 0;
      next_id = 1;
      blocked = Hashtbl.create 8;
      faults;
    }
  in
  current := Some s;
  let rec exec (f : unit -> unit) : unit =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            current := None;
            raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let id = s.cur in
                    Queue.push
                      (fun () ->
                        s.cur <- id;
                        continue k ())
                      s.runq)
            | Spawn g ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let id = s.next_id in
                    s.next_id <- s.next_id + 1;
                    Queue.push
                      (fun () ->
                        s.cur <- id;
                        exec g)
                      s.runq;
                    continue k ())
            | _ -> None);
      }
  in
  let finish () =
    s.active <- false;
    current := None
  in
  (try
     exec main;
     while not (Queue.is_empty s.runq) do
       let f = Queue.pop s.runq in
       f ()
     done
   with e ->
     finish ();
     raise e);
  finish ()
