(** Clock-stamped structured tracing for the simulated machine.

    A trace records spans ({!span_begin}/{!span_end}) and instant events
    into a preallocated ring buffer, each stamped with the simulated clock
    ({!Clock.now}), the simulated pid that caused it, and the scheduler
    fiber that was running ({!Fiber.fiber_id}).  Because the clock is
    simulated, two runs of the same seeded workload produce byte-identical
    exports — a trace doubles as a replay-debugging artifact for the
    fault-injection soaks.

    Cost discipline: a disabled trace costs the caller a single branch
    ([if Trace.enabled t]) and allocates nothing — every recording
    function takes only unboxed ints and already-allocated strings, so
    instrumentation can stay in hot paths (TLB misses, channel reads)
    permanently.  Sites that would need to build an event name
    dynamically must guard with {!enabled} first so the disabled path
    never concatenates.

    Export is Chrome trace format (chrome://tracing, Perfetto):
    {!to_chrome_json}. *)

type t

val create : ?capacity:int -> clock:Clock.t -> unit -> t
(** A trace attached to [clock], initially {e disabled} with no buffer
    allocated; call {!arm} to start recording.  [capacity] (default
    65536 events) is remembered as the default for {!arm}. *)

val null : t
(** The shared always-disabled trace: the default for components created
    without one.  {!arm} on it raises [Invalid_argument]. *)

val arm : ?capacity:int -> t -> unit
(** Allocate the ring buffer (if needed) and start recording.  Clears
    previously recorded events. *)

val disarm : t -> unit
(** Stop recording; the buffer and its events are kept for export. *)

val enabled : t -> bool
(** The single branch hot paths pay when tracing is off. *)

val clear : t -> unit
(** Drop all recorded events (the buffer stays allocated). *)

(** {2 Recording}

    All recording functions are no-ops on a disabled trace and never
    allocate in that case (labelled, non-optional arguments only). *)

val span_begin : t -> name:string -> pid:int -> unit
val span_end : t -> name:string -> pid:int -> unit
(** A span covers a duration: compartment execution, a callgate
    invocation, a drain.  Begin/end pairs are matched by Chrome on
    (pid, tid) nesting order. *)

val instant : t -> name:string -> pid:int -> unit
(** A point event: a syscall trap, a TLB miss, an admission decision. *)

val count : t -> name:string -> pid:int -> value:int -> unit
(** A point event carrying a value (e.g. bytes moved), exported as a
    Chrome counter event. *)

(** {2 Inspection and export} *)

val instants_named : t -> name:string -> int
(** How many instants named [name] survive in the ring buffer — what
    tests assert complain-mode policy violations against.  Events pushed
    out by wrap-around are not counted. *)

val recorded : t -> int
(** Events currently held (≤ capacity). *)

val dropped : t -> int
(** Events overwritten because the ring wrapped. *)

val to_chrome_json : t -> string
(** Deterministic Chrome-trace-format JSON ({"traceEvents": [...]}).
    Timestamps are simulated nanoseconds rendered as microseconds with
    three decimals; event order is chronological (ring order). *)

val validate_chrome_json : string -> (unit, string) result
(** Schema validation for the CI smoke gate: full JSON syntax check plus
    the Chrome-trace shape (top-level object, "traceEvents" array, every
    event an object with string "name"/"ph" and numeric "ts"/"pid"/"tid").
    No external JSON library required. *)
