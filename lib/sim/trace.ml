(* Clock-stamped structured tracing.

   The ring buffer is a struct-of-arrays: one preallocated array per event
   field, indexed by slot.  Recording an event writes five scalars and a
   string pointer — no per-event allocation, so instrumentation can live
   permanently in hot paths.  When disabled, every recording function is
   one load + one branch. *)

type t = {
  clock : Clock.t;
  is_null : bool;
  mutable enabled : bool;
  mutable cap : int; (* requested capacity; buffers sized on arm *)
  mutable ev_name : string array;
  mutable ev_ph : Bytes.t; (* Chrome phase per slot: 'B' 'E' 'i' 'C' *)
  mutable ev_ts : int array; (* simulated ns *)
  mutable ev_pid : int array;
  mutable ev_tid : int array; (* scheduler fiber id *)
  mutable ev_val : int array; (* counter value; [no_value] when absent *)
  mutable head : int; (* next slot to write *)
  mutable total : int; (* events ever recorded since last clear *)
}

let no_value = min_int
let default_capacity = 65536

let create ?(capacity = default_capacity) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  {
    clock;
    is_null = false;
    enabled = false;
    cap = capacity;
    ev_name = [||];
    ev_ph = Bytes.empty;
    ev_ts = [||];
    ev_pid = [||];
    ev_tid = [||];
    ev_val = [||];
    head = 0;
    total = 0;
  }

let null =
  let t = create ~clock:(Clock.create ()) () in
  { t with is_null = true }

let clear t =
  t.head <- 0;
  t.total <- 0

let arm ?capacity t =
  if t.is_null then invalid_arg "Trace.arm: cannot arm the null trace";
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.arm: capacity <= 0"
  | Some c -> t.cap <- c
  | None -> ());
  if Array.length t.ev_name <> t.cap then begin
    t.ev_name <- Array.make t.cap "";
    t.ev_ph <- Bytes.make t.cap 'i';
    t.ev_ts <- Array.make t.cap 0;
    t.ev_pid <- Array.make t.cap 0;
    t.ev_tid <- Array.make t.cap 0;
    t.ev_val <- Array.make t.cap no_value
  end;
  clear t;
  t.enabled <- true

let disarm t = t.enabled <- false
let enabled t = t.enabled

(* The slow path shared by all recording entry points.  Callers have
   already paid the [enabled] branch; from here on we are recording for
   real, so a bounds-checked write or two is irrelevant. *)
let record t ph ~name ~pid ~value =
  let i = t.head in
  t.ev_name.(i) <- name;
  Bytes.unsafe_set t.ev_ph i ph;
  t.ev_ts.(i) <- Clock.now t.clock;
  t.ev_pid.(i) <- pid;
  t.ev_tid.(i) <- Fiber.fiber_id ();
  t.ev_val.(i) <- value;
  t.head <- (if i + 1 = t.cap then 0 else i + 1);
  t.total <- t.total + 1

let span_begin t ~name ~pid =
  if t.enabled then record t 'B' ~name ~pid ~value:no_value

let span_end t ~name ~pid =
  if t.enabled then record t 'E' ~name ~pid ~value:no_value

let instant t ~name ~pid =
  if t.enabled then record t 'i' ~name ~pid ~value:no_value

let count t ~name ~pid ~value =
  if t.enabled then record t 'C' ~name ~pid ~value

let recorded t = min t.total (Array.length t.ev_name)
let dropped t = max 0 (t.total - Array.length t.ev_name)

(* How many instants named [name] survive in the ring.  A query, not a
   counter: events pushed out by wrap-around are not counted — size the
   buffer for the workload when asserting on this (tests do). *)
let instants_named t ~name =
  let live = recorded t in
  let n = ref 0 in
  for i = 0 to live - 1 do
    if Bytes.get t.ev_ph i = 'i' && t.ev_name.(i) = name then incr n
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Chrome trace export.

   Deterministic by construction: timestamps come from the simulated
   clock (integers), rendered to microseconds with three decimals using
   integer arithmetic only — no float formatting, no locale, no host
   time.  Two runs of the same seeded workload produce byte-identical
   output. *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_chrome_json t =
  let live = recorded t in
  let size = Array.length t.ev_name in
  (* Chronological order: if the ring wrapped, the oldest surviving event
     sits at [head]; otherwise slot 0. *)
  let start = if t.total > size then t.head else 0 in
  let buf = Buffer.create (256 + (live * 96)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  for k = 0 to live - 1 do
    let i = (start + k) mod (max size 1) in
    if k > 0 then Buffer.add_string buf ",";
    Buffer.add_string buf "\n{\"name\":\"";
    escape_into buf t.ev_name.(i);
    Buffer.add_string buf "\",\"cat\":\"wedge\",\"ph\":\"";
    Buffer.add_char buf (Bytes.get t.ev_ph i);
    let ts = t.ev_ts.(i) in
    Buffer.add_string buf
      (Printf.sprintf "\",\"ts\":%d.%03d,\"pid\":%d,\"tid\":%d" (ts / 1000)
         (ts mod 1000) t.ev_pid.(i) t.ev_tid.(i));
    (match Bytes.get t.ev_ph i with
    | 'i' -> Buffer.add_string buf ",\"s\":\"t\""
    | _ -> ());
    let v = t.ev_val.(i) in
    if v <> no_value then
      Buffer.add_string buf (Printf.sprintf ",\"args\":{\"value\":%d}" v);
    Buffer.add_string buf "}"
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clockDomain\":\"simulated\",\"droppedEvents\":%d}}"
       (dropped t));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Schema validation for the CI smoke gate.  The container has no JSON
   library, so this is a small recursive-descent parser building a
   throwaway AST, plus shape checks for the Chrome trace format. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos >= n then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code ->
                  (* good enough for validation: keep BMP as '?' outside
                     ASCII rather than full UTF-8 encoding *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else Buffer.add_char b '?';
                  pos := !pos + 4
              | None -> fail "bad \\u escape")
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let digits () =
      let d0 = !pos in
      while (match peek () with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | 'e' | 'E' ->
        advance ();
        (match peek () with '+' | '-' -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' -> parse_obj ()
    | '[' -> parse_arr ()
    | '"' -> Jstr (parse_string ())
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | 'n' -> literal "null" Jnull
    | '-' | '0' .. '9' -> Jnum (parse_number ())
    | '\000' -> fail "unexpected end of input"
    | c -> fail (Printf.sprintf "unexpected '%c'" c)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Jobj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ();
      Jobj (List.rev !fields)
    end
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      Jarr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elements ()
        | ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ();
      Jarr (List.rev !items)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let validate_chrome_json s =
  match parse_json s with
  | exception Bad_json msg -> Error msg
  | Jobj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | None -> Error "missing \"traceEvents\""
      | Some (Jarr events) -> (
          let check_event i = function
            | Jobj ev ->
                let str key =
                  match List.assoc_opt key ev with
                  | Some (Jstr _) -> Ok ()
                  | _ ->
                      Error
                        (Printf.sprintf "event %d: missing string %S" i key)
                in
                let num key =
                  match List.assoc_opt key ev with
                  | Some (Jnum _) -> Ok ()
                  | _ ->
                      Error
                        (Printf.sprintf "event %d: missing number %S" i key)
                in
                let ( let* ) r f = match r with Ok () -> f () | e -> e in
                let* () = str "name" in
                let* () = str "ph" in
                let* () = num "ts" in
                let* () = num "pid" in
                let* () = num "tid" in
                Ok ()
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          let rec all i = function
            | [] -> Ok ()
            | ev :: rest -> (
                match check_event i ev with
                | Ok () -> all (i + 1) rest
                | Error _ as e -> e)
          in
          match all 0 events with Ok () -> Ok () | Error _ as e -> e)
      | Some _ -> Error "\"traceEvents\" is not an array")
  | _ -> Error "top level is not an object"
