(** Typed metrics registry: one place to read every counter in the system.

    {!Stats} stays the write-side primitive (a bump is one hashtable
    lookup); this module is the read side.  Components register {e
    sources} — closures producing [(key, value)] pairs on demand — and
    {!snapshot} merges them all with the registry's own counters into one
    sorted list, summing duplicate keys (so e.g. live per-process TLB
    counters and already-reaped ones under the same key add up to the true
    total).

    Two metric kinds:
    - {e counters}: monotonic, owned by the registry ({!bump}/{!add}) or
      by a registered {!Stats} table;
    - {e gauges}: instantaneous values read from a source at snapshot
      time (queue depths, active connections, cache sizes).

    Snapshots and {!to_json} are deterministic (sorted keys, integer
    values) so they can be asserted byte-for-byte in tests. *)

type t

type kind = Counter | Gauge

val create : unit -> t

(** {2 Registry-owned counters} *)

val bump : t -> string -> unit
val add : t -> string -> int -> unit
val counters : t -> Stats.t
(** The registry's own counter table (for handing to code that wants a
    plain {!Stats.t}). *)

(** {2 Sources} *)

val register :
  t -> name:string -> ?kind:kind -> (unit -> (string * int) list) -> unit
(** [register t ~name read] adds a source; [read] is called at every
    {!snapshot}.  Registering the same [name] again replaces the previous
    source.  [kind] (default [Gauge]) controls which section of
    {!to_json} the source's keys land in. *)

val unregister : t -> name:string -> unit

val register_stats : t -> name:string -> Stats.t -> unit
(** Expose an existing counter table as a [Counter] source. *)

val register_fault_plan : t -> Wedge_fault.Fault_plan.t -> unit
(** Expose a fault plan: ["fault.injected"] plus ["fault.ops.<site>"] per
    rule site. *)

(** {2 Reading} *)

val snapshot : t -> (string * int) list
(** All keys from all sources plus the registry's counters, sorted,
    duplicates summed. *)

val get : t -> string -> int
(** One key from a fresh snapshot; 0 if absent. *)

val to_json : t -> string
(** Deterministic JSON: [{"counters":{...},"gauges":{...}}], keys sorted
    within each section. *)

val pp : Format.formatter -> t -> unit
