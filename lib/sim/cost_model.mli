(** Deterministic cost model for the simulated machine.

    Every simulated kernel, memory and crypto operation charges a number of
    simulated nanoseconds to the kernel's {!Clock}.  The constants below are
    structural — a primitive's cost is assembled from traps, per-PTE copies,
    per-fd duplications, context switches and so on — so the {e ratios} the
    paper reports (Figures 7 and 8, Table 2) emerge from the structure of the
    operations rather than being hard-coded per benchmark row.  Default
    values are calibrated once, against the microbenchmark hardware of the
    paper (§6), and then reused unchanged by every experiment. *)

type t = {
  syscall_trap : int;  (** kernel entry/exit for one system call *)
  syscall_batch_op : int;
      (** each operation past the first in one vectored batch
          (readv/writev): per-op validation with the trap already paid.
          Single-op syscalls never charge it, preserving every fig7/fig8
          shape. *)
  context_switch : int;  (** scheduler switch between two processes *)
  tlb_flush : int;  (** address-space switch penalty *)
  tlb_hit : int;  (** one translation served from the software TLB *)
  tlb_miss : int;  (** a page-table walk filling a TLB entry *)
  tlb_shootdown : int;  (** invalidating one cached translation on revoke *)
  pte_copy : int;  (** copying one page-table entry into a child *)
  pool_stamp : int;
      (** stamping a child from a frozen snapshot image: one page-table
          root install, independent of how many pages the image holds *)
  fd_dup : int;  (** duplicating one file descriptor *)
  page_alloc : int;  (** allocating a zeroed physical frame *)
  page_copy : int;  (** copying a 4 KiB frame (COW break) *)
  page_scrub : int;  (** scrubbing a 4 KiB frame on tag reuse *)
  thread_struct : int;  (** pthread-style thread bookkeeping *)
  proc_struct : int;  (** process (sthread) bookkeeping *)
  malloc_op : int;  (** one malloc/smalloc/free *)
  smalloc_book_init : int;  (** initialising allocator bookkeeping in a tag *)
  mmap_op : int;  (** one anonymous mmap (fresh tag segment) *)
  futex_op : int;  (** one futex wake or wait *)
  cgate_validate : int;  (** kernel-side callgate permission validation *)
  sha256_per_byte : int;  (** hashing, per byte *)
  cipher_per_byte : int;  (** symmetric encryption, per byte *)
  hmac_fixed : int;  (** fixed HMAC setup cost per record *)
  rsa_private_op : int;  (** one RSA private-key operation *)
  rsa_public_op : int;  (** one RSA public-key operation *)
  net_rtt : int;  (** one network round trip between peers *)
  net_per_byte : int;  (** wire transfer, per byte *)
  disk_per_byte : int;  (** VFS file read/write, per byte *)
  http_app_fixed : int;  (** application-level work to serve one request *)
  ssh_login_fixed : int;  (** fixed client+server compute per SSH login *)
}

val default : t
(** Calibrated against the paper's testbeds (2.2 GHz Opteron for Apache,
    2.66 GHz Xeon for microbenchmarks); see EXPERIMENTS.md for the
    calibration derivation. *)

val free : t
(** All-zero model, for tests that want functional behaviour only. *)
