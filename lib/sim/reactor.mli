(** Readiness reactor: epoll-style batched wakeups plus a timer wheel on
    the simulated clock.

    The spin-yield blocking idiom ({!Fiber.wait_until}) costs one
    scheduler step per blocked fiber per rotation — O(connections) per
    delivered byte once thousands of idle connections each hold a
    spinning fiber.  A reactor-driven wait instead registers interest on
    a {!handle} and {!Fiber.park}s; the producer {!signal}s the handle at
    the moment state changes and every waiter wakes in one batch.  Waits
    are {e level-triggered}: a woken waiter re-checks its readiness
    closure and re-parks if the wake was spurious, so signals can be
    coarse and can never be lost to a race.

    Deadlines are timers fired by {!tick} at scheduler sync points
    (wire {!hook} into {!Fiber.run}'s [on_switch]); when every fiber is
    parked, {!idle} (wired into [on_idle]) advances the simulated clock
    straight to the earliest armed timer — the epoll_wait-with-timeout
    analogue.

    Wake order (fiber id), timer order ((deadline, creation)) and every
    counter are deterministic functions of the schedule. *)

type t

type handle
(** One interest set — typically one direction of a channel, or a
    listener's accept queue. *)

val create : ?trace:Trace.t -> clock:Clock.t -> unit -> t
(** [trace] records ["reactor.wake"] counts and ["reactor.timer"]
    instants (only when tracing is enabled — the disarmed path stays
    free). *)

val clock : t -> Clock.t

val handle : t -> name:string -> handle
(** A fresh interest set; [name] appears in audit messages. *)

val handle_name : handle -> string

val wait : handle -> what:string -> ready:(unit -> bool) -> unit
(** Park the calling fiber until [ready ()] — re-checked after every
    wake, re-parking on spurious ones.  Returns immediately on a dead
    handle (the caller's own closed/EOF state carries the answer) or
    when [ready] already holds.  A cancellation delivered while parked
    ({!Fiber.Cancelled}) removes the registration before propagating —
    no ghost waiters.  [what] names the condition in deadlock reports. *)

val signal : handle -> unit
(** Wake every waiter of this handle in one batch (fiber-id order).
    Cheap no-op with no waiters — producers signal unconditionally at
    every state change. *)

val kill : handle -> unit
(** Mark the handle dead and wake everyone; subsequent {!wait}s return
    immediately.  What {!Wedge_net.Chan.abort} drives. *)

val is_dead : handle -> bool

(** {2 Timers} *)

type timer_id

val at : t -> ns:int -> (unit -> unit) -> timer_id
(** Fire [f] once the simulated clock reaches absolute time [ns] (at the
    next {!tick} at or after it).  The callback runs in scheduler-hook
    context: it must not yield or park, but may {!signal}, {!kill},
    [Fiber.unpark], cancel fibers, or arm further timers. *)

val after : t -> ns:int -> (unit -> unit) -> timer_id
(** Relative form of {!at}. *)

val cancel_timer : t -> timer_id -> unit
(** Best-effort cancel (lazy removal; O(armed timers)).  Deadline
    re-arming should prefer the fire-and-re-check idiom — let the timer
    fire, find the deadline has moved, and arm a fresh one — which is
    O(1) per event. *)

val pending_timers : t -> int

val tick : t -> unit
(** Fire every timer due at the current simulated time, then run the
    {!on_tick} hooks.  Gated on the clock having moved since the last
    sweep, so an armed-but-quiet reactor costs one comparison per call. *)

val hook : t -> unit -> unit
(** [Fiber.run ~on_switch:(Reactor.hook r)] — {!tick} at every
    scheduling step.  Compose manually when an oracle hook is also
    armed. *)

val idle : t -> unit -> bool
(** [Fiber.run ~on_idle:(Reactor.idle r)] — advance the clock to the
    earliest armed timer and {!tick}; [false] when no timer is armed
    (the scheduler then reports the parked fibers as a deadlock). *)

val next_deadline : t -> int option
(** Earliest armed timer (absolute simulated ns on this reactor's
    clock), if any — the deadline {!idle} would sleep to. *)

val idle_multi : t list -> unit -> bool
(** Multi-shard [on_idle]: each reactor runs on its own clock, so the
    one whose earliest timer is the smallest {e relative} delay from its
    own now wakes first (ties break on list order).  Advances only that
    reactor's clock and {!tick}s only it; [false] when no reactor has an
    armed timer. *)

val on_tick : t -> (unit -> unit) -> unit
(** Run [f] at every timer sweep (i.e. whenever simulated time moved) —
    how the connection guard pumps its watchdog without any fiber
    polling. *)

(** {2 Audit and observability} *)

type stats = {
  signals : int;  (** wake batches delivered *)
  wakeups : int;  (** fibers woken *)
  parks : int;  (** times a fiber parked on a handle *)
  timer_fires : int;
  idle_advances : int;  (** clock jumps to the next timer *)
  parked : int;  (** waiters currently registered *)
  timers : int;  (** timers currently armed *)
}

val stats : t -> stats

val self_check : t -> string option
(** Interest sets vs the scheduler's parked table, for the invariant
    oracle: no registered-and-parked waiter whose readiness already
    holds (lost wakeup), no waiters on dead handles (ghost registrations
    after abort/cut), no parked fiber without a registration.  [None]
    when consistent. *)

val self_check_multi : t list -> string option
(** {!self_check} over several reactors at once (one per shard): the
    parked-without-registration audit is global to the scheduler, so it
    must see the union of every armed reactor's interest sets. *)

val register_metrics : ?name:string -> Metrics.t -> t -> unit
(** Counters (["reactor.signals"/"wakeups"/"parks"/"timer_fires"/
    "idle_advances"]) and gauges (["reactor.parked"/"waiting_handles"/
    "timers"]). *)
