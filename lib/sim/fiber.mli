(** Cooperative fibers (effects-based) for driving client/server/attacker
    interactions over simulated channels.

    The simulated network ({!Wedge_net.Chan}) blocks a fiber when it reads
    from an empty channel; the scheduler round-robins runnable fibers until
    everything has finished.  Compartment code itself runs to completion
    inside whichever fiber spawned it — blocking on I/O inside an sthread
    suspends the whole caller chain, which matches the paper's semantics
    (the parent blocks on [sthread_join], a callgate's caller blocks until
    the callgate terminates). *)

exception Deadlock of string
(** Raised by {!run} when every live fiber is blocked and no progress is
    possible.  The message names the awaited condition plus every blocked
    fiber and what it is waiting for, e.g.
    ["channel data (blocked: fiber 0 awaiting channel data, fiber 2
    awaiting incoming connection)"]. *)

val run : ?faults:Wedge_fault.Fault_plan.t -> (unit -> unit) -> unit
(** [run main] executes [main] as the first fiber and schedules every fiber
    it spawns, returning when all fibers have terminated.  When [faults] is
    given, every {!yield} rolls the plan at site ["fiber.yield"]; a fired
    fault raises {!Wedge_fault.Fault_plan.Injected} in the yielding fiber
    (crashing it mid-run unless a compartment boundary catches it).
    @raise Deadlock if fibers block forever. *)

val spawn : (unit -> unit) -> unit
(** Add a new fiber.  Must be called from within {!run}. *)

val yield : unit -> unit
(** Give up the processor; the fiber resumes after other runnable fibers
    have had a turn.  No-op when called outside {!run} (so library code can
    yield unconditionally). *)

val wait_until : ?what:string -> (unit -> bool) -> unit
(** [wait_until cond] yields until [cond ()] is true.
    @raise Deadlock if the whole system stops making progress first;
    [what] names the awaited condition in the exception message. *)

val progress : unit -> unit
(** Record that global progress happened (e.g. bytes were delivered);
    resets the deadlock detector. *)

val stamp : unit -> int
(** The scheduler's progress counter (0 outside {!run}).  Custom wait
    loops compare stamps across yields to detect a globally stalled
    system and bail out {e before} the {!Deadlock} detector fires —
    how bounded channel writes and guarded reads turn a wedged peer
    into a contained error instead of a scheduler crash. *)

val in_scheduler : unit -> bool
(** True when called from inside {!run}. *)

val fiber_id : unit -> int
(** The id of the running fiber (main is 0); 0 outside {!run}. *)
