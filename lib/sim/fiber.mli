(** Cooperative fibers (effects-based) for driving client/server/attacker
    interactions over simulated channels.

    The simulated network ({!Wedge_net.Chan}) blocks a fiber when it reads
    from an empty channel; the scheduler round-robins runnable fibers until
    everything has finished.  Compartment code itself runs to completion
    inside whichever fiber spawned it — blocking on I/O inside an sthread
    suspends the whole caller chain, which matches the paper's semantics
    (the parent blocks on [sthread_join], a callgate's caller blocks until
    the callgate terminates). *)

exception Deadlock of string
(** Raised by {!run} when every live fiber is blocked and no progress is
    possible.  The message names the awaited condition plus every blocked
    fiber and what it is waiting for, e.g.
    ["channel data (blocked: fiber 0 awaiting channel data, fiber 2
    awaiting incoming connection)"]. *)

exception Cancelled of string
(** Delivered inside a fiber at its next {!yield} (or stall step, or
    {!wait_until} spin) after {!cancel} marked it.  The engine registers
    this as a {e contained} fault class, so cancelling the fiber running a
    compartment kills only that compartment — the mechanism a watchdog
    uses to tear down a hung worker.  The mark is consumed on delivery:
    a supervisor restarting the victim does not see the retry die from
    the same stale cancellation. *)

(** Which runnable fiber runs next.  {!Round_robin} (the default) keeps
    the historical FIFO order byte-for-byte — every seeded replay test
    depends on it.  The other policies schedule from a pool and record
    the pool index picked at each step (the {e decision trace},
    {!last_decisions}); [Replay] feeds such a trace back, reproducing or
    shrinking a run exactly. *)
type policy =
  | Round_robin
  | Random of int  (** uniformly random runnable fiber, from the seed *)
  | Pct of {
      seed : int;
      change_prob : float;
          (** per-step probability that the highest-priority fiber is
              demoted below everyone else (the PCT change point).  An
              anti-starvation rule additionally demotes a fiber picked 64
              consecutive times without global progress, so strict
              priority cannot livelock against spin-yield blocking. *)
    }
  | Replay of int array
      (** replay recorded pool indices; exhausted or out-of-range entries
          fall back to index 0, so truncated traces still run *)

val policy_to_string : policy -> string

val run :
  ?faults:Wedge_fault.Fault_plan.t ->
  ?clock:Clock.t ->
  ?policy:policy ->
  ?on_switch:(unit -> unit) ->
  ?on_idle:(unit -> bool) ->
  (unit -> unit) ->
  unit
(** [run main] executes [main] as the first fiber and schedules every fiber
    it spawns, returning when all fibers have terminated.  When [faults] is
    given, every {!yield} rolls the plan at site ["fiber.yield"]; a fired
    fault raises {!Wedge_fault.Fault_plan.Injected} in the yielding fiber
    (crashing it mid-run unless a compartment boundary catches it).
    {!yield} additionally rolls site ["fiber.stall"]: kind [Delay ns]
    induces a hang — the fiber burns [ns] of simulated time (charged to
    [clock] when given) across several yields before resuming, unless a
    watchdog cancels it mid-stall; any other kind raises like
    ["fiber.yield"].  [on_idle] runs when nothing is
    runnable but fibers are {!park}ed: it should advance the simulated
    world (fire the next reactor timer) and return [true], or return
    [false] to concede — upon which the run dies with {!Deadlock} naming
    the parked fibers.  [on_switch] runs before every scheduling step — the
    hook invariant oracles use to check kernel state at each context
    switch.  It must not yield or spawn; an exception it raises aborts the
    run (and propagates).
    @raise Deadlock if fibers block forever. *)

val last_decisions : unit -> int array
(** The decision trace of the most recently {e finished} run — one pool
    index per scheduling step under [Random]/[Pct]/[Replay], empty under
    [Round_robin].  Valid after both normal and exceptional termination,
    so a failing schedule can be replayed ([Replay]) and shrunk. *)

val spawn : (unit -> unit) -> unit
(** Add a new fiber.  Must be called from within {!run}. *)

val yield : unit -> unit
(** Give up the processor; the fiber resumes after other runnable fibers
    have had a turn.  No-op when called outside {!run} (so library code can
    yield unconditionally). *)

val wait_until : ?what:string -> (unit -> bool) -> unit
(** [wait_until cond] yields until [cond ()] is true.
    @raise Deadlock if the whole system stops making progress first;
    [what] names the awaited condition in the exception message. *)

val progress : unit -> unit
(** Record that global progress happened (e.g. bytes were delivered);
    resets the deadlock detector. *)

val stamp : unit -> int
(** The scheduler's progress counter (0 outside {!run}).  Custom wait
    loops compare stamps across yields to detect a globally stalled
    system and bail out {e before} the {!Deadlock} detector fires —
    how bounded channel writes and guarded reads turn a wedged peer
    into a contained error instead of a scheduler crash. *)

val in_scheduler : unit -> bool
(** True when called from inside {!run}. *)

val park : what:string -> unit
(** Take the calling fiber off the run queue until {!unpark}.  Unlike
    {!wait_until}'s spin-yield idiom, a parked fiber costs the scheduler
    {e nothing} per rotation — the primitive the readiness reactor
    ({!Reactor}) is built on.  A pending cancellation raises
    {!Cancelled} instead of parking; one set while parked ({!cancel}
    unparks its victim) raises at resume.  Must be called inside {!run}.
    @raise Deadlock when no scheduler is running. *)

val unpark : int -> unit
(** Make parked fiber [id] runnable again (no-op if it is not parked).
    Counts as global progress.  Safe from any fiber and from the
    {!run} [on_switch]/[on_idle] hooks. *)

val is_parked : int -> bool
(** True while fiber [id] sits in the parked table. *)

val parked_count : unit -> int
val parked_ids : unit -> int list
(** Currently parked fiber ids, ascending — what the reactor's
    interest-set invariant audits against its waiter lists. *)

val cancel : ?reason:string -> int -> unit
(** Mark fiber [id] for cancellation: its next {!yield}, stall step or
    {!wait_until} spin raises {!Cancelled} [reason] inside it.  A
    {!park}ed victim is unparked so the mark is delivered at resume.  Safe to
    call from the {!run} [on_switch] hook (scheduler context) — the
    watchdog's cut path.  No-op outside {!run}; marking an already-marked
    fiber keeps the first reason. *)

val cancel_pending : int -> bool
(** True while fiber [id] has an undelivered cancellation mark. *)

val fiber_id : unit -> int
(** The id of the running fiber (main is 0); 0 outside {!run}. *)
