module W = Wedge_core.Wedge
module Prot = Wedge_kernel.Prot
module Fd_table = Wedge_kernel.Fd_table
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Tag = Wedge_mem.Tag
module Drbg = Wedge_crypto.Drbg
module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module Session = Wedge_tls.Session
module Handshake = Wedge_tls.Handshake

module Supervisor = Wedge_core.Supervisor
module Synth = Wedge_crowbar.Synth

type conn_debug = {
  conn_tag : Tag.t option;
  arg_tag : Tag.t option;
  arg_block : int;
  worker_status : Wedge_kernel.Process.status;
  degraded : bool;
  attempts : int;
}

let io_of_fd ctx fd =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = W.fd_read ctx fd n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> W.fd_write ctx fd b)

(* Argument-buffer protocol for the setup_session_key callgate.  The
   worker writes a request, the gate overwrites it with the reply. *)
let op_new_session = 1
let op_premaster = 2
let op_resume = 3

(* The setup_session_key callgate (Figure 2).  Runs with read access to the
   private-key tag and read-write on the per-connection state tag; its
   essential property is that the server random is generated HERE, from
   the gate's own entropy — the caller supplies only public inputs. *)
let setup_session_key_entry (env : Httpd_env.t) gctx ~trusted:conn_block ~arg =
  let op = W.read_u8 gctx arg in
  if op = op_new_session then begin
    let cr = W.read_bytes gctx (arg + 1) 32 in
    let sr = Drbg.bytes env.Httpd_env.rng 32 in
    let sid = Bytes.to_string (Drbg.bytes env.Httpd_env.rng Handshake.sid_len) in
    Conn_state.set_randoms gctx conn_block ~cr ~sr ~sid;
    W.write_bytes gctx (arg + 1) sr;
    W.write_lv gctx (arg + 33) sid;
    1
  end
  else if op = op_premaster then begin
    let ct = W.read_lv gctx (arg + 1) in
    Httpd_env.charge gctx Httpd_env.Rsa_priv;
    let priv = Httpd_env.read_priv gctx env in
    match Wedge_crypto.Rsa.decrypt priv (Bytes.of_string ct) with
    | Some pm when Bytes.length pm = Handshake.premaster_len ->
        let master = Handshake.derive_master ~premaster:pm in
        Conn_state.set_master gctx conn_block master;
        Sess_store.store gctx env.Httpd_env.scache
          ~sid:(Conn_state.sid gctx conn_block) ~master;
        (match Conn_state.ensure_keys gctx conn_block with
        | Some keys ->
            (* Figure 2: the session key is returned to the worker. *)
            W.write_u8 gctx (arg + 1) 1;
            W.write_bytes gctx (arg + 2) master;
            W.write_lv gctx (arg + 34) (Bytes.to_string (Record.to_bytes keys));
            1
        | None -> 0)
    | Some _ | None ->
        W.write_u8 gctx (arg + 1) 0;
        0
  end
  else if op = op_resume then begin
    let n = W.read_u8 gctx (arg + 1) in
    let sid = W.read_string gctx (arg + 2) n in
    let cr = W.read_bytes gctx (arg + 2 + n) 32 in
    match Sess_store.lookup gctx env.Httpd_env.scache ~sid with
    | None ->
        W.write_u8 gctx (arg + 1) 0;
        0
    | Some master ->
        let sr = Drbg.bytes env.Httpd_env.rng 32 in
        Conn_state.set_randoms gctx conn_block ~cr ~sr ~sid;
        Conn_state.set_master gctx conn_block master;
        (match Conn_state.ensure_keys gctx conn_block with
        | Some keys ->
            W.write_u8 gctx (arg + 1) 1;
            W.write_bytes gctx (arg + 2) sr;
            W.write_bytes gctx (arg + 34) master;
            W.write_lv gctx (arg + 66) (Bytes.to_string (Record.to_bytes keys));
            1
        | None -> 0)
  end
  else -1

(* Worker-side handshake callbacks: public inputs go in, the session key
   comes back through the argument buffer. *)
let worker_ops ctx ~gate ~arg_tag ~arg_block ~master_ref ~keys_ref ~finished_ref =
  let perms = W.sc_create () in
  W.sc_mem_add perms arg_tag Prot.RW;
  {
    Handshake.new_session =
      (fun ~client_random ->
        W.write_u8 ctx arg_block op_new_session;
        W.write_bytes ctx (arg_block + 1) client_random;
        ignore (W.cgate ctx gate ~perms ~arg:arg_block);
        let sr = W.read_bytes ctx (arg_block + 1) 32 in
        let sid = W.read_lv ctx (arg_block + 33) in
        (sid, sr));
    resume_session =
      (fun ~sid ~client_random ->
        W.write_u8 ctx arg_block op_resume;
        W.write_u8 ctx (arg_block + 1) (String.length sid);
        W.write_string ctx (arg_block + 2) sid;
        W.write_bytes ctx (arg_block + 2 + String.length sid) client_random;
        if W.cgate ctx gate ~perms ~arg:arg_block = 1 then begin
          let sr = W.read_bytes ctx (arg_block + 2) 32 in
          master_ref := Some (W.read_bytes ctx (arg_block + 34) 32);
          keys_ref := Some (Record.of_bytes (Bytes.of_string (W.read_lv ctx (arg_block + 66))));
          Some sr
        end
        else None);
    set_premaster =
      (fun ~premaster_ct ->
        W.write_u8 ctx arg_block op_premaster;
        W.write_lv ctx (arg_block + 1) (Bytes.to_string premaster_ct);
        if W.cgate ctx gate ~perms ~arg:arg_block = 1 then begin
          master_ref := Some (W.read_bytes ctx (arg_block + 2) 32);
          keys_ref := Some (Record.of_bytes (Bytes.of_string (W.read_lv ctx (arg_block + 34))));
          true
        end
        else false);
    receive_finished =
      (fun ~transcript_hash ~record ->
        match (!master_ref, !keys_ref) with
        | Some master, Some keys -> (
            Httpd_env.charge ctx Httpd_env.Mac;
            Httpd_env.charge ctx (Httpd_env.Cipher (Bytes.length record));
            match Record.open_ keys record with
            | None -> false
            | Some payload ->
                let expect = Handshake.finished_payload ~master ~side:`Client ~transcript_hash in
                if Bytes.equal payload expect then begin
                  finished_ref :=
                    Handshake.server_finished_payload ~master ~transcript_hash
                      ~client_finished:payload;
                  true
                end
                else false)
        | _ -> false);
    send_finished =
      (fun () ->
        match !keys_ref with
        | Some keys ->
            Httpd_env.charge ctx Httpd_env.Mac;
            Record.seal keys !finished_ref
        | None -> invalid_arg "send_finished before keys");
  }

(* The degraded answer when the worker is gone: the TLS keys died with it,
   so the monitor sends a plaintext 500 and closes — the client sees a
   definite failure instead of a hang.  Best-effort: the channel itself
   may already be reset. *)
let send_degraded main ep =
  W.stat main "httpd.degraded";
  try Chan.write_string ep (Http.format_response Http.internal_error) with _ -> ()

let serve_connection ?(recycled = false) ?(restart_policy = Supervisor.default_policy)
    ?supervised ?exploit_handshake ?exploit_request ?guard ?max_request_bytes
    ?worker_limits ?synth (env : Httpd_env.t) ep =
  let main = env.Httpd_env.main in
  (* Per-connection setup runs in the monitor, so a fault here (injected
     frame exhaustion during tag_new, a reset connection) must be contained
     by hand: release whatever was created and degrade this connection —
     the accept loop above us never sees the fault. *)
  let created = ref [] in
  let fd_ref = ref None in
  let cleanup () =
    (match !fd_ref with
    | Some fd -> ( try W.fd_close main fd with _ -> ())
    | None -> ());
    Chan.close ep;
    List.iter (fun t -> try W.tag_delete main t with _ -> ()) !created
  in
  match
    let conn_tag = W.tag_new ~name:"httpd.conn" ~pages:1 main in
    created := conn_tag :: !created;
    let arg_tag = W.tag_new ~name:"httpd.arg" ~pages:2 main in
    created := arg_tag :: !created;
    let conn_block = W.smalloc main Conn_state.size conn_tag in
    Conn_state.init main conn_block;
    let arg_block = W.smalloc main 4096 arg_tag in
    (* With a guard attached, the worker reads through the deadline-aware
       endpoint: a slow-loris client turns into EOF inside the worker
       instead of a fiber pinned forever. *)
    let raw_ep =
      match guard with Some c -> Guard.endpoint c | None -> Chan.to_endpoint ep
    in
    let fd = W.add_endpoint main raw_ep Fd_table.perm_rw in
    fd_ref := Some fd;
    (* In enforce mode the synthesized profile supplies both security
       contexts; the hand-written grants below are the fallback (and the
       recording/complain baseline). *)
    let conn_tags = [ conn_tag; arg_tag ] in
    let conn_fds = [ ("conn", fd) ] in
    let worker_sc =
      match Synth.sthread_sc synth ~name:"httpd.worker" ~tags:conn_tags ~fds:conn_fds main with
      | Some sc -> sc
      | None ->
          let sc = W.sc_create () in
          W.sc_mem_add sc arg_tag Prot.RW;
          W.sc_fd_add sc fd Fd_table.perm_rw;
          W.sc_set_uid sc 33;
          W.sc_set_root sc Httpd_env.docroot;
          (match env.Httpd_env.worker_sid with
          | Some sid -> W.sc_sel_context sc sid
          | None -> ());
          sc
    in
    (match worker_limits with Some l -> W.sc_set_rlimit worker_sc l | None -> ());
    let cgsc =
      match Synth.gate_sc synth ~name:"setup_session_key" ~tags:conn_tags main with
      | Some sc -> sc
      | None ->
          let sc = W.sc_create () in
          W.sc_mem_add sc env.Httpd_env.key_tag Prot.R;
          W.sc_mem_add sc conn_tag Prot.RW;
          W.sc_mem_add sc (Sess_store.tag env.Httpd_env.scache) Prot.RW;
          sc
    in
    let gate =
      W.sc_cgate_add ~recycled main worker_sc ~name:"setup_session_key"
        ~entry:(Synth.wrap_gate synth ~name:"setup_session_key" (setup_session_key_entry env))
        ~cgsc ~trusted:conn_block
    in
    (conn_tag, arg_tag, arg_block, fd, worker_sc, gate)
  with
  | exception e when W.fault_reason e <> None ->
      let reason = Option.get (W.fault_reason e) in
      send_degraded main ep;
      cleanup ();
      {
        conn_tag = None;
        arg_tag = None;
        arg_block = 0;
        worker_status = Wedge_kernel.Process.Faulted ("setup: " ^ reason);
        degraded = true;
        attempts = 0;
      }
  | conn_tag, arg_tag, arg_block, fd, worker_sc, gate ->
      let worker_body ctx _ =
            let io = io_of_fd ctx fd in
            let master_ref = ref None
            and keys_ref = ref None
            and finished_ref = ref Bytes.empty in
            let ops =
              worker_ops ctx ~gate ~arg_tag ~arg_block ~master_ref ~keys_ref ~finished_ref
            in
            match Handshake.server_handshake ~ops ~cert:(Httpd_env.cert env) io with
            | Error _ -> 1
            | Ok _sid -> (
                (match guard with Some c -> Guard.established c | None -> ());
                (match exploit_handshake with Some payload -> payload ctx | None -> ());
                match !keys_ref with
                | None -> 1
                | Some keys -> (
                    match Handshake.recv_data io keys with
                    | Error _ -> 1
                    | Ok req
                      when match max_request_bytes with
                           | Some m -> Bytes.length req > m
                           | None -> false ->
                        (* Oversized request: answer inside the session (the
                           keys are established) with 413 and stop. *)
                        let resp = Http.format_response Http.too_large in
                        Httpd_env.charge ctx Httpd_env.Mac;
                        Handshake.send_data io keys (Bytes.of_string resp);
                        0
                    | Ok req ->
                        Httpd_env.charge ctx (Httpd_env.Cipher (Bytes.length req));
                        let resp =
                          Httpd_env.handle_request ctx ~exploit:exploit_request
                            (Bytes.to_string req)
                        in
                        Httpd_env.charge ctx (Httpd_env.Cipher (String.length resp));
                        Httpd_env.charge ctx Httpd_env.Mac;
                        Handshake.send_data io keys (Bytes.of_string resp);
                        env.Httpd_env.served <- env.Httpd_env.served + 1;
                        0))
      in
      let worker_main =
        Synth.wrap_sthread synth ~name:"httpd.worker" ~fds:[ ("conn", fd) ] worker_body
      in
      let outcome =
        (* A supervised worker runs under the tree's per-child policy and
           intensity budget; unsupervised falls back to the flat layer.
           Each retry re-arms the guard heart, so a restamped worker is
           not killed for its predecessor's hang. *)
        let on_restart = Option.map (fun c () -> Guard.rearm_heart c) guard in
        match supervised with
        | Some child ->
            Supervisor.run_child_sthread ?on_restart child worker_sc worker_main 0
        | None ->
            Supervisor.supervise_sthread ~policy:restart_policy main worker_sc
              worker_main 0
      in
      let worker_status, degraded, attempts =
        match outcome with
        | Supervisor.Done { value; attempts } ->
            (Wedge_kernel.Process.Exited value, false, attempts)
        | Supervisor.Gave_up { attempts; last_fault } ->
            send_degraded main ep;
            (Wedge_kernel.Process.Faulted last_fault, true, attempts)
      in
      cleanup ();
      {
        conn_tag = Some conn_tag;
        arg_tag = Some arg_tag;
        arg_block;
        worker_status;
        degraded;
        attempts;
      }

(* Freeze the worker's boot once (identity dropped to uid 33 inside the
   docroot chroot, heap warmed so demand-mapped pages join the image);
   per-connection grants — the two tags, the connection descriptor, the
   callgate — ride in at stamp time as the worker sc. *)
let worker_pool ?(name = "httpd.worker") (env : Httpd_env.t) =
  let sc = W.sc_create () in
  W.sc_set_uid sc 33;
  W.sc_set_root sc Httpd_env.docroot;
  (match env.Httpd_env.worker_sid with Some sid -> W.sc_sel_context sc sid | None -> ());
  W.Pool.freeze ~name
    ~warm:(fun ctx ->
      let p = W.malloc ctx 64 in
      W.free ctx p)
    env.Httpd_env.main sc

(* The declared worker/listener topology: one node, the listener child
   registered first (so a [Rest_for_one] escalation of the listener also
   restarts the workers, never the reverse).  With [pool], every worker
   attempt — first run and every restart — is an O(1) stamp from the
   frozen image instead of a fork-priced boot. *)
let supervision_tree ?strategy ?intensity ?window_ns ?healthy_after_ns ?quarantine_ns
    ?listener_policy ?worker_policy ?pool (env : Httpd_env.t) =
  let node =
    Supervisor.node ?strategy ?intensity ?window_ns ?healthy_after_ns ?quarantine_ns
      ~name:"httpd" env.Httpd_env.main
  in
  let listener =
    Supervisor.child
      ~policy:(Option.value listener_policy ~default:(Supervisor.policy ~max_restarts:2 ()))
      node ~name:"listener"
  in
  let restart =
    match pool with Some p -> Supervisor.From_pool p | None -> Supervisor.Fresh
  in
  let worker =
    Supervisor.child
      ?policy:worker_policy
      ~restart node ~name:"worker"
  in
  (node, listener, worker)

(* Guarded accept loop: admission control in front of per-connection
   compartments.  Over-capacity (or breaker-shed) connections get a
   plaintext 503 (the TLS session never started, so plaintext is all
   there is) and are closed; admitted ones are served in their own fiber
   with the slot auto-released and their outcome reported to the guard's
   breaker.  With [supervision], workers run under the tree's "worker"
   child and the accept loop itself under "listener" — a contained fault
   leaking out of the serve path restarts the loop instead of killing the
   server.  Returns when the listener shuts down (see [Guard.drain]). *)
let serve_loop ?restart_policy ?max_request_bytes ?worker_limits ?supervision ?synth
    (env : Httpd_env.t) guard listener =
  let main = env.Httpd_env.main in
  let supervised = Option.map (fun (_, _, worker) -> worker) supervision in
  let reject decision ep =
    (match decision with
    | Guard.Shed -> W.stat main "httpd.shed"
    | _ -> W.stat main "httpd.rejected");
    Chan.write_string ep (Http.format_response Http.service_unavailable)
  in
  let serve c =
    let r =
      serve_connection ?restart_policy ?supervised ~guard:c ?max_request_bytes
        ?worker_limits ?synth env (Guard.ep c)
    in
    Guard.report c ~ok:(not r.degraded)
  in
  let accept () =
    Guard.accept_loop guard listener ~reject ~serve;
    0
  in
  match supervision with
  | None -> ignore (accept ())
  | Some (_, listener_child, _) ->
      ignore (Supervisor.run_child_fn listener_child accept)

(* One accept loop per shard, each on its shard's guard and listener.
   Workers, supervision and stats stay per-shard: shard [i]'s environment
   only ever touches shard [i]'s kernel. *)
let serve_sharded ?restart_policy ?max_request_bytes ?worker_limits envs front =
  Array.iteri
    (fun i env ->
      Wedge_sim.Fiber.spawn (fun () ->
          serve_loop ?restart_policy ?max_request_bytes ?worker_limits env
            (Wedge_net.Shard.front_guard front i)
            (Wedge_net.Shard.front_listener front i)))
    envs
