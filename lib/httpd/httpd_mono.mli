(** The monolithic (vanilla) Apache/OpenSSL stand-in: the whole SSL
    handshake, the private key, the session keys and the request handling
    live in one privileged process — and a pool of reused workers means no
    per-request process creation (fast, zero isolation).  An exploit in the
    request parser yields the private key, every session key, and the whole
    filesystem. *)

val serve_connection :
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  ?guard:Wedge_net.Guard.conn ->
  ?max_request_bytes:int ->
  Httpd_env.t ->
  Wedge_net.Chan.ep ->
  unit
(** Serve one SSL connection (one request) in the main privileged
    context.  [guard] reads through the deadline-aware endpoint and marks
    the connection established post-handshake; [max_request_bytes]
    answers oversized requests with a sealed 413. *)

val serve_loop :
  ?max_request_bytes:int ->
  Httpd_env.t ->
  Wedge_net.Guard.t ->
  Wedge_net.Chan.listener ->
  unit
(** Guarded accept loop (plaintext 503 on rejection); returns once the
    listener shuts down. *)
