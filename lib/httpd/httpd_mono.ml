module W = Wedge_core.Wedge
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Fd_table = Wedge_kernel.Fd_table
module Wire = Wedge_tls.Wire
module Handshake = Wedge_tls.Handshake
module Record = Wedge_tls.Record

let io_of_fd ctx fd =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = W.fd_read ctx fd n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> W.fd_write ctx fd b)

(* Wrap handshake callbacks with simulated crypto costs. *)
let charged_ops ctx (ops : Handshake.server_ops) =
  {
    ops with
    Handshake.set_premaster =
      (fun ~premaster_ct ->
        Httpd_env.charge ctx Httpd_env.Rsa_priv;
        ops.Handshake.set_premaster ~premaster_ct);
    receive_finished =
      (fun ~transcript_hash ~record ->
        Httpd_env.charge ctx Httpd_env.Mac;
        Httpd_env.charge ctx (Httpd_env.Cipher (Bytes.length record));
        ops.Handshake.receive_finished ~transcript_hash ~record);
    send_finished =
      (fun () ->
        Httpd_env.charge ctx Httpd_env.Mac;
        ops.Handshake.send_finished ());
  }

let serve_connection ?exploit ?guard ?max_request_bytes (env : Httpd_env.t) ep =
  let ctx = env.Httpd_env.main in
  let raw_ep =
    match guard with Some c -> Guard.endpoint c | None -> Chan.to_endpoint ep
  in
  let fd = W.add_endpoint ctx raw_ep Fd_table.perm_rw in
  (* No compartment boundary protects the monolithic server, so the fault
     class (injected channel resets, frame exhaustion) is contained here by
     hand: degrade this connection with a plaintext 500 and keep the
     process alive — the comparison against the partitioned layouts stays
     about privilege, not about who survives a crash. *)
  (try
     let io = io_of_fd ctx fd in
     let state = Handshake.plain_state_create () in
     let priv = Httpd_env.read_priv ctx env in
     let ops =
       charged_ops ctx
         (Handshake.plain_ops ~rng:env.Httpd_env.rng ~priv ~cache:env.Httpd_env.cache ~state)
     in
     match Handshake.server_handshake ~ops ~cert:(Httpd_env.cert env) io with
     | Error _ -> ()
     | Ok _sid -> (
         (match guard with Some c -> Guard.established c | None -> ());
         let keys = Handshake.keys_of_plain_state state in
         match Handshake.recv_data io keys with
         | Error _ -> ()
         | Ok req
           when match max_request_bytes with
                | Some m -> Bytes.length req > m
                | None -> false ->
             Httpd_env.charge ctx Httpd_env.Mac;
             Handshake.send_data io keys
               (Bytes.of_string (Http.format_response Http.too_large))
         | Ok req ->
             Httpd_env.charge ctx (Httpd_env.Cipher (Bytes.length req));
             let resp = Httpd_env.handle_request ctx ~exploit (Bytes.to_string req) in
             Httpd_env.charge ctx (Httpd_env.Cipher (String.length resp));
             Httpd_env.charge ctx Httpd_env.Mac;
             Handshake.send_data io keys (Bytes.of_string resp);
             env.Httpd_env.served <- env.Httpd_env.served + 1)
   with e when W.fault_reason e <> None ->
     W.stat ctx "httpd.degraded";
     (try Chan.write_string ep (Http.format_response Http.internal_error) with _ -> ()));
  W.fd_close ctx fd;
  Chan.close ep

(* Guarded accept loop — same admission front door as the partitioned
   servers, so the mono/wedge comparison stays about privilege, not about
   who survives hostile load. *)
let serve_loop ?max_request_bytes (env : Httpd_env.t) guard listener =
  Guard.accept_loop guard listener
    ~reject:(fun _decision ep ->
      W.stat env.Httpd_env.main "httpd.rejected";
      Chan.write_string ep (Http.format_response Http.service_unavailable))
    ~serve:(fun c -> serve_connection ~guard:c ?max_request_bytes env (Guard.ep c))
