type request = {
  meth : string;
  path : string;
}

let parse_request line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; path ] | [ meth; path; _ ] when String.length path > 0 && path.[0] = '/' ->
      Some { meth = String.uppercase_ascii meth; path }
  | _ -> None

let format_request r = Printf.sprintf "%s %s HTTP/1.0" r.meth r.path

type response = {
  status : int;
  body : string;
}

let reason = function
  | 200 -> "OK"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 413 -> "Request Entity Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let format_response r =
  Printf.sprintf "HTTP/1.0 %d %s\r\nContent-Length: %d\r\n\r\n%s" r.status (reason r.status)
    (String.length r.body) r.body

let parse_response s =
  match String.index_opt s ' ' with
  | None -> None
  | Some i -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let status =
        match String.index_opt rest ' ' with
        | Some j -> int_of_string_opt (String.sub rest 0 j)
        | None -> None
      in
      match status with
      | None -> None
      | Some status -> (
          (* body follows the blank line *)
          let rec find_body i =
            if i + 4 > String.length s then None
            else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
            else find_body (i + 1)
          in
          match find_body 0 with
          | Some b -> Some { status; body = String.sub s b (String.length s - b) }
          | None -> Some { status; body = "" }))

let ok body = { status = 200; body }
let not_found = { status = 404; body = "not found" }
let forbidden = { status = 403; body = "forbidden" }
let internal_error = { status = 500; body = "internal server error" }
let too_large = { status = 413; body = "request too large" }
let service_unavailable = { status = 503; body = "server busy" }
