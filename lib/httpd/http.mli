(** Minimal HTTP/1.0 subset: one request, one response, as served by the
    Apache stand-ins over the mini-SSL channel. *)

type request = {
  meth : string;
  path : string;
}

val parse_request : string -> request option
val format_request : request -> string

type response = {
  status : int;
  body : string;
}

val format_response : response -> string
val parse_response : string -> response option
val ok : string -> response
val not_found : response
val forbidden : response

val internal_error : response
(** 500 — the plaintext degraded answer a monitor sends when a worker
    compartment crashed and supervision gave up. *)

val too_large : response
(** 413 — the request exceeded the server's size cap. *)

val service_unavailable : response
(** 503 — the admission guard rejected the connection (at capacity or
    draining). *)
