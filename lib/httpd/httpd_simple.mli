(** The Figure 2 partitioning: protect the private key and session-key
    generation.

    One worker sthread per connection encapsulates all untrusted code and
    terminates after a single request.  The RSA private key lives in tagged
    memory reachable only by the {e setup_session_key} callgate, which also
    generates the server's random contribution itself — an exploited worker
    can neither read the key nor usefully influence session-key generation.

    The worker {e does} receive the established session key (master secret
    and record keys), which is exactly the residual weakness the
    man-in-the-middle partitioning ({!Httpd_mitm}) removes. *)

type conn_debug = {
  conn_tag : Wedge_mem.Tag.t option;  (** callgate-private session state *)
  arg_tag : Wedge_mem.Tag.t option;   (** worker-visible argument buffer *)
  arg_block : int;  (** 0 when per-connection setup itself faulted *)
  worker_status : Wedge_kernel.Process.status;
  degraded : bool;  (** this connection was answered with a plaintext 500 *)
  attempts : int;   (** supervision attempts (0 when setup faulted) *)
}

val serve_connection :
  ?recycled:bool ->
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?supervised:Wedge_core.Supervisor.child ->
  ?exploit_handshake:(Wedge_core.Wedge.ctx -> unit) ->
  ?exploit_request:(Wedge_core.Wedge.ctx -> unit) ->
  ?guard:Wedge_net.Guard.conn ->
  ?max_request_bytes:int ->
  ?worker_limits:Wedge_kernel.Rlimit.t ->
  ?synth:Wedge_crowbar.Synth.t ->
  Httpd_env.t ->
  Wedge_net.Chan.ep ->
  conn_debug
(** Serve one connection.  [recycled] backs the callgate with a long-lived
    sthread (§3.3).  [exploit_handshake] runs inside the worker right after
    the handshake (when the session key sits in worker-readable memory);
    [exploit_request] runs on a "/xploit" request.

    Fault containment: a crash anywhere in this connection — injected or
    real, in the worker sthread or in the monitor's own per-connection
    setup — degrades only this connection (plaintext 500, counters
    [httpd.degraded] / [supervisor.*] bumped) and never propagates to the
    caller, so an accept loop above survives any connection's death.
    [restart_policy] retries faulted workers first (default: none — the
    TLS stream is consumed by the failed attempt); [supervised] runs the
    worker under a supervision-tree child instead (its policy and
    intensity budget override [restart_policy]).

    Resource governance: [guard] makes the worker read through the
    deadline-aware endpoint (slow-loris becomes EOF) and marks the
    connection established after the handshake; [max_request_bytes]
    answers oversized decrypted requests with a sealed 413;
    [worker_limits] arms per-sthread resource quotas (frames / fds /
    syscall fuel) on the worker compartment.

    Profile synthesis: [synth] threads a {!Wedge_crowbar.Synth} session
    through the connection — recording the worker (["httpd.worker"], fd
    role ["conn"]) and the callgate (["setup_session_key"]), or
    complaining/enforcing an installed profile; in enforce mode the
    profile's entries replace the hand-written security contexts. *)

val worker_pool : ?name:string -> Httpd_env.t -> Wedge_core.Pool.t
(** Freeze the worker's boot into a snapshot pool (uid 33 inside the
    docroot chroot, the env's worker SELinux context when set, heap
    warmed).  Pass to {!supervision_tree} as [pool] for O(1) worker
    spawn and crash recovery. *)

val supervision_tree :
  ?strategy:Wedge_core.Supervisor.strategy ->
  ?intensity:int ->
  ?window_ns:int ->
  ?healthy_after_ns:int ->
  ?quarantine_ns:int ->
  ?listener_policy:Wedge_core.Supervisor.policy ->
  ?worker_policy:Wedge_core.Supervisor.policy ->
  ?pool:Wedge_core.Pool.t ->
  Httpd_env.t ->
  Wedge_core.Supervisor.node
  * Wedge_core.Supervisor.child
  * Wedge_core.Supervisor.child
(** The declared httpd topology: node ["httpd"] with children
    ["listener"] (registered first; default policy retries the accept
    loop twice) and ["worker"].  Returns [(node, listener, worker)] —
    pass the triple to {!serve_loop} as [supervision]. *)

val serve_loop :
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?max_request_bytes:int ->
  ?worker_limits:Wedge_kernel.Rlimit.t ->
  ?supervision:
    Wedge_core.Supervisor.node
    * Wedge_core.Supervisor.child
    * Wedge_core.Supervisor.child ->
  ?synth:Wedge_crowbar.Synth.t ->
  Httpd_env.t ->
  Wedge_net.Guard.t ->
  Wedge_net.Chan.listener ->
  unit
(** Guarded accept loop: over-capacity or draining connections get a
    plaintext 503 and close (counter [httpd.rejected]); breaker-shed ones
    the same answer under [httpd.shed]; admitted ones run
    {!serve_connection} in their own fiber, their outcome reported to the
    guard's breaker ({!Wedge_net.Guard.report}).  With [supervision] (see
    {!supervision_tree}) workers run under the "worker" child and the
    accept loop under "listener".  Returns once the listener shuts down —
    compose with {!Wedge_net.Guard.drain}. *)

val serve_sharded :
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?max_request_bytes:int ->
  ?worker_limits:Wedge_kernel.Rlimit.t ->
  Httpd_env.t array ->
  Wedge_net.Shard.front ->
  unit
(** Spawn one {!serve_loop} fiber per shard: shard [i] serves from its
    own environment [envs.(i)] behind the front door's shard-[i] guard
    and listener.  Connections reach a shard by key hash
    ({!Wedge_net.Shard.front_connect}); nothing is shared across shards
    except tags replicated through the fabric. *)
