(* Invariant oracles over kernel ground truth.

   An oracle is wired to sync points — every context switch
   ([Fiber.run ~on_switch]) and/or every system call entry
   ([Kernel.on_syscall]) — and re-derives, from first principles, the
   bookkeeping the kernel maintains incrementally:

     - every physical frame's refcount equals the number of independent
       holders (page-table mappings across all address spaces, the
       pristine snapshot, live tag registries, the tag cache);
     - every quota-tracked process's rlimit charges equal its live
       private frames and open descriptors, and every charged vpn is
       actually mapped;
     - every servable TLB entry agrees with the page table it caches;
     - every smalloc segment (live tags, per-process heaps) has intact
       boundary tags and a sound free list;
     - every registered admission guard's O(1) counters agree with its
       connection list.

   Everything here reads ground truth directly — page-table walks and
   raw frame bytes, never checked [Vm] accessors — so a check charges no
   simulated time, pollutes no TLB, and rolls no injected faults: the
   schedule under test is not perturbed by being watched. *)

module Kernel = Wedge_kernel.Kernel
module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Prot = Wedge_kernel.Prot
module Process = Wedge_kernel.Process
module Rlimit = Wedge_kernel.Rlimit
module Fd_table = Wedge_kernel.Fd_table
module Layout = Wedge_kernel.Layout
module Vm = Wedge_kernel.Vm
module Tag = Wedge_mem.Tag
module Tag_cache = Wedge_mem.Tag_cache
module Smalloc = Wedge_mem.Smalloc
module Engine = Wedge_core.Engine
module Guard = Wedge_net.Guard

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

type t = {
  kernel : Kernel.t;
  mutable app : Engine.app option;
  mutable guards : (string * Guard.t) list;
  mutable custom : (string * (unit -> string option)) list;
  mutable checks : int;
}

let create kernel = { kernel; app = None; guards = []; custom = []; checks = 0 }
let set_app t app = t.app <- Some app
let add_guard t ?(name = "guard") g = t.guards <- (name, g) :: t.guards
let add_invariant t ~name f = t.custom <- (name, f) :: t.custom
let checks_run t = t.checks

(* ------------------------------------------------------------------ *)
(* Raw readers: ground truth without the MMU's side effects            *)

let page_size = Physmem.page_size

(* Replicates [Vm.read_u64]'s decode (low 63 bits of the LE word) so the
   walks below see exactly what compartment code would. *)
let frame_u64 pm frame off = Int64.to_int (Bytes.get_int64_le (Physmem.get pm frame) off)

(* Read through a tag's own frame array — ground truth independent of any
   process's mappings, so a deleted grant or a corrupted page table can
   never hide segment damage from the walk.  Smalloc bookkeeping is
   8-aligned, so a word never straddles frames. *)
let tag_reader pm (tag : Tag.t) addr =
  let off = addr - tag.Tag.base in
  if off < 0 || off >= Array.length tag.Tag.frames * page_size then
    violation "oracle: smalloc walk escaped tag %s (id %d) at 0x%x" tag.Tag.name
      tag.Tag.id addr;
  frame_u64 pm tag.Tag.frames.(off / page_size) (off mod page_size)

(* Read through a process's page table (no TLB, no clock, no faults). *)
let vm_reader pm vm addr =
  match Pagetable.find (Vm.page_table vm) ~vpn:(addr / page_size) with
  | None ->
      violation "oracle: pid %d smalloc walk hit unmapped page at 0x%x" (Vm.pid vm)
        addr
  | Some pte -> frame_u64 pm pte.Pagetable.frame (addr mod page_size)

(* ------------------------------------------------------------------ *)
(* Frame refcounts == sum of independent holders                       *)

let check_refcounts t =
  let expected = Hashtbl.create 512 in
  let add frame =
    Hashtbl.replace expected frame
      (1 + match Hashtbl.find_opt expected frame with Some n -> n | None -> 0)
  in
  (* Every process still in the table holds one reference per mapping
     (reap removes the process after releasing them). *)
  Kernel.iter_processes t.kernel (fun p ->
      Pagetable.iter (fun _ pte -> add pte.Pagetable.frame) (Vm.page_table p.Process.vm));
  (match t.app with
  | None -> ()
  | Some app ->
      List.iter (fun (_, frame) -> add frame) app.Engine.pristine;
      List.iter
        (fun (tag : Tag.t) -> Array.iter add tag.Tag.frames)
        (Tag.live_tags app.Engine.tags);
      List.iter
        (fun (e : Tag_cache.entry) -> List.iter add e.Tag_cache.frames)
        (Tag_cache.entries app.Engine.tag_cache);
      (* Frozen snapshot-pool images are pristine-like holders: each page
         pins its frame with exactly one reference from freeze until
         discard, independent of how many stamped children map it. *)
      List.iter
        (fun (_, pages) ->
          List.iter (fun (fz : Engine.frozen_page) -> add fz.Engine.fz_frame) pages)
        app.Engine.frozen_images);
  Physmem.iter_live t.kernel.Kernel.pm (fun frame refs ->
      let want = match Hashtbl.find_opt expected frame with Some n -> n | None -> 0 in
      if refs <> want then
        violation
          "oracle: frame %d refcount %d but %d holders (mappings + pristine + tags + \
           cache + frozen images)"
          frame refs want;
      Hashtbl.remove expected frame);
  (* Anything left expected a live frame that no longer exists. *)
  Hashtbl.iter
    (fun frame n -> violation "oracle: %d holders reference dead frame %d" n frame)
    expected

(* ------------------------------------------------------------------ *)
(* Rlimit charges == live private frames and descriptors               *)

let check_rlimits t =
  Kernel.iter_processes t.kernel (fun p ->
      let vm = p.Process.vm in
      let pt = Vm.page_table vm in
      (* Every charged vpn must be mapped, quota or not: [owned] is the
         release ledger, and an unmapped entry is a unit that can never
         be released. *)
      List.iter
        (fun vpn ->
          if not (Pagetable.mem pt ~vpn) then
            violation "oracle: pid %d owns unmapped vpn 0x%x" p.Process.pid vpn)
        (Vm.owned_vpns vm);
      if Vm.quota_tracked vm && not (Rlimit.is_unlimited p.Process.limits) then begin
        let charged = Rlimit.frames_used p.Process.limits in
        let live = Vm.owned_count vm in
        if charged <> live then
          violation "oracle: pid %d charged %d frame units but owns %d private frames"
            p.Process.pid charged live;
        let fds_charged = Rlimit.fds_used p.Process.limits in
        let fds_live = Fd_table.count p.Process.fds in
        if fds_charged <> fds_live then
          violation "oracle: pid %d charged %d fd units but holds %d descriptors"
            p.Process.pid fds_charged fds_live
      end)

(* ------------------------------------------------------------------ *)
(* TLB entries agree with page-table ground truth                      *)

let check_tlbs t =
  Kernel.iter_processes t.kernel (fun p ->
      match Vm.tlb_check p.Process.vm with
      | [] -> ()
      | msg :: _ -> violation "oracle: %s" msg)

(* ------------------------------------------------------------------ *)
(* Smalloc segment integrity (tags and private heaps)                  *)

let check_smalloc t =
  match t.app with
  | None -> ()
  | Some app ->
      let pm = t.kernel.Kernel.pm in
      List.iter
        (fun (tag : Tag.t) ->
          let read = tag_reader pm tag in
          if Array.length tag.Tag.frames > 0 && Smalloc.is_segment ~read ~base:tag.Tag.base
          then
            try Smalloc.check_reader ~read ~base:tag.Tag.base
            with Invalid_argument msg ->
              violation "oracle: tag %s (id %d): %s" tag.Tag.name tag.Tag.id msg)
        (Tag.live_tags app.Engine.tags);
      Kernel.iter_processes t.kernel (fun p ->
          if Process.is_alive p then begin
            let vm = p.Process.vm in
            let base = Layout.heap_base in
            if Pagetable.mem (Vm.page_table vm) ~vpn:(base / page_size) then begin
              let read = vm_reader pm vm in
              if Smalloc.is_segment ~read ~base then
                try Smalloc.check_reader ~read ~base
                with Invalid_argument msg ->
                  violation "oracle: pid %d heap: %s" p.Process.pid msg
            end
          end)

(* ------------------------------------------------------------------ *)
(* Frozen snapshot images stay immutable                               *)

(* A frozen page recorded copy-on-write must never be writable in any
   address space: a stamped child's write is required to COW-break onto
   a private frame, so finding the image's frame behind a [pw] pte means
   a stamp (or a break) scribbled on the checkpoint every future stamp
   restores from.  Tagged pages are exempt — they freeze with their
   grant protection because tag memory is shared-mutable by design. *)
let check_frozen t =
  match t.app with
  | None -> ()
  | Some app ->
      List.iter
        (fun (name, pages) ->
          List.iter
            (fun (fz : Engine.frozen_page) ->
              if fz.Engine.fz_prot.Prot.pcow then
                Kernel.iter_processes t.kernel (fun p ->
                    Pagetable.iter
                      (fun vpn (pte : Pagetable.pte) ->
                        if
                          pte.Pagetable.frame = fz.Engine.fz_frame
                          && pte.Pagetable.prot.Prot.pw
                        then
                          violation
                            "oracle: frozen image %s frame %d mapped writable at vpn \
                             0x%x by pid %d (stamp broke the image's COW)"
                            name fz.Engine.fz_frame vpn p.Process.pid)
                      (Vm.page_table p.Process.vm)))
            pages)
        app.Engine.frozen_images

(* ------------------------------------------------------------------ *)

let check_guards t =
  List.iter
    (fun (name, g) ->
      match Guard.self_check g with
      | None -> ()
      | Some msg -> violation "oracle: %s: %s" name msg)
    t.guards

let check_custom t =
  List.iter
    (fun (name, f) ->
      match f () with None -> () | Some msg -> violation "oracle: %s: %s" name msg)
    t.custom

let check t =
  t.checks <- t.checks + 1;
  check_refcounts t;
  check_rlimits t;
  check_tlbs t;
  check_smalloc t;
  check_frozen t;
  check_guards t;
  check_custom t

(* The cluster-wide sweep for a sharded world: each kernel owns its own
   physical memory — frames never cross shard boundaries — so the global
   frame-refcount invariant is the conjunction of every shard's full
   sweep (failures labelled with the kernel's shard id) plus the one
   genuinely cross-shard fact: a deleted global tag has no live replica
   on any shard ([Wedge_net.Shard.self_check], passed as [fabric]). *)
let global_sweep ?fabric ts =
  List.iter
    (fun t ->
      try check t
      with Violation msg -> violation "shard %d: %s" t.kernel.Kernel.shard msg)
    ts;
  match fabric with
  | None -> ()
  | Some fab -> (
      match Wedge_net.Shard.self_check fab with
      | None -> ()
      | Some msg -> violation "global sweep: %s" msg)

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)

(* Checking at literally every context switch is O(frames + mappings)
   per step; a stride samples every [n]th switch instead.  7 by default:
   prime, so the sample never phase-locks with periodic fiber patterns
   (client loops, accept polling) and every interleaving class is
   eventually observed. *)
let hook ?(stride = 7) t =
  if stride <= 0 then invalid_arg "Oracle.hook: stride <= 0";
  let n = ref 0 in
  fun () ->
    incr n;
    if !n mod stride = 0 then check t
let install_syscall_hook t = t.kernel.Kernel.on_syscall <- Some (fun _name -> check t)
let remove_syscall_hook t = t.kernel.Kernel.on_syscall <- None
