(* Schedule exploration: run a scenario across N seeded schedules, and
   when one fails, shrink the recorded decision trace to a minimal
   failing schedule and print an exact repro command.

   Seeding: schedule [i] of a run seeded [S] uses

     s_0 = S          s_i = Rng.derive ~seed:S i   (i > 0)

   Schedule 0 using [S] itself means the repro command for a failure at
   index [i] — [--schedules 1 --seed s_i] — re-runs that exact schedule
   as schedule 0 of a fresh exploration, byte for byte. *)

module Fiber = Wedge_sim.Fiber
module Rng = Wedge_fault.Rng

type verdict =
  | Passed of { p_schedules : int; p_digest : string }
  | Failed of {
      x_scenario : string;
      x_index : int;  (** which schedule (0-based) failed *)
      x_seed : int;  (** the per-schedule seed that failed *)
      x_exn : string;
      x_decisions : int array;  (** full recorded decision trace *)
      x_shrunk : int array;  (** minimal failing trace (replay-confirmed) *)
      x_confirmed : bool;  (** replaying [x_decisions] reproduced the failure *)
      x_repro : string;  (** copy-paste repro command *)
    }

let seed_for ~seed i = if i = 0 then seed else Rng.derive ~seed i

let trace_to_csv trace =
  String.concat "," (Array.to_list (Array.map string_of_int trace))

let policy_for kind s =
  match kind with
  | `Random -> Fiber.Random s
  | `Pct -> Fiber.Pct { seed = s; change_prob = 0.1 }

let policy_flag = function `Random -> "random" | `Pct -> "pct"

(* ------------------------------------------------------------------ *)
(* Shrinking: prefix truncation by binary search, then a zeroing pass.

   Replay semantics make both sound: an exhausted trace falls back to
   pool index 0, so a truncated prefix is the same schedule with a
   round-robin-at-0 tail, and zeroed entries are ordinary decisions. *)

let shrink ~budget ~fails trace =
  let trials = ref 0 in
  let fails t =
    if !trials >= budget then false
    else begin
      incr trials;
      fails t
    end
  in
  let best = ref trace in
  (* Shortest failing prefix.  Failure is not guaranteed monotone in the
     prefix length, so this is a heuristic search — but every candidate
     kept is replay-confirmed to fail, which is the property that
     matters. *)
  let lo = ref 0 and hi = ref (Array.length trace) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    let cand = Array.sub trace 0 mid in
    if fails cand then begin
      hi := mid;
      best := cand
    end
    else lo := mid
  done;
  (* Zero every decision that is not needed for the failure. *)
  let cur = Array.copy !best in
  for i = 0 to Array.length cur - 1 do
    if cur.(i) <> 0 then begin
      let old = cur.(i) in
      cur.(i) <- 0;
      if not (fails cur) then cur.(i) <- old
    end
  done;
  cur

(* ------------------------------------------------------------------ *)

let lookup scenario =
  match Scenarios.find scenario with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown scenario %S (have: %s)" scenario
           (String.concat ", " (Scenarios.names ())))

let replay ?(diff = false) ?(faults = true) ~scenario ~seed ~trace () =
  let s = lookup scenario in
  s.Scenarios.s_run ~policy:(Fiber.Replay trace) ~diff ~faults ~seed

let explore ?(schedules = 100) ?(policy = `Random) ?(diff = false) ?(faults = true)
    ?(shrink_budget = 200) ?(log = fun _ -> ()) ~scenario ~seed () =
  let s = lookup scenario in
  let digest = ref (Digest.string s.Scenarios.s_name) in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < schedules do
    let si = seed_for ~seed !i in
    (match
       s.Scenarios.s_run ~policy:(policy_for policy si) ~diff ~faults ~seed:si
     with
    | summary ->
        digest := Digest.string (!digest ^ summary);
        if (!i + 1) mod 25 = 0 then
          log (Printf.sprintf "  %s: %d/%d schedules clean" s.Scenarios.s_name (!i + 1)
                 schedules)
    | exception e ->
        let msg = Printexc.to_string e in
        let decisions = Fiber.last_decisions () in
        log (Printf.sprintf "  %s: schedule %d (seed %d) FAILED: %s" s.Scenarios.s_name
               !i si msg);
        (* Confirm the recorded trace reproduces the failure under
           Replay, then shrink it.  Either way the seed-based repro
           below is exact: the policy is a pure function of [si]. *)
        let fails trace =
          match
            s.Scenarios.s_run ~policy:(Fiber.Replay trace) ~diff ~faults ~seed:si
          with
          | _ -> false
          | exception _ -> true
        in
        let confirmed = Array.length decisions > 0 && fails decisions in
        let shrunk =
          if confirmed then shrink ~budget:shrink_budget ~fails decisions
          else decisions
        in
        if confirmed then
          log (Printf.sprintf "  shrunk %d decisions -> %d" (Array.length decisions)
                 (Array.length shrunk));
        let repro =
          Printf.sprintf
            "wedge_cli check --scenario %s --schedules 1 --seed %d --policy %s%s%s"
            s.Scenarios.s_name si (policy_flag policy)
            (if diff then " --diff" else "")
            (if faults then "" else " --no-faults")
        in
        result :=
          Some
            (Failed
               {
                 x_scenario = s.Scenarios.s_name;
                 x_index = !i;
                 x_seed = si;
                 x_exn = msg;
                 x_decisions = decisions;
                 x_shrunk = shrunk;
                 x_confirmed = confirmed;
                 x_repro = repro;
               }));
    incr i
  done;
  match !result with
  | Some v -> v
  | None -> Passed { p_schedules = schedules; p_digest = Digest.to_hex !digest }

let verdict_to_string = function
  | Passed { p_schedules; p_digest } ->
      Printf.sprintf "PASSED %d schedules digest=%s" p_schedules p_digest
  | Failed f ->
      Printf.sprintf
        "FAILED scenario=%s schedule=%d seed=%d exn=%s\n\
         decisions=%d shrunk=%d confirmed=%b\n\
         replay-trace: %s\n\
         repro: %s"
        f.x_scenario f.x_index f.x_seed f.x_exn
        (Array.length f.x_decisions)
        (Array.length f.x_shrunk) f.x_confirmed
        (trace_to_csv f.x_shrunk)
        f.x_repro
