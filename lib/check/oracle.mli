(** Invariant oracles over kernel ground truth.

    Wired to sync points — every context switch ({!hook} as
    [Fiber.run ~on_switch]) and/or every system-call entry
    ({!install_syscall_hook}) — an oracle re-derives from first
    principles the bookkeeping the kernel maintains incrementally:

    - frame refcounts == page-table mappings across all address spaces
      + pristine snapshot + live tag registries + tag-cache entries;
    - rlimit charges == live private frames and open descriptors, every
      charged vpn mapped;
    - every servable TLB entry agrees with the page table;
    - every smalloc segment (live tags, per-process heaps) has intact
      boundary tags and a sound free list;
    - frozen snapshot-pool images stay immutable: each frozen page pins
      its frame with exactly one reference (counted as a pristine-like
      holder above), and no address space maps a COW-frozen frame
      writable — a stamped child's write must break onto a private
      frame, never onto the checkpoint;
    - every registered {!Wedge_net.Guard}'s counters agree with its
      connection list.

    All reads go through raw page-table walks and frame bytes — no
    clock charges, no TLB pollution, no injected-fault rolls — so the
    schedule under test is not perturbed by being watched. *)

exception Violation of string

type t

val create : Wedge_kernel.Kernel.t -> t

val set_app : t -> Wedge_core.Engine.app -> unit
(** Attach the engine application so the refcount oracle can account for
    the pristine snapshot, tag registry and tag cache, and the smalloc
    oracle can find tag segments.  Without an app only kernel-level
    invariants (refcounts from mappings alone, rlimits, TLBs) run. *)

val add_guard : t -> ?name:string -> Wedge_net.Guard.t -> unit
val add_invariant : t -> name:string -> (unit -> string option) -> unit
(** Register a scenario-specific invariant; [Some msg] means violated. *)

val check : t -> unit
(** Run every invariant once.
    @raise Violation on the first disagreement with ground truth. *)

val global_sweep : ?fabric:Wedge_net.Shard.t -> t list -> unit
(** Cluster-wide sweep for a sharded world: run {!check} on every
    shard's oracle (violations relabelled with the kernel's shard id),
    then — frames never cross shard boundaries, so per-shard refcount
    sweeps compose — audit the one genuinely global invariant via
    {!Wedge_net.Shard.self_check} when [fabric] is given: a deleted
    global tag has no live replica on any shard.
    @raise Violation on the first disagreement. *)

val checks_run : t -> int
(** How many times {!check} has run (for overhead reporting). *)

val hook : ?stride:int -> t -> unit -> unit
(** [Fiber.run ~on_switch:(Oracle.hook t)] checks at context switches.
    [stride] (default 7, prime so sampling never phase-locks with
    periodic fiber patterns) checks every [stride]th switch; pass [1]
    for every switch. *)

val install_syscall_hook : t -> unit
(** Check on entry to every system call ({!Wedge_kernel.Kernel}'s
    [on_syscall]), before the trap charges anything. *)

val remove_syscall_hook : t -> unit
