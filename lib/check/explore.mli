(** Schedule exploration with shrinking.

    [explore ~scenario ~seed ()] runs the named {!Scenarios} scenario
    across [schedules] independently seeded schedules (schedule 0 uses
    [seed] itself, schedule [i>0] uses [Wedge_fault.Rng.derive ~seed i]).
    Every run is deterministic in its per-schedule seed, so the whole
    exploration is replayable and a clean sweep yields a stable digest.

    On the first failure the recorded scheduler decision trace is
    replay-confirmed, shrunk (shortest failing prefix, then a zeroing
    pass, at most [shrink_budget] replays), and packaged with an exact
    copy-paste repro command. *)

type verdict =
  | Passed of { p_schedules : int; p_digest : string }
  | Failed of {
      x_scenario : string;
      x_index : int;  (** which schedule (0-based) failed *)
      x_seed : int;  (** the per-schedule seed that failed *)
      x_exn : string;
      x_decisions : int array;  (** full recorded decision trace *)
      x_shrunk : int array;  (** minimal failing trace (replay-confirmed) *)
      x_confirmed : bool;  (** replaying [x_decisions] reproduced the failure *)
      x_repro : string;  (** copy-paste repro command *)
    }

val explore :
  ?schedules:int ->
  ?policy:[ `Random | `Pct ] ->
  ?diff:bool ->
  ?faults:bool ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  scenario:string ->
  seed:int ->
  unit ->
  verdict
(** @raise Invalid_argument on an unknown scenario name. *)

val replay :
  ?diff:bool ->
  ?faults:bool ->
  scenario:string ->
  seed:int ->
  trace:int array ->
  unit ->
  string
(** Run one schedule under [Fiber.Replay trace] (e.g. a shrunk trace);
    returns the scenario summary, or raises whatever the bug raises. *)

val seed_for : seed:int -> int -> int
(** The per-schedule seed: [seed_for ~seed 0 = seed],
    [seed_for ~seed i = Rng.derive ~seed i] otherwise. *)

val trace_to_csv : int array -> string
val verdict_to_string : verdict -> string
